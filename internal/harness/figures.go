package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/ps"
	"repro/internal/sched/batch"
	"repro/internal/unifiable"
)

// PaperExampleLoop is the seven-operation running example of the
// paper's Figures 8–13: operations a..g where a→b→c is the long chain
// (with a carried by a loop-carried dependence), d→e and f→g are short
// independent chains. Without gap prevention the short chains float
// arbitrarily far ahead of the recurrence, the gaps of Figure 9 form,
// and Perfect Pipelining never converges; with GRiP's Gapless-move test
// the schedule converges to the repeating pattern of Figure 13.
func PaperExampleLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "fig-example",
		Body: []ir.BodyOp{
			ir.BAddI("x", "x", 1),               // a (self loop-carried dep)
			ir.BMulI("y", "x", 3),               // b
			ir.BStore(ir.Aff("OUT", 1, 0), "y"), // c
			ir.BLoad("p", ir.Aff("P", 1, 0)),    // d
			ir.BStore(ir.Aff("Q", 1, 0), "p"),   // e
			ir.BLoad("r", ir.Aff("R", 1, 0)),    // f
			ir.BStore(ir.Aff("S", 1, 0), "r"),   // g
		},
		Step: 1, TripVar: "n", LiveIn: []string{"x"}, LiveOut: []string{"x"},
	}
}

// ExampleOpName maps the example loop's origin indices to the paper's
// mnemonics (loop control shown as + and cj).
func ExampleOpName(origin int) string {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "+", "cj"}
	if origin < len(names) {
		return names[origin]
	}
	return fmt.Sprintf("o%d", origin)
}

// IntroExampleLoop is the section 1 motivating example: a vectorizable
// loop with five operations on a four-unit machine. Integrated resource
// constraints let four iterations into the pipelined body and fill the
// machine; a modulo scheduler's integral initiation interval cannot.
func IntroExampleLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "intro-5ops",
		Body: []ir.BodyOp{
			ir.BLoad("t1", ir.Aff("A", 1, 0)),
			ir.BLoad("t2", ir.Aff("B", 1, 0)),
			ir.BMul("t3", "t1", "t2"),
			ir.BAdd("t4", "t3", "c0"),
			ir.BStore(ir.Aff("X", 1, 0), "t4"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"c0"},
	}
}

// FigureRows renders the main chain of a scheduled pipeline as the
// paper's row tables (Figures 5, 9, 13): one line per instruction with
// op mnemonics tagged by iteration.
func FigureRows(g *graph.Graph, name func(int) string, maxRows int) string {
	var b strings.Builder
	for i, n := range g.MainChain() {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(&b, "... (%d more rows)\n", len(g.MainChain())-maxRows)
			break
		}
		fmt.Fprintf(&b, "%3d: %s\n", i+1, g.RowString(n, name))
	}
	return b.String()
}

// Figure56 reproduces the pipelining comparison: simple pipelining of a
// fixed unwinding versus Perfect Pipelining of the same loop.
func Figure56(w io.Writer, fus int) error {
	spec := PaperExampleLoop()
	cfg := pipeline.DefaultConfig(machine.New(fus))
	cfg.Optimize = false

	simple, err := pipeline.SimplePipeline(context.Background(), spec, cfg, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5 — four overlapped iterations (simple pipelining, %d FUs):\n", fus)
	fmt.Fprint(w, FigureRows(simple.Unwound.G, ExampleOpName, 0))
	fmt.Fprintf(w, "simple pipelining: %.2f cycles/iteration, speedup %.2f\n\n",
		simple.CyclesPerIter, simple.Speedup)

	perfect, err := pipeline.PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 6 — Perfect Pipelining converges to a steady kernel:\n")
	fmt.Fprint(w, FigureRows(perfect.Unwound.G, ExampleOpName, 24))
	fmt.Fprintf(w, "perfect pipelining: converged=%v %v, %.2f cycles/iteration, speedup %.2f\n",
		perfect.Converged, perfect.Kernel, perfect.CyclesPerIter, perfect.Speedup)
	return nil
}

// Figure9 reproduces the gap divergence: scheduling the example loop
// with gap prevention disabled lets the short chains run ahead, the
// inter-iteration gaps grow, and no pattern forms.
func Figure9(w io.Writer) (*pipeline.Result, error) {
	spec := PaperExampleLoop()
	cfg := pipeline.DefaultConfig(machine.Infinite())
	cfg.Optimize = false
	cfg.GapPrevention = false
	cfg.Unwind = 16
	res, err := pipeline.PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Figure 9 — schedule WITHOUT gap prevention (gaps grow, no convergence):")
	fmt.Fprint(w, FigureRows(res.Unwound.G, ExampleOpName, 28))
	fmt.Fprintf(w, "converged=%v (Perfect Pipelining cannot re-form a loop)\n", res.Converged)
	return res, nil
}

// Figure13 reproduces the gapless schedule: same loop, gap prevention
// on, converging to the new loop body.
func Figure13(w io.Writer) (*pipeline.Result, error) {
	spec := PaperExampleLoop()
	cfg := pipeline.DefaultConfig(machine.Infinite())
	cfg.Optimize = false
	res, err := pipeline.PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Figure 13 — GRiP schedule WITH gap prevention (converges):")
	fmt.Fprint(w, FigureRows(res.Unwound.G, ExampleOpName, 24))
	fmt.Fprintf(w, "converged=%v %v — the repeating rows become the new loop body\n",
		res.Converged, res.Kernel)
	return res, nil
}

// Figure8And11 prints scheduling traces with the per-node candidate
// sets: the Unifiable-ops sets of Figure 8 and the Moveable-ops sets of
// Figure 11, on the same example program.
func Figure8And11(w io.Writer, fus int) error {
	spec := PaperExampleLoop()

	format := func(ops []*ir.Op) string {
		var parts []string
		for i, op := range ops {
			if i >= 12 {
				parts = append(parts, "...")
				break
			}
			parts = append(parts, fmt.Sprintf("%s%d", ExampleOpName(op.Origin), op.Iter))
		}
		return "(" + strings.Join(parts, ",") + ")"
	}

	fmt.Fprintf(w, "Figure 8 — Unifiable-ops scheduling trace (%d FUs):\n", fus)
	uw, err := pipeline.Unwind(spec, 4)
	if err != nil {
		return err
	}
	g := uw.BuildGraph()
	ddg := deps.Build(uw.Ops)
	ctx := ps.NewCtx(g, machine.New(fus), uw.ExitLive)
	row := 0
	_, err = unifiable.Schedule(ctx, uw.Ops, deps.NewPriority(ddg), unifiable.Options{
		TraceNode: func(n *graph.Node, set []*ir.Op) {
			if row < 14 {
				fmt.Fprintf(w, "  node n%-3d unifiable=%s\n", n.ID, format(set))
			}
			row++
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, "  final schedule:\n")
	fmt.Fprint(w, indent(FigureRows(g, ExampleOpName, 14), "  "))

	fmt.Fprintf(w, "\nFigure 11 — GRiP scheduling trace with Moveable-ops sets (%d FUs):\n", fus)
	cfg := pipeline.DefaultConfig(machine.New(fus))
	cfg.Optimize = false
	cfg.Unwind = 4
	row = 0
	cfg.TraceNode = func(n *graph.Node, set []*ir.Op) {
		if row < 14 {
			fmt.Fprintf(w, "  node n%-3d moveable=%s\n", n.ID, format(set))
		}
		row++
	}
	res, err := pipeline.PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(w, "  final schedule:\n")
	fmt.Fprint(w, indent(FigureRows(res.Unwound.G, ExampleOpName, 14), "  "))
	return nil
}

// IntroExample contrasts GRiP against modulo scheduling on the section 1
// example, returning both speedups. Both cells run through the batch
// engine and the process-wide tiered cache — everything printed here
// is in the normalized metrics, so with a disk tier attached a rerun
// schedules nothing.
func IntroExample(w io.Writer) (grip, mod float64, err error) {
	spec := IntroExampleLoop()
	m := machine.New(4)
	jobs := []batch.Job{
		{Technique: "grip", Spec: spec, Machine: m},
		{Technique: "modulo", Spec: spec, Machine: m},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Cache: defaultCache})
	if err != nil {
		return 0, 0, err
	}
	for _, o := range outs {
		if o.Err != nil {
			return 0, 0, o.Err
		}
	}
	g, mo := outs[0].Result, outs[1].Result
	fmt.Fprintf(w, "Section 1 example — %d ops, 4 FUs:\n", len(spec.Body))
	fmt.Fprintf(w, "  GRiP perfect pipelining: kernel %d rows / %d iters, %.3f cycles/iter, speedup %.2f\n",
		g.KernelRows, g.KernelIterSpan, g.CyclesPerIter, g.Speedup)
	fmt.Fprintf(w, "  modulo scheduling:       II=%d (integral), speedup %.2f\n",
		mo.KernelRows, mo.Speedup)
	fmt.Fprintf(w, "  GRiP lets %d iterations into the loop body; modulo's local view cannot.\n",
		g.KernelIterSpan)
	return g.Speedup, mo.Speedup, nil
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// Figure123 renders the structural transformation figures: an IBM VLIW
// tree instruction (Figure 1) and before/after of move-op and move-cj
// (Figures 2 and 3) on tiny graphs.
func Figure123(w io.Writer) error {
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2, r3 := al.Reg("r1"), al.Reg("r2"), al.Reg("r3")

	n1 := g.NewNode()
	n2 := g.NewNode()
	n3 := g.NewNode()
	cj1 := &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 0, BImm: true, Rel: ir.Gt}
	cj2 := &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r2}, Imm: 0, BImm: true, Rel: ir.Gt}
	tl, fl := g.InsertBranchAtLeaf(n1.Root, cj1, n2, nil)
	g.InsertBranchAtLeaf(fl, cj2, n3, nil)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Add, Dst: r3, Src: [2]ir.Reg{r1, r2}}, n1.Root)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: r2, Imm: 7}, tl)
	g.Entry = n1
	fmt.Fprintln(w, "Figure 1 — an IBM VLIW instruction is a tree of conditional jumps")
	fmt.Fprintln(w, "with operations attached to the vertices of the selected path:")
	fmt.Fprintf(w, "  %s\n\n", g.NodeString(n1))

	// Figure 2: move-op.
	al2 := ir.NewAlloc()
	g2 := graph.New(al2)
	x, y := al2.Reg("x"), al2.Reg("y")
	opA := &ir.Op{ID: al2.OpID(), Kind: ir.Const, Dst: x, Imm: 1}
	opB := &ir.Op{ID: al2.OpID(), Kind: ir.Const, Dst: y, Imm: 2}
	m1 := graph.AppendOp(g2, nil, opA)
	graph.AppendOp(g2, m1, opB)
	fmt.Fprintln(w, "Figure 2 — move-op(From,To,Op,Path):")
	fmt.Fprintf(w, "  before:\n%s", indent(g2.String(), "    "))
	ctx := ps.NewCtx(g2, machine.New(2), nil)
	if blk := ctx.TryMoveOpUp(opB, true, nil); blk.Kind != ps.BlockNone {
		return fmt.Errorf("figure 2 move failed: %v", blk.Kind)
	}
	fmt.Fprintf(w, "  after:\n%s\n", indent(g2.String(), "    "))

	// Figure 3: move-cj with node splitting.
	al3 := ir.NewAlloc()
	g3 := graph.New(al3)
	p, q := al3.Reg("p"), al3.Reg("q")
	arr := al3.Array("M")
	opC := &ir.Op{ID: al3.OpID(), Kind: ir.Const, Dst: p, Imm: 3}
	k1 := graph.AppendOp(g3, nil, opC)
	cj := &ir.Op{ID: al3.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{q}, Imm: 5, BImm: true, Rel: ir.Lt}
	k2 := graph.AppendBranch(g3, k1, cj, nil)
	st := &ir.Op{ID: al3.OpID(), Kind: ir.Store, Src: [2]ir.Reg{p}, Mem: ir.MemRef{Array: arr, Index: 0}}
	graph.AppendOp(g3, k2, st)
	// Give the branch node a root op so the split clones it to the drain.
	add := &ir.Op{ID: al3.OpID(), Kind: ir.Add, Dst: q, Src: [2]ir.Reg{p}, Imm: 1, BImm: true}
	g3.AddOp(add, k2.Root)
	fmt.Fprintln(w, "Figure 3 — move-cj(From,To,Op,Path) splits the source node:")
	fmt.Fprintf(w, "  before:\n%s", indent(g3.String(), "    "))
	ctx3 := ps.NewCtx(g3, machine.New(4), nil)
	if blk := ctx3.TryMoveCJUp(cj, true); blk.Kind != ps.BlockNone {
		return fmt.Errorf("figure 3 move failed: %v", blk.Kind)
	}
	fmt.Fprintf(w, "  after (false side is the cloned drain):\n%s", indent(g3.String(), "    "))
	return nil
}
