package harness

import (
	"context"
	"errors"
	"math/rand"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/livermore"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/sched/store"
)

// Injected chaos errors. ErrChaosCompute is transient-looking (a plain
// error on the compute path); disk writes inject ENOSPC so the store's
// no-point-retrying classification is exercised too.
var (
	ErrChaosCompute = errors.New("chaos: injected compute failure")
	ErrChaosIO      = errors.New("chaos: injected disk I/O failure")
)

// ChaosOptions seed one chaos run: a deterministic fault schedule over
// the batch compute path and the disk tier, plus a cancellation storm.
// The zero value injects nothing; DefaultChaos returns the standard
// schedule the CLI and the chaos suite run.
type ChaosOptions struct {
	// Seed drives every random decision (fault plan, cancellation
	// subset, retry jitter), so a run is replayable by seed.
	Seed int64
	// Parallelism and Timeout are the main pass's batch options.
	Parallelism int
	Timeout     time.Duration

	// PanicEvery panics the backend on every Nth compute (quarantine);
	// FailEvery injects a compute error on every Nth compute. 0 = off.
	PanicEvery int
	FailEvery  int

	// WriteFailEvery injects an ENOSPC-style failure on every Nth disk
	// write, capped at WriteFailLimit fires so the breaker can recover;
	// CorruptEvery tears every Nth disk write (the entry is written
	// corrupt and must be rejected on read); ReadFailEvery injects an
	// I/O error on every Nth disk read, capped at ReadFailLimit.
	WriteFailEvery, WriteFailLimit int
	CorruptEvery                   int
	ReadFailEvery, ReadFailLimit   int

	// CancelFraction of the jobs (seeded choice) run in a preliminary
	// pass under CancelTimeout, so a slice of the table is genuinely
	// cancelled mid-compute — cooperative cancellation under fire.
	CancelFraction float64
	CancelTimeout  time.Duration

	// DiskDir, when non-empty, attaches a persistent tier rooted there,
	// opened with Disk (zero value = aggressive chaos breaker: trips on
	// a single failure, 100ms cooldown, jitter seeded by Seed — periodic
	// faults interleave with successes, so a consecutive-failure
	// threshold above 1 would never fire).
	DiskDir string
	Disk    store.DiskOptions
}

// DefaultChaos is the standard fault schedule: every failure mode on,
// at periods chosen to be pairwise coprime-ish so faults interleave
// rather than stack on the same cells.
func DefaultChaos(seed int64) ChaosOptions {
	return ChaosOptions{
		Seed:           seed,
		PanicEvery:     7,
		FailEvery:      11,
		WriteFailEvery: 3,
		WriteFailLimit: 5,
		CorruptEvery:   5,
		ReadFailEvery:  6,
		ReadFailLimit:  4,
		CancelFraction: 0.2,
		CancelTimeout:  3 * time.Millisecond,
	}
}

// plan compiles the options into a seeded fault plan. Rule order
// matters at shared sites: when an ENOSPC period and a corruption
// period coincide on one write, the failure wins.
func (o ChaosOptions) plan() *faults.Plan {
	var rules []faults.Rule
	if o.PanicEvery > 0 {
		rules = append(rules, faults.Rule{Site: faults.BatchCompute, Every: o.PanicEvery, Panic: "chaos schedule"})
	}
	if o.FailEvery > 0 {
		rules = append(rules, faults.Rule{Site: faults.BatchCompute, Every: o.FailEvery, Err: ErrChaosCompute})
	}
	if o.WriteFailEvery > 0 {
		rules = append(rules, faults.Rule{Site: faults.DiskWrite, Every: o.WriteFailEvery, Limit: o.WriteFailLimit, Err: syscall.ENOSPC})
	}
	if o.CorruptEvery > 0 {
		rules = append(rules, faults.Rule{Site: faults.DiskWrite, Every: o.CorruptEvery, Corrupt: true})
	}
	if o.ReadFailEvery > 0 {
		rules = append(rules, faults.Rule{Site: faults.DiskRead, Every: o.ReadFailEvery, Limit: o.ReadFailLimit, Err: ErrChaosIO})
	}
	return faults.NewPlan(o.Seed, rules...)
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	// Outcomes is the main pass, in job order (kernels outermost, FU
	// counts inner, techniques innermost — RunTable's order).
	Outcomes []batch.Outcome
	// CancelOutcomes is the preliminary cancellation storm: the seeded
	// job subset run under the tiny per-job timeout.
	CancelOutcomes []batch.Outcome
	// Recovered reruns the main pass's failures with faults disabled:
	// every poisoned or cut cell must compute cleanly afterwards,
	// because errors are never cached.
	Recovered []batch.Outcome
	// Stats summarizes the main pass; Cache is the tiered cache's
	// traffic and per-tier health after all passes.
	Stats batch.Stats
	Cache batch.CacheStats
	// Plan exposes per-site hit/fire counters for assertions.
	Plan *faults.Plan
	// Disk is the persistent tier, nil when DiskDir was empty.
	Disk *store.Disk
}

// Survivors returns the main pass's successful outcomes — the cells a
// bit-identity check compares against the fault-free baseline.
func (r *ChaosReport) Survivors() []batch.Outcome {
	var ok []batch.Outcome
	for _, o := range r.Outcomes {
		if o.Err == nil {
			ok = append(ok, o)
		}
	}
	return ok
}

// ChaosTable runs the technique matrix under a seeded fault schedule —
// the fault-tolerance acceptance mode. Three passes against one fresh
// tiered cache (never the process-wide shared cache):
//
//  1. a cancellation storm: a seeded fraction of the jobs under a tiny
//     per-job timeout, so cells are genuinely cancelled mid-compute;
//  2. the full matrix with panics, compute errors, torn and failing
//     disk writes, and failing disk reads injected — each poisoned
//     cell fails alone, everything else must compute exactly;
//  3. a recovery pass with faults disabled: the failures rerun clean
//     (errors are never cached), and — when a disk tier is attached —
//     the breaker's half-open probes reclose the circuit.
//
// The fault plan is enabled process-wide for the duration of passes 1
// and 2; do not run concurrent fault-free harness traffic around a
// chaos run.
func ChaosTable(ctx context.Context, kernels []*livermore.Kernel, fus []int, techniques []string, o ChaosOptions) (*ChaosReport, error) {
	if o.CancelTimeout <= 0 {
		o.CancelTimeout = 3 * time.Millisecond
	}
	rep := &ChaosReport{Plan: o.plan()}

	var jobs []batch.Job
	for _, k := range kernels {
		for _, f := range fus {
			jobs = append(jobs, cellJobs(k, f, techniques, sched.Config{})...)
		}
	}

	cache := batch.NewCache(8192)
	if o.DiskDir != "" {
		dopts := o.Disk
		if dopts == (store.DiskOptions{}) {
			dopts = store.DiskOptions{BreakerThreshold: 1, BreakerCooldown: 100 * time.Millisecond, Seed: o.Seed}
		}
		disk, err := store.OpenDiskOptions(o.DiskDir, dopts)
		if err != nil {
			return nil, err
		}
		rep.Disk = disk
		cache.AttachDisk(disk)
	}

	faults.Enable(rep.Plan)
	defer faults.Disable()

	// Pass 1: cancellation storm over a seeded subset.
	rng := rand.New(rand.NewSource(o.Seed))
	var storm []batch.Job
	for _, j := range jobs {
		if rng.Float64() < o.CancelFraction {
			storm = append(storm, j)
		}
	}
	if len(storm) > 0 {
		outs, err := batch.Run(ctx, storm, batch.Options{
			Parallelism: o.Parallelism, Timeout: o.CancelTimeout, Cache: cache})
		rep.CancelOutcomes = outs
		if err != nil {
			return rep, err
		}
	}

	// Pass 2: the full matrix under fire.
	outs, err := batch.Run(ctx, jobs, batch.Options{
		Parallelism: o.Parallelism, Timeout: o.Timeout, Cache: cache})
	rep.Outcomes = outs
	rep.Stats = batch.Summarize(outs)
	if err != nil {
		rep.Cache = cache.Stats()
		return rep, err
	}

	// Pass 3: recovery. Faults off; give the breaker its cooldown so
	// the rerun's writes arrive as half-open probes and can reclose it.
	faults.Disable()
	if rep.Disk != nil {
		if st := rep.Disk.Stats(); st.Breaker != "closed" {
			d := o.Disk.BreakerCooldown
			if d <= 0 {
				d = 100 * time.Millisecond
			}
			time.Sleep(d)
		}
	}
	var failed []batch.Job
	for _, out := range outs {
		if out.Err != nil {
			failed = append(failed, out.Job)
		}
	}
	if len(failed) > 0 {
		rec, err := batch.Run(ctx, failed, batch.Options{Parallelism: o.Parallelism, Cache: cache})
		rep.Recovered = rec
		if err != nil {
			rep.Cache = cache.Stats()
			return rep, err
		}
	}
	rep.Cache = cache.Stats()
	return rep, nil
}
