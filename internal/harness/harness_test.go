package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/livermore"
	"repro/internal/sched/batch"
)

// TestTable1ShapeProperties reproduces Table 1 and asserts the paper's
// qualitative claims: GRiP converges everywhere, is never materially
// worse than POST, is essentially optimal (against the analytic bound)
// at 2 and 4 functional units, and speedups grow with the machine.
func TestTable1ShapeProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("full table in -short mode")
	}
	tbl, err := RunTable1(livermore.All(), []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.Format())
	losses := 0
	for li, name := range tbl.Names {
		prev := 0.0
		for fi, f := range tbl.FUs {
			c := tbl.Cells[li][fi]
			if !c.GripConv {
				t.Errorf("%s @%dFU: GRiP did not converge", name, f)
			}
			// Paper: "In all cases GRiP performs no worse than POST."
			// Our reconstruction of POST (the paper gives one sentence
			// of description) occasionally edges out our GRiP; allow a
			// few such cells but never a large loss, and require the
			// aggregate claim below. EXPERIMENTS.md discusses the
			// deviating cells.
			if c.Grip < c.Post*0.99 {
				losses++
				if c.Grip < c.Post*0.70 {
					t.Errorf("%s @%dFU: GRiP %.2f far below POST %.2f", name, f, c.Grip, c.Post)
				}
			}
			if c.Grip < prev-0.01 {
				t.Errorf("%s: speedup decreased from %.2f to %.2f at %dFU", name, prev, c.Grip, f)
			}
			prev = c.Grip
			// Near-optimality at 2 and 4 FUs, against the analytic
			// pre-optimization bound (redundancy removal can exceed it).
			if f <= 4 && c.Grip < 0.85*c.Bound {
				t.Errorf("%s @%dFU: GRiP %.2f well below bound %.2f", name, f, c.Grip, c.Bound)
			}
		}
	}
	if losses > 4 {
		t.Errorf("GRiP lost to POST in %d cells; paper says never", losses)
	}
	for fi := range tbl.FUs {
		if tbl.MeanRow[fi].Grip < tbl.MeanRow[fi].Post-0.01 {
			t.Errorf("mean @%dFU: GRiP %.2f < POST %.2f", tbl.FUs[fi],
				tbl.MeanRow[fi].Grip, tbl.MeanRow[fi].Post)
		}
	}
	out := tbl.Format()
	for _, want := range []string{"LL1", "LL14", "Mean", "WHM"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, "LL3,4,") {
		t.Errorf("CSV missing expected row")
	}
}

// TestParallelTableBitIdentical runs a Table 1 slice with four workers
// and then sequentially, with a fresh result cache for each run, and
// requires every cell to be bit-identical — the acceptance criterion
// for moving the harness onto the batch engine. The parallel pass runs
// first so that (on a fresh test binary, e.g. CI's -short -race run)
// POST phase-1 results are computed by concurrent workers rather than
// replayed from the process-global phase-1 memo, which result caches
// cannot isolate.
func TestParallelTableBitIdentical(t *testing.T) {
	kernels := []*livermore.Kernel{
		livermore.ByName("LL1"), livermore.ByName("LL3"), livermore.ByName("LL5"),
	}
	fus := []int{2, 4}
	par, _, err := RunTable1Ctx(context.Background(), kernels, fus,
		batch.Options{Parallelism: 4, Cache: batch.NewCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := RunTable1Ctx(context.Background(), kernels, fus,
		batch.Options{Parallelism: 1, Cache: batch.NewCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	for li := range seq.Cells {
		for fi := range seq.Cells[li] {
			if seq.Cells[li][fi] != par.Cells[li][fi] {
				t.Errorf("%s @%dFU: sequential %+v != parallel %+v",
					seq.Names[li], fus[fi], seq.Cells[li][fi], par.Cells[li][fi])
			}
		}
	}
}

// TestSharedCacheMakesRerunsFree reruns a cell through the shared cache
// and requires the second pass to be all cache hits.
func TestSharedCacheMakesRerunsFree(t *testing.T) {
	kernels := []*livermore.Kernel{livermore.ByName("LL3")}
	cache := batch.NewCache(64)
	opts := batch.Options{Cache: cache}
	first, _, err := RunTable1Ctx(context.Background(), kernels, []int{2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, outs, err := RunTable1Ctx(context.Background(), kernels, []int{2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.CacheHit {
			t.Errorf("%s %s: rerun missed the cache", o.Job.Technique, o.Job.DisplayName())
		}
	}
	second, _, err := RunTable1Ctx(context.Background(), kernels, []int{2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cells[0][0] != second.Cells[0][0] {
		t.Errorf("cached cell differs: %+v != %+v", first.Cells[0][0], second.Cells[0][0])
	}
}

// TestValidateSample proves semantic equivalence of the scheduled
// pipelines for a representative subset (the full sweep runs in the
// livermore and pipeline packages).
func TestValidateSample(t *testing.T) {
	for _, name := range []string{"LL1", "LL3", "LL5", "LL13"} {
		k := livermore.ByName(name)
		for _, f := range []int{2, 8} {
			if err := ValidateCell(k, f); err != nil {
				t.Errorf("%s @%dFU: %v", name, f, err)
			}
		}
	}
}
