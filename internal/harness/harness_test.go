package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/livermore"
	"repro/internal/sched"
	"repro/internal/sched/batch"
)

// TestTable1ShapeProperties reproduces Table 1 and asserts the paper's
// qualitative claims: GRiP converges everywhere, is never materially
// worse than POST, is essentially optimal (against the analytic bound)
// at 2 and 4 functional units, and speedups grow with the machine.
func TestTable1ShapeProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("full table in -short mode")
	}
	tbl, err := RunTable1(livermore.All(), []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.Format())
	gi, pi := tbl.Col("grip"), tbl.Col("post")
	if gi < 0 || pi < 0 {
		t.Fatalf("Table 1 misses grip/post columns: %v", tbl.Techniques)
	}
	losses := 0
	for li, name := range tbl.Names {
		prev := 0.0
		for fi, f := range tbl.FUs {
			c := tbl.Cells[li][fi]
			grip, post := c.Stats[gi], c.Stats[pi]
			if !grip.Converged {
				t.Errorf("%s @%dFU: GRiP did not converge", name, f)
			}
			// Paper: "In all cases GRiP performs no worse than POST."
			// Our reconstruction of POST (the paper gives one sentence
			// of description) occasionally edges out our GRiP; allow a
			// few such cells but never a large loss, and require the
			// aggregate claim below. EXPERIMENTS.md discusses the
			// deviating cells.
			if grip.Speedup < post.Speedup*0.99 {
				losses++
				if grip.Speedup < post.Speedup*0.70 {
					t.Errorf("%s @%dFU: GRiP %.2f far below POST %.2f", name, f, grip.Speedup, post.Speedup)
				}
			}
			if grip.Speedup < prev-0.01 {
				t.Errorf("%s: speedup decreased from %.2f to %.2f at %dFU", name, prev, grip.Speedup, f)
			}
			prev = grip.Speedup
			// Near-optimality at 2 and 4 FUs, against the analytic
			// pre-optimization bound (redundancy removal can exceed it).
			if f <= 4 && grip.Speedup < 0.85*c.Bound {
				t.Errorf("%s @%dFU: GRiP %.2f well below bound %.2f", name, f, grip.Speedup, c.Bound)
			}
		}
	}
	if losses > 4 {
		t.Errorf("GRiP lost to POST in %d cells; paper says never", losses)
	}
	for fi := range tbl.FUs {
		if tbl.MeanRow[fi].Stats[gi].Speedup < tbl.MeanRow[fi].Stats[pi].Speedup-0.01 {
			t.Errorf("mean @%dFU: GRiP %.2f < POST %.2f", tbl.FUs[fi],
				tbl.MeanRow[fi].Stats[gi].Speedup, tbl.MeanRow[fi].Stats[pi].Speedup)
		}
	}
	out := tbl.Format()
	for _, want := range []string{"LL1", "LL14", "Mean", "WHM", "GRiP", "POST"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, "LL3,4,grip,") || !strings.Contains(csv, "LL3,4,post,") {
		t.Errorf("CSV missing expected rows")
	}
}

// TestParallelTableBitIdentical runs a Table 1 slice with four workers
// and then sequentially, with a fresh result cache for each run, and
// requires every cell to be bit-identical — the acceptance criterion
// for moving the harness onto the batch engine. The parallel pass runs
// first so that (on a fresh test binary, e.g. CI's -short -race run)
// POST phase-1 results are computed by concurrent workers rather than
// replayed from the process-global phase-1 memo, which result caches
// cannot isolate.
func TestParallelTableBitIdentical(t *testing.T) {
	kernels := []*livermore.Kernel{
		livermore.ByName("LL1"), livermore.ByName("LL3"), livermore.ByName("LL5"),
	}
	fus := []int{2, 4}
	par, _, err := RunTable1Ctx(context.Background(), kernels, fus,
		batch.Options{Parallelism: 4, Cache: batch.NewCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := RunTable1Ctx(context.Background(), kernels, fus,
		batch.Options{Parallelism: 1, Cache: batch.NewCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	for li := range seq.Cells {
		for fi := range seq.Cells[li] {
			if !reflect.DeepEqual(seq.Cells[li][fi], par.Cells[li][fi]) {
				t.Errorf("%s @%dFU: sequential %+v != parallel %+v",
					seq.Names[li], fus[fi], seq.Cells[li][fi], par.Cells[li][fi])
			}
		}
	}
}

// TestSharedCacheMakesRerunsFree reruns a cell through the shared cache
// and requires the second pass to be all cache hits.
func TestSharedCacheMakesRerunsFree(t *testing.T) {
	kernels := []*livermore.Kernel{livermore.ByName("LL3")}
	cache := batch.NewCache(64)
	opts := batch.Options{Cache: cache}
	first, _, err := RunTable1Ctx(context.Background(), kernels, []int{2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, outs, err := RunTable1Ctx(context.Background(), kernels, []int{2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.CacheHit {
			t.Errorf("%s %s: rerun missed the cache", o.Job.Technique, o.Job.DisplayName())
		}
	}
	second, _, err := RunTable1Ctx(context.Background(), kernels, []int{2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Cells[0][0], second.Cells[0][0]) {
		t.Errorf("cached cell differs: %+v != %+v", first.Cells[0][0], second.Cells[0][0])
	}
}

// TestTableNTechniques renders a four-technique table through the same
// layout the paper pair uses — no generic-matrix fallback.
func TestTableNTechniques(t *testing.T) {
	kernels := []*livermore.Kernel{livermore.ByName("LL3")}
	techniques := []string{"list", "modulo", "post", "grip"}
	tbl, outs, err := RunTable(context.Background(), kernels, []int{2, 4}, techniques,
		sched.Config{}, batch.Options{Cache: batch.NewCache(16)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(kernels)*2*len(techniques) {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if got := tbl.Techniques; !reflect.DeepEqual(got, techniques) {
		t.Errorf("table techniques %v, want %v", got, techniques)
	}
	c := tbl.Cells[0][0]
	if len(c.Stats) != 4 {
		t.Fatalf("cell has %d stats, want 4", len(c.Stats))
	}
	// The paper's ordering on a vectorizable loop: pipelining beats
	// compaction, integrated constraints beat the rest.
	li, gi := tbl.Col("list"), tbl.Col("grip")
	for fi := range tbl.FUs {
		c := tbl.Cells[0][fi]
		if c.Stats[gi].Speedup < c.Stats[li].Speedup-0.01 {
			t.Errorf("@%dFU: grip %.2f below list %.2f", tbl.FUs[fi], c.Stats[gi].Speedup, c.Stats[li].Speedup)
		}
	}
	out := tbl.Format()
	for _, want := range []string{"List", "Modulo", "POST", "GRiP", "LL3", "Mean", "WHM"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted N-technique table missing %q:\n%s", want, out)
		}
	}
	csv := tbl.CSV()
	for _, tech := range techniques {
		if !strings.Contains(csv, "LL3,2,"+tech+",") {
			t.Errorf("CSV missing technique row %q", tech)
		}
	}
}

// TestTableConfigSweepDistinctCells proves a table under a non-default
// configuration occupies its own cache entries: a second run of the
// same config is all hits, while the default-config run still misses.
func TestTableConfigSweepDistinctCells(t *testing.T) {
	kernels := []*livermore.Kernel{livermore.ByName("LL3")}
	cache := batch.NewCache(64)
	opts := batch.Options{Cache: cache}
	cfg := sched.Config{Unwind: 12}
	_, outs, err := RunTable(context.Background(), kernels, []int{2}, []string{"grip"}, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].CacheHit {
		t.Error("fresh configured run hit the cache")
	}
	_, outs, err = RunTable(context.Background(), kernels, []int{2}, []string{"grip"}, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].CacheHit {
		t.Error("identical configured rerun missed the cache")
	}
	_, outs, err = RunTable(context.Background(), kernels, []int{2}, []string{"grip"}, sched.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].CacheHit {
		t.Error("default-config run shared the configured run's cache entry")
	}
}

// TestValidateSample proves semantic equivalence of the scheduled
// pipelines for a representative subset (the full sweep runs in the
// livermore and pipeline packages).
func TestValidateSample(t *testing.T) {
	for _, name := range []string{"LL1", "LL3", "LL5", "LL13"} {
		k := livermore.ByName(name)
		for _, f := range []int{2, 8} {
			if err := ValidateCell(k, f, sched.Config{}); err != nil {
				t.Errorf("%s @%dFU: %v", name, f, err)
			}
		}
	}
	// A configured schedule validates too — and it is the configured
	// schedule that gets validated, not the paper default.
	if err := ValidateCell(livermore.ByName("LL3"), 2, sched.Config{Unwind: 12}); err != nil {
		t.Errorf("LL3 @2FU unwind=12: %v", err)
	}
}
