package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/faults"
	"repro/internal/livermore"
	"repro/internal/sched/batch"
	"repro/internal/testutil"
)

// baselineIndex loads BENCH_table1.json and indexes the default-config
// cells by (loop, fus, technique) for bit-identity checks.
func baselineIndex(t *testing.T) map[string]batch.BenchCell {
	t.Helper()
	data, err := os.ReadFile("../../BENCH_table1.json")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var rep batch.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	idx := make(map[string]batch.BenchCell, len(rep.Cells))
	for _, c := range rep.Cells {
		if c.Config != "" || c.Error != "" {
			continue
		}
		idx[fmt.Sprintf("%s|%d|%s", c.Loop, c.FUs, c.Technique)] = c
	}
	if len(idx) == 0 {
		t.Fatal("baseline holds no default-config cells")
	}
	return idx
}

func assertCellsMatchBaseline(t *testing.T, label string, idx map[string]batch.BenchCell, outs []batch.Outcome) {
	t.Helper()
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s: %s/%s on %d FUs failed: %v",
				label, o.Job.DisplayName(), o.Job.Technique, o.Job.Machine.OpSlots, o.Err)
		}
		key := fmt.Sprintf("%s|%d|%s", o.Job.DisplayName(), o.Job.Machine.OpSlots, o.Job.Technique)
		want, ok := idx[key]
		if !ok {
			t.Errorf("%s: cell %s missing from baseline", label, key)
			continue
		}
		// Bit-identical: exact float equality against the recorded run.
		if o.Result.Speedup != want.Speedup || o.Result.Converged != want.Converged {
			t.Errorf("%s: cell %s drifted: got speedup=%v converged=%v, baseline %v/%v",
				label, key, o.Result.Speedup, o.Result.Converged, want.Speedup, want.Converged)
		}
	}
}

// TestChaosTableSurvivorsBitIdentical is the chaos acceptance run: the
// paper table under the standard seeded fault schedule, with a disk
// tier. Every cell the faults didn't touch must match the fault-free
// baseline exactly, every failure must rerun clean afterwards, the
// breaker must trip and end the run closed, and nothing may leak.
func TestChaosTableSurvivorsBitIdentical(t *testing.T) {
	testutil.LeakCheck(t)
	kernels, fus := livermore.All(), []int{2, 4, 8}
	if testing.Short() {
		kernels, fus = kernels[:5], []int{2, 4}
	}
	idx := baselineIndex(t)

	opts := DefaultChaos(42)
	opts.Parallelism = 4
	opts.DiskDir = t.TempDir()
	rep, err := ChaosTable(context.Background(), kernels, fus, Table1Techniques, opts)
	if err != nil {
		t.Fatalf("chaos run cut short: %v", err)
	}
	t.Logf("chaos: %+v; fires: compute=%d write=%d read=%d",
		rep.Stats, rep.Plan.Fires(faults.BatchCompute), rep.Plan.Fires(faults.DiskWrite), rep.Plan.Fires(faults.DiskRead))

	if rep.Stats.Jobs != len(kernels)*len(fus)*len(Table1Techniques) {
		t.Fatalf("main pass ran %d jobs, want %d", rep.Stats.Jobs, len(kernels)*len(fus)*len(Table1Techniques))
	}
	// The schedule must actually have hurt: injected panics quarantined,
	// injected compute and write faults fired.
	if rep.Stats.Quarantined == 0 || rep.Cache.Quarantined == 0 {
		t.Errorf("no quarantined cells (stats %d, cache %d) — panic injection never bit", rep.Stats.Quarantined, rep.Cache.Quarantined)
	}
	if rep.Plan.Fires(faults.BatchCompute) == 0 || rep.Plan.Fires(faults.DiskWrite) == 0 {
		t.Error("fault plan never fired on a required site")
	}
	if !testing.Short() {
		if batch.Summarize(rep.CancelOutcomes).Cancelled == 0 {
			t.Error("cancellation storm cancelled nothing")
		}
	}

	// Survivors are bit-identical to the fault-free baseline, and the
	// recovery pass recomputed every failure cleanly (errors were not
	// cached) to the same baseline values.
	assertCellsMatchBaseline(t, "survivor", idx, rep.Survivors())
	if rep.Stats.Failed > 0 && len(rep.Recovered) != rep.Stats.Failed {
		t.Errorf("recovery reran %d of %d failures", len(rep.Recovered), rep.Stats.Failed)
	}
	assertCellsMatchBaseline(t, "recovered", idx, rep.Recovered)

	// The breaker tripped under write faults and recovered: closed at
	// exit, with the trip count on the record.
	if rep.Cache.Disk.BreakerTrips == 0 {
		t.Error("disk breaker never tripped under write faults")
	}
	if rep.Cache.Disk.Breaker != "closed" {
		t.Errorf("disk breaker ended %q, want closed", rep.Cache.Disk.Breaker)
	}
	if rep.Cache.Disk.WriteErrors == 0 {
		t.Error("injected write failures left no WriteErrors trace")
	}
}

// TestChaosNoFaultsAllSurvive runs the chaos path with an empty fault
// schedule: the machinery itself (extra passes, fresh cache, breaker)
// must not perturb a healthy run.
func TestChaosNoFaultsAllSurvive(t *testing.T) {
	testutil.LeakCheck(t)
	kernels, fus := livermore.All(), []int{2, 4, 8}
	if testing.Short() {
		kernels, fus = kernels[:3], []int{2}
	}
	rep, err := ChaosTable(context.Background(), kernels, fus, Table1Techniques,
		ChaosOptions{Seed: 1, Parallelism: 4, DiskDir: t.TempDir()})
	if err != nil {
		t.Fatalf("run cut short: %v", err)
	}
	if rep.Stats.Failed != 0 {
		t.Fatalf("%d cells failed with no faults injected: %+v", rep.Stats.Failed, rep.Stats)
	}
	if rep.Plan.TotalFires() != 0 {
		t.Errorf("empty schedule fired %d faults", rep.Plan.TotalFires())
	}
	if rep.Cache.Disk.BreakerTrips != 0 || rep.Cache.Disk.Breaker != "closed" {
		t.Errorf("healthy run disturbed the breaker: %q after %d trips", rep.Cache.Disk.Breaker, rep.Cache.Disk.BreakerTrips)
	}
	assertCellsMatchBaseline(t, "cell", baselineIndex(t), rep.Outcomes)
}
