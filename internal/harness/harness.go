// Package harness runs the paper's experiments: Table 1 (GRiP vs POST
// over the Livermore loops at 2/4/8 functional units, with mean and
// weighted-harmonic-mean summary rows) plus per-cell semantic validation
// and analytic-bound cross-checks. The table is generalized: any set of
// registered techniques renders through the same layout, the paper's
// grip/post pair being the default.
//
// All cells run through the sched registry and the sched/batch engine:
// the table is a job matrix executed by a worker pool, and a
// process-wide result cache makes revisited cells (summary reruns,
// validation passes, bench sweeps, config sweeps) free. Cell values are
// independent of worker count and execution order — every technique is
// a pure function of (loop, machine, configuration) — so parallel runs
// are bit-identical to sequential ones.
package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/sched/store"
)

// defaultCache is shared by every harness entry point in the process,
// so a cell scheduled for the table is not re-scheduled for a summary
// pass or a bench rerun. The store is two-tier: metrics are tiny
// comparable values, so the metrics tier is sized to retain every
// fingerprint a process plausibly touches (full tables, sweeps over
// many configurations); raw scheduled graphs — megabytes each, wanted
// only by validation and figure paths — live in the store's capped
// raw tier and are recomputed when evicted.
var defaultCache = batch.NewCache(8192)

// SharedCache returns the process-wide result cache the harness runs
// against; commands can pass it to their own batch runs to share work
// with table runs.
func SharedCache() *batch.Cache { return defaultCache }

// EnableDiskCache attaches a persistent metrics tier rooted at dir to
// the process-wide shared cache, making table and bench runs
// incremental across processes: every computed cell is written through
// to disk, and a later process serves it from there without
// scheduling anything. Call it during command setup, before batch
// traffic. It returns the store so commands can report its stats or
// clear it.
//
// The store is opened durable (fsync before and after the publishing
// rename): -cache-dir runs are exactly the cross-process reuse case
// where losing a committed entry to a crash costs a recompute.
func EnableDiskCache(dir string) (*store.Disk, error) {
	d, err := store.OpenDiskOptions(dir, store.DiskOptions{Durable: true})
	if err != nil {
		return nil, err
	}
	defaultCache.AttachDisk(d)
	return d, nil
}

// Table1Techniques is the paper's technique pair, in its column order.
var Table1Techniques = []string{"grip", "post"}

// Stat is one technique's measurement in one table cell.
type Stat struct {
	Speedup   float64
	Converged bool
	// Barriers counts resource-barrier events during scheduling —
	// GRiP's integrated-constraint cost metric. The pipelining
	// techniques report it (POST's count comes from its phase-1 run,
	// where only branch slots can block); the single-iteration
	// baselines report zero.
	Barriers int
}

// Cell is one (loop, FU count) table cell: one Stat per technique, in
// Table.Techniques order, plus the technique-independent analytic
// bound.
type Cell struct {
	Stats []Stat
	// Bound is the analytic speedup limit for this loop and FU count:
	// seq ops / max(RecMII, ResMII) on the unoptimized body. Redundant
	// operation removal can push measured speedups above it.
	Bound float64
}

// Table holds a technique-comparison table; the paper's Table 1 is the
// instance with Techniques = ["grip", "post"].
type Table struct {
	Techniques []string
	FUs        []int
	Names      []string
	SeqOps     []int
	Cells      [][]Cell // [loop][fu]
	MeanRow    []Cell
	WHMRow     []Cell
}

// Col returns the Stats index of a technique, or -1 when the table does
// not contain it.
func (t *Table) Col(technique string) int {
	for i, name := range t.Techniques {
		if name == technique {
			return i
		}
	}
	return -1
}

// cellJobs returns one job per technique for one table cell.
func cellJobs(k *livermore.Kernel, fus int, techniques []string, cfg sched.Config) []batch.Job {
	m := machine.New(fus)
	jobs := make([]batch.Job, 0, len(techniques))
	for _, tech := range techniques {
		jobs = append(jobs, batch.Job{Technique: tech, Spec: k.Spec, Machine: m, Config: cfg, Label: k.Name})
	}
	return jobs
}

// cellOf assembles a Cell from the cell's outcomes (technique order).
func cellOf(k *livermore.Kernel, fus int, outs []batch.Outcome) (Cell, error) {
	c := Cell{Stats: make([]Stat, len(outs))}
	for i, o := range outs {
		if o.Err != nil {
			return Cell{}, fmt.Errorf("%s @%dFU %s: %w", k.Name, fus, o.Job.Technique, o.Err)
		}
		c.Stats[i] = Stat{
			Speedup:   o.Result.Speedup,
			Converged: o.Result.Converged,
			Barriers:  o.Result.Barriers,
		}
	}
	info := deps.Analyze(k.Spec)
	c.Bound = float64(k.Spec.SeqOpsPerIter()) / info.RateBound(k.Spec.SeqOpsPerIter()-1, fus)
	return c, nil
}

// RunCell measures one loop at one FU count with the given techniques
// under the paper-default configuration.
func RunCell(k *livermore.Kernel, fus int, techniques []string) (Cell, error) {
	outs, err := batch.Run(context.Background(), cellJobs(k, fus, techniques, sched.Config{}),
		batch.Options{Cache: defaultCache})
	if err != nil {
		return Cell{}, err
	}
	return cellOf(k, fus, outs)
}

// ValidateCell runs the GRiP pipeline for a cell under cfg (through
// the shared cache, so a cell already scheduled for the table costs
// nothing — the config joins the cache key, so the validated schedule
// is exactly the one the table displayed) and proves the scheduled
// code semantically equivalent to the original loop on the kernel's
// workload, for full and early-exit trip counts.
func ValidateCell(k *livermore.Kernel, fus int, cfg sched.Config) error {
	// Validation needs the raw scheduled graph, so the job asks for the
	// attachment; the cache serves it only when the raw tier still
	// holds it, and recomputes the cell otherwise — metrics tiers
	// (memory or disk) never satisfy a WantRaw request.
	outs, err := batch.Run(context.Background(),
		[]batch.Job{{Technique: "grip", Spec: k.Spec, Machine: machine.New(fus), Config: cfg,
			Label: k.Name, Want: sched.WantRaw}},
		batch.Options{Cache: defaultCache})
	if err != nil {
		return err
	}
	if outs[0].Err != nil {
		return outs[0].Err
	}
	// CloneRaw, not Raw: cached attachments are shared read-only, and
	// simulation setup (InitState) allocates array IDs on the result's
	// allocator.
	res := outs[0].Result.CloneRaw().(*pipeline.Result)
	u := int64(res.U)
	trips := []int64{k.Spec.Start + 1, k.Spec.Start + u/3, k.Spec.Start + u}
	return pipeline.ValidateSemantics(res, k.Vars, k.Arrays(res.U+16), trips)
}

// RunTable1 reproduces Table 1 for the given kernels and FU counts with
// the default batch options (GOMAXPROCS workers, shared cache).
func RunTable1(kernels []*livermore.Kernel, fus []int) (*Table, error) {
	t, _, err := RunTable1Ctx(context.Background(), kernels, fus, batch.Options{})
	return t, err
}

// RunTable1Ctx reproduces the paper's Table 1 (grip vs post, paper
// defaults) through the batch engine; see RunTable.
func RunTable1Ctx(ctx context.Context, kernels []*livermore.Kernel, fus []int, opts batch.Options) (*Table, []batch.Outcome, error) {
	return RunTable(ctx, kernels, fus, Table1Techniques, sched.Config{}, opts)
}

// RunTable runs a technique-comparison table through the batch engine:
// one job per (kernel, FU count, technique) cell entry, all under cfg,
// executed by a worker pool. The outcomes (in job order: kernels
// outermost, FU counts inner, techniques innermost) are returned
// alongside the table for bench reporting. A nil opts.Cache uses the
// process-wide shared cache.
func RunTable(ctx context.Context, kernels []*livermore.Kernel, fus []int, techniques []string, cfg sched.Config, opts batch.Options) (*Table, []batch.Outcome, error) {
	if opts.Cache == nil {
		opts.Cache = defaultCache
	}
	var jobs []batch.Job
	for _, k := range kernels {
		for _, f := range fus {
			jobs = append(jobs, cellJobs(k, f, techniques, cfg)...)
		}
	}
	outcomes, err := batch.Run(ctx, jobs, opts)
	if err != nil {
		return nil, outcomes, err
	}
	t := &Table{Techniques: append([]string(nil), techniques...), FUs: fus}
	nt := len(techniques)
	for ki, k := range kernels {
		t.Names = append(t.Names, k.Name)
		t.SeqOps = append(t.SeqOps, k.Spec.SeqOpsPerIter())
		row := make([]Cell, len(fus))
		for fi, f := range fus {
			base := (ki*len(fus) + fi) * nt
			c, err := cellOf(k, f, outcomes[base:base+nt])
			if err != nil {
				return nil, outcomes, err
			}
			row[fi] = c
		}
		t.Cells = append(t.Cells, row)
	}
	t.summarize()
	return t, outcomes, nil
}

// summarize fills the arithmetic-mean and weighted-harmonic-mean rows,
// per technique.
func (t *Table) summarize() {
	t.MeanRow = make([]Cell, len(t.FUs))
	t.WHMRow = make([]Cell, len(t.FUs))
	for fi := range t.FUs {
		mean := Cell{Stats: make([]Stat, len(t.Techniques))}
		whm := Cell{Stats: make([]Stat, len(t.Techniques))}
		for ti := range t.Techniques {
			var sum, wNum, wDen float64
			for li := range t.Cells {
				s := t.Cells[li][fi].Stats[ti]
				w := float64(t.SeqOps[li])
				sum += s.Speedup
				wNum += w
				if s.Speedup > 0 {
					wDen += w / s.Speedup
				}
			}
			mean.Stats[ti].Speedup = sum / float64(len(t.Cells))
			if wDen > 0 {
				whm.Stats[ti].Speedup = wNum / wDen
			}
		}
		t.MeanRow[fi] = mean
		t.WHMRow[fi] = whm
	}
}

// displayTech maps registry names to the paper's column headings.
var displayTech = map[string]string{
	"grip":   "GRiP",
	"post":   "POST",
	"modulo": "Modulo",
	"list":   "List",
}

func techHeading(name string) string {
	if d, ok := displayTech[name]; ok {
		return d
	}
	return name
}

// Format renders the table in the paper's layout, one column group per
// FU count with one sub-column per technique.
func (t *Table) Format() string {
	var b strings.Builder
	groupW := 8*len(t.Techniques) - 1
	fmt.Fprintf(&b, "%-6s", "Loop")
	for _, f := range t.FUs {
		fmt.Fprintf(&b, " | %-*s", groupW, fmt.Sprintf("%6d FU's", f))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-6s", "")
	for range t.FUs {
		b.WriteString(" |")
		for _, tech := range t.Techniques {
			fmt.Fprintf(&b, " %7s", techHeading(tech))
		}
	}
	b.WriteByte('\n')
	rule := strings.Repeat("-", 6+len(t.FUs)*(3+groupW)) + "\n"
	b.WriteString(rule)
	writeRow := func(label string, cells []Cell) {
		fmt.Fprintf(&b, "%-6s", label)
		for fi := range t.FUs {
			b.WriteString(" |")
			for ti := range t.Techniques {
				fmt.Fprintf(&b, " %7.1f", cells[fi].Stats[ti].Speedup)
			}
		}
		b.WriteByte('\n')
	}
	for li, name := range t.Names {
		writeRow(name, t.Cells[li])
	}
	b.WriteString(rule)
	writeRow("Mean", t.MeanRow)
	writeRow("WHM", t.WHMRow)
	return b.String()
}

// CSV renders the table for machine consumption, one row per (loop, FU
// count, technique).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("loop,fus,technique,speedup,bound,converged,barriers\n")
	for li, name := range t.Names {
		for fi, f := range t.FUs {
			c := t.Cells[li][fi]
			for ti, tech := range t.Techniques {
				s := c.Stats[ti]
				fmt.Fprintf(&b, "%s,%d,%s,%.3f,%.3f,%v,%d\n",
					name, f, tech, s.Speedup, c.Bound, s.Converged, s.Barriers)
			}
		}
	}
	return b.String()
}
