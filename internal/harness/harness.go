// Package harness runs the paper's experiments: Table 1 (GRiP vs POST
// over the Livermore loops at 2/4/8 functional units, with mean and
// weighted-harmonic-mean summary rows) plus per-cell semantic validation
// and analytic-bound cross-checks.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/post"
)

// Cell is one Table 1 cell pair.
type Cell struct {
	Grip, Post         float64
	GripConv, PostConv bool
	// Bound is the analytic speedup limit for this loop and FU count:
	// seq ops / max(RecMII, ResMII) on the unoptimized body. Redundant
	// operation removal can push measured speedups above it.
	Bound float64
	// Barriers counts GRiP resource-barrier events.
	Barriers int
}

// Table holds the full Table 1 reproduction.
type Table struct {
	FUs     []int
	Names   []string
	SeqOps  []int
	Cells   [][]Cell // [loop][fu]
	MeanRow []Cell
	WHMRow  []Cell
}

// RunCell measures one loop at one FU count with both techniques.
func RunCell(k *livermore.Kernel, fus int) (Cell, error) {
	m := machine.New(fus)
	cfg := pipeline.DefaultConfig(m)
	g, err := pipeline.PerfectPipeline(k.Spec, cfg)
	if err != nil {
		return Cell{}, fmt.Errorf("%s @%dFU grip: %w", k.Name, fus, err)
	}
	p, err := post.Pipeline(k.Spec, cfg)
	if err != nil {
		return Cell{}, fmt.Errorf("%s @%dFU post: %w", k.Name, fus, err)
	}
	info := deps.Analyze(k.Spec)
	bound := float64(k.Spec.SeqOpsPerIter()) / info.RateBound(k.Spec.SeqOpsPerIter()-1, fus)
	return Cell{
		Grip: g.Speedup, Post: p.Speedup,
		GripConv: g.Converged, PostConv: p.Converged,
		Bound:    bound,
		Barriers: g.Stats.ResourceBarriers,
	}, nil
}

// ValidateCell re-runs the GRiP pipeline for a cell and proves the
// scheduled code semantically equivalent to the original loop on the
// kernel's workload, for full and early-exit trip counts.
func ValidateCell(k *livermore.Kernel, fus int) error {
	cfg := pipeline.DefaultConfig(machine.New(fus))
	res, err := pipeline.PerfectPipeline(k.Spec, cfg)
	if err != nil {
		return err
	}
	u := int64(res.U)
	trips := []int64{k.Spec.Start + 1, k.Spec.Start + u/3, k.Spec.Start + u}
	return pipeline.ValidateSemantics(res, k.Vars, k.Arrays(res.U+16), trips)
}

// RunTable1 reproduces Table 1 for the given kernels and FU counts.
func RunTable1(kernels []*livermore.Kernel, fus []int) (*Table, error) {
	t := &Table{FUs: fus}
	for _, k := range kernels {
		t.Names = append(t.Names, k.Name)
		t.SeqOps = append(t.SeqOps, k.Spec.SeqOpsPerIter())
		row := make([]Cell, len(fus))
		for fi, f := range fus {
			c, err := RunCell(k, f)
			if err != nil {
				return nil, err
			}
			row[fi] = c
		}
		t.Cells = append(t.Cells, row)
	}
	t.MeanRow = make([]Cell, len(fus))
	t.WHMRow = make([]Cell, len(fus))
	for fi := range fus {
		var sumG, sumP float64
		var whgNum, whgDen, whpDen float64
		for li := range t.Cells {
			c := t.Cells[li][fi]
			w := float64(t.SeqOps[li])
			sumG += c.Grip
			sumP += c.Post
			whgNum += w
			whgDen += w / c.Grip
			whpDen += w / c.Post
		}
		n := float64(len(t.Cells))
		t.MeanRow[fi] = Cell{Grip: sumG / n, Post: sumP / n}
		t.WHMRow[fi] = Cell{Grip: whgNum / whgDen, Post: whgNum / whpDen}
	}
	return t, nil
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "Loop")
	for _, f := range t.FUs {
		fmt.Fprintf(&b, " | %6d FU's%-3s", f, "")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-6s", "")
	for range t.FUs {
		fmt.Fprintf(&b, " | %7s %7s", "GRiP", "POST")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 6+len(t.FUs)*19) + "\n")
	for li, name := range t.Names {
		fmt.Fprintf(&b, "%-6s", name)
		for fi := range t.FUs {
			c := t.Cells[li][fi]
			fmt.Fprintf(&b, " | %7.1f %7.1f", c.Grip, c.Post)
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", 6+len(t.FUs)*19) + "\n")
	fmt.Fprintf(&b, "%-6s", "Mean")
	for fi := range t.FUs {
		fmt.Fprintf(&b, " | %7.1f %7.1f", t.MeanRow[fi].Grip, t.MeanRow[fi].Post)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-6s", "WHM")
	for fi := range t.FUs {
		fmt.Fprintf(&b, " | %7.1f %7.1f", t.WHMRow[fi].Grip, t.WHMRow[fi].Post)
	}
	b.WriteByte('\n')
	return b.String()
}

// CSV renders the table for machine consumption.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("loop,fus,grip,post,bound,grip_converged,post_converged,grip_barriers\n")
	for li, name := range t.Names {
		for fi, f := range t.FUs {
			c := t.Cells[li][fi]
			fmt.Fprintf(&b, "%s,%d,%.3f,%.3f,%.3f,%v,%v,%d\n",
				name, f, c.Grip, c.Post, c.Bound, c.GripConv, c.PostConv, c.Barriers)
		}
	}
	return b.String()
}
