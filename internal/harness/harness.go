// Package harness runs the paper's experiments: Table 1 (GRiP vs POST
// over the Livermore loops at 2/4/8 functional units, with mean and
// weighted-harmonic-mean summary rows) plus per-cell semantic validation
// and analytic-bound cross-checks.
//
// All cells run through the sched registry and the sched/batch engine:
// the table is a job matrix executed by a worker pool, and a
// process-wide result cache makes revisited cells (summary reruns,
// validation passes, bench sweeps) free. Cell values are independent of
// worker count and execution order — every technique is a pure function
// of (loop, machine) — so parallel runs are bit-identical to
// sequential ones.
package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/sched/batch"
)

// defaultCache is shared by every harness entry point in the process,
// so a cell scheduled for the table is not re-scheduled for validation
// or a bench rerun. Entries pin their Raw scheduling results (the full
// unwound graph, roughly a megabyte for the widest cells), so the
// capacity is sized to the working set — the full Table 1 is 84 cells
// — rather than made generous; see ROADMAP for the two-tier design
// that would keep metrics cheap and graphs scarce.
var defaultCache = batch.NewCache(128)

// SharedCache returns the process-wide result cache the harness runs
// against; commands can pass it to their own batch runs to share work
// with table runs.
func SharedCache() *batch.Cache { return defaultCache }

// Cell is one Table 1 cell pair.
type Cell struct {
	Grip, Post         float64
	GripConv, PostConv bool
	// Bound is the analytic speedup limit for this loop and FU count:
	// seq ops / max(RecMII, ResMII) on the unoptimized body. Redundant
	// operation removal can push measured speedups above it.
	Bound float64
	// Barriers counts GRiP resource-barrier events.
	Barriers int
}

// Table holds the full Table 1 reproduction.
type Table struct {
	FUs     []int
	Names   []string
	SeqOps  []int
	Cells   [][]Cell // [loop][fu]
	MeanRow []Cell
	WHMRow  []Cell
}

// cellJobs returns the two jobs (GRiP, POST) of one Table 1 cell.
func cellJobs(k *livermore.Kernel, fus int) []batch.Job {
	m := machine.New(fus)
	return []batch.Job{
		{Technique: "grip", Spec: k.Spec, Machine: m, Label: k.Name},
		{Technique: "post", Spec: k.Spec, Machine: m, Label: k.Name},
	}
}

// cellOf assembles a Cell from the cell's two outcomes (grip first).
func cellOf(k *livermore.Kernel, fus int, grip, post batch.Outcome) (Cell, error) {
	if grip.Err != nil {
		return Cell{}, fmt.Errorf("%s @%dFU grip: %w", k.Name, fus, grip.Err)
	}
	if post.Err != nil {
		return Cell{}, fmt.Errorf("%s @%dFU post: %w", k.Name, fus, post.Err)
	}
	info := deps.Analyze(k.Spec)
	bound := float64(k.Spec.SeqOpsPerIter()) / info.RateBound(k.Spec.SeqOpsPerIter()-1, fus)
	return Cell{
		Grip: grip.Result.Speedup, Post: post.Result.Speedup,
		GripConv: grip.Result.Converged, PostConv: post.Result.Converged,
		Bound:    bound,
		Barriers: grip.Result.Barriers,
	}, nil
}

// RunCell measures one loop at one FU count with both techniques.
func RunCell(k *livermore.Kernel, fus int) (Cell, error) {
	outs, err := batch.Run(context.Background(), cellJobs(k, fus),
		batch.Options{Cache: defaultCache})
	if err != nil {
		return Cell{}, err
	}
	return cellOf(k, fus, outs[0], outs[1])
}

// ValidateCell runs the GRiP pipeline for a cell (through the shared
// cache, so a cell already scheduled for the table costs nothing) and
// proves the scheduled code semantically equivalent to the original
// loop on the kernel's workload, for full and early-exit trip counts.
func ValidateCell(k *livermore.Kernel, fus int) error {
	outs, err := batch.Run(context.Background(),
		[]batch.Job{{Technique: "grip", Spec: k.Spec, Machine: machine.New(fus), Label: k.Name}},
		batch.Options{Cache: defaultCache})
	if err != nil {
		return err
	}
	if outs[0].Err != nil {
		return outs[0].Err
	}
	// Clone before validating: cached results are shared read-only, and
	// simulation setup (InitState) allocates array IDs on the result's
	// allocator.
	res := outs[0].Result.Raw.(*pipeline.Result).Clone()
	u := int64(res.U)
	trips := []int64{k.Spec.Start + 1, k.Spec.Start + u/3, k.Spec.Start + u}
	return pipeline.ValidateSemantics(res, k.Vars, k.Arrays(res.U+16), trips)
}

// RunTable1 reproduces Table 1 for the given kernels and FU counts with
// the default batch options (GOMAXPROCS workers, shared cache).
func RunTable1(kernels []*livermore.Kernel, fus []int) (*Table, error) {
	t, _, err := RunTable1Ctx(context.Background(), kernels, fus, batch.Options{})
	return t, err
}

// RunTable1Ctx reproduces Table 1 through the batch engine: one job per
// (kernel, FU count, technique) cell half, executed by a worker pool.
// The outcomes (in job order: kernels outermost, FU counts inner,
// grip before post) are returned alongside the table for bench
// reporting. A nil opts.Cache uses the process-wide shared cache.
func RunTable1Ctx(ctx context.Context, kernels []*livermore.Kernel, fus []int, opts batch.Options) (*Table, []batch.Outcome, error) {
	if opts.Cache == nil {
		opts.Cache = defaultCache
	}
	var jobs []batch.Job
	for _, k := range kernels {
		for _, f := range fus {
			jobs = append(jobs, cellJobs(k, f)...)
		}
	}
	outcomes, err := batch.Run(ctx, jobs, opts)
	if err != nil {
		return nil, outcomes, err
	}
	t := &Table{FUs: fus}
	for ki, k := range kernels {
		t.Names = append(t.Names, k.Name)
		t.SeqOps = append(t.SeqOps, k.Spec.SeqOpsPerIter())
		row := make([]Cell, len(fus))
		for fi, f := range fus {
			base := (ki*len(fus) + fi) * 2
			c, err := cellOf(k, f, outcomes[base], outcomes[base+1])
			if err != nil {
				return nil, outcomes, err
			}
			row[fi] = c
		}
		t.Cells = append(t.Cells, row)
	}
	t.summarize()
	return t, outcomes, nil
}

// summarize fills the arithmetic-mean and weighted-harmonic-mean rows.
func (t *Table) summarize() {
	fus := t.FUs
	t.MeanRow = make([]Cell, len(fus))
	t.WHMRow = make([]Cell, len(fus))
	for fi := range fus {
		var sumG, sumP float64
		var whgNum, whgDen, whpDen float64
		for li := range t.Cells {
			c := t.Cells[li][fi]
			w := float64(t.SeqOps[li])
			sumG += c.Grip
			sumP += c.Post
			whgNum += w
			whgDen += w / c.Grip
			whpDen += w / c.Post
		}
		n := float64(len(t.Cells))
		t.MeanRow[fi] = Cell{Grip: sumG / n, Post: sumP / n}
		t.WHMRow[fi] = Cell{Grip: whgNum / whgDen, Post: whgNum / whpDen}
	}
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "Loop")
	for _, f := range t.FUs {
		fmt.Fprintf(&b, " | %6d FU's%-3s", f, "")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-6s", "")
	for range t.FUs {
		fmt.Fprintf(&b, " | %7s %7s", "GRiP", "POST")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 6+len(t.FUs)*19) + "\n")
	for li, name := range t.Names {
		fmt.Fprintf(&b, "%-6s", name)
		for fi := range t.FUs {
			c := t.Cells[li][fi]
			fmt.Fprintf(&b, " | %7.1f %7.1f", c.Grip, c.Post)
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", 6+len(t.FUs)*19) + "\n")
	fmt.Fprintf(&b, "%-6s", "Mean")
	for fi := range t.FUs {
		fmt.Fprintf(&b, " | %7.1f %7.1f", t.MeanRow[fi].Grip, t.MeanRow[fi].Post)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-6s", "WHM")
	for fi := range t.FUs {
		fmt.Fprintf(&b, " | %7.1f %7.1f", t.WHMRow[fi].Grip, t.WHMRow[fi].Post)
	}
	b.WriteByte('\n')
	return b.String()
}

// CSV renders the table for machine consumption.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("loop,fus,grip,post,bound,grip_converged,post_converged,grip_barriers\n")
	for li, name := range t.Names {
		for fi, f := range t.FUs {
			c := t.Cells[li][fi]
			fmt.Fprintf(&b, "%s,%d,%.3f,%.3f,%.3f,%v,%v,%d\n",
				name, f, c.Grip, c.Post, c.Bound, c.GripConv, c.PostConv, c.Barriers)
		}
	}
	return b.String()
}
