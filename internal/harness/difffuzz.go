// Differential fuzzing: drive generated loops through every registered
// backend via the batch engine and judge each result against the
// strongest oracle available for its technique.
//
// The pipelining techniques (grip, post) expose executable scheduled
// graphs, so they get the full semantic oracle: the scheduled program
// runs in internal/sim against a fresh, unoptimized, unscheduled
// unwinding of the same loop on the same deterministic workload, for
// full and early-exit trip counts (pipeline.ValidateSemantics — the
// same machinery behind the CLI's -validate). The single-iteration
// baselines (modulo, list) report metrics only, so they get analytic
// oracles instead: their cycles-per-iteration must respect the
// dependence-theoretic rate bound (max of the recurrence and resource
// MII) from below and the sequential iteration cost from above —
// neither removes or adds operations, so landing outside that band is
// a scheduler bug by construction. Every job additionally runs under
// sched.Config.CrossCheck, so the incremental scheduler fast paths are
// re-verified against their retained reference implementations on every
// generated loop.
//
// Failures are classified (panic, timeout, scheduler error, semantic
// mismatch, livelock, metric violation), shrunk by the greedy minimizer
// in internal/fuzzgen with this same oracle as the keep-predicate, and
// serialized through internal/textir into the regression corpus.
package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/deps"
	"repro/internal/fuzzgen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/sim"
	"repro/internal/textir"
)

// FailureClass partitions fuzz failures for triage and for minimization
// (the minimizer reproduces the class, not the exact error text).
type FailureClass string

const (
	// FailPanic: the backend panicked (recovered into *sched.PanicError).
	FailPanic FailureClass = "panic"
	// FailTimeout: the job exceeded its per-job wall budget.
	FailTimeout FailureClass = "timeout"
	// FailError: the backend returned an error (includes cross-check
	// divergences surfaced as errors rather than panics).
	FailError FailureClass = "error"
	// FailMismatch: the scheduled program computed different observable
	// state than the original loop.
	FailMismatch FailureClass = "mismatch"
	// FailLivelock: the scheduled (or reference) program exhausted the
	// simulator's cycle budget — a runaway schedule.
	FailLivelock FailureClass = "livelock"
	// FailMetrics: a reported metric violated an analytic invariant
	// (non-positive rate, rate bound, modulo slower than list).
	FailMetrics FailureClass = "metrics"
)

// FuzzFailure is one failed check: which technique, on which machine,
// failing how.
type FuzzFailure struct {
	Technique string
	FUs       int
	Class     FailureClass
	Err       error
}

func (f FuzzFailure) String() string {
	return fmt.Sprintf("%s@%dFU %s: %v", f.Technique, f.FUs, f.Class, f.Err)
}

// LoopVerdict is the oracle's judgment of one loop across the whole
// technique × machine matrix.
type LoopVerdict struct {
	Spec *ir.LoopSpec
	// Checks is the number of (technique, FU) cells judged; Explained
	// counts cells whose failure the Explain hook claimed (injected
	// chaos faults) — expected, so not failures.
	Checks    int
	Explained int
	Failures  []FuzzFailure
}

// Failed reports whether any unexplained check failed.
func (v *LoopVerdict) Failed() bool { return len(v.Failures) > 0 }

// FuzzOptions configure the differential oracle. The zero value means:
// all registered techniques, 2/4/8 FUs, paper-default configuration
// with the unwind ladder capped at FuzzMaxUnwind, a 30s per-job
// timeout, no cache, nothing explained.
type FuzzOptions struct {
	// Machines are the FU counts to sweep; nil means 2, 4, 8.
	Machines []int
	// Techniques are the backends to judge; nil means every registered
	// one.
	Techniques []string
	// Config is the scheduling configuration. CrossCheck is forced on,
	// and a zero MaxUnwind becomes FuzzMaxUnwind rather than the paper
	// default (96): adversarial loops that never converge are priced at
	// the cap, and fuzz throughput matters more than squeezing out
	// late convergence.
	Config sched.Config
	// Parallelism and Timeout are passed to the batch engine. Timeout 0
	// means 30s — unlike the engine, the fuzzer never runs unbounded,
	// because a hung scheduler is precisely a finding (FailTimeout).
	Parallelism int
	Timeout     time.Duration
	// Explain, when set, is consulted on every job error; a true return
	// marks the failure expected (counted, not reported). Chaos mode
	// passes ExplainInjected so injected faults don't read as findings.
	Explain func(error) bool
	// Cache, when set, is consulted by the batch engine. Leave it nil
	// for fuzzing: CrossCheck is excluded from result fingerprints, so
	// a cache shared with non-checking traffic could serve results whose
	// cross-check never ran.
	Cache *batch.Cache
}

// FuzzMaxUnwind is the fuzzer's default cap on the automatic unwind
// ladder (the paper default is 96; see FuzzOptions.Config).
const FuzzMaxUnwind = 24

// DefaultFuzzTimeout bounds each scheduling job in a fuzz run.
const DefaultFuzzTimeout = 30 * time.Second

func (o FuzzOptions) normalized() FuzzOptions {
	if o.Machines == nil {
		o.Machines = []int{2, 4, 8}
	}
	if o.Techniques == nil {
		o.Techniques = sched.Names()
	}
	o.Config.CrossCheck = true
	if o.Config.MaxUnwind == 0 {
		o.Config.MaxUnwind = FuzzMaxUnwind
	}
	if o.Timeout == 0 {
		o.Timeout = DefaultFuzzTimeout
	}
	return o
}

// boundEps absorbs float rounding in rate-bound comparisons.
const boundEps = 1e-9

// CheckLoop runs one loop through the technique × machine matrix and
// judges every cell. The verdict is a pure function of (spec, options):
// same loop, same verdict, regardless of parallelism or cache state.
// The returned error is infrastructural only (context cancelled);
// per-cell failures live in the verdict.
func CheckLoop(ctx context.Context, spec *ir.LoopSpec, opts FuzzOptions) (*LoopVerdict, error) {
	opts = opts.normalized()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("difffuzz: invalid spec: %w", err)
	}

	var jobs []batch.Job
	for _, fus := range opts.Machines {
		m := machine.New(fus)
		for _, tech := range opts.Techniques {
			jobs = append(jobs, batch.Job{
				Technique: tech, Spec: spec, Machine: m,
				Config: opts.Config, Want: sched.WantRaw,
			})
		}
	}
	outs, err := batch.Run(ctx, jobs, batch.Options{
		Parallelism: opts.Parallelism, Timeout: opts.Timeout, Cache: opts.Cache,
	})
	if err != nil {
		return nil, err
	}

	v := &LoopVerdict{Spec: spec, Checks: len(jobs)}
	vars, arrays := fuzzgen.Workload(spec)
	info := deps.Analyze(spec)
	bounds := map[int]float64{}
	for _, fus := range opts.Machines {
		bounds[fus] = info.RateBound(spec.SeqOpsPerIter()-1, fus)
	}

	fail := func(o batch.Outcome, class FailureClass, err error) {
		v.Failures = append(v.Failures, FuzzFailure{
			Technique: o.Job.Technique, FUs: o.Job.Machine.OpSlots, Class: class, Err: err,
		})
	}
	for _, o := range outs {
		if o.Err != nil {
			if opts.Explain != nil && opts.Explain(o.Err) {
				v.Explained++
				continue
			}
			var pe *sched.PanicError
			switch {
			case errors.As(o.Err, &pe):
				fail(o, FailPanic, o.Err)
			case errors.Is(o.Err, context.DeadlineExceeded):
				fail(o, FailTimeout, o.Err)
			default:
				fail(o, FailError, o.Err)
			}
			continue
		}
		if o.Result.CyclesPerIter <= 0 || o.Result.Speedup <= 0 {
			fail(o, FailMetrics, fmt.Errorf("non-positive rate: %.3f cycles/iter, speedup %.3f",
				o.Result.CyclesPerIter, o.Result.Speedup))
			continue
		}
		if res, ok := o.Result.CloneRaw().(*pipeline.Result); ok {
			// Semantic oracle for the pipelining techniques.
			if err := validateFuzzResult(res, vars, arrays); err != nil {
				class := FailMismatch
				if errors.Is(err, sim.ErrCycleBudget) {
					class = FailLivelock
				}
				fail(o, class, err)
			}
			continue
		}
		// Analytic oracle for the single-iteration baselines: neither
		// optimizes ops away, so the dependence-theoretic rate bound is a
		// hard floor on its cycles per iteration (NOT a floor for
		// grip/post — redundant-operation removal legitimately beats it),
		// and the sequential iteration cost is a hard ceiling (a schedule
		// can always fall back to one op per cycle). Nothing stronger is
		// sound: greedy modulo placement may legitimately settle above
		// the list schedule's length when cross-iteration constraints
		// defeat it at the minimum II.
		if b := bounds[o.Job.Machine.OpSlots]; o.Result.CyclesPerIter+boundEps < b {
			fail(o, FailMetrics, fmt.Errorf("%.3f cycles/iter below rate bound %.3f",
				o.Result.CyclesPerIter, b))
			continue
		}
		if seq := float64(spec.SeqOpsPerIter()); o.Result.CyclesPerIter > seq+boundEps {
			fail(o, FailMetrics, fmt.Errorf("%.3f cycles/iter exceeds sequential cost %.0f",
				o.Result.CyclesPerIter, seq))
		}
	}
	return v, nil
}

// validateFuzzResult proves one scheduled pipeline result equivalent to
// its source loop on the spec's deterministic workload, for an early
// exit, a mid-unwind exit, and the full unwound depth — the same trip
// discipline the Livermore validation pass uses.
func validateFuzzResult(res *pipeline.Result, vars map[string]int64, arrays map[string][]int64) error {
	u := int64(res.U)
	var trips []int64
	seen := map[int64]bool{}
	for _, iters := range []int64{1, u / 3, u} {
		if iters < 1 {
			iters = 1
		}
		trip := res.Spec.Start + res.Spec.Step*iters
		if !seen[trip] {
			seen[trip] = true
			trips = append(trips, trip)
		}
	}
	return pipeline.ValidateSemantics(res, vars, arrays, trips)
}

// ErrInjected marks an error deliberately injected by a fuzz chaos
// plan; ExplainInjected recognizes it (and the harness chaos sentinels)
// so chaos-mode fuzzing doesn't report its own faults as findings.
var ErrInjected = errors.New("difffuzz: injected fault")

// ExplainInjected reports whether err is an injected chaos fault: one
// of the injection sentinels, or a recovered panic whose payload came
// from the fault plan (internal/faults stamps its panics).
func ExplainInjected(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjected) || errors.Is(err, ErrChaosCompute) || errors.Is(err, ErrChaosIO) {
		return true
	}
	var pe *sched.PanicError
	return errors.As(err, &pe) && strings.Contains(fmt.Sprint(pe.Value), "faults: injected panic")
}

// SweepOptions configure FuzzSweep.
type SweepOptions struct {
	FuzzOptions
	// SeedBase is the first seed; seed i generates fuzzgen.SweepSpec
	// (SeedBase + i). Seeds is how many to run.
	SeedBase int64
	Seeds    int
	// Budget, when positive, stops the sweep (cleanly, after a whole
	// loop) once the wall clock is spent. Per-seed verdicts stay
	// deterministic; the budget only decides how far the sweep gets.
	Budget time.Duration
	// Minimize shrinks every failing loop with up to MinProbes oracle
	// probes (default 200) before reporting it.
	Minimize  bool
	MinProbes int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// SweepFailure is one failing seed of a sweep: the generated loop, its
// verdict, and (when minimization ran and shrank it) the reduced
// reproducer.
type SweepFailure struct {
	Seed     int64
	Spec     *ir.LoopSpec
	Failures []FuzzFailure
	// Minimized is the shrunk reproducer for Failures[0], nil when
	// minimization was off or achieved nothing. Probes is the oracle
	// probe count minimization spent.
	Minimized *ir.LoopSpec
	Probes    int
}

// FuzzReport summarizes a sweep.
type FuzzReport struct {
	// Seeds is how many seeds were actually judged (the budget may stop
	// the sweep early); Checks and Explained aggregate their verdicts.
	Seeds     int
	Checks    int
	Explained int
	Failures  []SweepFailure
	Elapsed   time.Duration
}

// FuzzSweep generates Seeds loops from the seeded sweep distribution
// and judges each with CheckLoop, minimizing failures when asked. The
// returned error is infrastructural (context cancelled); findings are
// in the report.
func FuzzSweep(ctx context.Context, opts SweepOptions) (*FuzzReport, error) {
	if opts.MinProbes <= 0 {
		opts.MinProbes = 200
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &FuzzReport{}
	start := time.Now()
	for i := 0; i < opts.Seeds; i++ {
		if opts.Budget > 0 && time.Since(start) >= opts.Budget {
			logf("fuzz: budget %v spent after %d/%d seeds", opts.Budget, i, opts.Seeds)
			break
		}
		seed := opts.SeedBase + int64(i)
		spec := fuzzgen.SweepSpec(seed)
		v, err := CheckLoop(ctx, spec, opts.FuzzOptions)
		if err != nil {
			rep.Elapsed = time.Since(start)
			return rep, err
		}
		rep.Seeds++
		rep.Checks += v.Checks
		rep.Explained += v.Explained
		if !v.Failed() {
			continue
		}
		f := SweepFailure{Seed: seed, Spec: spec, Failures: v.Failures}
		logf("fuzz: seed %d (%s): %d failure(s), first: %s", seed, spec.Name, len(v.Failures), v.Failures[0])
		if opts.Minimize {
			min, probes := MinimizeFailure(ctx, spec, v.Failures[0], opts.FuzzOptions, opts.MinProbes)
			f.Probes = probes
			if min.Fingerprint() != spec.Fingerprint() {
				f.Minimized = min
				logf("fuzz: seed %d minimized %d -> %d body ops (%d probes)",
					seed, len(spec.Body), len(min.Body), probes)
			}
		}
		rep.Failures = append(rep.Failures, f)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// MinimizeFailure shrinks spec while it still reproduces the given
// failure's class on the failing technique and machine — re-running the
// full oracle (workload included: each candidate is judged against its
// own fingerprint-derived workload) on every candidate, up to maxProbes
// probes. It returns the smallest reproducer and the probes spent.
func MinimizeFailure(ctx context.Context, spec *ir.LoopSpec, f FuzzFailure, opts FuzzOptions, maxProbes int) (*ir.LoopSpec, int) {
	opts = opts.normalized()
	opts.Machines = []int{f.FUs}
	opts.Techniques = []string{f.Technique}
	keep := func(cand *ir.LoopSpec) bool {
		v, err := CheckLoop(ctx, cand, opts)
		if err != nil {
			return false
		}
		for _, ff := range v.Failures {
			if ff.Class == f.Class {
				return true
			}
		}
		return false
	}
	return fuzzgen.Minimize(spec, keep, maxProbes)
}

// CorpusName returns the failure's canonical corpus entry name:
// seed, failing technique, machine, and class.
func (f *SweepFailure) CorpusName() string {
	first := f.Failures[0]
	return fmt.Sprintf("s%d_%s%dfu_%s", f.Seed, first.Technique, first.FUs, first.Class)
}

// errHeader renders an error's first line as a textir comment.
func errHeader(err error) string {
	line := err.Error()
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	return "# " + line + "\n"
}

// corpusBytes serializes a failure's best reproducer (minimized when
// available) with a triage header. The spec keeps its generated name:
// the workload derives from the fingerprint, so renaming would change
// the inputs the failure was found with.
func (f *SweepFailure) corpusBytes() []byte {
	spec := f.Spec
	if f.Minimized != nil {
		spec = f.Minimized
	}
	var b strings.Builder
	first := f.Failures[0]
	fmt.Fprintf(&b, "# fuzzloop seed %d: %s @ %d FU, %s\n", f.Seed, first.Technique, first.FUs, first.Class)
	b.WriteString(errHeader(first.Err))
	textir.Print(&b, spec)
	return []byte(b.String())
}

// WriteCorpusEntry writes the failure's reproducer into the regression
// corpus directory as <CorpusName>.loop, creating the directory as
// needed, and returns the file path.
func WriteCorpusEntry(dir string, f *SweepFailure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, f.CorpusName()+".loop")
	return path, os.WriteFile(path, f.corpusBytes(), 0o644)
}

// WriteArtifacts writes a failure's full triage bundle for CI upload:
// the pre-minimization loop, the minimized loop (when one exists), and
// every failure's complete error text.
func WriteArtifacts(dir string, f *SweepFailure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := f.CorpusName()
	var pre strings.Builder
	fmt.Fprintf(&pre, "# fuzzloop seed %d, pre-minimization\n", f.Seed)
	textir.Print(&pre, f.Spec)
	if err := os.WriteFile(filepath.Join(dir, name+".pre.loop"), []byte(pre.String()), 0o644); err != nil {
		return err
	}
	if f.Minimized != nil {
		var min strings.Builder
		fmt.Fprintf(&min, "# fuzzloop seed %d, minimized (%d probes)\n", f.Seed, f.Probes)
		textir.Print(&min, f.Minimized)
		if err := os.WriteFile(filepath.Join(dir, name+".min.loop"), []byte(min.String()), 0o644); err != nil {
			return err
		}
	}
	var errs strings.Builder
	for _, ff := range f.Failures {
		fmt.Fprintf(&errs, "%s\n\n", ff)
	}
	return os.WriteFile(filepath.Join(dir, name+".err.txt"), []byte(errs.String()), 0o644)
}

// CorpusResult is one replayed regression-corpus entry.
type CorpusResult struct {
	File    string
	Verdict *LoopVerdict
}

// ReplayCorpus parses every *.loop file under dir (sorted, so replay
// order is stable) and judges each with CheckLoop. Corpus entries are
// regressions that have been fixed, so a green replay means every
// verdict passes; the caller checks the verdicts. The returned error is
// infrastructural: unreadable file, parse failure, cancelled context.
func ReplayCorpus(ctx context.Context, dir string, opts FuzzOptions) ([]CorpusResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.loop"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var results []CorpusResult
	for _, path := range paths {
		file, err := os.Open(path)
		if err != nil {
			return results, err
		}
		spec, err := textir.Parse(file)
		file.Close()
		if err != nil {
			return results, fmt.Errorf("%s: %w", path, err)
		}
		v, err := CheckLoop(ctx, spec, opts)
		if err != nil {
			return results, fmt.Errorf("%s: %w", path, err)
		}
		results = append(results, CorpusResult{File: path, Verdict: v})
	}
	return results, nil
}
