package harness

import (
	"strings"
	"testing"

	"bytes"
)

func TestFigure56(t *testing.T) {
	var b bytes.Buffer
	if err := Figure56(&b, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 5", "Figure 6", "converged=true", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure9DivergesAnd13Converges(t *testing.T) {
	var b bytes.Buffer
	r9, err := Figure9(&b)
	if err != nil {
		t.Fatal(err)
	}
	if r9.Converged {
		t.Error("Figure 9 run converged; gaps should prevent it")
	}
	r13, err := Figure13(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !r13.Converged {
		t.Error("Figure 13 run did not converge")
	}
	if r13.Kernel.CyclesPerIter() > 1.01 {
		t.Errorf("Figure 13 kernel rate %.2f, want 1", r13.Kernel.CyclesPerIter())
	}
}

func TestFigure8And11Traces(t *testing.T) {
	var b bytes.Buffer
	if err := Figure8And11(&b, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"unifiable=(", "moveable=(", "final schedule"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestIntroExampleBeatsModulo(t *testing.T) {
	var b bytes.Buffer
	g, mod, err := IntroExample(&b)
	if err != nil {
		t.Fatal(err)
	}
	if g <= mod {
		t.Errorf("GRiP %.2f should beat modulo %.2f on the intro example", g, mod)
	}
}

func TestFigure123Renders(t *testing.T) {
	var b bytes.Buffer
	if err := Figure123(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "drain"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
