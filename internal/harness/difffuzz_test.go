package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/fuzzgen"
	"repro/internal/sched"
	"repro/internal/testutil"
)

// TestCorpusReplay is the tier-1 regression gate: every checked-in
// crasher/mismatch reproducer must replay green through the full
// technique x machine matrix with cross-checks armed.
func TestCorpusReplay(t *testing.T) {
	testutil.LeakCheck(t)
	results, err := ReplayCorpus(context.Background(), "../../testdata/corpus", FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 8 {
		t.Fatalf("replayed only %d corpus entries; the checked-in corpus has at least 8", len(results))
	}
	for _, r := range results {
		for _, f := range r.Verdict.Failures {
			t.Errorf("%s: %s", r.File, f)
		}
	}
}

// TestFuzzSweepGreen runs a slice of the seeded sweep end to end: the
// registered backends must pass every oracle on every generated loop.
func TestFuzzSweepGreen(t *testing.T) {
	testutil.LeakCheck(t)
	if testing.Short() {
		t.Skip("short mode: the sweep schedules hundreds of cells")
	}
	rep, err := FuzzSweep(context.Background(), SweepOptions{Seeds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeds != 25 {
		t.Errorf("judged %d seeds, want 25", rep.Seeds)
	}
	wantChecks := 25 * 3 * len(sched.Names())
	if rep.Checks != wantChecks {
		t.Errorf("ran %d checks, want %d", rep.Checks, wantChecks)
	}
	for _, f := range rep.Failures {
		for _, ff := range f.Failures {
			t.Errorf("seed %d: %s", f.Seed, ff)
		}
	}
}

// TestVerdictDeterminism pins the acceptance property that a seed's
// verdict is a pure function of the seed: same loops, same judgments,
// regardless of worker count.
func TestVerdictDeterminism(t *testing.T) {
	testutil.LeakCheck(t)
	for _, seed := range []int64{3, 26, 41} {
		spec := fuzzgen.SweepSpec(seed)
		a, err := CheckLoop(context.Background(), spec, FuzzOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := CheckLoop(context.Background(), spec, FuzzOptions{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := verdictKey(a), verdictKey(b); got != want {
			t.Errorf("seed %d: verdict depends on parallelism:\n1 worker: %s\n8 workers: %s", seed, want, got)
		}
	}
}

func verdictKey(v *LoopVerdict) string {
	key := fmt.Sprintf("checks=%d explained=%d", v.Checks, v.Explained)
	for _, f := range v.Failures {
		key += fmt.Sprintf("|%s@%d:%s", f.Technique, f.FUs, f.Class)
	}
	return key
}

// TestCheckLoopClassifiesInjectedFaults drives the oracle with the
// fault plan firing on every compute: without an Explain hook every
// cell is a finding with the right class; with ExplainInjected the same
// run is fully explained — the contract chaos-mode fuzzing relies on.
func TestCheckLoopClassifiesInjectedFaults(t *testing.T) {
	testutil.LeakCheck(t)
	spec := fuzzgen.SweepSpec(5)
	opts := FuzzOptions{Machines: []int{4}, Techniques: []string{"grip", "post"}}

	faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: faults.BatchCompute, Every: 2, Panic: "fuzz chaos schedule"},
		faults.Rule{Site: faults.BatchCompute, Every: 1, Err: ErrInjected},
	))
	defer faults.Disable()

	v, err := CheckLoop(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Failures) != 2 || v.Explained != 0 {
		t.Fatalf("want 2 unexplained failures, got %d (explained %d)", len(v.Failures), v.Explained)
	}
	for _, f := range v.Failures {
		if f.Class != FailError && f.Class != FailPanic {
			t.Errorf("injected fault classified as %s: %v", f.Class, f.Err)
		}
	}

	opts.Explain = ExplainInjected
	v, err = CheckLoop(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v.Failed() || v.Explained != 2 {
		t.Fatalf("with ExplainInjected: want 0 failures / 2 explained, got %d / %d",
			len(v.Failures), v.Explained)
	}
}

func TestExplainInjected(t *testing.T) {
	testutil.LeakCheck(t)
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("scheduler bug"), false},
		{fmt.Errorf("wrapped: %w", ErrInjected), true},
		{fmt.Errorf("wrapped: %w", ErrChaosCompute), true},
		{fmt.Errorf("wrapped: %w", ErrChaosIO), true},
		{&sched.PanicError{Key: "k", Value: "faults: injected panic at batch.compute: chaos"}, true},
		{&sched.PanicError{Key: "k", Value: "index out of range"}, false},
	}
	for _, c := range cases {
		if got := ExplainInjected(c.err); got != c.want {
			t.Errorf("ExplainInjected(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestMinimizeFailureShrinks wires the minimizer to the live oracle: a
// loop that "fails" on every cell (injected fault, Every: 1) must
// shrink to a single op while the class keeps reproducing.
func TestMinimizeFailureShrinks(t *testing.T) {
	testutil.LeakCheck(t)
	spec := fuzzgen.SweepSpec(9)
	faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: faults.BatchCompute, Every: 1, Err: ErrInjected}))
	defer faults.Disable()

	f := FuzzFailure{Technique: "grip", FUs: 2, Class: FailError}
	min, probes := MinimizeFailure(context.Background(), spec, f,
		FuzzOptions{Machines: []int{2}, Techniques: []string{"grip"}}, 500)
	if probes == 0 {
		t.Fatal("minimizer never probed the oracle")
	}
	if len(min.Body) != 1 {
		t.Errorf("minimized to %d ops, want 1:\n%s", len(min.Body), min)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("minimized spec invalid: %v", err)
	}
}
