package batch

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/machine"
	"repro/internal/sched"
)

// BenchCell records one job's performance for the benchmark trajectory
// (BENCH_table1.json): what was scheduled, what it achieved, and what
// it cost in wall time.
type BenchCell struct {
	Loop      string `json:"loop"`
	FUs       int    `json:"fus"`
	Technique string `json:"technique"`
	// Config is the job's configuration fingerprint, empty for the
	// paper default — so reports written before configurations existed
	// compare cleanly against today's default cells, while sweep cells
	// carry their identity and never collide across factors.
	Config    string  `json:"config,omitempty"`
	Speedup   float64 `json:"speedup"`
	Converged bool    `json:"converged"`
	WallMS    float64 `json:"wall_ms"`
	CacheHit  bool    `json:"cache_hit"`
	// Tier names the store tier that served a cache hit ("memory",
	// "disk", "flight"); empty for computed cells and for reports
	// written before the store was tiered.
	Tier  string `json:"tier,omitempty"`
	Error string `json:"error,omitempty"`
}

// BenchReport is the JSON document future PRs compare against.
type BenchReport struct {
	Parallelism int         `json:"parallelism"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Cells       []BenchCell `json:"cells"`
}

// NewBenchReport summarizes a batch run. totalWall is the end-to-end
// wall time of the run (which, under parallelism, is less than the sum
// of the per-cell times).
func NewBenchReport(outcomes []Outcome, parallelism int, totalWall time.Duration) BenchReport {
	rep := BenchReport{
		Parallelism: parallelism,
		TotalWallMS: float64(totalWall.Microseconds()) / 1000,
	}
	for _, o := range outcomes {
		cell := BenchCell{
			Loop:      o.Job.DisplayName(),
			Technique: o.Job.Technique,
			WallMS:    float64(o.Wall.Microseconds()) / 1000,
			CacheHit:  o.CacheHit,
		}
		if o.CacheHit {
			cell.Tier = o.Tier.String()
		}
		if o.Job.Config != (sched.Config{}) {
			cell.Config = o.Job.Config.Fingerprint()
		}
		if o.Job.Machine.OpSlots != machine.Unlimited {
			cell.FUs = o.Job.Machine.OpSlots
		}
		if o.Result != nil {
			cell.Speedup = o.Result.Speedup
			cell.Converged = o.Result.Converged
		}
		if o.Err != nil {
			cell.Error = o.Err.Error()
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// WriteJSON renders the report, indented for diffability.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
