package batch

import (
	"context"
	"errors"

	"repro/internal/sched"
)

// Stats summarizes a batch run's outcomes: how each cell was served and
// how each failure failed. Chaos runs and exit reports consume it; it
// is derived entirely from the outcome slice, so it composes across
// runs by summing.
type Stats struct {
	// Jobs is the outcome count; Succeeded + Failed == Jobs.
	Jobs      int
	Succeeded int
	Failed    int
	// Quarantined counts failures caused by a recovered backend panic
	// (*sched.PanicError): poisoned cells that failed alone.
	Quarantined int
	// Cancelled counts failures from context cancellation or per-job
	// deadlines — cells cut short, not cells that computed wrongly.
	Cancelled int
	// Serving-tier breakdown of the successes.
	Computed, MemoryHits, DiskHits, FlightShares int
}

// Summarize folds the outcomes of one (or more, by appending) batch
// runs into engine-level stats.
func Summarize(outs []Outcome) Stats {
	var st Stats
	st.Jobs = len(outs)
	for _, o := range outs {
		if o.Err != nil {
			st.Failed++
			var pe *sched.PanicError
			switch {
			case errors.As(o.Err, &pe):
				st.Quarantined++
			case errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded):
				st.Cancelled++
			}
			continue
		}
		st.Succeeded++
		switch o.Tier {
		case TierMemory:
			st.MemoryHits++
		case TierDisk:
			st.DiskHits++
		case TierFlight:
			st.FlightShares++
		default:
			st.Computed++
		}
	}
	return st
}
