package batch_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/testutil"
)

// panicStub is a backend that panics while armed — the poisoned-cell
// case the batch engine must survive.
type panicStub struct {
	name  string
	armed atomic.Bool
	calls atomic.Int64
}

func (s *panicStub) Name() string { return s.name }

func (s *panicStub) Schedule(ctx context.Context, req sched.Request) (*sched.Result, error) {
	s.calls.Add(1)
	if s.armed.Load() {
		panic("poisoned backend: " + req.Spec.Name)
	}
	return sched.NewResult(sched.Metrics{Technique: s.name, Loop: req.Spec.Name, Speedup: 1, Converged: true}, nil), nil
}

var panicOnce sync.Once
var panicker = &panicStub{name: "test-panic"}

func panicStubs() {
	panicOnce.Do(func() { sched.Register(panicker) })
}

// TestPanicIsolatedPerJob: a panicking backend fails its own cell with
// a typed *sched.PanicError and takes nothing else down — no cache in
// the loop, so this exercises runOne's own recovery perimeter.
func TestPanicIsolatedPerJob(t *testing.T) {
	testutil.LeakCheck(t)
	panicStubs()
	panicker.armed.Store(true)
	defer panicker.armed.Store(false)

	jobs := []batch.Job{
		{Technique: "test-panic", Spec: tinyLoop("poisoned"), Machine: machine.New(2)},
		{Technique: "list", Spec: tinyLoop("healthy"), Machine: machine.New(2)},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var pe *sched.PanicError
	if !errors.As(outs[0].Err, &pe) {
		t.Fatalf("poisoned cell returned %v, want *sched.PanicError", outs[0].Err)
	}
	if pe.Key != jobs[0].Key() {
		t.Errorf("PanicError.Key = %q, want %q", pe.Key, jobs[0].Key())
	}
	if !bytes.Contains(pe.Stack, []byte("panic")) {
		t.Errorf("PanicError.Stack carries no stack trace: %q", pe.Stack)
	}
	if outs[1].Err != nil || outs[1].Result == nil {
		t.Fatalf("healthy cell caught the blast: %v", outs[1].Err)
	}
}

// TestSingleFlightPanicPropagation: concurrent requests for one
// poisoned key all receive a *sched.PanicError — the leader's flight
// retires instead of stranding its waiters, each waiter retries into
// its own leadership and its own panic, and nothing hangs. Once the
// backend heals, the next request recomputes: errors are never cached.
func TestSingleFlightPanicPropagation(t *testing.T) {
	testutil.LeakCheck(t)
	panicStubs()
	panicker.armed.Store(true)
	defer panicker.armed.Store(false)

	const n = 8
	cache := batch.NewCache(64)
	job := batch.Job{Technique: "test-panic", Spec: tinyLoop("shared-poison"), Machine: machine.New(2)}
	jobs := make([]batch.Job, n)
	for i := range jobs {
		jobs[i] = job
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: n, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		var pe *sched.PanicError
		if !errors.As(o.Err, &pe) {
			t.Fatalf("waiter %d got %v, want *sched.PanicError", i, o.Err)
		}
		if pe.Key != job.Key() {
			t.Errorf("waiter %d: PanicError.Key = %q, want %q", i, pe.Key, job.Key())
		}
		if len(pe.Stack) == 0 {
			t.Errorf("waiter %d: empty panic stack", i)
		}
	}
	st := cache.Stats()
	if st.Quarantined != n {
		t.Errorf("cache quarantined %d computations, want %d (every caller retried into its own panic)", st.Quarantined, n)
	}
	if got := batch.Summarize(outs); got.Quarantined != n || got.Failed != n {
		t.Errorf("Summarize = %+v, want %d quarantined failures", got, n)
	}

	// Heal the backend: the same key recomputes — the panic was not
	// cached as a result, and the flight table holds no tombstone.
	panicker.armed.Store(false)
	before := panicker.calls.Load()
	outs, err = batch.Run(context.Background(), jobs[:1], batch.Options{Cache: cache})
	if err != nil || outs[0].Err != nil {
		t.Fatalf("healed rerun failed: %v / %v", err, outs[0].Err)
	}
	if outs[0].CacheHit {
		t.Error("healed rerun was served from cache — a failure got cached")
	}
	if panicker.calls.Load() != before+1 {
		t.Errorf("healed rerun made %d backend calls, want 1", panicker.calls.Load()-before)
	}
}

// TestGetOrComputeDirectPanic: callers that bypass the batch engine and
// hit the cache directly are still inside a recovery perimeter
// (safeCompute), so a panicking compute callback comes back as a typed
// error, not a crash.
func TestGetOrComputeDirectPanic(t *testing.T) {
	testutil.LeakCheck(t)
	cache := batch.NewCache(8)
	res, tier, err := cache.GetOrCompute(context.Background(), "direct-key", sched.WantMetrics,
		func() (*sched.Result, error) { panic("direct compute panic") })
	if res != nil || tier != batch.TierCompute {
		t.Fatalf("got res=%v tier=%v, want nil/compute", res, tier)
	}
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *sched.PanicError", err)
	}
	if pe.Key != "direct-key" || pe.Value != "direct compute panic" {
		t.Errorf("PanicError carries %q/%v", pe.Key, pe.Value)
	}
	if got := cache.Stats().Quarantined; got != 1 {
		t.Errorf("Quarantined = %d, want 1", got)
	}
}

// TestSummarizeClassifiesErrors pins the Stats taxonomy: quarantined
// panics, cancellations, plain failures, and the serving-tier split.
func TestSummarizeClassifiesErrors(t *testing.T) {
	mk := func(tier batch.Tier) batch.Outcome {
		return batch.Outcome{Result: &sched.Result{}, Tier: tier, CacheHit: tier != batch.TierCompute}
	}
	outs := []batch.Outcome{
		mk(batch.TierCompute),
		mk(batch.TierMemory),
		mk(batch.TierDisk),
		mk(batch.TierFlight),
		{Err: &sched.PanicError{Key: "k", Value: "v"}},
		{Err: context.Canceled},
		{Err: context.DeadlineExceeded},
		{Err: errors.New("plain failure")},
	}
	got := batch.Summarize(outs)
	want := batch.Stats{
		Jobs: 8, Succeeded: 4, Failed: 4,
		Quarantined: 1, Cancelled: 2,
		Computed: 1, MemoryHits: 1, DiskHits: 1, FlightShares: 1,
	}
	if got != want {
		t.Errorf("Summarize = %+v, want %+v", got, want)
	}
}
