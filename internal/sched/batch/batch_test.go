package batch_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sched/batch"
)

func tinyLoop(name string) *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: name,
		Body: []ir.BodyOp{
			ir.BLoad("t", ir.Aff("A", 1, 0)),
			ir.BStore(ir.Aff("B", 1, 0), "t"),
		},
		Step: 1, TripVar: "n",
	}
}

// stubScheduler counts calls and optionally blocks until released.
type stubScheduler struct {
	name  string
	calls atomic.Int64
	gate  chan struct{} // nil = return immediately
}

func (s *stubScheduler) Name() string { return s.name }

func (s *stubScheduler) Schedule(spec *ir.LoopSpec, m machine.Machine) (*sched.Result, error) {
	s.calls.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	return &sched.Result{Technique: s.name, Loop: spec.Name, Speedup: 1, Converged: true}, nil
}

var registerOnce sync.Once
var countStub = &stubScheduler{name: "test-count"}
var blockStub = &stubScheduler{name: "test-block", gate: make(chan struct{})}

func stubs() {
	registerOnce.Do(func() {
		sched.Register(countStub)
		sched.Register(blockStub)
	})
}

func TestRunOrderAndResults(t *testing.T) {
	var jobs []batch.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, batch.Job{
			Technique: "list", Spec: tinyLoop(fmt.Sprintf("l%d", i)), Machine: machine.New(2),
		})
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes for %d jobs", len(outs), len(jobs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Job.Spec.Name != fmt.Sprintf("l%d", i) {
			t.Errorf("outcome %d belongs to job %s: order not preserved", i, o.Job.Spec.Name)
		}
		if o.Result == nil || o.Result.Speedup <= 0 {
			t.Errorf("job %d: bad result %+v", i, o.Result)
		}
	}
}

func TestUnknownTechniqueFailsJobOnly(t *testing.T) {
	jobs := []batch.Job{
		{Technique: "no-such", Spec: tinyLoop("a"), Machine: machine.New(2)},
		{Technique: "list", Spec: tinyLoop("b"), Machine: machine.New(2)},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil {
		t.Error("unknown technique did not fail")
	}
	if outs[1].Err != nil {
		t.Errorf("healthy job failed: %v", outs[1].Err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	stubs()
	countStub.calls.Store(0)
	cache := batch.NewCache(8)
	job := batch.Job{Technique: "test-count", Spec: tinyLoop("cached"), Machine: machine.New(2)}

	outs, err := batch.Run(context.Background(), []batch.Job{job}, batch.Options{Cache: cache})
	if err != nil || outs[0].Err != nil {
		t.Fatalf("first run: %v %v", err, outs[0].Err)
	}
	if outs[0].CacheHit {
		t.Error("first run reported a cache hit")
	}
	outs, err = batch.Run(context.Background(), []batch.Job{job, job}, batch.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if !o.CacheHit {
			t.Errorf("rerun job %d missed the cache", i)
		}
	}
	if got := countStub.calls.Load(); got != 1 {
		t.Errorf("scheduler ran %d times; cache should have held it to 1", got)
	}
	hits, misses := cache.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 2/1", hits, misses)
	}

	// A different machine is a different key.
	other := job
	other.Machine = machine.New(4)
	outs, _ = batch.Run(context.Background(), []batch.Job{other}, batch.Options{Cache: cache})
	if outs[0].CacheHit {
		t.Error("different machine hit the cache")
	}
	if got := countStub.calls.Load(); got != 2 {
		t.Errorf("scheduler ran %d times, want 2", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := batch.NewCache(2)
	r := &sched.Result{}
	c.Put("a", r)
	c.Put("b", r)
	if _, ok := c.Get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.Put("c", r) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestKeyDiscriminates(t *testing.T) {
	a := batch.Job{Technique: "list", Spec: tinyLoop("cfg"), Machine: machine.New(2)}
	b := a
	b.Machine = machine.New(4)
	c := a
	c.Technique = "grip"
	d := a
	d.Spec = tinyLoop("other")
	if a.Key() == b.Key() || a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("machine, technique, or spec did not change the cache key")
	}
	e := a
	e.Label = "display-only"
	if a.Key() != e.Key() {
		t.Error("Label leaked into the cache key")
	}
}

func TestCancellationMidBatch(t *testing.T) {
	stubs()
	ctx, cancel := context.WithCancel(context.Background())
	var jobs []batch.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, batch.Job{
			Technique: "test-block", Spec: tinyLoop(fmt.Sprintf("c%d", i)), Machine: machine.New(2),
		})
	}
	done := make(chan struct{})
	var outs []batch.Outcome
	var runErr error
	go func() {
		outs, runErr = batch.Run(ctx, jobs, batch.Options{Parallelism: 2})
		close(done)
	}()
	// Workers are parked inside the blocked stub; cancel must unwedge
	// the whole batch without releasing the stub.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("run error = %v, want context.Canceled", runErr)
	}
	cancelled := 0
	for _, o := range outs {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job reported cancellation")
	}
}

func TestPerJobTimeout(t *testing.T) {
	stubs()
	jobs := []batch.Job{
		{Technique: "test-block", Spec: tinyLoop("slow"), Machine: machine.New(2)},
		{Technique: "list", Spec: tinyLoop("fast"), Machine: machine.New(2)},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 2, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(outs[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want DeadlineExceeded", outs[0].Err)
	}
	if outs[1].Err != nil {
		t.Errorf("fast job failed: %v", outs[1].Err)
	}
}

// TestParallelBitIdentical runs a real Table-1-style matrix across all
// four techniques sequentially and with four workers and requires
// identical results — the scheduling backends are pure functions, so
// execution order must not leak into the cells. Run with -race in CI,
// this also exercises the engine and the POST phase-1 memo for data
// races.
func TestParallelBitIdentical(t *testing.T) {
	loop := &ir.LoopSpec{
		Name: "hydro",
		Body: []ir.BodyOp{
			ir.BLoad("z10", ir.Aff("Z", 1, 10)),
			ir.BLoad("z11", ir.Aff("Z", 1, 11)),
			ir.BMul("a", "r", "z10"),
			ir.BMul("b", "t", "z11"),
			ir.BAdd("c", "a", "b"),
			ir.BLoad("y", ir.Aff("Y", 1, 0)),
			ir.BMul("d", "y", "c"),
			ir.BAdd("e", "q", "d"),
			ir.BStore(ir.Aff("X", 1, 0), "e"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
	}
	var jobs []batch.Job
	for _, f := range []int{2, 4} {
		for _, tech := range []string{"grip", "post", "modulo", "list"} {
			jobs = append(jobs, batch.Job{Technique: tech, Spec: loop, Machine: machine.New(f)})
		}
	}
	seq, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		s, p := seq[i], par[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %d: seq err %v, par err %v", i, s.Err, p.Err)
		}
		if s.Result.Speedup != p.Result.Speedup ||
			s.Result.CyclesPerIter != p.Result.CyclesPerIter ||
			s.Result.Converged != p.Result.Converged ||
			s.Result.Rows != p.Result.Rows {
			t.Errorf("%s @%dFU: parallel diverged: seq %+v par %+v",
				jobs[i].Technique, jobs[i].Machine.OpSlots, s.Result, p.Result)
		}
	}
}

func TestBenchReport(t *testing.T) {
	jobs := []batch.Job{
		{Technique: "list", Spec: tinyLoop("r0"), Machine: machine.New(2), Label: "LL0"},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := batch.NewBenchReport(outs, 3, 10*time.Millisecond)
	if rep.Parallelism != 3 || len(rep.Cells) != 1 {
		t.Fatalf("bad report %+v", rep)
	}
	c := rep.Cells[0]
	if c.Loop != "LL0" || c.FUs != 2 || c.Technique != "list" || c.Speedup <= 0 {
		t.Errorf("bad cell %+v", c)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"loop": "LL0"`) {
		t.Errorf("JSON missing loop name: %s", sb.String())
	}
}
