package batch_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/sched/store"
	"repro/internal/testutil"
)

func tinyLoop(name string) *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: name,
		Body: []ir.BodyOp{
			ir.BLoad("t", ir.Aff("A", 1, 0)),
			ir.BStore(ir.Aff("B", 1, 0), "t"),
		},
		Step: 1, TripVar: "n",
	}
}

// stubScheduler counts calls and optionally blocks until released; like
// every well-behaved backend it observes its context while blocked.
type stubScheduler struct {
	name      string
	calls     atomic.Int64
	cancelled atomic.Int64  // completions due to ctx, not the gate
	gate      chan struct{} // nil = return immediately
}

func (s *stubScheduler) Name() string { return s.name }

func (s *stubScheduler) Schedule(ctx context.Context, req sched.Request) (*sched.Result, error) {
	s.calls.Add(1)
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			s.cancelled.Add(1)
			return nil, ctx.Err()
		}
	}
	return sched.NewResult(sched.Metrics{Technique: s.name, Loop: req.Spec.Name, Speedup: 1, Converged: true}, nil), nil
}

var registerOnce sync.Once
var countStub = &stubScheduler{name: "test-count"}
var blockStub = &stubScheduler{name: "test-block", gate: make(chan struct{})}

func stubs() {
	registerOnce.Do(func() {
		sched.Register(countStub)
		sched.Register(blockStub)
	})
}

func TestRunOrderAndResults(t *testing.T) {
	var jobs []batch.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, batch.Job{
			Technique: "list", Spec: tinyLoop(fmt.Sprintf("l%d", i)), Machine: machine.New(2),
		})
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes for %d jobs", len(outs), len(jobs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Job.Spec.Name != fmt.Sprintf("l%d", i) {
			t.Errorf("outcome %d belongs to job %s: order not preserved", i, o.Job.Spec.Name)
		}
		if o.Result == nil || o.Result.Speedup <= 0 {
			t.Errorf("job %d: bad result %+v", i, o.Result)
		}
	}
}

func TestUnknownTechniqueFailsJobOnly(t *testing.T) {
	jobs := []batch.Job{
		{Technique: "no-such", Spec: tinyLoop("a"), Machine: machine.New(2)},
		{Technique: "list", Spec: tinyLoop("b"), Machine: machine.New(2)},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil {
		t.Error("unknown technique did not fail")
	}
	if outs[1].Err != nil {
		t.Errorf("healthy job failed: %v", outs[1].Err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	stubs()
	countStub.calls.Store(0)
	cache := batch.NewCache(8)
	job := batch.Job{Technique: "test-count", Spec: tinyLoop("cached"), Machine: machine.New(2)}

	outs, err := batch.Run(context.Background(), []batch.Job{job}, batch.Options{Cache: cache})
	if err != nil || outs[0].Err != nil {
		t.Fatalf("first run: %v %v", err, outs[0].Err)
	}
	if outs[0].CacheHit {
		t.Error("first run reported a cache hit")
	}
	outs, err = batch.Run(context.Background(), []batch.Job{job, job}, batch.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if !o.CacheHit {
			t.Errorf("rerun job %d missed the cache", i)
		}
	}
	if got := countStub.calls.Load(); got != 1 {
		t.Errorf("scheduler ran %d times; cache should have held it to 1", got)
	}
	if st := cache.Stats(); st.MemoryHits != 2 || st.Misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 2/1", st.MemoryHits, st.Misses)
	}

	// A different machine is a different key.
	other := job
	other.Machine = machine.New(4)
	outs, _ = batch.Run(context.Background(), []batch.Job{other}, batch.Options{Cache: cache})
	if outs[0].CacheHit {
		t.Error("different machine hit the cache")
	}
	if got := countStub.calls.Load(); got != 2 {
		t.Errorf("scheduler ran %d times, want 2", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := batch.NewCache(2)
	r := sched.NewResult(sched.Metrics{}, nil)
	c.Put("a", r)
	c.Put("b", r)
	if _, ok := c.Get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.Put("c", r) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestKeyDiscriminates(t *testing.T) {
	a := batch.Job{Technique: "list", Spec: tinyLoop("cfg"), Machine: machine.New(2)}
	b := a
	b.Machine = machine.New(4)
	c := a
	c.Technique = "grip"
	d := a
	d.Spec = tinyLoop("other")
	if a.Key() == b.Key() || a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("machine, technique, or spec did not change the cache key")
	}
	e := a
	e.Label = "display-only"
	if a.Key() != e.Key() {
		t.Error("Label leaked into the cache key")
	}
	f := a
	f.Config = sched.Config{Unwind: 8}
	g := a
	g.Config = sched.Config{Unwind: 16}
	if a.Key() == f.Key() || f.Key() == g.Key() {
		t.Error("config (unwind factor) did not change the cache key")
	}
	h := a
	h.Config = sched.Config{MaxUnwind: 96, Periods: 3} // the explicit defaults
	if a.Key() != h.Key() {
		t.Error("explicitly defaulted config keyed differently from the zero config")
	}
}

// TestConfigCachesIndependently runs the same (technique, loop,
// machine) cell under two unwind factors through one cache: the two
// configurations must occupy distinct entries (both first runs miss),
// and each must hit its own entry on rerun with bit-identical results.
func TestConfigCachesIndependently(t *testing.T) {
	cache := batch.NewCache(8)
	spec := tinyLoop("sweep")
	jobs := []batch.Job{
		{Technique: "grip", Spec: spec, Machine: machine.New(2), Config: sched.Config{Unwind: 8}},
		{Technique: "grip", Spec: spec, Machine: machine.New(2), Config: sched.Config{Unwind: 16}},
	}
	first, err := batch.Run(context.Background(), jobs, batch.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range first {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.CacheHit {
			t.Errorf("job %d: first run hit the cache; configs are not distinct entries", i)
		}
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries for 2 configs, want 2", cache.Len())
	}
	second, err := batch.Run(context.Background(), jobs, batch.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range second {
		if !o.CacheHit {
			t.Errorf("job %d: rerun with identical config missed the cache", i)
		}
		// Metrics move through the cache by value, so reruns compare by
		// content, not pointer identity — no caller aliases another's
		// result record.
		if o.Result.Metrics != first[i].Result.Metrics {
			t.Errorf("job %d: rerun metrics differ: %+v != %+v", i, o.Result.Metrics, first[i].Result.Metrics)
		}
	}
}

func TestCancellationMidBatch(t *testing.T) {
	testutil.LeakCheck(t)
	stubs()
	ctx, cancel := context.WithCancel(context.Background())
	var jobs []batch.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, batch.Job{
			Technique: "test-block", Spec: tinyLoop(fmt.Sprintf("c%d", i)), Machine: machine.New(2),
		})
	}
	done := make(chan struct{})
	var outs []batch.Outcome
	var runErr error
	go func() {
		outs, runErr = batch.Run(ctx, jobs, batch.Options{Parallelism: 2})
		close(done)
	}()
	// Workers are parked inside the blocked stub; cancel must unwedge
	// the whole batch without releasing the stub.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("run error = %v, want context.Canceled", runErr)
	}
	cancelled := 0
	for _, o := range outs {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job reported cancellation")
	}
}

func TestPerJobTimeout(t *testing.T) {
	stubs()
	before := blockStub.cancelled.Load()
	jobs := []batch.Job{
		{Technique: "test-block", Spec: tinyLoop("slow"), Machine: machine.New(2)},
		{Technique: "list", Spec: tinyLoop("fast"), Machine: machine.New(2)},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 2, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(outs[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want DeadlineExceeded", outs[0].Err)
	}
	if outs[1].Err != nil {
		t.Errorf("fast job failed: %v", outs[1].Err)
	}
	// The timeout didn't just release the caller — the scheduler itself
	// observed the context and stopped.
	if got := blockStub.cancelled.Load(); got != before+1 {
		t.Errorf("scheduler cancellations = %d, want %d: the timed-out computation kept running", got, before+1)
	}
}

// TestTimeoutStopsRealScheduler is the acceptance test for cooperative
// cancellation through the whole stack: a real GRiP job on a large
// fixed unwinding with a tiny timeout must fail with DeadlineExceeded
// AND leave no scheduler goroutine behind — the engine runs backends on
// its worker goroutines and the step loops observe the context, so when
// Run returns, nothing is still burning CPU on the abandoned schedule.
func TestTimeoutStopsRealScheduler(t *testing.T) {
	spec := &ir.LoopSpec{
		Name: "wide",
		Body: []ir.BodyOp{
			ir.BLoad("a", ir.Aff("A", 1, 0)),
			ir.BLoad("b", ir.Aff("B", 1, 0)),
			ir.BMul("c", "a", "b"),
			ir.BMul("d", "a", "c"),
			ir.BAdd("e", "c", "d"),
			ir.BMul("f", "e", "b"),
			ir.BAdd("g", "f", "a"),
			ir.BStore(ir.Aff("X", 1, 0), "g"),
		},
		Step: 1, TripVar: "n",
	}
	testutil.LeakCheck(t)
	jobs := []batch.Job{{
		Technique: "grip", Spec: spec, Machine: machine.New(2),
		Config: sched.Config{Unwind: 96},
	}}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(outs[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", outs[0].Err)
	}
	if outs[0].Result != nil {
		t.Error("timed-out job returned a result")
	}
}

// TestSingleFlightDedup submits one job four times concurrently against
// a shared cache: single-flight must collapse them to exactly one
// scheduler call, with every outcome getting the shared result.
func TestSingleFlightDedup(t *testing.T) {
	stubs()
	flightStub := &stubScheduler{name: "test-flight", gate: make(chan struct{})}
	sched.Register(flightStub)
	cache := batch.NewCache(8)
	job := batch.Job{Technique: "test-flight", Spec: tinyLoop("dedup"), Machine: machine.New(2)}
	jobs := []batch.Job{job, job, job, job}
	go func() {
		// Let the batch wedge on the leader's computation, then release.
		time.Sleep(20 * time.Millisecond)
		close(flightStub.gate)
	}()
	outs, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	leaders := 0
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Result != outs[0].Result {
			t.Errorf("job %d: got a different result pointer; computation not shared", i)
		}
		if !o.CacheHit {
			leaders++
		}
	}
	if got := flightStub.calls.Load(); got != 1 {
		t.Errorf("scheduler ran %d times for 4 identical in-flight jobs, want 1", got)
	}
	if leaders != 1 {
		t.Errorf("%d outcomes report CacheHit=false, want exactly the leader", leaders)
	}
	if st := cache.Stats(); st.MemoryHits != 3 || st.Misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 3/1", st.MemoryHits, st.Misses)
	}
}

// TestSingleFlightLeaderTimeoutNotShared: a leader cancelled by its own
// per-job timeout must not poison a later-arriving duplicate — the
// waiter retries within its own remaining budget. (The budget covers
// waiting too: a duplicate submitted at the same instant as the leader
// deadlines alongside it rather than getting a fresh allowance.)
func TestSingleFlightLeaderTimeoutNotShared(t *testing.T) {
	stubs()
	slowStub := &stubScheduler{name: "test-slow-leader", gate: make(chan struct{})}
	sched.Register(slowStub)
	cache := batch.NewCache(8)
	job := batch.Job{Technique: "test-slow-leader", Spec: tinyLoop("retry"), Machine: machine.New(2)}
	opts := batch.Options{Timeout: 400 * time.Millisecond, Cache: cache}

	// Timeline: the leader starts at 0 and deadlines at 400ms; the
	// follower starts at 200 (budget until 600), joins the leader's
	// flight, sees it fail at 400, retries, and the gate opens at 500 —
	// inside the follower's remaining budget.
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(slowStub.gate)
	}()
	leaderDone := make(chan batch.Outcome, 1)
	go func() {
		outs, _ := batch.Run(context.Background(), []batch.Job{job}, opts)
		leaderDone <- outs[0]
	}()
	time.Sleep(200 * time.Millisecond)
	outs, err := batch.Run(context.Background(), []batch.Job{job}, opts)
	if err != nil {
		t.Fatal(err)
	}
	leader := <-leaderDone
	if !errors.Is(leader.Err, context.DeadlineExceeded) {
		t.Errorf("leader err = %v, want DeadlineExceeded", leader.Err)
	}
	if outs[0].Err != nil || outs[0].Result == nil {
		t.Errorf("follower did not recover from the leader's timeout: res=%v err=%v",
			outs[0].Result, outs[0].Err)
	}
	if got := slowStub.calls.Load(); got != 2 {
		t.Errorf("scheduler calls = %d, want 2 (leader + retrying follower)", got)
	}
}

// TestParallelBitIdentical runs a real Table-1-style matrix across all
// four techniques sequentially and with four workers and requires
// identical results — the scheduling backends are pure functions, so
// execution order must not leak into the cells. Run with -race in CI,
// this also exercises the engine and the POST phase-1 memo for data
// races.
func TestParallelBitIdentical(t *testing.T) {
	loop := &ir.LoopSpec{
		Name: "hydro",
		Body: []ir.BodyOp{
			ir.BLoad("z10", ir.Aff("Z", 1, 10)),
			ir.BLoad("z11", ir.Aff("Z", 1, 11)),
			ir.BMul("a", "r", "z10"),
			ir.BMul("b", "t", "z11"),
			ir.BAdd("c", "a", "b"),
			ir.BLoad("y", ir.Aff("Y", 1, 0)),
			ir.BMul("d", "y", "c"),
			ir.BAdd("e", "q", "d"),
			ir.BStore(ir.Aff("X", 1, 0), "e"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
	}
	var jobs []batch.Job
	for _, f := range []int{2, 4} {
		for _, tech := range []string{"grip", "post", "modulo", "list"} {
			jobs = append(jobs, batch.Job{Technique: tech, Spec: loop, Machine: machine.New(f)})
		}
	}
	seq, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := batch.Run(context.Background(), jobs, batch.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		s, p := seq[i], par[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %d: seq err %v, par err %v", i, s.Err, p.Err)
		}
		if s.Result.Speedup != p.Result.Speedup ||
			s.Result.CyclesPerIter != p.Result.CyclesPerIter ||
			s.Result.Converged != p.Result.Converged ||
			s.Result.Rows != p.Result.Rows {
			t.Errorf("%s @%dFU: parallel diverged: seq %+v par %+v",
				jobs[i].Technique, jobs[i].Machine.OpSlots, s.Result, p.Result)
		}
	}
}

// TestDiskTierServesSecondCache simulates the cross-process warm run:
// a fresh cache sharing the first cache's disk directory must serve
// every cell from the disk tier without calling the scheduler, with
// metrics bit-identical, and promote entries into its memory tier so
// a further rerun is a memory hit.
func TestDiskTierServesSecondCache(t *testing.T) {
	stubs()
	dir := t.TempDir()
	disk1, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := batch.NewTieredCache(64, 0, disk1)
	countStub.calls.Store(0)
	var jobs []batch.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, batch.Job{Technique: "test-count", Spec: tinyLoop(fmt.Sprintf("d%d", i)), Machine: machine.New(2)})
	}
	first, err := batch.Run(context.Background(), jobs, batch.Options{Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range first {
		if o.Err != nil || o.Tier != batch.TierCompute {
			t.Fatalf("cold job %d: err=%v tier=%v", i, o.Err, o.Tier)
		}
	}

	disk2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := batch.NewTieredCache(64, 0, disk2)
	second, err := batch.Run(context.Background(), jobs, batch.Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range second {
		if o.Err != nil {
			t.Fatalf("warm job %d: %v", i, o.Err)
		}
		if o.Tier != batch.TierDisk || !o.CacheHit {
			t.Errorf("warm job %d served by %v, want disk", i, o.Tier)
		}
		if o.Result.Metrics != first[i].Result.Metrics {
			t.Errorf("warm job %d metrics drifted: %+v != %+v", i, o.Result.Metrics, first[i].Result.Metrics)
		}
	}
	if got := countStub.calls.Load(); got != 4 {
		t.Errorf("scheduler ran %d times; warm run must not compute", got)
	}
	third, err := batch.Run(context.Background(), jobs, batch.Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range third {
		if o.Tier != batch.TierMemory {
			t.Errorf("rerun job %d served by %v, want memory (disk hit not promoted)", i, o.Tier)
		}
	}
	st := warm.Stats()
	if st.DiskHits != 4 || st.MemoryHits != 4 || st.Misses != 0 {
		t.Errorf("warm cache stats %+v, want 4 disk / 4 memory / 0 misses", st)
	}
	if st.Disk.Entries != 4 || st.Disk.Bytes <= 0 {
		t.Errorf("disk footprint %+v, want 4 entries, >0 bytes", st.Disk)
	}
}

// TestCorruptDiskEntryRecomputesWithoutPoisoning corrupts one on-disk
// entry: the lookup must fall through to compute, serve correct
// metrics, and leave both tiers healthy — the memory tier never learns
// the corrupt value, and the disk slot is rewritten.
func TestCorruptDiskEntryRecomputesWithoutPoisoning(t *testing.T) {
	stubs()
	dir := t.TempDir()
	disk, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := batch.Job{Technique: "test-count", Spec: tinyLoop("corrupt"), Machine: machine.New(2)}
	cold := batch.NewTieredCache(64, 0, disk)
	first, err := batch.Run(context.Background(), []batch.Job{job}, batch.Options{Cache: cold})
	if err != nil || first[0].Err != nil {
		t.Fatalf("cold run: %v %v", err, first[0].Err)
	}

	// Smash every entry file.
	var smashed int
	filepath.Walk(dir, func(path string, info os.FileInfo, walkErr error) error {
		if walkErr == nil && !info.IsDir() && strings.HasSuffix(path, ".json") {
			if err := os.WriteFile(path, []byte("{torn write"), 0o644); err != nil {
				t.Fatal(err)
			}
			smashed++
		}
		return nil
	})
	if smashed == 0 {
		t.Fatal("no disk entry written by the cold run")
	}

	before := countStub.calls.Load()
	fresh := batch.NewTieredCache(64, 0, disk)
	warm, err := batch.Run(context.Background(), []batch.Job{job}, batch.Options{Cache: fresh})
	if err != nil || warm[0].Err != nil {
		t.Fatalf("recompute run: %v %v", err, warm[0].Err)
	}
	if warm[0].Tier != batch.TierCompute {
		t.Errorf("corrupt entry served from %v, want recompute", warm[0].Tier)
	}
	if warm[0].Result.Metrics != first[0].Result.Metrics {
		t.Errorf("recomputed metrics drifted: %+v != %+v", warm[0].Result.Metrics, first[0].Result.Metrics)
	}
	if got := countStub.calls.Load(); got != before+1 {
		t.Errorf("scheduler calls %d, want %d (exactly one recompute)", got, before+1)
	}
	// The rewrite healed the disk slot: a third cache now disk-hits.
	again, err := batch.Run(context.Background(), []batch.Job{job},
		batch.Options{Cache: batch.NewTieredCache(64, 0, disk)})
	if err != nil || again[0].Err != nil {
		t.Fatal(err, again[0].Err)
	}
	if again[0].Tier != batch.TierDisk {
		t.Errorf("healed entry served from %v, want disk", again[0].Tier)
	}
	// The memory tier of the recomputing cache holds the good value.
	if res, ok := fresh.Get(job.Key()); !ok || res.Metrics != first[0].Result.Metrics {
		t.Error("memory tier poisoned or empty after corrupt-entry recompute")
	}
	if disk.Stats().Rejected == 0 {
		t.Error("corrupt entry not counted as rejected")
	}
}

// TestWantRawServedOnlyWithAttachment pins the raw-tier contract: a
// metrics-only cache entry (memory or disk) cannot satisfy a WantRaw
// job — the cell recomputes, attaches, and only then do raw requests
// hit; and the raw tier stays within its cap while the metrics tier
// retains every fingerprint.
func TestWantRawServedOnlyWithAttachment(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := batch.NewTieredCache(64, 2, disk)
	mk := func(name string, want sched.Want) batch.Job {
		return batch.Job{Technique: "grip", Spec: tinyLoop(name), Machine: machine.New(2), Want: want}
	}

	// Metrics-only first: cached in both tiers, no raw anywhere.
	outs, err := batch.Run(context.Background(), []batch.Job{mk("rawc", sched.WantMetrics)}, batch.Options{Cache: cache})
	if err != nil || outs[0].Err != nil {
		t.Fatal(err, outs[0].Err)
	}
	if outs[0].Result.Raw() != nil {
		t.Fatal("metrics-only job carries a raw attachment")
	}
	metricsOnly := outs[0].Result.Metrics

	// WantRaw on the same key: the metrics tiers must NOT serve it.
	outs, err = batch.Run(context.Background(), []batch.Job{mk("rawc", sched.WantRaw)}, batch.Options{Cache: cache})
	if err != nil || outs[0].Err != nil {
		t.Fatal(err, outs[0].Err)
	}
	if outs[0].Tier != batch.TierCompute {
		t.Errorf("WantRaw served from %v despite no resident attachment", outs[0].Tier)
	}
	if outs[0].Result.Raw() == nil {
		t.Fatal("WantRaw compute returned no attachment")
	}
	if outs[0].Result.Metrics != metricsOnly {
		t.Errorf("Want changed the metrics: %+v != %+v", outs[0].Result.Metrics, metricsOnly)
	}

	// Now resident: a second WantRaw is a memory hit with the SHARED
	// attachment (the documented aliasing contract).
	shared := outs[0].Result.Raw()
	outs, err = batch.Run(context.Background(), []batch.Job{mk("rawc", sched.WantRaw)}, batch.Options{Cache: cache})
	if err != nil || outs[0].Err != nil {
		t.Fatal(err, outs[0].Err)
	}
	if outs[0].Tier != batch.TierMemory {
		t.Errorf("resident raw served from %v, want memory", outs[0].Tier)
	}
	if outs[0].Result.Raw() != shared {
		t.Error("raw tier handed out a different attachment than it stored")
	}

	// Fill past the raw cap: metrics retained for all, raws for <= cap.
	var jobs []batch.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mk(fmt.Sprintf("rawfill%d", i), sched.WantRaw))
	}
	if _, err := batch.Run(context.Background(), jobs, batch.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got := cache.RawLen(); got > 2 {
		t.Errorf("raw tier holds %d attachments, cap is 2", got)
	}
	if got := cache.Len(); got != 5 {
		t.Errorf("metrics tier holds %d entries, want all 5", got)
	}
}

func TestBenchReport(t *testing.T) {
	jobs := []batch.Job{
		{Technique: "list", Spec: tinyLoop("r0"), Machine: machine.New(2), Label: "LL0"},
	}
	outs, err := batch.Run(context.Background(), jobs, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := batch.NewBenchReport(outs, 3, 10*time.Millisecond)
	if rep.Parallelism != 3 || len(rep.Cells) != 1 {
		t.Fatalf("bad report %+v", rep)
	}
	c := rep.Cells[0]
	if c.Loop != "LL0" || c.FUs != 2 || c.Technique != "list" || c.Speedup <= 0 {
		t.Errorf("bad cell %+v", c)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"loop": "LL0"`) {
		t.Errorf("JSON missing loop name: %s", sb.String())
	}
}
