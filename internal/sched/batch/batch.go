// Package batch executes scheduling jobs against the sched registry
// concurrently: a worker pool with configurable parallelism, context
// cancellation, per-job timeouts, and a tiered result store (memory →
// optional disk → compute; see internal/sched/store) with single-flight
// dedup keyed by a canonical fingerprint of (technique, loop spec,
// machine, configuration), so repeated cells — bench reruns, Table 1
// summary recomputations, validation passes, config sweeps — cost
// nothing, across processes once a disk tier is attached.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
)

// Job is one scheduling request: run Technique for Spec on Machine
// under Config.
type Job struct {
	Technique string
	Spec      *ir.LoopSpec
	Machine   machine.Machine
	// Config overrides the technique's paper-default configuration for
	// this job; the zero value is the paper default. Its fingerprint
	// joins Key, so jobs differing only in configuration (a sweep over
	// unwind factors, say) occupy distinct cache entries.
	Config sched.Config
	// Label is a display name for reports (e.g. the Livermore kernel
	// name); it does not participate in the cache key. Empty means the
	// spec's own name.
	Label string
	// Want hints whether this job needs the raw attachment (validation
	// paths do; table cells do not). It is retention advice, not
	// experiment identity, so it does not participate in Key — but the
	// cache serves a WantRaw job from a tier only when the raw
	// attachment is actually resident there.
	Want sched.Want
}

// DisplayName returns the job's label, falling back to the spec name.
func (j Job) DisplayName() string {
	if j.Label != "" {
		return j.Label
	}
	return j.Spec.Name
}

// Request returns the job as the registry's first-class request triple.
func (j Job) Request() sched.Request {
	return sched.Request{Spec: j.Spec, Machine: j.Machine, Config: j.Config, Want: j.Want}
}

// Key returns the job's canonical cache key: the technique joined with
// the request fingerprint, which covers the loop, the machine, and the
// configuration. Two jobs with equal keys produce bit-identical
// results.
func (j Job) Key() string {
	return j.Technique + "|" + j.Request().Fingerprint()
}

// Outcome is the result of one job. Outcomes are returned in job order
// regardless of execution order, so batch output is deterministic.
type Outcome struct {
	Job    Job
	Result *sched.Result
	Err    error
	// Wall is the time this job spent computing; zero when the result
	// came from the cache or from another job's shared in-flight
	// computation (CacheHit true).
	Wall     time.Duration
	CacheHit bool
	// Tier reports which store tier served the result: TierCompute when
	// this job ran the scheduler (CacheHit false), TierMemory/TierDisk/
	// TierFlight otherwise.
	Tier Tier
}

// Options tune a batch run.
type Options struct {
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// Timeout bounds each job's wall time — computing, or waiting on
	// another job's shared in-flight computation; 0 means no limit. A
	// job that exceeds it fails with context.DeadlineExceeded. Backends
	// observe the deadline through the context threaded into their step
	// loops, so the computation itself stops — nothing is abandoned to
	// burn CPU in the background. (A backend that never checks its
	// context effectively has no timeout; all registered techniques
	// check.)
	Timeout time.Duration
	// Cache, when set, is consulted before running a job and updated
	// after a success. Callers can share one cache across batches.
	// Identical in-flight jobs (same fingerprint key) share one
	// computation — single-flight dedup — so submitting duplicates is
	// merely redundant, not wasteful.
	Cache *Cache
}

// Run executes the jobs and returns one outcome per job, in job order.
// Cancelling ctx stops dispatching new jobs and interrupts running
// ones; jobs not yet started fail with ctx.Err(). The returned error is
// ctx.Err() when the run was cut short — some job was skipped or
// interrupted by the context — and nil otherwise, even if ctx expires
// after the last job finished. Per-job failures are reported in the
// outcomes, not the run error, so one diverging cell doesn't hide the
// rest.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	workers := EffectiveParallelism(opts.Parallelism, len(jobs))
	outcomes := make([]Outcome, len(jobs))
	var cut atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i] = runOne(ctx, jobs[i], opts, &cut)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Indices >= i were never handed to a worker; fail them here.
			cut.Store(true)
			for j := i; j < len(jobs); j++ {
				outcomes[j] = Outcome{Job: jobs[j], Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if cut.Load() {
		return outcomes, ctx.Err()
	}
	return outcomes, nil
}

// EffectiveParallelism returns the worker count Run actually uses when
// p is requested for a batch of n jobs: 0 or negative means GOMAXPROCS,
// and the count never exceeds the job count. Bench reports should
// record this, not the raw flag value.
func EffectiveParallelism(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	return p
}

// runOne runs one job on the worker's own goroutine. Cancellation is
// cooperative: the backend's step loop observes the job context and
// returns its error, which mapErr turns into the batch context's error
// (run cut short) or a per-job DeadlineExceeded.
func runOne(ctx context.Context, j Job, opts Options, cut *atomic.Bool) Outcome {
	out := Outcome{Job: j}
	if err := ctx.Err(); err != nil {
		cut.Store(true)
		out.Err = err
		return out
	}
	// The per-job budget covers everything below: computing, and
	// waiting on another job's shared in-flight computation.
	runCtx := ctx
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	// The compute closure is the panic-isolation perimeter: a backend
	// panic is recovered into a typed *sched.PanicError carrying the
	// job key and stack, so one poisoned cell fails alone — the worker
	// goroutine survives, the rest of the batch proceeds, and (through
	// the cache) single-flight waiters receive the error instead of
	// waiting on a flight that will never retire.
	compute := func() (res *sched.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				res, err = nil, &sched.PanicError{Key: j.Key(), Value: v, Stack: debug.Stack()}
			}
		}()
		if err := faults.CheckCtx(runCtx, faults.BatchCompute); err != nil {
			return nil, err
		}
		s, ok := sched.Lookup(j.Technique)
		if !ok {
			return nil, fmt.Errorf("batch: unknown technique %q (have %v)", j.Technique, sched.Names())
		}
		return s.Schedule(runCtx, j.Request())
	}
	start := time.Now()
	if opts.Cache != nil {
		out.Result, out.Tier, out.Err = opts.Cache.GetOrCompute(runCtx, j.Key(), j.Want, compute)
		out.CacheHit = out.Tier != TierCompute
		if !out.CacheHit {
			out.Wall = time.Since(start)
		}
	} else {
		out.Result, out.Err = compute()
		out.Wall = time.Since(start)
	}
	out.Err = mapErr(ctx, runCtx, j, out.Err, cut)
	return out
}

// mapErr classifies a job failure: the batch context's own error cuts
// the run short, a per-job deadline becomes a labeled DeadlineExceeded,
// and anything else passes through.
func mapErr(ctx, runCtx context.Context, j Job, err error, cut *atomic.Bool) error {
	if err == nil {
		return nil
	}
	if cause := ctx.Err(); cause != nil && errors.Is(err, cause) {
		cut.Store(true)
		return cause
	}
	if errors.Is(err, context.DeadlineExceeded) && runCtx.Err() != nil {
		return fmt.Errorf("batch: %s on %s: %w", j.Technique, j.DisplayName(), context.DeadlineExceeded)
	}
	return err
}
