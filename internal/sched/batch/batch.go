// Package batch executes scheduling jobs against the sched registry
// concurrently: a worker pool with configurable parallelism, context
// cancellation, per-job timeouts, and an LRU result cache keyed by a
// canonical fingerprint of (loop spec, machine, technique), so repeated
// cells — bench reruns, Table 1 summary recomputations, validation
// passes — cost nothing.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
)

// Job is one scheduling request: run Technique for Spec on Machine.
type Job struct {
	Technique string
	Spec      *ir.LoopSpec
	Machine   machine.Machine
	// Label is a display name for reports (e.g. the Livermore kernel
	// name); it does not participate in the cache key. Empty means the
	// spec's own name.
	Label string
}

// DisplayName returns the job's label, falling back to the spec name.
func (j Job) DisplayName() string {
	if j.Label != "" {
		return j.Label
	}
	return j.Spec.Name
}

// Key returns the job's canonical cache key. Every backend runs its
// paper-default configuration, so (technique, loop, machine) is the
// whole identity of a job; when per-job configuration overrides land
// (see ROADMAP), their fingerprint joins the key.
func (j Job) Key() string {
	return j.Technique + "|" + j.Spec.Fingerprint() + "|" + j.Machine.Fingerprint()
}

// Outcome is the result of one job. Outcomes are returned in job order
// regardless of execution order, so batch output is deterministic.
type Outcome struct {
	Job      Job
	Result   *sched.Result
	Err      error
	Wall     time.Duration
	CacheHit bool
}

// Options tune a batch run.
type Options struct {
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// Timeout bounds each job's wall time; 0 means no limit. A job that
	// exceeds it fails with context.DeadlineExceeded. The underlying
	// scheduler goroutine is abandoned (the techniques are pure CPU
	// functions with no cancellation points) and its result discarded.
	Timeout time.Duration
	// Cache, when set, is consulted before running a job and updated
	// after a success. Callers can share one cache across batches.
	// There is no single-flight dedup: identical jobs in flight at the
	// same time each compute (deterministically identical) results and
	// the last one wins; dedupe duplicate jobs before submitting if
	// that cost matters.
	Cache *Cache
}

// Run executes the jobs and returns one outcome per job, in job order.
// Cancelling ctx stops dispatching new jobs; jobs not yet started fail
// with ctx.Err(). The returned error is ctx.Err() when the run was cut
// short — some job was skipped or interrupted by the context — and nil
// otherwise, even if ctx expires after the last job finished. Per-job
// failures are reported in the outcomes, not the run error, so one
// diverging cell doesn't hide the rest.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	workers := EffectiveParallelism(opts.Parallelism, len(jobs))
	outcomes := make([]Outcome, len(jobs))
	var cut atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i] = runOne(ctx, jobs[i], opts, &cut)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Indices >= i were never handed to a worker; fail them here.
			cut.Store(true)
			for j := i; j < len(jobs); j++ {
				outcomes[j] = Outcome{Job: jobs[j], Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if cut.Load() {
		return outcomes, ctx.Err()
	}
	return outcomes, nil
}

// EffectiveParallelism returns the worker count Run actually uses when
// p is requested for a batch of n jobs: 0 or negative means GOMAXPROCS,
// and the count never exceeds the job count. Bench reports should
// record this, not the raw flag value.
func EffectiveParallelism(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	return p
}

func runOne(ctx context.Context, j Job, opts Options, cut *atomic.Bool) Outcome {
	out := Outcome{Job: j}
	if err := ctx.Err(); err != nil {
		cut.Store(true)
		out.Err = err
		return out
	}
	var key string
	if opts.Cache != nil {
		key = j.Key()
		if r, ok := opts.Cache.Get(key); ok {
			out.Result = r
			out.CacheHit = true
			return out
		}
	}
	s, ok := sched.Lookup(j.Technique)
	if !ok {
		out.Err = fmt.Errorf("batch: unknown technique %q (have %v)", j.Technique, sched.Names())
		return out
	}
	start := time.Now()
	out.Result, out.Err = schedule(ctx, s, j, opts.Timeout, cut)
	out.Wall = time.Since(start)
	if out.Err == nil && opts.Cache != nil {
		opts.Cache.Put(key, out.Result)
	}
	return out
}

// schedule runs one job, bounded by the per-job timeout and the batch
// context. Without either bound it calls the scheduler directly; with a
// bound the scheduler runs in its own goroutine and an expiry abandons
// it (documented in Options.Timeout).
func schedule(ctx context.Context, s sched.Scheduler, j Job, timeout time.Duration, cut *atomic.Bool) (*sched.Result, error) {
	if timeout <= 0 && ctx.Done() == nil {
		return s.Schedule(j.Spec, j.Machine)
	}
	type reply struct {
		res *sched.Result
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		res, err := s.Schedule(j.Spec, j.Machine)
		ch <- reply{res, err}
	}()
	var expiry <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expiry = t.C
	}
	select {
	case r := <-ch:
		return r.res, r.err
	case <-expiry:
		return nil, fmt.Errorf("batch: %s on %s: %w", j.Technique, j.Spec.Name, context.DeadlineExceeded)
	case <-ctx.Done():
		cut.Store(true)
		return nil, ctx.Err()
	}
}
