package batch

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/sched/store"
)

// Tier identifies which tier of the result store served a lookup.
type Tier uint8

const (
	// TierCompute: nothing served it — the caller ran the scheduler.
	TierCompute Tier = iota
	// TierMemory: the in-process metrics tier (raw tier too, when the
	// request wanted the raw attachment).
	TierMemory
	// TierDisk: the persistent metrics tier; the entry was promoted to
	// the memory tier on the way out.
	TierDisk
	// TierFlight: another caller's in-flight computation was shared.
	TierFlight
)

// String names the tier for reports ("compute", "memory", "disk",
// "flight").
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	case TierFlight:
		return "flight"
	default:
		return "compute"
	}
}

// Cache is the tiered result store the batch engine consults before
// running a job: memory, then disk (when attached), then compute —
// with write-through on the way back so both tiers see every computed
// result. Single-flight deduplication is preserved across tiers:
// concurrent requests for the same key share one computation instead
// of racing to the same answer.
//
// Metrics move between tiers by value, so no two callers ever alias a
// cached metrics record. Raw attachments live only in the capped
// in-memory raw tier and ARE shared pointers — the aliasing contract
// is owned by sched.Result: Raw() is read-only, CloneRaw() for
// mutation.
type Cache struct {
	mem *store.Memory

	memHits     atomic.Uint64
	diskHits    atomic.Uint64
	misses      atomic.Uint64
	quarantined atomic.Uint64

	mu      sync.Mutex
	disk    store.Store
	flights map[string]*flight
}

// flight is one in-progress computation other callers can wait on.
// res and err are written before done is closed, never after.
type flight struct {
	done chan struct{}
	res  *sched.Result
	err  error
}

// NewCache returns a memory-only cache holding up to capacity metrics
// entries (and store.DefaultRawCapacity raw attachments).
func NewCache(capacity int) *Cache {
	return NewTieredCache(capacity, 0, nil)
}

// NewTieredCache composes the full store: a memory tier of capacity
// metrics entries and rawCapacity raw attachments (<= 0 means
// store.DefaultRawCapacity), over an optional persistent disk tier.
func NewTieredCache(capacity, rawCapacity int, disk store.Store) *Cache {
	return &Cache{
		mem:     store.NewMemory(capacity, rawCapacity),
		disk:    disk,
		flights: make(map[string]*flight),
	}
}

// AttachDisk installs the persistent tier. Call it during setup,
// before the cache sees traffic; lookups already past the memory tier
// may miss the new disk tier but are never wrong.
func (c *Cache) AttachDisk(disk store.Store) {
	c.mu.Lock()
	c.disk = disk
	c.mu.Unlock()
}

// diskTier returns the attached persistent tier, if any.
func (c *Cache) diskTier() store.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// Get returns a result materialized from the memory metrics tier,
// without the raw attachment and without consulting the disk tier.
func (c *Cache) Get(key string) (*sched.Result, bool) {
	m, ok := c.mem.Get(key)
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.memHits.Add(1)
	return sched.NewResult(m, nil), true
}

// Put stores a result: metrics into the memory tier (and the disk
// tier, when attached), the raw attachment — if present — into the
// capped raw tier.
func (c *Cache) Put(key string, res *sched.Result) {
	c.publish(key, res, c.diskTier())
}

// publish is the single write-through path: metrics into the memory
// tier and (when attached) disk, the raw attachment into the capped
// raw tier.
func (c *Cache) publish(key string, res *sched.Result, disk store.Store) {
	c.mem.Put(key, res.Metrics)
	if raw := res.Raw(); raw != nil {
		c.mem.PutRaw(key, raw)
	}
	if disk != nil {
		disk.Put(key, res.Metrics)
	}
}

// memLookup materializes a result from the memory tiers, honoring
// want: a WantRaw request hits only when both the metrics AND the raw
// attachment are resident. Callers hold c.mu.
func (c *Cache) memLookup(key string, want sched.Want) (*sched.Result, bool) {
	m, ok := c.mem.Get(key)
	if !ok {
		return nil, false
	}
	if want == sched.WantRaw {
		raw, ok := c.mem.GetRaw(key)
		if !ok {
			return nil, false
		}
		return sched.NewResult(m, raw), true
	}
	return sched.NewResult(m, nil), true
}

// GetOrCompute returns the result under key, computing it at most once
// across concurrent callers: the first caller (the leader) consults
// the disk tier and then runs compute, everyone else either hits the
// memory tier or waits on the leader's flight. The returned Tier
// reports what served the result; TierCompute means this caller ran
// the scheduler itself.
//
// A request with want == sched.WantRaw is served from a tier only when
// the raw attachment is actually resident (the disk tier never is —
// raw graphs are not persisted), so callers needing the raw result may
// recompute a cell whose metrics are long cached. The compute callback
// is responsible for requesting the attachment it needs.
//
// A leader's error is not shared: it may be private to that caller
// (its per-job timeout), so waiters retry — one becomes the next
// leader — rather than inherit the failure. Errors are never stored in
// any tier. A waiter whose own ctx expires stops waiting and returns
// ctx.Err(); the leader's computation is unaffected.
func (c *Cache) GetOrCompute(ctx context.Context, key string, want sched.Want, compute func() (*sched.Result, error)) (res *sched.Result, tier Tier, err error) {
	for {
		c.mu.Lock()
		if res, ok := c.memLookup(key, want); ok {
			c.mu.Unlock()
			c.memHits.Add(1)
			return res, TierMemory, nil
		}
		f, inflight := c.flights[key]
		if !inflight {
			f = &flight{done: make(chan struct{})}
			c.flights[key] = f
			c.mu.Unlock()
			var tier Tier
			f.res, tier, f.err = c.fill(key, want, compute)
			// Retire the flight only after fill published the result to
			// the memory tier, so a caller arriving between the two
			// always finds one of them.
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
			return f.res, tier, f.err
		}
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil && (want != sched.WantRaw || f.res.Raw() != nil) {
				c.memHits.Add(1)
				return f.res, TierFlight, nil
			}
			// Leader failed, or its result lacks the raw attachment this
			// caller needs; loop and recompute (or join a newer flight).
		case <-ctx.Done():
			return nil, TierCompute, ctx.Err()
		}
	}
}

// fill is the leader's path past the memory tier: disk, then compute,
// writing through to every tier on the way back.
func (c *Cache) fill(key string, want sched.Want, compute func() (*sched.Result, error)) (*sched.Result, Tier, error) {
	disk := c.diskTier()
	// The disk tier holds metrics only, so it cannot serve WantRaw.
	if want != sched.WantRaw && disk != nil {
		if m, ok := disk.Get(key); ok {
			c.diskHits.Add(1)
			c.mem.Put(key, m) // promote, so reruns stay in memory
			return sched.NewResult(m, nil), TierDisk, nil
		}
	}
	c.misses.Add(1)
	res, err := safeCompute(key, compute)
	if err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			c.quarantined.Add(1)
		}
		return nil, TierCompute, err
	}
	c.publish(key, res, disk)
	return res, TierCompute, nil
}

// safeCompute runs the compute callback inside a panic-recovery
// perimeter of its own: whatever the caller passed, a panicking compute
// becomes a typed *sched.PanicError on the normal error path, so the
// leader's flight always retires (waiters see the failure and retry)
// instead of deadlocking everyone parked on its done channel. The batch
// engine recovers at its own layer too and hands the PanicError down —
// this perimeter is for everyone else who calls GetOrCompute directly.
func safeCompute(key string, compute func() (*sched.Result, error)) (res *sched.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &sched.PanicError{Key: key, Value: v, Stack: debug.Stack()}
		}
	}()
	return compute()
}

// Len returns the number of metrics entries in the memory tier.
func (c *Cache) Len() int { return c.mem.Len() }

// RawLen returns the number of raw attachments resident in the capped
// raw tier.
func (c *Cache) RawLen() int { return c.mem.RawLen() }

// CacheStats summarizes the cache's traffic by serving tier. Flight
// shares (waiters that received another caller's in-flight result)
// count as memory hits; each actual computation counts as one miss.
type CacheStats struct {
	MemoryHits uint64
	DiskHits   uint64
	Misses     uint64
	// Quarantined counts computations this cache led that ended in a
	// recovered backend panic (*sched.PanicError) — poisoned cells that
	// failed alone instead of taking the process down.
	Quarantined uint64
	// Disk carries the persistent tier's own counters, footprint, and
	// breaker health; zero when no disk tier is attached.
	Disk store.Stats
}

// Stats returns the hit and miss counts since creation, plus the disk
// tier's footprint and health when one is attached.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		MemoryHits:  c.memHits.Load(),
		DiskHits:    c.diskHits.Load(),
		Misses:      c.misses.Load(),
		Quarantined: c.quarantined.Load(),
	}
	if disk := c.diskTier(); disk != nil {
		st.Disk = disk.Stats()
	}
	return st
}
