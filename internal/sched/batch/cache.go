package batch

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/sched"
)

// Cache is a thread-safe LRU of scheduling results keyed by Job.Key(),
// with single-flight deduplication: concurrent requests for the same
// key share one computation instead of racing to the same answer.
// Cached results are shared pointers: treat them (and their Raw
// payloads) as read-only.
type Cache struct {
	lru    *lru.Cache[string, *sched.Result]
	hits   atomic.Uint64
	misses atomic.Uint64

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress computation other callers can wait on.
// res and err are written before done is closed, never after.
type flight struct {
	done chan struct{}
	res  *sched.Result
	err  error
}

// NewCache returns an LRU cache holding up to capacity results.
func NewCache(capacity int) *Cache {
	return &Cache{
		lru:     lru.New[string, *sched.Result](capacity),
		flights: make(map[string]*flight),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*sched.Result, bool) {
	res, ok := c.lru.Get(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// Put stores a result under key, evicting the least recently used entry
// when over capacity.
func (c *Cache) Put(key string, res *sched.Result) {
	c.lru.Put(key, res)
}

// GetOrCompute returns the result under key, computing it at most once
// across concurrent callers: the first caller (the leader) runs
// compute, everyone else either hits the LRU or waits on the leader's
// flight. shared reports whether the result came from the cache or a
// shared flight rather than this caller's own compute.
//
// A leader's error is not shared: it may be private to that caller (its
// per-job timeout), so waiters retry — one becomes the next leader —
// rather than inherit the failure. Errors are never stored in the LRU.
// A waiter whose own ctx expires stops waiting and returns ctx.Err();
// the leader's computation is unaffected.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() (*sched.Result, error)) (res *sched.Result, shared bool, err error) {
	for {
		c.mu.Lock()
		if res, ok := c.lru.Get(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return res, true, nil
		}
		f, inflight := c.flights[key]
		if !inflight {
			f = &flight{done: make(chan struct{})}
			c.flights[key] = f
			c.mu.Unlock()
			c.misses.Add(1)
			f.res, f.err = compute()
			if f.err == nil {
				// Publish to the LRU before retiring the flight so a
				// caller arriving between the two always finds one.
				c.lru.Put(key, f.res)
			}
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
			return f.res, false, f.err
		}
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				c.hits.Add(1)
				return f.res, true, nil
			}
			// Leader failed; loop and recompute (or join a newer flight).
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns the hit and miss counts since creation. Single-flight
// waiters that received a shared result count as hits; each actual
// computation counts as one miss.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
