package batch

import (
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/sched"
)

// Cache is a thread-safe LRU of scheduling results keyed by Job.Key().
// Cached results are shared pointers: treat them (and their Raw
// payloads) as read-only.
type Cache struct {
	lru    *lru.Cache[string, *sched.Result]
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewCache returns an LRU cache holding up to capacity results.
func NewCache(capacity int) *Cache {
	return &Cache{lru: lru.New[string, *sched.Result](capacity)}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*sched.Result, bool) {
	res, ok := c.lru.Get(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// Put stores a result under key, evicting the least recently used entry
// when over capacity.
func (c *Cache) Put(key string, res *sched.Result) {
	c.lru.Put(key, res)
}

// Len returns the number of cached results.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns the hit and miss counts since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
