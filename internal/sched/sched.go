// Package sched defines the uniform backend interface every scheduling
// technique in this repository implements, a process-wide registry the
// facade and commands drive, and the normalized result all techniques
// report. Adding a technique is one Register call; everything above —
// the batch engine, Table 1, the CLI flags — picks it up by name.
//
// Layering (bottom-up): core/ps/graph implement the transformations,
// the technique packages (pipeline, post, modulo, listsched) implement
// whole techniques, this package adapts them behind one interface, and
// sched/batch executes jobs against the registry concurrently.
package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// Config is a per-request override of a technique's paper-default
// configuration. The zero value IS the paper default, so boolean knobs
// are negated (NoOptimize, NoGapPrevention) and zero-valued integer
// knobs mean "use the default". It is a plain value type: requests and
// batch jobs embed it by value and its fingerprint joins cache keys.
//
// The knobs parameterize the pipelining techniques (grip, post); the
// single-iteration baselines (modulo, list) have no configuration and
// ignore them, at the acceptable cost of one cache entry per distinct
// config.
type Config struct {
	// Unwind fixes the unwind factor; 0 means automatic (the ladder of
	// factors until the pattern converges).
	Unwind int
	// MaxUnwind caps automatic unwinding; 0 means the default (96).
	MaxUnwind int
	// NoOptimize disables redundant-operation removal.
	NoOptimize bool
	// NoGapPrevention disables the section 3.3 machinery (reproducing
	// the Figure 9 divergence).
	NoGapPrevention bool
	// EmptyPrelude inserts this many empty instructions before entry.
	EmptyPrelude int
	// Renaming enables the renaming variant of move-op.
	Renaming bool
	// Periods is the pattern-verification length; 0 means the default (3).
	Periods int
}

// Pipeline expands the override into a full pipeline.Config for machine
// m, starting from the paper defaults.
func (c Config) Pipeline(m machine.Machine) pipeline.Config {
	cfg := pipeline.DefaultConfig(m)
	cfg.Unwind = c.Unwind
	if c.MaxUnwind > 0 {
		cfg.MaxUnwind = c.MaxUnwind
	}
	cfg.Optimize = !c.NoOptimize
	cfg.GapPrevention = !c.NoGapPrevention
	cfg.EmptyPrelude = c.EmptyPrelude
	cfg.Renaming = c.Renaming
	if c.Periods > 0 {
		cfg.Periods = c.Periods
	}
	return cfg
}

// Fingerprint returns the canonical machine-independent key of the
// configuration (the machine fingerprints separately in Request
// fingerprints). Defaulted zero values normalize, so the zero Config
// and an explicitly defaulted one key identically and share cache
// entries.
func (c Config) Fingerprint() string {
	return c.Pipeline(machine.Machine{}).Knobs()
}

// Request is one first-class scheduling request: the (workload,
// machine, configuration) triple that identifies an experiment. Specs
// are treated as read-only and may be shared across requests.
type Request struct {
	Spec    *ir.LoopSpec
	Machine machine.Machine
	// Config overrides the technique's paper-default configuration;
	// the zero value is the paper default.
	Config Config
}

// Fingerprint returns the canonical cache key of the request: loop,
// machine, and configuration. Two requests with equal fingerprints
// produce bit-identical results under any registered technique.
func (r Request) Fingerprint() string {
	return r.Spec.Fingerprint() + "|" + r.Machine.Fingerprint() + "|" + r.Config.Fingerprint()
}

// Result is the normalized outcome every backend reports, carrying the
// metrics Table 1 and the CLI compare across techniques.
type Result struct {
	// Technique is the registry name of the backend that produced the
	// result.
	Technique string
	// Loop is the scheduled loop's name.
	Loop string
	// CyclesPerIter is the steady-state cost of one source iteration.
	CyclesPerIter float64
	// Speedup is sequential ops per iteration divided by CyclesPerIter —
	// the paper's Table 1 metric.
	Speedup float64
	// Converged reports whether the technique reached its steady state
	// (pattern convergence for the pipelining techniques; trivially true
	// for single-iteration schedulers).
	Converged bool
	// KernelRows and KernelIterSpan describe the steady-state kernel:
	// its row count and how many source iterations one period spans.
	// Zero when no kernel formed.
	KernelRows     int
	KernelIterSpan int
	// Rows is the full schedule length in instructions.
	Rows int
	// Barriers counts resource-barrier events during scheduling (GRiP's
	// integrated-constraint cost metric; zero for other techniques).
	Barriers int
	// Raw is the technique's native result (*pipeline.Result,
	// *modulo.Result, *listsched.Result) for consumers needing more than
	// the normalized view. Treat it as read-only: results may be shared
	// through caches.
	Raw any
}

// Scheduler is one scheduling technique: it maps a request (loop,
// machine, configuration) to a normalized result. Implementations must
// be safe for concurrent use — the batch engine calls Schedule from
// many goroutines — and must observe ctx in their step loops: a
// cancelled or expired context stops the computation and returns its
// error (wrapped so errors.Is recognizes it). That cooperation is what
// makes per-job timeouts terminate work instead of leaking goroutines.
type Scheduler interface {
	// Name returns the registry name ("grip", "post", ...).
	Name() string
	// Schedule runs the technique for the request under ctx.
	Schedule(ctx context.Context, req Request) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scheduler{}
)

// Register adds a backend under its name. It panics on a duplicate
// name: backends are registered from init functions, and a collision is
// a programming error.
func Register(s Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate scheduler %q", name))
	}
	registry[name] = s
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Scheduler, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registered backends in name order.
func All() []Scheduler {
	var ss []Scheduler
	for _, n := range Names() {
		s, _ := Lookup(n)
		ss = append(ss, s)
	}
	return ss
}

// Schedule runs the named backend for the request, returning an error
// for unknown names.
func Schedule(ctx context.Context, name string, req Request) (*Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return s.Schedule(ctx, req)
}
