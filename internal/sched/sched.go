// Package sched defines the uniform backend interface every scheduling
// technique in this repository implements, a process-wide registry the
// facade and commands drive, and the normalized result all techniques
// report. Adding a technique is one Register call; everything above —
// the batch engine, Table 1, the CLI flags — picks it up by name.
//
// Layering (bottom-up): core/ps/graph implement the transformations,
// the technique packages (pipeline, post, modulo, listsched) implement
// whole techniques, this package adapts them behind one interface, and
// sched/batch executes jobs against the registry concurrently.
package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// Config is a per-request override of a technique's paper-default
// configuration. The zero value IS the paper default, so boolean knobs
// are negated (NoOptimize, NoGapPrevention) and zero-valued integer
// knobs mean "use the default". It is a plain value type: requests and
// batch jobs embed it by value and its fingerprint joins cache keys.
//
// The knobs parameterize the pipelining techniques (grip, post); the
// single-iteration baselines (modulo, list) have no configuration and
// ignore them, at the acceptable cost of one cache entry per distinct
// config.
type Config struct {
	// Unwind fixes the unwind factor; 0 means automatic (the ladder of
	// factors until the pattern converges).
	Unwind int
	// MaxUnwind caps automatic unwinding; 0 means the default (96).
	MaxUnwind int
	// NoOptimize disables redundant-operation removal.
	NoOptimize bool
	// NoGapPrevention disables the section 3.3 machinery (reproducing
	// the Figure 9 divergence).
	NoGapPrevention bool
	// EmptyPrelude inserts this many empty instructions before entry.
	EmptyPrelude int
	// Renaming enables the renaming variant of move-op.
	Renaming bool
	// Periods is the pattern-verification length; 0 means the default (3).
	Periods int
	// CrossCheck makes the pipelining backends run their retained
	// reference implementations alongside every incremental fast path
	// and panic on divergence (see pipeline.Config.CrossCheck). Like
	// there, it cannot change the schedule, so it is excluded from
	// Fingerprint — which also means a cached result may be served
	// without the cross-check having run; fuzzing and verification
	// harnesses that rely on it must run against fresh fingerprints or
	// no cache.
	CrossCheck bool
}

// Pipeline expands the override into a full pipeline.Config for machine
// m, starting from the paper defaults.
func (c Config) Pipeline(m machine.Machine) pipeline.Config {
	cfg := pipeline.DefaultConfig(m)
	cfg.Unwind = c.Unwind
	if c.MaxUnwind > 0 {
		cfg.MaxUnwind = c.MaxUnwind
	}
	cfg.Optimize = !c.NoOptimize
	cfg.GapPrevention = !c.NoGapPrevention
	cfg.EmptyPrelude = c.EmptyPrelude
	cfg.Renaming = c.Renaming
	if c.Periods > 0 {
		cfg.Periods = c.Periods
	}
	cfg.CrossCheck = c.CrossCheck
	return cfg
}

// Fingerprint returns the canonical machine-independent key of the
// configuration (the machine fingerprints separately in Request
// fingerprints). Defaulted zero values normalize, so the zero Config
// and an explicitly defaulted one key identically and share cache
// entries.
func (c Config) Fingerprint() string {
	return c.Pipeline(machine.Machine{}).Knobs()
}

// Want hints what a request needs beyond the normalized metrics. It
// is retention advice, not experiment identity: the scheduled result
// is a pure function of (spec, machine, config) alone, so Want never
// joins fingerprints or cache keys.
type Want uint8

const (
	// WantMetrics (the zero value, the default) asks for the normalized
	// metrics only; backends may skip retaining their raw graphs
	// entirely, so nothing heavyweight outlives the computation.
	WantMetrics Want = iota
	// WantRaw additionally asks for the technique's native result as
	// the raw attachment — validation and figure paths need it.
	WantRaw
)

// Request is one first-class scheduling request: the (workload,
// machine, configuration) triple that identifies an experiment. Specs
// are treated as read-only and may be shared across requests.
type Request struct {
	Spec    *ir.LoopSpec
	Machine machine.Machine
	// Config overrides the technique's paper-default configuration;
	// the zero value is the paper default.
	Config Config
	// Want hints whether the caller needs the raw attachment; it does
	// not affect the metrics and is excluded from Fingerprint.
	Want Want
}

// Fingerprint returns the canonical cache key of the request: loop,
// machine, and configuration. Two requests with equal fingerprints
// produce bit-identical results under any registered technique. Want
// is deliberately excluded — it changes what is retained, never what
// is computed.
func (r Request) Fingerprint() string {
	return r.Spec.Fingerprint() + "|" + r.Machine.Fingerprint() + "|" + r.Config.Fingerprint()
}

// MetricsVersion is the schema version of the serialized Metrics
// layout. Bump it whenever a field is added, removed, or changes
// meaning: persistent stores echo the version in every entry and treat
// a mismatch as a miss, so stale on-disk entries are recomputed rather
// than misread.
const MetricsVersion = 1

// Metrics is the normalized, serializable outcome every backend
// reports: the numbers Table 1 and the CLI compare across techniques.
// It is a plain comparable value — no pointers, no graphs — so caches
// copy it freely and persistent stores serialize it as-is.
type Metrics struct {
	// Technique is the registry name of the backend that produced the
	// result.
	Technique string `json:"technique"`
	// Loop is the scheduled loop's name.
	Loop string `json:"loop"`
	// CyclesPerIter is the steady-state cost of one source iteration.
	CyclesPerIter float64 `json:"cycles_per_iter"`
	// Speedup is sequential ops per iteration divided by CyclesPerIter —
	// the paper's Table 1 metric.
	Speedup float64 `json:"speedup"`
	// Converged reports whether the technique reached its steady state
	// (pattern convergence for the pipelining techniques; trivially true
	// for single-iteration schedulers).
	Converged bool `json:"converged"`
	// KernelRows and KernelIterSpan describe the steady-state kernel:
	// its row count and how many source iterations one period spans.
	// Zero when no kernel formed.
	KernelRows     int `json:"kernel_rows,omitempty"`
	KernelIterSpan int `json:"kernel_iter_span,omitempty"`
	// Rows is the full schedule length in instructions.
	Rows int `json:"rows,omitempty"`
	// Barriers counts resource-barrier events during scheduling (GRiP's
	// integrated-constraint cost metric; zero for other techniques).
	Barriers int `json:"barriers,omitempty"`
}

// Result is a backend's answer to one request: the normalized metrics,
// plus an optional raw attachment — the technique's native result
// (*pipeline.Result, *modulo.Result, *listsched.Result) — for the few
// consumers (validation, figure rendering) that need more than the
// normalized view. Backends attach the raw result only when the
// request asked for it (Request.Want), so metrics-only runs never pin
// megabyte scheduled graphs in caches.
type Result struct {
	Metrics
	// raw is deliberately unexported: results are shared through caches,
	// and the attachment aliases the backend's internal graphs. Access
	// goes through Raw (shared, read-only) or CloneRaw (private copy).
	raw any
}

// NewResult assembles a result from its two tiers. A nil raw means the
// result carries metrics only.
func NewResult(m Metrics, raw any) *Result {
	return &Result{Metrics: m, raw: raw}
}

// Raw returns the technique's native result, or nil when the request
// did not ask for one (WantMetrics) or the result came from a
// metrics-only store tier. The attachment is SHARED: caches hand the
// same pointer to every caller, so treat it as strictly read-only —
// mutating consumers (simulation setup, validation) must use CloneRaw.
func (r *Result) Raw() any { return r.raw }

// RawCloner is implemented by raw attachments that support deep
// copying; CloneRaw uses it to hand callers a private mutable copy.
type RawCloner interface {
	// CloneRaw returns a deep copy sharing no mutable state with the
	// receiver.
	CloneRaw() any
}

// CloneRaw returns a private deep copy of the raw attachment for
// consumers that need to mutate it (simulation allocates array IDs on
// the result's allocator, for example). It returns nil when there is
// no attachment, and falls back to the shared pointer for attachment
// types that do not implement RawCloner — those (modulo, listsched)
// are plain value records with no interior mutability.
func (r *Result) CloneRaw() any {
	if r.raw == nil {
		return nil
	}
	if c, ok := r.raw.(RawCloner); ok {
		return c.CloneRaw()
	}
	return r.raw
}

// Scheduler is one scheduling technique: it maps a request (loop,
// machine, configuration) to a normalized result. Implementations must
// be safe for concurrent use — the batch engine calls Schedule from
// many goroutines — and must observe ctx in their step loops: a
// cancelled or expired context stops the computation and returns its
// error (wrapped so errors.Is recognizes it). That cooperation is what
// makes per-job timeouts terminate work instead of leaking goroutines.
type Scheduler interface {
	// Name returns the registry name ("grip", "post", ...).
	Name() string
	// Schedule runs the technique for the request under ctx.
	Schedule(ctx context.Context, req Request) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scheduler{}
)

// Register adds a backend under its name. It panics on a duplicate
// name: backends are registered from init functions, and a collision is
// a programming error.
func Register(s Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate scheduler %q", name))
	}
	registry[name] = s
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Scheduler, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registered backends in name order.
func All() []Scheduler {
	var ss []Scheduler
	for _, n := range Names() {
		s, _ := Lookup(n)
		ss = append(ss, s)
	}
	return ss
}

// Schedule runs the named backend for the request, returning an error
// for unknown names.
func Schedule(ctx context.Context, name string, req Request) (*Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return s.Schedule(ctx, req)
}
