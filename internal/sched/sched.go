// Package sched defines the uniform backend interface every scheduling
// technique in this repository implements, a process-wide registry the
// facade and commands drive, and the normalized result all techniques
// report. Adding a technique is one Register call; everything above —
// the batch engine, Table 1, the CLI flags — picks it up by name.
//
// Layering (bottom-up): core/ps/graph implement the transformations,
// the technique packages (pipeline, post, modulo, listsched) implement
// whole techniques, this package adapts them behind one interface, and
// sched/batch executes jobs against the registry concurrently.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Result is the normalized outcome every backend reports, carrying the
// metrics Table 1 and the CLI compare across techniques.
type Result struct {
	// Technique is the registry name of the backend that produced the
	// result.
	Technique string
	// Loop is the scheduled loop's name.
	Loop string
	// CyclesPerIter is the steady-state cost of one source iteration.
	CyclesPerIter float64
	// Speedup is sequential ops per iteration divided by CyclesPerIter —
	// the paper's Table 1 metric.
	Speedup float64
	// Converged reports whether the technique reached its steady state
	// (pattern convergence for the pipelining techniques; trivially true
	// for single-iteration schedulers).
	Converged bool
	// KernelRows and KernelIterSpan describe the steady-state kernel:
	// its row count and how many source iterations one period spans.
	// Zero when no kernel formed.
	KernelRows     int
	KernelIterSpan int
	// Rows is the full schedule length in instructions.
	Rows int
	// Barriers counts resource-barrier events during scheduling (GRiP's
	// integrated-constraint cost metric; zero for other techniques).
	Barriers int
	// Raw is the technique's native result (*pipeline.Result,
	// *modulo.Result, *listsched.Result) for consumers needing more than
	// the normalized view. Treat it as read-only: results may be shared
	// through caches.
	Raw any
}

// Scheduler is one scheduling technique: it maps a loop and a machine
// model to a normalized result. Implementations must be safe for
// concurrent use — the batch engine calls Schedule from many goroutines.
type Scheduler interface {
	// Name returns the registry name ("grip", "post", ...).
	Name() string
	// Schedule runs the technique for spec on m.
	Schedule(spec *ir.LoopSpec, m machine.Machine) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scheduler{}
)

// Register adds a backend under its name. It panics on a duplicate
// name: backends are registered from init functions, and a collision is
// a programming error.
func Register(s Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate scheduler %q", name))
	}
	registry[name] = s
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Scheduler, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registered backends in name order.
func All() []Scheduler {
	var ss []Scheduler
	for _, n := range Names() {
		s, _ := Lookup(n)
		ss = append(ss, s)
	}
	return ss
}

// Schedule runs the named backend for spec on m, returning an error for
// unknown names.
func Schedule(name string, spec *ir.LoopSpec, m machine.Machine) (*Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return s.Schedule(spec, m)
}
