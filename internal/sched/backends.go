package sched

import (
	"context"

	"repro/internal/listsched"
	"repro/internal/lru"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
)

// phase1MemoCap bounds the POST phase-1 memo. Keep it comfortably
// above the workload corpus (14 Livermore kernels today, times the
// handful of configurations a sweep touches) so a full table run never
// evicts mid-batch and silently recomputes the work the memo exists to
// dedupe.
const phase1MemoCap = 64

// The four paper techniques register themselves under the names the CLI
// has always used.
func init() {
	Register(gripScheduler{})
	Register(postScheduler{memo: newPhase1Memo(phase1MemoCap)})
	Register(moduloScheduler{})
	Register(listScheduler{})
}

// fromPipeline normalizes a pipeline result, attaching the raw result
// only when the request asked for it — a metrics-only result does not
// pin the unwound graph, so caches holding it stay tiny.
func fromPipeline(name string, res *pipeline.Result, want Want) *Result {
	m := Metrics{
		Technique:     name,
		Loop:          res.Spec.Name,
		CyclesPerIter: res.CyclesPerIter,
		Speedup:       res.Speedup,
		Converged:     res.Converged,
		Rows:          res.Rows,
		Barriers:      res.Stats.ResourceBarriers,
	}
	if res.Kernel != nil {
		m.KernelRows = res.Kernel.Rows
		m.KernelIterSpan = res.Kernel.IterSpan
	}
	return NewResult(m, attach(want, res))
}

// attach returns the raw value when the request wants it, nil
// otherwise.
func attach(want Want, raw any) any {
	if want == WantRaw {
		return raw
	}
	return nil
}

// gripScheduler is the paper's technique: Perfect Pipelining with
// resource constraints integrated into global scheduling.
type gripScheduler struct{}

func (gripScheduler) Name() string { return "grip" }

func (gripScheduler) Schedule(ctx context.Context, req Request) (*Result, error) {
	res, err := pipeline.PerfectPipeline(ctx, req.Spec, req.Config.Pipeline(req.Machine))
	if err != nil {
		return nil, err
	}
	return fromPipeline("grip", res, req.Want), nil
}

// postScheduler is the POST baseline. Its first phase — Perfect
// Pipelining at infinite resources — does not depend on the target
// machine's functional-unit count, so the adapter memoizes phase-1
// results per (loop, phase-1 configuration) and hands each post-pass a
// deep copy. Cloning preserves IDs and allocator state, so the
// post-pass on a copy is bit-identical to a from-scratch run
// (batch_test proves it). The memo key carries the full phase-1 config
// fingerprint: requests differing in, say, unwind factor must not share
// phase-1 schedules.
type postScheduler struct {
	memo *phase1Memo
}

func (postScheduler) Name() string { return "post" }

func (s postScheduler) Schedule(ctx context.Context, req Request) (*Result, error) {
	cfg := req.Config.Pipeline(req.Machine)
	p1cfg := post.Phase1Config(cfg)
	key := req.Spec.Fingerprint() + "|" + p1cfg.Fingerprint()
	phase1, err := s.memo.get(key, func() (*pipeline.Result, error) {
		return pipeline.PerfectPipeline(ctx, req.Spec, p1cfg)
	})
	if err != nil {
		return nil, err
	}
	res, err := post.From(ctx, phase1.Clone(), cfg)
	if err != nil {
		return nil, err
	}
	return fromPipeline("post", res, req.Want), nil
}

// moduloScheduler is the iterative modulo-scheduling baseline. The
// pipelining knobs in req.Config do not apply to it.
type moduloScheduler struct{}

func (moduloScheduler) Name() string { return "modulo" }

func (moduloScheduler) Schedule(ctx context.Context, req Request) (*Result, error) {
	res, err := modulo.Schedule(ctx, req.Spec, req.Machine)
	if err != nil {
		return nil, err
	}
	return NewResult(Metrics{
		Technique:      "modulo",
		Loop:           req.Spec.Name,
		CyclesPerIter:  float64(res.II),
		Speedup:        res.Speedup,
		Converged:      true,
		KernelRows:     res.II,
		KernelIterSpan: 1,
		Rows:           res.Makespan,
	}, attach(req.Want, res)), nil
}

// listScheduler is plain greedy compaction of one iteration. The
// pipelining knobs in req.Config do not apply to it; the single pass is
// fast enough that only an already-expired context is worth honoring.
type listScheduler struct{}

func (listScheduler) Name() string { return "list" }

func (listScheduler) Schedule(ctx context.Context, req Request) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := listsched.Schedule(req.Spec, req.Machine)
	return NewResult(Metrics{
		Technique:      "list",
		Loop:           req.Spec.Name,
		CyclesPerIter:  float64(res.Cycles),
		Speedup:        res.Speedup,
		Converged:      true,
		KernelRows:     res.Cycles,
		KernelIterSpan: 1,
		Rows:           res.Cycles,
	}, attach(req.Want, res)), nil
}

// phase1Memo is a small LRU of immutable phase-1 pipeline results.
// Entries are only ever read (and cloned); concurrent getters of a
// missing key may compute it twice, which is wasteful but correct —
// scheduling is deterministic, so both computations agree, and the
// first stored entry wins for stable sharing. A compute cancelled by
// its context returns the context's error and stores nothing, so a
// timed-out request never poisons the memo for later ones.
type phase1Memo struct {
	lru *lru.Cache[string, *pipeline.Result]
}

func newPhase1Memo(capacity int) *phase1Memo {
	return &phase1Memo{lru: lru.New[string, *pipeline.Result](capacity)}
}

func (m *phase1Memo) get(key string, compute func() (*pipeline.Result, error)) (*pipeline.Result, error) {
	if res, ok := m.lru.Get(key); ok {
		return res, nil
	}
	res, err := compute()
	if err != nil {
		return nil, err
	}
	return m.lru.GetOrPut(key, res), nil
}
