package sched

import (
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/lru"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
)

// phase1MemoCap bounds the POST phase-1 memo. Keep it comfortably
// above the workload corpus (14 Livermore kernels today) so a full
// table run never evicts mid-batch and silently recomputes the work
// the memo exists to dedupe.
const phase1MemoCap = 64

// The four paper techniques register themselves under the names the CLI
// has always used.
func init() {
	Register(gripScheduler{})
	Register(postScheduler{memo: newPhase1Memo(phase1MemoCap)})
	Register(moduloScheduler{})
	Register(listScheduler{})
}

func fromPipeline(name string, res *pipeline.Result) *Result {
	out := &Result{
		Technique:     name,
		Loop:          res.Spec.Name,
		CyclesPerIter: res.CyclesPerIter,
		Speedup:       res.Speedup,
		Converged:     res.Converged,
		Rows:          res.Rows,
		Barriers:      res.Stats.ResourceBarriers,
		Raw:           res,
	}
	if res.Kernel != nil {
		out.KernelRows = res.Kernel.Rows
		out.KernelIterSpan = res.Kernel.IterSpan
	}
	return out
}

// gripScheduler is the paper's technique: Perfect Pipelining with
// resource constraints integrated into global scheduling.
type gripScheduler struct{}

func (gripScheduler) Name() string { return "grip" }

func (gripScheduler) Schedule(spec *ir.LoopSpec, m machine.Machine) (*Result, error) {
	res, err := pipeline.PerfectPipeline(spec, pipeline.DefaultConfig(m))
	if err != nil {
		return nil, err
	}
	return fromPipeline("grip", res), nil
}

// postScheduler is the POST baseline. Its first phase — Perfect
// Pipelining at infinite resources — does not depend on the target
// machine's functional-unit count, so the adapter memoizes phase-1
// results per loop and hands each post-pass a deep copy. Cloning
// preserves IDs and allocator state, so the post-pass on a copy is
// bit-identical to a from-scratch run (batch_test proves it).
type postScheduler struct {
	memo *phase1Memo
}

func (postScheduler) Name() string { return "post" }

func (s postScheduler) Schedule(spec *ir.LoopSpec, m machine.Machine) (*Result, error) {
	cfg := pipeline.DefaultConfig(m)
	p1cfg := post.Phase1Config(cfg)
	key := spec.Fingerprint() + "|" + p1cfg.Machine.Fingerprint()
	phase1, err := s.memo.get(key, func() (*pipeline.Result, error) {
		return pipeline.PerfectPipeline(spec, p1cfg)
	})
	if err != nil {
		return nil, err
	}
	res, err := post.From(phase1.Clone(), cfg)
	if err != nil {
		return nil, err
	}
	return fromPipeline("post", res), nil
}

// moduloScheduler is the iterative modulo-scheduling baseline.
type moduloScheduler struct{}

func (moduloScheduler) Name() string { return "modulo" }

func (moduloScheduler) Schedule(spec *ir.LoopSpec, m machine.Machine) (*Result, error) {
	res, err := modulo.Schedule(spec, m)
	if err != nil {
		return nil, err
	}
	return &Result{
		Technique:      "modulo",
		Loop:           spec.Name,
		CyclesPerIter:  float64(res.II),
		Speedup:        res.Speedup,
		Converged:      true,
		KernelRows:     res.II,
		KernelIterSpan: 1,
		Rows:           res.Makespan,
		Raw:            res,
	}, nil
}

// listScheduler is plain greedy compaction of one iteration.
type listScheduler struct{}

func (listScheduler) Name() string { return "list" }

func (listScheduler) Schedule(spec *ir.LoopSpec, m machine.Machine) (*Result, error) {
	res := listsched.Schedule(spec, m)
	return &Result{
		Technique:      "list",
		Loop:           spec.Name,
		CyclesPerIter:  float64(res.Cycles),
		Speedup:        res.Speedup,
		Converged:      true,
		KernelRows:     res.Cycles,
		KernelIterSpan: 1,
		Rows:           res.Cycles,
		Raw:            res,
	}, nil
}

// phase1Memo is a small LRU of immutable phase-1 pipeline results.
// Entries are only ever read (and cloned); concurrent getters of a
// missing key may compute it twice, which is wasteful but correct —
// scheduling is deterministic, so both computations agree, and the
// first stored entry wins for stable sharing.
type phase1Memo struct {
	lru *lru.Cache[string, *pipeline.Result]
}

func newPhase1Memo(capacity int) *phase1Memo {
	return &phase1Memo{lru: lru.New[string, *pipeline.Result](capacity)}
}

func (m *phase1Memo) get(key string, compute func() (*pipeline.Result, error)) (*pipeline.Result, error) {
	if res, ok := m.lru.Get(key); ok {
		return res, nil
	}
	res, err := compute()
	if err != nil {
		return nil, err
	}
	return m.lru.GetOrPut(key, res), nil
}
