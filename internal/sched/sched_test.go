package sched_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
	"repro/internal/sched"
)

func dotLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "dot",
		Body: []ir.BodyOp{
			ir.BLoad("t1", ir.Aff("Z", 1, 0)),
			ir.BLoad("t2", ir.Aff("X", 1, 0)),
			ir.BMul("t3", "t1", "t2"),
			ir.BAdd("q", "q", "t3"),
		},
		Step: 1, TripVar: "n",
		LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func req(spec *ir.LoopSpec, m machine.Machine) sched.Request {
	return sched.Request{Spec: spec, Machine: m}
}

func TestRegistryHasAllTechniques(t *testing.T) {
	for _, name := range []string{"grip", "post", "modulo", "list"} {
		s, ok := sched.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) = not found", name)
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
	}
	names := sched.Names()
	if len(names) < 4 {
		t.Errorf("Names() = %v, want at least the four techniques", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if len(sched.All()) != len(names) {
		t.Errorf("All() returned %d backends for %d names", len(sched.All()), len(names))
	}
}

func TestScheduleUnknownTechnique(t *testing.T) {
	if _, err := sched.Schedule(context.Background(), "no-such-scheduler", req(dotLoop(), machine.New(4))); err == nil {
		t.Fatal("Schedule with unknown name succeeded")
	}
	if _, ok := sched.Lookup("no-such-scheduler"); ok {
		t.Fatal("Lookup invented a scheduler")
	}
}

// TestBackendsMatchDirectCalls proves the adapters are transparent: the
// normalized result of every backend equals the corresponding direct
// technique call, including POST, whose adapter reuses a memoized
// phase-1 schedule through a deep clone.
func TestBackendsMatchDirectCalls(t *testing.T) {
	ctx := context.Background()
	spec := dotLoop()
	for _, fus := range []int{2, 4} {
		m := machine.New(fus)
		cfg := pipeline.DefaultConfig(m)

		g, err := sched.Schedule(ctx, "grip", req(spec, m))
		if err != nil {
			t.Fatalf("grip @%dFU: %v", fus, err)
		}
		gd, err := pipeline.PerfectPipeline(ctx, spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.Speedup != gd.Speedup || g.CyclesPerIter != gd.CyclesPerIter ||
			g.Converged != gd.Converged || g.Rows != gd.Rows ||
			g.Barriers != gd.Stats.ResourceBarriers {
			t.Errorf("grip @%dFU: adapter %+v != direct speedup=%v cpi=%v conv=%v rows=%d",
				fus, g, gd.Speedup, gd.CyclesPerIter, gd.Converged, gd.Rows)
		}
		if g.Technique != "grip" || g.Loop != spec.Name {
			t.Errorf("grip labels: %q %q", g.Technique, g.Loop)
		}

		// Run post twice so both the memo-miss and memo-hit paths are
		// compared against the direct pipeline.
		for pass := 0; pass < 2; pass++ {
			p, err := sched.Schedule(ctx, "post", req(spec, m))
			if err != nil {
				t.Fatalf("post @%dFU: %v", fus, err)
			}
			pd, err := post.Pipeline(ctx, spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if p.Speedup != pd.Speedup || p.CyclesPerIter != pd.CyclesPerIter ||
				p.Converged != pd.Converged || p.Rows != pd.Rows {
				t.Errorf("post @%dFU pass %d: adapter speedup=%v cpi=%v conv=%v rows=%d != direct %v %v %v %d",
					fus, pass, p.Speedup, p.CyclesPerIter, p.Converged, p.Rows,
					pd.Speedup, pd.CyclesPerIter, pd.Converged, pd.Rows)
			}
		}

		mo, err := sched.Schedule(ctx, "modulo", req(spec, m))
		if err != nil {
			t.Fatal(err)
		}
		md, err := modulo.Schedule(ctx, spec, m)
		if err != nil {
			t.Fatal(err)
		}
		if mo.Speedup != md.Speedup || mo.CyclesPerIter != float64(md.II) || !mo.Converged {
			t.Errorf("modulo @%dFU: %+v != II=%d speedup=%v", fus, mo, md.II, md.Speedup)
		}

		ls, err := sched.Schedule(ctx, "list", req(spec, m))
		if err != nil {
			t.Fatal(err)
		}
		ld := listsched.Schedule(spec, m)
		if ls.Speedup != ld.Speedup || ls.CyclesPerIter != float64(ld.Cycles) {
			t.Errorf("list @%dFU: %+v != cycles=%d speedup=%v", fus, ls, ld.Cycles, ld.Speedup)
		}
	}
}

// TestResultRawTypes checks each backend attaches its native result
// when (and only when) the request asks for it.
func TestResultRawTypes(t *testing.T) {
	spec := dotLoop()
	m := machine.New(4)
	for name, want := range map[string]func(any) bool{
		"grip":   func(r any) bool { _, ok := r.(*pipeline.Result); return ok },
		"post":   func(r any) bool { _, ok := r.(*pipeline.Result); return ok },
		"modulo": func(r any) bool { _, ok := r.(*modulo.Result); return ok },
		"list":   func(r any) bool { _, ok := r.(*listsched.Result); return ok },
	} {
		r := req(spec, m)
		r.Want = sched.WantRaw
		res, err := sched.Schedule(context.Background(), name, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !want(res.Raw()) {
			t.Errorf("%s: Raw has unexpected type %T", name, res.Raw())
		}
		// The default (WantMetrics) must not retain the raw graph.
		lean, err := sched.Schedule(context.Background(), name, req(spec, m))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lean.Raw() != nil {
			t.Errorf("%s: WantMetrics request retained a raw attachment %T", name, lean.Raw())
		}
		if lean.Metrics != res.Metrics {
			t.Errorf("%s: Want changed the metrics: %+v != %+v", name, lean.Metrics, res.Metrics)
		}
	}
}

// TestCloneRawAliasing pins the raw-attachment aliasing contract:
// Raw() hands back the shared attachment, CloneRaw() a private deep
// copy the caller may mutate.
func TestCloneRawAliasing(t *testing.T) {
	r := req(dotLoop(), machine.New(4))
	r.Want = sched.WantRaw
	res, err := sched.Schedule(context.Background(), "grip", r)
	if err != nil {
		t.Fatal(err)
	}
	shared := res.Raw().(*pipeline.Result)
	clone := res.CloneRaw().(*pipeline.Result)
	if clone == shared {
		t.Fatal("CloneRaw returned the shared attachment")
	}
	if res.Raw().(*pipeline.Result) != shared {
		t.Error("Raw is not stable across calls")
	}
	if clone.Unwound == shared.Unwound || clone.Unwound.G == shared.Unwound.G {
		t.Error("CloneRaw shares the unwound program/graph with the original")
	}
	if clone.Speedup != shared.Speedup || clone.Rows != shared.Rows {
		t.Errorf("clone diverges from original: %+v vs %+v", clone.Speedup, shared.Speedup)
	}
	// Metrics-only results clone to nil, not panic.
	lean := sched.NewResult(res.Metrics, nil)
	if lean.CloneRaw() != nil {
		t.Error("CloneRaw of a metrics-only result is non-nil")
	}
}

// TestConfigRespected proves a per-request Config reaches the pipeline:
// a fixed unwind factor must reproduce the direct call with the same
// factor and differ from the automatic ladder when the factors differ.
func TestConfigRespected(t *testing.T) {
	ctx := context.Background()
	spec := dotLoop()
	m := machine.New(2)
	r := req(spec, m)
	r.Config = sched.Config{Unwind: 8}
	r.Want = sched.WantRaw
	got, err := sched.Schedule(ctx, "grip", r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig(m)
	cfg.Unwind = 8
	want, err := pipeline.PerfectPipeline(ctx, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Speedup != want.Speedup || got.Converged != want.Converged {
		t.Errorf("configured adapter rows=%d speedup=%v != direct rows=%d speedup=%v",
			got.Rows, got.Speedup, want.Rows, want.Speedup)
	}
	if got.Raw().(*pipeline.Result).U != 8 {
		t.Errorf("unwind override ignored: U = %d, want 8", got.Raw().(*pipeline.Result).U)
	}
}

// TestConfigFingerprint pins the canonical-key properties the cache
// relies on: zero value == explicit defaults, every knob discriminates,
// and the request fingerprint composes spec, machine and config.
func TestConfigFingerprint(t *testing.T) {
	zero := sched.Config{}
	explicit := sched.Config{MaxUnwind: pipeline.DefaultMaxUnwind, Periods: pipeline.DefaultPeriods}
	if zero.Fingerprint() != explicit.Fingerprint() {
		t.Errorf("zero config %q != explicitly defaulted config %q",
			zero.Fingerprint(), explicit.Fingerprint())
	}
	distinct := []sched.Config{
		zero,
		{Unwind: 8},
		{Unwind: 16},
		{MaxUnwind: 48},
		{NoOptimize: true},
		{NoGapPrevention: true},
		{EmptyPrelude: 4},
		{Renaming: true},
		{Periods: 5},
	}
	seen := map[string]sched.Config{}
	for _, c := range distinct {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("configs %+v and %+v share fingerprint %q", prev, c, fp)
		}
		seen[fp] = c
	}

	r := sched.Request{Spec: dotLoop(), Machine: machine.New(2)}
	fp := r.Fingerprint()
	for _, part := range []string{r.Spec.Fingerprint(), r.Machine.Fingerprint(), r.Config.Fingerprint()} {
		if !strings.Contains(fp, part) {
			t.Errorf("request fingerprint %q missing component %q", fp, part)
		}
	}
	r2 := r
	r2.Config.Unwind = 24
	if r2.Fingerprint() == fp {
		t.Error("request fingerprint ignores the config")
	}

	// Want is retention advice, not experiment identity: it must not
	// perturb the fingerprint, or WantRaw validation runs would occupy
	// separate cache entries from the table cells they certify.
	r3 := r
	r3.Want = sched.WantRaw
	if r3.Fingerprint() != fp {
		t.Error("Want leaked into the request fingerprint")
	}
}

// TestBackendsHonorCancelledContext proves every backend returns its
// context's error instead of scheduling when cancelled up front.
func TestBackendsHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"grip", "post", "modulo", "list"} {
		_, err := sched.Schedule(ctx, name, req(dotLoop(), machine.New(4)))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}
