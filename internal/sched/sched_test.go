package sched_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
	"repro/internal/sched"
)

func dotLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "dot",
		Body: []ir.BodyOp{
			ir.BLoad("t1", ir.Aff("Z", 1, 0)),
			ir.BLoad("t2", ir.Aff("X", 1, 0)),
			ir.BMul("t3", "t1", "t2"),
			ir.BAdd("q", "q", "t3"),
		},
		Step: 1, TripVar: "n",
		LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func TestRegistryHasAllTechniques(t *testing.T) {
	for _, name := range []string{"grip", "post", "modulo", "list"} {
		s, ok := sched.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) = not found", name)
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
	}
	names := sched.Names()
	if len(names) < 4 {
		t.Errorf("Names() = %v, want at least the four techniques", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if len(sched.All()) != len(names) {
		t.Errorf("All() returned %d backends for %d names", len(sched.All()), len(names))
	}
}

func TestScheduleUnknownTechnique(t *testing.T) {
	if _, err := sched.Schedule("no-such-scheduler", dotLoop(), machine.New(4)); err == nil {
		t.Fatal("Schedule with unknown name succeeded")
	}
	if _, ok := sched.Lookup("no-such-scheduler"); ok {
		t.Fatal("Lookup invented a scheduler")
	}
}

// TestBackendsMatchDirectCalls proves the adapters are transparent: the
// normalized result of every backend equals the corresponding direct
// technique call, including POST, whose adapter reuses a memoized
// phase-1 schedule through a deep clone.
func TestBackendsMatchDirectCalls(t *testing.T) {
	spec := dotLoop()
	for _, fus := range []int{2, 4} {
		m := machine.New(fus)
		cfg := pipeline.DefaultConfig(m)

		g, err := sched.Schedule("grip", spec, m)
		if err != nil {
			t.Fatalf("grip @%dFU: %v", fus, err)
		}
		gd, err := pipeline.PerfectPipeline(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.Speedup != gd.Speedup || g.CyclesPerIter != gd.CyclesPerIter ||
			g.Converged != gd.Converged || g.Rows != gd.Rows ||
			g.Barriers != gd.Stats.ResourceBarriers {
			t.Errorf("grip @%dFU: adapter %+v != direct speedup=%v cpi=%v conv=%v rows=%d",
				fus, g, gd.Speedup, gd.CyclesPerIter, gd.Converged, gd.Rows)
		}
		if g.Technique != "grip" || g.Loop != spec.Name {
			t.Errorf("grip labels: %q %q", g.Technique, g.Loop)
		}

		// Run post twice so both the memo-miss and memo-hit paths are
		// compared against the direct pipeline.
		for pass := 0; pass < 2; pass++ {
			p, err := sched.Schedule("post", spec, m)
			if err != nil {
				t.Fatalf("post @%dFU: %v", fus, err)
			}
			pd, err := post.Pipeline(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if p.Speedup != pd.Speedup || p.CyclesPerIter != pd.CyclesPerIter ||
				p.Converged != pd.Converged || p.Rows != pd.Rows {
				t.Errorf("post @%dFU pass %d: adapter speedup=%v cpi=%v conv=%v rows=%d != direct %v %v %v %d",
					fus, pass, p.Speedup, p.CyclesPerIter, p.Converged, p.Rows,
					pd.Speedup, pd.CyclesPerIter, pd.Converged, pd.Rows)
			}
		}

		mo, err := sched.Schedule("modulo", spec, m)
		if err != nil {
			t.Fatal(err)
		}
		md, err := modulo.Schedule(spec, m)
		if err != nil {
			t.Fatal(err)
		}
		if mo.Speedup != md.Speedup || mo.CyclesPerIter != float64(md.II) || !mo.Converged {
			t.Errorf("modulo @%dFU: %+v != II=%d speedup=%v", fus, mo, md.II, md.Speedup)
		}

		ls, err := sched.Schedule("list", spec, m)
		if err != nil {
			t.Fatal(err)
		}
		ld := listsched.Schedule(spec, m)
		if ls.Speedup != ld.Speedup || ls.CyclesPerIter != float64(ld.Cycles) {
			t.Errorf("list @%dFU: %+v != cycles=%d speedup=%v", fus, ls, ld.Cycles, ld.Speedup)
		}
	}
}

// TestResultRawTypes checks each backend exposes its native result.
func TestResultRawTypes(t *testing.T) {
	spec := dotLoop()
	m := machine.New(4)
	for name, want := range map[string]func(any) bool{
		"grip":   func(r any) bool { _, ok := r.(*pipeline.Result); return ok },
		"post":   func(r any) bool { _, ok := r.(*pipeline.Result); return ok },
		"modulo": func(r any) bool { _, ok := r.(*modulo.Result); return ok },
		"list":   func(r any) bool { _, ok := r.(*listsched.Result); return ok },
	} {
		res, err := sched.Schedule(name, spec, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !want(res.Raw) {
			t.Errorf("%s: Raw has unexpected type %T", name, res.Raw)
		}
	}
}
