package store_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/sched/store"
)

func metrics(i int) sched.Metrics {
	return sched.Metrics{
		Technique:     "grip",
		Loop:          fmt.Sprintf("LL%d", i),
		CyclesPerIter: 1.25 * float64(i+1),
		Speedup:       3.2,
		Converged:     true,
		KernelRows:    5,
		Rows:          40 + i,
		Barriers:      i,
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "grip|loop-fp|machine-fp|cfg-fp"
	if _, ok := d.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	want := metrics(3)
	d.Put(key, want)
	got, ok := d.Get(key)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if got != want {
		t.Errorf("round trip drifted: %+v != %+v", got, want)
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 entry / >0 bytes", st)
	}
	if st.WriteErrors != 0 || st.Rejected != 0 {
		t.Errorf("clean store reports failures: %+v", st)
	}
}

// entryPath finds the single entry file a one-Put store holds.
func entryPath(t *testing.T, dir string) string {
	t.Helper()
	var found string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".json") {
			found = path
		}
		return nil
	})
	if found == "" {
		t.Fatal("no entry file on disk")
	}
	return found
}

// TestDiskUntrustedEntriesFallThrough proves every way an entry can go
// bad reads as a miss — recompute, never an error and never someone
// else's metrics.
func TestDiskUntrustedEntriesFallThrough(t *testing.T) {
	key := "grip|k|m|c"
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"schema-mismatch", func(t *testing.T, path string) {
			rewriteEntry(t, path, func(e map[string]any) {
				e["schema"] = sched.MetricsVersion + 1
			})
		}},
		{"fingerprint-mismatch", func(t *testing.T, path string) {
			rewriteEntry(t, path, func(e map[string]any) {
				e["key"] = "grip|OTHER|m|c"
			})
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d, err := store.OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			d.Put(key, metrics(1))
			tc.corrupt(t, entryPath(t, d.Dir()))
			if got, ok := d.Get(key); ok {
				t.Fatalf("untrusted entry served: %+v", got)
			}
			st := d.Stats()
			if st.Rejected != 1 {
				t.Errorf("rejected = %d, want 1", st.Rejected)
			}
			// The slot heals on the next Put.
			d.Put(key, metrics(2))
			if got, ok := d.Get(key); !ok || got != metrics(2) {
				t.Errorf("store did not recover after rewrite: %+v %v", got, ok)
			}
		})
	}
}

func rewriteEntry(t *testing.T, path string, mutate func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]any
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	mutate(e)
	out, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskConcurrentStoresShareDirectory runs two Disk values over one
// directory from many goroutines — the cross-process sharing the store
// exists for, compressed into one process. Every read must be either a
// miss or a fully consistent entry; the atomic-rename discipline is
// what rules out torn reads.
func TestDiskConcurrentStoresShareDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	var wg sync.WaitGroup
	for w, s := range []*store.Disk{a, b, a, b} {
		wg.Add(1)
		go func(w int, s *store.Disk) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for i := 0; i < keys; i++ {
					key := fmt.Sprintf("k%d", i)
					if got, ok := s.Get(key); ok && got != metrics(i) {
						t.Errorf("worker %d read inconsistent entry for %s: %+v", w, key, got)
						return
					}
					s.Put(key, metrics(i))
				}
			}
		}(w, s)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		gotA, okA := a.Get(key)
		gotB, okB := b.Get(key)
		if !okA || !okB || gotA != metrics(i) || gotB != gotA {
			t.Errorf("stores disagree on %s: %+v/%v vs %+v/%v", key, gotA, okA, gotB, okB)
		}
	}
	if st := a.Stats(); st.Entries != keys {
		t.Errorf("entries = %d, want %d", st.Entries, keys)
	}
	// No temp files may survive the churn: every write either renamed
	// into place or cleaned up after itself.
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}

func TestDiskClear(t *testing.T) {
	d, err := store.OpenDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Put(fmt.Sprintf("k%d", i), metrics(i))
	}
	if st := d.Stats(); st.Entries != 5 {
		t.Fatalf("entries = %d, want 5", st.Entries)
	}
	if err := d.Clear(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("clear left %d entries / %d bytes", st.Entries, st.Bytes)
	}
	if _, ok := d.Get("k0"); ok {
		t.Error("cleared store served an entry")
	}
	// The store stays usable after Clear.
	d.Put("k0", metrics(0))
	if _, ok := d.Get("k0"); !ok {
		t.Error("store unusable after Clear")
	}
}

func TestMemoryTiers(t *testing.T) {
	m := store.NewMemory(128, 2)
	m.Put("a", metrics(1))
	if got, ok := m.Get("a"); !ok || got != metrics(1) {
		t.Fatalf("memory round trip: %+v %v", got, ok)
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("phantom hit")
	}
	if st := m.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}

	// The raw tier is capped independently of the metrics tier.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("r%d", i)
		m.Put(key, metrics(i))
		m.PutRaw(key, &struct{ big [16]int }{})
	}
	if m.Len() != 6 {
		t.Errorf("metrics tier holds %d entries, want all 6", m.Len())
	}
	if m.RawLen() != 2 {
		t.Errorf("raw tier holds %d entries, want the cap (2)", m.RawLen())
	}
	if _, ok := m.GetRaw("r0"); ok {
		t.Error("raw tier retained an entry beyond its cap")
	}
	if _, ok := m.GetRaw("r4"); !ok {
		t.Error("raw tier lost the most recent entry")
	}
	if _, ok := m.Get("r0"); !ok {
		t.Error("metrics tier lost an entry because the raw tier evicted")
	}
}
