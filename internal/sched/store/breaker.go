package store

import (
	"sync"
	"time"
)

// breakerState is the circuit's position.
type breakerState int

const (
	// brClosed: healthy — every operation flows to disk.
	brClosed breakerState = iota
	// brOpen: tripped — the tier is degraded to memory-only; reads and
	// writes are skipped until the cooldown elapses.
	brOpen
	// brHalfOpen: cooldown elapsed — one probe operation at a time is
	// allowed through; success closes the circuit, failure reopens it
	// and restarts the cooldown.
	brHalfOpen
)

// breaker is the disk tier's circuit breaker. The failure signal is any
// real I/O error (a write that exhausted its retries, or a read error
// that is not a plain miss); the success signal is any fully completed
// disk operation (a persisted Put, a verified read hit). Plain misses
// and rejected-content entries are neutral: they indicate absent or
// untrusted data, not a sick device, and must not flap the circuit.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip closed → open
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allowWrite reports whether a write may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed and admits the
// caller as the single probe; concurrent callers are shed until the
// probe settles.
func (b *breaker) allowWrite() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = brHalfOpen
		b.probing = true
		return true
	case brHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// allowRead reports whether a read may consult the disk. Reads are shed
// only while the circuit is open inside its cooldown; in half-open they
// flow freely (a verified hit doubles as a successful probe) — reads
// never consume the single write-probe slot.
func (b *breaker) allowRead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = brHalfOpen
	}
	return true
}

// success records a fully completed disk operation: the consecutive
// failure run ends and a half-open circuit closes.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.consecutive = 0
	b.state = brClosed
}

// failure records a real I/O failure: half-open reopens immediately
// (the probe failed), closed opens once the consecutive run reaches the
// threshold, and an already-open circuit restarts its cooldown.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.consecutive++
	if b.state == brHalfOpen || b.state == brOpen || b.consecutive >= b.threshold {
		if b.state != brOpen {
			b.trips++
		}
		b.state = brOpen
		b.openedAt = b.now()
	}
}

// snapshot returns the state name and trip count for Stats.
func (b *breaker) snapshot() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brOpen:
		return "open", b.trips
	case brHalfOpen:
		return "half-open", b.trips
	default:
		return "closed", b.trips
	}
}
