// Package store implements the two-tier result store behind the batch
// cache: a metrics tier keyed by the canonical job fingerprint that is
// cheap enough to retain every result ever computed, and a separate,
// tightly capped raw tier for the heavyweight native scheduling
// results (unwound graphs run to megabytes) that only validation and
// figure paths request.
//
// Two Store implementations exist: Memory (the in-process LRU the
// batch engine has always used) and Disk (one file per fingerprint
// under a content-addressed directory, so table and bench runs are
// incremental across processes). The batch cache composes them
// read-through/write-through: memory, then disk, then compute.
package store

import (
	"repro/internal/lru"
	"repro/internal/sched"
	"sync/atomic"
)

// Store persists normalized scheduling metrics keyed by the canonical
// job fingerprint. Implementations must be safe for concurrent use.
// Get never fails loudly: an entry that cannot be trusted (corrupt,
// stale schema, mismatched fingerprint) is reported as a miss and the
// caller recomputes.
type Store interface {
	// Get returns the metrics stored under key.
	Get(key string) (sched.Metrics, bool)
	// Put stores metrics under key. Best-effort for persistent tiers:
	// a failed write is recorded in Stats, never surfaced — the store
	// is a cache, losing a write only costs a future recompute.
	Put(key string, m sched.Metrics)
	// Stats reports the store's counters since creation.
	Stats() Stats
}

// Stats are a store's observability counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses uint64
	// Rejected counts entries found but not trusted — truncated or
	// corrupt files, schema-version mismatches, fingerprint mismatches.
	// Each rejection also counts as a miss.
	Rejected uint64
	// WriteErrors counts Puts that failed to persist after their
	// bounded retries.
	WriteErrors uint64
	// ReadErrors counts Gets that failed with a real I/O error (a plain
	// not-exist miss is not an error).
	ReadErrors uint64
	// Retries counts write attempts re-issued after transient failures.
	Retries uint64
	// Degraded counts operations shed because the circuit breaker had
	// tripped the tier into memory-only mode.
	Degraded uint64
	// Breaker names the tier's circuit state ("closed", "open",
	// "half-open"); empty for tiers without a breaker (Memory).
	Breaker string
	// BreakerTrips counts transitions into the open state.
	BreakerTrips uint64
	// Entries and Bytes describe the store's current contents (metrics
	// tier only; for Memory, Bytes is zero — entries are in-heap).
	Entries int
	Bytes   int64
}

// DefaultRawCapacity is the raw-tier cap a Memory store uses when the
// caller does not choose one: a handful, because each entry pins a
// full unwound scheduled graph.
const DefaultRawCapacity = 8

// Memory is the in-process implementation: a metrics LRU sized to
// retain the whole working set, plus the capped raw tier. Metrics are
// stored by value, so a Get hands back a private copy and no aliasing
// is possible; raw attachments are shared pointers guarded by the
// sched.Result accessor contract.
type Memory struct {
	metrics *lru.Cache[string, sched.Metrics]
	raws    *lru.Cache[string, any]

	hits, misses atomic.Uint64
}

// NewMemory returns a memory store holding up to capacity metrics
// entries and rawCapacity raw attachments (<= 0 means
// DefaultRawCapacity).
func NewMemory(capacity, rawCapacity int) *Memory {
	if rawCapacity <= 0 {
		rawCapacity = DefaultRawCapacity
	}
	return &Memory{
		metrics: lru.New[string, sched.Metrics](capacity),
		raws:    lru.New[string, any](rawCapacity),
	}
}

// Get returns the metrics under key, marking them most recently used.
func (s *Memory) Get(key string) (sched.Metrics, bool) {
	m, ok := s.metrics.Get(key)
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return m, ok
}

// Put stores metrics under key.
func (s *Memory) Put(key string, m sched.Metrics) { s.metrics.Put(key, m) }

// GetRaw returns the raw attachment under key. The returned value is
// shared — see (*sched.Result).Raw for the read-only contract.
func (s *Memory) GetRaw(key string) (any, bool) { return s.raws.Get(key) }

// PutRaw stores a raw attachment under key, evicting the least
// recently used attachment beyond the raw-tier cap.
func (s *Memory) PutRaw(key string, raw any) { s.raws.Put(key, raw) }

// Len returns the number of metrics entries.
func (s *Memory) Len() int { return s.metrics.Len() }

// RawLen returns the number of raw-tier entries.
func (s *Memory) RawLen() int { return s.raws.Len() }

// Stats reports hit/miss counters and the current entry count.
func (s *Memory) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Entries: s.metrics.Len(),
	}
}
