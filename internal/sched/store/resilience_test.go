package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sched/store"
	"repro/internal/testutil"
)

// fastDisk opens a store with test-speed retry/breaker settings.
func fastDisk(t *testing.T, dir string, opts store.DiskOptions) *store.Disk {
	t.Helper()
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	d, err := store.OpenDiskOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPutRetriesTransientFault: one injected transient write error is
// absorbed by the retry loop — the entry lands, nothing counts as a
// write failure, and the breaker never moves.
func TestPutRetriesTransientFault(t *testing.T) {
	testutil.LeakCheck(t)
	d := fastDisk(t, t.TempDir(), store.DiskOptions{Retries: 2})
	faults.Enable(faults.NewPlan(1, faults.Rule{
		Site: faults.DiskWrite, Nth: 1, Err: errors.New("injected transient io")}))
	t.Cleanup(faults.Disable)

	d.Put("k", metrics(1))
	if _, ok := d.Get("k"); !ok {
		t.Fatal("entry missing after a retried write")
	}
	st := d.Stats()
	if st.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", st.Retries)
	}
	if st.WriteErrors != 0 {
		t.Errorf("WriteErrors = %d after a recovered write", st.WriteErrors)
	}
	if st.Breaker != "closed" || st.BreakerTrips != 0 {
		t.Errorf("breaker %q/%d trips after a recovered write", st.Breaker, st.BreakerTrips)
	}
}

// TestBreakerTripsDegradesAndRecovers walks the full state machine:
// consecutive ENOSPC-style failures (not retried — retrying cannot
// help) trip the circuit, traffic is shed into degraded memory-only
// mode, a failing half-open probe reopens it, and once the device
// heals a probe closes it again.
func TestBreakerTripsDegradesAndRecovers(t *testing.T) {
	testutil.LeakCheck(t)
	const cooldown = 30 * time.Millisecond
	d := fastDisk(t, t.TempDir(), store.DiskOptions{
		Retries: -1, BreakerThreshold: 2, BreakerCooldown: cooldown})
	// Every write fails with ENOSPC until the third fire; then healthy.
	faults.Enable(faults.NewPlan(1, faults.Rule{
		Site: faults.DiskWrite, Every: 1, Limit: 3, Err: syscall.ENOSPC}))
	t.Cleanup(faults.Disable)

	d.Put("k1", metrics(1)) // failure 1 of 2
	d.Put("k2", metrics(2)) // failure 2 — trips
	st := d.Stats()
	if st.Breaker != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after %d write errors: breaker %q/%d trips, want open/1", st.WriteErrors, st.Breaker, st.BreakerTrips)
	}
	if st.WriteErrors != 2 || st.Retries != 0 {
		t.Errorf("ENOSPC path: WriteErrors=%d Retries=%d, want 2/0 (no point retrying)", st.WriteErrors, st.Retries)
	}

	// Open circuit: reads and writes are shed, counted as degraded.
	d.Put("k3", metrics(3))
	if _, ok := d.Get("k1"); ok {
		t.Error("degraded store served a read from disk")
	}
	if st = d.Stats(); st.Degraded < 2 {
		t.Errorf("Degraded = %d, want >= 2 (one shed write, one shed read)", st.Degraded)
	}

	// First half-open probe meets the last injected failure: reopen.
	time.Sleep(cooldown + 5*time.Millisecond)
	d.Put("k4", metrics(4))
	if st = d.Stats(); st.Breaker != "open" || st.BreakerTrips != 2 {
		t.Fatalf("failed probe left breaker %q/%d trips, want open/2", st.Breaker, st.BreakerTrips)
	}

	// Faults exhausted: the next probe succeeds and closes the circuit.
	time.Sleep(cooldown + 5*time.Millisecond)
	d.Put("k5", metrics(5))
	if st = d.Stats(); st.Breaker != "closed" {
		t.Fatalf("healed probe left breaker %q, want closed", st.Breaker)
	}
	if _, ok := d.Get("k5"); !ok {
		t.Error("entry written by the closing probe is missing")
	}
}

// TestReadErrorFeedsBreaker: a real read I/O error (not a miss) is a
// counted failure that can trip the circuit; reads flow again after the
// cooldown and a verified hit closes it.
func TestReadErrorFeedsBreaker(t *testing.T) {
	const cooldown = 20 * time.Millisecond
	d := fastDisk(t, t.TempDir(), store.DiskOptions{
		BreakerThreshold: 1, BreakerCooldown: cooldown})
	d.Put("k", metrics(1))

	faults.Enable(faults.NewPlan(1, faults.Rule{
		Site: faults.DiskRead, Nth: 1, Err: errors.New("injected read io")}))
	t.Cleanup(faults.Disable)

	if _, ok := d.Get("k"); ok {
		t.Fatal("injected read error still served a hit")
	}
	st := d.Stats()
	if st.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1", st.ReadErrors)
	}
	if st.Breaker != "open" {
		t.Fatalf("breaker %q after read failure at threshold 1, want open", st.Breaker)
	}
	if _, ok := d.Get("k"); ok {
		t.Error("open breaker let a read through inside the cooldown")
	}
	time.Sleep(cooldown + 5*time.Millisecond)
	if _, ok := d.Get("k"); !ok {
		t.Fatal("half-open read did not recover the entry")
	}
	if st = d.Stats(); st.Breaker != "closed" {
		t.Errorf("verified hit left breaker %q, want closed", st.Breaker)
	}
}

// TestCorruptWriteIsRejectedNotBreaker: a torn write "succeeds", the
// read side rejects it as untrusted content, and — content not being a
// device failure — the breaker does not move. A rewrite heals the key.
func TestCorruptWriteIsRejectedNotBreaker(t *testing.T) {
	d := fastDisk(t, t.TempDir(), store.DiskOptions{})
	faults.Enable(faults.NewPlan(1, faults.Rule{
		Site: faults.DiskWrite, Nth: 1, Corrupt: true}))
	t.Cleanup(faults.Disable)

	d.Put("k", metrics(1))
	if _, ok := d.Get("k"); ok {
		t.Fatal("torn entry passed verification")
	}
	st := d.Stats()
	if st.Rejected != 1 || st.WriteErrors != 0 || st.ReadErrors != 0 {
		t.Errorf("torn write counted wrong: %+v, want 1 rejection and no errors", st)
	}
	if st.Breaker != "closed" || st.BreakerTrips != 0 {
		t.Errorf("content corruption moved the breaker: %q/%d trips", st.Breaker, st.BreakerTrips)
	}
	d.Put("k", metrics(1))
	if got, ok := d.Get("k"); !ok || got != metrics(1) {
		t.Errorf("rewrite did not heal the torn entry: %v %v", got, ok)
	}
}

// TestOpenDiskFaultSite: the open path is injectable too — a fault at
// store.disk.open surfaces as the constructor's error.
func TestOpenDiskFaultSite(t *testing.T) {
	boom := errors.New("injected open failure")
	faults.Enable(faults.NewPlan(1, faults.Rule{Site: faults.DiskOpen, Nth: 1, Err: boom}))
	t.Cleanup(faults.Disable)
	if _, err := store.OpenDisk(t.TempDir()); !errors.Is(err, boom) {
		t.Fatalf("OpenDisk returned %v, want the injected error", err)
	}
}

// TestClearRefusesForeignDirectory: Clear must not wipe a directory
// that is not shaped like a store — a misspelled -cache-dir pointing at
// real data stays intact.
func TestClearRefusesForeignDirectory(t *testing.T) {
	dir := t.TempDir()
	precious := filepath.Join(dir, "thesis-draft.txt")
	if err := os.WriteFile(precious, []byte("irreplaceable"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Clear()
	if err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("Clear on a foreign directory returned %v, want a refusal", err)
	}
	if _, err := os.Stat(precious); err != nil {
		t.Fatalf("Clear damaged foreign data: %v", err)
	}

	// Foreign content one level down — inside a valid-looking shard —
	// is caught too.
	dir2 := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir2, "ab"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "ab", "notes.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.CheckStoreShape(dir2); err == nil {
		t.Fatal("shard with foreign file passed the shape check")
	}
}

// TestClearAcceptsStoreShaped: empty, absent, and genuinely store-shaped
// directories clear cleanly.
func TestClearAcceptsStoreShaped(t *testing.T) {
	if err := store.CheckStoreShape(filepath.Join(t.TempDir(), "never-created")); err != nil {
		t.Errorf("absent dir failed the shape check: %v", err)
	}
	d := fastDisk(t, t.TempDir(), store.DiskOptions{})
	if err := d.Clear(); err != nil {
		t.Fatalf("empty store refused to clear: %v", err)
	}
	for i := 0; i < 4; i++ {
		d.Put(metrics(i).Loop, metrics(i))
	}
	if st := d.Stats(); st.Entries != 4 {
		t.Fatalf("setup wrote %d entries, want 4", st.Entries)
	}
	if err := d.Clear(); err != nil {
		t.Fatalf("store-shaped dir refused to clear: %v", err)
	}
	if st := d.Stats(); st.Entries != 0 {
		t.Errorf("%d entries survived Clear", st.Entries)
	}
	if _, err := os.ReadDir(d.Dir()); err != nil {
		t.Errorf("cleared store root vanished: %v", err)
	}
}

// TestDurableRoundTrip: the fsync path writes entries that read back
// verified, and leaves no temp files behind.
func TestDurableRoundTrip(t *testing.T) {
	d := fastDisk(t, t.TempDir(), store.DiskOptions{Durable: true})
	d.Put("k", metrics(2))
	got, ok := d.Get("k")
	if !ok || got != metrics(2) {
		t.Fatalf("durable round trip drifted: %v %v", got, ok)
	}
	if st := d.Stats(); st.WriteErrors != 0 {
		t.Errorf("durable write counted %d errors", st.WriteErrors)
	}
	filepath.Walk(d.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}
