package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/sched"
)

// diskEntry is the on-disk format: the schema version and the full
// fingerprint are echoed in every entry so Get can prove an entry is
// the one it asked for. The fingerprint echo matters because file
// names are content-addressed hashes of the key — a hash collision or
// a file written by a different (buggy, future, truncated) writer must
// read as a miss, never as someone else's metrics.
type diskEntry struct {
	Schema  int           `json:"schema"`
	Key     string        `json:"key"`
	Metrics sched.Metrics `json:"metrics"`
}

// Disk is the persistent metrics tier: one JSON file per fingerprint
// under a content-addressed directory (dir/ab/<sha256(key)>.json).
// Writes are atomic — encode to a temp file in the target directory,
// then rename — so concurrent stores sharing one directory (separate
// processes, or two Disk values in tests) never observe partial
// entries. Get never trusts an entry it cannot verify: read errors,
// malformed JSON, schema-version drift, and fingerprint mismatches all
// report a miss (counted in Stats.Rejected) and the caller recomputes.
//
// Disk stores metrics only. Raw scheduled graphs are deliberately not
// persisted: they are megabytes each, pointer-rich, and only
// validation paths want them — the in-memory raw tier covers those.
type Disk struct {
	dir string

	hits, misses, rejected, writeErrs atomic.Uint64
}

// OpenDisk opens (creating if needed) the on-disk store rooted at dir.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open disk tier: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a fingerprint to its content-addressed file. Keys are long
// and contain separator characters, so the file name is the hex SHA-256
// of the key, sharded by its first byte to keep directories small.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, name[:2], name+".json")
}

// Get reads and verifies the entry under key. Any entry that cannot be
// read, parsed, or proven to belong to (key, current schema) is a miss.
func (d *Disk) Get(key string) (sched.Metrics, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		// Includes not-exist; anything else (permission, IO) is equally
		// a miss — the compute path is always available.
		d.misses.Add(1)
		return sched.Metrics{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Schema != sched.MetricsVersion || e.Key != key {
		d.rejected.Add(1)
		d.misses.Add(1)
		return sched.Metrics{}, false
	}
	d.hits.Add(1)
	return e.Metrics, true
}

// Put persists metrics under key with an atomic rename. Failures are
// recorded, not returned: the disk tier is an accelerator, and a
// missing entry merely costs a recompute next process.
func (d *Disk) Put(key string, m sched.Metrics) {
	if err := d.put(key, m); err != nil {
		d.writeErrs.Add(1)
	}
}

func (d *Disk) put(key string, m sched.Metrics) error {
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(diskEntry{
		Schema:  sched.MetricsVersion,
		Key:     key,
		Metrics: m,
	}, "", "  ")
	if err != nil {
		return err
	}
	// Temp file in the destination directory so the rename never
	// crosses a filesystem boundary (rename atomicity).
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Clear wipes every entry, leaving an empty store rooted at the same
// directory.
func (d *Disk) Clear() error {
	if err := os.RemoveAll(d.dir); err != nil {
		return err
	}
	return os.MkdirAll(d.dir, 0o755)
}

// Stats reports the counters plus the store's current footprint
// (entry files and their total bytes), computed by walking the
// directory — cheap at the scales a metrics tier reaches, and always
// true to what is actually on disk.
func (d *Disk) Stats() Stats {
	st := Stats{
		Hits:        d.hits.Load(),
		Misses:      d.misses.Load(),
		Rejected:    d.rejected.Load(),
		WriteErrors: d.writeErrs.Load(),
	}
	filepath.WalkDir(d.dir, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			return nil
		}
		if info, err := ent.Info(); err == nil {
			st.Entries++
			st.Bytes += info.Size()
		}
		return nil
	})
	return st
}
