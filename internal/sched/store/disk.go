package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/sched"
)

// diskEntry is the on-disk format: the schema version and the full
// fingerprint are echoed in every entry so Get can prove an entry is
// the one it asked for. The fingerprint echo matters because file
// names are content-addressed hashes of the key — a hash collision or
// a file written by a different (buggy, future, truncated) writer must
// read as a miss, never as someone else's metrics.
type diskEntry struct {
	Schema  int           `json:"schema"`
	Key     string        `json:"key"`
	Metrics sched.Metrics `json:"metrics"`
}

// DiskOptions tune the persistent tier's durability and fault
// tolerance. The zero value is the historical behavior (no fsync) with
// the default retry/breaker posture.
type DiskOptions struct {
	// Durable fsyncs the temp file before the rename and the shard
	// directory after it, so a committed entry survives a crash or
	// power cut. Command-line -cache-dir runs enable it (see
	// harness.EnableDiskCache); tests hammering a temp dir may not.
	Durable bool
	// Retries is how many times a transient write failure is retried
	// before counting as a failure; negative disables retries.
	// 0 means the default (2).
	Retries int
	// RetryBackoff is the pause before the first retry, doubled each
	// further retry with seeded jitter added. 0 means the default (2ms).
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-failure run that trips the
	// circuit breaker into degraded memory-only mode. 0 means the
	// default (4).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// half-open probes may test recovery. 0 means the default (2s).
	BreakerCooldown time.Duration
	// Seed seeds the retry jitter; 0 means seeded from the clock.
	// Chaos runs pin it for replayability.
	Seed int64
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 4
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// Disk is the persistent metrics tier: one JSON file per fingerprint
// under a content-addressed directory (dir/ab/<sha256(key)>.json).
// Writes are atomic — encode to a temp file in the target directory,
// then rename — so concurrent stores sharing one directory (separate
// processes, or two Disk values in tests) never observe partial
// entries. Get never trusts an entry it cannot verify: read errors,
// malformed JSON, schema-version drift, and fingerprint mismatches all
// report a miss (counted in Stats.Rejected) and the caller recomputes.
//
// The tier has an explicit failure contract. Writes are retried a
// bounded number of times with jittered backoff; a write that exhausts
// its retries (or a real read I/O error) counts toward a circuit
// breaker that trips the store into degraded memory-only mode — reads
// and writes are shed, counted in Stats.Degraded, until the cooldown
// elapses and half-open probes prove the device healthy again. Every
// error class is logged once and counted; nothing is silently dropped.
//
// Disk stores metrics only. Raw scheduled graphs are deliberately not
// persisted: they are megabytes each, pointer-rich, and only
// validation paths want them — the in-memory raw tier covers those.
type Disk struct {
	dir  string
	opts DiskOptions
	brk  *breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	logMu  sync.Mutex
	logged map[string]bool

	hits, misses, rejected, writeErrs atomic.Uint64
	readErrs, retries, degraded       atomic.Uint64
}

// OpenDisk opens (creating if needed) the on-disk store rooted at dir,
// with default options (not durable — see DiskOptions.Durable).
func OpenDisk(dir string) (*Disk, error) {
	return OpenDiskOptions(dir, DiskOptions{})
}

// OpenDiskOptions opens the on-disk store rooted at dir with explicit
// durability and fault-tolerance options.
func OpenDiskOptions(dir string, opts DiskOptions) (*Disk, error) {
	if err := faults.Check(faults.DiskOpen); err != nil {
		return nil, fmt.Errorf("store: open disk tier: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open disk tier: %w", err)
	}
	opts = opts.withDefaults()
	return &Disk{
		dir:    dir,
		opts:   opts,
		brk:    newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		logged: make(map[string]bool),
	}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a fingerprint to its content-addressed file. Keys are long
// and contain separator characters, so the file name is the hex SHA-256
// of the key, sharded by its first byte to keep directories small.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, name[:2], name+".json")
}

// Get reads and verifies the entry under key. Any entry that cannot be
// read, parsed, or proven to belong to (key, current schema) is a miss.
// While the breaker is open the disk is not touched at all — degraded
// memory-only mode — and the lookup is a (counted) miss.
func (d *Disk) Get(key string) (sched.Metrics, bool) {
	if !d.brk.allowRead() {
		d.degraded.Add(1)
		d.misses.Add(1)
		return sched.Metrics{}, false
	}
	data, err := os.ReadFile(d.path(key))
	if ferr := faults.Check(faults.DiskRead); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		d.misses.Add(1)
		// Not-exist is a plain miss; anything else (permission, I/O) is
		// a device failure — still a miss for the caller (the compute
		// path is always available), but counted and fed to the breaker.
		if !errors.Is(err, fs.ErrNotExist) {
			d.readErrs.Add(1)
			d.logOnce("read", err)
			d.brk.failure()
		}
		return sched.Metrics{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Schema != sched.MetricsVersion || e.Key != key {
		// Untrusted content, not a sick device: neutral for the breaker.
		d.rejected.Add(1)
		d.misses.Add(1)
		return sched.Metrics{}, false
	}
	d.hits.Add(1)
	d.brk.success()
	return e.Metrics, true
}

// Put persists metrics under key with an atomic rename, retrying
// transient failures with jittered backoff. Failures are recorded in
// Stats (and logged once per error class), never returned: the disk
// tier is an accelerator, and a missing entry merely costs a recompute
// next process. A breaker that has tripped sheds the write entirely
// (degraded memory-only mode) until a half-open probe succeeds.
func (d *Disk) Put(key string, m sched.Metrics) {
	if !d.brk.allowWrite() {
		d.degraded.Add(1)
		return
	}
	if err := d.putRetry(key, m); err != nil {
		d.writeErrs.Add(1)
		d.logOnce("write", err)
		d.brk.failure()
		return
	}
	d.brk.success()
}

// putRetry runs the bounded-retry loop around put. Errors that retrying
// cannot fix (no space, no permission) fail immediately.
func (d *Disk) putRetry(key string, m sched.Metrics) error {
	backoff := d.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if err = d.put(key, m); err == nil || !transient(err) || attempt >= d.opts.Retries {
			return err
		}
		d.retries.Add(1)
		time.Sleep(backoff + d.jitter(backoff))
		backoff *= 2
	}
}

// transient reports whether retrying the write could plausibly help.
func transient(err error) bool {
	return !errors.Is(err, syscall.ENOSPC) && !errors.Is(err, fs.ErrPermission)
}

// jitter draws a seeded random duration in [0, max).
func (d *Disk) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	return time.Duration(d.rng.Int63n(int64(max)))
}

func (d *Disk) put(key string, m sched.Metrics) error {
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(diskEntry{
		Schema:  sched.MetricsVersion,
		Key:     key,
		Metrics: m,
	}, "", "  ")
	if err != nil {
		return err
	}
	// The injectable write site: rules here fail the write (feeding the
	// retry/breaker path) or mutilate the payload — a torn write that
	// "succeeds" and must be rejected by read-side verification.
	data, err = faults.Mutate(faults.DiskWrite, append(data, '\n'))
	if err != nil {
		return err
	}
	// Temp file in the destination directory so the rename never
	// crosses a filesystem boundary (rename atomicity).
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if d.opts.Durable {
		// Crash durability: the data must be on stable storage before
		// the rename publishes it, else a power cut can commit a name
		// pointing at garbage — which read-side verification would
		// reject, but the entry (and its compute cost) would be lost.
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d.opts.Durable {
		// The rename itself lives in the directory: fsync the shard dir
		// so the new name survives a crash too. Best-effort — the data
		// is already safe, and some filesystems refuse directory syncs.
		if dirf, err := os.Open(filepath.Dir(path)); err == nil {
			dirf.Sync()
			dirf.Close()
		}
	}
	return nil
}

// logOnce reports a disk failure to the process log exactly once per
// (operation, error class), so a store failing thousands of writes in
// a batch run surfaces the problem without flooding stderr.
func (d *Disk) logOnce(op string, err error) {
	class := op + "/" + errClass(err)
	d.logMu.Lock()
	defer d.logMu.Unlock()
	if d.logged[class] {
		return
	}
	d.logged[class] = true
	log.Printf("store: disk %s failed (%v); further %s errors of this class are counted in Stats, not logged", op, err, op)
}

// errClass buckets errors coarsely: by errno when there is one, by
// dynamic type otherwise.
func errClass(err error) string {
	var errno syscall.Errno
	if errors.As(err, &errno) {
		return errno.Error()
	}
	return fmt.Sprintf("%T", err)
}

// Clear wipes every entry, leaving an empty store rooted at the same
// directory. It refuses to delete a directory that does not look like a
// result store — a misspelled -cache-dir must not wipe whatever path it
// happens to name.
func (d *Disk) Clear() error {
	if err := CheckStoreShape(d.dir); err != nil {
		return fmt.Errorf("store: refusing to clear %s: %w", d.dir, err)
	}
	if err := os.RemoveAll(d.dir); err != nil {
		return err
	}
	return os.MkdirAll(d.dir, 0o755)
}

// shardName matches a two-hex-digit shard directory.
func shardName(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// entryName matches a content-addressed entry file (<sha256>.json) or
// an in-flight temp file.
func entryName(name string) bool {
	if strings.HasPrefix(name, ".tmp-") {
		return true
	}
	if !strings.HasSuffix(name, ".json") || len(name) != 64+len(".json") {
		return false
	}
	for i := 0; i < 64; i++ {
		c := name[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// CheckStoreShape verifies that dir is empty, absent, or shaped like a
// result store: only two-hex-char shard directories at the top level,
// holding only <sha256>.json entries (or .tmp-* files mid-write). Any
// foreign file or directory is an error naming the first offender.
func CheckStoreShape(dir string) error {
	top, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, ent := range top {
		if !ent.IsDir() || !shardName(ent.Name()) {
			return fmt.Errorf("unexpected %s (not an ab/<sha256>.json store layout)", ent.Name())
		}
		inner, err := os.ReadDir(filepath.Join(dir, ent.Name()))
		if err != nil {
			return err
		}
		for _, f := range inner {
			if f.IsDir() || !entryName(f.Name()) {
				return fmt.Errorf("unexpected %s (not an ab/<sha256>.json store layout)",
					filepath.Join(ent.Name(), f.Name()))
			}
		}
	}
	return nil
}

// Stats reports the counters plus the store's current footprint
// (entry files and their total bytes), computed by walking the
// directory — cheap at the scales a metrics tier reaches, and always
// true to what is actually on disk — and the breaker's health.
func (d *Disk) Stats() Stats {
	st := Stats{
		Hits:        d.hits.Load(),
		Misses:      d.misses.Load(),
		Rejected:    d.rejected.Load(),
		WriteErrors: d.writeErrs.Load(),
		ReadErrors:  d.readErrs.Load(),
		Retries:     d.retries.Load(),
		Degraded:    d.degraded.Load(),
	}
	st.Breaker, st.BreakerTrips = d.brk.snapshot()
	filepath.WalkDir(d.dir, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			return nil
		}
		if info, err := ent.Info(); err == nil {
			st.Entries++
			st.Bytes += info.Size()
		}
		return nil
	})
	return st
}
