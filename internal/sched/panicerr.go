package sched

import "fmt"

// PanicError is a backend panic recovered by the execution engine
// (batch workers and the cache's compute path): the poisoned cell fails
// alone with a typed, diagnosable error instead of killing the whole
// batch run or deadlocking single-flight waiters. Like every other
// compute error it is never cached — a later request for the same key
// recomputes.
type PanicError struct {
	// Key is the job's cache key (technique + request fingerprint) —
	// enough to identify and replay the poisoned cell.
	Key string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: backend panicked on %s: %v", e.Key, e.Value)
}
