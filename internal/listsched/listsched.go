// Package listsched implements plain greedy list scheduling of a single
// loop iteration: compaction without any iteration overlap. It is the
// weakest baseline — what a basic VLIW compactor achieves before any
// software pipelining — and calibrates how much of GRiP's win comes from
// pipelining rather than from packing alone.
package listsched

import (
	"repro/internal/deps"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Result reports a list schedule of one iteration.
type Result struct {
	// Cycles is the schedule length of one iteration (the loop-back
	// jump issues in the last cycle).
	Cycles int
	// Times holds each extended-body op's cycle.
	Times []int
	// Speedup is sequential ops per iteration divided by Cycles.
	Speedup float64
}

// Schedule packs one iteration of spec onto m: each op issues at the
// earliest cycle where its intra-iteration predecessors are done and a
// unit is free. Loop-carried edges are irrelevant because iterations do
// not overlap.
func Schedule(spec *ir.LoopSpec, m machine.Machine) *Result {
	info := deps.Analyze(spec)
	ext := deps.ExtendedBody(spec)
	n := len(ext)
	times := make([]int, n)
	est := make([]int, n)
	var fuUse, brUse []int
	use := func(s []int, c int) []int {
		for len(s) <= c {
			s = append(s, 0)
		}
		s[c]++
		return s
	}
	free := func(s []int, c int, fits func(int) bool) bool {
		if len(s) <= c {
			return fits(1)
		}
		return fits(s[c] + 1)
	}
	length := 0
	for i := 0; i < n; i++ {
		t := est[i]
		for {
			if ext[i].Kind == ir.CJ {
				if free(brUse, t, m.FitsBranches) {
					brUse = use(brUse, t)
					break
				}
			} else if free(fuUse, t, m.FitsOps) {
				fuUse = use(fuUse, t)
				break
			}
			t++
		}
		times[i] = t
		if t+1 > length {
			length = t + 1
		}
		for _, e := range info.Edges {
			if e.From == i && e.Dist == 0 && e.To > i {
				if times[i]+1 > est[e.To] {
					est[e.To] = times[i] + 1
				}
			}
		}
	}
	return &Result{
		Cycles:  length,
		Times:   times,
		Speedup: float64(spec.SeqOpsPerIter()) / float64(length),
	}
}
