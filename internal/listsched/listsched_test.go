package listsched

import (
	"context"
	"testing"

	"repro/internal/deps"
	"repro/internal/ir"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/modulo"
)

func TestListScheduleLength(t *testing.T) {
	// LL9 is wide and shallow: 19 body ops + increment on 4 units with
	// critical path ~13 must finish no earlier than both bounds.
	spec := livermore.ByName("LL9").Spec
	res := Schedule(spec, machine.New(4))
	info := deps.Analyze(spec)
	lower := info.CritPath
	if r := deps.ModuloResMII(spec.SeqOpsPerIter()-1, 4); r > lower {
		lower = r
	}
	if res.Cycles < lower {
		t.Fatalf("cycles %d below lower bound %d", res.Cycles, lower)
	}
	if res.Speedup <= 1 {
		t.Fatalf("speedup %.2f", res.Speedup)
	}
}

func TestListRespectsDeps(t *testing.T) {
	for _, k := range livermore.All() {
		res := Schedule(k.Spec, machine.New(2))
		info := deps.Analyze(k.Spec)
		for _, e := range info.Edges {
			if e.Dist != 0 || e.To < e.From {
				continue
			}
			if res.Times[e.To] <= res.Times[e.From] {
				t.Errorf("%s: intra-iteration edge %d->%d violated", k.Name, e.From, e.To)
			}
		}
	}
}

func TestListNeverBeatsModulo(t *testing.T) {
	// Pipelining only helps: modulo's II never exceeds one compacted
	// iteration.
	for _, k := range livermore.All() {
		m := machine.New(4)
		ls := Schedule(k.Spec, m)
		mod, err := modulo.Schedule(context.Background(), k.Spec, m)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if mod.II > ls.Cycles {
			t.Errorf("%s: II %d > list schedule %d", k.Name, mod.II, ls.Cycles)
		}
	}
	_ = ir.NoReg
}
