// Package unifiable implements the Unifiable-ops scheduling baseline of
// section 3.1 (Figure 7), after Ebcioglu & Nicolau (ICS'89): for each
// node, the Unifiable-ops set contains the operations on the dominated
// subgraph that can immediately be moved all the way to the node by a
// sequence of PS transformations — i.e. operations with no serializing
// producer anywhere between the node and their current position.
//
// Scheduling a node fills it with the best unifiable operations. Because
// an operation only moves when it will arrive, no node below the current
// one can become a resource barrier — but the sets are expensive: they
// must be recomputed (or incrementally maintained) against the whole
// dominated region after every move. The package counts that work so the
// cost comparison with GRiP's trivially maintainable Moveable-ops sets
// can be benchmarked (the paper's main efficiency claim).
package unifiable

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/ps"
)

// Options control the scheduler.
type Options struct {
	MaxSteps int
	// TraceNode receives each node with its Unifiable-ops set (the
	// Figure 8 trace).
	TraceNode func(n *graph.Node, unifiable []*ir.Op)
}

// Stats reports scheduling work.
type Stats struct {
	NodesScheduled int
	Arrived        int
	// SetWork counts op-node dependence probes spent computing
	// Unifiable-ops sets — the term GRiP's Moveable-ops sets eliminate.
	SetWork int
	// Anomalies counts migrations that unexpectedly stalled mid-way
	// (e.g. a store pinned under a branch); the op is left where it
	// stopped.
	Anomalies int
}

const defaultMaxSteps = 2_000_000

type sched struct {
	ctx   *ps.Ctx
	inner *ps.Ctx // same graph, infinite intermediate resources
	pri   *deps.Priority
	ddg   *deps.DDG
	opts  Options
	stats Stats
	steps int
}

// Schedule fills each node top-down with its best unifiable operations
// (Figure 7).
func Schedule(ctx *ps.Ctx, ops []*ir.Op, pri *deps.Priority, opts Options) (Stats, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	// Set-recomputation probes go through the DDG's dependence matrix;
	// registering it with the transformation contexts keeps it honest
	// across copy-propagation rewrites.
	ctx.D = pri.DDG()
	inner := *ctx
	inner.M = machine.Infinite().WithBranchSlots(ctx.M.BranchSlots)
	s := &sched{ctx: ctx, inner: &inner, pri: pri, ddg: pri.DDG(), opts: opts}

	g := ctx.G
	for n := g.Entry; n != nil; {
		if n.Drain {
			break
		}
		if err := s.scheduleNode(n, ops); err != nil {
			return s.stats, err
		}
		s.stats.NodesScheduled++
		n = n.NonDrainSucc()
	}
	for _, n := range g.MainChain() {
		if g.Has(n) && !n.Drain {
			g.SpliceOutEmpty(n)
		}
	}
	return s.stats, nil
}

func (s *sched) scheduleNode(n *graph.Node, ops []*ir.Op) error {
	for {
		if s.steps > s.opts.MaxSteps {
			return fmt.Errorf("unifiable: exceeded %d steps", s.opts.MaxSteps)
		}
		opRoom := s.ctx.M.FitsOps(n.OpCount() + 1)
		brRoom := s.ctx.M.FitsBranches(n.BranchCount() + 1)
		if !opRoom && !brRoom {
			return nil
		}
		set := s.unifiableSet(n, ops)
		if s.opts.TraceNode != nil {
			s.opts.TraceNode(n, set)
		}
		var pick *ir.Op
		for _, op := range set {
			if op.IsBranch() && brRoom || !op.IsBranch() && opRoom {
				pick = op
				break
			}
		}
		if pick == nil {
			return nil
		}
		if !s.migrate(n, pick) {
			s.stats.Anomalies++
			return nil
		}
		s.stats.Arrived++
	}
}

// unifiableSet computes Unifiable-ops(n) from scratch, in ranked order.
// An op qualifies when no operation located in any node from n
// (exclusive) down to the op's node serializes against it, and its path
// is not blocked by branch-crossing restrictions (a store cannot cross a
// conditional jump, and a conditional jump must be at its node's root).
func (s *sched) unifiableSet(n *graph.Node, ops []*ir.Op) []*ir.Op {
	g := s.ctx.G
	limit := g.Index(n)
	var set []*ir.Op
	for _, op := range ops {
		if op.Frozen {
			continue
		}
		home := g.NodeOf(op)
		if home == nil || home.Drain || g.Index(home) <= limit {
			continue
		}
		if s.clearPathTo(n, op, home) {
			set = append(set, op)
		}
	}
	s.pri.Rank(set)
	return set
}

// clearPathTo reports whether op can reach n from home given data
// dependences and branch-crossing rules, charging SetWork per probe.
func (s *sched) clearPathTo(n *graph.Node, op *ir.Op, home *graph.Node) bool {
	g := s.ctx.G
	for m := home; m != n; m = g.SinglePred(m) {
		if m == nil {
			return false // no single-pred path up to n
		}
		if m != home {
			crossesBranch := m.BranchCount() > 0
			if crossesBranch && op.IsStore() {
				return false
			}
		}
		ok := true
		m.Walk(func(v *graph.Vertex) {
			for _, p := range v.Ops {
				if p == op {
					continue
				}
				s.stats.SetWork++
				if s.ddg.Serializes(p, op) {
					ok = false
				}
			}
			if v.CJ != nil && v.CJ != op {
				s.stats.SetWork++
				if s.ddg.Serializes(v.CJ, op) {
					ok = false
				}
				if op.IsBranch() && m != home {
					// Would have to pass another jump: branch order
					// is fixed.
					ok = false
				}
			}
		})
		if !ok {
			return false
		}
		if m == home && op.IsBranch() && g.Where(op) != home.Root {
			return false
		}
	}
	return true
}

// migrate moves op all the way to n, ignoring intermediate resource
// limits (the defining property of the Unifiable-ops method: the op is
// guaranteed to arrive, so no barrier can form below), while enforcing
// n's own capacity through the outer machine on the final placement.
func (s *sched) migrate(n *graph.Node, op *ir.Op) bool {
	g := s.ctx.G
	for g.NodeOf(op) != n {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return false
		}
		ctx := s.inner
		// The final hop into n must respect n's real capacity.
		if cur := g.NodeOf(op); cur != nil && g.SinglePred(cur) == n && g.Where(op) == cur.Root {
			ctx = s.ctx
		}
		var blk ps.Block
		switch {
		case op.IsBranch():
			blk = ctx.TryMoveCJUp(op, true)
		case g.Where(op) != g.NodeOf(op).Root:
			blk = ctx.TryHoist(op, true)
		default:
			blk = ctx.TryMoveOpUp(op, true, nil)
		}
		if blk.Kind != ps.BlockNone {
			return false
		}
	}
	return true
}
