package unifiable

import (
	"testing"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/ps"
	"repro/internal/sim"
)

func schedule(t *testing.T, spec *ir.LoopSpec, unwind, fus int) (*pipeline.Unwound, Stats) {
	t.Helper()
	uw, err := pipeline.Unwind(spec, unwind)
	if err != nil {
		t.Fatal(err)
	}
	g := uw.BuildGraph()
	ddg := deps.Build(uw.Ops)
	ctx := ps.NewCtx(g, machine.New(fus), uw.ExitLive)
	st, err := Schedule(ctx, uw.Ops, deps.NewPriority(ddg), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return uw, st
}

func TestUnifiableSchedulesAndPreserves(t *testing.T) {
	k := livermore.ByName("LL1")
	uw, st := schedule(t, k.Spec, 8, 4)
	if st.Arrived == 0 {
		t.Fatal("nothing scheduled")
	}
	if st.SetWork == 0 {
		t.Fatal("set maintenance work not accounted")
	}
	// Rows respect the machine.
	for _, n := range uw.G.MainChain() {
		if n.OpCount() > 4 {
			t.Errorf("row n%d has %d ops", n.ID, n.OpCount())
		}
	}
	// Semantics: compare against a fresh reference unwinding.
	ref, err := pipeline.Unwind(k.Spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	refG := ref.BuildGraph()
	vars := map[string]int64{"q": 5, "r": 3, "t": 2, "n": 8}
	arrays := k.Arrays(24)
	refRes, err := sim.Run(refG, ref.InitState(vars, arrays), 100000)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := sim.Run(uw.G, uw.InitState(vars, arrays), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.EquivalentMem(refRes.State, gotRes.State); err != nil {
		t.Fatal(err)
	}
}

// TestNoResourceBarriers checks the defining property of the technique:
// an operation only moves when it arrives, so no op ever parks in an
// intermediate node — the schedule after each node is "clean" above it.
func TestNoResourceBarriers(t *testing.T) {
	k := livermore.ByName("LL9")
	uw, st := schedule(t, k.Spec, 6, 2)
	// Conditional jumps whose path crosses another branch node stall
	// (the inner branch slot is real); they are counted as anomalies.
	// Ordinary operations must essentially always arrive.
	if st.Anomalies > st.Arrived/2 {
		t.Errorf("%d of %d migrations stalled mid-way", st.Anomalies, st.Arrived)
	}
	for _, n := range uw.G.MainChain() {
		if n.OpCount() > 2 {
			t.Errorf("intermediate overflow: row n%d has %d ops", n.ID, n.OpCount())
		}
	}
}

func TestTraceEmitsSets(t *testing.T) {
	spec := livermore.ByName("LL3").Spec
	uw, err := pipeline.Unwind(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := uw.BuildGraph()
	ddg := deps.Build(uw.Ops)
	ctx := ps.NewCtx(g, machine.New(2), uw.ExitLive)
	calls := 0
	first := -1
	_, err = Schedule(ctx, uw.Ops, deps.NewPriority(ddg), Options{
		TraceNode: func(n *graph.Node, set []*ir.Op) {
			calls++
			if first < 0 {
				first = len(set)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || first < 0 {
		t.Fatal("trace never fired")
	}
}
