package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// TestConfigFingerprint pins the canonical-key properties the result
// caches build on: machine and every knob discriminate, zero-valued
// defaulted fields normalize, and the diagnostic TraceNode is excluded.
func TestConfigFingerprint(t *testing.T) {
	base := DefaultConfig(machine.New(4))
	distinct := []Config{
		base,
		DefaultConfig(machine.New(8)),
		DefaultConfig(machine.Infinite()),
	}
	mutate := []func(*Config){
		func(c *Config) { c.Unwind = 8 },
		func(c *Config) { c.MaxUnwind = 48 },
		func(c *Config) { c.Optimize = false },
		func(c *Config) { c.GapPrevention = false },
		func(c *Config) { c.EmptyPrelude = 4 },
		func(c *Config) { c.Renaming = true },
		func(c *Config) { c.Periods = 5 },
	}
	for _, m := range mutate {
		c := base
		m(&c)
		distinct = append(distinct, c)
	}
	seen := map[string]Config{}
	for _, c := range distinct {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("configs %+v and %+v share fingerprint %q", prev, c, fp)
		}
		seen[fp] = c
	}

	// Zero defaulted fields normalize to the explicit defaults.
	zeroed := base
	zeroed.MaxUnwind, zeroed.Periods = 0, 0
	if zeroed.Fingerprint() != base.Fingerprint() {
		t.Errorf("zeroed defaults fingerprint %q != default config %q",
			zeroed.Fingerprint(), base.Fingerprint())
	}

	// TraceNode is diagnostic and must not key the cache.
	traced := base
	traced.TraceNode = func(*graph.Node, []*ir.Op) {}
	if traced.Fingerprint() != base.Fingerprint() {
		t.Error("TraceNode leaked into the fingerprint")
	}
}

func cancelTestLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "cancel",
		Body: []ir.BodyOp{
			ir.BLoad("a", ir.Aff("A", 1, 0)),
			ir.BMul("b", "a", "a"),
			ir.BAdd("c", "b", "a"),
			ir.BStore(ir.Aff("X", 1, 0), "c"),
		},
		Step: 1, TripVar: "n",
	}
}

// countdownCtx expires after a fixed number of Err polls: a
// deterministic stand-in for a deadline that fires mid-schedule,
// immune to both timer slop and the scheduler getting faster.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls <= 0 {
		return context.DeadlineExceeded
	}
	c.polls--
	return nil
}

// TestPerfectPipelineCancellation: an already-cancelled context stops
// the run before any scheduling, and a deadline observed at a
// mid-schedule checkpoint interrupts the run with
// context.DeadlineExceeded.
func TestPerfectPipelineCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PerfectPipeline(cancelled, cancelTestLoop(), DefaultConfig(machine.New(2))); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: err = %v, want context.Canceled", err)
	}

	cfg := DefaultConfig(machine.New(2))
	cfg.Unwind = 96
	ctx := &countdownCtx{Context: context.Background(), polls: 50}
	start := time.Now()
	_, err := PerfectPipeline(ctx, cancelTestLoop(), cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; checkpoints are not reached", elapsed)
	}
}
