package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Kernel describes the steady-state pattern detected in a pipelined
// schedule: rows [Start, Start+Rows) repeat with every operation's
// iteration index advanced by IterSpan — the new loop body of Perfect
// Pipelining. Its rate is IterSpan iterations every Rows cycles.
type Kernel struct {
	Start    int
	Rows     int
	IterSpan int
}

// CyclesPerIter is the kernel's steady-state cost per loop iteration.
func (k *Kernel) CyclesPerIter() float64 {
	return float64(k.Rows) / float64(k.IterSpan)
}

func (k *Kernel) String() string {
	return fmt.Sprintf("kernel{rows %d..%d, %d iter/%d cycles}",
		k.Start, k.Start+k.Rows-1, k.IterSpan, k.Rows)
}

// rowSig is a canonical row signature: the (origin, iteration) pairs of
// the schedulable content, sorted.
type rowSig [][2]int

func signatureOf(n *graph.Node) rowSig {
	var sig rowSig
	n.Walk(func(v *graph.Vertex) {
		for _, o := range v.Ops {
			if !o.Frozen {
				sig = append(sig, [2]int{o.Origin, o.Iter})
			}
		}
		if v.CJ != nil && !v.CJ.Frozen {
			sig = append(sig, [2]int{v.CJ.Origin, v.CJ.Iter})
		}
	})
	sort.Slice(sig, func(i, j int) bool {
		if sig[i][0] != sig[j][0] {
			return sig[i][0] < sig[j][0]
		}
		return sig[i][1] < sig[j][1]
	})
	return sig
}

// shiftEqual reports whether b equals a with every iteration advanced by
// d.
func shiftEqual(a, b rowSig, d int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if b[i][0] != a[i][0] || b[i][1] != a[i][1]+d {
			return false
		}
	}
	return true
}

// DetectPattern scans the schedule's main chain for the earliest,
// shortest repeating pattern: a window of L rows that repeats (with a
// positive iteration shift) for at least `periods` consecutive periods.
// Three periods make accidental matches in the fill/drain regions
// vanishingly unlikely while still succeeding well before full unwind.
func DetectPattern(g *graph.Graph, periods int) (*Kernel, bool) {
	if periods < 2 {
		periods = 2
	}
	chain := g.MainChain()
	sigs := make([]rowSig, len(chain))
	for i, n := range chain {
		sigs[i] = signatureOf(n)
	}
	n := len(sigs)

	// A valid kernel must perform every operation an iteration needs:
	// each "steady" origin (one that still has live instances in the
	// final iterations — i.e. was not eliminated by redundant-operation
	// removal) must appear exactly IterSpan times per period. This
	// rejects pseudo-patterns whose work was hoisted into the finite
	// prelude (the Figure 9 divergence: all loads at the top, rows that
	// repeat but could never loop).
	maxIter := -1
	for _, sig := range sigs {
		for _, p := range sig {
			if p[1] > maxIter {
				maxIter = p[1]
			}
		}
	}
	steady := map[int]bool{}
	for _, sig := range sigs {
		for _, p := range sig {
			if p[1] >= maxIter-1 {
				steady[p[0]] = true
			}
		}
	}
	coversSteady := func(s, L, d int) bool {
		counts := map[int]int{}
		for r := s; r < s+L; r++ {
			for _, p := range sigs[r] {
				counts[p[0]]++
			}
		}
		for o := range steady {
			if counts[o] != d {
				return false
			}
		}
		for o := range counts {
			if !steady[o] && counts[o] != d {
				return false
			}
		}
		return true
	}

	// Kernels are short (at most a few iterations of rows); capping the
	// period length keeps the search near-linear in the chain length.
	const maxPeriod = 64
	for s := 0; s < n; s++ {
		if len(sigs[s]) == 0 {
			continue
		}
		maxL := (n - s) / periods
		if maxL > maxPeriod {
			maxL = maxPeriod
		}
		for L := 1; L <= maxL; L++ {
			if len(sigs[s+L]) != len(sigs[s]) || len(sigs[s]) == 0 {
				continue
			}
			d := sigs[s+L][0][1] - sigs[s][0][1]
			if d <= 0 {
				continue
			}
			ok := true
			for r := s; r < s+(periods-1)*L && ok; r++ {
				ok = shiftEqual(sigs[r], sigs[r+L], d)
			}
			if ok && coversSteady(s, L, d) {
				return &Kernel{Start: s, Rows: L, IterSpan: d}, true
			}
		}
	}
	return nil, false
}

// MeasuredRate estimates cycles per iteration without requiring a
// pattern: it counts the rows between the retirement (conditional jump)
// of iteration lo and of iteration hi on the main chain. Branches are
// never reordered or merged, and exactly one retires per iteration, so
// this is the schedule's true sustained rate even when it has not
// converged (the Figure 9 situation).
func MeasuredRate(g *graph.Graph, lo, hi int) (float64, bool) {
	if hi <= lo {
		return 0, false
	}
	chain := g.MainChain()
	cjRow := map[int]int{}
	for row, n := range chain {
		for _, cj := range n.Branches() {
			if !cj.Frozen {
				cjRow[cj.Iter] = row
			}
		}
	}
	rl, okl := cjRow[lo]
	rh, okh := cjRow[hi]
	if !okl || !okh {
		return 0, false
	}
	return float64(rh-rl) / float64(hi-lo), true
}
