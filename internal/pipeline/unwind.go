// Package pipeline implements Perfect Pipelining (paper section 2): the
// loop body is unwound a fixed number of times with per-iteration
// register renaming, compacted by a resource-constrained scheduler, and
// the steady-state pattern of the resulting schedule becomes the new
// loop body. The package also implements the paper's redundant-operation
// removal (section 4) and simple fixed-unwind pipelining for the
// Figure 6 comparison.
package pipeline

import (
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/ir"
)

// Unwound is a loop unwound U times into a sequential chain, one
// operation per instruction, with per-iteration SSA renaming (fresh
// registers per iteration, making every cross-iteration register
// anti/output dependence disappear — the effect renaming would otherwise
// achieve during scheduling).
type Unwound struct {
	Spec  *ir.LoopSpec
	U     int
	Alloc *ir.Alloc

	// Ops are the schedulable operations in sequential order: per
	// iteration the body ops, then the counter increment, then the
	// loop-back conditional jump.
	Ops []*ir.Op

	// G is the program graph, available after BuildGraph.
	G *graph.Graph

	// LiveIn maps live-in variable names (plus the counter and trip
	// variable) to their registers; the initial state must define them.
	LiveIn map[string]ir.Reg
	// LiveOut maps live-out variable names to the registers holding
	// their final values after any exit (the epilogue copy targets).
	LiveOut map[string]ir.Reg
	// ExitLive is the register-set view of LiveOut for the write-live
	// tests.
	ExitLive map[ir.Reg]bool

	// epilogues[i] lists, per live-out variable order, the register
	// holding the variable's value after iteration i completes.
	epilogues [][]ir.Reg
	// liveOutNames fixes the variable order used by epilogues.
	liveOutNames []string

	// removed counts operations eliminated by Optimize.
	removed int
}

// Unwind unwinds spec U times. The register allocation order is
// deterministic, so two Unwind calls with identical arguments produce
// identically-numbered programs (the test harness relies on this to
// compare a scheduled graph against a freshly built reference).
func Unwind(spec *ir.LoopSpec, u int) (*Unwound, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if u < 1 {
		return nil, fmt.Errorf("pipeline: unwind factor %d < 1", u)
	}
	al := ir.NewAlloc()
	uw := &Unwound{
		Spec:     spec,
		U:        u,
		Alloc:    al,
		LiveIn:   map[string]ir.Reg{},
		LiveOut:  map[string]ir.Reg{},
		ExitLive: map[ir.Reg]bool{},
	}

	env := map[string]ir.Reg{}
	bind := func(v string) ir.Reg {
		if r, ok := env[v]; ok {
			return r
		}
		r := al.Reg(v)
		env[v] = r
		uw.LiveIn[v] = r
		return r
	}
	bind(ir.CounterVar)
	bind(spec.TripVar)
	for _, v := range spec.LiveIn {
		bind(v)
	}
	for _, v := range spec.LiveOut {
		uw.liveOutNames = append(uw.liveOutNames, v)
		r := al.Reg(v + ".out")
		uw.LiveOut[v] = r
		uw.ExitLive[r] = true
		// A live-out variable that is not also live-in may be read by
		// the epilogue before its first definition when the trip count
		// is tiny; bind it so the register exists.
		bind(v)
	}

	mem := func(m ir.BodyRef, iter int) ir.MemRef {
		arr := al.Array(m.Array)
		if m.IndexVar != "" {
			return ir.MemRef{Array: arr, IndexReg: env[m.IndexVar], Index: m.Off}
		}
		k := spec.Start + int64(iter)*spec.Step
		return ir.MemRef{Array: arr, Index: m.KCoef*k + m.Off}
	}

	for iter := 0; iter < u; iter++ {
		for oi, b := range spec.Body {
			op := &ir.Op{ID: al.OpID(), Origin: oi, Iter: iter, Kind: b.Kind, Rel: ir.Lt}
			switch b.Kind {
			case ir.Const:
				op.Imm = b.Imm
			case ir.Copy:
				op.Src[0] = env[b.A]
			case ir.Add, ir.Sub, ir.Mul, ir.Div:
				op.Src[0] = env[b.A]
				if b.UseImm {
					op.BImm = true
					op.Imm = b.Imm
				} else {
					op.Src[1] = env[b.B]
				}
			case ir.Load:
				op.Mem = mem(b.Mem, iter)
			case ir.Store:
				op.Src[0] = env[b.A]
				op.Mem = mem(b.Mem, iter)
			default:
				return nil, fmt.Errorf("pipeline: unsupported body op kind %v", b.Kind)
			}
			if b.Dst != "" {
				op.Dst = al.Reg(b.Dst + "." + strconv.Itoa(iter))
				env[b.Dst] = op.Dst
			}
			uw.Ops = append(uw.Ops, op)
		}
		// Loop control: k' = k + Step ; continue while k' < trip.
		kNext := al.Reg("k." + strconv.Itoa(iter+1))
		inc := &ir.Op{ID: al.OpID(), Origin: len(spec.Body), Iter: iter,
			Kind: ir.Add, Dst: kNext, Src: [2]ir.Reg{env[ir.CounterVar]}, Imm: spec.Step, BImm: true}
		env[ir.CounterVar] = kNext
		uw.Ops = append(uw.Ops, inc)
		cj := &ir.Op{ID: al.OpID(), Origin: len(spec.Body) + 1, Iter: iter,
			Kind: ir.CJ, Src: [2]ir.Reg{kNext, env[spec.TripVar]}, Rel: ir.Lt}
		uw.Ops = append(uw.Ops, cj)

		// Snapshot the post-iteration values the exit path must save.
		snap := make([]ir.Reg, len(uw.liveOutNames))
		for vi, v := range uw.liveOutNames {
			snap[vi] = env[v]
		}
		uw.epilogues = append(uw.epilogues, snap)
	}
	return uw, nil
}

// BuildGraph constructs the sequential program graph for the (possibly
// optimized) operation list: one op per node, each conditional jump's
// false side leading to that iteration's epilogue (frozen live-out
// copies) and the final continue edge to the last epilogue.
func (u *Unwound) BuildGraph() *graph.Graph {
	g := graph.New(u.Alloc)
	g.Label = u.Spec.Name + "/" + u.Spec.Fingerprint()[:8]
	u.G = g
	var tail *graph.Node
	for _, op := range u.Ops {
		if op.IsBranch() {
			exit := u.buildEpilogue(g, op.Iter)
			tail = graph.AppendBranch(g, tail, op, exit)
			continue
		}
		tail = graph.AppendOp(g, tail, op)
	}
	// Continue side after the last unwound iteration: same observable
	// values as exiting right there.
	if tail != nil && len(u.liveOutNames) > 0 {
		final := u.buildEpilogue(g, u.U-1)
		g.RetargetLeaf(graph.ContinueLeaf(tail), final)
	}
	return g
}

// buildEpilogue creates the frozen live-out copy node for an exit taken
// after iteration iter, or nil when nothing is live out.
func (u *Unwound) buildEpilogue(g *graph.Graph, iter int) *graph.Node {
	if len(u.liveOutNames) == 0 {
		return nil
	}
	n := g.NewNode()
	n.Drain = true
	for vi, v := range u.liveOutNames {
		cp := &ir.Op{
			ID:     u.Alloc.OpID(),
			Origin: 1000 + vi,
			Iter:   ir.NoIter,
			Index:  ir.NoIndex,
			Kind:   ir.Copy,
			Dst:    u.LiveOut[v],
			Src:    [2]ir.Reg{u.epilogues[iter][vi]},
			Frozen: true,
		}
		g.AddOp(cp, n.Root)
	}
	return n
}

// SeqCycles is the sequential execution cost of n iterations: one cycle
// per original (pre-optimization) operation including loop control.
func (u *Unwound) SeqCycles(n int) int { return n * u.Spec.SeqOpsPerIter() }

// Removed reports how many operations redundant-operation removal
// eliminated.
func (u *Unwound) Removed() int { return u.removed }
