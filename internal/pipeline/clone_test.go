package pipeline

import (
	"context"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func cloneTestLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "clone-loop",
		Body: []ir.BodyOp{
			ir.BLoad("a", ir.Aff("X", 1, -1)),
			ir.BLoad("b", ir.Aff("Y", 1, 0)),
			ir.BSub("c", "b", "a"),
			ir.BMul("e", "c", "c"),
			ir.BStore(ir.Aff("X", 1, 0), "e"),
		},
		Start: 1, Step: 1, TripVar: "n", LiveOut: []string{"e"},
	}
}

// TestUnwoundCloneIdentical deep-clones a scheduled pipeline and
// requires the copy to be structurally indistinguishable: same graph
// rendering, valid invariants, same op list, and an allocator that
// continues from the same point.
func TestUnwoundCloneIdentical(t *testing.T) {
	res, err := PerfectPipeline(context.Background(), cloneTestLoop(), DefaultConfig(machine.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	uw := res.Unwound
	c := uw.Clone()

	if err := c.G.Validate(); err != nil {
		t.Fatalf("cloned graph invalid: %v", err)
	}
	if got, want := c.G.String(), uw.G.String(); got != want {
		t.Errorf("clone renders differently:\n--- original ---\n%s\n--- clone ---\n%s", want, got)
	}
	if len(c.Ops) != len(uw.Ops) {
		t.Fatalf("clone has %d ops, original %d", len(c.Ops), len(uw.Ops))
	}
	for i := range c.Ops {
		if c.Ops[i] == uw.Ops[i] {
			t.Fatalf("op %d is shared, not cloned", i)
		}
		if c.Ops[i].String() != uw.Ops[i].String() {
			t.Errorf("op %d differs: %s != %s", i, c.Ops[i], uw.Ops[i])
		}
	}
	if c.Alloc == uw.Alloc {
		t.Fatal("allocator shared between clone and original")
	}
	if c.Alloc.NumOps() != uw.Alloc.NumOps() || c.Alloc.NumRegs() != uw.Alloc.NumRegs() {
		t.Errorf("allocator state diverged: ops %d/%d regs %d/%d",
			c.Alloc.NumOps(), uw.Alloc.NumOps(), c.Alloc.NumRegs(), uw.Alloc.NumRegs())
	}
}

// TestCloneIsolation mutates the clone and requires the original to be
// untouched.
func TestCloneIsolation(t *testing.T) {
	res, err := PerfectPipeline(context.Background(), cloneTestLoop(), DefaultConfig(machine.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	uw := res.Unwound
	before := uw.G.String()

	c := res.Clone()
	g := c.Unwound.G
	// Remove every op of the first main-chain node of the clone.
	n := g.MainChain()[0]
	for _, op := range n.Ops() {
		g.RemoveOp(op)
	}
	g.SpliceOutEmpty(n)

	if uw.G.String() != before {
		t.Error("mutating the clone changed the original graph")
	}
	if err := uw.G.Validate(); err != nil {
		t.Errorf("original graph invalid after clone mutation: %v", err)
	}
}

// TestCloneSimulatesIdentically runs the cloned schedule in the
// simulator against the original's results.
func TestCloneSimulatesIdentically(t *testing.T) {
	spec := cloneTestLoop()
	res, err := PerfectPipeline(context.Background(), spec, DefaultConfig(machine.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	clone := res.Clone()
	arrays := map[string][]int64{"X": make([]int64, res.U+4), "Y": make([]int64, res.U+4)}
	for i := range arrays["Y"] {
		arrays["Y"][i] = int64(i%5 + 1)
	}
	vars := map[string]int64{}
	trips := []int64{spec.Start + 1, spec.Start + int64(res.U)}
	if err := ValidateSemantics(res, vars, arrays, trips); err != nil {
		t.Fatalf("original: %v", err)
	}
	if err := ValidateSemantics(clone, vars, arrays, trips); err != nil {
		t.Fatalf("clone: %v", err)
	}
}
