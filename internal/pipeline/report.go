package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// KernelReport summarizes the converged kernel's resource usage — the
// quantity GRiP's integrated resource constraints are supposed to
// maximize ("a schedule that would execute at the peak capacity of the
// machine", section 1).
type KernelReport struct {
	Rows        int
	IterSpan    int
	OpsPerRow   []int
	CJsPerRow   []int
	Utilization float64 // fraction of FU slots filled, 0..1 (1 for unlimited machines means fully dependence-bound)
}

// Report computes the kernel report for a converged result on machine m.
// Returns nil when the pipeline did not converge.
func (r *Result) Report(m machine.Machine) *KernelReport {
	if r.Kernel == nil || r.Unwound == nil || r.Unwound.G == nil {
		return nil
	}
	chain := r.Unwound.G.MainChain()
	k := r.Kernel
	if k.Start+k.Rows > len(chain) {
		return nil
	}
	rep := &KernelReport{Rows: k.Rows, IterSpan: k.IterSpan}
	totalOps := 0
	for _, n := range chain[k.Start : k.Start+k.Rows] {
		ops := n.OpCount()
		rep.OpsPerRow = append(rep.OpsPerRow, ops)
		rep.CJsPerRow = append(rep.CJsPerRow, n.BranchCount())
		totalOps += ops
	}
	if !m.InfiniteOps() && k.Rows > 0 {
		rep.Utilization = float64(totalOps) / float64(m.OpSlots*k.Rows)
	} else {
		rep.Utilization = 1
	}
	return rep
}

// String renders the report.
func (rep *KernelReport) String() string {
	var rows []string
	for i, ops := range rep.OpsPerRow {
		rows = append(rows, fmt.Sprintf("%d+%dcj", ops, rep.CJsPerRow[i]))
	}
	return fmt.Sprintf("kernel %d rows / %d iterations, rows [%s], utilization %.0f%%",
		rep.Rows, rep.IterSpan, strings.Join(rows, " "), rep.Utilization*100)
}
