package pipeline

import (
	"repro/internal/ir"
)

// Clone deep-copies the unwound program: the allocator, the operation
// list, and (when built) the scheduled graph. The clone is fully
// independent — transformations applied to it allocate the same IDs and
// produce the same schedules as if they had been applied to the
// original, so a scheduling phase computed once can be reused as the
// starting point of several mutating post-passes (POST's phase 1).
func (u *Unwound) Clone() *Unwound {
	c := &Unwound{
		Spec:         u.Spec,
		U:            u.U,
		Alloc:        u.Alloc.Clone(),
		LiveIn:       make(map[string]ir.Reg, len(u.LiveIn)),
		LiveOut:      make(map[string]ir.Reg, len(u.LiveOut)),
		ExitLive:     make(map[ir.Reg]bool, len(u.ExitLive)),
		liveOutNames: append([]string(nil), u.liveOutNames...),
		removed:      u.removed,
	}
	for k, v := range u.LiveIn {
		c.LiveIn[k] = v
	}
	for k, v := range u.LiveOut {
		c.LiveOut[k] = v
	}
	for k, v := range u.ExitLive {
		c.ExitLive[k] = v
	}
	for _, snap := range u.epilogues {
		c.epilogues = append(c.epilogues, append([]ir.Reg(nil), snap...))
	}
	if u.G == nil {
		for _, op := range u.Ops {
			d := *op
			c.Ops = append(c.Ops, &d)
		}
		return c
	}
	g, byID := u.G.Clone(c.Alloc)
	c.G = g
	c.Ops = make([]*ir.Op, 0, len(u.Ops))
	for _, op := range u.Ops {
		if op.ID < len(byID) && byID[op.ID] != nil {
			c.Ops = append(c.Ops, byID[op.ID])
			continue
		}
		// Ops removed from the graph by optimization keep plain copies.
		d := *op
		c.Ops = append(c.Ops, &d)
	}
	return c
}

// Clone deep-copies the result, including the unwound program and its
// scheduled graph, so the copy can be mutated (re-scheduled, broken,
// refilled) without touching the original.
func (r *Result) Clone() *Result {
	c := *r
	if r.Kernel != nil {
		k := *r.Kernel
		c.Kernel = &k
	}
	if r.Unwound != nil {
		c.Unwound = r.Unwound.Clone()
	}
	return &c
}

// CloneRaw implements sched.RawCloner: results shared through result
// caches are read-only, and consumers that need a mutable copy (the
// validation path allocates array IDs on the result's allocator) take
// one through this.
func (r *Result) CloneRaw() any { return r.Clone() }
