package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// randomLoopSpec generates a well-formed loop body over a few arrays and
// scalars: loads (affine offsets in a small range), arithmetic over
// previously defined values, optional accumulators (loop-carried), and
// stores. Offsets can reach backwards, producing genuine loop-carried
// memory recurrences.
func randomLoopSpec(rng *rand.Rand) *ir.LoopSpec {
	spec := &ir.LoopSpec{
		Name:    "rand",
		Step:    1,
		Start:   2, // leaves room for negative offsets
		TripVar: "n",
		LiveIn:  []string{"c1", "c2"},
	}
	avail := []string{"c1", "c2"}
	arrays := []string{"A", "B", "C"}
	tmp := 0
	newVar := func() string {
		tmp++
		return fmt.Sprintf("t%d", tmp)
	}
	// Optional accumulator.
	if rng.Intn(2) == 0 {
		spec.LiveIn = append(spec.LiveIn, "acc")
		spec.LiveOut = append(spec.LiveOut, "acc")
		avail = append(avail, "acc")
	}
	nOps := 4 + rng.Intn(8)
	stores := 0
	for i := 0; i < nOps; i++ {
		switch rng.Intn(5) {
		case 0, 1: // load
			v := newVar()
			spec.Body = append(spec.Body, ir.BLoad(v,
				ir.Aff(arrays[rng.Intn(len(arrays))], 1, int64(rng.Intn(5)-2))))
			avail = append(avail, v)
		case 2, 3: // arithmetic
			v := newVar()
			a := avail[rng.Intn(len(avail))]
			b := avail[rng.Intn(len(avail))]
			kind := []ir.Opcode{ir.Add, ir.Sub, ir.Mul}[rng.Intn(3)]
			spec.Body = append(spec.Body, ir.BodyOp{Kind: kind, Dst: v, A: a, B: b})
			avail = append(avail, v)
		default: // store
			spec.Body = append(spec.Body,
				ir.BStore(ir.Aff(arrays[rng.Intn(len(arrays))], 1, int64(rng.Intn(3)-1)),
					avail[rng.Intn(len(avail))]))
			stores++
		}
	}
	// Accumulator update and at least one store so the loop is observable.
	if len(spec.LiveOut) > 0 {
		spec.Body = append(spec.Body, ir.BAdd("acc", "acc", avail[rng.Intn(len(avail))]))
	}
	if stores == 0 {
		spec.Body = append(spec.Body, ir.BStore(ir.Aff("C", 1, 0), avail[len(avail)-1]))
	}
	return spec
}

// TestRandomLoopsPipelineCorrectly is the end-to-end property test: for
// random loops, random machines, and both schedulers' settings, the
// pipelined program must be semantically identical to the original for
// full and early-exit trip counts, and the kernel rate must respect the
// branch-slot floor.
func TestRandomLoopsPipelineCorrectly(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			spec := randomLoopSpec(rng)
			if err := spec.Validate(); err != nil {
				t.Fatalf("generator produced invalid spec: %v", err)
			}
			fus := []int{2, 4, 8}[rng.Intn(3)]
			cfg := DefaultConfig(machine.New(fus))
			cfg.Optimize = rng.Intn(2) == 0
			cfg.MaxUnwind = 48
			res, err := PerfectPipeline(context.Background(), spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.CyclesPerIter < 0.999 {
				t.Fatalf("rate %.3f beats the branch-slot floor", res.CyclesPerIter)
			}
			arrays := map[string][]int64{}
			for _, a := range []string{"A", "B", "C"} {
				vals := make([]int64, res.U+8)
				for i := range vals {
					vals[i] = int64(rng.Intn(9) - 4)
				}
				arrays[a] = vals
			}
			vars := map[string]int64{"c1": int64(rng.Intn(5)), "c2": int64(rng.Intn(5)), "acc": 1}
			trips := []int64{spec.Start + 1, spec.Start + int64(res.U)/2, spec.Start + int64(res.U)}
			if err := ValidateSemantics(res, vars, arrays, trips); err != nil {
				t.Fatalf("fus=%d optimize=%v: %v", fus, cfg.Optimize, err)
			}
		})
	}
}
