package pipeline

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/ps"
	"repro/internal/sim"
)

// Config controls a pipelining run.
type Config struct {
	Machine machine.Machine
	// Unwind fixes the unwind factor; 0 means automatic (try a ladder
	// of factors until the pattern converges).
	Unwind int
	// MaxUnwind caps automatic unwinding.
	MaxUnwind int
	// Optimize enables redundant-operation removal.
	Optimize bool
	// GapPrevention enables the section 3.3 machinery (required for
	// convergence; switch off to reproduce the Figure 9 gaps).
	GapPrevention bool
	// EmptyPrelude, Renaming: passed through to the GRiP scheduler.
	EmptyPrelude int
	Renaming     bool
	// Periods is the pattern-verification length (default 3).
	Periods int
	// TraceNode is passed to the scheduler for Figure 11-style traces.
	TraceNode func(n *graph.Node, moveable []*ir.Op)
	// CrossCheck runs the scheduler with its retained reference pick
	// scan cross-checking the incremental candidate structure on every
	// pick (testing only; like TraceNode it cannot change the schedule
	// and is excluded from Knobs).
	CrossCheck bool
}

// Defaults applied when the corresponding Config field is zero.
const (
	// DefaultMaxUnwind caps the automatic unwind ladder.
	DefaultMaxUnwind = 96
	// DefaultPeriods is the pattern-verification length.
	DefaultPeriods = 3
)

// DefaultConfig returns the paper-faithful configuration for machine m.
func DefaultConfig(m machine.Machine) Config {
	return Config{
		Machine:       m,
		MaxUnwind:     DefaultMaxUnwind,
		Optimize:      true,
		GapPrevention: true,
		Periods:       DefaultPeriods,
	}
}

// Knobs returns a canonical encoding of the machine-independent
// scheduling knobs, normalized so a zero-valued defaulted field
// (MaxUnwind, Periods) encodes identically to its explicit default.
// TraceNode is diagnostic output and deliberately excluded: it cannot
// change the schedule.
func (c Config) Knobs() string {
	max := c.MaxUnwind
	if max <= 0 {
		max = DefaultMaxUnwind
	}
	per := c.Periods
	if per <= 0 {
		per = DefaultPeriods
	}
	return fmt.Sprintf("cfg|u=%d|max=%d|opt=%t|gap=%t|pre=%d|ren=%t|per=%d",
		c.Unwind, max, c.Optimize, c.GapPrevention, c.EmptyPrelude, c.Renaming, per)
}

// Fingerprint returns a canonical key of everything that determines a
// pipelining run's output — the machine model and the scheduling knobs
// — in the same spirit as ir.LoopSpec.Fingerprint. Joined with a loop
// fingerprint it uniquely identifies a (loop, machine, configuration)
// experiment, the unit result caches key on.
func (c Config) Fingerprint() string {
	return c.Machine.Fingerprint() + "|" + c.Knobs()
}

// Result reports a pipelining run.
type Result struct {
	Spec      *ir.LoopSpec
	U         int
	Converged bool
	Kernel    *Kernel
	// CyclesPerIter is the steady-state cost of one source iteration
	// (from the kernel when converged, otherwise measured mid-schedule).
	CyclesPerIter float64
	// Speedup is sequential cycles per iteration (original operation
	// count) divided by CyclesPerIter — the paper's Table 1 metric.
	Speedup float64
	// Rows is the length of the scheduled main chain.
	Rows    int
	Stats   core.Stats
	Unwound *Unwound
}

// PerfectPipeline unwinds, schedules with GRiP, and detects the
// steady-state kernel, increasing the unwind factor until the pattern
// converges (or MaxUnwind is reached, in which case the best-effort
// result has Converged false — which is itself meaningful: without gap
// prevention many loops never converge, the paper's Figure 9).
//
// ctx cancels the run: the convergence ladder checks it between unwind
// factors and the GRiP step loop checks it between migrations, so a
// cancelled or timed-out context stops the computation promptly and
// returns its error.
func PerfectPipeline(ctx context.Context, spec *ir.LoopSpec, cfg Config) (*Result, error) {
	factors := []int{cfg.Unwind}
	if cfg.Unwind == 0 {
		max := cfg.MaxUnwind
		if max <= 0 {
			max = DefaultMaxUnwind
		}
		factors = nil
		for u := 12; u <= max; u *= 2 {
			factors = append(factors, u)
		}
	}
	var last *Result
	for _, u := range factors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := pipelineOnce(ctx, spec, cfg, u)
		if err != nil {
			return nil, err
		}
		last = res
		if res.Converged {
			return res, nil
		}
	}
	return last, nil
}

func pipelineOnce(ctx context.Context, spec *ir.LoopSpec, cfg Config, u int) (*Result, error) {
	uw, err := Unwind(spec, u)
	if err != nil {
		return nil, err
	}
	if cfg.Optimize {
		uw.Optimize()
	}
	g := uw.BuildGraph()
	ddg := deps.Build(uw.Ops)
	pctx := ps.NewCtx(g, cfg.Machine, uw.ExitLive)
	pctx.D = ddg
	stats, err := core.Schedule(ctx, pctx, uw.Ops, deps.NewPriority(ddg), core.Options{
		GapPrevention: cfg.GapPrevention,
		EmptyPrelude:  cfg.EmptyPrelude,
		Renaming:      cfg.Renaming,
		TraceNode:     cfg.TraceNode,
		CrossCheck:    cfg.CrossCheck,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, U: u, Stats: stats, Unwound: uw, Rows: len(g.MainChain())}
	periods := cfg.Periods
	if periods == 0 {
		periods = DefaultPeriods
	}
	if k, ok := DetectPattern(g, periods); ok {
		res.Converged = true
		res.Kernel = k
		res.CyclesPerIter = k.CyclesPerIter()
	} else if rate, ok := MeasuredRate(g, u/4, 3*u/4); ok {
		res.CyclesPerIter = rate
	} else {
		res.CyclesPerIter = float64(res.Rows) / float64(u)
	}
	if res.CyclesPerIter > 0 {
		res.Speedup = float64(spec.SeqOpsPerIter()) / res.CyclesPerIter
	}
	return res, nil
}

// SimplePipeline implements the paper's "simple software pipelining"
// comparison (Figure 6): unwind n iterations, compact the block with
// GRiP as straight-line code, and retain the back edge. The speedup is
// over the whole n-iteration block, with no steady-state reformation.
func SimplePipeline(ctx context.Context, spec *ir.LoopSpec, cfg Config, n int) (*Result, error) {
	uw, err := Unwind(spec, n)
	if err != nil {
		return nil, err
	}
	if cfg.Optimize {
		uw.Optimize()
	}
	g := uw.BuildGraph()
	ddg := deps.Build(uw.Ops)
	pctx := ps.NewCtx(g, cfg.Machine, uw.ExitLive)
	pctx.D = ddg
	stats, err := core.Schedule(ctx, pctx, uw.Ops, deps.NewPriority(ddg), core.Options{
		Renaming:   cfg.Renaming,
		CrossCheck: cfg.CrossCheck,
	})
	if err != nil {
		return nil, err
	}
	rows := len(g.MainChain())
	res := &Result{
		Spec: spec, U: n, Stats: stats, Unwound: uw, Rows: rows,
		CyclesPerIter: float64(rows) / float64(n),
	}
	res.Speedup = float64(spec.SeqOpsPerIter()) / res.CyclesPerIter
	return res, nil
}

// InitState builds an initial machine state: live-in scalars from vars
// (the trip variable included), arrays by name, and the loop counter at
// its start value. Two Unwound instances built from the same spec and
// factor number their registers identically, so a state built on one is
// valid for the other.
func (u *Unwound) InitState(vars map[string]int64, arrays map[string][]int64) *sim.State {
	s := sim.NewState()
	for v, r := range u.LiveIn {
		s.SetReg(r, vars[v])
	}
	s.SetReg(u.LiveIn[ir.CounterVar], u.Spec.Start)
	// Allocate array IDs in sorted name order: arrays the loop itself
	// never references would otherwise get IDs in map iteration order,
	// making states from two Unwound instances incomparable.
	names := make([]string, 0, len(arrays))
	for name := range arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.SetArray(u.Alloc.Array(name), arrays[name])
	}
	return s
}

// ValidateSemantics proves a scheduled pipeline graph equivalent to the
// original loop: a fresh, unoptimized, unscheduled unwinding is executed
// against the same inputs for every given trip count (trips below the
// unwind factor exercise the drain code that move-cj splitting
// produced), and memory plus live-out registers must match.
func ValidateSemantics(res *Result, vars map[string]int64, arrays map[string][]int64, trips []int64) error {
	ref, err := Unwind(res.Spec, res.U)
	if err != nil {
		return err
	}
	refG := ref.BuildGraph()
	maxCycles := 100 * (ref.SeqCycles(res.U) + 100)
	for _, trip := range trips {
		v := map[string]int64{}
		for k, val := range vars {
			v[k] = val
		}
		v[res.Spec.TripVar] = trip

		refRes, err := sim.Run(refG, ref.InitState(v, arrays), maxCycles)
		if err != nil {
			return fmt.Errorf("trip %d: reference: %w", trip, err)
		}
		gotRes, err := sim.Run(res.Unwound.G, res.Unwound.InitState(v, arrays), maxCycles)
		if err != nil {
			return fmt.Errorf("trip %d: scheduled: %w", trip, err)
		}
		var outRegs []ir.Reg
		for _, r := range ref.LiveOut {
			outRegs = append(outRegs, r)
		}
		if err := sim.Equivalent(refRes.State, gotRes.State, outRegs); err != nil {
			return fmt.Errorf("trip %d: %w", trip, err)
		}
	}
	return nil
}
