package pipeline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestUnwindDeterministicNumbering(t *testing.T) {
	a, err := Unwind(dotLoop(), 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unwind(dotLoop(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("op counts differ")
	}
	for i := range a.Ops {
		if a.Ops[i].String() != b.Ops[i].String() {
			t.Fatalf("op %d differs: %v vs %v", i, a.Ops[i], b.Ops[i])
		}
	}
	if a.LiveIn["q"] != b.LiveIn["q"] || a.LiveOut["q"] != b.LiveOut["q"] {
		t.Fatal("interface registers differ between identical unwinds")
	}
}

func TestUnwindSSAProperty(t *testing.T) {
	uw, err := Unwind(dotLoop(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defs := map[ir.Reg]bool{}
	for _, op := range uw.Ops {
		if d := op.Def(); d != ir.NoReg {
			if defs[d] {
				t.Fatalf("register r%d defined twice (not SSA)", d)
			}
			defs[d] = true
		}
	}
}

func TestUnwindControlShape(t *testing.T) {
	uw, err := Unwind(dotLoop(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(uw.Ops), 3*6; got != want {
		t.Fatalf("ops = %d, want %d", got, want)
	}
	cjs := 0
	for _, op := range uw.Ops {
		if op.IsBranch() {
			cjs++
			if op.Origin != len(dotLoop().Body)+1 {
				t.Fatalf("cj origin = %d", op.Origin)
			}
		}
	}
	if cjs != 3 {
		t.Fatalf("cjs = %d, want 3", cjs)
	}
	if uw.SeqCycles(5) != 30 {
		t.Fatalf("SeqCycles(5) = %d", uw.SeqCycles(5))
	}
}

func TestOptimizeForwardsRecurrenceLoad(t *testing.T) {
	// LL5-shaped loop: load X[k-1] after store X[k-1] must become a
	// copy, then be propagated and eliminated.
	spec := &ir.LoopSpec{
		Name: "t",
		Body: []ir.BodyOp{
			ir.BLoad("a", ir.Aff("X", 1, -1)),
			ir.BLoad("b", ir.Aff("Y", 1, 0)),
			ir.BSub("c", "b", "a"),
			ir.BStore(ir.Aff("X", 1, 0), "c"),
		},
		Start: 1, Step: 1, TripVar: "n",
	}
	uw, err := Unwind(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	before := len(uw.Ops)
	uw.Optimize()
	// One load per iteration after the first should be gone entirely.
	if uw.Removed() < 4 {
		t.Fatalf("removed %d ops (of %d), want >= 4", uw.Removed(), before)
	}
	loads := 0
	for _, op := range uw.Ops {
		if op.IsLoad() && op.Mem.Array == uw.Alloc.Array("X") {
			loads++
		}
	}
	if loads != 1 {
		t.Fatalf("X loads remaining = %d, want 1 (first iteration only)", loads)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	spec := saxpyLoop()
	res, err := PerfectPipeline(context.Background(), spec, DefaultConfig(machine.New(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSemantics(res, map[string]int64{"q": 1, "r": 2, "t": 3},
		arrays(200), []int64{1, 4, int64(res.U)}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeIndirectStoreInvalidates(t *testing.T) {
	// An indirect store must prevent forwarding across it.
	spec := &ir.LoopSpec{
		Name: "ind",
		Body: []ir.BodyOp{
			ir.BLoad("i", ir.Aff("IX", 1, 0)),
			ir.BLoad("a", ir.Aff("X", 1, 0)),
			ir.BStore(ir.Ind("X", "i", 0), "a"), // may clobber any X cell
			ir.BLoad("b", ir.Aff("X", 1, 0)),    // must NOT forward from a
			ir.BStore(ir.Aff("Y", 1, 0), "b"),
		},
		Step: 1, TripVar: "n",
	}
	uw, err := Unwind(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	uw.Optimize()
	// The second load of each iteration must survive.
	loads := 0
	for _, op := range uw.Ops {
		if op.IsLoad() && op.Mem.Array == uw.Alloc.Array("X") && !op.Mem.Indirect() {
			loads++
		}
	}
	if loads != 2*4 {
		t.Fatalf("X loads = %d, want 8 (no forwarding across indirect store)", loads)
	}
}

func TestDetectPatternRejectsPreludeWork(t *testing.T) {
	// The Figure 9 divergence: without gap prevention on infinite
	// resources the short chains pile into the prelude and no valid
	// kernel exists, even though rows repeat.
	spec := figExample()
	cfg := DefaultConfig(machine.Infinite())
	cfg.Optimize = false
	cfg.GapPrevention = false
	cfg.Unwind = 16
	res, err := PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("gap-free convergence reported without gap prevention")
	}

	cfg.GapPrevention = true
	res2, err := PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("gap prevention failed to converge")
	}
	if res2.Kernel.CyclesPerIter() > 1.01 {
		t.Fatalf("gapless kernel rate %.2f, want 1 cycle/iter on infinite resources",
			res2.Kernel.CyclesPerIter())
	}
}

// figExample mirrors harness.PaperExampleLoop (defined here to avoid an
// import cycle): a->b->c long chain with carried a, plus two short
// independent chains.
func figExample() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "fig",
		Body: []ir.BodyOp{
			ir.BAddI("x", "x", 1),
			ir.BMulI("y", "x", 3),
			ir.BStore(ir.Aff("OUT", 1, 0), "y"),
			ir.BLoad("p", ir.Aff("P", 1, 0)),
			ir.BStore(ir.Aff("Q", 1, 0), "p"),
			ir.BLoad("r", ir.Aff("R", 1, 0)),
			ir.BStore(ir.Aff("S", 1, 0), "r"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"x"}, LiveOut: []string{"x"},
	}
}

func TestSimplePipelineSlowerThanPerfect(t *testing.T) {
	spec := figExample()
	cfg := DefaultConfig(machine.New(3))
	cfg.Optimize = false
	simple, err := SimplePipeline(context.Background(), spec, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !perfect.Converged {
		t.Fatal("perfect pipelining did not converge")
	}
	if perfect.Speedup < simple.Speedup {
		t.Fatalf("perfect %.2f < simple %.2f", perfect.Speedup, simple.Speedup)
	}
}

func TestMeasuredRate(t *testing.T) {
	spec := dotLoop()
	cfg := DefaultConfig(machine.New(4))
	cfg.Unwind = 24
	res, err := PerfectPipeline(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate, ok := MeasuredRate(res.Unwound.G, 6, 18)
	if !ok {
		t.Fatal("no measured rate")
	}
	if diff := rate - res.CyclesPerIter; diff > 0.3 || diff < -0.3 {
		t.Fatalf("measured %.2f vs kernel %.2f", rate, res.CyclesPerIter)
	}
}

func TestKernelString(t *testing.T) {
	k := &Kernel{Start: 3, Rows: 5, IterSpan: 4}
	if k.CyclesPerIter() != 1.25 {
		t.Fatalf("CyclesPerIter = %v", k.CyclesPerIter())
	}
	if !strings.Contains(k.String(), "4 iter/5 cycles") {
		t.Fatalf("String = %q", k.String())
	}
}

func TestInitStateBindsInterface(t *testing.T) {
	uw, err := Unwind(dotLoop(), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := uw.InitState(map[string]int64{"q": 7, "n": 4}, map[string][]int64{"Z": {1, 2}, "X": {3, 4}})
	if st.Reg(uw.LiveIn["q"]) != 7 {
		t.Fatal("live-in scalar not bound")
	}
	if st.Reg(uw.LiveIn[ir.CounterVar]) != dotLoop().Start {
		t.Fatal("counter not initialized")
	}
	if st.MemAt(uw.Alloc.Array("Z"), 1) != 2 {
		t.Fatal("array not bound")
	}
}

func TestKernelReport(t *testing.T) {
	res, err := PerfectPipeline(context.Background(), saxpyLoop(), DefaultConfig(machine.New(4)))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(machine.New(4))
	if rep == nil {
		t.Fatal("no report for converged result")
	}
	if rep.Rows != res.Kernel.Rows || rep.IterSpan != res.Kernel.IterSpan {
		t.Fatalf("report mismatch: %+v vs %v", rep, res.Kernel)
	}
	// LL1-shaped loop at 4 FUs is resource-bound: utilization must be
	// essentially full.
	if rep.Utilization < 0.95 {
		t.Fatalf("utilization %.2f, want ~1.0 (%s)", rep.Utilization, rep)
	}
	if !strings.Contains(rep.String(), "utilization") {
		t.Fatalf("String = %q", rep.String())
	}
}
