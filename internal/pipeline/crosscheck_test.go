package pipeline

import (
	"context"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// TestPipelineCrossCheck runs full pipelining — unwinding, migration
// with node splits and drain cloning, gap-prevention suspensions, and
// renaming compensations — with the scheduler's retained reference scan
// verifying every pick of the incremental candidate structure and its
// invariants. Any divergence surfaces as a scheduling error.
func TestPipelineCrossCheck(t *testing.T) {
	cases := []struct {
		name     string
		spec     *ir.LoopSpec
		gap, ren bool
	}{
		{"dot-gap", dotLoop(), true, false},
		{"dot-renaming", dotLoop(), true, true},
		{"fig-gap", figExample(), true, false},
		{"fig-nogap", figExample(), false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(machine.New(4))
			cfg.GapPrevention = tc.gap
			cfg.Renaming = tc.ren
			cfg.Unwind = 12
			cfg.CrossCheck = true
			res, err := PerfectPipeline(context.Background(), tc.spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Unwound.G.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
