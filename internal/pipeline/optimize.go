package pipeline

import (
	"repro/internal/ir"
	"repro/internal/sim"
)

// Optimize performs the paper's redundant-operation removal (section 4:
// "as a result of compaction, some operations in the original code
// become redundant and are removed ... best performed incrementally as
// part of the scheduling process in order to ensure that unnecessary
// operations do not compete with useful operations for resources").
//
// We run it as a pre-scheduling pass over the unwound chain, where every
// affine address is a known constant, which makes the analysis exact:
//
//   - store→load forwarding: a load from a cell whose current value is
//     known to be in a register becomes a copy from that register;
//   - duplicate-load elimination: a load from a cell already loaded (with
//     no intervening may-alias store) becomes a copy;
//   - copy propagation: uses of copy targets are rewritten to the copy
//     sources (including the epilogue live-out bindings);
//   - dead-code elimination: operations whose results are never used and
//     are not observable are dropped.
//
// This is what makes some speedups exceed the functional-unit count, as
// the paper notes for Table 1: the sequential baseline still pays for
// the removed operations.
//
// Optimize must be called before BuildGraph.
func (u *Unwound) Optimize() {
	if u.G != nil {
		panic("pipeline: Optimize after BuildGraph")
	}
	before := len(u.Ops)
	u.forwardMemory()
	u.propagateCopies()
	u.eliminateDead()
	u.removed += before - len(u.Ops)
}

// forwardMemory rewrites loads whose value is statically known to be in
// a register into copies.
func (u *Unwound) forwardMemory() {
	known := map[sim.Key]ir.Reg{} // cell -> register holding its current value
	for _, op := range u.Ops {
		switch {
		case op.IsLoad() && !op.Mem.Indirect():
			key := sim.Key{Arr: op.Mem.Array, Idx: op.Mem.Index}
			if r, ok := known[key]; ok {
				// Forward: the load becomes a copy. Origin and
				// iteration tags survive so gap prevention still sees
				// the op as part of its iteration.
				op.Kind = ir.Copy
				op.Src[0] = r
				op.Mem = ir.MemRef{}
			} else {
				known[key] = op.Dst
			}
		case op.IsLoad(): // indirect load: nothing cacheable
		case op.IsStore() && !op.Mem.Indirect():
			known[sim.Key{Arr: op.Mem.Array, Idx: op.Mem.Index}] = op.Src[0]
		case op.IsStore():
			// Indirect store: invalidate every known cell of the array.
			for k := range known {
				if k.Arr == op.Mem.Array {
					delete(known, k)
				}
			}
		}
	}
}

// propagateCopies rewrites every use of a copy's target to the copy's
// source. Safe on the SSA-renamed chain: each register has exactly one
// definition, so the source register's value never changes after the
// copy executes.
func (u *Unwound) propagateCopies() {
	alias := map[ir.Reg]ir.Reg{}
	resolve := func(r ir.Reg) ir.Reg {
		for {
			a, ok := alias[r]
			if !ok {
				return r
			}
			r = a
		}
	}
	for _, op := range u.Ops {
		op.Src[0] = resolve(op.Src[0])
		op.Src[1] = resolve(op.Src[1])
		if op.Mem.IndexReg != ir.NoReg {
			op.Mem.IndexReg = resolve(op.Mem.IndexReg)
		}
		if op.IsCopy() {
			alias[op.Dst] = op.Src[0]
		}
	}
	for i := range u.epilogues {
		for j, r := range u.epilogues[i] {
			u.epilogues[i][j] = resolve(r)
		}
	}
}

// eliminateDead removes operations whose destination register is never
// read afterwards and is not observable at any exit. Stores and branches
// are always live.
func (u *Unwound) eliminateDead() {
	live := map[ir.Reg]bool{}
	for _, snap := range u.epilogues {
		for _, r := range snap {
			live[r] = true
		}
	}
	kept := make([]*ir.Op, 0, len(u.Ops))
	for i := len(u.Ops) - 1; i >= 0; i-- {
		op := u.Ops[i]
		d := op.Def()
		if d == ir.NoReg || live[d] {
			for _, r := range op.Uses(nil) {
				live[r] = true
			}
			kept = append(kept, op)
		}
	}
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	u.Ops = kept
}
