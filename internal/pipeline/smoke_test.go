package pipeline

import (
	"context"
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// dotLoop is an LL3-style inner product: q += z[k]*x[k].
func dotLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "dot",
		Body: []ir.BodyOp{
			ir.BLoad("t1", ir.Aff("Z", 1, 0)),
			ir.BLoad("t2", ir.Aff("X", 1, 0)),
			ir.BMul("t3", "t1", "t2"),
			ir.BAdd("q", "q", "t3"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

// saxpyLoop is an LL1-flavoured vectorizable loop:
// x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
func saxpyLoop() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "hydro",
		Body: []ir.BodyOp{
			ir.BLoad("z10", ir.Aff("Z", 1, 10)),
			ir.BLoad("z11", ir.Aff("Z", 1, 11)),
			ir.BMul("a", "r", "z10"),
			ir.BMul("b", "t", "z11"),
			ir.BAdd("c", "a", "b"),
			ir.BLoad("y", ir.Aff("Y", 1, 0)),
			ir.BMul("d", "y", "c"),
			ir.BAdd("e", "q", "d"),
			ir.BStore(ir.Aff("X", 1, 0), "e"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
	}
}

func arrays(n int) map[string][]int64 {
	mk := func(seed int64) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = (seed*int64(i))%17 + 1
		}
		return v
	}
	return map[string][]int64{"X": mk(3), "Y": mk(5), "Z": mk(7)}
}

func TestSmokePerfectPipelineDot(t *testing.T) {
	cfg := DefaultConfig(machine.New(4))
	res, err := PerfectPipeline(context.Background(), dotLoop(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dot @4FU: converged=%v U=%d kernel=%v cpi=%.3f speedup=%.2f stats=%+v",
		res.Converged, res.U, res.Kernel, res.CyclesPerIter, res.Speedup, res.Stats)
	if !res.Converged {
		t.Fatalf("dot loop did not converge")
	}
	if err := ValidateSemantics(res, map[string]int64{"q": 2}, arrays(128), []int64{1, 3, res.int64U() / 2, res.int64U()}); err != nil {
		t.Fatalf("semantics: %v", err)
	}
	if res.Speedup < 2.5 {
		t.Errorf("speedup %.2f unexpectedly low", res.Speedup)
	}
}

func (r *Result) int64U() int64 { return int64(r.U) }

func TestSmokePerfectPipelineSaxpy(t *testing.T) {
	for _, fus := range []int{2, 4, 8} {
		cfg := DefaultConfig(machine.New(fus))
		res, err := PerfectPipeline(context.Background(), saxpyLoop(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("hydro @%dFU: converged=%v U=%d kernel=%v cpi=%.3f speedup=%.2f barriers=%d",
			fus, res.Converged, res.U, res.Kernel, res.CyclesPerIter, res.Speedup, res.Stats.ResourceBarriers)
		if !res.Converged {
			t.Errorf("hydro @%dFU did not converge", fus)
			continue
		}
		if err := ValidateSemantics(res, map[string]int64{"q": 2, "r": 3, "t": 4}, arrays(160), []int64{2, 5, int64(res.U)}); err != nil {
			t.Errorf("@%dFU semantics: %v", fus, err)
		}
		want := math.Min(float64(fus), 11.0/1.0)
		if res.Speedup < 0.6*want {
			t.Errorf("@%dFU speedup %.2f far below expectation %.1f", fus, res.Speedup, want)
		}
	}
}
