package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/testutil"
)

func TestStraightLineExecution(t *testing.T) {
	testutil.LeakCheck(t)
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2, r3 := al.Reg("r1"), al.Reg("r2"), al.Reg("r3")
	arr := al.Array("X")

	n1 := graph.AppendOp(g, nil, &ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: r1, Imm: 6})
	n2 := graph.AppendOp(g, n1, &ir.Op{ID: al.OpID(), Kind: ir.Mul, Dst: r2, Src: [2]ir.Reg{r1}, Imm: 7, BImm: true})
	n3 := graph.AppendOp(g, n2, &ir.Op{ID: al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r2}, Mem: ir.MemRef{Array: arr, Index: 3}})
	graph.AppendOp(g, n3, &ir.Op{ID: al.OpID(), Kind: ir.Load, Dst: r3, Mem: ir.MemRef{Array: arr, Index: 3}})

	res, err := Run(g, NewState(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", res.Cycles)
	}
	if got := res.State.Reg(r3); got != 42 {
		t.Errorf("r3 = %d, want 42", got)
	}
	if got := res.State.MemAt(arr, 3); got != 42 {
		t.Errorf("X[3] = %d, want 42", got)
	}
}

func TestParallelFetchSemantics(t *testing.T) {
	testutil.LeakCheck(t)
	// One instruction containing both "r2 = r1 + 1" and "r1 = 100":
	// the add must read the OLD r1 (operands fetch at entry).
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2 := al.Reg("r1"), al.Reg("r2")
	n := g.NewNode()
	g.Entry = n
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Add, Dst: r2, Src: [2]ir.Reg{r1}, Imm: 1, BImm: true}, n.Root)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: r1, Imm: 100}, n.Root)

	init := NewState()
	init.SetReg(r1, 5)
	res, err := Run(g, init, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.Reg(r2); got != 6 {
		t.Errorf("r2 = %d, want 6 (entry value of r1)", got)
	}
	if got := res.State.Reg(r1); got != 100 {
		t.Errorf("r1 = %d, want 100", got)
	}
}

func TestParallelStoreLoadSameCell(t *testing.T) {
	testutil.LeakCheck(t)
	// A load and a store of the same cell in one instruction: the load
	// reads the entry value of memory.
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2 := al.Reg("r1"), al.Reg("r2")
	arr := al.Array("X")
	n := g.NewNode()
	g.Entry = n
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Load, Dst: r2, Mem: ir.MemRef{Array: arr, Index: 0}}, n.Root)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 0}}, n.Root)

	init := NewState()
	init.SetReg(r1, 9)
	init.SetMem(arr, 0, 4)
	res, err := Run(g, init, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.Reg(r2); got != 4 {
		t.Errorf("load got %d, want entry value 4", got)
	}
	if got := res.State.MemAt(arr, 0); got != 9 {
		t.Errorf("X[0] = %d, want 9", got)
	}
}

// branchGraph builds: n1 holds cj (r1 < 10), ops attached per-path:
// true side leads to a node storing 1, false side to a node storing 2.
func branchGraph(t *testing.T) (*graph.Graph, *ir.Alloc, ir.Reg, ir.Array) {
	t.Helper()
	al := ir.NewAlloc()
	g := graph.New(al)
	r1 := al.Reg("r1")
	one, two := al.Reg("one"), al.Reg("two")
	arr := al.Array("OUT")

	tN := g.NewNode()
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{one}, Mem: ir.MemRef{Array: arr, Index: 0}}, tN.Root)
	fN := g.NewNode()
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{two}, Mem: ir.MemRef{Array: arr, Index: 0}}, fN.Root)

	br := g.NewNode()
	cj := &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 10, BImm: true, Rel: ir.Lt}
	g.InsertBranchAtLeaf(br.Root, cj, tN, fN)
	g.Entry = br
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Seed the constant registers via an init instruction.
	pre := g.InsertBefore(br)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: one, Imm: 1}, pre.Root)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: two, Imm: 2}, pre.Root)
	return g, al, r1, arr
}

func TestBranchSelection(t *testing.T) {
	testutil.LeakCheck(t)
	g, _, r1, arr := branchGraph(t)
	for _, c := range []struct {
		r1   int64
		want int64
	}{{5, 1}, {50, 2}} {
		init := NewState()
		init.SetReg(r1, c.r1)
		res, err := Run(g, init, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.State.MemAt(arr, 0); got != c.want {
			t.Errorf("r1=%d: OUT[0] = %d, want %d", c.r1, got, c.want)
		}
	}
}

func TestPathConditionalCommit(t *testing.T) {
	testutil.LeakCheck(t)
	// An op attached to the true-side leaf vertex must not commit when
	// the branch goes false (IBM VLIW: store only along selected path).
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2 := al.Reg("r1"), al.Reg("r2")
	n := g.NewNode()
	cj := &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 0, BImm: true, Rel: ir.Gt}
	tLeaf, _ := g.InsertBranchAtLeaf(n.Root, cj, nil, nil)
	g.AddOp(&ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: r2, Imm: 77}, tLeaf)
	g.Entry = n

	init := NewState()
	init.SetReg(r1, 1) // true: op commits
	res, _ := Run(g, init, 10)
	if res.State.Reg(r2) != 77 {
		t.Error("true-path op did not commit on true outcome")
	}
	init2 := NewState()
	init2.SetReg(r1, -1) // false: op must not commit
	res2, _ := Run(g, init2, 10)
	if res2.State.Reg(r2) != 0 {
		t.Error("true-path op committed on false outcome")
	}
}

func TestCycleLimit(t *testing.T) {
	testutil.LeakCheck(t)
	al := ir.NewAlloc()
	g := graph.New(al)
	g.Label = "selfloop/deadbeef"
	n := g.NewNode()
	g.Entry = n
	g.RetargetLeaf(n.Root, n) // self loop
	_, err := Run(g, NewState(), 50)
	if err == nil {
		t.Fatal("expected cycle-limit error")
	}
	// The budget error must be classifiable without string matching and
	// must attribute the runaway program by its label — fuzz-found
	// livelocks are triaged from CI logs alone.
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("error does not wrap ErrCycleBudget: %v", err)
	}
	for _, want := range []string{"selfloop/deadbeef", "exceeded", "50"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestCycleLimitUnlabeled(t *testing.T) {
	testutil.LeakCheck(t)
	al := ir.NewAlloc()
	g := graph.New(al)
	n := g.NewNode()
	g.Entry = n
	g.RetargetLeaf(n.Root, n)
	_, err := Run(g, NewState(), 10)
	if err == nil || !strings.Contains(err.Error(), "unlabeled graph") {
		t.Fatalf("want unlabeled-graph budget error, got %v", err)
	}
}

func TestEquivalence(t *testing.T) {
	testutil.LeakCheck(t)
	a, b := NewState(), NewState()
	a.SetMem(1, 0, 5)
	b.SetMem(1, 0, 5)
	b.SetMem(2, 3, 0) // explicit zero equals missing cell
	if err := EquivalentMem(a, b); err != nil {
		t.Errorf("EquivalentMem: %v", err)
	}
	b.SetMem(1, 0, 6)
	if err := EquivalentMem(a, b); err == nil {
		t.Error("EquivalentMem must catch difference")
	}
	a2, b2 := NewState(), NewState()
	a2.SetReg(1, 3)
	if err := Equivalent(a2, b2, []ir.Reg{1}); err == nil {
		t.Error("Equivalent must catch register difference")
	}
	if err := Equivalent(a2, b2, []ir.Reg{2}); err != nil {
		t.Errorf("Equivalent over unobserved regs: %v", err)
	}
}

func TestStateCloneIsolation(t *testing.T) {
	testutil.LeakCheck(t)
	f := func(r uint8, v int64) bool {
		s := NewState()
		s.SetReg(ir.Reg(r)+1, v)
		c := s.Clone()
		c.SetReg(ir.Reg(r)+1, v+1)
		return s.Reg(ir.Reg(r)+1) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDumpDeterminism(t *testing.T) {
	testutil.LeakCheck(t)
	s := NewState()
	s.SetReg(2, 1)
	s.SetReg(1, 2)
	s.SetMem(1, 4, 9)
	s.SetMem(1, 2, 8)
	want := "r1=2 r2=1 A1[2]=8 A1[4]=9"
	if got := s.Dump(); got != want {
		t.Errorf("Dump = %q, want %q", got, want)
	}
}
