// Package sim executes VLIW program graphs under the IBM VLIW execution
// semantics of the paper's section 2:
//
//  1. operands of every operation are fetched at instruction entry;
//  2. results of all operations are computed;
//  3. only the results computed along the path selected by the
//     conditional jumps are stored;
//  4. the next instruction is the one reached through the selected
//     branches.
//
// The simulator is the ground truth for correctness: every scheduling
// transformation in this repository is validated by executing the
// program before and after and comparing observable state. One node is
// one cycle, matching the paper's unit-latency assumption.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ir"
)

// ErrCycleBudget is wrapped into Run's budget error, so callers — the
// fuzz harness classifying runaway schedules as livelocks rather than
// mismatches — can test for it with errors.Is instead of string
// matching.
var ErrCycleBudget = errors.New("exceeded cycle budget")

// Key addresses one memory cell.
type Key struct {
	Arr ir.Array
	Idx int64
}

// State is the machine state: registers and memory. Missing entries read
// as zero.
type State struct {
	Regs map[ir.Reg]int64
	Mem  map[Key]int64
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Regs: make(map[ir.Reg]int64), Mem: make(map[Key]int64)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		Regs: make(map[ir.Reg]int64, len(s.Regs)),
		Mem:  make(map[Key]int64, len(s.Mem)),
	}
	for k, v := range s.Regs {
		c.Regs[k] = v
	}
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return c
}

// SetReg writes a register.
func (s *State) SetReg(r ir.Reg, v int64) { s.Regs[r] = v }

// Reg reads a register (0 if never written).
func (s *State) Reg(r ir.Reg) int64 { return s.Regs[r] }

// SetMem writes one memory cell.
func (s *State) SetMem(arr ir.Array, idx, v int64) { s.Mem[Key{arr, idx}] = v }

// MemAt reads one memory cell (0 if never written).
func (s *State) MemAt(arr ir.Array, idx int64) int64 { return s.Mem[Key{arr, idx}] }

// SetArray initializes arr[0..len(vals)) from a slice.
func (s *State) SetArray(arr ir.Array, vals []int64) {
	for i, v := range vals {
		s.SetMem(arr, int64(i), v)
	}
}

// ReadArray copies arr[0..n) into a slice.
func (s *State) ReadArray(arr ir.Array, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = s.MemAt(arr, int64(i))
	}
	return out
}

func (s *State) addr(m ir.MemRef) Key {
	idx := m.Index
	if m.IndexReg != ir.NoReg {
		idx += s.Reg(m.IndexReg)
	}
	return Key{m.Array, idx}
}

// Result is the outcome of a run.
type Result struct {
	Cycles int
	State  *State
	// Visits counts executions per node ID (for drain-coverage checks).
	Visits map[int]int
}

// Run executes the graph from its entry until a nil successor is
// reached, for at most maxCycles instructions.
func Run(g *graph.Graph, init *State, maxCycles int) (*Result, error) {
	st := init.Clone()
	res := &Result{State: st, Visits: make(map[int]int)}
	type write struct {
		reg ir.Reg
		mem Key
		val int64
		st  bool
	}
	var writes []write
	for n := g.Entry; n != nil; {
		if res.Cycles >= maxCycles {
			label := g.Label
			if label == "" {
				label = "unlabeled graph"
			}
			return nil, fmt.Errorf("sim: %s: %w of %d cycles at n%d", label, ErrCycleBudget, maxCycles, n.ID)
		}
		res.Cycles++
		res.Visits[n.ID]++

		// All fetches use entry state; collect the selected path's
		// writes and apply them after the whole instruction.
		writes = writes[:0]
		v := n.Root
		var next *graph.Node
		for {
			for _, op := range v.Ops {
				switch {
				case op.IsStore():
					writes = append(writes, write{mem: st.addr(op.Mem), val: st.Reg(op.Src[0]), st: true})
				case op.Def() != ir.NoReg:
					val := op.Eval(st.Reg, func(m ir.MemRef) int64 { return st.Mem[st.addr(m)] })
					writes = append(writes, write{reg: op.Def(), val: val})
				}
			}
			if v.IsLeaf() {
				next = v.Succ
				break
			}
			if v.CJ.CondHolds(st.Reg) {
				v = v.True
			} else {
				v = v.False
			}
		}
		for _, w := range writes {
			if w.st {
				st.Mem[w.mem] = w.val
			} else {
				st.Regs[w.reg] = w.val
			}
		}
		n = next
	}
	return res, nil
}

// EquivalentMem reports whether two states agree on all memory cells
// (missing cells read as zero).
func EquivalentMem(a, b *State) error {
	keys := map[Key]bool{}
	for k := range a.Mem {
		keys[k] = true
	}
	for k := range b.Mem {
		keys[k] = true
	}
	for k := range keys {
		if a.Mem[k] != b.Mem[k] {
			return fmt.Errorf("mem[%d,%d]: %d vs %d", k.Arr, k.Idx, a.Mem[k], b.Mem[k])
		}
	}
	return nil
}

// Equivalent reports whether two states agree on all memory and on the
// given observable registers.
func Equivalent(a, b *State, regs []ir.Reg) error {
	if err := EquivalentMem(a, b); err != nil {
		return err
	}
	for _, r := range regs {
		if a.Reg(r) != b.Reg(r) {
			return fmt.Errorf("r%d: %d vs %d", r, a.Reg(r), b.Reg(r))
		}
	}
	return nil
}

// Dump renders the state deterministically for debugging.
func (s *State) Dump() string {
	var b strings.Builder
	var regs []int
	for r := range s.Regs {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	for _, r := range regs {
		fmt.Fprintf(&b, "r%d=%d ", r, s.Regs[ir.Reg(r)])
	}
	var keys []Key
	for k := range s.Mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Arr != keys[j].Arr {
			return keys[i].Arr < keys[j].Arr
		}
		return keys[i].Idx < keys[j].Idx
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "A%d[%d]=%d ", k.Arr, k.Idx, s.Mem[k])
	}
	return strings.TrimSpace(b.String())
}
