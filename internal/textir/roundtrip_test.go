package textir

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/ir"
)

// TestRoundTripGeneratedSpecs is the property the regression corpus
// depends on: every spec the fuzz generator can emit must survive
// Print -> Parse bit-for-bit (same structure, same fingerprint), so a
// failure serialized to the corpus replays as exactly the loop that
// failed.
func TestRoundTripGeneratedSpecs(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		spec := fuzzgen.SweepSpec(seed)
		var b strings.Builder
		Print(&b, spec)
		got, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\ntext:\n%s", seed, err, b.String())
		}
		if !reflect.DeepEqual(got, spec) {
			t.Fatalf("seed %d: round trip changed the spec\nwant: %#v\ngot:  %#v\ntext:\n%s",
				seed, spec, got, b.String())
		}
		if got.Fingerprint() != spec.Fingerprint() {
			t.Fatalf("seed %d: round trip changed the fingerprint", seed)
		}
	}
}

// TestRoundTripEdgeShapes covers reference shapes the generator draws
// rarely (or not at all) but the format supports.
func TestRoundTripEdgeShapes(t *testing.T) {
	spec := &ir.LoopSpec{
		Name: "edges", TripVar: "n", Start: -3, Step: 2,
		LiveIn:  []string{"c0", "iv"},
		LiveOut: []string{"t5"},
		Body: []ir.BodyOp{
			ir.BLoad("t0", ir.Aff("A", -1, 32)),   // negative coefficient
			ir.BLoad("t1", ir.Aff("B", 0, 7)),     // constant cell
			ir.BLoad("t2", ir.Aff("C", 3, 0)),     // stride, no offset
			ir.BLoad("t3", ir.Ind("P", "iv", -2)), // indirect, negative offset
			ir.BAddI("t4", "t0", -5),              // negative immediate
			ir.BDiv("t5", "t4", "t1"),
			ir.BStore(ir.Aff("A", 1, -4), "t2"), // negative store offset
			ir.BCopy("t6", "t3"),
		},
	}
	var b strings.Builder
	Print(&b, spec)
	got, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reparse failed: %v\ntext:\n%s", err, b.String())
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip changed the spec\nwant: %#v\ngot:  %#v\ntext:\n%s", spec, got, b.String())
	}
}

// TestParseRejectsMissingName pins the asymmetry fix: Parse used to
// accept a nameless spec whose printed form ("loop \n") does not parse.
func TestParseRejectsMissingName(t *testing.T) {
	src := "livein c0\ntrip n\nbody:\n  t0 = add c0, 1\n"
	if _, err := Parse(strings.NewReader(src)); err == nil {
		t.Fatal("nameless spec parsed; its printed form would not re-parse")
	} else if !strings.Contains(err.Error(), "loop") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
