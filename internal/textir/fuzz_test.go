package textir

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// FuzzParse is the native fuzz target for the text format: any input
// must either fail to parse or yield a valid spec that survives
// Print -> Parse unchanged. Seeds come from the checked-in regression
// corpus plus hand-picked edge shapes, so the mutator starts from
// realistic loop text.
func FuzzParse(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "corpus", "*.loop"))
	if len(paths) == 0 {
		f.Fatal("no corpus seeds found; expected testdata/corpus/*.loop at the repo root")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("loop x\ntrip n\nbody:\n  t0 = add k, 1\n")
	f.Add("loop x\nlivein v\ntrip n\nbody:\n  t0 = load A[@v-1]\n  store B[-2*k+9] = t0\n")
	f.Add("loop x\ntrip n\nstart -5\nstep -1\nbody:\n  store W[0] = k\n")
	f.Add("# comment only\n")
	f.Add("loop é\ntrip n\nbody:\n  t0 = div k, 0\n")

	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejecting garbage is correct
		}
		// Accepted input: the spec must be well-formed and must
		// round-trip exactly, or the corpus discipline breaks.
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid spec: %v\ninput:\n%s", err, src)
		}
		var b strings.Builder
		Print(&b, spec)
		again, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nprinted:\n%s\ninput:\n%s", err, b.String(), src)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Fatalf("Print/Parse not a fixpoint\nfirst:  %#v\nsecond: %#v\nprinted:\n%s", spec, again, b.String())
		}
	})
}
