// Package textir parses and prints a small textual format for loop
// specifications, used by cmd/gripc and handy for experiments:
//
//	loop dot
//	livein q
//	liveout q
//	trip n
//	start 0
//	step 1
//	body:
//	  t1 = load Z[k]
//	  t2 = load X[k+1]
//	  t3 = mul t1, t2
//	  q  = add q, t3
//	  store OUT[k] = q
//
// Memory references are Array[k+c], Array[c*k+c0], Array[c] or
// Array[@var+c] (indirect through a variable). Immediate operands are
// plain integers: "t = add t, 1".
package textir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Parse reads a loop spec from r.
func Parse(r io.Reader) (*ir.LoopSpec, error) {
	spec := &ir.LoopSpec{Step: 1}
	sc := bufio.NewScanner(r)
	inBody := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !inBody {
			f := strings.Fields(line)
			switch f[0] {
			case "loop":
				if len(f) != 2 {
					return nil, fmt.Errorf("line %d: loop <name>", lineNo)
				}
				spec.Name = f[1]
			case "livein":
				spec.LiveIn = append(spec.LiveIn, f[1:]...)
			case "liveout":
				spec.LiveOut = append(spec.LiveOut, f[1:]...)
			case "trip":
				if len(f) != 2 {
					return nil, fmt.Errorf("line %d: trip <var>", lineNo)
				}
				spec.TripVar = f[1]
			case "start", "step":
				if len(f) != 2 {
					return nil, fmt.Errorf("line %d: %s <int>", lineNo, f[0])
				}
				v, err := strconv.ParseInt(f[1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				if f[0] == "start" {
					spec.Start = v
				} else {
					spec.Step = v
				}
			case "body:":
				inBody = true
			default:
				return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, f[0])
			}
			continue
		}
		op, err := parseBodyOp(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		spec.Body = append(spec.Body, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// A name is required, not merely conventional: Print renders the
	// name unconditionally, and "loop" with no operand does not parse —
	// accepting a nameless spec here would break Parse∘Print round-trips
	// (which the regression corpus depends on).
	if spec.Name == "" {
		return nil, fmt.Errorf("missing loop directive")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func parseBodyOp(line string) (ir.BodyOp, error) {
	// store MEM = var
	if strings.HasPrefix(line, "store ") {
		rest := strings.TrimPrefix(line, "store ")
		parts := strings.SplitN(rest, "=", 2)
		if len(parts) != 2 {
			return ir.BodyOp{}, fmt.Errorf("store syntax: store A[k] = var")
		}
		mem, err := parseMem(strings.TrimSpace(parts[0]))
		if err != nil {
			return ir.BodyOp{}, err
		}
		return ir.BStore(mem, strings.TrimSpace(parts[1])), nil
	}
	// dst = ...
	parts := strings.SplitN(line, "=", 2)
	if len(parts) != 2 {
		return ir.BodyOp{}, fmt.Errorf("expected assignment")
	}
	dst := strings.TrimSpace(parts[0])
	rhs := strings.TrimSpace(parts[1])
	// "store" cannot name a destination: a copy into it would print as
	// "store = x", which re-parses as a malformed store statement
	// (found by FuzzParse; the crasher is checked in under testdata).
	if dst == "store" {
		return ir.BodyOp{}, fmt.Errorf("%q is a reserved word, not a destination", dst)
	}

	// dst = load MEM
	if strings.HasPrefix(rhs, "load ") {
		mem, err := parseMem(strings.TrimSpace(strings.TrimPrefix(rhs, "load ")))
		if err != nil {
			return ir.BodyOp{}, err
		}
		return ir.BLoad(dst, mem), nil
	}

	f := strings.Fields(rhs)
	// dst = var   (copy)   or   dst = 5 (const is not supported; use add)
	if len(f) == 1 && !isInt(f[0]) {
		return ir.BCopy(dst, f[0]), nil
	}
	// dst = op a, b
	if len(f) < 2 {
		return ir.BodyOp{}, fmt.Errorf("expected: dst = op a, b")
	}
	var kind ir.Opcode
	switch f[0] {
	case "add":
		kind = ir.Add
	case "sub":
		kind = ir.Sub
	case "mul":
		kind = ir.Mul
	case "div":
		kind = ir.Div
	default:
		return ir.BodyOp{}, fmt.Errorf("unknown op %q", f[0])
	}
	args := strings.SplitN(strings.TrimSpace(strings.TrimPrefix(rhs, f[0])), ",", 2)
	if len(args) != 2 {
		return ir.BodyOp{}, fmt.Errorf("binary op needs two operands")
	}
	a := strings.TrimSpace(args[0])
	b := strings.TrimSpace(args[1])
	if isInt(b) {
		imm, _ := strconv.ParseInt(b, 10, 64)
		return ir.BodyOp{Kind: kind, Dst: dst, A: a, Imm: imm, UseImm: true}, nil
	}
	return ir.BodyOp{Kind: kind, Dst: dst, A: a, B: b}, nil
}

// parseMem parses Array[expr] where expr is k, k+c, c*k+c0, c, or @var+c.
func parseMem(s string) (ir.BodyRef, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return ir.BodyRef{}, fmt.Errorf("memory reference %q needs Array[index]", s)
	}
	array := s[:open]
	expr := strings.TrimSpace(s[open+1 : len(s)-1])
	if array == "" || expr == "" {
		return ir.BodyRef{}, fmt.Errorf("bad memory reference %q", s)
	}
	if strings.HasPrefix(expr, "@") {
		rest := expr[1:]
		off := int64(0)
		name := rest
		for _, sep := range []string{"+", "-"} {
			if i := strings.Index(rest, sep); i > 0 {
				name = rest[:i]
				v, err := strconv.ParseInt(rest[i:], 10, 64)
				if err != nil {
					return ir.BodyRef{}, err
				}
				off = v
				break
			}
		}
		return ir.Ind(array, name, off), nil
	}
	// c*k+c0 | k+c | k | c
	kcoef := int64(0)
	off := int64(0)
	e := strings.ReplaceAll(expr, " ", "")
	if i := strings.Index(e, "k"); i >= 0 {
		coefStr := strings.TrimSuffix(e[:i], "*")
		switch coefStr {
		case "":
			kcoef = 1
		case "-":
			kcoef = -1
		default:
			v, err := strconv.ParseInt(coefStr, 10, 64)
			if err != nil {
				return ir.BodyRef{}, fmt.Errorf("bad index %q", expr)
			}
			kcoef = v
		}
		rest := e[i+1:]
		if rest != "" {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return ir.BodyRef{}, fmt.Errorf("bad index %q", expr)
			}
			off = v
		}
	} else {
		v, err := strconv.ParseInt(e, 10, 64)
		if err != nil {
			return ir.BodyRef{}, fmt.Errorf("bad index %q", expr)
		}
		off = v
	}
	return ir.BodyRef{Array: array, KCoef: kcoef, Off: off}, nil
}

func isInt(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

// Print renders a spec in the textual format.
func Print(w io.Writer, spec *ir.LoopSpec) {
	fmt.Fprintf(w, "loop %s\n", spec.Name)
	if len(spec.LiveIn) > 0 {
		fmt.Fprintf(w, "livein %s\n", strings.Join(spec.LiveIn, " "))
	}
	if len(spec.LiveOut) > 0 {
		fmt.Fprintf(w, "liveout %s\n", strings.Join(spec.LiveOut, " "))
	}
	fmt.Fprintf(w, "trip %s\n", spec.TripVar)
	if spec.Start != 0 {
		fmt.Fprintf(w, "start %d\n", spec.Start)
	}
	fmt.Fprintf(w, "step %d\nbody:\n", spec.Step)
	for _, op := range spec.Body {
		fmt.Fprintf(w, "  %s\n", formatBodyOp(op))
	}
}

func formatBodyOp(op ir.BodyOp) string {
	switch op.Kind {
	case ir.Load:
		return fmt.Sprintf("%s = load %s", op.Dst, formatMem(op.Mem))
	case ir.Store:
		return fmt.Sprintf("store %s = %s", formatMem(op.Mem), op.A)
	case ir.Copy:
		return fmt.Sprintf("%s = %s", op.Dst, op.A)
	default:
		if op.UseImm {
			return fmt.Sprintf("%s = %s %s, %d", op.Dst, op.Kind, op.A, op.Imm)
		}
		return fmt.Sprintf("%s = %s %s, %s", op.Dst, op.Kind, op.A, op.B)
	}
}

func formatMem(m ir.BodyRef) string {
	switch {
	case m.IndexVar != "":
		if m.Off != 0 {
			return fmt.Sprintf("%s[@%s%+d]", m.Array, m.IndexVar, m.Off)
		}
		return fmt.Sprintf("%s[@%s]", m.Array, m.IndexVar)
	case m.KCoef == 0:
		return fmt.Sprintf("%s[%d]", m.Array, m.Off)
	case m.KCoef == 1 && m.Off == 0:
		return fmt.Sprintf("%s[k]", m.Array)
	case m.KCoef == 1:
		return fmt.Sprintf("%s[k%+d]", m.Array, m.Off)
	case m.Off == 0:
		return fmt.Sprintf("%s[%d*k]", m.Array, m.KCoef)
	default:
		return fmt.Sprintf("%s[%d*k%+d]", m.Array, m.KCoef, m.Off)
	}
}
