package textir

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

const sample = `
# inner product with an indirect twist
loop demo
livein q
liveout q
trip n
step 1
body:
  t1 = load Z[k]
  t2 = load X[2*k+1]
  ix = load IX[k]
  t4 = load P[@ix+2]
  t3 = mul t1, t2
  t5 = add t3, t4
  q  = add q, t5
  t6 = add q, 7
  store OUT[k] = t6
`

func TestParseRoundTrip(t *testing.T) {
	spec, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || spec.TripVar != "n" || len(spec.Body) != 9 {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.Body[1].Mem.KCoef != 2 || spec.Body[1].Mem.Off != 1 {
		t.Fatalf("affine ref parsed as %+v", spec.Body[1].Mem)
	}
	if spec.Body[3].Mem.IndexVar != "ix" || spec.Body[3].Mem.Off != 2 {
		t.Fatalf("indirect ref parsed as %+v", spec.Body[3].Mem)
	}
	if !spec.Body[7].UseImm || spec.Body[7].Imm != 7 {
		t.Fatalf("immediate parsed as %+v", spec.Body[7])
	}

	var b strings.Builder
	Print(&b, spec)
	spec2, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, b.String())
	}
	if len(spec2.Body) != len(spec.Body) {
		t.Fatalf("round trip lost ops:\n%s", b.String())
	}
	for i := range spec.Body {
		if spec.Body[i].Kind != spec2.Body[i].Kind || spec.Body[i].Dst != spec2.Body[i].Dst {
			t.Fatalf("op %d differs after round trip", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"loop x\ntrip n\nbody:\n  t1 = foo a, b\n",
		"loop x\ntrip n\nbody:\n  t1 = load Z\n",
		"loop x\nbody:\n  t1 = add a, b\n", // missing trip
		"loop x\ntrip n\nbody:\n  t1 = add undefined, 3\n",
		"nonsense directive\n",
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseNegativeStride(t *testing.T) {
	spec, err := Parse(strings.NewReader("loop neg\ntrip n\nbody:\n  a = load X[-k+50]\n  store Y[k] = a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Body[0].Mem.KCoef != -1 || spec.Body[0].Mem.Off != 50 {
		t.Fatalf("got %+v", spec.Body[0].Mem)
	}
	_ = ir.NoReg
}
