package graph

import (
	"repro/internal/ir"
)

// Clone deep-copies the graph: every node, vertex, and operation is
// duplicated (operations keep their IDs, origins, and iteration tags;
// nodes keep their IDs and order-maintenance keys), and the clone's
// bookkeeping (predecessor sets, op locations, ID counters) is rebuilt
// to match. The clone uses alloc for future allocations; pass an
// independent allocator (ir.Alloc.Clone) so transformations on the
// clone allocate exactly the IDs the same transformations on the
// original would — schedulers mutating a clone behave bit-identically
// to schedulers mutating the original.
//
// The returned op map relates original operations to their clones, so
// callers holding external op lists (e.g. pipeline.Unwound.Ops) can
// re-point them at the copies.
func (g *Graph) Clone(alloc *ir.Alloc) (*Graph, map[*ir.Op]*ir.Op) {
	if alloc == nil {
		alloc = g.Alloc
	}
	ng := &Graph{
		Alloc:      alloc,
		nodes:      make(map[*Node]bool, len(g.nodes)),
		preds:      make(map[*Node]map[*Node]int, len(g.preds)),
		locs:       make(map[*ir.Op]*Vertex, len(g.locs)),
		version:    g.version,
		nextNodeID: g.nextNodeID,
		maxPos:     g.maxPos,
	}

	opMap := make(map[*ir.Op]*ir.Op, len(g.locs))
	cloneOp := func(op *ir.Op) *ir.Op {
		if op == nil {
			return nil
		}
		if c, ok := opMap[op]; ok {
			return c
		}
		c := *op
		opMap[op] = &c
		return &c
	}

	nodeMap := make(map[*Node]*Node, len(g.nodes))
	for n := range g.nodes {
		nodeMap[n] = &Node{ID: n.ID, Drain: n.Drain, pos: n.pos}
		ng.nodes[nodeMap[n]] = true
	}

	// Clone each instruction tree; leaf successors are resolved through
	// nodeMap and predecessor counts rebuilt as edges are recreated.
	var cloneVertex func(v *Vertex, n *Node, parent *Vertex) *Vertex
	cloneVertex = func(v *Vertex, n *Node, parent *Vertex) *Vertex {
		nv := &Vertex{node: n, parent: parent}
		for _, op := range v.Ops {
			c := cloneOp(op)
			nv.Ops = append(nv.Ops, c)
			ng.locs[c] = nv
		}
		if v.CJ != nil {
			nv.CJ = cloneOp(v.CJ)
			ng.locs[nv.CJ] = nv
			nv.True = cloneVertex(v.True, n, nv)
			nv.False = cloneVertex(v.False, n, nv)
			return nv
		}
		if v.Succ != nil {
			nv.Succ = nodeMap[v.Succ]
			ng.link(n, nv.Succ)
		}
		return nv
	}
	for n := range g.nodes {
		nodeMap[n].Root = cloneVertex(n.Root, nodeMap[n], nil)
	}
	ng.Entry = nodeMap[g.Entry]
	return ng, opMap
}
