package graph

import (
	"repro/internal/ir"
)

// Clone deep-copies the graph: every node, vertex, and operation is
// duplicated (operations keep their IDs, origins, iteration tags, and
// dense indices; nodes keep their IDs and order-maintenance keys), and
// the clone's bookkeeping (predecessor sets, op locations, ID counters)
// is rebuilt to match. The clone uses alloc for future allocations; pass
// an independent allocator (ir.Alloc.Clone) so transformations on the
// clone allocate exactly the IDs the same transformations on the
// original would — schedulers mutating a clone behave bit-identically
// to schedulers mutating the original.
//
// Nodes, vertices, and operations are carved out of three single arena
// slices — one allocation per kind for the whole graph instead of one
// per object — which is what keeps POST's per-target phase-1 memo
// copies cheap.
//
// The returned slice maps original op IDs to their clones (nil for IDs
// not placed in this graph), so callers holding external op lists
// (e.g. pipeline.Unwound.Ops) can re-point them at the copies.
func (g *Graph) Clone(alloc *ir.Alloc) (*Graph, []*ir.Op) {
	if alloc == nil {
		alloc = g.Alloc
	}
	ng := &Graph{
		Alloc:      alloc,
		Label:      g.Label,
		nodes:      make(map[*Node]bool, len(g.nodes)),
		locs:       make([]opLoc, len(g.locs)),
		version:    g.version,
		nextNodeID: g.nextNodeID,
		maxPos:     g.maxPos,
	}

	// Count vertices (and per-iteration count slots, and def/use summary
	// words) so every arena is sized exactly: growing an arena mid-build
	// would move objects already pointed at.
	nVertices, nIterSlots, nSumWords, nDefSites, nStorePos := 0, 0, 0, 0, 0
	for n := range g.nodes {
		n.Walk(func(v *Vertex) {
			nVertices++
			nSumWords += v.sum.words()
			nDefSites += len(v.sum.defSites)
			nStorePos += len(v.sum.storePos)
		})
		nIterSlots += len(n.iterCounts)
	}
	opArena := make([]ir.Op, 0, g.numPlaced)
	vertexArena := make([]Vertex, 0, nVertices)
	nodeArena := make([]Node, 0, len(g.nodes))
	opPtrArena := make([]*ir.Op, 0, g.numPlaced)
	iterArena := make([]int32, 0, nIterSlots)
	sumArena := make([]uint64, nSumWords)
	dsArena := make([]defSite, nDefSites)
	spArena := make([]int32, nStorePos)

	byID := make([]*ir.Op, len(g.locs))
	cloneOp := func(op *ir.Op) *ir.Op {
		if op == nil {
			return nil
		}
		if c := byID[op.ID]; c != nil {
			return c
		}
		opArena = append(opArena, *op)
		c := &opArena[len(opArena)-1]
		// The struct copy drags the source op's resident placement
		// along; the clone is unplaced until setLoc registers it.
		c.SetPlacement(nil)
		byID[op.ID] = c
		return c
	}

	nodeMap := make(map[*Node]*Node, len(g.nodes))
	for n := range g.nodes {
		nodeArena = append(nodeArena, Node{
			ID: n.ID, Drain: n.Drain, pos: n.pos,
			opCount: n.opCount, branchCount: n.branchCount,
			schedCount: n.schedCount, g: ng,
		})
		nc := &nodeArena[len(nodeArena)-1]
		if len(n.iterCounts) > 0 {
			// Capped sub-slice of the shared arena, like vertex op lists:
			// a later grow on the node re-allocates instead of clobbering
			// its neighbour.
			start := len(iterArena)
			iterArena = append(iterArena, n.iterCounts...)
			nc.iterCounts = iterArena[start:len(iterArena):len(iterArena)]
		}
		nodeMap[n] = nc
		ng.nodes[nc] = true
	}

	// Clone each instruction tree; leaf successors are resolved through
	// nodeMap and predecessor counts rebuilt as edges are recreated.
	var cloneVertex func(v *Vertex, n *Node, parent *Vertex) *Vertex
	cloneVertex = func(v *Vertex, n *Node, parent *Vertex) *Vertex {
		vertexArena = append(vertexArena, Vertex{node: n, parent: parent})
		nv := &vertexArena[len(vertexArena)-1]
		sumArena, dsArena, spArena = v.sum.cloneInto(&nv.sum, sumArena, dsArena, spArena)
		if len(v.Ops) > 0 {
			// Each vertex's op-pointer list is a capped sub-slice of one
			// shared arena; a later append on the vertex re-allocates
			// rather than clobbering its neighbour.
			start := len(opPtrArena)
			for _, op := range v.Ops {
				c := cloneOp(op)
				opPtrArena = append(opPtrArena, c)
				ng.setLoc(c, nv)
			}
			nv.Ops = opPtrArena[start:len(opPtrArena):len(opPtrArena)]
		}
		if v.CJ != nil {
			nv.CJ = cloneOp(v.CJ)
			ng.setLoc(nv.CJ, nv)
			nv.True = cloneVertex(v.True, n, nv)
			nv.False = cloneVertex(v.False, n, nv)
			return nv
		}
		if v.Succ != nil {
			nv.Succ = nodeMap[v.Succ]
			ng.link(n, nv.Succ)
		}
		return nv
	}
	for n := range g.nodes {
		nodeMap[n].Root = cloneVertex(n.Root, nodeMap[n], nil)
	}
	ng.Entry = nodeMap[g.Entry]
	return ng, byID
}
