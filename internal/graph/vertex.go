// Package graph implements the VLIW program graph of the paper's
// computation model (section 2): a directed graph whose nodes are
// instructions and whose edges represent control flow. Each instruction
// is a rooted tree of conditional jumps — the IBM VLIW model of Figure 1
// — with ordinary operations attached to tree vertices. An operation
// attached to a vertex commits only when the path selected by the
// conditionals passes through that vertex; every operation in the tree
// occupies a functional unit regardless of path, because results are
// computed before the path is known.
package graph

import (
	"repro/internal/ir"
)

// Vertex is one vertex of an instruction tree. A vertex carries zero or
// more non-branch operations and is either a leaf (Succ designates the
// next instruction, nil meaning program exit) or an internal branch
// vertex (CJ is a conditional-jump op with True/False subtrees).
type Vertex struct {
	Ops   []*ir.Op
	CJ    *ir.Op
	True  *Vertex
	False *Vertex
	Succ  *Node

	node   *Node
	parent *Vertex

	// sum is the vertex's incrementally maintained def/use summary (see
	// summary.go): exact register def/use sets and memory-op counts for
	// the vertex's own op list and for its whole subtree, kept current
	// by every Graph mutator and operand-rewrite method. The root
	// vertex's sub tier is therefore the whole instruction's digest —
	// what the ps legality fast paths filter on.
	sum summary
}

// IsLeaf reports whether the vertex terminates the tree.
func (v *Vertex) IsLeaf() bool { return v.CJ == nil }

// Node returns the instruction the vertex belongs to.
func (v *Vertex) Node() *Node { return v.node }

// Parent returns the parent vertex, or nil at the root.
func (v *Vertex) Parent() *Vertex { return v.parent }

// Sibling returns the other child of the parent branch, or nil at the
// root.
func (v *Vertex) Sibling() *Vertex {
	p := v.parent
	if p == nil {
		return nil
	}
	if p.True == v {
		return p.False
	}
	return p.True
}

// walk visits the subtree rooted at v in root-to-leaf preorder.
func (v *Vertex) walk(f func(*Vertex)) {
	f(v)
	if v.True != nil {
		v.True.walk(f)
	}
	if v.False != nil {
		v.False.walk(f)
	}
}

// onRootPath reports whether v lies on the path from the node's root to
// target (inclusive of both).
func (v *Vertex) onRootPath(target *Vertex) bool {
	for t := target; t != nil; t = t.parent {
		if t == v {
			return true
		}
	}
	return false
}

// OnPathTo reports whether v lies on the path from the node's root to
// target (inclusive): operations at such vertices commit whenever
// control reaches target.
func (v *Vertex) OnPathTo(target *Vertex) bool { return v.onRootPath(target) }

// removeOp deletes op from the vertex op list. It reports whether the op
// was present.
func (v *Vertex) removeOp(op *ir.Op) bool {
	for i, o := range v.Ops {
		if o == op {
			v.Ops = append(v.Ops[:i], v.Ops[i+1:]...)
			return true
		}
	}
	return false
}
