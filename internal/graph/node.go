package graph

import (
	"repro/internal/ir"
)

// Node is one VLIW instruction. The zero value is not usable; create
// nodes with Graph.NewNode.
type Node struct {
	ID   int
	Root *Vertex

	// Drain marks nodes on loop-exit paths produced by move-cj node
	// splitting. Drain nodes are executed by the simulator but never
	// rescheduled; they form Perfect Pipelining's post-loop code.
	Drain bool

	// pos is an order-maintenance key: main-chain nodes compare by pos
	// exactly as by chain order. Maintained by the Graph on insertion
	// so schedulers get O(1) "is this node below that one" tests
	// without recomputing traversal orders after every mutation.
	pos float64

	// opCount/branchCount cache the instruction tree's operation and
	// conditional-jump totals. Maintained by the Graph mutators (AddOp,
	// RemoveOp, InsertBranchAtLeaf, AdoptSubtree) so the schedulers'
	// per-step resource checks are O(1) instead of tree walks; Validate
	// cross-checks them against a recount.
	opCount     int
	branchCount int
}

// Pos returns the node's order-maintenance key. Larger means later on
// the main chain. Keys of drain nodes are not meaningful.
func (n *Node) Pos() float64 { return n.pos }

// Walk visits every vertex of the instruction tree in preorder.
func (n *Node) Walk(f func(*Vertex)) {
	if n.Root != nil {
		n.Root.walk(f)
	}
}

// Ops returns all non-branch operations in the instruction tree.
func (n *Node) Ops() []*ir.Op {
	var ops []*ir.Op
	n.Walk(func(v *Vertex) { ops = append(ops, v.Ops...) })
	return ops
}

// OpCount returns the number of non-branch operations in the tree; this
// is the number of functional units the instruction occupies. O(1): the
// count is maintained by the Graph mutators.
func (n *Node) OpCount() int { return n.opCount }

// BranchCount returns the number of conditional jumps in the tree. O(1).
func (n *Node) BranchCount() int { return n.branchCount }

// recountOps recomputes the operation total by walking the tree
// (Validate's cross-check of the cached count).
func (n *Node) recountOps() int {
	c := 0
	n.Walk(func(v *Vertex) { c += len(v.Ops) })
	return c
}

// recountBranches recomputes the conditional-jump total by walking.
func (n *Node) recountBranches() int {
	c := 0
	n.Walk(func(v *Vertex) {
		if v.CJ != nil {
			c++
		}
	})
	return c
}

// Branches returns the conditional-jump ops in the tree, root first.
func (n *Node) Branches() []*ir.Op {
	var cjs []*ir.Op
	n.Walk(func(v *Vertex) {
		if v.CJ != nil {
			cjs = append(cjs, v.CJ)
		}
	})
	return cjs
}

// Leaves returns the leaf vertices of the tree, left (true side) first.
func (n *Node) Leaves() []*Vertex {
	var ls []*Vertex
	n.Walk(func(v *Vertex) {
		if v.IsLeaf() {
			ls = append(ls, v)
		}
	})
	return ls
}

// LeafTo returns the first leaf (in left-first preorder, the same order
// Leaves uses) whose edge points at succ, or nil. Allocation-free — the
// per-step transformation scans sit on this query.
func (n *Node) LeafTo(succ *Node) *Vertex {
	return leafTo(n.Root, succ)
}

func leafTo(v *Vertex, succ *Node) *Vertex {
	if v == nil {
		return nil
	}
	if v.IsLeaf() {
		if v.Succ == succ {
			return v
		}
		return nil
	}
	if l := leafTo(v.True, succ); l != nil {
		return l
	}
	return leafTo(v.False, succ)
}

// Successors returns the distinct successor nodes, in leaf order.
func (n *Node) Successors() []*Node {
	var succs []*Node
	seen := map[*Node]bool{}
	for _, l := range n.Leaves() {
		if l.Succ != nil && !seen[l.Succ] {
			seen[l.Succ] = true
			succs = append(succs, l.Succ)
		}
	}
	return succs
}

// Empty reports whether the instruction holds no operations and no
// branches (an empty node with a single fall-through edge can be spliced
// out of the graph).
func (n *Node) Empty() bool {
	return n.OpCount() == 0 && n.BranchCount() == 0
}

// IterCount returns how many operations from iteration iter are scheduled
// in this instruction (branches included); the Gapless-move test uses it.
func (n *Node) IterCount(iter int) int {
	c := 0
	n.Walk(func(v *Vertex) {
		for _, o := range v.Ops {
			if o.Iter == iter && !o.Frozen {
				c++
			}
		}
		if v.CJ != nil && v.CJ.Iter == iter && !v.CJ.Frozen {
			c++
		}
	})
	return c
}

// SchedCount returns the number of schedulable (non-frozen) ops and
// branches in the node.
func (n *Node) SchedCount() int {
	c := 0
	n.Walk(func(v *Vertex) {
		for _, o := range v.Ops {
			if !o.Frozen {
				c++
			}
		}
		if v.CJ != nil && !v.CJ.Frozen {
			c++
		}
	})
	return c
}

// FallThrough returns the single successor when the node has exactly one
// leaf, else nil.
func (n *Node) FallThrough() *Node {
	ls := n.Leaves()
	if len(ls) == 1 {
		return ls[0].Succ
	}
	return nil
}
