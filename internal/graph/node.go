package graph

import (
	"repro/internal/ir"
)

// Node is one VLIW instruction. The zero value is not usable; create
// nodes with Graph.NewNode.
type Node struct {
	ID   int
	Root *Vertex

	// Drain marks nodes on loop-exit paths produced by move-cj node
	// splitting. Drain nodes are executed by the simulator but never
	// rescheduled; they form Perfect Pipelining's post-loop code.
	Drain bool

	// pos is an order-maintenance key: main-chain nodes compare by pos
	// exactly as by chain order. Maintained by the Graph on insertion
	// so schedulers get O(1) "is this node below that one" tests
	// without recomputing traversal orders after every mutation.
	pos float64

	// opCount/branchCount cache the instruction tree's operation and
	// conditional-jump totals. Maintained by the Graph mutators (AddOp,
	// RemoveOp, InsertBranchAtLeaf, AdoptSubtree) so the schedulers'
	// per-step resource checks are O(1) instead of tree walks; Validate
	// cross-checks them against a recount.
	opCount     int
	branchCount int

	// schedCount and iterCounts cache the schedulable (non-frozen)
	// operation totals, overall and per iteration (iterCounts[iter+1];
	// slot 0 holds NoIter ops). Maintained by the same mutators plus
	// FreezeOp, so the Gapless-move test's IterCount/SchedCount queries
	// are O(1) slice reads instead of tree walks; Validate cross-checks
	// them against a recount. See DESIGN.md.
	schedCount int
	iterCounts []int32

	// preds/succs are the node's compact adjacency sets, maintained by
	// the Graph's link/unlink on every leaf-edge mutation and
	// cross-checked by Validate. They replace the graph-level
	// map[*Node]map[*Node]int predecessor table, making Preds,
	// SinglePred, and successor iteration allocation-free scans.
	preds edgeSet
	succs edgeSet

	// orderIdx/orderStamp cache the node's position in the graph's
	// reverse-postorder; valid when orderStamp matches the graph's
	// current order version (Graph.Index).
	orderIdx   int32
	orderStamp uint64

	// seenEpoch supports allocation-free graph traversals: a traversal
	// obtains a fresh epoch from Graph.BeginVisit and marks nodes with
	// Visited instead of building a map.
	seenEpoch uint64

	// g is the owning graph, set at creation and never changed. The
	// location fast path (Graph.loc) uses it to reject placements that
	// belong to a different graph — an op cloned into a new graph, or
	// queried against a graph it was never part of.
	g *Graph
}

// Pos returns the node's order-maintenance key. Larger means later on
// the main chain. Keys of drain nodes are not meaningful.
func (n *Node) Pos() float64 { return n.pos }

// Visited marks n as seen in traversal epoch e and reports whether it
// had already been marked. Epochs come from Graph.BeginVisit; a
// traversal must finish with one epoch before another begins.
func (n *Node) Visited(e uint64) bool {
	if n.seenEpoch == e {
		return true
	}
	n.seenEpoch = e
	return false
}

// Walk visits every vertex of the instruction tree in preorder.
func (n *Node) Walk(f func(*Vertex)) {
	if n.Root != nil {
		n.Root.walk(f)
	}
}

// Ops returns all non-branch operations in the instruction tree.
func (n *Node) Ops() []*ir.Op {
	var ops []*ir.Op
	n.Walk(func(v *Vertex) { ops = append(ops, v.Ops...) })
	return ops
}

// OpCount returns the number of non-branch operations in the tree; this
// is the number of functional units the instruction occupies. O(1): the
// count is maintained by the Graph mutators.
func (n *Node) OpCount() int { return n.opCount }

// BranchCount returns the number of conditional jumps in the tree. O(1).
func (n *Node) BranchCount() int { return n.branchCount }

// noteOpAdded updates the schedulable-op caches for an op (branches
// included) just placed somewhere in n's tree.
func (n *Node) noteOpAdded(op *ir.Op) {
	if op.Frozen {
		return
	}
	n.schedCount++
	n.bumpIter(op.Iter, 1)
}

// noteOpRemoved is the inverse of noteOpAdded.
func (n *Node) noteOpRemoved(op *ir.Op) {
	if op.Frozen {
		return
	}
	n.schedCount--
	n.bumpIter(op.Iter, -1)
}

func (n *Node) bumpIter(iter int, d int32) {
	i := iter + 1 // slot 0 is NoIter
	if i < 0 {
		panic("graph: op with iteration below NoIter")
	}
	if i >= len(n.iterCounts) {
		// Geometric growth with a zeroed tail (Validate tolerates
		// trailing zero slots); nodes born after the graph has seen
		// this iteration are pre-sized past it (Graph.iterSlots), so
		// this is the cold path.
		c := 2 * len(n.iterCounts)
		if c < i+1 {
			c = i + 1
		}
		grown := make([]int32, c)
		copy(grown, n.iterCounts)
		n.iterCounts = grown
	}
	n.iterCounts[i] += d
	if n.iterCounts[i] < 0 {
		panic("graph: per-iteration op count underflow")
	}
}

// resetSchedCounts clears the schedulable-op caches (AdoptSubtree
// recomputes them from the adopted tree).
func (n *Node) resetSchedCounts() {
	n.schedCount = 0
	for i := range n.iterCounts {
		n.iterCounts[i] = 0
	}
}

// recountOps recomputes the operation total by walking the tree
// (Validate's cross-check of the cached count).
func (n *Node) recountOps() int {
	c := 0
	n.Walk(func(v *Vertex) { c += len(v.Ops) })
	return c
}

// recountBranches recomputes the conditional-jump total by walking.
func (n *Node) recountBranches() int {
	c := 0
	n.Walk(func(v *Vertex) {
		if v.CJ != nil {
			c++
		}
	})
	return c
}

// recountSched recomputes the schedulable totals by walking: the
// overall count plus the per-iteration counts keyed exactly like
// iterCounts (Validate's cross-check of the incremental caches).
func (n *Node) recountSched() (int, map[int]int32) {
	c := 0
	iters := map[int]int32{}
	count := func(o *ir.Op) {
		if o.Frozen {
			return
		}
		c++
		iters[o.Iter+1]++
	}
	n.Walk(func(v *Vertex) {
		for _, o := range v.Ops {
			count(o)
		}
		if v.CJ != nil {
			count(v.CJ)
		}
	})
	return c, iters
}

// Branches returns the conditional-jump ops in the tree, root first.
func (n *Node) Branches() []*ir.Op {
	var cjs []*ir.Op
	n.Walk(func(v *Vertex) {
		if v.CJ != nil {
			cjs = append(cjs, v.CJ)
		}
	})
	return cjs
}

// Leaves returns the leaf vertices of the tree, left (true side) first.
// Allocates; hot paths use VisitLeaves.
func (n *Node) Leaves() []*Vertex {
	var ls []*Vertex
	n.VisitLeaves(func(v *Vertex) bool {
		ls = append(ls, v)
		return true
	})
	return ls
}

// VisitLeaves visits the leaf vertices in left-first preorder (the same
// order Leaves uses), stopping early when f returns false. It reports
// whether the visit ran to completion. Allocation-free.
func (n *Node) VisitLeaves(f func(*Vertex) bool) bool {
	return visitLeaves(n.Root, f)
}

func visitLeaves(v *Vertex, f func(*Vertex) bool) bool {
	if v == nil {
		return true
	}
	if v.IsLeaf() {
		return f(v)
	}
	if !visitLeaves(v.True, f) {
		return false
	}
	return visitLeaves(v.False, f)
}

// LeafTo returns the first leaf (in left-first preorder, the same order
// Leaves uses) whose edge points at succ, or nil. Allocation-free — the
// per-step transformation scans sit on this query.
func (n *Node) LeafTo(succ *Node) *Vertex {
	return leafTo(n.Root, succ)
}

func leafTo(v *Vertex, succ *Node) *Vertex {
	if v == nil {
		return nil
	}
	if v.IsLeaf() {
		if v.Succ == succ {
			return v
		}
		return nil
	}
	if l := leafTo(v.True, succ); l != nil {
		return l
	}
	return leafTo(v.False, succ)
}

// Successors returns the distinct successor nodes in first-edge order,
// read off the compact adjacency set. Allocates the result slice; hot
// paths use VisitSuccessors or NonDrainSucc.
func (n *Node) Successors() []*Node {
	succs := make([]*Node, 0, n.succs.n)
	n.succs.visit(func(s *Node, _ int32) bool {
		succs = append(succs, s)
		return true
	})
	return succs
}

// VisitSuccessors calls f for every distinct successor node, stopping
// early when f returns false. Allocation-free: it iterates the compact
// adjacency set maintained on edge mutation.
func (n *Node) VisitSuccessors(f func(*Node) bool) {
	n.succs.visit(func(s *Node, _ int32) bool { return f(s) })
}

// NonDrainSucc returns the unique non-drain successor, or nil when the
// node has none or several (the main-chain step used by every
// scheduler's top-down traversal). O(successors), allocation-free.
func (n *Node) NonDrainSucc() *Node {
	var next *Node
	ambiguous := false
	n.succs.visit(func(s *Node, _ int32) bool {
		if s.Drain {
			return true
		}
		if next != nil {
			ambiguous = true
			return false
		}
		next = s
		return true
	})
	if ambiguous {
		return nil
	}
	return next
}

// Empty reports whether the instruction holds no operations and no
// branches (an empty node with a single fall-through edge can be spliced
// out of the graph).
func (n *Node) Empty() bool {
	return n.OpCount() == 0 && n.BranchCount() == 0
}

// IterCount returns how many schedulable (non-frozen) operations from
// iteration iter are scheduled in this instruction (branches included);
// the Gapless-move test sits on it. O(1): the per-iteration counts are
// maintained incrementally by the Graph mutators.
func (n *Node) IterCount(iter int) int {
	if i := iter + 1; i >= 0 && i < len(n.iterCounts) {
		return int(n.iterCounts[i])
	}
	return 0
}

// SchedCount returns the number of schedulable (non-frozen) ops and
// branches in the node. O(1).
func (n *Node) SchedCount() int { return n.schedCount }

// FallThrough returns the single successor when the node has exactly one
// leaf, else nil. O(1): a tree with b branch vertices has b+1 leaves, so
// a single-leaf node is exactly a branch-free node whose root is the
// leaf.
func (n *Node) FallThrough() *Node {
	if n.branchCount == 0 && n.Root != nil {
		return n.Root.Succ
	}
	return nil
}
