package graph

import (
	"repro/internal/ir"
)

// Node is one VLIW instruction. The zero value is not usable; create
// nodes with Graph.NewNode.
type Node struct {
	ID   int
	Root *Vertex

	// Drain marks nodes on loop-exit paths produced by move-cj node
	// splitting. Drain nodes are executed by the simulator but never
	// rescheduled; they form Perfect Pipelining's post-loop code.
	Drain bool

	// pos is an order-maintenance key: main-chain nodes compare by pos
	// exactly as by chain order. Maintained by the Graph on insertion
	// so schedulers get O(1) "is this node below that one" tests
	// without recomputing traversal orders after every mutation.
	pos float64
}

// Pos returns the node's order-maintenance key. Larger means later on
// the main chain. Keys of drain nodes are not meaningful.
func (n *Node) Pos() float64 { return n.pos }

// Walk visits every vertex of the instruction tree in preorder.
func (n *Node) Walk(f func(*Vertex)) {
	if n.Root != nil {
		n.Root.walk(f)
	}
}

// Ops returns all non-branch operations in the instruction tree.
func (n *Node) Ops() []*ir.Op {
	var ops []*ir.Op
	n.Walk(func(v *Vertex) { ops = append(ops, v.Ops...) })
	return ops
}

// OpCount returns the number of non-branch operations in the tree; this
// is the number of functional units the instruction occupies.
func (n *Node) OpCount() int {
	c := 0
	n.Walk(func(v *Vertex) { c += len(v.Ops) })
	return c
}

// BranchCount returns the number of conditional jumps in the tree.
func (n *Node) BranchCount() int {
	c := 0
	n.Walk(func(v *Vertex) {
		if v.CJ != nil {
			c++
		}
	})
	return c
}

// Branches returns the conditional-jump ops in the tree, root first.
func (n *Node) Branches() []*ir.Op {
	var cjs []*ir.Op
	n.Walk(func(v *Vertex) {
		if v.CJ != nil {
			cjs = append(cjs, v.CJ)
		}
	})
	return cjs
}

// Leaves returns the leaf vertices of the tree, left (true side) first.
func (n *Node) Leaves() []*Vertex {
	var ls []*Vertex
	n.Walk(func(v *Vertex) {
		if v.IsLeaf() {
			ls = append(ls, v)
		}
	})
	return ls
}

// Successors returns the distinct successor nodes, in leaf order.
func (n *Node) Successors() []*Node {
	var succs []*Node
	seen := map[*Node]bool{}
	for _, l := range n.Leaves() {
		if l.Succ != nil && !seen[l.Succ] {
			seen[l.Succ] = true
			succs = append(succs, l.Succ)
		}
	}
	return succs
}

// Empty reports whether the instruction holds no operations and no
// branches (an empty node with a single fall-through edge can be spliced
// out of the graph).
func (n *Node) Empty() bool {
	return n.OpCount() == 0 && n.BranchCount() == 0
}

// IterCount returns how many operations from iteration iter are scheduled
// in this instruction (branches included); the Gapless-move test uses it.
func (n *Node) IterCount(iter int) int {
	c := 0
	n.Walk(func(v *Vertex) {
		for _, o := range v.Ops {
			if o.Iter == iter && !o.Frozen {
				c++
			}
		}
		if v.CJ != nil && v.CJ.Iter == iter && !v.CJ.Frozen {
			c++
		}
	})
	return c
}

// SchedCount returns the number of schedulable (non-frozen) ops and
// branches in the node.
func (n *Node) SchedCount() int {
	c := 0
	n.Walk(func(v *Vertex) {
		for _, o := range v.Ops {
			if !o.Frozen {
				c++
			}
		}
		if v.CJ != nil && !v.CJ.Frozen {
			c++
		}
	})
	return c
}

// FallThrough returns the single successor when the node has exactly one
// leaf, else nil.
func (n *Node) FallThrough() *Node {
	ls := n.Leaves()
	if len(ls) == 1 {
		return ls[0].Succ
	}
	return nil
}
