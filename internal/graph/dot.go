package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz format for visual inspection of
// schedules: one record-shaped node per instruction (operations listed,
// drains dashed), edges labelled with the branch outcome that takes
// them.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", title)
	for _, n := range g.Order() {
		style := ""
		if n.Drain {
			style = ", style=dashed"
		}
		var ops []string
		n.Walk(func(v *Vertex) {
			for _, op := range v.Ops {
				ops = append(ops, escapeDOT(op.String()))
			}
			if v.CJ != nil {
				ops = append(ops, escapeDOT(v.CJ.String()))
			}
		})
		label := fmt.Sprintf("n%d", n.ID)
		if len(ops) > 0 {
			label += "\\n" + strings.Join(ops, "\\n")
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", n.ID, label, style)

		// Edges, labelled by the branch path that selects them.
		var emit func(v *Vertex, path string)
		emit = func(v *Vertex, path string) {
			if v.IsLeaf() {
				if v.Succ != nil {
					lbl := ""
					if path != "" {
						lbl = fmt.Sprintf(" [label=%q]", path)
					}
					fmt.Fprintf(&b, "  n%d -> n%d%s;\n", n.ID, v.Succ.ID, lbl)
				}
				return
			}
			emit(v.True, path+"T")
			emit(v.False, path+"F")
		}
		emit(n.Root, "")
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
