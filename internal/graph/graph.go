package graph

import (
	"fmt"

	"repro/internal/ir"
)

// opLoc is one entry of the dense op-location table: the vertex holding
// the op, plus the op pointer itself so lookups can verify identity (op
// IDs are only unique within one allocator; an op from a cloned program
// must not resolve against this graph's table).
type opLoc struct {
	op *ir.Op
	v  *Vertex
}

// Graph is a VLIW program graph. All structural mutation must go through
// Graph methods so that adjacency sets, operation locations, cached
// node op counts, and the cached traversal order stay consistent;
// Validate cross-checks every invariant and is run liberally in tests.
// Adjacency lives on the nodes themselves (Node.preds/Node.succs compact
// edge sets) rather than in a graph-level map, so predecessor and
// successor queries in scheduler hot paths are allocation-free scans.
type Graph struct {
	Entry *Node
	Alloc *ir.Alloc

	// Label identifies the program for diagnostics (the source loop's
	// name and fingerprint prefix, set by the unwinder). It has no
	// structural meaning; the simulator stamps it into cycle-budget
	// errors so fuzz-found livelocks are attributable from logs alone.
	Label string

	nodes map[*Node]bool

	// locs maps op.ID -> location. Op IDs are dense (ir.Alloc hands
	// them out sequentially), so this is a slice lookup on the
	// scheduler's hottest query (Where/NodeOf), not a pointer-keyed map.
	locs      []opLoc
	numPlaced int

	version    uint64
	orderVer   uint64
	orderCache []*Node
	epoch      uint64
	nextNodeID int
	maxPos     float64

	// onOpHome, when set, observes every event that changes which node
	// (if any) holds an operation: placement, removal, re-homing via
	// subtree adoption, and in-place freezing. Schedulers register it
	// for the duration of a run so incrementally maintained candidate
	// structures hear about ops whose home changed underneath them
	// (see SetOpHomeHook).
	onOpHome func(op *ir.Op)

	// Chunk arenas for the graph's own small allocations: nodes,
	// vertices, summary bitset backing, and per-iteration count slices
	// are carved from bump-pointer chunks so the scheduling hot loop
	// (node splits, branch insertion) costs amortized fractions of an
	// allocation per mutation. Memory of deleted nodes is retained
	// until the graph itself is dropped — graphs live for one schedule
	// run, so the retention is bounded and deliberate.
	nodeChunk   []Node
	vertexChunk []Vertex
	wordChunk   []uint64
	iterChunk   []int32
	opChunk     []*ir.Op
	dsChunk     []defSite
	spChunk     []int32

	// iterSlots tracks 2 + the largest iteration index seen by AddOp /
	// InsertBranchAtLeaf, so fresh nodes can pre-size their iterCounts
	// and never regrow them inside bumpIter.
	iterSlots int
}

// New returns an empty graph sharing the given allocator.
func New(alloc *ir.Alloc) *Graph {
	if alloc == nil {
		alloc = ir.NewAlloc()
	}
	return &Graph{
		Alloc: alloc,
		nodes: make(map[*Node]bool),
		locs:  make([]opLoc, alloc.NumOps()+1),
	}
}

// loc returns op's registered location, or nil. It reads the
// op-resident placement slot — a line the caller has usually just
// touched — rather than the location table, which stays authoritative
// for the census and Validate's reverse check. The owning-graph test
// rejects placements held over from another graph (clone sources,
// stale pointers into a discarded graph).
func (g *Graph) loc(op *ir.Op) *Vertex {
	if v, ok := op.Placement().(*Vertex); ok && v.node.g == g {
		return v
	}
	return nil
}

// setLoc registers op at v, growing the table for ops allocated after
// the graph was created (frozen drain clones).
func (g *Graph) setLoc(op *ir.Op, v *Vertex) {
	id := op.ID
	if id < 0 {
		panic("graph: op with negative ID")
	}
	if id >= len(g.locs) {
		need := id + 1
		if n := 2 * len(g.locs); n > need {
			need = n
		}
		grown := make([]opLoc, need)
		copy(grown, g.locs)
		g.locs = grown
	}
	g.locs[id] = opLoc{op: op, v: v}
	op.SetPlacement(v)
	g.numPlaced++
	if g.onOpHome != nil {
		g.onOpHome(op)
	}
}

// clearLoc unregisters op.
func (g *Graph) clearLoc(op *ir.Op) {
	id := op.ID
	if uint(id) < uint(len(g.locs)) && g.locs[id].op == op {
		g.locs[id] = opLoc{}
		op.SetPlacement(nil)
		g.numPlaced--
		if g.onOpHome != nil {
			g.onOpHome(op)
		}
	}
}

// SetOpHomeHook registers f to be called after every mutation that
// changes an operation's home: AddOp/RemoveOp/MoveOp (via the location
// table), branch placement and detachment, AdoptSubtree re-homing a
// whole tree, and FreezeOp flipping a placed op out of the schedulable
// set. It returns the previously registered hook so callers can save
// and restore around a scheduling run. The hook must not mutate the
// graph; it exists so schedulers can maintain incremental candidate
// structures (see internal/core) without rescanning: membership updates
// happen at the mutation site, in O(1) per affected op.
func (g *Graph) SetOpHomeHook(f func(op *ir.Op)) func(op *ir.Op) {
	prev := g.onOpHome
	g.onOpHome = f
	return prev
}

// Version changes whenever the graph structure or op placement changes.
// Schedulers use it as the invalidation generation for memoized probe
// results (see DESIGN.md): any cached answer stamped with an older
// version must be recomputed.
func (g *Graph) Version() uint64 { return g.version }

func (g *Graph) bump() { g.version++ }

// BeginVisit starts a fresh traversal epoch for Node.Visited marks.
// Traversals that used to allocate a map[*Node]bool per call mark nodes
// against the epoch instead. A traversal must finish with its epoch
// before the next BeginVisit; graphs are confined to one goroutine.
func (g *Graph) BeginVisit() uint64 {
	g.epoch++
	return g.epoch
}

// allocNode carves a zeroed Node from the node chunk arena.
func (g *Graph) allocNode() *Node {
	if len(g.nodeChunk) == 0 {
		g.nodeChunk = make([]Node, 64)
	}
	n := &g.nodeChunk[0]
	g.nodeChunk = g.nodeChunk[1:]
	return n
}

// allocVertex carves a zeroed Vertex from the vertex chunk arena and
// pre-sizes its def/use summary for the current register space.
func (g *Graph) allocVertex() *Vertex {
	if len(g.vertexChunk) == 0 {
		g.vertexChunk = make([]Vertex, 64)
	}
	v := &g.vertexChunk[0]
	g.vertexChunk = g.vertexChunk[1:]
	g.presizeSummary(v)
	return v
}

// allocWords carves n zeroed uint64s from the word chunk arena.
func (g *Graph) allocWords(n int) []uint64 {
	if len(g.wordChunk) < n {
		c := 1024
		if c < n {
			c = n
		}
		g.wordChunk = make([]uint64, c)
	}
	w := g.wordChunk[:n:n]
	g.wordChunk = g.wordChunk[n:]
	return w
}

// allocIterCounts carves a zeroed per-iteration count slice sized by the
// iterSlots hint, so bumpIter rarely regrows it.
func (g *Graph) allocIterCounts() []int32 {
	n := g.iterSlots
	if n == 0 {
		return nil
	}
	if len(g.iterChunk) < n {
		c := 1024
		if c < n {
			c = n
		}
		g.iterChunk = make([]int32, c)
	}
	s := g.iterChunk[:n:n]
	g.iterChunk = g.iterChunk[n:]
	return s
}

// allocOpSlice carves an empty op list with room for a typical
// instruction's worth of operations. Appends past the carved capacity
// fall back to ordinary heap growth.
func (g *Graph) allocOpSlice() []*ir.Op {
	const opCap = 8
	if len(g.opChunk) < opCap {
		g.opChunk = make([]*ir.Op, 512)
	}
	s := g.opChunk[:0:opCap]
	g.opChunk = g.opChunk[opCap:]
	return s
}

// noteIterSlot widens the iterSlots pre-size hint to cover op's
// iteration.
func (g *Graph) noteIterSlot(op *ir.Op) {
	if s := op.Iter + 2; s > g.iterSlots {
		g.iterSlots = s
	}
}

// NewNode creates a node whose tree is a single leaf with no successor.
// Its position key places it after every existing node; use SetPos or
// PlaceBetween when inserting mid-chain.
func (g *Graph) NewNode() *Node {
	g.nextNodeID++
	g.maxPos++
	n := g.allocNode()
	n.ID = g.nextNodeID
	n.g = g
	n.pos = g.maxPos
	n.iterCounts = g.allocIterCounts()
	n.Root = g.allocVertex()
	n.Root.node = n
	g.nodes[n] = true
	g.bump()
	return n
}

// SetPos overrides a node's order-maintenance key. It bumps the graph
// version: position keys feed the schedulers' below-the-frontier tests,
// so memoized probe results stamped before the change must not survive.
func (g *Graph) SetPos(n *Node, pos float64) {
	n.pos = pos
	if pos > g.maxPos {
		g.maxPos = pos
	}
	g.bump()
}

// PlaceBetween keys n halfway between a and b (either may be nil for
// "before everything" / "after everything").
func (g *Graph) PlaceBetween(n, a, b *Node) {
	switch {
	case a == nil && b == nil:
		g.maxPos++
		n.pos = g.maxPos
	case a == nil:
		n.pos = b.pos - 1
	case b == nil:
		g.SetPos(n, a.pos+1)
	default:
		n.pos = (a.pos + b.pos) / 2
	}
	g.bump()
}

// NumNodes returns the number of live nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Has reports whether n is a live node of this graph.
func (g *Graph) Has(n *Node) bool { return g.nodes[n] }

// Where returns the vertex currently holding op (branches included), or
// nil if the op is not placed.
func (g *Graph) Where(op *ir.Op) *Vertex { return g.loc(op) }

// NodeOf returns the node currently holding op, or nil.
func (g *Graph) NodeOf(op *ir.Op) *Node {
	if v := g.loc(op); v != nil {
		return v.node
	}
	return nil
}

// Preds returns the distinct predecessors of n, in first-edge order.
// Allocates the result slice (used by the splice/insert passes, which
// mutate edges while iterating and need a snapshot); hot paths use
// SinglePred or VisitPreds.
func (g *Graph) Preds(n *Node) []*Node {
	ps := make([]*Node, 0, n.preds.n)
	n.preds.visit(func(p *Node, _ int32) bool {
		ps = append(ps, p)
		return true
	})
	return ps
}

// VisitPreds calls f for every distinct predecessor of n, stopping
// early when f returns false. Allocation-free; f must not mutate edges.
func (g *Graph) VisitPreds(n *Node, f func(*Node) bool) {
	n.preds.visit(func(p *Node, _ int32) bool { return f(p) })
}

// PredEdgeCount returns the total number of edges into n.
func (g *Graph) PredEdgeCount(n *Node) int {
	return n.preds.total()
}

// SinglePred returns the unique predecessor of n when n has exactly one
// incoming edge, else nil. O(1) on the compact adjacency set.
func (g *Graph) SinglePred(n *Node) *Node {
	return n.preds.single()
}

func (g *Graph) link(from, to *Node) {
	if to == nil {
		return
	}
	to.preds.add(from)
	from.succs.add(to)
}

func (g *Graph) unlink(from, to *Node) {
	if to == nil {
		return
	}
	if !to.preds.remove(from) || !from.succs.remove(to) {
		panic(fmt.Sprintf("graph: unlink of absent edge n%d->n%d", from.ID, to.ID))
	}
}

// RetargetLeaf points leaf at succ (nil for program exit), maintaining
// predecessor sets.
func (g *Graph) RetargetLeaf(leaf *Vertex, succ *Node) {
	if !leaf.IsLeaf() {
		panic("graph: RetargetLeaf on non-leaf vertex")
	}
	g.unlinkIfSet(leaf)
	leaf.Succ = succ
	g.link(leaf.node, succ)
	g.bump()
}

func (g *Graph) unlinkIfSet(leaf *Vertex) {
	if leaf.Succ != nil {
		g.unlink(leaf.node, leaf.Succ)
		leaf.Succ = nil
	}
}

// AddOp places op at vertex v.
func (g *Graph) AddOp(op *ir.Op, v *Vertex) {
	if op.IsBranch() {
		panic("graph: AddOp with branch op")
	}
	if g.loc(op) != nil {
		panic("graph: op already placed")
	}
	if v.Ops == nil {
		v.Ops = g.allocOpSlice()
	}
	v.Ops = append(v.Ops, op)
	g.setLoc(op, v)
	g.noteIterSlot(op)
	v.sum.addOp(op)
	v.sum.indexOp(op, int32(len(v.Ops)-1))
	resummarize(v)
	if n := v.node; n != nil {
		n.opCount++
		n.noteOpAdded(op)
	}
	g.bump()
}

// RemoveOp detaches op from its vertex.
func (g *Graph) RemoveOp(op *ir.Op) {
	v := g.loc(op)
	if v == nil {
		panic("graph: RemoveOp of unplaced op")
	}
	if op.IsBranch() {
		panic("graph: RemoveOp with branch op; use branch transforms")
	}
	if !v.removeOp(op) {
		panic("graph: op location out of sync")
	}
	g.clearLoc(op)
	v.recomputeOwn()
	resummarize(v)
	if n := v.node; n != nil {
		n.opCount--
		n.noteOpRemoved(op)
	}
	g.bump()
}

// FreezeOp marks a placed operation Frozen, maintaining the per-node
// schedulable counts. The Frozen flag of a placed op must never be
// flipped directly: the incremental caches depend on the graph seeing
// the transition. (Ops frozen before placement — drain clones, epilogue
// copies — just go through AddOp as usual.)
func (g *Graph) FreezeOp(op *ir.Op) {
	v := g.loc(op)
	if v == nil {
		panic("graph: FreezeOp of unplaced op")
	}
	if op.Frozen {
		return
	}
	if n := v.node; n != nil {
		n.noteOpRemoved(op)
	}
	op.Frozen = true
	if g.onOpHome != nil {
		g.onOpHome(op)
	}
	g.bump()
}

// MoveOp detaches op from its current vertex and re-attaches it at v.
func (g *Graph) MoveOp(op *ir.Op, v *Vertex) {
	g.RemoveOp(op)
	g.AddOp(op, v)
}

// InsertBranchAtLeaf replaces leaf with a branch vertex holding cj whose
// true side goes to tSucc and false side to fSucc (nil meaning program
// exit). The leaf's former successor edge is discarded; callers detach it
// first. The leaf's operations stay on the new branch vertex (they commit
// on both outcomes, exactly as they did when the vertex was a leaf). The
// two fresh leaf vertices are returned (true side first).
func (g *Graph) InsertBranchAtLeaf(leaf *Vertex, cj *ir.Op, tSucc, fSucc *Node) (*Vertex, *Vertex) {
	if !leaf.IsLeaf() {
		panic("graph: InsertBranchAtLeaf on non-leaf")
	}
	if !cj.IsBranch() {
		panic("graph: InsertBranchAtLeaf with non-branch op")
	}
	if g.loc(cj) != nil {
		panic("graph: branch already placed")
	}
	g.unlinkIfSet(leaf)

	t := g.allocVertex()
	t.node, t.parent, t.Succ = leaf.node, leaf, tSucc
	f := g.allocVertex()
	f.node, f.parent, f.Succ = leaf.node, leaf, fSucc
	g.link(leaf.node, t.Succ)
	g.link(leaf.node, f.Succ)

	g.noteIterSlot(cj)
	leaf.CJ = cj
	leaf.True = t
	leaf.False = f
	g.setLoc(cj, leaf)
	leaf.sum.addOp(cj)
	resummarize(leaf)
	if n := leaf.node; n != nil {
		n.branchCount++
		n.noteOpAdded(cj)
	}
	g.bump()
	return t, f
}

// DetachBranchRoot removes the branch at the root vertex of n, which must
// carry no nested structure responsibilities for the caller: it returns
// the cj op (now unplaced) and the two subtrees, whose vertices still
// claim n as their node until adopted elsewhere. The node n is deleted
// from the graph; its root ops are returned for re-homing.
func (g *Graph) DetachBranchRoot(n *Node) (cj *ir.Op, rootOps []*ir.Op, trueSub, falseSub *Vertex) {
	r := n.Root
	if r.IsLeaf() {
		panic("graph: DetachBranchRoot on leaf root")
	}
	cj = r.CJ
	g.clearLoc(cj)
	// Steal the root's op slice instead of copying it: the root vertex
	// is discarded with the node, so ownership transfers to the caller.
	rootOps, r.Ops = r.Ops, nil
	for _, op := range rootOps {
		g.clearLoc(op)
	}
	trueSub, falseSub = r.True, r.False
	// Unlink every outgoing edge of n; the subtrees will be re-linked
	// when adopted into new nodes.
	n.Walk(func(v *Vertex) {
		if v.IsLeaf() && v.Succ != nil {
			g.unlink(n, v.Succ)
			// Keep v.Succ: adoption re-links it.
		}
	})
	if g.PredEdgeCount(n) != 0 {
		panic("graph: DetachBranchRoot with live predecessors")
	}
	delete(g.nodes, n)
	g.bump()
	return cj, rootOps, trueSub, falseSub
}

// AdoptSubtree makes sub the tree of fresh node n: vertex ownership moves
// to n, leaf edges are linked, and contained ops keep their locations.
// The node's previous root (a bare leaf from NewNode) is discarded.
func (g *Graph) AdoptSubtree(n *Node, sub *Vertex) {
	if n.Root != nil && (!n.Root.IsLeaf() || len(n.Root.Ops) != 0 || n.Root.Succ != nil) {
		panic("graph: AdoptSubtree over non-empty node")
	}
	sub.parent = nil
	n.Root = sub
	n.resetSchedCounts()
	ops, branches := 0, 0
	var adopt func(v *Vertex)
	adopt = func(v *Vertex) {
		v.node = n
		ops += len(v.Ops)
		for _, op := range v.Ops {
			n.noteOpAdded(op)
			if g.onOpHome != nil {
				g.onOpHome(op)
			}
		}
		if v.IsLeaf() {
			g.link(n, v.Succ)
			return
		}
		branches++
		n.noteOpAdded(v.CJ)
		if g.onOpHome != nil {
			g.onOpHome(v.CJ)
		}
		adopt(v.True)
		adopt(v.False)
	}
	adopt(sub)
	n.opCount = ops
	n.branchCount = branches
	// Freshly built subtrees (frozen drain clones) carry no summaries
	// and detached ones have stale parent pointers above them; rebuild
	// the whole adopted tree bottom-up.
	recomputeSummaries(sub)
	g.bump()
}

// CloneSubtreeFrozen deep-copies the subtree rooted at sub for use on a
// drain path: operations and branches are cloned with fresh IDs and
// marked Frozen, leaf successors are preserved. The clone is returned
// unattached (no node owner, no registered locations, no linked edges);
// adopt it with AdoptSubtree.
func (g *Graph) CloneSubtreeFrozen(sub *Vertex) *Vertex {
	c := g.allocVertex()
	c.Succ = sub.Succ
	if len(sub.Ops) > 0 {
		c.Ops = g.allocOpSlice()
	}
	for _, op := range sub.Ops {
		c.Ops = append(c.Ops, op.Clone(g.Alloc.OpID(), true))
	}
	if sub.CJ != nil {
		c.CJ = sub.CJ.Clone(g.Alloc.OpID(), true)
		c.True = g.CloneSubtreeFrozen(sub.True)
		c.False = g.CloneSubtreeFrozen(sub.False)
		c.True.parent = c
		c.False.parent = c
		c.Succ = nil
	}
	return c
}

// registerSubtree records locations for every op in an adopted subtree
// whose ops are not yet registered (used for cloned drains).
func (g *Graph) RegisterSubtreeOps(sub *Vertex) {
	sub.walk(func(v *Vertex) {
		for _, op := range v.Ops {
			if g.loc(op) == nil {
				g.setLoc(op, v)
			}
		}
		if v.CJ != nil && g.loc(v.CJ) == nil {
			g.setLoc(v.CJ, v)
		}
	})
	g.bump()
}

// HoistOp moves op from its vertex to the parent vertex (one step toward
// the root, past one conditional jump). Legality is the caller's job.
func (g *Graph) HoistOp(op *ir.Op) {
	v := g.loc(op)
	if v == nil || v.parent == nil {
		panic("graph: HoistOp at root or unplaced")
	}
	g.MoveOp(op, v.parent)
}

// SpliceOutEmpty removes an empty single-leaf node from the graph,
// redirecting every predecessor edge to its fall-through successor. The
// entry pointer is updated if needed. It reports whether the splice
// happened.
func (g *Graph) SpliceOutEmpty(n *Node) bool {
	if !n.Empty() {
		return false
	}
	leaf := n.Root // empty ⇒ branch-free ⇒ the root is the only leaf
	succ := leaf.Succ
	if succ == n { // self-loop; cannot splice
		return false
	}
	// Redirect every predecessor leaf pointing at n. The snapshot (into
	// a stack buffer — this runs after every successful move) is needed
	// because retargeting mutates the pred set; it rewires edges but
	// never reshapes a pred's tree, so the in-place leaf visit is safe.
	var pbuf [8]*Node
	preds := pbuf[:0]
	n.preds.visit(func(p *Node, _ int32) bool {
		preds = append(preds, p)
		return true
	})
	for _, p := range preds {
		p.VisitLeaves(func(l *Vertex) bool {
			if l.Succ == n {
				g.RetargetLeaf(l, succ)
			}
			return true
		})
	}
	if g.Entry == n {
		g.Entry = succ
	}
	g.RetargetLeaf(leaf, nil)
	delete(g.nodes, n)
	g.bump()
	return true
}

// InsertBefore creates a fresh empty node in front of n: every
// predecessor edge of n is redirected to the new node, whose single leaf
// falls through to n. Entry is updated if n was the entry. Used for the
// paper's "empty instructions at the beginning of the program"
// mitigation and by the POST node-breaking pass.
func (g *Graph) InsertBefore(n *Node) *Node {
	nn := g.NewNode()
	var before *Node
	g.VisitPreds(n, func(p *Node) bool {
		if before == nil || p.pos > before.pos {
			before = p
		}
		return true
	})
	g.PlaceBetween(nn, before, n)
	for _, p := range g.Preds(n) {
		p.VisitLeaves(func(leaf *Vertex) bool {
			if leaf.Succ == n {
				g.RetargetLeaf(leaf, nn)
			}
			return true
		})
	}
	g.RetargetLeaf(nn.Root, n)
	if g.Entry == n {
		g.Entry = nn
	}
	return nn
}

// Order returns the nodes in a deterministic reverse-postorder from the
// entry (drain paths included). The result is cached until the graph
// changes.
func (g *Graph) Order() []*Node {
	if g.orderCache != nil && g.orderVer == g.version {
		return g.orderCache
	}
	post := make([]*Node, 0, len(g.nodes))
	epoch := g.BeginVisit()
	var dfs func(n *Node)
	dfs = func(n *Node) {
		if n == nil || n.Visited(epoch) {
			return
		}
		n.VisitLeaves(func(l *Vertex) bool {
			dfs(l.Succ)
			return true
		})
		post = append(post, n)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	g.orderCache = post
	g.orderVer = g.version
	for i, n := range post {
		n.orderIdx = int32(i)
		n.orderStamp = g.orderVer
	}
	return post
}

// Index returns the position of n in Order, or -1 if unreachable. O(1)
// after the order cache is built: the index is stamped on the node.
func (g *Graph) Index(n *Node) int {
	g.Order()
	if n.orderStamp == g.orderVer {
		return int(n.orderIdx)
	}
	return -1
}

// MainChain returns the non-drain spine of the graph: starting at entry,
// repeatedly following the unique non-drain successor. This is the
// instruction sequence whose rows form the pipelined schedule.
func (g *Graph) MainChain() []*Node {
	var chain []*Node
	epoch := g.BeginVisit()
	for n := g.Entry; n != nil && !n.Visited(epoch); {
		chain = append(chain, n)
		n = n.NonDrainSucc()
	}
	return chain
}
