package graph

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// summary is the incrementally maintained def/use digest of one vertex:
// the "own" tier covers exactly the vertex's operation list plus its
// conditional jump's reads, the "sub" tier covers the whole subtree
// rooted at the vertex (own ∪ both children's sub tiers). Register sets
// are exact — a bit is set iff some operation in the covered scope
// defines/reads that register — and the store/load counters count
// memory operations in the covered scope. Frozen operations are
// included: the ps dependence scans the summaries filter do not skip
// them either.
//
// Maintenance discipline (see DESIGN.md §7): adding an operation ORs
// its registers in (exact, because a bit is "some op contributes");
// removing one recomputes the own tier from the surviving op list
// (bits cannot be cleared blindly — another op may contribute the same
// register), then the sub tiers along the path to the root are rebuilt
// as own ∪ children. Operand rewrites (copy propagation, renaming) must
// reach the vertex through Graph.ReplaceUse / Graph.RetargetDef, which
// recompute the same way.
type summary struct {
	ownDefs, ownUses bitset.Grow
	subDefs, subUses bitset.Grow
	ownStores        int32
	ownLoads         int32
	subStores        int32
	subLoads         int32
}

// presizeSummary points v's four register sets at zeroed storage carved
// from the graph's word arena, sized for the current register space, so
// steady-state maintenance (addOp OR-ins, recomputes, sub-tier unions)
// never grows them. Registers allocated after v's creation (renaming
// mid-schedule) still grow the affected set on demand.
func (g *Graph) presizeSummary(v *Vertex) {
	w := g.Alloc.NumRegs()>>6 + 1
	backing := g.allocWords(4 * w)
	s := &v.sum
	s.ownDefs.SetBacking(backing[0*w : 1*w : 1*w])
	s.ownUses.SetBacking(backing[1*w : 2*w : 2*w])
	s.subDefs.SetBacking(backing[2*w : 3*w : 3*w])
	s.subUses.SetBacking(backing[3*w : 4*w : 4*w])
}

// words returns the total backing-word count across the four register
// sets (arena sizing for Clone).
func (s *summary) words() int {
	return s.ownDefs.Words() + s.ownUses.Words() + s.subDefs.Words() + s.subUses.Words()
}

// cloneInto copies s into dst, carving the register sets' storage out
// of arena; it returns the unused arena tail. One graph-wide arena
// keeps Clone at a constant allocation count.
func (s *summary) cloneInto(dst *summary, arena []uint64) []uint64 {
	dst.ownStores, dst.ownLoads = s.ownStores, s.ownLoads
	dst.subStores, dst.subLoads = s.subStores, s.subLoads
	for _, p := range [4]struct{ d, s *bitset.Grow }{
		{&dst.ownDefs, &s.ownDefs}, {&dst.ownUses, &s.ownUses},
		{&dst.subDefs, &s.subDefs}, {&dst.subUses, &s.subUses},
	} {
		n := p.s.Words()
		p.d.SetWords(arena[:n], p.s)
		arena = arena[n:]
	}
	return arena
}

// addOp ORs one operation's contribution into the own tier (branches
// contribute reads only; Def is NoReg for them).
func (s *summary) addOp(op *ir.Op) {
	if d := op.Def(); d != ir.NoReg {
		s.ownDefs.Add(int(d))
	}
	var buf [3]ir.Reg
	for _, u := range op.Uses(buf[:0]) {
		s.ownUses.Add(int(u))
	}
	if op.IsStore() {
		s.ownStores++
	}
	if op.IsLoad() {
		s.ownLoads++
	}
}

// recomputeOwn rebuilds the own tier from v's current op list and CJ.
func (v *Vertex) recomputeOwn() {
	s := &v.sum
	s.ownDefs.Reset()
	s.ownUses.Reset()
	s.ownStores, s.ownLoads = 0, 0
	for _, op := range v.Ops {
		s.addOp(op)
	}
	if v.CJ != nil {
		s.addOp(v.CJ)
	}
}

// recomputeSub rebuilds v's sub tier as own ∪ children (children's sub
// tiers are trusted; callers recompute bottom-up).
func (v *Vertex) recomputeSub() {
	s := &v.sum
	s.subDefs.CopyFrom(&s.ownDefs)
	s.subUses.CopyFrom(&s.ownUses)
	s.subStores, s.subLoads = s.ownStores, s.ownLoads
	if v.IsLeaf() {
		return
	}
	for _, c := range [2]*Vertex{v.True, v.False} {
		s.subDefs.Or(&c.sum.subDefs)
		s.subUses.Or(&c.sum.subUses)
		s.subStores += c.sum.subStores
		s.subLoads += c.sum.subLoads
	}
}

// resummarize rebuilds the sub tiers on the path from v to its root
// after v's own tier changed. O(tree depth) word operations.
func resummarize(v *Vertex) {
	for x := v; x != nil; x = x.parent {
		x.recomputeSub()
	}
}

// recomputeSummaries rebuilds every summary in the subtree rooted at v
// from scratch, bottom-up (subtree adoption, freshly built clones).
func recomputeSummaries(v *Vertex) {
	if !v.IsLeaf() {
		recomputeSummaries(v.True)
		recomputeSummaries(v.False)
	}
	v.recomputeOwn()
	v.recomputeSub()
}

// SubtreeDefines reports whether any operation in the subtree rooted at
// v writes register r. O(1) from the maintained summary; branches
// define nothing.
func (v *Vertex) SubtreeDefines(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.subDefs.Has(int(r))
}

// SubtreeReads reports whether any operation (conditional jumps
// included) in the subtree rooted at v reads register r. O(1).
func (v *Vertex) SubtreeReads(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.subUses.Has(int(r))
}

// DefinesHere reports whether an operation attached to v itself writes
// register r (the liveness kill test: only root-vertex definitions
// commit on every path). O(1).
func (v *Vertex) DefinesHere(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.ownDefs.Has(int(r))
}

// SubtreeStores reports whether the subtree rooted at v contains a
// store. O(1).
func (v *Vertex) SubtreeStores() bool { return v.sum.subStores > 0 }

// SubtreeLoads reports whether the subtree rooted at v contains a
// load. O(1).
func (v *Vertex) SubtreeLoads() bool { return v.sum.subLoads > 0 }

// ReplaceUse substitutes register to for every read of from in op,
// keeping the def/use summaries exact. All operand rewrites of placed
// operations (copy propagation, renaming retries) must route through
// this method — calling ir.Op.ReplaceUse directly on a placed op would
// silently desynchronize the summaries the ps fast paths filter on.
// Unplaced ops are rewritten without summary work.
func (g *Graph) ReplaceUse(op *ir.Op, from, to ir.Reg) {
	op.ReplaceUse(from, to)
	g.noteOperandsChanged(op)
}

// RetargetDef points op's destination at register r (the renaming
// transformation), keeping the def/use summaries exact. Same routing
// rule as ReplaceUse: a placed op's Dst must never be assigned
// directly.
func (g *Graph) RetargetDef(op *ir.Op, r ir.Reg) {
	if op.IsBranch() || op.IsStore() {
		panic("graph: RetargetDef on op without a register destination")
	}
	op.Dst = r
	g.noteOperandsChanged(op)
}

// noteOperandsChanged refreshes summaries after op's registers were
// rewritten in place.
func (g *Graph) noteOperandsChanged(op *ir.Op) {
	if v := g.loc(op); v != nil {
		v.recomputeOwn()
		resummarize(v)
		g.bump()
	}
}
