package graph

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// summary is the incrementally maintained def/use digest of one vertex,
// in three tiers: the "own" tier covers exactly the vertex's operation
// list plus its conditional jump's reads, the "sub" tier covers the
// whole subtree rooted at the vertex (own ∪ both children's sub tiers),
// and the "pre" tier covers the root→vertex path of the instruction
// tree (parent's pre ∪ own; the root's pre is its own tier). Register
// sets are exact — a bit is set iff some operation in the covered scope
// defines/reads that register — and the store/load counters count
// memory operations in the covered scope. Frozen operations are
// included: the ps dependence scans the summaries filter do not skip
// them either.
//
// The sub tier answers "could anything below here conflict" (a
// superset of any single path); the pre tier answers "does anything on
// this exact path conflict", which is what the committed-path scan
// needs — a leaf's pre tier makes that filter exact instead of
// conservative (DESIGN.md §10).
//
// Maintenance discipline (see DESIGN.md §7, §10): adding an operation
// ORs its registers in (exact, because a bit is "some op contributes");
// removing one recomputes the own tier from the surviving op list
// (bits cannot be cleared blindly — another op may contribute the same
// register), then the sub tiers along the path to the root are rebuilt
// as own ∪ children and the pre tiers of the vertex's subtree are
// re-propagated top-down (a changed own tier changes exactly the
// prefixes at and below the vertex). Operand rewrites (copy
// propagation, renaming) must reach the vertex through
// Graph.ReplaceUse / Graph.RetargetDef, which recompute the same way.
type summary struct {
	ownDefs, ownUses bitset.Grow
	subDefs, subUses bitset.Grow
	preDefs          bitset.Grow
	ownStores        int32
	ownLoads         int32
	subStores        int32
	subLoads         int32
	preStores        int32
	preLoads         int32

	// defSites is the own-tier def-site index: one entry per operation
	// in the vertex's op list that defines a register, sorted by (reg,
	// pos), so "which op here defines r" is a binary search instead of
	// an op-list scan. The single-definition-per-path invariant
	// (checkSingleDefPerPath) makes the answer unique along any
	// root→leaf path, which is what lets the committed-path resolver
	// jump straight to blockers and copy-rewrite sites. storePos lists
	// the positions of the vertex's store ops, ascending, for the
	// memory-ordering test. Both are maintained at exactly the summary
	// maintenance sites (AddOp appends, everything else routes through
	// recomputeOwn).
	defSites []defSite
	storePos []int32
}

// defSite keys one register-defining operation of a vertex's op list by
// its defined register and list position.
type defSite struct {
	reg ir.Reg
	pos int32
}

// presizeSummary points v's five register sets at zeroed storage carved
// from the graph's word arena, sized for the current register space, so
// steady-state maintenance (addOp OR-ins, recomputes, sub-tier unions,
// pre-tier propagation) never grows them. Registers allocated after v's
// creation (renaming mid-schedule) still grow the affected set on
// demand.
func (g *Graph) presizeSummary(v *Vertex) {
	w := g.Alloc.NumRegs()>>6 + 1
	backing := g.allocWords(5 * w)
	s := &v.sum
	s.ownDefs.SetBacking(backing[0*w : 1*w : 1*w])
	s.ownUses.SetBacking(backing[1*w : 2*w : 2*w])
	s.subDefs.SetBacking(backing[2*w : 3*w : 3*w])
	s.subUses.SetBacking(backing[3*w : 4*w : 4*w])
	s.preDefs.SetBacking(backing[4*w : 5*w : 5*w])
	// Seed the def/store site indexes with a few slots from the graph
	// arenas: most vertices hold a handful of ops, so this makes the
	// common indexOp path append-without-allocating. A vertex that
	// outgrows its seed falls back to ordinary append growth.
	const seed = 4
	if len(g.dsChunk) < seed {
		g.dsChunk = make([]defSite, 256)
	}
	s.defSites = g.dsChunk[:0:seed]
	g.dsChunk = g.dsChunk[seed:]
	if len(g.spChunk) < seed {
		g.spChunk = make([]int32, 256)
	}
	s.storePos = g.spChunk[:0:seed]
	g.spChunk = g.spChunk[seed:]
}

// words returns the total backing-word count across the five register
// sets (arena sizing for Clone).
func (s *summary) words() int {
	return s.ownDefs.Words() + s.ownUses.Words() +
		s.subDefs.Words() + s.subUses.Words() + s.preDefs.Words()
}

// cloneInto copies s into dst, carving the register sets' storage out
// of arena and the def/store site indexes out of dsArena/spArena (as
// capped sub-slices, so a later append on the clone re-allocates
// instead of clobbering a neighbour); it returns the unused arena
// tails. Graph-wide arenas keep Clone at a constant allocation count.
func (s *summary) cloneInto(dst *summary, arena []uint64, dsArena []defSite, spArena []int32) ([]uint64, []defSite, []int32) {
	dst.ownStores, dst.ownLoads = s.ownStores, s.ownLoads
	dst.subStores, dst.subLoads = s.subStores, s.subLoads
	dst.preStores, dst.preLoads = s.preStores, s.preLoads
	for _, p := range [5]struct{ d, s *bitset.Grow }{
		{&dst.ownDefs, &s.ownDefs}, {&dst.ownUses, &s.ownUses},
		{&dst.subDefs, &s.subDefs}, {&dst.subUses, &s.subUses},
		{&dst.preDefs, &s.preDefs},
	} {
		n := p.s.Words()
		p.d.SetWords(arena[:n], p.s)
		arena = arena[n:]
	}
	if n := len(s.defSites); n > 0 {
		copy(dsArena, s.defSites)
		dst.defSites = dsArena[:n:n]
		dsArena = dsArena[n:]
	}
	if n := len(s.storePos); n > 0 {
		copy(spArena, s.storePos)
		dst.storePos = spArena[:n:n]
		spArena = spArena[n:]
	}
	return arena, dsArena, spArena
}

// addOp ORs one operation's contribution into the own tier (branches
// contribute reads only; Def is NoReg for them).
func (s *summary) addOp(op *ir.Op) {
	if d := op.Def(); d != ir.NoReg {
		s.ownDefs.Add(int(d))
	}
	var buf [3]ir.Reg
	for _, u := range op.Uses(buf[:0]) {
		s.ownUses.Add(int(u))
	}
	if op.IsStore() {
		s.ownStores++
	}
	if op.IsLoad() {
		s.ownLoads++
	}
}

// indexOp records op's def and store sites at op-list position pos.
// Callers append ops at the end of the list (AddOp) or replay the whole
// list in order (recomputeOwn), so storePos stays ascending without
// sorting; defSites keeps (reg, pos) order via sorted insertion.
func (s *summary) indexOp(op *ir.Op, pos int32) {
	if d := op.Def(); d != ir.NoReg {
		lo, hi := 0, len(s.defSites)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			e := s.defSites[mid]
			if e.reg < d || e.reg == d && e.pos < pos {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		s.defSites = append(s.defSites, defSite{})
		copy(s.defSites[lo+1:], s.defSites[lo:])
		s.defSites[lo] = defSite{reg: d, pos: pos}
	}
	if op.IsStore() {
		s.storePos = append(s.storePos, pos)
	}
}

// recomputeOwn rebuilds the own tier — bitsets, counters, and def/store
// site indexes — from v's current op list and CJ.
func (v *Vertex) recomputeOwn() {
	s := &v.sum
	s.ownDefs.Reset()
	s.ownUses.Reset()
	s.ownStores, s.ownLoads = 0, 0
	s.defSites = s.defSites[:0]
	s.storePos = s.storePos[:0]
	for i, op := range v.Ops {
		s.addOp(op)
		s.indexOp(op, int32(i))
	}
	if v.CJ != nil {
		s.addOp(v.CJ) // reads only: branches define nothing, touch no memory
	}
}

// recomputeSub rebuilds v's sub tier as own ∪ children (children's sub
// tiers are trusted; callers recompute bottom-up).
func (v *Vertex) recomputeSub() {
	s := &v.sum
	s.subDefs.CopyFrom(&s.ownDefs)
	s.subUses.CopyFrom(&s.ownUses)
	s.subStores, s.subLoads = s.ownStores, s.ownLoads
	if v.IsLeaf() {
		return
	}
	for _, c := range [2]*Vertex{v.True, v.False} {
		s.subDefs.Or(&c.sum.subDefs)
		s.subUses.Or(&c.sum.subUses)
		s.subStores += c.sum.subStores
		s.subLoads += c.sum.subLoads
	}
}

// recomputePre rebuilds v's pre tier as parent's pre ∪ own (own alone
// at the root). The parent's pre tier is trusted; callers propagate
// top-down.
func (v *Vertex) recomputePre() {
	s := &v.sum
	if p := v.parent; p != nil {
		s.preDefs.CopyFrom(&p.sum.preDefs)
		s.preDefs.Or(&s.ownDefs)
		s.preStores = p.sum.preStores + s.ownStores
		s.preLoads = p.sum.preLoads + s.ownLoads
		return
	}
	s.preDefs.CopyFrom(&s.ownDefs)
	s.preStores, s.preLoads = s.ownStores, s.ownLoads
}

// repropagatePre rebuilds the pre tiers of the subtree rooted at v,
// top-down. Called after v's own tier changed: prefixes strictly above
// v are unaffected (they do not include v's ops), while every prefix
// at or below v includes v's own tier and must be refreshed. O(1) at a
// leaf — the overwhelmingly common mutation site.
func repropagatePre(v *Vertex) {
	v.recomputePre()
	if !v.IsLeaf() {
		repropagatePre(v.True)
		repropagatePre(v.False)
	}
}

// resummarize rebuilds the sub tiers on the path from v to its root and
// the pre tiers of v's subtree after v's own tier changed. O(tree
// depth + subtree size) word operations; instruction trees are bounded
// by the machine's branch budget, so both terms are small constants.
func resummarize(v *Vertex) {
	for x := v; x != nil; x = x.parent {
		x.recomputeSub()
	}
	repropagatePre(v)
}

// recomputeSummaries rebuilds every summary in the subtree rooted at v
// from scratch: own and sub tiers bottom-up, then pre tiers top-down
// (subtree adoption, freshly built clones). The caller guarantees v's
// parent pointer is current (AdoptSubtree clears it before calling).
func recomputeSummaries(v *Vertex) {
	recomputeOwnSub(v)
	repropagatePre(v)
}

func recomputeOwnSub(v *Vertex) {
	if !v.IsLeaf() {
		recomputeOwnSub(v.True)
		recomputeOwnSub(v.False)
	}
	v.recomputeOwn()
	v.recomputeSub()
}

// SubtreeDefines reports whether any operation in the subtree rooted at
// v writes register r. O(1) from the maintained summary; branches
// define nothing.
func (v *Vertex) SubtreeDefines(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.subDefs.Has(int(r))
}

// SubtreeReads reports whether any operation (conditional jumps
// included) in the subtree rooted at v reads register r. O(1).
func (v *Vertex) SubtreeReads(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.subUses.Has(int(r))
}

// DefinesHere reports whether an operation attached to v itself writes
// register r (the liveness kill test: only root-vertex definitions
// commit on every path). O(1).
func (v *Vertex) DefinesHere(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.ownDefs.Has(int(r))
}

// SubtreeStores reports whether the subtree rooted at v contains a
// store. O(1).
func (v *Vertex) SubtreeStores() bool { return v.sum.subStores > 0 }

// SubtreeLoads reports whether the subtree rooted at v contains a
// load. O(1).
func (v *Vertex) SubtreeLoads() bool { return v.sum.subLoads > 0 }

// ReadsHere reports whether an operation attached to v itself (its
// conditional jump included) reads register r. O(1).
func (v *Vertex) ReadsHere(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.ownUses.Has(int(r))
}

// StoresHere reports whether v's own operation list contains a store.
// O(1).
func (v *Vertex) StoresHere() bool { return v.sum.ownStores > 0 }

// LoadsHere reports whether v's own operation list contains a load.
// O(1).
func (v *Vertex) LoadsHere() bool { return v.sum.ownLoads > 0 }

// PathDefines reports whether any operation on the root→v path of v's
// instruction tree (v's own operations included) writes register r.
// Unlike SubtreeDefines — a superset over all paths below a vertex —
// this is exact for the one path ending at v: a false answer proves no
// committed-path operation defines r. O(1) from the pre tier.
func (v *Vertex) PathDefines(r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	return v.sum.preDefs.Has(int(r))
}

// DefSiteHere returns the operation in v's own op list that defines
// register r, with its list position, or (nil, 0) when no own op does.
// The single-definition-per-path invariant makes the site unique
// within any one path, so along a root→leaf walk this resolves "who
// defines r here" without enumerating the op list. The index is sorted
// but scanned linearly with an early exit: def lists are bounded by
// the machine's op slots, fitting in a cache line or two, where a
// predictable sequential scan beats binary-search branch misses.
func (v *Vertex) DefSiteHere(r ir.Reg) (*ir.Op, int32) {
	for _, e := range v.sum.defSites {
		if e.reg < r {
			continue
		}
		if e.reg == r {
			return v.Ops[e.pos], e.pos
		}
		break
	}
	return nil, 0
}

// StoreSites returns the op-list positions of v's own store operations,
// ascending. The returned slice is the live index — callers must not
// mutate it.
func (v *Vertex) StoreSites() []int32 { return v.sum.storePos }

// PathStores reports whether the root→v path contains a store. O(1).
func (v *Vertex) PathStores() bool { return v.sum.preStores > 0 }

// PathLoads reports whether the root→v path contains a load. O(1).
func (v *Vertex) PathLoads() bool { return v.sum.preLoads > 0 }

// ReplaceUse substitutes register to for every read of from in op,
// keeping the def/use summaries exact. All operand rewrites of placed
// operations (copy propagation, renaming retries) must route through
// this method — calling ir.Op.ReplaceUse directly on a placed op would
// silently desynchronize the summaries the ps fast paths filter on.
// Unplaced ops are rewritten without summary work.
func (g *Graph) ReplaceUse(op *ir.Op, from, to ir.Reg) {
	op.ReplaceUse(from, to)
	g.noteOperandsChanged(op)
}

// RetargetDef points op's destination at register r (the renaming
// transformation), keeping the def/use summaries exact. Same routing
// rule as ReplaceUse: a placed op's Dst must never be assigned
// directly.
func (g *Graph) RetargetDef(op *ir.Op, r ir.Reg) {
	if op.IsBranch() || op.IsStore() {
		panic("graph: RetargetDef on op without a register destination")
	}
	op.SetDst(r)
	g.noteOperandsChanged(op)
}

// noteOperandsChanged refreshes summaries after op's registers were
// rewritten in place.
func (g *Graph) noteOperandsChanged(op *ir.Op) {
	if v := g.loc(op); v != nil {
		v.recomputeOwn()
		resummarize(v)
		g.bump()
	}
}
