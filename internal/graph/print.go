package graph

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the whole graph in traversal order, one node per line.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Order() {
		b.WriteString(g.NodeString(n))
		b.WriteByte('\n')
	}
	return b.String()
}

// NodeString renders a single node, e.g.
//
//	n3: [r1 = add r2, r3; r4 = load X[2]] cj r1 < r9 ? (-> n4) : ([drain] -> n9)
func (g *Graph) NodeString(n *Node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d:", n.ID)
	if n.Drain {
		b.WriteString(" (drain)")
	}
	b.WriteByte(' ')
	b.WriteString(vertexString(n.Root))
	return b.String()
}

func vertexString(v *Vertex) string {
	var b strings.Builder
	if len(v.Ops) > 0 {
		parts := make([]string, len(v.Ops))
		for i, op := range v.Ops {
			parts[i] = op.String()
		}
		fmt.Fprintf(&b, "[%s] ", strings.Join(parts, "; "))
	}
	if v.IsLeaf() {
		if v.Succ == nil {
			b.WriteString("-> exit")
		} else {
			fmt.Fprintf(&b, "-> n%d", v.Succ.ID)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%s ? (%s) : (%s)", v.CJ, vertexString(v.True), vertexString(v.False))
	return b.String()
}

// RowString renders the schedulable content of a node as a compact row of
// origin/iteration tags, e.g. "a0 d0 f0 | cj0" — the format used when
// printing pipelined schedules like the paper's Figures 5, 9 and 13.
// name maps an origin index to a mnemonic.
func (g *Graph) RowString(n *Node, name func(origin int) string) string {
	var ops, cjs []string
	n.Walk(func(v *Vertex) {
		for _, o := range v.Ops {
			if o.Frozen {
				continue
			}
			ops = append(ops, fmt.Sprintf("%s%d", name(o.Origin), o.Iter))
		}
		if v.CJ != nil && !v.CJ.Frozen {
			cjs = append(cjs, fmt.Sprintf("%s%d", name(v.CJ.Origin), v.CJ.Iter))
		}
	})
	sort.Strings(ops)
	out := strings.Join(ops, " ")
	if len(cjs) > 0 {
		if out != "" {
			out += " | "
		}
		out += strings.Join(cjs, " ")
	}
	return out
}
