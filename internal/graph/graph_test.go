package graph

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// buildChain makes a graph  n1(op a) -> n2(op b) -> n3(cj) -> n4(op c) -> exit
// with the cj's false side going to an empty drain node.
func buildChain(t *testing.T) (*Graph, []*Node, []*ir.Op) {
	t.Helper()
	al := ir.NewAlloc()
	g := New(al)
	ra, rb, rc := al.Reg("a"), al.Reg("b"), al.Reg("c")
	a := &ir.Op{ID: al.OpID(), Origin: 0, Iter: 0, Kind: ir.Const, Dst: ra, Imm: 1}
	b := &ir.Op{ID: al.OpID(), Origin: 1, Iter: 0, Kind: ir.Add, Dst: rb, Src: [2]ir.Reg{ra}, Imm: 1, BImm: true}
	cj := &ir.Op{ID: al.OpID(), Origin: 2, Iter: 0, Kind: ir.CJ, Src: [2]ir.Reg{rb}, Imm: 10, BImm: true, Rel: ir.Lt}
	c := &ir.Op{ID: al.OpID(), Origin: 3, Iter: 0, Kind: ir.Add, Dst: rc, Src: [2]ir.Reg{rb}, Imm: 2, BImm: true}

	drain := g.NewNode()
	drain.Drain = true

	n1 := AppendOp(g, nil, a)
	n2 := AppendOp(g, n1, b)
	n3 := AppendBranch(g, n2, cj, drain)
	n4 := AppendOp(g, n3, c)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after build: %v", err)
	}
	return g, []*Node{n1, n2, n3, n4, drain}, []*ir.Op{a, b, cj, c}
}

func TestChainBuildAndValidate(t *testing.T) {
	g, ns, ops := buildChain(t)
	if g.Entry != ns[0] {
		t.Fatal("entry wrong")
	}
	if g.NodeOf(ops[0]) != ns[0] || g.NodeOf(ops[2]) != ns[2] {
		t.Fatal("op locations wrong")
	}
	if ns[2].BranchCount() != 1 || ns[2].OpCount() != 0 {
		t.Fatal("branch node counts wrong")
	}
	if sp := g.SinglePred(ns[1]); sp != ns[0] {
		t.Fatalf("SinglePred = %v", sp)
	}
	succs := ns[2].Successors()
	if len(succs) != 2 {
		t.Fatalf("branch successors = %d, want 2", len(succs))
	}
}

func TestOrderAndIndex(t *testing.T) {
	g, ns, _ := buildChain(t)
	order := g.Order()
	if order[0] != ns[0] {
		t.Fatal("order must start at entry")
	}
	if g.Index(ns[0]) != 0 {
		t.Fatal("entry index wrong")
	}
	if g.Index(ns[3]) <= g.Index(ns[2]) {
		t.Fatal("topological order violated")
	}
	// Unreachable node.
	foreign := g.NewNode()
	if g.Index(foreign) != -1 {
		t.Fatal("unreachable node should have index -1")
	}
}

func TestMainChainSkipsDrains(t *testing.T) {
	g, ns, _ := buildChain(t)
	chain := g.MainChain()
	want := []*Node{ns[0], ns[1], ns[2], ns[3]}
	if len(chain) != len(want) {
		t.Fatalf("MainChain len = %d, want %d", len(chain), len(want))
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("MainChain[%d] = n%d, want n%d", i, chain[i].ID, want[i].ID)
		}
	}
}

func TestMoveOpBetweenVertices(t *testing.T) {
	g, ns, ops := buildChain(t)
	// Move op c from n4 into n3's continue leaf.
	leaf := ContinueLeaf(ns[2])
	g.RemoveOp(ops[3])
	g.AddOp(ops[3], leaf)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after move: %v", err)
	}
	if g.NodeOf(ops[3]) != ns[2] {
		t.Fatal("op location not updated")
	}
	if ns[2].OpCount() != 1 {
		t.Fatal("op count wrong after move")
	}
	// n4 is now empty; splice it out.
	if !g.SpliceOutEmpty(ns[3]) {
		t.Fatal("SpliceOutEmpty failed")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after splice: %v", err)
	}
	if ContinueLeaf(ns[2]).Succ != nil {
		t.Fatal("splice should leave program exit")
	}
}

func TestHoistOp(t *testing.T) {
	g, ns, ops := buildChain(t)
	leaf := ContinueLeaf(ns[2])
	g.RemoveOp(ops[3])
	g.AddOp(ops[3], leaf)
	g.HoistOp(ops[3])
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after hoist: %v", err)
	}
	if got := g.Where(ops[3]); got != ns[2].Root {
		t.Fatal("hoist did not reach root vertex")
	}
}

func TestInsertBefore(t *testing.T) {
	g, ns, _ := buildChain(t)
	pre := g.InsertBefore(ns[0])
	if g.Entry != pre {
		t.Fatal("entry not updated")
	}
	if pre.FallThrough() != ns[0] {
		t.Fatal("prelude does not fall through to old entry")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	mid := g.InsertBefore(ns[1])
	if g.SinglePred(ns[1]) != mid || g.SinglePred(mid) != ns[0] {
		t.Fatal("mid insertion edges wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCloneSubtreeFrozen(t *testing.T) {
	g, ns, ops := buildChain(t)
	clone := g.CloneSubtreeFrozen(ns[1].Root)
	n := g.NewNode()
	g.AdoptSubtree(n, clone)
	g.RegisterSubtreeOps(clone)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after clone adopt: %v", err)
	}
	cOps := n.Ops()
	if len(cOps) != 1 || !cOps[0].Frozen {
		t.Fatalf("clone ops wrong: %v", cOps)
	}
	if cOps[0].Origin != ops[1].Origin || cOps[0].ID == ops[1].ID {
		t.Fatal("clone identity wrong")
	}
	if n.FallThrough() != ns[2] {
		t.Fatal("clone must preserve leaf successor")
	}
}

func TestValidateCatchesDoubleDef(t *testing.T) {
	g, ns, ops := buildChain(t)
	dup := &ir.Op{ID: g.Alloc.OpID(), Kind: ir.Const, Dst: ops[0].Dst, Imm: 9}
	g.AddOp(dup, ns[0].Root)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "defined twice") {
		t.Fatalf("Validate should catch double def, got %v", err)
	}
}

func TestIterCountAndSchedCount(t *testing.T) {
	g, ns, ops := buildChain(t)
	if ns[0].IterCount(0) != 1 || ns[0].IterCount(1) != 0 {
		t.Fatal("IterCount wrong")
	}
	// Freezing must go through the graph so the incremental counts see
	// the transition.
	g.FreezeOp(ops[0])
	if ns[0].IterCount(0) != 0 || ns[0].SchedCount() != 0 {
		t.Fatal("frozen ops must not count")
	}
	if ns[2].SchedCount() != 1 { // the branch
		t.Fatal("branch must count as schedulable")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after FreezeOp: %v", err)
	}
}

func TestRowString(t *testing.T) {
	g, ns, _ := buildChain(t)
	names := []string{"a", "b", "cj", "c"}
	row := g.RowString(ns[2], func(o int) string { return names[o] })
	if row != "cj0" {
		t.Fatalf("RowString = %q, want cj0", row)
	}
}

func TestNodeStringRendering(t *testing.T) {
	g, ns, _ := buildChain(t)
	s := g.NodeString(ns[2])
	if !strings.Contains(s, "cj") || !strings.Contains(s, "?") {
		t.Errorf("NodeString = %q", s)
	}
	full := g.String()
	if !strings.Contains(full, "-> exit") {
		t.Errorf("graph String missing exit:\n%s", full)
	}
}

func TestRetargetLeafMaintainsPreds(t *testing.T) {
	g, ns, _ := buildChain(t)
	leaf := ContinueLeaf(ns[3])
	g.RetargetLeaf(leaf, ns[4]) // point tail at the drain node
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.PredEdgeCount(ns[4]) != 2 {
		t.Fatalf("drain pred count = %d, want 2", g.PredEdgeCount(ns[4]))
	}
}
