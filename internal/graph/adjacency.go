package graph

// edge is one adjacency record: an adjacent node plus the number of
// parallel leaf edges connecting the pair in this direction.
type edge struct {
	n     *Node
	count int32
}

// inlineEdges is the number of adjacency records stored directly in the
// node. Chain nodes have one predecessor and at most two successors
// (continue side + exit drain), so the inline array covers the common
// case; nodes with more neighbours spill into the overflow slice.
const inlineEdges = 2

// edgeSet is a small multiset of adjacent nodes, the compact
// index-addressed replacement for the old map[*Node]map[*Node]int
// predecessor table. Entries are kept in first-insertion order and
// removed (order-preserving) when their edge count drops to zero, so
// iteration never sees stale neighbours. Lookup is a linear scan — the
// sets hold a handful of entries, so the scan beats any map on both
// time and allocation.
type edgeSet struct {
	inline [inlineEdges]edge
	extra  []edge
	n      int
}

// at returns the i-th live entry (i < s.n).
func (s *edgeSet) at(i int) *edge {
	if i < inlineEdges {
		return &s.inline[i]
	}
	return &s.extra[i-inlineEdges]
}

// add records one more edge to m.
func (s *edgeSet) add(m *Node) {
	for i := 0; i < s.n; i++ {
		if e := s.at(i); e.n == m {
			e.count++
			return
		}
	}
	if s.n < inlineEdges {
		s.inline[s.n] = edge{n: m, count: 1}
	} else {
		s.extra = append(s.extra[:s.n-inlineEdges], edge{n: m, count: 1})
	}
	s.n++
}

// remove drops one edge to m, deleting the entry when its count reaches
// zero. It reports whether an edge to m existed.
func (s *edgeSet) remove(m *Node) bool {
	for i := 0; i < s.n; i++ {
		e := s.at(i)
		if e.n != m {
			continue
		}
		e.count--
		if e.count > 0 {
			return true
		}
		for j := i; j < s.n-1; j++ {
			*s.at(j) = *s.at(j + 1)
		}
		s.n--
		*s.at(s.n) = edge{} // release the node pointer
		if s.n > inlineEdges {
			s.extra = s.extra[:s.n-inlineEdges]
		} else {
			s.extra = s.extra[:0]
		}
		return true
	}
	return false
}

// total returns the summed edge count (parallel edges included).
func (s *edgeSet) total() int {
	t := 0
	for i := 0; i < s.n; i++ {
		t += int(s.at(i).count)
	}
	return t
}

// single returns the unique neighbour when the set holds exactly one
// edge in total, else nil.
func (s *edgeSet) single() *Node {
	if s.n == 1 && s.at(0).count == 1 {
		return s.at(0).n
	}
	return nil
}

// visit calls f for every distinct neighbour with its edge count, in
// insertion order, stopping early when f returns false. Allocation-free.
func (s *edgeSet) visit(f func(*Node, int32) bool) {
	for i := 0; i < s.n; i++ {
		e := s.at(i)
		if !f(e.n, e.count) {
			return
		}
	}
}
