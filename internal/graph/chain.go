package graph

import (
	"repro/internal/ir"
)

// Chain construction helpers. The unwinder and the tests build the
// initial sequential program as a chain of nodes, one operation per node
// — "a program wherein each instruction contains a single operation"
// (paper section 2) — with conditional jumps whose false side leaves the
// chain (loop exit) and whose true side continues it.

// ContinueLeaf returns the leaf reached from the root by always taking
// the true side of branches: the continue-path leaf of a chain node.
func ContinueLeaf(n *Node) *Vertex {
	v := n.Root
	for !v.IsLeaf() {
		v = v.True
	}
	return v
}

// AppendOp creates a node holding op and links tail's continue leaf to
// it. With a nil tail the node becomes the graph entry. The new node is
// returned.
func AppendOp(g *Graph, tail *Node, op *ir.Op) *Node {
	n := g.NewNode()
	g.AddOp(op, n.Root)
	linkTail(g, tail, n)
	return n
}

// AppendBranch creates a node holding the conditional jump cj whose
// false side goes to exit (nil for program exit) and whose true side is
// left open for the next append. The new node is returned.
func AppendBranch(g *Graph, tail *Node, cj *ir.Op, exit *Node) *Node {
	n := g.NewNode()
	g.InsertBranchAtLeaf(n.Root, cj, nil, exit)
	linkTail(g, tail, n)
	return n
}

// AppendEmpty creates an empty node after tail (used for prelude slots
// and as chain terminators).
func AppendEmpty(g *Graph, tail *Node) *Node {
	n := g.NewNode()
	linkTail(g, tail, n)
	return n
}

func linkTail(g *Graph, tail, n *Node) {
	if tail == nil {
		if g.Entry != nil {
			panic("graph: chain already has an entry")
		}
		g.Entry = n
		return
	}
	leaf := ContinueLeaf(tail)
	if leaf.Succ != nil {
		panic("graph: tail continue leaf already linked")
	}
	g.RetargetLeaf(leaf, n)
}
