package graph

import (
	"fmt"

	"repro/internal/ir"
)

// Validate checks every structural invariant of the graph: tree shape,
// ownership pointers, operation locations, predecessor edge counts, and
// the single-definition-per-path rule of VLIW instructions. It returns
// the first violation found. Tests call Validate after every
// transformation.
func (g *Graph) Validate() error {
	if g.Entry == nil {
		return fmt.Errorf("graph: nil entry")
	}
	if !g.nodes[g.Entry] {
		return fmt.Errorf("graph: entry n%d not registered", g.Entry.ID)
	}

	recount := map[*Node]map[*Node]int{}
	seenOps := map[*ir.Op]*Vertex{}

	for n := range g.nodes {
		if n.Root == nil {
			return fmt.Errorf("n%d: nil root", n.ID)
		}
		if n.Root.parent != nil {
			return fmt.Errorf("n%d: root has parent", n.ID)
		}
		var err error
		var walk func(v *Vertex)
		walk = func(v *Vertex) {
			if err != nil {
				return
			}
			if v.node != n {
				err = fmt.Errorf("n%d: vertex owned by wrong node", n.ID)
				return
			}
			for _, op := range v.Ops {
				if op == nil {
					err = fmt.Errorf("n%d: nil op", n.ID)
					return
				}
				if op.IsBranch() {
					err = fmt.Errorf("n%d: branch op %v in op list", n.ID, op)
					return
				}
				if prev, dup := seenOps[op]; dup {
					err = fmt.Errorf("n%d: op %v placed twice (also n%d)", n.ID, op, prev.node.ID)
					return
				}
				seenOps[op] = v
				if g.loc(op) != v {
					err = fmt.Errorf("n%d: op %v location out of sync", n.ID, op)
					return
				}
			}
			if v.IsLeaf() {
				if v.True != nil || v.False != nil {
					err = fmt.Errorf("n%d: leaf with children", n.ID)
					return
				}
				if v.Succ != nil {
					if !g.nodes[v.Succ] {
						err = fmt.Errorf("n%d: edge to deleted node n%d", n.ID, v.Succ.ID)
						return
					}
					m := recount[v.Succ]
					if m == nil {
						m = map[*Node]int{}
						recount[v.Succ] = m
					}
					m[n]++
				}
				return
			}
			if !v.CJ.IsBranch() {
				err = fmt.Errorf("n%d: non-branch op %v in CJ slot", n.ID, v.CJ)
				return
			}
			if prev, dup := seenOps[v.CJ]; dup {
				err = fmt.Errorf("n%d: branch %v placed twice (also n%d)", n.ID, v.CJ, prev.node.ID)
				return
			}
			seenOps[v.CJ] = v
			if g.loc(v.CJ) != v {
				err = fmt.Errorf("n%d: branch %v location out of sync", n.ID, v.CJ)
				return
			}
			if v.True == nil || v.False == nil {
				err = fmt.Errorf("n%d: branch vertex missing children", n.ID)
				return
			}
			if v.True.parent != v || v.False.parent != v {
				err = fmt.Errorf("n%d: child parent pointer wrong", n.ID)
				return
			}
			walk(v.True)
			walk(v.False)
		}
		walk(n.Root)
		if err != nil {
			return err
		}
		if got := n.recountOps(); got != n.OpCount() {
			return fmt.Errorf("n%d: cached op count %d, recount %d", n.ID, n.OpCount(), got)
		}
		if got := n.recountBranches(); got != n.BranchCount() {
			return fmt.Errorf("n%d: cached branch count %d, recount %d", n.ID, n.BranchCount(), got)
		}
		if err := checkSingleDefPerPath(n); err != nil {
			return err
		}
	}

	// Every registered location must be placed in a live node, and the
	// placed-op total must match the table's census.
	registered := 0
	for _, e := range g.locs {
		if e.op == nil {
			continue
		}
		registered++
		if seenOps[e.op] != e.v {
			return fmt.Errorf("loc for op %v points at stale vertex", e.op)
		}
	}
	if registered != g.numPlaced {
		return fmt.Errorf("graph: numPlaced %d, table holds %d", g.numPlaced, registered)
	}

	// Predecessor edge counts must match a full recount.
	for n := range g.nodes {
		want := recount[n]
		got := g.preds[n]
		for p, c := range want {
			if got[p] != c {
				return fmt.Errorf("n%d: pred count for n%d = %d, want %d", n.ID, p.ID, got[p], c)
			}
		}
		for p, c := range got {
			if c != 0 && want[p] != c {
				return fmt.Errorf("n%d: stale pred count for n%d = %d, want %d", n.ID, p.ID, c, want[p])
			}
		}
	}
	return nil
}

// checkSingleDefPerPath enforces that no root-to-leaf path of the
// instruction tree commits two writes to the same register: IBM VLIW
// stores all results along the selected path at once, so a double write
// would be ambiguous hardware-wise.
func checkSingleDefPerPath(n *Node) error {
	var defs []ir.Reg
	var walk func(v *Vertex) error
	walk = func(v *Vertex) error {
		mark := len(defs)
		for _, op := range v.Ops {
			if d := op.Def(); d != ir.NoReg {
				for _, prev := range defs {
					if prev == d {
						return fmt.Errorf("n%d: register r%d defined twice on one path", n.ID, d)
					}
				}
				defs = append(defs, d)
			}
		}
		if !v.IsLeaf() {
			if err := walk(v.True); err != nil {
				return err
			}
			if err := walk(v.False); err != nil {
				return err
			}
		}
		defs = defs[:mark]
		return nil
	}
	return walk(n.Root)
}
