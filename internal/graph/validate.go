package graph

import (
	"fmt"

	"repro/internal/ir"
)

// Validate checks every structural invariant of the graph: tree shape,
// ownership pointers, operation locations, predecessor edge counts, and
// the single-definition-per-path rule of VLIW instructions. It returns
// the first violation found. Tests call Validate after every
// transformation.
func (g *Graph) Validate() error {
	if g.Entry == nil {
		return fmt.Errorf("graph: nil entry")
	}
	if !g.nodes[g.Entry] {
		return fmt.Errorf("graph: entry n%d not registered", g.Entry.ID)
	}

	recount := map[*Node]map[*Node]int{}     // successor -> predecessor -> edges
	succRecount := map[*Node]map[*Node]int{} // predecessor -> successor -> edges
	seenOps := map[*ir.Op]*Vertex{}

	for n := range g.nodes {
		if n.Root == nil {
			return fmt.Errorf("n%d: nil root", n.ID)
		}
		if n.Root.parent != nil {
			return fmt.Errorf("n%d: root has parent", n.ID)
		}
		var err error
		var walk func(v *Vertex)
		walk = func(v *Vertex) {
			if err != nil {
				return
			}
			if v.node != n {
				err = fmt.Errorf("n%d: vertex owned by wrong node", n.ID)
				return
			}
			for _, op := range v.Ops {
				if op == nil {
					err = fmt.Errorf("n%d: nil op", n.ID)
					return
				}
				if op.IsBranch() {
					err = fmt.Errorf("n%d: branch op %v in op list", n.ID, op)
					return
				}
				if prev, dup := seenOps[op]; dup {
					err = fmt.Errorf("n%d: op %v placed twice (also n%d)", n.ID, op, prev.node.ID)
					return
				}
				seenOps[op] = v
				if g.loc(op) != v {
					err = fmt.Errorf("n%d: op %v location out of sync", n.ID, op)
					return
				}
			}
			if v.IsLeaf() {
				if v.True != nil || v.False != nil {
					err = fmt.Errorf("n%d: leaf with children", n.ID)
					return
				}
				if v.Succ != nil {
					if !g.nodes[v.Succ] {
						err = fmt.Errorf("n%d: edge to deleted node n%d", n.ID, v.Succ.ID)
						return
					}
					m := recount[v.Succ]
					if m == nil {
						m = map[*Node]int{}
						recount[v.Succ] = m
					}
					m[n]++
					sm := succRecount[n]
					if sm == nil {
						sm = map[*Node]int{}
						succRecount[n] = sm
					}
					sm[v.Succ]++
				}
				return
			}
			if !v.CJ.IsBranch() {
				err = fmt.Errorf("n%d: non-branch op %v in CJ slot", n.ID, v.CJ)
				return
			}
			if prev, dup := seenOps[v.CJ]; dup {
				err = fmt.Errorf("n%d: branch %v placed twice (also n%d)", n.ID, v.CJ, prev.node.ID)
				return
			}
			seenOps[v.CJ] = v
			if g.loc(v.CJ) != v {
				err = fmt.Errorf("n%d: branch %v location out of sync", n.ID, v.CJ)
				return
			}
			if v.True == nil || v.False == nil {
				err = fmt.Errorf("n%d: branch vertex missing children", n.ID)
				return
			}
			if v.True.parent != v || v.False.parent != v {
				err = fmt.Errorf("n%d: child parent pointer wrong", n.ID)
				return
			}
			walk(v.True)
			walk(v.False)
		}
		walk(n.Root)
		if err != nil {
			return err
		}
		if got := n.recountOps(); got != n.OpCount() {
			return fmt.Errorf("n%d: cached op count %d, recount %d", n.ID, n.OpCount(), got)
		}
		if got := n.recountBranches(); got != n.BranchCount() {
			return fmt.Errorf("n%d: cached branch count %d, recount %d", n.ID, n.BranchCount(), got)
		}
		gotSched, gotIters := n.recountSched()
		if gotSched != n.SchedCount() {
			return fmt.Errorf("n%d: cached sched count %d, recount %d", n.ID, n.SchedCount(), gotSched)
		}
		for i, c := range n.iterCounts {
			if c < 0 {
				return fmt.Errorf("n%d: negative count %d for iteration %d", n.ID, c, i-1)
			}
			if c != gotIters[i] {
				return fmt.Errorf("n%d: cached iter %d count %d, recount %d", n.ID, i-1, c, gotIters[i])
			}
		}
		for i, c := range gotIters {
			if c != 0 && (i >= len(n.iterCounts) || n.iterCounts[i] != c) {
				return fmt.Errorf("n%d: iteration %d holds %d schedulable ops, cache missed them", n.ID, i-1, c)
			}
		}
		if err := checkSingleDefPerPath(n); err != nil {
			return err
		}
		if err := checkSummaries(n); err != nil {
			return err
		}
	}

	// Every registered location must be placed in a live node, and the
	// placed-op total must match the table's census.
	registered := 0
	for _, e := range g.locs {
		if e.op == nil {
			continue
		}
		registered++
		if seenOps[e.op] != e.v {
			return fmt.Errorf("loc for op %v points at stale vertex", e.op)
		}
		if pv, _ := e.op.Placement().(*Vertex); pv != e.v {
			return fmt.Errorf("op %v resident placement disagrees with location table", e.op)
		}
	}
	if registered != g.numPlaced {
		return fmt.Errorf("graph: numPlaced %d, table holds %d", g.numPlaced, registered)
	}

	// The incremental adjacency sets must match a full edge recount, in
	// both directions (same pattern as the op-count cross-check).
	for n := range g.nodes {
		if err := checkEdgeSet(g, n, &n.preds, recount[n], "pred"); err != nil {
			return err
		}
		if err := checkEdgeSet(g, n, &n.succs, succRecount[n], "succ"); err != nil {
			return err
		}
	}
	return nil
}

// checkEdgeSet cross-checks one node's incremental adjacency set
// against the edge multiset rebuilt from the leaf walk.
func checkEdgeSet(g *Graph, n *Node, s *edgeSet, want map[*Node]int, dir string) error {
	got := map[*Node]int{}
	err := error(nil)
	s.visit(func(m *Node, c int32) bool {
		if c <= 0 {
			err = fmt.Errorf("n%d: %s entry for n%d with count %d", n.ID, dir, m.ID, c)
			return false
		}
		if !g.nodes[m] {
			err = fmt.Errorf("n%d: %s entry for deleted node n%d", n.ID, dir, m.ID)
			return false
		}
		if _, dup := got[m]; dup {
			err = fmt.Errorf("n%d: duplicate %s entry for n%d", n.ID, dir, m.ID)
			return false
		}
		got[m] = int(c)
		return true
	})
	if err != nil {
		return err
	}
	for m, c := range want {
		if got[m] != c {
			return fmt.Errorf("n%d: %s count for n%d = %d, want %d", n.ID, dir, m.ID, got[m], c)
		}
	}
	for m, c := range got {
		if want[m] != c {
			return fmt.Errorf("n%d: stale %s count for n%d = %d, want %d", n.ID, dir, m.ID, c, want[m])
		}
	}
	return nil
}

// checkSummaries cross-checks every vertex's incremental def/use
// summary against a from-scratch recomputation: the own tier against
// the vertex's op list, the sub tier against own ∪ children, and the
// pre tier against parent's pre ∪ own (own alone at the root). Any
// mutation path that forgets to resummarize — including operand
// rewrites bypassing Graph.ReplaceUse/RetargetDef — surfaces here,
// so every randomized test calling Validate inherits the invariant
// the ps fast-path filters depend on.
func checkSummaries(n *Node) error {
	var check func(v *Vertex, pre *summary) (*summary, error)
	check = func(v *Vertex, pre *summary) (*summary, error) {
		want := &summary{}
		for _, op := range v.Ops {
			want.addOp(op)
		}
		if v.CJ != nil {
			want.addOp(v.CJ)
		}
		if !want.ownDefs.Equal(&v.sum.ownDefs) || !want.ownUses.Equal(&v.sum.ownUses) ||
			want.ownStores != v.sum.ownStores || want.ownLoads != v.sum.ownLoads {
			return nil, fmt.Errorf("n%d: vertex own def/use summary out of sync", n.ID)
		}
		for i, op := range v.Ops {
			want.indexOp(op, int32(i))
		}
		if len(want.defSites) != len(v.sum.defSites) || len(want.storePos) != len(v.sum.storePos) {
			return nil, fmt.Errorf("n%d: vertex def/store site index out of sync", n.ID)
		}
		for i, e := range want.defSites {
			if v.sum.defSites[i] != e {
				return nil, fmt.Errorf("n%d: vertex def-site index out of sync at r%d", n.ID, e.reg)
			}
		}
		for i, k := range want.storePos {
			if v.sum.storePos[i] != k {
				return nil, fmt.Errorf("n%d: vertex store-site index out of sync", n.ID)
			}
		}
		if pre != nil {
			want.preDefs.CopyFrom(&pre.preDefs)
			want.preStores, want.preLoads = pre.preStores, pre.preLoads
		}
		want.preDefs.Or(&want.ownDefs)
		want.preStores += want.ownStores
		want.preLoads += want.ownLoads
		if !want.preDefs.Equal(&v.sum.preDefs) ||
			want.preStores != v.sum.preStores || want.preLoads != v.sum.preLoads {
			return nil, fmt.Errorf("n%d: vertex path-prefix summary out of sync", n.ID)
		}
		want.subDefs.CopyFrom(&want.ownDefs)
		want.subUses.CopyFrom(&want.ownUses)
		want.subStores, want.subLoads = want.ownStores, want.ownLoads
		if !v.IsLeaf() {
			for _, c := range [2]*Vertex{v.True, v.False} {
				cw, err := check(c, want)
				if err != nil {
					return nil, err
				}
				want.subDefs.Or(&cw.subDefs)
				want.subUses.Or(&cw.subUses)
				want.subStores += cw.subStores
				want.subLoads += cw.subLoads
			}
		}
		if !want.subDefs.Equal(&v.sum.subDefs) || !want.subUses.Equal(&v.sum.subUses) ||
			want.subStores != v.sum.subStores || want.subLoads != v.sum.subLoads {
			return nil, fmt.Errorf("n%d: vertex subtree def/use summary out of sync", n.ID)
		}
		return want, nil
	}
	_, err := check(n.Root, nil)
	return err
}

// checkSingleDefPerPath enforces that no root-to-leaf path of the
// instruction tree commits two writes to the same register: IBM VLIW
// stores all results along the selected path at once, so a double write
// would be ambiguous hardware-wise.
func checkSingleDefPerPath(n *Node) error {
	var defs []ir.Reg
	var walk func(v *Vertex) error
	walk = func(v *Vertex) error {
		mark := len(defs)
		for _, op := range v.Ops {
			if d := op.Def(); d != ir.NoReg {
				for _, prev := range defs {
					if prev == d {
						return fmt.Errorf("n%d: register r%d defined twice on one path", n.ID, d)
					}
				}
				defs = append(defs, d)
			}
		}
		if !v.IsLeaf() {
			if err := walk(v.True); err != nil {
				return err
			}
			if err := walk(v.False); err != nil {
				return err
			}
		}
		defs = defs[:mark]
		return nil
	}
	return walk(n.Root)
}
