package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// TestRandomMutationsKeepCachesConsistent drives long random sequences
// of graph mutations — op placement and movement, freezing, branch
// insertion, leaf retargeting, node insertion and splicing, move-cj
// style node splits, and in-place operand rewrites — and after every
// step lets Validate cross-check the incremental caches (compact
// adjacency sets, per-iteration schedulable counts, op/branch counts,
// op locations, def/use summaries) against full recounts. This is the
// consistency property the walk-free schedulers rely on: no sequence of
// mutator calls may drift a cache from the structure it summarizes.
//
// Operations draw registers from a small shared pool, so removals hit
// the case where several ops contribute the same summary bit, and the
// mix includes loads, stores (direct and indirect) and copies, so the
// store/load counters and every operand-rewrite path are exercised.
func TestRandomMutationsKeepCachesConsistent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			al := ir.NewAlloc()
			g := New(al)

			regs := make([]ir.Reg, 6)
			for i := range regs {
				regs[i] = al.Reg("")
			}
			arr := al.Array("A")
			randReg := func() ir.Reg { return regs[rng.Intn(len(regs))] }

			var placed []*ir.Op // placed non-branch ops
			origin := 0
			newOp := func(iter int) *ir.Op {
				op := &ir.Op{ID: al.OpID(), Origin: origin, Iter: iter}
				origin++
				switch rng.Intn(5) {
				case 0:
					op.Kind, op.Dst, op.Imm = ir.Const, randReg(), int64(origin)
				case 1:
					op.Kind, op.Dst = ir.Add, randReg()
					op.Src = [2]ir.Reg{randReg(), randReg()}
				case 2:
					op.Kind, op.Dst = ir.Copy, randReg()
					op.Src = [2]ir.Reg{randReg()}
				case 3:
					op.Kind, op.Dst = ir.Load, randReg()
					op.Mem = ir.MemRef{Array: arr, Index: int64(rng.Intn(4))}
					if rng.Intn(2) == 0 {
						op.Mem.IndexReg = randReg()
					}
				case 4:
					op.Kind = ir.Store
					op.Src = [2]ir.Reg{randReg()}
					op.Mem = ir.MemRef{Array: arr, Index: int64(rng.Intn(4))}
				}
				return op
			}

			// Seed chain: six single-op nodes over three iterations.
			var tail *Node
			for i := 0; i < 6; i++ {
				op := newOp(i % 3)
				tail = AppendOp(g, tail, op)
				placed = append(placed, op)
			}

			liveNodes := func() []*Node {
				var ns []*Node
				for n := range g.nodes {
					ns = append(ns, n)
				}
				// Deterministic pick order under a seeded rng.
				for i := 1; i < len(ns); i++ {
					for j := i; j > 0 && ns[j-1].ID > ns[j].ID; j-- {
						ns[j-1], ns[j] = ns[j], ns[j-1]
					}
				}
				return ns
			}
			randNode := func() *Node {
				ns := liveNodes()
				return ns[rng.Intn(len(ns))]
			}
			randVertex := func(n *Node) *Vertex {
				var vs []*Vertex
				n.Walk(func(v *Vertex) { vs = append(vs, v) })
				return vs[rng.Intn(len(vs))]
			}
			prunePlaced := func() {
				w := 0
				for _, op := range placed {
					if g.Where(op) != nil {
						placed[w] = op
						w++
					}
				}
				placed = placed[:w]
			}
			// defClash reports whether putting a definition of d at v
			// would break the single-definition-per-path invariant the
			// schedulers maintain (conservative: the op being moved is
			// not excluded, so an in-subtree move may skip needlessly).
			defClash := func(v *Vertex, d ir.Reg) bool {
				if d == ir.NoReg {
					return false
				}
				if v.SubtreeDefines(d) {
					return true
				}
				for a := v.Parent(); a != nil; a = a.Parent() {
					if a.DefinesHere(d) {
						return true
					}
				}
				return false
			}

			for step := 0; step < 250; step++ {
				switch rng.Intn(11) {
				case 0: // place a fresh op (NoIter included, sometimes frozen)
					iter := rng.Intn(5) - 1
					op := newOp(iter)
					if rng.Intn(4) == 0 {
						op.Frozen = true
					}
					v := randVertex(randNode())
					if defClash(v, op.Def()) {
						continue
					}
					g.AddOp(op, v)
					placed = append(placed, op)
				case 1: // remove a placed op
					prunePlaced()
					if len(placed) > 0 {
						i := rng.Intn(len(placed))
						g.RemoveOp(placed[i])
						placed = append(placed[:i], placed[i+1:]...)
					}
				case 2: // move a placed op to a random vertex
					prunePlaced()
					if len(placed) > 0 {
						op := placed[rng.Intn(len(placed))]
						v := randVertex(randNode())
						if defClash(v, op.Def()) {
							continue
						}
						g.MoveOp(op, v)
					}
				case 3: // freeze a placed op through the graph
					prunePlaced()
					if len(placed) > 0 {
						g.FreezeOp(placed[rng.Intn(len(placed))])
					}
				case 4: // grow a branch at a random leaf
					n := randNode()
					if n.BranchCount() >= 3 {
						continue // keep trees small
					}
					ls := n.Leaves()
					leaf := ls[rng.Intn(len(ls))]
					cj := &ir.Op{ID: al.OpID(), Origin: origin, Iter: rng.Intn(3), Kind: ir.CJ,
						Src: [2]ir.Reg{randReg()}, Imm: 1, BImm: true, Rel: ir.Lt}
					origin++
					var tSucc, fSucc *Node
					ns := liveNodes()
					if rng.Intn(2) == 0 {
						tSucc = ns[rng.Intn(len(ns))]
					}
					if rng.Intn(2) == 0 {
						fSucc = ns[rng.Intn(len(ns))]
					}
					g.RetargetLeaf(leaf, nil)
					g.InsertBranchAtLeaf(leaf, cj, tSucc, fSucc)
				case 5: // retarget a random leaf (nil allowed)
					n := randNode()
					ls := n.Leaves()
					leaf := ls[rng.Intn(len(ls))]
					var succ *Node
					if rng.Intn(3) > 0 {
						succ = randNode()
					}
					g.RetargetLeaf(leaf, succ)
				case 6: // insert an empty node before a random one
					g.InsertBefore(randNode())
				case 7: // splice an empty node out (no-op unless empty)
					n := randNode()
					if n == g.Entry && n.FallThrough() == nil {
						continue // would leave the graph entry-less
					}
					g.SpliceOutEmpty(n)
				case 8: // rewrite a use in place (copy propagation's mutation)
					prunePlaced()
					if len(placed) == 0 {
						continue
					}
					op := placed[rng.Intn(len(placed))]
					var buf [3]ir.Reg
					uses := op.Uses(buf[:0])
					if len(uses) == 0 {
						continue
					}
					g.ReplaceUse(op, uses[rng.Intn(len(uses))], randReg())
				case 9: // retarget a destination in place (renaming's mutation)
					prunePlaced()
					if len(placed) == 0 {
						continue
					}
					op := placed[rng.Intn(len(placed))]
					if op.IsStore() {
						continue
					}
					r := randReg()
					if defClash(g.Where(op), r) {
						continue
					}
					g.RetargetDef(op, r)
				case 10: // split a branch-rooted unreferenced node (move-cj shape)
					var n *Node
					for _, cand := range liveNodes() {
						if cand != g.Entry && !cand.Root.IsLeaf() && g.PredEdgeCount(cand) == 0 {
							n = cand
							break
						}
					}
					if n == nil {
						continue
					}
					cj, rootOps, tSub, fSub := g.DetachBranchRoot(n)
					tn := g.NewNode()
					g.AdoptSubtree(tn, tSub)
					for _, o := range rootOps {
						g.AddOp(o, tSub)
					}
					fn := g.NewNode()
					fn.Drain = true
					g.AdoptSubtree(fn, fSub)
					for _, o := range rootOps {
						c := o.Clone(al.OpID(), true)
						g.AddOp(c, fSub)
						placed = append(placed, c)
					}
					// Re-home the detached branch at some leaf elsewhere.
					home := randNode()
					for home == tn || home == fn {
						home = randNode()
					}
					ls := home.Leaves()
					leaf := ls[rng.Intn(len(ls))]
					g.RetargetLeaf(leaf, nil)
					g.InsertBranchAtLeaf(leaf, cj, tn, fn)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}

			// Spot-check the O(1) reads against explicit recounts.
			for _, n := range liveNodes() {
				wantSched, wantIters := n.recountSched()
				if n.SchedCount() != wantSched {
					t.Fatalf("SchedCount() = %d, recount %d", n.SchedCount(), wantSched)
				}
				for iter := -1; iter < 6; iter++ {
					if got, want := n.IterCount(iter), int(wantIters[iter+1]); got != want {
						t.Fatalf("IterCount(%d) = %d, recount %d", iter, got, want)
					}
				}
			}

			// Spot-check the summary query API against op-by-op walks of
			// every subtree, for every pool register (Validate checks the
			// internal tiers; this checks the exported answers).
			for _, n := range liveNodes() {
				n.Walk(func(v *Vertex) {
					stores, loads := false, false
					defsHere := map[ir.Reg]bool{}
					defs := map[ir.Reg]bool{}
					uses := map[ir.Reg]bool{}
					var walk func(w *Vertex)
					walk = func(w *Vertex) {
						var buf [3]ir.Reg
						for _, op := range w.Ops {
							if d := op.Def(); d != ir.NoReg {
								defs[d] = true
								if w == v {
									defsHere[d] = true
								}
							}
							for _, u := range op.Uses(buf[:0]) {
								uses[u] = true
							}
							stores = stores || op.IsStore()
							loads = loads || op.IsLoad()
						}
						if w.CJ != nil {
							for _, u := range w.CJ.Uses(buf[:0]) {
								uses[u] = true
							}
						}
						if !w.IsLeaf() {
							walk(w.True)
							walk(w.False)
						}
					}
					walk(v)
					for _, r := range regs {
						if got, want := v.SubtreeDefines(r), defs[r]; got != want {
							t.Fatalf("n%d: SubtreeDefines(r%d) = %v, walk says %v", n.ID, r, got, want)
						}
						if got, want := v.SubtreeReads(r), uses[r]; got != want {
							t.Fatalf("n%d: SubtreeReads(r%d) = %v, walk says %v", n.ID, r, got, want)
						}
						if got, want := v.DefinesHere(r), defsHere[r]; got != want {
							t.Fatalf("n%d: DefinesHere(r%d) = %v, walk says %v", n.ID, r, got, want)
						}
					}
					if got := v.SubtreeStores(); got != stores {
						t.Fatalf("n%d: SubtreeStores() = %v, walk says %v", n.ID, got, stores)
					}
					if got := v.SubtreeLoads(); got != loads {
						t.Fatalf("n%d: SubtreeLoads() = %v, walk says %v", n.ID, got, loads)
					}

					// Path-prefix answers against the ancestor chain: the
					// root→v path is v plus its parents, and only their own
					// op lists (plus CJs, which define nothing and touch no
					// memory) contribute.
					pathDefs := map[ir.Reg]bool{}
					pathStores, pathLoads := false, false
					for a := v; a != nil; a = a.Parent() {
						for _, op := range a.Ops {
							if d := op.Def(); d != ir.NoReg {
								pathDefs[d] = true
							}
							pathStores = pathStores || op.IsStore()
							pathLoads = pathLoads || op.IsLoad()
						}
					}
					for _, r := range regs {
						if got, want := v.PathDefines(r), pathDefs[r]; got != want {
							t.Fatalf("n%d: PathDefines(r%d) = %v, ancestor walk says %v", n.ID, r, got, want)
						}
					}
					if got := v.PathStores(); got != pathStores {
						t.Fatalf("n%d: PathStores() = %v, ancestor walk says %v", n.ID, got, pathStores)
					}
					if got := v.PathLoads(); got != pathLoads {
						t.Fatalf("n%d: PathLoads() = %v, ancestor walk says %v", n.ID, got, pathLoads)
					}
				})
			}
		})
	}
}

// TestEdgeSetOverflow exercises the inline-array overflow path of the
// compact adjacency sets: a node with more distinct successors and
// predecessors than the inline capacity, plus parallel edges, must
// answer Preds/Successors/PredEdgeCount/SinglePred exactly and survive
// edge removal back below the inline boundary.
func TestEdgeSetOverflow(t *testing.T) {
	al := ir.NewAlloc()
	g := New(al)
	hub := g.NewNode()
	g.Entry = hub

	// Give the hub three branches -> four leaves, each pointing at its
	// own successor: 4 distinct successors (> inlineEdges).
	var succs []*Node
	for i := 0; i < 4; i++ {
		succs = append(succs, g.NewNode())
	}
	mkCJ := func() *ir.Op {
		return &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{al.Reg("")}, Imm: 1, BImm: true, Rel: ir.Lt}
	}
	t0, f0 := g.InsertBranchAtLeaf(hub.Root, mkCJ(), nil, nil)
	t1, f1 := g.InsertBranchAtLeaf(t0, mkCJ(), nil, nil)
	t2, f2 := g.InsertBranchAtLeaf(f0, mkCJ(), nil, nil)
	for i, leaf := range []*Vertex{t1, f1, t2, f2} {
		g.RetargetLeaf(leaf, succs[i])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := hub.Successors(); len(got) != 4 {
		t.Fatalf("hub successors = %d, want 4", len(got))
	}
	for _, s := range succs {
		if g.SinglePred(s) != hub {
			t.Fatalf("succ n%d SinglePred != hub", s.ID)
		}
	}

	// Now give one successor four distinct predecessors (the hub plus
	// three fresh single-leaf nodes) and a parallel edge.
	target := succs[0]
	var extra []*Node
	for i := 0; i < 3; i++ {
		n := g.NewNode()
		extra = append(extra, n)
		g.RetargetLeaf(n.Root, target)
	}
	g.RetargetLeaf(f1, target) // second hub edge: parallel to t1's
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.PredEdgeCount(target); got != 5 {
		t.Fatalf("PredEdgeCount = %d, want 5", got)
	}
	if got := len(g.Preds(target)); got != 4 {
		t.Fatalf("distinct preds = %d, want 4", got)
	}
	if g.SinglePred(target) != nil {
		t.Fatal("SinglePred must be nil with 5 in-edges")
	}

	// Unwind the overflow: drop edges until one remains.
	g.RetargetLeaf(f1, nil)
	for _, n := range extra {
		g.RetargetLeaf(n.Root, nil)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SinglePred(target) != hub {
		t.Fatal("SinglePred must return the hub again")
	}
	if got := hub.NonDrainSucc(); got != nil {
		t.Fatalf("NonDrainSucc over 4 successors = n%d, want nil (ambiguous)", got.ID)
	}
}
