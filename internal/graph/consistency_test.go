package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// TestRandomMutationsKeepCachesConsistent drives long random sequences
// of graph mutations — op placement and movement, freezing, branch
// insertion, leaf retargeting, node insertion and splicing — and after
// every step lets Validate cross-check the incremental caches (compact
// adjacency sets, per-iteration schedulable counts, op/branch counts,
// op locations) against full recounts. This is the consistency property
// the walk-free schedulers rely on: no sequence of mutator calls may
// drift a cache from the structure it summarizes.
func TestRandomMutationsKeepCachesConsistent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			al := ir.NewAlloc()
			g := New(al)

			var placed []*ir.Op // placed non-branch ops
			origin := 0
			newOp := func(iter int) *ir.Op {
				op := &ir.Op{ID: al.OpID(), Origin: origin, Iter: iter, Kind: ir.Const, Dst: al.Reg(""), Imm: int64(origin)}
				origin++
				return op
			}

			// Seed chain: six single-op nodes over three iterations.
			var tail *Node
			for i := 0; i < 6; i++ {
				op := newOp(i % 3)
				tail = AppendOp(g, tail, op)
				placed = append(placed, op)
			}

			liveNodes := func() []*Node {
				var ns []*Node
				for n := range g.nodes {
					ns = append(ns, n)
				}
				// Deterministic pick order under a seeded rng.
				for i := 1; i < len(ns); i++ {
					for j := i; j > 0 && ns[j-1].ID > ns[j].ID; j-- {
						ns[j-1], ns[j] = ns[j], ns[j-1]
					}
				}
				return ns
			}
			randNode := func() *Node {
				ns := liveNodes()
				return ns[rng.Intn(len(ns))]
			}
			randVertex := func(n *Node) *Vertex {
				var vs []*Vertex
				n.Walk(func(v *Vertex) { vs = append(vs, v) })
				return vs[rng.Intn(len(vs))]
			}
			prunePlaced := func() {
				w := 0
				for _, op := range placed {
					if g.Where(op) != nil {
						placed[w] = op
						w++
					}
				}
				placed = placed[:w]
			}

			for step := 0; step < 250; step++ {
				switch rng.Intn(8) {
				case 0: // place a fresh op (NoIter included, sometimes frozen)
					iter := rng.Intn(5) - 1
					op := newOp(iter)
					if rng.Intn(4) == 0 {
						op.Frozen = true
					}
					g.AddOp(op, randVertex(randNode()))
					placed = append(placed, op)
				case 1: // remove a placed op
					prunePlaced()
					if len(placed) > 0 {
						i := rng.Intn(len(placed))
						g.RemoveOp(placed[i])
						placed = append(placed[:i], placed[i+1:]...)
					}
				case 2: // move a placed op to a random vertex
					prunePlaced()
					if len(placed) > 0 {
						g.MoveOp(placed[rng.Intn(len(placed))], randVertex(randNode()))
					}
				case 3: // freeze a placed op through the graph
					prunePlaced()
					if len(placed) > 0 {
						g.FreezeOp(placed[rng.Intn(len(placed))])
					}
				case 4: // grow a branch at a random leaf
					n := randNode()
					if n.BranchCount() >= 3 {
						continue // keep trees small
					}
					ls := n.Leaves()
					leaf := ls[rng.Intn(len(ls))]
					cj := &ir.Op{ID: al.OpID(), Origin: origin, Iter: rng.Intn(3), Kind: ir.CJ,
						Src: [2]ir.Reg{al.Reg("")}, Imm: 1, BImm: true, Rel: ir.Lt}
					origin++
					var tSucc, fSucc *Node
					ns := liveNodes()
					if rng.Intn(2) == 0 {
						tSucc = ns[rng.Intn(len(ns))]
					}
					if rng.Intn(2) == 0 {
						fSucc = ns[rng.Intn(len(ns))]
					}
					g.RetargetLeaf(leaf, nil)
					g.InsertBranchAtLeaf(leaf, cj, tSucc, fSucc)
				case 5: // retarget a random leaf (nil allowed)
					n := randNode()
					ls := n.Leaves()
					leaf := ls[rng.Intn(len(ls))]
					var succ *Node
					if rng.Intn(3) > 0 {
						succ = randNode()
					}
					g.RetargetLeaf(leaf, succ)
				case 6: // insert an empty node before a random one
					g.InsertBefore(randNode())
				case 7: // splice an empty node out (no-op unless empty)
					n := randNode()
					if n == g.Entry && n.FallThrough() == nil {
						continue // would leave the graph entry-less
					}
					g.SpliceOutEmpty(n)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}

			// Spot-check the O(1) reads against explicit recounts.
			for _, n := range liveNodes() {
				wantSched, wantIters := n.recountSched()
				if n.SchedCount() != wantSched {
					t.Fatalf("SchedCount() = %d, recount %d", n.SchedCount(), wantSched)
				}
				for iter := -1; iter < 6; iter++ {
					if got, want := n.IterCount(iter), int(wantIters[iter+1]); got != want {
						t.Fatalf("IterCount(%d) = %d, recount %d", iter, got, want)
					}
				}
			}
		})
	}
}

// TestEdgeSetOverflow exercises the inline-array overflow path of the
// compact adjacency sets: a node with more distinct successors and
// predecessors than the inline capacity, plus parallel edges, must
// answer Preds/Successors/PredEdgeCount/SinglePred exactly and survive
// edge removal back below the inline boundary.
func TestEdgeSetOverflow(t *testing.T) {
	al := ir.NewAlloc()
	g := New(al)
	hub := g.NewNode()
	g.Entry = hub

	// Give the hub three branches -> four leaves, each pointing at its
	// own successor: 4 distinct successors (> inlineEdges).
	var succs []*Node
	for i := 0; i < 4; i++ {
		succs = append(succs, g.NewNode())
	}
	mkCJ := func() *ir.Op {
		return &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{al.Reg("")}, Imm: 1, BImm: true, Rel: ir.Lt}
	}
	t0, f0 := g.InsertBranchAtLeaf(hub.Root, mkCJ(), nil, nil)
	t1, f1 := g.InsertBranchAtLeaf(t0, mkCJ(), nil, nil)
	t2, f2 := g.InsertBranchAtLeaf(f0, mkCJ(), nil, nil)
	for i, leaf := range []*Vertex{t1, f1, t2, f2} {
		g.RetargetLeaf(leaf, succs[i])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := hub.Successors(); len(got) != 4 {
		t.Fatalf("hub successors = %d, want 4", len(got))
	}
	for _, s := range succs {
		if g.SinglePred(s) != hub {
			t.Fatalf("succ n%d SinglePred != hub", s.ID)
		}
	}

	// Now give one successor four distinct predecessors (the hub plus
	// three fresh single-leaf nodes) and a parallel edge.
	target := succs[0]
	var extra []*Node
	for i := 0; i < 3; i++ {
		n := g.NewNode()
		extra = append(extra, n)
		g.RetargetLeaf(n.Root, target)
	}
	g.RetargetLeaf(f1, target) // second hub edge: parallel to t1's
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.PredEdgeCount(target); got != 5 {
		t.Fatalf("PredEdgeCount = %d, want 5", got)
	}
	if got := len(g.Preds(target)); got != 4 {
		t.Fatalf("distinct preds = %d, want 4", got)
	}
	if g.SinglePred(target) != nil {
		t.Fatal("SinglePred must be nil with 5 in-edges")
	}

	// Unwind the overflow: drop edges until one remains.
	g.RetargetLeaf(f1, nil)
	for _, n := range extra {
		g.RetargetLeaf(n.Root, nil)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SinglePred(target) != hub {
		t.Fatal("SinglePred must return the hub again")
	}
	if got := hub.NonDrainSucc(); got != nil {
		t.Fatalf("NonDrainSucc over 4 successors = n%d, want nil (ambiguous)", got.ID)
	}
}
