package graph

import (
	"strings"
	"testing"
)

func TestDOTExport(t *testing.T) {
	g, ns, _ := buildChain(t)
	dot := g.DOT("test")
	for _, want := range []string{
		"digraph \"test\"",
		"style=dashed", // the drain node
		"label=\"T\"",  // branch true edge
		"label=\"F\"",  // branch false edge
		"cj r",         // the branch op rendered
		"rankdir=TB",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	_ = ns
}
