package graph_test

import (
	"context"
	"testing"

	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// scheduledGraph produces a real scheduled pipeline graph — the input
// POST's phase-1 memo clones on every target width.
func scheduledGraph(tb testing.TB) *pipeline.Result {
	tb.Helper()
	cfg := pipeline.DefaultConfig(machine.Infinite())
	res, err := pipeline.PerfectPipeline(context.Background(), livermore.ByName("LL3").Spec, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkGraphClone measures the arena deep-clone of a scheduled
// graph (the POST phase-1 memo path).
func BenchmarkGraphClone(b *testing.B) {
	res := scheduledGraph(b)
	g := res.Unwound.G
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clone(res.Unwound.Alloc.Clone())
	}
}

// TestClonePreservesIndices: graph.Clone must carry every op's dense
// index across, so the clone answers the same dependence-matrix and
// priority queries as the original.
func TestClonePreservesIndices(t *testing.T) {
	res := scheduledGraph(t)
	uw := res.Unwound
	g := uw.G

	ng, byID := g.Clone(uw.Alloc.Clone())
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	mapped := 0
	for _, op := range uw.Ops {
		c := byID[op.ID]
		if c == nil {
			continue // removed by optimization; not placed in the graph
		}
		mapped++
		if c.Index != op.Index {
			t.Fatalf("op %d: clone Index %d, want %d", op.ID, c.Index, op.Index)
		}
		if c.ID != op.ID || c.Iter != op.Iter || c.Origin != op.Origin {
			t.Fatalf("op %d: identity fields drifted in clone", op.ID)
		}
	}
	if mapped == 0 {
		t.Fatal("no ops mapped through the clone")
	}

	// The original program's DDG answers must transfer: a fresh Build
	// over the cloned op list reproduces chain lengths index-for-index.
	cl := uw.Clone()
	d := deps.Build(uw.Ops)
	dc := deps.Build(cl.Ops)
	for i := range uw.Ops {
		if d.ChainLen(uw.Ops[i]) != dc.ChainLen(cl.Ops[i]) {
			t.Fatalf("op %d: chain length differs between original and clone", i)
		}
	}
}
