package ps

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sim"
)

// randomProgram builds a random straight-line chain of nOps operations
// over a small register and memory pool, optionally with a conditional
// jump in the middle whose false side runs a short exit stub. Reading
// never-written registers is fine (they hold zero), so no SSA discipline
// is needed for the program to have well-defined semantics.
func randomProgram(rng *rand.Rand, nOps int, withBranch bool) (*graph.Graph, *ir.Alloc, []*ir.Op) {
	al := ir.NewAlloc()
	g := graph.New(al)
	const regs = 6
	regOf := func() ir.Reg { return ir.Reg(rng.Intn(regs) + 1) }
	arrA := al.Array("A")
	arrB := al.Array("B")
	arrOf := func() ir.Array {
		if rng.Intn(2) == 0 {
			return arrA
		}
		return arrB
	}
	randOp := func(origin int) *ir.Op {
		op := &ir.Op{ID: al.OpID(), Origin: origin, Iter: 0}
		switch rng.Intn(7) {
		case 0:
			op.Kind = ir.Const
			op.Dst = regOf()
			op.Imm = int64(rng.Intn(20))
		case 1:
			op.Kind = ir.Copy
			op.Dst = regOf()
			op.Src[0] = regOf()
		case 2, 3:
			op.Kind = ir.Opcode(int(ir.Add) + rng.Intn(4)) // Add..Div
			op.Dst = regOf()
			op.Src[0] = regOf()
			if rng.Intn(2) == 0 {
				op.BImm = true
				op.Imm = int64(rng.Intn(5) + 1)
			} else {
				op.Src[1] = regOf()
			}
		case 4, 5:
			op.Kind = ir.Load
			op.Dst = regOf()
			op.Mem = ir.MemRef{Array: arrOf(), Index: int64(rng.Intn(4))}
		default:
			op.Kind = ir.Store
			op.Src[0] = regOf()
			op.Mem = ir.MemRef{Array: arrOf(), Index: int64(rng.Intn(4))}
		}
		return op
	}

	var ops []*ir.Op
	var tail *graph.Node
	branchAt := -1
	if withBranch {
		branchAt = nOps / 2
	}
	for i := 0; i < nOps; i++ {
		if i == branchAt {
			// Exit stub: one store so drain execution is observable.
			stub := g.NewNode()
			stOp := &ir.Op{ID: al.OpID(), Origin: 100, Iter: 0, Kind: ir.Store,
				Src: [2]ir.Reg{regOf()}, Mem: ir.MemRef{Array: arrOf(), Index: 7}}
			g.AddOp(stOp, stub.Root)
			cj := &ir.Op{ID: al.OpID(), Origin: 101, Iter: 0, Kind: ir.CJ,
				Src: [2]ir.Reg{regOf()}, Imm: int64(rng.Intn(10)), BImm: true, Rel: ir.Lt}
			tail = graph.AppendBranch(g, tail, cj, stub)
			ops = append(ops, cj)
			continue
		}
		op := randOp(i)
		tail = graph.AppendOp(g, tail, op)
		ops = append(ops, op)
	}
	return g, al, ops
}

func randomStates(rng *rand.Rand, n int) []*sim.State {
	var states []*sim.State
	for i := 0; i < n; i++ {
		s := sim.NewState()
		for r := 1; r <= 6; r++ {
			s.SetReg(ir.Reg(r), int64(rng.Intn(21)-10))
		}
		for a := 1; a <= 2; a++ {
			for idx := 0; idx < 8; idx++ {
				s.SetMem(ir.Array(a), int64(idx), int64(rng.Intn(30)))
			}
		}
		states = append(states, s)
	}
	return states
}

// TestRandomStepUpPreservesSemantics applies hundreds of random legal
// StepUps to random programs and checks after every mutation that the
// graph still validates and that memory semantics are unchanged on
// several random initial states. This is the central soundness property
// of the transformation layer: any sequence of legal PS transformations
// preserves the program's observable behaviour.
func TestRandomStepUpPreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			withBranch := seed%2 == 0
			g, _, ops := randomProgram(rng, 14, withBranch)
			if err := g.Validate(); err != nil {
				t.Fatalf("initial validate: %v", err)
			}
			states := randomStates(rng, 4)
			var refs []*sim.State
			for _, s := range states {
				res, err := sim.Run(g, s, 1000)
				if err != nil {
					t.Fatal(err)
				}
				refs = append(refs, res.State)
			}
			ctx := NewCtx(g, machine.New(1+rng.Intn(3)), nil)
			moved := 0
			for step := 0; step < 300; step++ {
				op := ops[rng.Intn(len(ops))]
				if g.Where(op) == nil {
					continue // spliced away? ops are never deleted, but be safe
				}
				blk := ctx.StepUp(op)
				if blk.Kind != BlockNone {
					continue
				}
				moved++
				if err := g.Validate(); err != nil {
					t.Fatalf("step %d (op %v): validate: %v", step, op, err)
				}
				for i, s := range states {
					res, err := sim.Run(g, s, 1000)
					if err != nil {
						t.Fatalf("step %d: sim: %v", step, err)
					}
					if err := sim.EquivalentMem(refs[i], res.State); err != nil {
						t.Fatalf("step %d (op %v): semantics changed: %v\n%s",
							step, op, err, g.String())
					}
				}
			}
			if moved == 0 {
				t.Log("no moves were legal for this seed (acceptable but rare)")
			}
		})
	}
}

// TestCrossCheckedRandomMutationSequences drives random mutation
// sequences with Ctx.CrossCheck enabled, so every prefix-filter
// verdict, walk-free path resolution, guided move-past-read descent,
// and hoist ancestor pre-gate runs next to its retained reference scan
// and panics on any divergence in verdict, blocker, use list, or
// rewrite list. Renamed moves are mixed in: renaming's RetargetDef and
// copy compensations mutate the summaries mid-sequence, which is
// exactly the state the filters must stay exact under.
func TestCrossCheckedRandomMutationSequences(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _, ops := randomProgram(rng, 12, seed%2 == 0)
		ctx := NewCtx(g, machine.New(1+rng.Intn(3)), nil)
		ctx.CrossCheck = true
		moved := 0
		for step := 0; step < 120; step++ {
			op := ops[rng.Intn(len(ops))]
			if g.Where(op) == nil {
				continue
			}
			var blk Block
			if rng.Intn(4) == 0 && !op.IsBranch() && g.Where(op) == g.NodeOf(op).Root {
				blk = ctx.TryMoveOpUpRenamed(op)
			} else {
				blk = ctx.StepUp(op)
			}
			if blk.Kind != BlockNone {
				continue
			}
			moved++
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d step %d (op %v): validate: %v", seed, step, op, err)
			}
		}
		if moved == 0 && seed == 1 {
			t.Log("seed 1: no moves were legal (acceptable but rare)")
		}
	}
}

// TestRandomRenamedMoves drives the renaming transformation over random
// programs, which (unlike the SSA-renamed pipelines) are full of output
// and anti dependences that only renaming can move past.
func TestRandomRenamedMoves(t *testing.T) {
	for seed := int64(50); seed < 56; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _, ops := randomProgram(rng, 12, false)
		states := randomStates(rng, 3)
		var refs []*sim.State
		for _, s := range states {
			res, err := sim.Run(g, s, 1000)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, res.State)
		}
		ctx := NewCtx(g, machine.New(3), nil)
		renamed := 0
		for step := 0; step < 200; step++ {
			op := ops[rng.Intn(len(ops))]
			if op.IsBranch() || g.Where(op) == nil {
				continue
			}
			if g.Where(op) != g.NodeOf(op).Root {
				continue
			}
			before := ctx.Renames
			if blk := ctx.TryMoveOpUpRenamed(op); blk.Kind != BlockNone {
				continue
			}
			if ctx.Renames > before {
				renamed++
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d step %d: validate: %v", seed, step, err)
			}
			for i, s := range states {
				res, err := sim.Run(g, s, 1000)
				if err != nil {
					t.Fatal(err)
				}
				if err := sim.EquivalentMem(refs[i], res.State); err != nil {
					t.Fatalf("seed %d step %d (op %v): semantics: %v", seed, step, op, err)
				}
			}
		}
		if renamed == 0 {
			t.Logf("seed %d: no renames triggered", seed)
		}
	}
}
