package ps

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// rewrite is a copy-propagation substitution: a use of from becomes a use
// of to. Valid because the copy "to -> from" on the destination path read
// register to at the destination instruction's entry — exactly where the
// moved operation will read it (paper section 2: "we simply change the
// use of B into a use of X").
type rewrite struct{ from, to ir.Reg }

// TryMoveOpUp attempts the move-op transformation of Figure 2: move op —
// which must sit at the root vertex of its node — one edge up, attaching
// it at the leaf of the unique predecessor that points at op's node. The
// commit condition of the op is exactly preserved (it still commits iff
// control would have reached its old node), so this step alone is never
// speculative; speculation happens in TryHoist.
//
// With commit false the graph is left untouched and the result reports
// whether the move would succeed. excluding, when non-nil, is treated as
// absent from the graph: the Gapless-move test (condition 4) uses it to
// ask "would X be moveable if Op had already left?".
func (c *Ctx) TryMoveOpUp(op *ir.Op, commit bool, excluding *ir.Op) Block {
	if op.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if op.IsBranch() {
		panic("ps: TryMoveOpUp on branch")
	}
	v := c.G.Where(op)
	if v == nil {
		panic("ps: unplaced op")
	}
	n := v.Node()
	if v != n.Root {
		// Under a branch inside the node: must hoist first.
		return Block{Kind: BlockStructure}
	}
	t, leaf, blk := c.predLeaf(n)
	if blk.Kind != BlockNone {
		return blk
	}

	// Dependence scan along the committed path of the target node,
	// filtered by the target instruction's def/use summary: when none of
	// op's reads or its def appear in the tree's def set and (for memory
	// ops) the tree holds no store, no path op can conflict and no copy
	// can rewrite an operand, so the register-by-register walk is
	// skipped outright (DESIGN.md §7 argues soundness; almost every
	// probe lands here). Both scratch lists live in stack buffers: probe
	// calls (commit=false, the Gapless-move test's canFill) must not
	// allocate. Bounds: no op kind reads more than 2 registers
	// (TestOpUsesBufferBound), and each rewrite is one copy-propagation
	// hop, so 8 covers any chain the schedulers build; a longer chain
	// overflows into a correct heap append, it is just no longer free
	// (TestRewriteBufferOverflowsCorrectly).
	var useBuf [3]ir.Reg
	uses := op.Uses(useBuf[:0])
	var rwBuf [8]rewrite
	rewrites := rwBuf[:0]
	if pathScanNeeded(t, op, uses) {
		var block Block
		block, uses, rewrites = scanCommittedPath(leaf, op, excluding, uses, rewrites)
		if block.Kind != BlockNone {
			return block
		}
	} else if c.CrossCheck {
		c.crossCheckPathMiss(t, leaf, op, excluding)
	}

	// Move-past-read: a reader of op's target remaining in the source
	// node would observe the new value instead of the old one (reads
	// happen at entry). Renaming can remove this. The memory analogue:
	// a store may not move above an aliasing load left behind.
	if blk := c.scanMovePastRead(n, op, excluding); blk.Kind != BlockNone {
		return blk
	}

	// Resources: every op in the tree occupies a functional unit.
	target := t.OpCount() + 1
	if excluding != nil && !excluding.IsBranch() && c.G.NodeOf(excluding) == t {
		target--
	}
	if !c.M.FitsOps(target) {
		return Block{Kind: BlockResource}
	}

	if !commit {
		return blockNone
	}
	if len(rewrites) > 0 {
		for _, rw := range rewrites {
			c.G.ReplaceUse(op, rw.from, rw.to)
		}
		c.noteRewrite(op)
	}
	c.G.MoveOp(op, leaf)
	c.Moves++
	if n.Empty() {
		if c.G.SpliceOutEmpty(n) {
			c.Splices++
		}
	}
	return blockNone
}

// pathScanNeeded is the summary filter for the committed-path dependence
// scan: it reports whether the target instruction t could hold a
// conflicting or copy-propagating operation for op. A false answer is a
// proof of absence — the summary's def set covers every operation in
// t's tree (a superset of any root→leaf path), and its store count
// covers every store — so the caller may skip the walk and keep the
// empty rewrite list. A true answer only means "walk and find out".
func pathScanNeeded(t *graph.Node, op *ir.Op, uses []ir.Reg) bool {
	root := t.Root
	for _, u := range uses {
		if root.SubtreeDefines(u) {
			return true
		}
	}
	if d := op.Def(); d != ir.NoReg && root.SubtreeDefines(d) {
		return true
	}
	// op.Mem non-zero ⇒ op is the load or store of the scan's memory
	// ordering test; any store in the tree forces the walk.
	if !op.Mem.IsZero() && root.SubtreeStores() {
		return true
	}
	return false
}

// scanCommittedPath is the reference dependence scan: register-by-
// register over every operation committed on the root→leaf path of the
// target node, collecting copy-propagation rewrites. It returns the
// blocking verdict plus the (possibly rewritten) use list and rewrite
// list. Retained in full as the fallback for summary hits and as the
// cross-checked reference implementation.
func scanCommittedPath(leaf *graph.Vertex, op, excluding *ir.Op, uses []ir.Reg, rewrites []rewrite) (Block, []ir.Reg, []rewrite) {
	block := blockNone
	pathOps(leaf, func(p *ir.Op) bool {
		if p == excluding || p == op {
			return true
		}
		if d := p.Def(); d != ir.NoReg {
			for i, u := range uses {
				if u != d {
					continue
				}
				if p.IsCopy() {
					// Propagate through the copy.
					uses[i] = p.Src[0]
					rewrites = append(rewrites, rewrite{from: d, to: p.Src[0]})
					continue
				}
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			if d == op.Def() {
				// Output dependence: two commits of the same register
				// on one path. Renaming can remove this.
				block = Block{Kind: BlockDep, By: p}
				return false
			}
		}
		// Memory ordering: a load may not pass an aliasing store; two
		// aliasing stores may not share a path (ambiguous commit).
		if !op.Mem.IsZero() && !p.Mem.IsZero() {
			if (op.IsLoad() && p.IsStore() || op.IsStore() && p.IsStore()) && op.Mem.MayAlias(p.Mem) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
		}
		return true
	}, nil)
	return block, uses, rewrites
}

// crossCheckPathMiss verifies a summary miss against the reference
// scan: it must find neither a block nor a rewrite. Runs only under
// Ctx.CrossCheck; a divergence is a summary-maintenance bug, reported
// by panic exactly like a failed graph invariant.
func (c *Ctx) crossCheckPathMiss(t *graph.Node, leaf *graph.Vertex, op, excluding *ir.Op) {
	var useBuf [3]ir.Reg
	uses := op.Uses(useBuf[:0])
	var rwBuf [8]rewrite
	block, _, rw := scanCommittedPath(leaf, op, excluding, uses, rwBuf[:0])
	if block.Kind != BlockNone || len(rw) != 0 {
		panic(fmt.Sprintf("ps: summary filter missed a path conflict moving %v into n%d (block %v, %d rewrites)",
			op, t.ID, block.Kind, len(rw)))
	}
}

// scanMovePastRead checks for readers of op's target register (or, for
// a store, aliasing loads) left behind in the source node. The walk is
// filtered by the node's read summary and load count: a miss proves no
// vertex holds a reader, so the vertex-by-vertex scan is skipped.
func (c *Ctx) scanMovePastRead(n *graph.Node, op *ir.Op, excluding *ir.Op) Block {
	d := op.Def()
	if !(d != ir.NoReg && n.Root.SubtreeReads(d)) && !(op.IsStore() && n.Root.SubtreeLoads()) {
		if c.CrossCheck {
			if blk := scanMovePastReadReference(n, op, excluding); blk.Kind != BlockNone {
				panic(fmt.Sprintf("ps: summary filter missed a move-past-read conflict for %v in n%d (blocked by %v)",
					op, n.ID, blk.By))
			}
		}
		return blockNone
	}
	return scanMovePastReadReference(n, op, excluding)
}

// scanMovePastReadReference is the retained full scan over every vertex
// of the source node.
func scanMovePastReadReference(n *graph.Node, op *ir.Op, excluding *ir.Op) Block {
	d := op.Def()
	block := blockNone
	n.Walk(func(v *graph.Vertex) {
		if block.Kind != BlockNone {
			return
		}
		check := func(p *ir.Op) bool {
			if p == op || p == excluding {
				return true
			}
			if d != ir.NoReg && p.ReadsReg(d) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			if op.IsStore() && p.IsLoad() && op.Mem.MayAlias(p.Mem) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			return true
		}
		for _, p := range v.Ops {
			if !check(p) {
				return
			}
		}
		if v.CJ != nil {
			check(v.CJ)
		}
	})
	return block
}
