package ps

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// rewrite is a copy-propagation substitution: a use of from becomes a use
// of to. Valid because the copy "to -> from" on the destination path read
// register to at the destination instruction's entry — exactly where the
// moved operation will read it (paper section 2: "we simply change the
// use of B into a use of X").
type rewrite struct{ from, to ir.Reg }

// TryMoveOpUp attempts the move-op transformation of Figure 2: move op —
// which must sit at the root vertex of its node — one edge up, attaching
// it at the leaf of the unique predecessor that points at op's node. The
// commit condition of the op is exactly preserved (it still commits iff
// control would have reached its old node), so this step alone is never
// speculative; speculation happens in TryHoist.
//
// With commit false the graph is left untouched and the result reports
// whether the move would succeed. excluding, when non-nil, is treated as
// absent from the graph: the Gapless-move test (condition 4) uses it to
// ask "would X be moveable if Op had already left?".
func (c *Ctx) TryMoveOpUp(op *ir.Op, commit bool, excluding *ir.Op) Block {
	if op.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if op.IsBranch() {
		panic("ps: TryMoveOpUp on branch")
	}
	v := c.G.Where(op)
	if v == nil {
		panic("ps: unplaced op")
	}
	n := v.Node()
	if v != n.Root {
		// Under a branch inside the node: must hoist first.
		return Block{Kind: BlockStructure}
	}
	t, leaf, blk := c.predLeaf(n)
	if blk.Kind != BlockNone {
		return blk
	}

	// Dependence scan along the committed path of the target node,
	// filtered by the target leaf's path-prefix summary: when none of
	// op's reads or its def appear in the path's def set and (for memory
	// ops) the path holds no store, no path op can conflict and no copy
	// can rewrite an operand, so the register-by-register walk is
	// skipped outright. The prefix set covers exactly the root→leaf
	// path, so — unlike the PR 7 tree-superset filter — a hit means some
	// committed op really does touch one of the probed registers
	// (DESIGN.md §10 argues soundness), and the resolver then visits
	// only the vertices whose own tier hits instead of every path op.
	// Both scratch lists live in stack buffers: probe calls
	// (commit=false, the Gapless-move test's canFill) must not
	// allocate. Bounds: no op kind reads more than 2 registers
	// (TestOpUsesBufferBound), and each rewrite is one copy-propagation
	// hop, so 8 covers any chain the schedulers build; a longer chain
	// overflows into a correct heap append, it is just no longer free
	// (TestRewriteBufferOverflowsCorrectly).
	var useBuf [3]ir.Reg
	uses := op.UsesView(useBuf[:0])
	var rwBuf [8]rewrite
	rewrites := rwBuf[:0]
	if mask := pathScanNeeded(leaf, op, uses); mask != 0 {
		var block Block
		if c.CrossCheck {
			block, uses, rewrites = c.resolvePath(leaf, op, excluding, uses, useBuf[:0], rewrites, mask)
		} else {
			block, uses, rewrites = resolveCommittedPath(leaf, op, excluding, uses, useBuf[:0], rewrites, mask)
		}
		if block.Kind != BlockNone {
			return block
		}
	} else if c.CrossCheck {
		c.crossCheckPathMiss(leaf, op, excluding)
	}

	// Move-past-read: a reader of op's target remaining in the source
	// node would observe the new value instead of the old one (reads
	// happen at entry). Renaming can remove this. The memory analogue:
	// a store may not move above an aliasing load left behind.
	if blk := c.scanMovePastRead(n, op, excluding); blk.Kind != BlockNone {
		return blk
	}

	// Resources: every op in the tree occupies a functional unit.
	target := t.OpCount() + 1
	if excluding != nil && !excluding.IsBranch() && c.G.NodeOf(excluding) == t {
		target--
	}
	if !c.M.FitsOps(target) {
		return Block{Kind: BlockResource}
	}

	if !commit {
		return blockNone
	}
	if len(rewrites) > 0 {
		for _, rw := range rewrites {
			c.G.ReplaceUse(op, rw.from, rw.to)
		}
		c.noteRewrite(op)
	}
	c.G.MoveOp(op, leaf)
	c.Moves++
	if n.Empty() {
		if c.G.SpliceOutEmpty(n) {
			c.Splices++
		}
	}
	return blockNone
}

// Bits of the pathScanNeeded hit mask beyond the per-use bits 1<<j.
const (
	hitOpDef  = 1 << 3 // op's destination is defined on the path
	hitStores = 1 << 4 // op touches memory and the path holds stores
)

// pathScanNeeded is the summary filter for the committed-path dependence
// scan: it reports which of op's registers the root→leaf path the mover
// enters could conflict with — bit j for uses[j], hitOpDef for the
// destination, hitStores for the memory probe — so the resolver only
// resolves registers that actually hit. A zero mask is a proof of
// absence — the leaf's path-prefix def set covers exactly the
// operations committed on this path, and its prefix store count every
// store on it — so the caller may skip the scan and keep the empty
// rewrite list. The filter is exact up to `excluding` (an op the caller
// treats as absent still contributes its summary bits): a hit caused
// only by excluding resolves to no block and no rewrites, never a wrong
// verdict.
func pathScanNeeded(leaf *graph.Vertex, op *ir.Op, uses []ir.Reg) uint8 {
	mask := uint8(0)
	for j, u := range uses {
		if leaf.PathDefines(u) {
			mask |= 1 << j
		}
	}
	if d := op.Def(); d != ir.NoReg && leaf.PathDefines(d) {
		mask |= hitOpDef
	}
	// op.Mem non-zero ⇒ op is the load or store of the scan's memory
	// ordering test; any store on the path forces the scan.
	if !op.Mem.IsZero() && leaf.PathStores() {
		mask |= hitStores
	}
	return mask
}

// resolvePath runs the walk-free committed-path resolver on a filter
// hit and, under Ctx.CrossCheck, the retained reference scan next to
// it, panicking on any divergence in verdict, blocker, rewritten use
// list, or rewrite list.
func (c *Ctx) resolvePath(leaf *graph.Vertex, op, excluding *ir.Op, uses, scratch []ir.Reg, rewrites []rewrite, mask uint8) (Block, []ir.Reg, []rewrite) {
	if !c.CrossCheck {
		return resolveCommittedPath(leaf, op, excluding, uses, scratch, rewrites, mask)
	}
	var refUseBuf [3]ir.Reg
	refUses := op.Uses(refUseBuf[:0])
	var refRwBuf [8]rewrite
	refBlock, refUses, refRewrites := scanCommittedPath(leaf, op, excluding, refUses, refRwBuf[:0])
	block, uses, rewrites := resolveCommittedPath(leaf, op, excluding, uses, scratch, rewrites, mask)
	diverged := block != refBlock || len(uses) != len(refUses) || len(rewrites) != len(refRewrites)
	if !diverged {
		for i := range uses {
			diverged = diverged || uses[i] != refUses[i]
		}
		for i := range rewrites {
			diverged = diverged || rewrites[i] != refRewrites[i]
		}
	}
	if diverged {
		panic(fmt.Sprintf("ps: committed-path resolver diverged from reference moving %v into n%d (got %v/%d rewrites, reference %v/%d rewrites)",
			op, leaf.Node().ID, block.Kind, len(rewrites), refBlock.Kind, len(refRewrites)))
	}
	return block, uses, rewrites
}

// noEvt is the "no candidate" sentinel for the event-loop resolver:
// larger than any packed path coordinate.
const noEvt = int64(1<<63 - 1)

// pathDefSite resolves register u — already known to be in the leaf's
// prefix def set — straight to its unique definition site on the
// root→leaf path (chain[0] is the leaf, chain[len-1] the root) and
// returns the defining op with its packed path coordinate — (depth
// below root)<<32 | (op position) — so coordinates order exactly like
// the reference scan visits ops. Resolution is two lookups, never an
// op enumeration: the path-prefix def set is monotone along the path
// (pre(v) = pre(parent) ∪ own(v)) and the single-definition-per-path
// invariant (Validate's checkSingleDefPerPath) makes the membership
// flip exactly at the defining vertex, so a binary search over the
// chain lands on it and the vertex's sorted def-site index yields the
// op. A site occupied by op or excluding — which the scan treats as
// absent — resolves to no event: with defs unique per path there is no
// other site to fall back to.
func pathDefSite(chain []*graph.Vertex, u ir.Reg, op, excluding *ir.Op) (*ir.Op, int64) {
	lo, hi := 0, len(chain)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if chain[mid].PathDefines(u) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	p, k := chain[lo].DefSiteHere(u)
	if p == nil || p == op || p == excluding {
		return nil, noEvt
	}
	return p, int64(len(chain)-1-lo)<<32 | int64(k)
}

// resolveCommittedPath is the walk-free committed-path dependence scan.
// It never enumerates path operations: each probed register resolves
// straight to its unique definition site (pathDefSite), memory movers
// to the first aliasing store through the store-position index, and
// the earliest such event decides — a copy event rewrites the matching
// uses and re-resolves just those, any other event is the blocker.
//
// The event order reproduces the reference scan bit-for-bit:
//   - Packed coordinates order by (vertex depth, op position), which
//     is the reference's scan order; the evolving use list at each
//     event therefore matches the reference's, so the verdict —
//     order-sensitive because a def of a rewritten use after the copy
//     blocks while one before it does not — is identical, as is the
//     rewrite list (DESIGN.md §10).
//   - Per rewritten use, entry[j] records the rewrite coordinate, so a
//     definition of the new register at or before it (already passed
//     by the reference) never fires.
//   - Event coordinates are distinct except when one op both defines a
//     current use and op's own destination (u == opDef): there the use
//     event runs first, exactly as the reference checks uses before
//     the output dependence — a copy rewrites and then blocks as the
//     output dependence, a non-copy blocks outright; either way the
//     blocker is that op. Stores define no register, so a memory event
//     never ties with a def event.
//
// Conditional jumps on the path are irrelevant here exactly as in the
// reference: they define no register and touch no memory.
func resolveCommittedPath(leaf *graph.Vertex, op, excluding *ir.Op, uses, scratch []ir.Reg, rewrites []rewrite, mask uint8) (Block, []ir.Reg, []rewrite) {
	// Same stack-buffered chain collection as pathOps (and the same
	// overflow behavior past depth 8: a correct heap append).
	var buf [8]*graph.Vertex
	chain := buf[:0]
	for v := leaf; v != nil; v = v.Parent() {
		chain = append(chain, v)
	}

	// Fixed candidates: the output-dependence site, and for a memory
	// mover the first aliasing store in scan order — the only walk
	// left, over per-vertex store counters with the op list untouched.
	// The filter's hit mask says which registers are on the path at
	// all, so a non-hit probe costs nothing here.
	po, ko := (*ir.Op)(nil), noEvt
	if mask&hitOpDef != 0 {
		po, ko = pathDefSite(chain, op.Def(), op, excluding)
	}
	pmem, kmem := (*ir.Op)(nil), noEvt
	if mask&hitStores != 0 && (op.IsLoad() || op.IsStore()) {
		// Memory ordering: a load may not pass an aliasing store; two
		// aliasing stores may not share a path (ambiguous commit).
	memScan:
		for i := len(chain) - 1; i >= 0; i-- {
			if !chain[i].StoresHere() {
				continue
			}
			for _, k := range chain[i].StoreSites() {
				if p := chain[i].Ops[k]; p != op && p != excluding && op.Mem.MayAlias(p.Mem) {
					pmem, kmem = p, int64(len(chain)-1-i)<<32|int64(k)
					break memScan
				}
			}
		}
	}

	// Earliest use-def event among the filter's hit registers. The
	// rewrite-coordinate guards (entry) are set up lazily on the first
	// copy event: the overwhelmingly common call resolves in this one
	// pass and never touches them.
	best, bestJ := noEvt, -1
	var bestP *ir.Op
	for j, u := range uses {
		if mask&(1<<j) == 0 {
			continue
		}
		if p, c := pathDefSite(chain, u, op, excluding); p != nil && c < best {
			best, bestJ, bestP = c, j, p
		}
	}
	var entryBuf [3]int64
	var entry []int64
	for {
		if kmem < best && kmem < ko {
			return Block{Kind: BlockDep, By: pmem}, uses, rewrites
		}
		if ko < best {
			// Output dependence: two commits of the same register
			// on one path. Renaming can remove this.
			return Block{Kind: BlockDep, By: po}, uses, rewrites
		}
		if bestJ < 0 {
			return blockNone, uses, rewrites
		}
		if !bestP.IsCopy() {
			return Block{Kind: BlockDep, By: bestP}, uses, rewrites
		}
		if entry == nil {
			entry = entryBuf[:len(uses)]
			for j := range entry {
				entry[j] = -1
			}
			// The use list may alias the op's operand cache (UsesView);
			// detach into the caller's scratch before rewriting it.
			uses = append(scratch[:0], uses...)
		}
		// Propagate through the copy: every current use of its target
		// is rewritten, ascending j, matching the reference inner loop,
		// and its filter bit refreshed for the replacement register.
		d, src := bestP.Def(), bestP.Src[0]
		for j, u := range uses {
			if u == d && entry[j] < best {
				uses[j] = src
				entry[j] = best
				rewrites = append(rewrites, rewrite{from: d, to: src})
				if chain[0].PathDefines(src) {
					mask |= 1 << j
				} else {
					mask &^= 1 << j
				}
			}
		}
		if best == ko {
			return Block{Kind: BlockDep, By: po}, uses, rewrites
		}
		// Next event: re-resolve every live register past its rewrite
		// coordinate. Only copy-event iterations pay this — zero on the
		// table's profile.
		best, bestJ, bestP = noEvt, -1, nil
		for j, u := range uses {
			if mask&(1<<j) == 0 {
				continue
			}
			p, c := pathDefSite(chain, u, op, excluding)
			if p == nil || c <= entry[j] {
				continue
			}
			if c < best {
				best, bestJ, bestP = c, j, p
			}
		}
	}
}

// scanCommittedPath is the reference dependence scan: register-by-
// register over every operation committed on the root→leaf path of the
// target node, collecting copy-propagation rewrites. It returns the
// blocking verdict plus the (possibly rewritten) use list and rewrite
// list. Retained as the cross-checked reference implementation behind
// Ctx.CrossCheck.
func scanCommittedPath(leaf *graph.Vertex, op, excluding *ir.Op, uses []ir.Reg, rewrites []rewrite) (Block, []ir.Reg, []rewrite) {
	block := blockNone
	pathOps(leaf, func(p *ir.Op) bool {
		if p == excluding || p == op {
			return true
		}
		if d := p.Def(); d != ir.NoReg {
			for i, u := range uses {
				if u != d {
					continue
				}
				if p.IsCopy() {
					// Propagate through the copy.
					uses[i] = p.Src[0]
					rewrites = append(rewrites, rewrite{from: d, to: p.Src[0]})
					continue
				}
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			if d == op.Def() {
				// Output dependence: two commits of the same register
				// on one path. Renaming can remove this.
				block = Block{Kind: BlockDep, By: p}
				return false
			}
		}
		// Memory ordering: a load may not pass an aliasing store; two
		// aliasing stores may not share a path (ambiguous commit).
		if !op.Mem.IsZero() && !p.Mem.IsZero() {
			if (op.IsLoad() && p.IsStore() || op.IsStore() && p.IsStore()) && op.Mem.MayAlias(p.Mem) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
		}
		return true
	}, nil)
	return block, uses, rewrites
}

// crossCheckPathMiss verifies a prefix-filter miss against the
// reference scan: it must find neither a block nor a rewrite. Runs only
// under Ctx.CrossCheck; a divergence is a summary-maintenance bug,
// reported by panic exactly like a failed graph invariant.
func (c *Ctx) crossCheckPathMiss(leaf *graph.Vertex, op, excluding *ir.Op) {
	var useBuf [3]ir.Reg
	uses := op.Uses(useBuf[:0])
	var rwBuf [8]rewrite
	block, _, rw := scanCommittedPath(leaf, op, excluding, uses, rwBuf[:0])
	if block.Kind != BlockNone || len(rw) != 0 {
		panic(fmt.Sprintf("ps: summary filter missed a path conflict moving %v into n%d (block %v, %d rewrites)",
			op, leaf.Node().ID, block.Kind, len(rw)))
	}
}

// scanMovePastRead checks for readers of op's target register (or, for
// a store, aliasing loads) left behind in the source node. The fast
// path descends the instruction tree guided by the subtree read/load
// summaries — a subtree whose summary proves no reader is never
// entered, and a vertex's op list is scanned only when its own tier
// holds a read of d (or a load, for a store mover) — visiting vertices
// in the same preorder as the reference walk so the reported blocker is
// identical. Under Ctx.CrossCheck the retained full walk runs next to
// it and any divergence panics.
func (c *Ctx) scanMovePastRead(n *graph.Node, op *ir.Op, excluding *ir.Op) Block {
	blk := scanMovePastReadFast(n.Root, op, excluding, op.Def(), op.IsStore())
	if c.CrossCheck {
		if ref := scanMovePastReadReference(n, op, excluding); ref != blk {
			panic(fmt.Sprintf("ps: move-past-read fast scan diverged for %v in n%d (got %v by %v, reference %v by %v)",
				op, n.ID, blk.Kind, blk.By, ref.Kind, ref.By))
		}
	}
	return blk
}

// scanMovePastReadFast is the summary-guided descent. Soundness of the
// two gates: a blocking op p satisfies either p.ReadsReg(d) — then d is
// in the own-use tier of p's vertex and in the sub-use tier of every
// ancestor — or p.IsLoad()∧aliasing — then the own/sub load counters of
// those vertices are positive. So a pruned subtree or skipped op list
// can hold no blocker. The gates may pass without a blocker (op or
// excluding contribute their own reads; MayAlias is per-op), which
// costs a scan that finds nothing, never a wrong verdict.
func scanMovePastReadFast(v *graph.Vertex, op, excluding *ir.Op, d ir.Reg, isStore bool) Block {
	if d != ir.NoReg && v.ReadsHere(d) || isStore && v.LoadsHere() {
		for _, p := range v.Ops {
			if p == op || p == excluding {
				continue
			}
			if d != ir.NoReg && p.ReadsReg(d) {
				return Block{Kind: BlockDep, By: p}
			}
			if isStore && p.IsLoad() && op.Mem.MayAlias(p.Mem) {
				return Block{Kind: BlockDep, By: p}
			}
		}
		if p := v.CJ; p != nil && p != excluding && d != ir.NoReg && p.ReadsReg(d) {
			return Block{Kind: BlockDep, By: p}
		}
	}
	if v.IsLeaf() {
		return blockNone
	}
	for _, ch := range [2]*graph.Vertex{v.True, v.False} {
		if d != ir.NoReg && ch.SubtreeReads(d) || isStore && ch.SubtreeLoads() {
			if blk := scanMovePastReadFast(ch, op, excluding, d, isStore); blk.Kind != BlockNone {
				return blk
			}
		}
	}
	return blockNone
}

// scanMovePastReadReference is the retained full scan over every vertex
// of the source node.
func scanMovePastReadReference(n *graph.Node, op *ir.Op, excluding *ir.Op) Block {
	d := op.Def()
	block := blockNone
	n.Walk(func(v *graph.Vertex) {
		if block.Kind != BlockNone {
			return
		}
		check := func(p *ir.Op) bool {
			if p == op || p == excluding {
				return true
			}
			if d != ir.NoReg && p.ReadsReg(d) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			if op.IsStore() && p.IsLoad() && op.Mem.MayAlias(p.Mem) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			return true
		}
		for _, p := range v.Ops {
			if !check(p) {
				return
			}
		}
		if v.CJ != nil {
			check(v.CJ)
		}
	})
	return block
}
