package ps

import (
	"repro/internal/graph"
	"repro/internal/ir"
)

// rewrite is a copy-propagation substitution: a use of from becomes a use
// of to. Valid because the copy "to -> from" on the destination path read
// register to at the destination instruction's entry — exactly where the
// moved operation will read it (paper section 2: "we simply change the
// use of B into a use of X").
type rewrite struct{ from, to ir.Reg }

// TryMoveOpUp attempts the move-op transformation of Figure 2: move op —
// which must sit at the root vertex of its node — one edge up, attaching
// it at the leaf of the unique predecessor that points at op's node. The
// commit condition of the op is exactly preserved (it still commits iff
// control would have reached its old node), so this step alone is never
// speculative; speculation happens in TryHoist.
//
// With commit false the graph is left untouched and the result reports
// whether the move would succeed. excluding, when non-nil, is treated as
// absent from the graph: the Gapless-move test (condition 4) uses it to
// ask "would X be moveable if Op had already left?".
func (c *Ctx) TryMoveOpUp(op *ir.Op, commit bool, excluding *ir.Op) Block {
	if op.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if op.IsBranch() {
		panic("ps: TryMoveOpUp on branch")
	}
	v := c.G.Where(op)
	if v == nil {
		panic("ps: unplaced op")
	}
	n := v.Node()
	if v != n.Root {
		// Under a branch inside the node: must hoist first.
		return Block{Kind: BlockStructure}
	}
	t, leaf, blk := c.predLeaf(n)
	if blk.Kind != BlockNone {
		return blk
	}

	// Dependence scan along the committed path of the target node. The
	// rewrite list lives in a stack buffer: probe calls (commit=false,
	// the Gapless-move test's canFill) must not allocate.
	var useBuf [3]ir.Reg
	uses := op.Uses(useBuf[:0])
	var rwBuf [4]rewrite
	rewrites := rwBuf[:0]
	block := blockNone
	pathOps(leaf, func(p *ir.Op) bool {
		if p == excluding || p == op {
			return true
		}
		if d := p.Def(); d != ir.NoReg {
			for i, u := range uses {
				if u != d {
					continue
				}
				if p.IsCopy() {
					// Propagate through the copy.
					uses[i] = p.Src[0]
					rewrites = append(rewrites, rewrite{from: d, to: p.Src[0]})
					continue
				}
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			if d == op.Def() {
				// Output dependence: two commits of the same register
				// on one path. Renaming can remove this.
				block = Block{Kind: BlockDep, By: p}
				return false
			}
		}
		// Memory ordering: a load may not pass an aliasing store; two
		// aliasing stores may not share a path (ambiguous commit).
		if !op.Mem.IsZero() && !p.Mem.IsZero() {
			if (op.IsLoad() && p.IsStore() || op.IsStore() && p.IsStore()) && op.Mem.MayAlias(p.Mem) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
		}
		return true
	}, nil)
	if block.Kind != BlockNone {
		return block
	}

	// Move-past-read: a reader of op's target remaining in the source
	// node would observe the new value instead of the old one (reads
	// happen at entry). Renaming can remove this. The memory analogue:
	// a store may not move above an aliasing load left behind.
	if blk := c.scanMovePastRead(n, op, excluding); blk.Kind != BlockNone {
		return blk
	}

	// Resources: every op in the tree occupies a functional unit.
	target := t.OpCount() + 1
	if excluding != nil && !excluding.IsBranch() && c.G.NodeOf(excluding) == t {
		target--
	}
	if !c.M.FitsOps(target) {
		return Block{Kind: BlockResource}
	}

	if !commit {
		return blockNone
	}
	if len(rewrites) > 0 {
		for _, rw := range rewrites {
			op.ReplaceUse(rw.from, rw.to)
		}
		c.noteRewrite(op)
	}
	c.G.MoveOp(op, leaf)
	c.Moves++
	if n.Empty() {
		if c.G.SpliceOutEmpty(n) {
			c.Splices++
		}
	}
	return blockNone
}

func (c *Ctx) scanMovePastRead(n *graph.Node, op *ir.Op, excluding *ir.Op) Block {
	d := op.Def()
	block := blockNone
	n.Walk(func(v *graph.Vertex) {
		if block.Kind != BlockNone {
			return
		}
		check := func(p *ir.Op) bool {
			if p == op || p == excluding {
				return true
			}
			if d != ir.NoReg && p.ReadsReg(d) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			if op.IsStore() && p.IsLoad() && op.Mem.MayAlias(p.Mem) {
				block = Block{Kind: BlockDep, By: p}
				return false
			}
			return true
		}
		for _, p := range v.Ops {
			if !check(p) {
				return
			}
		}
		if v.CJ != nil {
			check(v.CJ)
		}
	})
	return block
}
