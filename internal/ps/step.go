package ps

// StepUp advances op one step toward the program entry: a hoist when the
// op sits under a branch inside its instruction, otherwise a move into
// the predecessor instruction (move-op for ordinary operations, move-cj
// for conditional jumps). This is the primitive the migrate function of
// Figures 4 and 12 iterates.
import "repro/internal/ir"

// StepUp performs one upward step of op, committing the change. It
// returns BlockNone on success.
func (c *Ctx) StepUp(op *ir.Op) Block {
	if op.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if op.IsBranch() {
		return c.TryMoveCJUp(op, true)
	}
	v := c.G.Where(op)
	if v != v.Node().Root {
		return c.TryHoist(op, true)
	}
	return c.TryMoveOpUp(op, true, nil)
}

// CanStepUp reports whether StepUp would succeed, without mutating the
// graph.
func (c *Ctx) CanStepUp(op *ir.Op) Block {
	if op.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if op.IsBranch() {
		return c.TryMoveCJUp(op, false)
	}
	v := c.G.Where(op)
	if v != v.Node().Root {
		return c.TryHoist(op, false)
	}
	return c.TryMoveOpUp(op, false, nil)
}
