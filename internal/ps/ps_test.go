package ps

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sim"
)

// fixture bundles a test graph with its allocator and context.
type fixture struct {
	al *ir.Alloc
	g  *graph.Graph
	c  *Ctx
}

func newFixture(fus int) *fixture {
	al := ir.NewAlloc()
	g := graph.New(al)
	return &fixture{al: al, g: g, c: NewCtx(g, machine.New(fus), nil)}
}

func (f *fixture) constOp(dst ir.Reg, v int64) *ir.Op {
	return &ir.Op{ID: f.al.OpID(), Kind: ir.Const, Dst: dst, Imm: v}
}

func (f *fixture) addI(dst, src ir.Reg, v int64) *ir.Op {
	return &ir.Op{ID: f.al.OpID(), Kind: ir.Add, Dst: dst, Src: [2]ir.Reg{src}, Imm: v, BImm: true}
}

// check validates the graph and compares simulated execution against a
// reference result for the given initial states.
func (f *fixture) check(t *testing.T, ref map[string]*sim.Result, inits map[string]*sim.State, regs []ir.Reg) {
	t.Helper()
	if err := f.g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for name, init := range inits {
		res, err := sim.Run(f.g, init, 10000)
		if err != nil {
			t.Fatalf("%s: sim: %v", name, err)
		}
		if err := sim.Equivalent(ref[name].State, res.State, regs); err != nil {
			t.Fatalf("%s: semantics changed: %v", name, err)
		}
	}
}

func snapshot(t *testing.T, g *graph.Graph, inits map[string]*sim.State) map[string]*sim.Result {
	t.Helper()
	out := map[string]*sim.Result{}
	for name, init := range inits {
		res, err := sim.Run(g, init, 10000)
		if err != nil {
			t.Fatalf("%s: reference sim: %v", name, err)
		}
		out[name] = res
	}
	return out
}

func TestMoveOpUpAndSplice(t *testing.T) {
	f := newFixture(2)
	r1, r2, r3 := f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("r3")
	a := f.constOp(r1, 1)
	b := f.addI(r2, r1, 1)
	c := f.constOp(r3, 7)
	n1 := graph.AppendOp(f.g, nil, a)
	n2 := graph.AppendOp(f.g, n1, b)
	graph.AppendOp(f.g, n2, c)

	inits := map[string]*sim.State{"zero": sim.NewState()}
	ref := snapshot(t, f.g, inits)

	if blk := f.c.StepUp(c); blk.Kind != BlockNone {
		t.Fatalf("move c into n2: %v", blk.Kind)
	}
	if f.g.NodeOf(c) != n2 {
		t.Fatal("c not in n2")
	}
	if f.g.NumNodes() != 2 {
		t.Fatalf("emptied node not spliced: %d nodes", f.g.NumNodes())
	}
	f.check(t, ref, inits, []ir.Reg{r1, r2, r3})

	// c can go one more step: n1 has one op, capacity 2.
	if blk := f.c.StepUp(c); blk.Kind != BlockNone {
		t.Fatalf("move c into n1: %v", blk.Kind)
	}
	if f.g.NodeOf(c) != n1 {
		t.Fatal("c not in n1")
	}
	f.check(t, ref, inits, []ir.Reg{r1, r2, r3})

	// b is truly dependent on a: blocked, with a identified.
	blk := f.c.StepUp(b)
	if blk.Kind != BlockDep || blk.By != a {
		t.Fatalf("b move: kind=%v by=%v, want dep on a", blk.Kind, blk.By)
	}

	// a is at the entry: structural block.
	if blk := f.c.StepUp(a); blk.Kind != BlockStructure {
		t.Fatalf("a move: %v, want structure", blk.Kind)
	}
	// Only n3 emptied (n2 still holds b after c left).
	if f.c.Moves != 2 || f.c.Splices != 1 {
		t.Fatalf("stats: moves=%d splices=%d", f.c.Moves, f.c.Splices)
	}
}

func TestMoveOpResourceBlock(t *testing.T) {
	f := newFixture(1)
	r1, r2, r3 := f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("r3")
	n1 := graph.AppendOp(f.g, nil, f.constOp(r1, 1))
	n2 := graph.AppendOp(f.g, n1, f.constOp(r2, 2))
	c := f.constOp(r3, 3)
	graph.AppendOp(f.g, n2, c)

	if blk := f.c.StepUp(c); blk.Kind != BlockResource {
		t.Fatalf("expected resource block, got %v", blk.Kind)
	}
	// CanStepUp agrees and does not mutate.
	v := f.g.Version()
	if blk := f.c.CanStepUp(c); blk.Kind != BlockResource {
		t.Fatalf("CanStepUp: %v", blk.Kind)
	}
	if f.g.Version() != v {
		t.Fatal("CanStepUp mutated the graph")
	}
}

func TestMoveOpCopyPropagation(t *testing.T) {
	f := newFixture(4)
	r1, r2, r4 := f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("r4")
	a := f.constOp(r1, 5)
	cp := &ir.Op{ID: f.al.OpID(), Kind: ir.Copy, Dst: r2, Src: [2]ir.Reg{r1}}
	use := f.addI(r4, r2, 1)
	n1 := graph.AppendOp(f.g, nil, a)
	n2 := graph.AppendOp(f.g, n1, cp)
	graph.AppendOp(f.g, n2, use)

	inits := map[string]*sim.State{"zero": sim.NewState()}
	ref := snapshot(t, f.g, inits)

	// use depends on the copy: the move must propagate r2 -> r1.
	if blk := f.c.StepUp(use); blk.Kind != BlockNone {
		t.Fatalf("copy-prop move failed: %v", blk.Kind)
	}
	if use.Src[0] != r1 {
		t.Fatalf("use reads r%d, want r%d after propagation", use.Src[0], r1)
	}
	f.check(t, ref, inits, []ir.Reg{r1, r2, r4})

	// Next step hits the true producer.
	if blk := f.c.StepUp(use); blk.Kind != BlockDep || blk.By != a {
		t.Fatalf("expected dep on a, got %v", blk.Kind)
	}
}

func TestMoveOpMemoryDeps(t *testing.T) {
	f := newFixture(4)
	r1, r2 := f.al.Reg("r1"), f.al.Reg("r2")
	arr := f.al.Array("X")
	st := &ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 0}}
	ld := &ir.Op{ID: f.al.OpID(), Kind: ir.Load, Dst: r2, Mem: ir.MemRef{Array: arr, Index: 0}}
	n1 := graph.AppendOp(f.g, nil, st)
	graph.AppendOp(f.g, n1, ld)

	// Load may not pass the aliasing store.
	if blk := f.c.StepUp(ld); blk.Kind != BlockDep || blk.By != st {
		t.Fatalf("load past store: %v", blk.Kind)
	}

	// A load from a different cell moves freely.
	f2 := newFixture(4)
	r1b, r2b := f2.al.Reg("r1"), f2.al.Reg("r2")
	arrb := f2.al.Array("X")
	stb := &ir.Op{ID: f2.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1b}, Mem: ir.MemRef{Array: arrb, Index: 0}}
	ldb := &ir.Op{ID: f2.al.OpID(), Kind: ir.Load, Dst: r2b, Mem: ir.MemRef{Array: arrb, Index: 1}}
	m1 := graph.AppendOp(f2.g, nil, stb)
	graph.AppendOp(f2.g, m1, ldb)
	if blk := f2.c.StepUp(ldb); blk.Kind != BlockNone {
		t.Fatalf("independent load blocked: %v", blk.Kind)
	}

	// Store may not join a path holding an aliasing store.
	f3 := newFixture(4)
	r := f3.al.Reg("r")
	arrc := f3.al.Array("X")
	stc1 := &ir.Op{ID: f3.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r}, Mem: ir.MemRef{Array: arrc, Index: 2}}
	stc2 := &ir.Op{ID: f3.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r}, Mem: ir.MemRef{Array: arrc, Index: 2}}
	k1 := graph.AppendOp(f3.g, nil, stc1)
	graph.AppendOp(f3.g, k1, stc2)
	if blk := f3.c.StepUp(stc2); blk.Kind != BlockDep {
		t.Fatalf("store past aliasing store: %v", blk.Kind)
	}
}

func TestMoveOpRenamed(t *testing.T) {
	f := newFixture(4)
	r1, r2 := f.al.Reg("r1"), f.al.Reg("r2")
	a := f.constOp(r1, 1)
	redef := f.constOp(r1, 2) // output dependence on a
	use := f.addI(r2, r1, 10)
	n1 := graph.AppendOp(f.g, nil, a)
	n2 := graph.AppendOp(f.g, n1, redef)
	graph.AppendOp(f.g, n2, use)

	inits := map[string]*sim.State{"zero": sim.NewState()}
	ref := snapshot(t, f.g, inits)

	// Plain move fails on the output dependence.
	if blk := f.c.TryMoveOpUp(redef, true, nil); blk.Kind != BlockDep {
		t.Fatalf("expected output-dep block, got %v", blk.Kind)
	}
	// Renamed move succeeds and leaves a compensation copy behind.
	if blk := f.c.TryMoveOpUpRenamed(redef); blk.Kind != BlockNone {
		t.Fatalf("renamed move failed: %v", blk.Kind)
	}
	if f.c.Renames != 1 {
		t.Fatalf("renames = %d", f.c.Renames)
	}
	if f.g.NodeOf(redef) != n1 {
		t.Fatal("renamed op did not move")
	}
	f.check(t, ref, inits, []ir.Reg{r1, r2})
}

func TestHoistLegality(t *testing.T) {
	f := newFixture(8)
	f.c.ExitLive = map[ir.Reg]bool{}
	r1, r2, r3 := f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("r3")
	arr := f.al.Array("X")

	// n1 -> br(cj r1<10; true -> n2, false -> exitNode)
	exitOp := f.addI(r3, r1, 0)
	exitNode := graph.AppendOp(f.g, nil, exitOp) // temporarily entry
	f.g.Entry = nil                              // rebuild entry properly
	// Rebuild: we cannot unset entry this way; start over cleanly.
	f = newFixture(8)
	r1, r2, r3 = f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("r3")
	arr = f.al.Array("X")

	exitNode = f.g.NewNode()
	exitOp = f.addI(r3, r2, 0) // exit path READS r2
	f.g.AddOp(exitOp, exitNode.Root)

	a := f.constOp(r1, 1)
	n1 := graph.AppendOp(f.g, nil, a)
	cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 10, BImm: true, Rel: ir.Lt}
	nbr := graph.AppendBranch(f.g, n1, cj, exitNode)
	clobber := f.constOp(r2, 99)
	n3 := graph.AppendOp(f.g, nbr, clobber)
	st := &ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 0}}
	graph.AppendOp(f.g, n3, st)
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}

	// Move clobber into the branch node's continue leaf: exact, legal.
	if blk := f.c.StepUp(clobber); blk.Kind != BlockNone {
		t.Fatalf("move into continue leaf: %v", blk.Kind)
	}
	if f.g.NodeOf(clobber) != nbr {
		t.Fatal("clobber not in branch node")
	}
	// Hoisting it above the cj would clobber r2, which the exit path
	// reads: write-live block.
	if blk := f.c.StepUp(clobber); blk.Kind != BlockDep {
		t.Fatalf("write-live hoist: %v", blk.Kind)
	}

	// The store reaches the continue leaf but never hoists.
	if blk := f.c.StepUp(st); blk.Kind != BlockNone {
		t.Fatalf("store into continue leaf: %v", blk.Kind)
	}
	if blk := f.c.StepUp(st); blk.Kind != BlockDep || blk.By != cj {
		t.Fatalf("store hoist: kind=%v by=%v, want dep on cj", blk.Kind, blk.By)
	}
}

func TestHoistOKAndSemantics(t *testing.T) {
	f := newFixture(8)
	r1, r2 := f.al.Reg("r1"), f.al.Reg("r2")
	arr := f.al.Array("X")

	exitNode := f.g.NewNode()
	f.g.AddOp(&ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 1}}, exitNode.Root)

	n1 := graph.AppendOp(f.g, nil, f.constOp(r1, 1))
	cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r2}, Imm: 10, BImm: true, Rel: ir.Lt}
	nbr := graph.AppendBranch(f.g, n1, cj, exitNode)
	spec := f.addI(r1, r2, 5) // r1 dead on exit path? exit STORES r1 -> live!
	n3 := graph.AppendOp(f.g, nbr, spec)
	st2 := &ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 0}}
	graph.AppendOp(f.g, n3, st2)

	inits := map[string]*sim.State{
		"cont": sim.NewState(),
		"exit": func() *sim.State { s := sim.NewState(); s.SetReg(r2, 50); return s }(),
	}
	ref := snapshot(t, f.g, inits)

	if blk := f.c.StepUp(spec); blk.Kind != BlockNone {
		t.Fatalf("move spec into continue leaf: %v", blk.Kind)
	}
	// r1 is read by the exit-path store: hoist must be blocked.
	if blk := f.c.StepUp(spec); blk.Kind != BlockDep {
		t.Fatalf("hoist of live-on-exit def: %v", blk.Kind)
	}
	f.check(t, ref, inits, []ir.Reg{r1})

	// Retarget the op to a fresh register (dead on exit): hoist now legal.
	f2 := newFixture(8)
	r1b, r2b, r9 := f2.al.Reg("r1"), f2.al.Reg("r2"), f2.al.Reg("r9")
	arrb := f2.al.Array("X")
	exitNodeB := f2.g.NewNode()
	f2.g.AddOp(&ir.Op{ID: f2.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1b}, Mem: ir.MemRef{Array: arrb, Index: 1}}, exitNodeB.Root)
	m1 := graph.AppendOp(f2.g, nil, f2.constOp(r1b, 1))
	cjb := &ir.Op{ID: f2.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r2b}, Imm: 10, BImm: true, Rel: ir.Lt}
	mbr := graph.AppendBranch(f2.g, m1, cjb, exitNodeB)
	specb := f2.addI(r9, r2b, 5)
	m3 := graph.AppendOp(f2.g, mbr, specb)
	stb := &ir.Op{ID: f2.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r9}, Mem: ir.MemRef{Array: arrb, Index: 0}}
	graph.AppendOp(f2.g, m3, stb)

	initsb := map[string]*sim.State{
		"cont": sim.NewState(),
		"exit": func() *sim.State { s := sim.NewState(); s.SetReg(r2b, 50); return s }(),
	}
	refb := snapshot(t, f2.g, initsb)
	if blk := f2.c.StepUp(specb); blk.Kind != BlockNone {
		t.Fatalf("move: %v", blk.Kind)
	}
	if blk := f2.c.StepUp(specb); blk.Kind != BlockNone {
		t.Fatalf("hoist: %v", blk.Kind)
	}
	if f2.g.Where(specb) != mbr.Root {
		t.Fatal("spec op should now sit at the branch node's root (speculated)")
	}
	// r9 is dead on the exit path, so only memory is observable: the
	// speculated op legitimately commits a value the original never
	// wrote there.
	f2.check(t, refb, initsb, nil)
	if f2.c.Hoists != 1 {
		t.Fatalf("hoists = %d", f2.c.Hoists)
	}
}

func TestMoveCJSplitsNode(t *testing.T) {
	f := newFixture(8)
	r1, r2 := f.al.Reg("r1"), f.al.Reg("r2")
	arr := f.al.Array("X")

	exitNode := f.g.NewNode()
	f.g.AddOp(&ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 9}}, exitNode.Root)

	a := f.constOp(r1, 3)
	n1 := graph.AppendOp(f.g, nil, a)
	cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r2}, Imm: 10, BImm: true, Rel: ir.Lt}
	nbr := graph.AppendBranch(f.g, n1, cj, exitNode)
	body := &ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 0}}
	graph.AppendOp(f.g, nbr, body)

	inits := map[string]*sim.State{
		"cont": sim.NewState(),
		"exit": func() *sim.State { s := sim.NewState(); s.SetReg(r2, 99); return s }(),
	}
	ref := snapshot(t, f.g, inits)

	// First give the branch node an op: move the body store into the
	// continue leaf of nbr, so the cj's node has root ops when... the
	// store sits at the leaf, not the root. Move the cj up: its node's
	// root has no ops, subtrees are leaves.
	if blk := f.c.StepUp(body); blk.Kind != BlockNone {
		t.Fatalf("move body: %v", blk.Kind)
	}
	if blk := f.c.StepUp(cj); blk.Kind != BlockNone {
		t.Fatalf("move cj: %v", blk.Kind)
	}
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The cj now lives in n1; the store (true-leaf op) went to the
	// continue-side node; the false side points at the exit node.
	if f.g.NodeOf(cj) != n1 {
		t.Fatal("cj did not reach n1")
	}
	f.check(t, ref, inits, []ir.Reg{r1})
	if f.c.CJMoves != 1 {
		t.Fatalf("cjmoves = %d", f.c.CJMoves)
	}
}

func TestMoveCJClonesRootOpsToDrain(t *testing.T) {
	f := newFixture(8)
	r1, r2 := f.al.Reg("r1"), f.al.Reg("r2")
	arr := f.al.Array("X")

	a := f.constOp(r1, 3)
	n1 := graph.AppendOp(f.g, nil, a)
	cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r2}, Imm: 10, BImm: true, Rel: ir.Lt}
	nbr := graph.AppendBranch(f.g, n1, cj, nil)
	body := &ir.Op{ID: f.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 0}}
	n3 := graph.AppendOp(f.g, nbr, body)
	graph.AppendEmpty(f.g, n3)

	// Put the store at nbr's ROOT: move to leaf then hoist is illegal
	// (stores don't speculate) — instead test with an arithmetic op.
	f2 := newFixture(8)
	r1b, r2b, r3b := f2.al.Reg("r1"), f2.al.Reg("r2"), f2.al.Reg("r3")
	arrb := f2.al.Array("X")
	ab := f2.constOp(r1b, 3)
	m1 := graph.AppendOp(f2.g, nil, ab)
	cjb := &ir.Op{ID: f2.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r2b}, Imm: 10, BImm: true, Rel: ir.Lt}
	mbr := graph.AppendBranch(f2.g, m1, cjb, nil)
	add := f2.addI(r3b, r1b, 4)
	m3 := graph.AppendOp(f2.g, mbr, add)
	stb := &ir.Op{ID: f2.al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r3b}, Mem: ir.MemRef{Array: arrb, Index: 0}}
	graph.AppendOp(f2.g, m3, stb)

	inits := map[string]*sim.State{
		"cont": sim.NewState(),
		"exit": func() *sim.State { s := sim.NewState(); s.SetReg(r2b, 99); return s }(),
	}
	ref := snapshot(t, f2.g, inits)

	// add -> continue leaf of mbr, then hoist to mbr's root.
	if blk := f2.c.StepUp(add); blk.Kind != BlockNone {
		t.Fatalf("move add: %v", blk.Kind)
	}
	if blk := f2.c.StepUp(add); blk.Kind != BlockNone {
		t.Fatalf("hoist add: %v", blk.Kind)
	}
	// Now move the cj up: mbr's root ops {add} must be duplicated onto
	// the drain side.
	if blk := f2.c.TryMoveCJUp(cjb, true); blk.Kind != BlockNone {
		t.Fatalf("move cj: %v", blk.Kind)
	}
	if err := f2.g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Find the drain node: successor of m1 on the false side.
	var drain *graph.Node
	for _, s := range m1.Successors() {
		if s.Drain {
			drain = s
		}
	}
	if drain == nil {
		t.Fatal("no drain node created")
	}
	dOps := drain.Ops()
	if len(dOps) != 1 || !dOps[0].Frozen || dOps[0].Origin != add.Origin {
		t.Fatalf("drain clone wrong: %v", dOps)
	}
	// r3b was speculated above the branch; it is dead on exit, so only
	// memory is compared.
	f2.check(t, ref, inits, nil)
	_ = n3
	_ = body
}

func TestMoveCJBranchSlotLimit(t *testing.T) {
	f := newFixture(8) // 1 branch slot
	r1 := f.al.Reg("r1")
	cj1 := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 10, BImm: true, Rel: ir.Lt}
	cj2 := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 20, BImm: true, Rel: ir.Lt}
	n1 := graph.AppendBranch(f.g, nil, cj1, nil)
	n2 := graph.AppendBranch(f.g, n1, cj2, nil)
	graph.AppendEmpty(f.g, n2)

	if blk := f.c.TryMoveCJUp(cj2, true); blk.Kind != BlockResource {
		t.Fatalf("expected branch-slot block, got %v", blk.Kind)
	}

	// With two branch slots the move succeeds and nests the jumps.
	f.c.M = machine.New(8).WithBranchSlots(2)
	if blk := f.c.TryMoveCJUp(cj2, true); blk.Kind != BlockNone {
		t.Fatalf("nested cj move failed: %v", blk.Kind)
	}
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	if n1.BranchCount() != 2 {
		t.Fatalf("branch count = %d, want 2", n1.BranchCount())
	}
	// The nested jump is now pinned by the outer one.
	if blk := f.c.TryMoveCJUp(cj2, true); blk.Kind != BlockDep || blk.By != cj1 {
		t.Fatalf("nested cj should be pinned by cj1, got %v", blk.Kind)
	}
}
