package ps

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
)

// TryHoist attempts to move op one vertex up inside its instruction
// tree, past the conditional jump at the parent vertex. This is
// speculation: afterwards the op's result commits even when the branch
// takes the other side. It is legal when
//
//   - the op is not a store (stores are irreversible; the paper's GRiP
//     "always allows speculative scheduling" of recoverable operations,
//     and loads, arithmetic and division are all recoverable here —
//     division by zero is defined as 0 by the simulator);
//   - no operation on the sibling subtree defines the same register
//     (double commit on one path); and
//   - the op's target register is dead along the sibling side: nothing
//     reachable through the sibling's leaves reads it before a kill, and
//     it is not observable at program exit. (Write-live condition.)
func (c *Ctx) TryHoist(op *ir.Op, commit bool) Block {
	if op.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if op.IsBranch() {
		panic("ps: TryHoist on branch")
	}
	v := c.G.Where(op)
	if v == nil {
		panic("ps: unplaced op")
	}
	n := v.Node()
	if v == n.Root {
		return Block{Kind: BlockStructure}
	}
	parent := v.Parent()
	if op.IsStore() {
		return Block{Kind: BlockDep, By: parent.CJ}
	}
	d := op.Def()
	sib := v.Sibling()

	// Double definition on a newly shared path: the sibling subtree or
	// the root path above the parent already commits d. The sibling walk
	// is filtered by its subtree def summary — exact here, since op
	// itself never sits under the sibling: a miss proves no definition,
	// a hit guarantees findDef identifies the blocker.
	if d != ir.NoReg && sib.SubtreeDefines(d) {
		if blk := findDef(sib, d, op); blk.Kind != BlockNone {
			return blk
		}
	} else if c.CrossCheck {
		if blk := findDef(sib, d, op); blk.Kind != BlockNone {
			panic(fmt.Sprintf("ps: summary filter missed a sibling definition of r%d hoisting %v", d, op))
		}
	}
	// The root path above the parent: one O(1) path-prefix probe replaces
	// the whole ancestor walk. Exact here — op sits at v, below parent,
	// so it contributes nothing to parent's prefix: a miss proves no
	// ancestor op defines d; a hit resolves the blocker directly through
	// the def-site index of the one ancestor whose own tier holds d.
	if d != ir.NoReg && parent.PathDefines(d) {
		for a := parent; a != nil; a = a.Parent() {
			if !a.DefinesHere(d) {
				continue
			}
			if p, _ := a.DefSiteHere(d); p != nil && p != op {
				return Block{Kind: BlockDep, By: p}
			}
		}
	} else if c.CrossCheck && d != ir.NoReg {
		for a := parent; a != nil; a = a.Parent() {
			for _, p := range a.Ops {
				if p != op && p.Def() == d {
					panic(fmt.Sprintf("ps: path-prefix filter missed an ancestor definition of r%d hoisting %v", d, op))
				}
			}
		}
	}

	// Write-live on the sibling side.
	if deps.LiveOnSubtree(c.G, sib, d, c.ExitLive) {
		if c.CrossCheck && !deps.LiveOnSubtreeReference(c.G, sib, d, c.ExitLive) {
			panic(fmt.Sprintf("ps: summary liveness diverged (live) for r%d hoisting %v", d, op))
		}
		return Block{Kind: BlockDep}
	}
	if c.CrossCheck && deps.LiveOnSubtreeReference(c.G, sib, d, c.ExitLive) {
		panic(fmt.Sprintf("ps: summary liveness diverged (dead) for r%d hoisting %v", d, op))
	}

	if !commit {
		return blockNone
	}
	c.G.HoistOp(op)
	c.Hoists++
	return blockNone
}

func findDef(v *graph.Vertex, d ir.Reg, except *ir.Op) Block {
	if d == ir.NoReg {
		return blockNone
	}
	for _, p := range v.Ops {
		if p != except && p.Def() == d {
			return Block{Kind: BlockDep, By: p}
		}
	}
	if v.IsLeaf() {
		return blockNone
	}
	if blk := findDef(v.True, d, except); blk.Kind != BlockNone {
		return blk
	}
	return findDef(v.False, d, except)
}

// HoistToRoot hoists op repeatedly until it reaches the root vertex of
// its node or a hoist is blocked. It returns the first block, or
// BlockNone when the op reached the root.
func (c *Ctx) HoistToRoot(op *ir.Op) Block {
	for {
		v := c.G.Where(op)
		if v == v.Node().Root {
			return blockNone
		}
		if blk := c.TryHoist(op, true); blk.Kind != BlockNone {
			return blk
		}
	}
}
