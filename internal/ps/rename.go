package ps

import (
	"repro/internal/ir"
)

// TryMoveOpUpRenamed attempts move-op and, when it fails only because of
// an output dependence or a move-past-read/write-live conflict on the
// op's target register, applies the paper's renaming transformation: the
// op is retargeted to a fresh register R and a compensation copy
// "old <- R" is left at the op's original vertex (so every old reader
// still sees the value at the old time), after which the move is retried.
//
// The compensation copy occupies a functional unit in the source node —
// renaming is not free, exactly as in the paper — so the source node
// must have a free slot.
func (c *Ctx) TryMoveOpUpRenamed(op *ir.Op) Block {
	blk := c.TryMoveOpUp(op, true, nil)
	if blk.Kind == BlockNone {
		return blk
	}
	if blk.Kind != BlockDep || blk.By == nil {
		return blk
	}
	d := op.Def()
	if d == ir.NoReg {
		return blk
	}
	// Renaming helps only when the conflict is about op's destination:
	// the blocker reads d (move-past-read) or writes d (output dep).
	if !blk.By.ReadsReg(d) && blk.By.Def() != d {
		return blk
	}

	v := c.G.Where(op)
	n := v.Node()
	if !c.M.FitsOps(n.OpCount() + 1) {
		return Block{Kind: BlockResource}
	}

	r := c.G.Alloc.Reg("ren")
	compensation := &ir.Op{
		ID:     c.G.Alloc.OpID(),
		Origin: op.Origin,
		Iter:   op.Iter,
		Index:  ir.NoIndex,
		Kind:   ir.Copy,
		Dst:    d,
		Src:    [2]ir.Reg{r},
	}
	// Retarget through the graph so the def/use summaries see the new
	// destination (a bare op.Dst assignment on a placed op is now a
	// summary-desync bug that Validate catches).
	c.G.RetargetDef(op, r)
	// The retarget invalidates op's rows in any precomputed dependence
	// matrix; the mark stays even if the move below is reverted
	// (conservative, never stale).
	c.noteRewrite(op)
	c.G.AddOp(compensation, v)
	c.Renames++

	// The compensation copy deliberately reads the renamed register at
	// the old commit point, so it is excluded from the move-past-read
	// scan.
	if blk := c.TryMoveOpUp(op, true, compensation); blk.Kind == BlockNone {
		return blk
	}
	// Still blocked (a source dependence or full target): revert.
	c.G.RemoveOp(compensation)
	c.G.RetargetDef(op, d)
	c.Renames--
	return blk
}
