package ps

import (
	"repro/internal/graph"
	"repro/internal/ir"
)

// TryMoveCJUp attempts the move-cj transformation of Figure 3: the
// conditional jump at the root vertex of its node moves one edge up into
// the unique predecessor, and the node splits into a continue-side node
// and an exit-side drain node, each receiving the old root's operations
// (the drain gets frozen clones — these form Perfect Pipelining's
// pre/post-loop code and are never rescheduled).
//
// The split preserves semantics: the root ops used to commit on both
// branch outcomes, and afterwards they still commit on both outcomes,
// one node later than the (now earlier) branch decision.
func (c *Ctx) TryMoveCJUp(cj *ir.Op, commit bool) Block {
	if cj.Frozen {
		return Block{Kind: BlockFrozen}
	}
	if !cj.IsBranch() {
		panic("ps: TryMoveCJUp on non-branch")
	}
	v := c.G.Where(cj)
	if v == nil {
		panic("ps: unplaced branch")
	}
	n := v.Node()
	if v != n.Root {
		// Nested under an earlier branch in the same instruction:
		// branch order is fixed, so this jump is blocked by it.
		return Block{Kind: BlockDep, By: enclosingCJ(v)}
	}
	t, leaf, blk := c.predLeaf(n)
	if blk.Kind != BlockNone {
		return blk
	}

	if !c.M.FitsBranches(t.BranchCount() + 1) {
		return Block{Kind: BlockResource}
	}

	// Dependence scan: the jump's condition registers must not be
	// produced on the target path (modulo copy propagation). A branch
	// has no destination and no memory reference, so the shared
	// committed-path scan reduces to exactly this check, and the same
	// summary filter applies: when the target tree defines none of the
	// condition registers the walk is skipped. Stack-buffer bounds as in
	// TryMoveOpUp: ≤2 condition registers (TestOpUsesBufferBound), 8
	// copy-propagation hops before the rewrite list falls back to heap
	// growth (TestRewriteBufferOverflowsCorrectly).
	var useBuf [3]ir.Reg
	uses := cj.UsesView(useBuf[:0])
	var rwBuf [8]rewrite
	rewrites := rwBuf[:0]
	if mask := pathScanNeeded(leaf, cj, uses); mask != 0 {
		var block Block
		block, uses, rewrites = c.resolvePath(leaf, cj, nil, uses, useBuf[:0], rewrites, mask)
		if block.Kind != BlockNone {
			return block
		}
	} else if c.CrossCheck {
		c.crossCheckPathMiss(leaf, cj, nil)
	}

	if !commit {
		return blockNone
	}
	if len(rewrites) > 0 {
		for _, rw := range rewrites {
			c.G.ReplaceUse(cj, rw.from, rw.to)
		}
		c.noteRewrite(cj)
	}

	// Detach the incoming edge, dissolve the node, and rebuild the two
	// sides. The continue-side node inherits the old node's chain
	// position.
	oldPos := n.Pos()
	c.G.RetargetLeaf(leaf, nil)
	cjOp, rootOps, tSub, fSub := c.G.DetachBranchRoot(n)

	tn := c.G.NewNode()
	c.G.SetPos(tn, oldPos)
	c.G.AdoptSubtree(tn, tSub)
	for _, o := range rootOps {
		c.G.AddOp(o, tSub)
	}

	fn := c.G.NewNode()
	fn.Drain = true
	c.G.SetPos(fn, oldPos)
	c.G.AdoptSubtree(fn, fSub)
	for _, o := range rootOps {
		c.G.AddOp(o.Clone(c.G.Alloc.OpID(), true), fSub)
	}

	c.G.InsertBranchAtLeaf(leaf, cjOp, tn, fn)
	if tn.Empty() {
		c.G.SpliceOutEmpty(tn)
	}
	if fn.Empty() {
		c.G.SpliceOutEmpty(fn)
	}
	c.CJMoves++
	return blockNone
}

// enclosingCJ returns the conditional jump at the nearest ancestor
// branch vertex — the branch that pins a nested jump in place.
func enclosingCJ(v *graph.Vertex) *ir.Op {
	for p := v.Parent(); p != nil; p = p.Parent() {
		if p.CJ != nil {
			return p.CJ
		}
	}
	return nil
}
