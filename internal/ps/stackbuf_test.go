package ps

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// The move machinery keeps three fixed-size stack buffers whose bounds
// are invariants, not guesses. These tests pin each one: within the
// documented bound the paths are allocation-free; beyond it (possible
// only in configurations the paper's machines never reach, e.g.
// unlimited branch slots) the code must fall back to correct heap
// growth rather than silently truncating.

// Every operation kind reads at most 2 registers (binary arithmetic
// and CJ: two sources; store: value + index register; load: index
// register; copy: one source). TryMoveOpUp's [3]ir.Reg use buffer
// therefore never grows; this test is the tripwire for anyone widening
// the IR.
func TestOpUsesBufferBound(t *testing.T) {
	al := ir.NewAlloc()
	r1, r2, r3 := al.Reg("r1"), al.Reg("r2"), al.Reg("r3")
	arr := al.Array("A")
	worst := []*ir.Op{
		{ID: al.OpID(), Kind: ir.Add, Dst: r3, Src: [2]ir.Reg{r1, r2}},
		{ID: al.OpID(), Kind: ir.Store, Src: [2]ir.Reg{r1}, Mem: ir.MemRef{Array: arr, Index: 1, IndexReg: r2}},
		{ID: al.OpID(), Kind: ir.Load, Dst: r3, Mem: ir.MemRef{Array: arr, IndexReg: r1}},
		{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1, r2}, Rel: ir.Lt},
		{ID: al.OpID(), Kind: ir.Copy, Dst: r3, Src: [2]ir.Reg{r1}},
	}
	var buf [3]ir.Reg
	for _, op := range worst {
		if n := len(op.Uses(buf[:0])); n > 2 {
			t.Errorf("%v reads %d registers; the [3]ir.Reg stack buffers assume at most 2", op, n)
		}
	}
}

// pathOps collects the root→leaf chain into an [8]*graph.Vertex stack
// buffer. Instruction trees are depth-bounded by the machine's branch
// slots under every paper configuration, but machine.WithBranchSlots
// accepts Unlimited — so a deeper tree must overflow into a correct
// (heap-growing) append, never drop vertices. This drives a 12-deep
// committed path and checks every op is visited in root→leaf order.
func TestPathOpsDeepTreeOverflowsCorrectly(t *testing.T) {
	f := newFixture(64)
	const depth = 12
	exit := f.g.NewNode()
	f.g.AddOp(f.constOp(f.al.Reg(""), 0), exit.Root)

	n := f.g.NewNode()
	f.g.Entry = n
	var want []*ir.Op
	leaf := n.Root
	for i := 0; i < depth; i++ {
		op := f.constOp(f.al.Reg(""), int64(i))
		f.g.AddOp(op, leaf)
		want = append(want, op)
		cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{f.al.Reg("")}, Imm: 1, BImm: true, Rel: ir.Lt}
		tl, fl := f.g.InsertBranchAtLeaf(leaf, cj, nil, exit)
		want = append(want, cj)
		_ = fl
		leaf = tl
	}
	last := f.constOp(f.al.Reg(""), depth)
	f.g.AddOp(last, leaf)
	want = append(want, last)
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}

	var got []*ir.Op
	pathOps(leaf,
		func(op *ir.Op) bool { got = append(got, op); return true },
		func(cj *ir.Op) bool { got = append(got, cj); return true })
	if len(got) != len(want) {
		t.Fatalf("pathOps visited %d ops on a depth-%d path, want %d", len(got), depth, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pathOps order diverges at %d: got %v, want %v", i, got[i], want[i])
		}
	}

	// At or below the 8-vertex bound the walk must stay allocation-free
	// (the probe paths sit on this).
	shallow := f.g.NodeOf(want[0])
	shallowLeaf := shallow.Root
	for i := 0; i < 7 && !shallowLeaf.IsLeaf(); i++ {
		shallowLeaf = shallowLeaf.True
	}
	if a := testing.AllocsPerRun(100, func() {
		pathOps(shallowLeaf, func(*ir.Op) bool { return true }, nil)
	}); a != 0 {
		t.Errorf("pathOps allocates %v/op within the 8-vertex bound, want 0", a)
	}
}

// The rewrite buffer starts at [8]rewrite. Two registers can each be
// propagated through several copies along one committed path, so the
// bound is soft: a longer copy chain must overflow into heap growth
// with every rewrite retained, not drop substitutions. This drives one
// use through a 9-copy chain and checks all 9 substitutions arrive in
// order.
func TestRewriteBufferOverflowsCorrectly(t *testing.T) {
	f := newFixture(64)
	const chain = 9
	regs := make([]ir.Reg, chain+1)
	for i := range regs {
		regs[i] = f.al.Reg("")
	}
	// Root vertex holds, in scan order, copies r9<-r8, r8<-r7, ... r1<-r0.
	var n *graph.Node
	for i := chain; i >= 1; i-- {
		cp := &ir.Op{ID: f.al.OpID(), Kind: ir.Copy, Dst: regs[i], Src: [2]ir.Reg{regs[i-1]}}
		if n == nil {
			n = graph.AppendOp(f.g, nil, cp)
		} else {
			f.g.AddOp(cp, n.Root)
		}
	}
	mover := f.addI(f.al.Reg("m"), regs[chain], 1)
	graph.AppendOp(f.g, n, mover)
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}

	var useBuf [3]ir.Reg
	uses := mover.Uses(useBuf[:0])
	var rwBuf [8]rewrite
	block, uses, rewrites := scanCommittedPath(n.Root, mover, nil, uses, rwBuf[:0])
	if block.Kind != BlockNone {
		t.Fatalf("copy chain blocked the scan: %v", block.Kind)
	}
	if len(rewrites) != chain {
		t.Fatalf("got %d rewrites through a %d-copy chain, want %d", len(rewrites), chain, chain)
	}
	for i, rw := range rewrites {
		if want := regs[chain-i]; rw.from != want || rw.to != regs[chain-i-1] {
			t.Fatalf("rewrite %d = {%d -> %d}, want {%d -> %d}", i, rw.from, rw.to, want, regs[chain-i-1])
		}
	}
	if uses[0] != regs[0] {
		t.Fatalf("use resolved to r%d, want the chain head r%d", uses[0], regs[0])
	}
}
