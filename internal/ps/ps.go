// Package ps implements the core Percolation Scheduling transformations
// of the paper's section 2: move-op (Figure 2), move-cj (Figure 3),
// within-node hoisting (speculation past a conditional jump under IBM
// VLIW path semantics), renaming, and the copy propagation that lets
// operations move past copies.
//
// Every transformation is semantics-preserving; the test suite proves
// this by simulation. The package exposes Can/Do pairs plus StepUp, the
// one-edge upward move the schedulers build migration from.
package ps

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// BlockKind classifies why an operation could not move.
type BlockKind int

// Block kinds. BlockDep covers strict data dependences (and control
// dependences such as a store refusing to pass a branch); BlockResource
// means the target instruction is full — the situation that creates the
// paper's resource barriers; BlockStructure covers graph-shape limits
// (program entry reached, multiple predecessors, nested branches).
const (
	BlockNone BlockKind = iota
	BlockDep
	BlockResource
	BlockStructure
	BlockFrozen
)

// String names the block kind.
func (k BlockKind) String() string {
	switch k {
	case BlockNone:
		return "none"
	case BlockDep:
		return "dep"
	case BlockResource:
		return "resource"
	case BlockStructure:
		return "structure"
	case BlockFrozen:
		return "frozen"
	}
	return fmt.Sprintf("block(%d)", int(k))
}

// Block describes a failed move.
type Block struct {
	Kind BlockKind
	// By is the operation responsible for a BlockDep, when identifiable:
	// the producer the mover depends on, or the branch a store refuses
	// to pass. Nil for environmental blocks (liveness on a frozen exit
	// path).
	By *ir.Op
}

var blockNone = Block{Kind: BlockNone}

// Ctx carries the graph, the machine model, and the exit-liveness
// interface through a scheduling session, and counts transformation
// statistics.
type Ctx struct {
	G *graph.Graph
	M machine.Machine

	// ExitLive lists the registers observable when the program exits
	// (the destinations of live-out epilogue copies). Used by the
	// write-live test for speculative hoisting.
	ExitLive map[ir.Reg]bool

	// D, when set, is the dependence graph of the program being
	// transformed. The transformations do not consult it — their
	// legality scans read the live registers — but they report every
	// committed operand rewrite (copy propagation, renaming) to it so
	// its precomputed bit-matrices know which ops went stale.
	D *deps.DDG

	// CrossCheck runs the retained reference dependence scans next to
	// every summary-filtered fast path — the committed-path scan, the
	// move-past-read scan, the hoist double-definition scan, and the
	// write-live test — and panics on the first divergence (a
	// summary-maintenance bug, on par with a corrupted graph
	// invariant). A testing hook: it cannot change any verdict, only
	// verify it. core.Options.CrossCheck switches it on for the
	// duration of a scheduling run.
	CrossCheck bool

	// Stats.
	Moves   int // successful move-op steps
	Hoists  int // successful speculation hoists
	CJMoves int // successful move-cj steps
	Splices int // empty nodes removed
	Renames int // renaming transformations applied

	// plCache memoizes predLeaf per target node within one graph
	// version: legality probes burst against the same few frontier
	// nodes between mutations (the Gapless-move search alone asks
	// about one node once per candidate), and each miss re-walks
	// SinglePred + LeafTo. Version stamps make entries self-
	// invalidating; collisions just recompute.
	plCache [64]predLeafEntry
}

type predLeafEntry struct {
	n       *graph.Node
	version uint64
	t       *graph.Node
	leaf    *graph.Vertex
	blk     Block
}

// NewCtx returns a transformation context.
func NewCtx(g *graph.Graph, m machine.Machine, exitLive map[ir.Reg]bool) *Ctx {
	if exitLive == nil {
		exitLive = map[ir.Reg]bool{}
	}
	return &Ctx{G: g, M: m, ExitLive: exitLive}
}

// noteRewrite records that op's operands were just rewritten, keeping
// the dependence matrices honest.
func (c *Ctx) noteRewrite(op *ir.Op) {
	if c.D != nil {
		c.D.MarkRewritten(op)
	}
}

// predLeaf returns the unique predecessor node of n and the leaf in it
// that points at n, or a structural block. Percolation moves operations
// up one edge at a time; a node reached by several edges would need the
// unification transformation, which the unwound loops this repository
// schedules never require (every node has one predecessor until the loop
// is re-formed).
func (c *Ctx) predLeaf(n *graph.Node) (*graph.Node, *graph.Vertex, Block) {
	e := &c.plCache[uint(n.ID)&63]
	if e.n != n || e.version != c.G.Version() {
		c.predLeafFill(n, e)
	}
	return e.t, e.leaf, e.blk
}

// predLeafFill recomputes a missed cache entry. Kept out of predLeaf so
// the hit path stays within the inlining budget.
func (c *Ctx) predLeafFill(n *graph.Node, e *predLeafEntry) {
	t, leaf, blk := predLeafEval(c.G, n)
	*e = predLeafEntry{n: n, version: c.G.Version(), t: t, leaf: leaf, blk: blk}
}

func predLeafEval(g *graph.Graph, n *graph.Node) (*graph.Node, *graph.Vertex, Block) {
	t := g.SinglePred(n)
	if t == nil || t == n {
		return nil, nil, Block{Kind: BlockStructure}
	}
	if l := t.LeafTo(n); l != nil {
		return t, l, blockNone
	}
	return nil, nil, Block{Kind: BlockStructure}
}

// pathOps calls f for every operation committed on the path from the
// root of leaf's node down to leaf (the operations a mover would be
// inserted after, value-wise). Branches on the path are passed to fb.
func pathOps(leaf *graph.Vertex, f func(*ir.Op) bool, fb func(*ir.Op) bool) bool {
	// Collect root -> leaf chain. Instruction trees are shallow (depth
	// bounded by the branch-slot budget), so the stack buffer makes the
	// per-step scan allocation-free under every paper machine. An
	// unlimited-branch machine can exceed 8 vertices; the append then
	// grows onto the heap with nothing dropped
	// (TestPathOpsDeepTreeOverflowsCorrectly).
	var buf [8]*graph.Vertex
	chain := buf[:0]
	for v := leaf; v != nil; v = v.Parent() {
		chain = append(chain, v)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		v := chain[i]
		for _, op := range v.Ops {
			if !f(op) {
				return false
			}
		}
		if v.CJ != nil && fb != nil {
			if !fb(v.CJ) {
				return false
			}
		}
	}
	return true
}
