package ps

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// moveBenchFixture builds the steady-state move-op scenario the
// migration loop hits millions of times: a chain
//
//	n0 [r8,r9 consts] -> n1 [r1..r4 consts] -> n2 [mover, hitter, keep]
//
// where mover reads r9 (defined two nodes up, so its probe into n1 is a
// summary miss — the common case) and hitter reads r1 (defined in n1,
// so its probe is a summary hit that must fall through to the full path
// scan and report the blocking producer).
func moveBenchFixture() (f *fixture, n2 *graph.Node, mover, hitter *ir.Op) {
	f = newFixture(8)
	r8, r9 := f.al.Reg("r8"), f.al.Reg("r9")
	n0 := graph.AppendOp(f.g, nil, f.constOp(r8, 8))
	f.g.AddOp(f.constOp(r9, 9), n0.Root)

	r1 := f.al.Reg("r1")
	n1 := graph.AppendOp(f.g, n0, f.constOp(r1, 0))
	for i := 1; i < 4; i++ {
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n1.Root)
	}

	mover = f.addI(f.al.Reg("m"), r9, 1)
	hitter = f.addI(f.al.Reg("h"), r1, 1)
	keep := f.constOp(f.al.Reg("k"), 7)
	n2 = graph.AppendOp(f.g, n1, mover)
	f.g.AddOp(hitter, n2.Root)
	f.g.AddOp(keep, n2.Root)
	return f, n2, mover, hitter
}

// scanBenchFixture builds a branched source node for the move-past-read
// scan: the root holds the op being moved plus a conditional jump, and
// both leaves hold a handful of ops. A reader in the true leaf reads
// hitT's destination, a reader in the false leaf reads hitF's
// destination, and nothing reads miss's destination — so the guided
// descent prunes the false subtree for hitT, the true subtree for hitF,
// and everything for miss.
func scanBenchFixture() (f *fixture, n *graph.Node, miss, hitT, hitF *ir.Op) {
	f = newFixture(8)
	r1, r2, r3, rc := f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("r3"), f.al.Reg("rc")
	n0 := graph.AppendOp(f.g, nil, f.constOp(rc, 0))
	exit := f.g.NewNode()
	f.g.AddOp(f.constOp(f.al.Reg(""), 0), exit.Root)

	cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{rc}, Imm: 10, BImm: true, Rel: ir.Lt}
	n = graph.AppendBranch(f.g, n0, cj, exit)
	miss = f.constOp(r1, 1)
	hitT = f.constOp(r2, 2)
	hitF = f.constOp(r3, 3)
	f.g.AddOp(miss, n.Root)
	f.g.AddOp(hitT, n.Root)
	f.g.AddOp(hitF, n.Root)
	for i := 0; i < 3; i++ {
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n.Root.True)
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n.Root.False)
	}
	f.g.AddOp(f.addI(f.al.Reg("rd"), r2, 1), n.Root.True)
	f.g.AddOp(f.addI(f.al.Reg("rf"), r3, 1), n.Root.False)
	return f, n, miss, hitT, hitF
}

// pathBenchFixture builds the committed-path scan scenario: a chain
//
//	n0 [r8,r9 consts] -> n1 [consts, c1 = c0, c0 = r9, rh = r8+1] -> n2
//
// where miss (in n2) reads r9 — defined two nodes up, so n1's
// path-prefix filter proves the scan unnecessary — hit reads rh, whose
// non-copy producer on the path blocks the move, and chain reads c1,
// which copy-propagates through two hops (c1→c0→r9) without blocking.
func pathBenchFixture() (f *fixture, leaf *graph.Vertex, miss, hit, chain *ir.Op) {
	f = newFixture(16)
	r8, r9 := f.al.Reg("r8"), f.al.Reg("r9")
	n0 := graph.AppendOp(f.g, nil, f.constOp(r8, 8))
	f.g.AddOp(f.constOp(r9, 9), n0.Root)

	n1 := graph.AppendOp(f.g, n0, f.constOp(f.al.Reg(""), 0))
	for i := 1; i < 4; i++ {
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n1.Root)
	}
	c0, c1, rh := f.al.Reg("c0"), f.al.Reg("c1"), f.al.Reg("rh")
	f.g.AddOp(&ir.Op{ID: f.al.OpID(), Kind: ir.Copy, Dst: c1, Src: [2]ir.Reg{c0}}, n1.Root)
	f.g.AddOp(&ir.Op{ID: f.al.OpID(), Kind: ir.Copy, Dst: c0, Src: [2]ir.Reg{r9}}, n1.Root)
	f.g.AddOp(f.addI(rh, r8, 1), n1.Root)

	miss = f.addI(f.al.Reg("m"), r9, 1)
	hit = f.addI(f.al.Reg("h"), rh, 1)
	chain = f.addI(f.al.Reg("x"), c1, 1)
	n2 := graph.AppendOp(f.g, n1, miss)
	f.g.AddOp(hit, n2.Root)
	f.g.AddOp(chain, n2.Root)
	return f, n1.Root, miss, hit, chain
}

// BenchmarkTryMoveOpUp measures one move-op legality check + move.
// probeMiss is the dominant steady-state shape (the target instruction
// defines none of the op's registers, so the summary filter skips the
// path walk); probeHit forces the retained full scan; commit performs
// the move and puts the op back through the graph mutators.
func BenchmarkTryMoveOpUp(b *testing.B) {
	b.Run("probeMiss", func(b *testing.B) {
		f, _, mover, _ := moveBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.TryMoveOpUp(mover, false, nil); blk.Kind != BlockNone {
				b.Fatalf("probe blocked: %v", blk.Kind)
			}
		}
	})
	b.Run("probeHit", func(b *testing.B) {
		f, _, _, hitter := moveBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.TryMoveOpUp(hitter, false, nil); blk.Kind != BlockDep {
				b.Fatalf("probe not blocked: %v", blk.Kind)
			}
		}
	})
	b.Run("commit", func(b *testing.B) {
		f, n2, mover, _ := moveBenchFixture()
		home := f.g.Where(mover)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.TryMoveOpUp(mover, true, nil); blk.Kind != BlockNone {
				b.Fatalf("move blocked: %v", blk.Kind)
			}
			f.g.MoveOp(mover, home) // reset for the next iteration
		}
		b.StopTimer()
		if f.g.NodeOf(mover) != n2 {
			b.Fatal("mover not restored")
		}
	})
}

// BenchmarkScanMovePastRead measures the left-behind-reader check over
// a branched source node: miss is answered at the root by the subtree
// read summary without entering the tree; hitTrue and hitFalse descend
// only the one subtree whose summary holds the reader.
func BenchmarkScanMovePastRead(b *testing.B) {
	bench := func(op func(f *fixture, miss, hitT, hitF *ir.Op) *ir.Op, want BlockKind) func(b *testing.B) {
		return func(b *testing.B) {
			f, n, miss, hitT, hitF := scanBenchFixture()
			target := op(f, miss, hitT, hitF)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if blk := f.c.scanMovePastRead(n, target, nil); blk.Kind != want {
					b.Fatalf("scan verdict %v, want %v", blk.Kind, want)
				}
			}
		}
	}
	b.Run("miss", bench(func(f *fixture, miss, hitT, hitF *ir.Op) *ir.Op { return miss }, BlockNone))
	b.Run("hitTrue", bench(func(f *fixture, miss, hitT, hitF *ir.Op) *ir.Op { return hitT }, BlockDep))
	b.Run("hitFalse", bench(func(f *fixture, miss, hitT, hitF *ir.Op) *ir.Op { return hitF }, BlockDep))
}

// BenchmarkScanCommittedPath measures the committed-path dependence
// scan in its three shapes: miss is the O(uses) prefix-filter proof
// that no scan is needed, hit resolves a filter hit to its blocking
// producer, and copyChain propagates the moving op's use through a
// two-hop copy chain on the path.
func BenchmarkScanCommittedPath(b *testing.B) {
	b.Run("miss", func(b *testing.B) {
		f, leaf, miss, _, _ := pathBenchFixture()
		_ = f
		var useBuf [3]ir.Reg
		uses := miss.Uses(useBuf[:0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pathScanNeeded(leaf, miss, uses) != 0 {
				b.Fatal("prefix filter hit on the miss shape")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		f, leaf, _, hit, _ := pathBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var useBuf [3]ir.Reg
			uses := hit.Uses(useBuf[:0])
			var rwBuf [8]rewrite
			mask := pathScanNeeded(leaf, hit, uses)
			if mask == 0 {
				b.Fatal("prefix filter missed the hit shape")
			}
			blk, _, _ := f.c.resolvePath(leaf, hit, nil, uses, useBuf[:0], rwBuf[:0], mask)
			if blk.Kind != BlockDep {
				b.Fatalf("hit not blocked: %v", blk.Kind)
			}
		}
	})
	b.Run("copyChain", func(b *testing.B) {
		f, leaf, _, _, chain := pathBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var useBuf [3]ir.Reg
			uses := chain.Uses(useBuf[:0])
			var rwBuf [8]rewrite
			mask := pathScanNeeded(leaf, chain, uses)
			if mask == 0 {
				b.Fatal("prefix filter missed the chain shape")
			}
			blk, _, rw := f.c.resolvePath(leaf, chain, nil, uses, useBuf[:0], rwBuf[:0], mask)
			if blk.Kind != BlockNone || len(rw) != 2 {
				b.Fatalf("chain verdict %v with %d rewrites, want none/2", blk.Kind, len(rw))
			}
		}
	})
}

// The move-op probe and the move-past-read scan run inside the Gapless-
// move test's inner search loop; an allocation there multiplies into
// the schedule's hottest path. These guards pin both at zero for the
// summary-filtered miss AND the full-scan hit (the retained walks use
// the documented stack buffers — see stackbuf_test.go for the bounds).
func TestMoveProbesZeroAlloc(t *testing.T) {
	f, _, mover, hitter := moveBenchFixture()
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		f.c.TryMoveOpUp(mover, false, nil)
	}); n != 0 {
		t.Errorf("probe (summary miss) allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		f.c.TryMoveOpUp(hitter, false, nil)
	}); n != 0 {
		t.Errorf("probe (full scan) allocates %v/op, want 0", n)
	}
}

func TestScanMovePastReadZeroAlloc(t *testing.T) {
	f, n, miss, hitT, hitF := scanBenchFixture()
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		op   *ir.Op
	}{{"summary miss", miss}, {"guided descent true", hitT}, {"guided descent false", hitF}} {
		if a := testing.AllocsPerRun(100, func() {
			f.c.scanMovePastRead(n, tc.op, nil)
		}); a != 0 {
			t.Errorf("scan (%s) allocates %v/op, want 0", tc.name, a)
		}
	}
}

// TestScanCommittedPathZeroAlloc pins the prefix filter and the
// walk-free resolver at zero allocations for every scan shape —
// including the copy-chain rewrite case, whose rewrite list must stay
// inside the caller's stack buffer.
func TestScanCommittedPathZeroAlloc(t *testing.T) {
	f, leaf, miss, hit, chain := pathBenchFixture()
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		var useBuf [3]ir.Reg
		if pathScanNeeded(leaf, miss, miss.Uses(useBuf[:0])) != 0 {
			t.Fatal("prefix filter hit on the miss shape")
		}
	}); a != 0 {
		t.Errorf("filter miss allocates %v/op, want 0", a)
	}
	for _, tc := range []struct {
		name string
		op   *ir.Op
	}{{"blocking hit", hit}, {"copy chain", chain}} {
		if a := testing.AllocsPerRun(100, func() {
			var useBuf [3]ir.Reg
			var rwBuf [8]rewrite
			uses := tc.op.UsesView(useBuf[:0])
			resolveCommittedPath(leaf, tc.op, nil, uses, useBuf[:0], rwBuf[:0], pathScanNeeded(leaf, tc.op, uses))
		}); a != 0 {
			t.Errorf("resolver (%s) allocates %v/op, want 0", tc.name, a)
		}
	}
}

// TestResolveCommittedPathMatchesReference drives the walk-free
// resolver and the retained reference scan over every scan shape of the
// bench fixture — including the order-sensitive copy-chain rewrites —
// and requires identical verdicts, use lists, and rewrite lists. The
// randomized equivalence sweep lives in
// TestCrossCheckedRandomMutationSequences; this is the deterministic
// unit-level check.
func TestResolveCommittedPathMatchesReference(t *testing.T) {
	f, leaf, miss, hit, chain := pathBenchFixture()
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, op := range []*ir.Op{miss, hit, chain} {
		var ub1, ub2 [3]ir.Reg
		var rb1, rb2 [8]rewrite
		uses := op.UsesView(ub1[:0])
		gotB, gotU, gotR := resolveCommittedPath(leaf, op, nil, uses, ub1[:0], rb1[:0], pathScanNeeded(leaf, op, uses))
		refB, refU, refR := scanCommittedPath(leaf, op, nil, op.Uses(ub2[:0]), rb2[:0])
		if gotB != refB || len(gotU) != len(refU) || len(gotR) != len(refR) {
			t.Fatalf("%v: resolver (%v,%d uses,%d rewrites) != reference (%v,%d uses,%d rewrites)",
				op, gotB.Kind, len(gotU), len(gotR), refB.Kind, len(refU), len(refR))
		}
		for i := range gotU {
			if gotU[i] != refU[i] {
				t.Fatalf("%v: use %d: resolver r%d, reference r%d", op, i, gotU[i], refU[i])
			}
		}
		for i := range gotR {
			if gotR[i] != refR[i] {
				t.Fatalf("%v: rewrite %d diverged", op, i)
			}
		}
	}
}
