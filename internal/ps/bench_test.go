package ps

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// moveBenchFixture builds the steady-state move-op scenario the
// migration loop hits millions of times: a chain
//
//	n0 [r8,r9 consts] -> n1 [r1..r4 consts] -> n2 [mover, hitter, keep]
//
// where mover reads r9 (defined two nodes up, so its probe into n1 is a
// summary miss — the common case) and hitter reads r1 (defined in n1,
// so its probe is a summary hit that must fall through to the full path
// scan and report the blocking producer).
func moveBenchFixture() (f *fixture, n2 *graph.Node, mover, hitter *ir.Op) {
	f = newFixture(8)
	r8, r9 := f.al.Reg("r8"), f.al.Reg("r9")
	n0 := graph.AppendOp(f.g, nil, f.constOp(r8, 8))
	f.g.AddOp(f.constOp(r9, 9), n0.Root)

	r1 := f.al.Reg("r1")
	n1 := graph.AppendOp(f.g, n0, f.constOp(r1, 0))
	for i := 1; i < 4; i++ {
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n1.Root)
	}

	mover = f.addI(f.al.Reg("m"), r9, 1)
	hitter = f.addI(f.al.Reg("h"), r1, 1)
	keep := f.constOp(f.al.Reg("k"), 7)
	n2 = graph.AppendOp(f.g, n1, mover)
	f.g.AddOp(hitter, n2.Root)
	f.g.AddOp(keep, n2.Root)
	return f, n2, mover, hitter
}

// scanBenchFixture builds a branched source node for the move-past-read
// scan: the root holds the op being moved plus a conditional jump, and
// both leaves hold a handful of ops. reader (in the true leaf) reads
// hit's destination; nothing reads miss's destination.
func scanBenchFixture() (f *fixture, n *graph.Node, miss, hit *ir.Op) {
	f = newFixture(8)
	r1, r2, rc := f.al.Reg("r1"), f.al.Reg("r2"), f.al.Reg("rc")
	n0 := graph.AppendOp(f.g, nil, f.constOp(rc, 0))
	exit := f.g.NewNode()
	f.g.AddOp(f.constOp(f.al.Reg(""), 0), exit.Root)

	cj := &ir.Op{ID: f.al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{rc}, Imm: 10, BImm: true, Rel: ir.Lt}
	n = graph.AppendBranch(f.g, n0, cj, exit)
	miss = f.constOp(r1, 1)
	hit = f.constOp(r2, 2)
	f.g.AddOp(miss, n.Root)
	f.g.AddOp(hit, n.Root)
	for i := 0; i < 3; i++ {
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n.Root.True)
		f.g.AddOp(f.constOp(f.al.Reg(""), int64(i)), n.Root.False)
	}
	reader := f.addI(f.al.Reg("rd"), r2, 1)
	f.g.AddOp(reader, n.Root.True)
	return f, n, miss, hit
}

// BenchmarkTryMoveOpUp measures one move-op legality check + move.
// probeMiss is the dominant steady-state shape (the target instruction
// defines none of the op's registers, so the summary filter skips the
// path walk); probeHit forces the retained full scan; commit performs
// the move and puts the op back through the graph mutators.
func BenchmarkTryMoveOpUp(b *testing.B) {
	b.Run("probeMiss", func(b *testing.B) {
		f, _, mover, _ := moveBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.TryMoveOpUp(mover, false, nil); blk.Kind != BlockNone {
				b.Fatalf("probe blocked: %v", blk.Kind)
			}
		}
	})
	b.Run("probeHit", func(b *testing.B) {
		f, _, _, hitter := moveBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.TryMoveOpUp(hitter, false, nil); blk.Kind != BlockDep {
				b.Fatalf("probe not blocked: %v", blk.Kind)
			}
		}
	})
	b.Run("commit", func(b *testing.B) {
		f, n2, mover, _ := moveBenchFixture()
		home := f.g.Where(mover)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.TryMoveOpUp(mover, true, nil); blk.Kind != BlockNone {
				b.Fatalf("move blocked: %v", blk.Kind)
			}
			f.g.MoveOp(mover, home) // reset for the next iteration
		}
		b.StopTimer()
		if f.g.NodeOf(mover) != n2 {
			b.Fatal("mover not restored")
		}
	})
}

// BenchmarkScanMovePastRead measures the left-behind-reader check over
// a branched source node: miss is answered by the node's read summary
// without touching the tree, hit falls through to the full walk.
func BenchmarkScanMovePastRead(b *testing.B) {
	b.Run("miss", func(b *testing.B) {
		f, n, miss, _ := scanBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.scanMovePastRead(n, miss, nil); blk.Kind != BlockNone {
				b.Fatalf("miss blocked: %v", blk.Kind)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		f, n, _, hit := scanBenchFixture()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if blk := f.c.scanMovePastRead(n, hit, nil); blk.Kind != BlockDep {
				b.Fatalf("hit not blocked: %v", blk.Kind)
			}
		}
	})
}

// The move-op probe and the move-past-read scan run inside the Gapless-
// move test's inner search loop; an allocation there multiplies into
// the schedule's hottest path. These guards pin both at zero for the
// summary-filtered miss AND the full-scan hit (the retained walks use
// the documented stack buffers — see stackbuf_test.go for the bounds).
func TestMoveProbesZeroAlloc(t *testing.T) {
	f, _, mover, hitter := moveBenchFixture()
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		f.c.TryMoveOpUp(mover, false, nil)
	}); n != 0 {
		t.Errorf("probe (summary miss) allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		f.c.TryMoveOpUp(hitter, false, nil)
	}); n != 0 {
		t.Errorf("probe (full scan) allocates %v/op, want 0", n)
	}
}

func TestScanMovePastReadZeroAlloc(t *testing.T) {
	f, n, miss, hit := scanBenchFixture()
	if err := f.g.Validate(); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		f.c.scanMovePastRead(n, miss, nil)
	}); a != 0 {
		t.Errorf("scan (summary miss) allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		f.c.scanMovePastRead(n, hit, nil)
	}); a != 0 {
		t.Errorf("scan (full walk) allocates %v/op, want 0", a)
	}
}
