// Package post implements the POST baseline of section 4 (Potasman'91):
// an "unconstrained" software pipelining technique that first applies
// GRiP scheduling with infinite resources to obtain a pipelined loop and
// then applies resource constraints as a post-processing phase, breaking
// apart nodes that contain too many operations and allowing further
// (local) percolation to refill nodes the breaking left underutilized.
//
// The paper's point — and what this implementation reproduces — is that
// deferring resource constraints loses: the infinite-resource schedule
// commits to an iteration overlap the post-pass cannot revisit, breaking
// disrupts the steady state, and the refill percolation is a single
// local sweep with no global re-ranking, so utilization holes persist.
package post

import (
	"context"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/ps"
)

// refillWindow bounds how far below a node the refill sweep looks for
// operations — the "local" in local post-compaction.
const refillWindow = 3

// Pipeline runs the POST technique for spec on cfg.Machine: phase one is
// Perfect Pipelining at infinite resources (same gap prevention, same
// priorities), phase two breaks over-wide instructions, phase three
// refills locally. The returned result carries the post-pass schedule's
// kernel metrics.
func Pipeline(ctx context.Context, spec *ir.LoopSpec, cfg pipeline.Config) (*pipeline.Result, error) {
	res, err := pipeline.PerfectPipeline(ctx, spec, Phase1Config(cfg))
	if err != nil {
		return nil, err
	}
	return From(ctx, res, cfg)
}

// Phase1Config returns the unconstrained configuration POST's first
// phase schedules against: cfg with the functional-unit limit removed
// (branch slots are kept — they bound iteration retirement, not
// functional-unit packing). The phase-1 schedule depends only on the
// loop and this configuration, not on the eventual target width, which
// is what makes phase-1 results shareable across target machines.
func Phase1Config(cfg pipeline.Config) pipeline.Config {
	cfg.Machine = machine.Infinite().WithBranchSlots(cfg.Machine.BranchSlots)
	return cfg
}

// From applies POST's resource post-pass (break over-wide nodes, refill
// locally) to a phase-1 result produced with Phase1Config(cfg). It
// mutates res.Unwound in place and returns a result measured on the
// post-pass schedule; callers reusing one phase-1 result for several
// targets must pass fresh deep copies (pipeline.Result.Clone).
//
// ctx cancels the post-pass between nodes of the break and refill
// sweeps; on cancellation the (half-processed) unwound graph is
// abandoned and ctx's error returned.
func From(ctx context.Context, res *pipeline.Result, cfg pipeline.Config) (*pipeline.Result, error) {
	target := cfg.Machine
	spec := res.Spec

	uw := res.Unwound
	g := uw.G
	// The DDG (and its dependence bit-matrices) is rebuilt over the
	// phase-1 schedule's current operand state, so the break and refill
	// sweeps answer their pairwise dependence questions with matrix
	// loads instead of re-deriving them per query.
	ddg := deps.Build(uw.Ops)
	pri := deps.NewPriority(ddg)

	breaks, err := breakNodes(ctx, g, target, pri, ddg, uw.ExitLive)
	if err != nil {
		return nil, err
	}
	if err := refill(ctx, g, target, pri, ddg, uw.ExitLive, breaks); err != nil {
		return nil, err
	}
	for _, n := range g.MainChain() {
		if g.Has(n) && !n.Drain {
			g.SpliceOutEmpty(n)
		}
	}

	// Re-measure the post-pass schedule.
	out := &pipeline.Result{Spec: spec, U: res.U, Stats: res.Stats, Unwound: uw}
	out.Rows = len(g.MainChain())
	periods := cfg.Periods
	if periods == 0 {
		periods = 3
	}
	if k, ok := pipeline.DetectPattern(g, periods); ok {
		out.Converged = true
		out.Kernel = k
		out.CyclesPerIter = k.CyclesPerIter()
	} else if rate, ok := pipeline.MeasuredRate(g, res.U/4, 3*res.U/4); ok {
		out.CyclesPerIter = rate
	} else {
		out.CyclesPerIter = float64(out.Rows) / float64(res.U)
	}
	if out.CyclesPerIter > 0 {
		out.Speedup = float64(spec.SeqOpsPerIter()) / out.CyclesPerIter
	}
	return out, nil
}

// breakNodes walks the main chain top-down and demotes the
// lowest-priority demotable operations out of every over-wide node into
// freshly inserted break nodes below it, cascading so that no demoted
// operation lands beside a dependence partner.
func breakNodes(ctx context.Context, g *graph.Graph, m machine.Machine, pri *deps.Priority, ddg *deps.DDG, exitLive map[ir.Reg]bool) ([]*graph.Node, error) {
	var all []*graph.Node
	if m.InfiniteOps() {
		return all, nil
	}
	chain := g.MainChain()
	for _, n := range chain {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !g.Has(n) || n.Drain {
			continue
		}
		var breaks []*graph.Node
		for !m.FitsOps(n.OpCount()) {
			op := pickDemotable(g, n, pri, exitLive)
			if op == nil {
				break
			}
			demote(g, n, op, &breaks, m, ddg)
		}
		// Ops that cannot safely move below (stores guarded by the
		// node's own branch, values live on its exit paths) are instead
		// promoted into fresh rows above — an exact percolation move.
		if !m.FitsOps(n.OpCount()) {
			breaks = append(breaks, promoteExcess(g, n, pri, ddg, exitLive, m)...)
		}
		all = append(all, breaks...)
	}
	return all, nil
}

// pickDemotable returns the lowest-priority operation of n that can be
// moved below the node without changing observable behaviour: it must
// commit only on the continue path, or be a non-store whose target is
// dead on every exit subtree it currently commits on.
func pickDemotable(g *graph.Graph, n *graph.Node, pri *deps.Priority, exitLive map[ir.Reg]bool) *ir.Op {
	var cands []*ir.Op
	cont := graph.ContinueLeaf(n)
	n.Walk(func(v *graph.Vertex) {
		for _, op := range v.Ops {
			if op.Frozen {
				continue
			}
			if v == cont {
				cands = append(cands, op)
				continue
			}
			if !v.OnPathTo(cont) {
				continue
			}
			if op.IsStore() {
				continue // commits on exit sides it would abandon
			}
			if defLiveOffPath(g, v, cont, op.Def(), exitLive) {
				continue
			}
			cands = append(cands, op)
		}
	})
	if len(cands) == 0 {
		return nil
	}
	pri.Rank(cands)
	return cands[len(cands)-1]
}

// defLiveOffPath reports whether reg is observable along any subtree
// hanging off the root-to-continue-leaf path at or below v.
func defLiveOffPath(g *graph.Graph, v *graph.Vertex, cont *graph.Vertex, reg ir.Reg, exitLive map[ir.Reg]bool) bool {
	for w := cont; w != nil && w != v; w = w.Parent() {
		if sib := w.Sibling(); sib != nil {
			if deps.LiveOnSubtree(g, sib, reg, exitLive) {
				return true
			}
		}
	}
	return false
}

// promoteExcess lifts the lowest-priority root operations of an
// over-wide node into fresh rows inserted above it, using the ordinary
// move-op transformation (which is exact for root ops). Returns the new
// rows so the refill pass can also consider them.
func promoteExcess(g *graph.Graph, n *graph.Node, pri *deps.Priority, ddg *deps.DDG, exitLive map[ir.Reg]bool, m machine.Machine) []*graph.Node {
	ctx := ps.NewCtx(g, m, exitLive)
	ctx.D = ddg
	var made []*graph.Node
	for !m.FitsOps(n.OpCount()) {
		pre := g.InsertBefore(n)
		made = append(made, pre)
		moved := false
		for !m.FitsOps(n.OpCount()) && m.FitsOps(pre.OpCount()+1) {
			cands := append([]*ir.Op(nil), n.Root.Ops...)
			pri.Rank(cands)
			var pick *ir.Op
			for i := len(cands) - 1; i >= 0; i-- {
				if cands[i].Frozen {
					continue
				}
				if ctx.TryMoveOpUp(cands[i], true, nil).Kind == ps.BlockNone {
					pick = cands[i]
					break
				}
			}
			if pick == nil {
				break
			}
			moved = true
		}
		if !moved {
			// Nothing movable: give up rather than loop forever.
			g.SpliceOutEmpty(pre)
			return made[:len(made)-1]
		}
	}
	return made
}

// demote moves op out of n into the first break node below n where it
// fits and conflicts with nothing already demoted, extending the break
// chain as needed.
func demote(g *graph.Graph, n *graph.Node, op *ir.Op, breaks *[]*graph.Node, m machine.Machine, ddg *deps.DDG) {
	g.RemoveOp(op)
	for _, b := range *breaks {
		if !m.FitsOps(b.OpCount() + 1) {
			continue
		}
		if conflicts(b, op, ddg) {
			continue
		}
		g.AddOp(op, b.Root)
		return
	}
	// New break node after n (or after the last break node).
	last := n
	if len(*breaks) > 0 {
		last = (*breaks)[len(*breaks)-1]
	}
	leaf := graph.ContinueLeaf(last)
	var nb *graph.Node
	if leaf.Succ == nil {
		nb = g.NewNode()
		g.RetargetLeaf(leaf, nb)
	} else {
		nb = g.InsertBefore(leaf.Succ)
	}
	g.AddOp(op, nb.Root)
	*breaks = append(*breaks, nb)
}

func conflicts(b *graph.Node, op *ir.Op, ddg *deps.DDG) bool {
	bad := false
	b.Walk(func(v *graph.Vertex) {
		for _, p := range v.Ops {
			if ddg.Blocks(p, op) || ddg.Blocks(op, p) {
				bad = true
			}
		}
	})
	return bad
}

// refill is phase three: one sweep over the nodes the breaking pass
// created — "allowing further percolation to fill any nodes that have
// become underutilized as a result of the breaking" — pulling operations
// up from the next few rows, in priority order, with no suspension
// machinery and no global re-ranking. The locality of this pass (it
// revisits neither the rest of the schedule nor its own decisions) is
// what the paper identifies as POST's weakness.
func refill(ctx context.Context, g *graph.Graph, m machine.Machine, pri *deps.Priority, ddg *deps.DDG, exitLive map[ir.Reg]bool, targets []*graph.Node) error {
	pctx := ps.NewCtx(g, m, exitLive)
	pctx.D = ddg
	for _, n := range targets {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !g.Has(n) || n.Drain {
			continue
		}
		for m.FitsOps(n.OpCount() + 1) {
			op := refillCandidate(g, pctx, n, pri)
			if op == nil {
				break
			}
			if !pullTo(pctx, n, op) {
				break
			}
		}
	}
	return nil
}

// refillCandidate finds the best op within the refill window below n
// that can take at least one upward step.
func refillCandidate(g *graph.Graph, ctx *ps.Ctx, n *graph.Node, pri *deps.Priority) *ir.Op {
	var cands []*ir.Op
	node := n
	for w := 0; w < refillWindow; w++ {
		next := node.NonDrainSucc()
		if next == nil {
			break
		}
		node = next
		node.Walk(func(v *graph.Vertex) {
			for _, op := range v.Ops {
				if !op.Frozen {
					cands = append(cands, op)
				}
			}
		})
	}
	pri.Rank(cands)
	for _, op := range cands {
		if ctx.CanStepUp(op).Kind == ps.BlockNone {
			return op
		}
	}
	return nil
}

// pullTo advances op step by step until it reaches n or blocks.
func pullTo(ctx *ps.Ctx, n *graph.Node, op *ir.Op) bool {
	g := ctx.G
	moved := false
	for g.NodeOf(op) != n {
		var blk ps.Block
		switch {
		case op.IsBranch():
			blk = ctx.TryMoveCJUp(op, true)
		case g.Where(op) != g.NodeOf(op).Root:
			blk = ctx.TryHoist(op, true)
		default:
			blk = ctx.TryMoveOpUp(op, true, nil)
		}
		if blk.Kind != ps.BlockNone {
			return moved
		}
		moved = true
	}
	return true
}
