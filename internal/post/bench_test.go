package post

import (
	"context"
	"testing"

	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// BenchmarkPOSTSweep measures POST's resource post-pass (clone the
// phase-1 memo, break over-wide nodes, refill locally) — the path the
// dependence bit-matrix and arena clone make cheap. Phase 1 runs once,
// outside the loop, exactly as the memoized production path does.
func BenchmarkPOSTSweep(b *testing.B) {
	cfg := pipeline.DefaultConfig(machine.New(4))
	phase1, err := pipeline.PerfectPipeline(context.Background(), livermore.ByName("LL3").Spec, Phase1Config(cfg))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := From(context.Background(), phase1.Clone(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
