package post

import (
	"context"
	"testing"

	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

func TestPostRespectsResources(t *testing.T) {
	k := livermore.ByName("LL1")
	for _, fus := range []int{2, 4} {
		cfg := pipeline.DefaultConfig(machine.New(fus))
		res, err := Pipeline(context.Background(), k.Spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// After breaking, every main-chain row obeys the target width
		// (over-wide rows may only remain when nothing was safely
		// demotable, which must not happen on this vectorizable loop).
		for _, n := range res.Unwound.G.MainChain() {
			if n.OpCount() > fus {
				t.Errorf("@%dFU: row n%d has %d ops", fus, n.ID, n.OpCount())
			}
			if n.BranchCount() > 1 {
				t.Errorf("@%dFU: row n%d has %d branches", fus, n.ID, n.BranchCount())
			}
		}
		if res.Speedup <= 1 {
			t.Errorf("@%dFU: speedup %.2f", fus, res.Speedup)
		}
		if err := res.Unwound.G.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPostSemanticsPreserved(t *testing.T) {
	k := livermore.ByName("LL10")
	cfg := pipeline.DefaultConfig(machine.New(4))
	res, err := Pipeline(context.Background(), k.Spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trips := []int64{2, int64(res.U / 2), int64(res.U)}
	if err := pipeline.ValidateSemantics(res, k.Vars, k.Arrays(res.U+8), trips); err != nil {
		t.Fatal(err)
	}
}

func TestPostNeverBeatsBoundlessGrip(t *testing.T) {
	// POST's phase-1 schedule at infinite resources retires at most one
	// iteration per cycle (single branch slot); the post-pass can only
	// slow it down.
	k := livermore.ByName("LL12")
	cfg := pipeline.DefaultConfig(machine.New(8))
	res, err := Pipeline(context.Background(), k.Spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerIter < 0.999 {
		t.Fatalf("POST rate %.3f cycles/iter beats the branch-slot floor", res.CyclesPerIter)
	}
}
