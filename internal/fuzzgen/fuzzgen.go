// Package fuzzgen generates random — but seeded and fully deterministic
// — loop specifications for differential fuzzing: the same seed always
// produces the same ir.LoopSpec, the same workload, and therefore (all
// schedulers being deterministic) the same verdict from the oracle
// harness. The generator sweeps the hazard axes the ILP literature
// catalogs for loop schedulers: register RAW chains and loop-carried
// recurrences, memory aliasing in its three flavors (disjoint streams,
// affine cross-iteration overlap, indirect subscripts that serialize
// conservatively), dependence density, live-in/live-out interface size,
// and loop-control shape (start offset, step).
//
// Everything a generated loop computes is observable — through stores,
// through live-out accumulators, or both — so a scheduling bug cannot
// hide in dead code. Generated specs always pass ir.LoopSpec.Validate
// and round-trip bit-for-bit through textir (property-tested), which is
// what lets fuzz-found failures be minimized and checked into the
// regression corpus as plain text.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/ir"
)

// MemStyle selects the memory-aliasing flavor of a generated loop.
type MemStyle uint8

const (
	// MemNone generates a pure register loop (no loads or stores).
	MemNone MemStyle = iota
	// MemStream reads and writes disjoint affine streams (vectorizable,
	// LL1/LL7-shaped).
	MemStream
	// MemOverlap reads and writes the same arrays with small affine
	// offsets, creating cross-iteration RAW/WAR/WAW memory dependencies
	// (LL5/LL11-shaped).
	MemOverlap
	// MemIndirect uses indirect subscripts through a loaded index
	// variable, which conservative dependence analysis serializes
	// (LL13/LL14-shaped).
	MemIndirect
	// MemMixed draws each reference's style at random from the above.
	MemMixed
)

var memStyleNames = [...]string{
	MemNone: "none", MemStream: "stream", MemOverlap: "overlap",
	MemIndirect: "indirect", MemMixed: "mixed",
}

// String returns the style's short name.
func (s MemStyle) String() string {
	if int(s) < len(memStyleNames) {
		return memStyleNames[s]
	}
	return fmt.Sprintf("style(%d)", uint8(s))
}

// Params spans the generator's parameter space. The zero value is not
// useful; start from SweepParams or fill every field.
type Params struct {
	// Ops is the target body-operation count (memory index setup may
	// add a couple).
	Ops int
	// Density is the probability an arithmetic operand is drawn from
	// the most recent definitions (long RAW chains) rather than from
	// the whole defined pool (wide, parallel dataflow).
	Density float64
	// MemFrac is the fraction of operations touching memory; StoreFrac
	// is the fraction of those that are stores.
	MemFrac   float64
	StoreFrac float64
	// Mem selects the aliasing style of memory references.
	Mem MemStyle
	// LiveIns is the number of live-in scalar coefficients; Accs the
	// number of loop-carried accumulators (live-in AND live-out, each
	// updated once per iteration — a register recurrence).
	LiveIns int
	Accs    int
	// Start and Step shape the loop control.
	Start, Step int64
}

// SweepParams derives one point of the parameter space from a seed,
// sweeping every axis. It is the distribution behind SweepSpec.
func SweepParams(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	p := Params{
		Ops:       3 + rng.Intn(14),
		Density:   []float64{0.2, 0.5, 0.8}[rng.Intn(3)],
		MemFrac:   []float64{0, 0.3, 0.5, 0.7}[rng.Intn(4)],
		StoreFrac: 0.35,
		Mem:       MemStyle(1 + rng.Intn(4)), // stream, overlap, indirect, mixed
		LiveIns:   1 + rng.Intn(4),
		Accs:      rng.Intn(3),
		Start:     int64(rng.Intn(2)),
		Step:      int64(1 + rng.Intn(2)),
	}
	if p.MemFrac == 0 {
		p.Mem = MemNone
	}
	return p
}

// SweepSpec generates the seed's loop from the seed's own parameter
// point — the one-argument entry the fuzz sweep iterates.
func SweepSpec(seed int64) *ir.LoopSpec {
	return Generate(seed, SweepParams(seed))
}

// gen carries generator state for one loop.
type gen struct {
	rng     *rand.Rand
	p       Params
	body    []ir.BodyOp
	defined []string // operand pool: live-ins, accumulators, temps
	recent  []string // most recent definitions, for Density chains
	idxVar  string   // loaded index variable for indirect references
	temps   int
	stores  int
}

// Generate builds a deterministic loop spec from the seed and
// parameters. The result always passes ir.LoopSpec.Validate; Generate
// panics otherwise, because an invalid spec is a generator bug, not an
// input condition.
func Generate(seed int64, p Params) *ir.LoopSpec {
	if p.Ops < 1 {
		p.Ops = 1
	}
	if p.Step == 0 {
		p.Step = 1
	}
	g := &gen{rng: rand.New(rand.NewSource(seed)), p: p}

	spec := &ir.LoopSpec{
		Name:    fmt.Sprintf("fz%d", seed),
		Start:   p.Start,
		Step:    p.Step,
		TripVar: "n",
	}
	for i := 0; i < p.LiveIns; i++ {
		v := "c" + strconv.Itoa(i)
		spec.LiveIn = append(spec.LiveIn, v)
		g.defined = append(g.defined, v)
	}
	var accs []string
	for i := 0; i < p.Accs; i++ {
		v := "s" + strconv.Itoa(i)
		accs = append(accs, v)
		spec.LiveIn = append(spec.LiveIn, v)
		spec.LiveOut = append(spec.LiveOut, v)
		g.defined = append(g.defined, v)
	}

	// Reserve one update site per accumulator at a random position so
	// each carries a register recurrence across iterations.
	accAt := map[int]string{}
	for _, a := range accs {
		for {
			at := g.rng.Intn(p.Ops)
			if _, taken := accAt[at]; !taken {
				accAt[at] = a
				break
			}
		}
	}

	for i := 0; i < p.Ops; i++ {
		if a, ok := accAt[i]; ok {
			g.accumulate(a)
			continue
		}
		if g.p.Mem != MemNone && g.rng.Float64() < g.p.MemFrac {
			g.memOp()
		} else {
			g.aluOp()
		}
	}

	// Every loop must compute something observable; otherwise any
	// schedule is vacuously correct and the seed is wasted. Promote the
	// last temporary (or emit a store) when nothing escapes.
	if g.stores == 0 && len(accs) == 0 {
		if g.temps > 0 {
			last := "t" + strconv.Itoa(g.temps-1)
			spec.LiveOut = append(spec.LiveOut, last)
		} else {
			g.body = append(g.body, ir.BStore(ir.Aff("W0", 1, 0), g.pick()))
		}
	}
	spec.Body = g.body

	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("fuzzgen: generated invalid spec (seed %d): %v", seed, err))
	}
	return spec
}

// pick selects an operand: recent definitions with probability Density
// (chains), otherwise anything defined, occasionally the loop counter.
func (g *gen) pick() string {
	if g.rng.Float64() < 0.05 {
		return ir.CounterVar
	}
	if len(g.recent) > 0 && g.rng.Float64() < g.p.Density {
		return g.recent[len(g.recent)-1-g.rng.Intn(min(len(g.recent), 4))]
	}
	return g.defined[g.rng.Intn(len(g.defined))]
}

// def registers a fresh temporary as defined and recent.
func (g *gen) def() string {
	v := "t" + strconv.Itoa(g.temps)
	g.temps++
	g.defined = append(g.defined, v)
	g.recent = append(g.recent, v)
	return v
}

var aluKinds = []ir.Opcode{ir.Add, ir.Add, ir.Sub, ir.Mul, ir.Mul, ir.Div, ir.Copy}

func (g *gen) aluOp() {
	// Operands are picked before the destination is defined: an op must
	// not read its own fresh temporary.
	kind := aluKinds[g.rng.Intn(len(aluKinds))]
	a := g.pick()
	switch {
	case kind == ir.Copy:
		g.body = append(g.body, ir.BCopy(g.def(), a))
	case g.rng.Float64() < 0.2:
		imm := int64(g.rng.Intn(7)) - 2
		g.body = append(g.body, ir.BodyOp{Kind: kind, Dst: g.def(), A: a, Imm: imm, UseImm: true})
	default:
		b := g.pick()
		g.body = append(g.body, ir.BodyOp{Kind: kind, Dst: g.def(), A: a, B: b})
	}
}

// accumulate emits acc = acc <op> x — the loop-carried recurrence.
func (g *gen) accumulate(acc string) {
	kind := []ir.Opcode{ir.Add, ir.Add, ir.Sub, ir.Mul}[g.rng.Intn(4)]
	g.body = append(g.body, ir.BodyOp{Kind: kind, Dst: acc, A: acc, B: g.pick()})
	g.recent = append(g.recent, acc)
}

func (g *gen) memOp() {
	style := g.p.Mem
	if style == MemMixed {
		style = []MemStyle{MemStream, MemOverlap, MemIndirect}[g.rng.Intn(3)]
	}
	isStore := g.rng.Float64() < g.p.StoreFrac
	ref := g.ref(style, isStore)
	if isStore {
		g.body = append(g.body, ir.BStore(ref, g.pick()))
		g.stores++
	} else {
		g.body = append(g.body, ir.BLoad(g.def(), ref))
	}
}

// ref builds one memory reference in the requested style. Offsets are
// kept small and mostly non-negative so seeded array contents (rather
// than the zero default of untouched cells) dominate what the loop
// reads — unmapped cells read as zero on both sides of the oracle, so
// negative indices are safe, just less discriminating.
func (g *gen) ref(style MemStyle, isStore bool) ir.BodyRef {
	switch style {
	case MemOverlap:
		arr := []string{"M0", "M1"}[g.rng.Intn(2)]
		if isStore {
			// Stores near the current element so later iterations' loads
			// can observe them (RAW through memory) and earlier ones
			// conflict (WAR/WAW).
			return ir.Aff(arr, 1, int64(g.rng.Intn(2)))
		}
		switch g.rng.Intn(5) {
		case 0:
			return ir.Aff(arr, 2, int64(g.rng.Intn(3))) // strided gather
		case 1:
			return ir.Aff(arr, -1, 32) // reversed stream (LL4-shaped)
		default:
			return ir.Aff(arr, 1, int64(g.rng.Intn(5))-2)
		}
	case MemIndirect:
		if g.idxVar == "" {
			g.idxVar = g.def()
			g.body = append(g.body, ir.BLoad(g.idxVar, ir.Aff("IX", 1, 0)))
		}
		return ir.Ind("P", g.idxVar, int64(g.rng.Intn(3)))
	default: // MemStream
		if isStore {
			return ir.Aff([]string{"W0", "W1"}[g.rng.Intn(2)], 1, 0)
		}
		arr := []string{"R0", "R1", "R2"}[g.rng.Intn(3)]
		if g.rng.Intn(6) == 0 {
			return ir.Aff(arr, 0, int64(g.rng.Intn(4))) // loop-invariant cell
		}
		return ir.Aff(arr, 1, int64(g.rng.Intn(9)))
	}
}

// Workload builds the deterministic execution inputs for a spec: one
// small non-zero value per live-in scalar and one seeded array per
// referenced array name. It depends only on the spec's fingerprint, so
// a corpus entry parsed back from text gets exactly the workload the
// failure was found with — no side-channel seed file needed.
//
// ArraySize bounds the initialized prefix of every array; cells outside
// it (including negative indices) read as zero in the simulator, which
// is deterministic on both sides of the differential oracle.
const ArraySize = 256

// Workload returns (vars, arrays) for the spec. The trip variable is
// deliberately absent from vars: the oracle sets it per trial.
func Workload(spec *ir.LoopSpec) (map[string]int64, map[string][]int64) {
	seed := int64(0)
	for _, c := range spec.Fingerprint() {
		seed = seed*31 + int64(c)
	}
	x := seed
	next := func(mod int64) int64 {
		x = (x*1103515245 + 12345) % 2147483648
		if x < 0 {
			x = -x
		}
		return x%mod + 1
	}
	vars := map[string]int64{}
	for _, v := range spec.LiveIn {
		vars[v] = next(7)
	}
	arrays := map[string][]int64{}
	for _, op := range spec.Body {
		if op.Mem.Array == "" {
			continue
		}
		if _, ok := arrays[op.Mem.Array]; ok {
			continue
		}
		a := make([]int64, ArraySize)
		for i := range a {
			a[i] = next(7)
		}
		arrays[op.Mem.Array] = a
	}
	return vars, arrays
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
