package fuzzgen

import (
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/testutil"
)

func TestSweepSpecDeterministic(t *testing.T) {
	testutil.LeakCheck(t)
	for seed := int64(0); seed < 100; seed++ {
		a, b := SweepSpec(seed), SweepSpec(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: fingerprints differ", seed)
		}
	}
}

func TestGeneratedSpecsValidAndObservable(t *testing.T) {
	testutil.LeakCheck(t)
	for seed := int64(0); seed < 500; seed++ {
		spec := SweepSpec(seed) // Generate panics on an invalid spec
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		stores := 0
		for _, op := range spec.Body {
			if op.Kind == ir.Store {
				stores++
			}
		}
		if stores == 0 && len(spec.LiveOut) == 0 {
			t.Fatalf("seed %d: nothing observable — every schedule is vacuously correct", seed)
		}
	}
}

func TestSweepCoversParameterSpace(t *testing.T) {
	testutil.LeakCheck(t)
	styles := map[MemStyle]bool{}
	densities := map[float64]bool{}
	accs, nonUnitStep, offsetStart := false, false, false
	for seed := int64(0); seed < 300; seed++ {
		p := SweepParams(seed)
		styles[p.Mem] = true
		densities[p.Density] = true
		if p.Accs > 0 {
			accs = true
		}
		if p.Step != 1 {
			nonUnitStep = true
		}
		if p.Start != 0 {
			offsetStart = true
		}
	}
	for _, s := range []MemStyle{MemNone, MemStream, MemOverlap, MemIndirect, MemMixed} {
		if !styles[s] {
			t.Errorf("300 seeds never drew memory style %v", s)
		}
	}
	if len(densities) < 3 {
		t.Errorf("300 seeds drew only %d density values", len(densities))
	}
	if !accs || !nonUnitStep || !offsetStart {
		t.Errorf("sweep missed an axis: accs=%v nonUnitStep=%v offsetStart=%v",
			accs, nonUnitStep, offsetStart)
	}
}

func TestWorkloadDeterministicAndComplete(t *testing.T) {
	testutil.LeakCheck(t)
	for seed := int64(0); seed < 50; seed++ {
		spec := SweepSpec(seed)
		vars1, arrays1 := Workload(spec)
		vars2, arrays2 := Workload(spec)
		if !reflect.DeepEqual(vars1, vars2) || !reflect.DeepEqual(arrays1, arrays2) {
			t.Fatalf("seed %d: workload not deterministic", seed)
		}
		for _, v := range spec.LiveIn {
			if val, ok := vars1[v]; !ok || val < 1 || val > 7 {
				t.Fatalf("seed %d: live-in %q = %d, want seeded value in [1,7]", seed, v, val)
			}
		}
		if _, ok := vars1[spec.TripVar]; ok {
			t.Fatalf("seed %d: workload set the trip variable — the oracle owns it", seed)
		}
		for _, op := range spec.Body {
			if op.Mem.Array == "" {
				continue
			}
			a, ok := arrays1[op.Mem.Array]
			if !ok || len(a) != ArraySize {
				t.Fatalf("seed %d: array %q missing or mis-sized", seed, op.Mem.Array)
			}
		}
	}
}

func TestWorkloadFollowsFingerprint(t *testing.T) {
	testutil.LeakCheck(t)
	// The workload is a pure function of the fingerprint: a spec parsed
	// back from a corpus file (content-equal, pointer-distinct) gets the
	// exact inputs its failure was found with, and a different spec gets
	// different inputs.
	a := SweepSpec(1)
	clone := a.Clone()
	varsA, arrA := Workload(a)
	varsC, arrC := Workload(clone)
	if !reflect.DeepEqual(varsA, varsC) || !reflect.DeepEqual(arrA, arrC) {
		t.Fatal("content-equal specs got different workloads")
	}
	b := SweepSpec(2)
	varsB, _ := Workload(b)
	if reflect.DeepEqual(varsA, varsB) {
		t.Fatal("distinct specs drew identical live-in values — seeding looks broken")
	}
}
