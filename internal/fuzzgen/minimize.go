package fuzzgen

import (
	"repro/internal/ir"
)

// Minimize greedily shrinks a failing loop spec while keep(candidate)
// stays true — keep is the caller's oracle closure ("this candidate
// still reproduces the failure"). Candidates that fail
// ir.LoopSpec.Validate are skipped without consulting keep, so the
// oracle only ever sees well-formed loops.
//
// The shrink passes, applied to fixpoint (every accepted change
// restarts the sweep, standard delta-debugging discipline):
//
//  1. drop body operations (last to first, so consumers go before
//     producers and a dependent chain peels off in one sweep);
//  2. simplify surviving operations: binary ops to copies, immediates
//     to 1, indirect references to affine, strided/offset references
//     to the plain current element;
//  3. drop live-out variables, then unreferenced live-ins;
//  4. normalize the loop control (Start to 0, Step to 1).
//
// maxProbes bounds the total number of keep calls (each one typically
// re-runs schedulers); Minimize returns the smallest reproducer found
// within the budget and the number of probes spent. The input spec is
// never mutated.
func Minimize(spec *ir.LoopSpec, keep func(*ir.LoopSpec) bool, maxProbes int) (*ir.LoopSpec, int) {
	best := spec.Clone()
	probes := 0
	try := func(cand *ir.LoopSpec) bool {
		if probes >= maxProbes || cand.Validate() != nil {
			return false
		}
		probes++
		if keep(cand) {
			best = cand
			return true
		}
		return false
	}

	for changed := true; changed && probes < maxProbes; {
		changed = false

		// Pass 1: drop operations.
		for i := len(best.Body) - 1; i >= 0; i-- {
			cand := best.Clone()
			cand.Body = append(cand.Body[:i:i], cand.Body[i+1:]...)
			if try(cand) {
				changed = true
			}
		}

		// Pass 2: simplify operations in place.
		for i := 0; i < len(best.Body); i++ {
			for _, simplify := range opSimplifiers {
				cand := best.Clone()
				if !simplify(&cand.Body[i]) {
					continue
				}
				if try(cand) {
					changed = true
					break
				}
			}
		}

		// Pass 3: shrink the observable interface.
		for i := len(best.LiveOut) - 1; i >= 0; i-- {
			cand := best.Clone()
			cand.LiveOut = append(cand.LiveOut[:i:i], cand.LiveOut[i+1:]...)
			if try(cand) {
				changed = true
			}
		}
		for i := len(best.LiveIn) - 1; i >= 0; i-- {
			cand := best.Clone()
			cand.LiveIn = append(cand.LiveIn[:i:i], cand.LiveIn[i+1:]...)
			if try(cand) {
				changed = true
			}
		}

		// Pass 4: normalize loop control.
		if best.Start != 0 {
			cand := best.Clone()
			cand.Start = 0
			if try(cand) {
				changed = true
			}
		}
		if best.Step != 1 {
			cand := best.Clone()
			cand.Step = 1
			if try(cand) {
				changed = true
			}
		}
	}
	return best, probes
}

// opSimplifiers are the in-place operation rewrites pass 2 attempts.
// Each returns false when the op is already in the simpler form.
var opSimplifiers = []func(op *ir.BodyOp) bool{
	// Binary arithmetic to a copy of its first operand.
	func(op *ir.BodyOp) bool {
		switch op.Kind {
		case ir.Add, ir.Sub, ir.Mul, ir.Div:
			*op = ir.BodyOp{Kind: ir.Copy, Dst: op.Dst, A: op.A}
			return true
		}
		return false
	},
	// Immediate operands to 1.
	func(op *ir.BodyOp) bool {
		if op.UseImm && op.Imm != 1 {
			op.Imm = 1
			return true
		}
		return false
	},
	// Indirect references to the plain affine current element.
	func(op *ir.BodyOp) bool {
		if op.Mem.IndexVar != "" {
			op.Mem = ir.Aff(op.Mem.Array, 1, 0)
			return true
		}
		return false
	},
	// Strided or offset affine references to the current element.
	func(op *ir.BodyOp) bool {
		if op.Mem.Array != "" && op.Mem.IndexVar == "" &&
			(op.Mem.KCoef != 1 || op.Mem.Off != 0) {
			op.Mem = ir.Aff(op.Mem.Array, 1, 0)
			return true
		}
		return false
	},
}
