package fuzzgen

import (
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/testutil"
)

// hasKind is the stand-in oracle: "the failure reproduces" means the
// candidate still contains an op of the given kind.
func hasKind(kind ir.Opcode) func(*ir.LoopSpec) bool {
	return func(s *ir.LoopSpec) bool {
		for _, op := range s.Body {
			if op.Kind == kind {
				return true
			}
		}
		return false
	}
}

func TestMinimizeShrinksToCore(t *testing.T) {
	testutil.LeakCheck(t)
	spec := SweepSpec(7)
	if !hasKind(ir.Div)(spec) {
		t.Fatalf("seed 7 has no div; pick another seed: %s", spec)
	}
	min, probes := Minimize(spec, hasKind(ir.Div), 10_000)
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if !hasKind(ir.Div)(min) {
		t.Fatal("minimized spec no longer reproduces")
	}
	if len(min.Body) >= len(spec.Body) {
		t.Errorf("no shrink: %d -> %d body ops (%d probes)", len(spec.Body), len(min.Body), probes)
	}
	// A single div is a valid one-op loop; greedy should get all the way
	// there (nothing else is load-bearing for this oracle).
	if len(min.Body) > 1 {
		t.Errorf("minimized to %d ops, want 1:\n%s", len(min.Body), min)
	}
}

func TestMinimizeSimplifiesReferences(t *testing.T) {
	testutil.LeakCheck(t)
	spec := &ir.LoopSpec{
		Name: "m", TripVar: "n", Step: 1,
		LiveIn: []string{"c0", "c1"},
		Body: []ir.BodyOp{
			ir.BMul("t0", "c0", "c1"),
			ir.BStore(ir.Aff("M0", 2, 5), "t0"),
		},
	}
	min, _ := Minimize(spec, hasKind(ir.Store), 10_000)
	if n := len(min.Body); n != 2 {
		t.Fatalf("body = %d ops, want 2 (store + its operand def):\n%s", n, min)
	}
	st := min.Body[1]
	if st.Kind != ir.Store || st.Mem.KCoef != 1 || st.Mem.Off != 0 {
		t.Errorf("store reference not simplified to M0[k]: %+v", st.Mem)
	}
	if min.Body[0].Kind != ir.Copy {
		t.Errorf("operand def not simplified to a copy: %+v", min.Body[0])
	}
	if len(min.LiveIn) > 1 {
		t.Errorf("unused live-ins survive: %v", min.LiveIn)
	}
}

func TestMinimizeRespectsBudgetAndInput(t *testing.T) {
	testutil.LeakCheck(t)
	spec := SweepSpec(11)
	snapshot := spec.Clone()
	_, probes := Minimize(spec, func(*ir.LoopSpec) bool { return true }, 3)
	if probes > 3 {
		t.Errorf("spent %d probes, budget 3", probes)
	}
	if !reflect.DeepEqual(spec, snapshot) {
		t.Error("Minimize mutated its input spec")
	}
}

func TestMinimizeKeepsFailingOriginalWhenNothingShrinks(t *testing.T) {
	testutil.LeakCheck(t)
	spec := &ir.LoopSpec{
		Name: "solo", TripVar: "n", Step: 1,
		LiveIn: []string{"c0"},
		Body:   []ir.BodyOp{ir.BStore(ir.Aff("M0", 1, 0), "c0")},
	}
	min, _ := Minimize(spec, hasKind(ir.Store), 100)
	if !reflect.DeepEqual(min, spec) {
		t.Errorf("already-minimal spec changed:\n%s", min)
	}
}
