// Package modulo implements a classic iterative modulo scheduler
// (Rau & Glaeser 1982, also Gross & Lam 1986 — the techniques the paper
// contrasts against in section 1). Modulo scheduling overlaps iterations
// through a modulo reservation table with a single integer initiation
// interval per iteration; because it takes a "local (1 or 2 iterations)
// view of the code" its II is the ceiling of the resource bound, whereas
// GRiP's multi-iteration kernels achieve the fractional rate — the
// paper's introductory 5-ops-on-4-units example.
package modulo

import (
	"context"
	"fmt"

	"repro/internal/deps"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Result reports a modulo schedule of one loop iteration.
type Result struct {
	// II is the initiation interval in cycles: one iteration starts
	// every II cycles.
	II int
	// Times holds each extended-body op's start cycle.
	Times []int
	// Makespan is the schedule length of a single iteration.
	Makespan int
	// Speedup is sequential ops per iteration divided by II.
	Speedup float64
}

// maxIITries bounds the search; the II always succeeds by seqLen, so
// this is just a safety net.
const maxIITries = 4096

// Schedule modulo-schedules the loop body (body plus loop control) on m.
// Operations occupy functional units; the conditional jump occupies the
// branch slot of its cycle. The II search checks ctx between candidate
// intervals, so a cancelled or timed-out context stops the search.
func Schedule(ctx context.Context, spec *ir.LoopSpec, m machine.Machine) (*Result, error) {
	info := deps.Analyze(spec)
	ext := deps.ExtendedBody(spec)
	n := len(ext)

	minII := deps.ModuloResMII(n-1, m.OpSlots) // the cj uses no FU slot
	if r := int(info.RecMII); r > minII {
		minII = r
	}
	if float64(minII) < info.RecMII {
		minII++
	}
	if minII < 1 {
		minII = 1
	}

	for ii := minII; ii < minII+maxIITries; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if times, ok := try(spec, info, ext, m, ii); ok {
			mk := 0
			for _, t := range times {
				if t+1 > mk {
					mk = t + 1
				}
			}
			return &Result{
				II:       ii,
				Times:    times,
				Makespan: mk,
				Speedup:  float64(spec.SeqOpsPerIter()) / float64(ii),
			}, nil
		}
	}
	return nil, fmt.Errorf("modulo: no II found for %s (RecMII %.2f)", spec.Name, info.RecMII)
}

// try places ops in sequential order at their earliest dependence-legal
// cycle, probing up to II slots for a free modulo reservation. A single
// forward pass suffices for unit-latency ops whose distance-0 edges
// always point forward.
func try(spec *ir.LoopSpec, info *deps.LoopInfo, ext []ir.BodyOp, m machine.Machine, ii int) ([]int, bool) {
	n := len(ext)
	times := make([]int, n)
	fuUse := make([]int, ii) // FU slots used per modulo cycle
	brUse := make([]int, ii)

	est := make([]int, n)
	for i := 0; i < n; i++ {
		t := est[i]
		placed := false
		for probe := 0; probe < ii; probe++ {
			c := (t + probe) % ii
			if ext[i].Kind == ir.CJ {
				if m.FitsBranches(brUse[c] + 1) {
					times[i] = t + probe
					brUse[c]++
					placed = true
					break
				}
			} else if m.FitsOps(fuUse[c] + 1) {
				times[i] = t + probe
				fuUse[c]++
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
		// Propagate earliest start times along distance-0 and
		// recurrence edges. A distance-d edge from i to j requires
		// time(j) >= time(i) + 1 - d*II.
		for _, e := range info.Edges {
			if e.From != i || e.To <= i {
				continue
			}
			req := times[i] + 1 - e.Dist*ii
			if req > est[e.To] {
				est[e.To] = req
			}
		}
	}
	// Check recurrence edges (To earlier than From in body order).
	for _, e := range info.Edges {
		if e.To > e.From {
			continue
		}
		if times[e.To]+e.Dist*ii < times[e.From]+1 {
			return nil, false
		}
	}
	return times, true
}
