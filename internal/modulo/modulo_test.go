package modulo

import (
	"context"
	"testing"

	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/machine"
)

func TestModuloIntegralII(t *testing.T) {
	// The section 1 example: 5 body ops + increment (the cj rides the
	// branch slot) on 4 units needs ceil(6/4) = 2 cycles; GRiP's
	// fractional 1.5 is out of reach for a single-iteration scheduler.
	spec := livermore.ByName("LL12").Spec
	m := machine.New(4)
	res, err := Schedule(context.Background(), spec, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.II != 2 {
		t.Fatalf("II = %d, want 2", res.II)
	}
	if res.Speedup != float64(spec.SeqOpsPerIter())/2 {
		t.Fatalf("speedup = %v", res.Speedup)
	}
}

func TestModuloRespectsRecurrence(t *testing.T) {
	spec := livermore.ByName("LL5").Spec
	info := deps.Analyze(spec)
	res, err := Schedule(context.Background(), spec, machine.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.II) < info.RecMII-1e-9 {
		t.Fatalf("II %d below RecMII %.2f", res.II, info.RecMII)
	}
}

func TestModuloScheduleLegality(t *testing.T) {
	for _, k := range livermore.All() {
		m := machine.New(4)
		res, err := Schedule(context.Background(), k.Spec, m)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		info := deps.Analyze(k.Spec)
		// Dependences: time(to) >= time(from) + 1 - dist*II.
		for _, e := range info.Edges {
			if res.Times[e.To]+e.Dist*res.II < res.Times[e.From]+1 {
				t.Errorf("%s: edge %d->%d dist %d violated (t%d=%d, t%d=%d, II=%d)",
					k.Name, e.From, e.To, e.Dist,
					e.From, res.Times[e.From], e.To, res.Times[e.To], res.II)
			}
		}
		// Modulo reservation: at most 4 FU ops per modulo cycle.
		ext := deps.ExtendedBody(k.Spec)
		use := make([]int, res.II)
		for i, bo := range ext {
			if bo.Kind.String() != "cj" {
				use[res.Times[i]%res.II]++
			}
		}
		for c, u := range use {
			if u > 4 {
				t.Errorf("%s: modulo cycle %d has %d ops", k.Name, c, u)
			}
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan %d", k.Name, res.Makespan)
		}
	}
}
