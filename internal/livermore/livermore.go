// Package livermore defines the fourteen Livermore Loops the paper
// evaluates (Table 1), hand-translated to the scheduler IR the way a
// scalar compiler would emit them: loop-invariant coefficients live in
// registers, one three-address operation per statement, affine array
// subscripts folded into the memory reference (address arithmetic is
// free, as on a VLIW with addressed memory ports), and the two loop
// control operations appended by the unwinder.
//
// Each kernel carries a native Go reference implementation of exactly
// the kernel formula; the tests execute the unwound IR in the simulator
// and require bit-identical memory against the native run, which
// validates the hand translation end to end.
//
// Arithmetic is int64 (the simulator's value domain). The kernels'
// dependence structure — what determines schedules and speedups — is
// type-independent; see DESIGN.md section 3.
//
// Where the original Fortran kernel is an excerpt of a larger nest
// (LL2, LL6, LL8, LL13, LL14), we implement a documented simplification
// that preserves the property the paper's evaluation exercises:
// vectorizable (LL2, LL8), first-order recurrence (LL6), or
// indirect-subscript serialization (LL13, LL14).
package livermore

import (
	"repro/internal/ir"
)

// Kernel bundles a loop spec with workload construction and a native
// reference implementation.
type Kernel struct {
	Name string
	// Note documents any simplification against the original Fortran.
	Note string
	Spec *ir.LoopSpec
	// Vars returns the live-in scalar bindings (trip variable excluded;
	// the harness sets it).
	Vars map[string]int64
	// Arrays builds the input arrays, sized for n iterations.
	Arrays func(n int) map[string][]int64
	// Native runs the kernel formula for n iterations over the same
	// arrays/vars, returning the expected final arrays and live-out
	// scalars.
	Native func(n int, vars map[string]int64, arrays map[string][]int64) (map[string][]int64, map[string]int64)
}

// seq fills a deterministic pseudo-random array: values are small and
// non-zero so integer multiplication chains stay within int64.
func seq(seed int64, n int) []int64 {
	v := make([]int64, n)
	x := seed
	for i := range v {
		x = (x*1103515245 + 12345) % 2147483648
		v[i] = x%7 + 1
	}
	return v
}

func cloneArrays(in map[string][]int64) map[string][]int64 {
	out := make(map[string][]int64, len(in))
	for k, v := range in {
		c := make([]int64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// All returns the fourteen kernels in order.
func All() []*Kernel {
	return []*Kernel{
		LL1(), LL2(), LL3(), LL4(), LL5(), LL6(), LL7(),
		LL8(), LL9(), LL10(), LL11(), LL12(), LL13(), LL14(),
	}
}

// ByName returns the kernel with the given name (e.g. "LL3"), or nil.
func ByName(name string) *Kernel {
	for _, k := range All() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// LL1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
func LL1() *Kernel {
	return &Kernel{
		Name: "LL1",
		Spec: &ir.LoopSpec{
			Name: "LL1-hydro",
			Body: []ir.BodyOp{
				ir.BLoad("z10", ir.Aff("Z", 1, 10)),
				ir.BLoad("z11", ir.Aff("Z", 1, 11)),
				ir.BMul("a", "r", "z10"),
				ir.BMul("b", "t", "z11"),
				ir.BAdd("c", "a", "b"),
				ir.BLoad("y", ir.Aff("Y", 1, 0)),
				ir.BMul("d", "y", "c"),
				ir.BAdd("e", "q", "d"),
				ir.BStore(ir.Aff("X", 1, 0), "e"),
			},
			Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
		},
		Vars: map[string]int64{"q": 5, "r": 3, "t": 2},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"X": make([]int64, n),
				"Y": seq(11, n),
				"Z": seq(13, n+12),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				a["X"][k] = v["q"] + a["Y"][k]*(v["r"]*a["Z"][k+10]+v["t"]*a["Z"][k+11])
			}
			return a, nil
		},
	}
}

// LL2 — ICCG excerpt, simplified to its vectorizable gather step:
// xnew[k] = x[2k] - v[k]*x[2k+1].
func LL2() *Kernel {
	return &Kernel{
		Name: "LL2",
		Note: "ICCG inner statement on a fixed level: xnew[k] = x[2k] - v[k]*x[2k+1]",
		Spec: &ir.LoopSpec{
			Name: "LL2-iccg",
			Body: []ir.BodyOp{
				ir.BLoad("a", ir.Aff("X", 2, 0)),
				ir.BLoad("b", ir.Aff("X", 2, 1)),
				ir.BLoad("c", ir.Aff("V", 1, 0)),
				ir.BMul("d", "c", "b"),
				ir.BSub("e", "a", "d"),
				ir.BStore(ir.Aff("XNEW", 1, 0), "e"),
			},
			Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"X": seq(17, 2*n+2), "V": seq(19, n), "XNEW": make([]int64, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				a["XNEW"][k] = a["X"][2*k] - a["V"][k]*a["X"][2*k+1]
			}
			return a, nil
		},
	}
}

// LL3 — inner product: q += z[k]*x[k].
func LL3() *Kernel {
	return &Kernel{
		Name: "LL3",
		Spec: &ir.LoopSpec{
			Name: "LL3-dot",
			Body: []ir.BodyOp{
				ir.BLoad("t1", ir.Aff("Z", 1, 0)),
				ir.BLoad("t2", ir.Aff("X", 1, 0)),
				ir.BMul("t3", "t1", "t2"),
				ir.BAdd("q", "q", "t3"),
			},
			Step: 1, TripVar: "n", LiveIn: []string{"q"}, LiveOut: []string{"q"},
		},
		Vars: map[string]int64{"q": 0},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{"Z": seq(23, n), "X": seq(29, n)}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			q := v["q"]
			for k := 0; k < n; k++ {
				q += in["Z"][k] * in["X"][k]
			}
			return cloneArrays(in), map[string]int64{"q": q}
		},
	}
}

// LL4 — banded linear equations (elimination step):
// y[k] = y[k] - g[k]*x[m-k].
func LL4() *Kernel {
	const m = 200
	return &Kernel{
		Name: "LL4",
		Note: "banded elimination step with reversed operand stream: y[k] -= g[k]*x[200-k]",
		Spec: &ir.LoopSpec{
			Name: "LL4-band",
			Body: []ir.BodyOp{
				ir.BLoad("a", ir.Aff("G", 1, 0)),
				ir.BLoad("b", ir.Aff("X", -1, m)),
				ir.BMul("c", "a", "b"),
				ir.BLoad("d", ir.Aff("Y", 1, 0)),
				ir.BSub("e", "d", "c"),
				ir.BStore(ir.Aff("Y", 1, 0), "e"),
			},
			Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"G": seq(31, n), "X": seq(37, m+1), "Y": seq(41, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				a["Y"][k] -= a["G"][k] * a["X"][m-k]
			}
			return a, nil
		},
	}
}

// LL5 — tri-diagonal elimination, below diagonal:
// x[k] = z[k]*(y[k] - x[k-1]).
func LL5() *Kernel {
	return &Kernel{
		Name: "LL5",
		Spec: &ir.LoopSpec{
			Name: "LL5-tridiag",
			Body: []ir.BodyOp{
				ir.BLoad("a", ir.Aff("X", 1, -1)),
				ir.BLoad("b", ir.Aff("Y", 1, 0)),
				ir.BSub("c", "b", "a"),
				ir.BLoad("d", ir.Aff("Z", 1, 0)),
				ir.BMul("e", "d", "c"),
				ir.BStore(ir.Aff("X", 1, 0), "e"),
			},
			// k runs from 1 so x[k-1] stays in bounds.
			Start: 1, Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"X": seq(43, n+2), "Y": seq(47, n+2), "Z": seq(53, n+2),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			// The loop tests k+1 < n after each iteration, so with
			// Start=1 it covers k = 1..n-1.
			for k := 1; k < n; k++ {
				a["X"][k] = a["Z"][k] * (a["Y"][k] - a["X"][k-1])
			}
			return a, nil
		},
	}
}

// LL6 — general linear recurrence, reduced to first order:
// w = b[k]*w + u[k].
func LL6() *Kernel {
	return &Kernel{
		Name: "LL6",
		Note: "first-order linear recurrence equivalent of the general recurrence inner loop",
		Spec: &ir.LoopSpec{
			Name: "LL6-recur",
			Body: []ir.BodyOp{
				ir.BLoad("a", ir.Aff("B", 1, 0)),
				ir.BMul("m", "a", "w"),
				ir.BLoad("u", ir.Aff("U", 1, 0)),
				ir.BAdd("w", "m", "u"),
			},
			Step: 1, TripVar: "n", LiveIn: []string{"w"}, LiveOut: []string{"w"},
		},
		Vars: map[string]int64{"w": 1},
		Arrays: func(n int) map[string][]int64 {
			// Keep b in {-1, 0, 1} so the recurrence cannot overflow.
			b := seq(59, n)
			for i := range b {
				b[i] = b[i]%3 - 1
			}
			return map[string][]int64{"B": b, "U": seq(61, n)}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			w := v["w"]
			for k := 0; k < n; k++ {
				w = in["B"][k]*w + in["U"][k]
			}
			return cloneArrays(in), map[string]int64{"w": w}
		},
	}
}

// LL7 — equation of state fragment (full expression tree):
// x[k] = u[k] + r*(z[k]+r*y[k]) +
//
//	t*(u[k+3]+r*(u[k+2]+r*u[k+1]) + t*(u[k+6]+q*(u[k+5]+q*u[k+4]))).
func LL7() *Kernel {
	return &Kernel{
		Name: "LL7",
		Spec: &ir.LoopSpec{
			Name: "LL7-state",
			Body: []ir.BodyOp{
				ir.BLoad("u4", ir.Aff("U", 1, 4)),
				ir.BMul("m1", "q", "u4"),
				ir.BLoad("u5", ir.Aff("U", 1, 5)),
				ir.BAdd("a1", "u5", "m1"),
				ir.BMul("m2", "q", "a1"),
				ir.BLoad("u6", ir.Aff("U", 1, 6)),
				ir.BAdd("a2", "u6", "m2"), // A = u6 + q*(u5 + q*u4)
				ir.BLoad("u1", ir.Aff("U", 1, 1)),
				ir.BMul("m3", "r", "u1"),
				ir.BLoad("u2", ir.Aff("U", 1, 2)),
				ir.BAdd("a3", "u2", "m3"),
				ir.BMul("m4", "r", "a3"),
				ir.BLoad("u3", ir.Aff("U", 1, 3)),
				ir.BAdd("a4", "u3", "m4"), // B = u3 + r*(u2 + r*u1)
				ir.BMul("m5", "t", "a2"),
				ir.BAdd("a5", "a4", "m5"),
				ir.BMul("m6", "t", "a5"), // t*(B + t*A)
				ir.BLoad("y", ir.Aff("Y", 1, 0)),
				ir.BMul("m7", "r", "y"),
				ir.BLoad("z", ir.Aff("Z", 1, 0)),
				ir.BAdd("a6", "z", "m7"),
				ir.BMul("m8", "r", "a6"), // r*(z + r*y)
				ir.BLoad("u0", ir.Aff("U", 1, 0)),
				ir.BAdd("a7", "u0", "m8"),
				ir.BAdd("a8", "a7", "m6"),
				ir.BStore(ir.Aff("X", 1, 0), "a8"),
			},
			Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
		},
		Vars: map[string]int64{"q": 1, "r": 2, "t": 1},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"U": seq(67, n+7), "Y": seq(71, n), "Z": seq(73, n),
				"X": make([]int64, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			q, r, t := v["q"], v["r"], v["t"]
			u, y, z := in["U"], in["Y"], in["Z"]
			for k := 0; k < n; k++ {
				A := u[k+6] + q*(u[k+5]+q*u[k+4])
				B := u[k+3] + r*(u[k+2]+r*u[k+1])
				a["X"][k] = u[k] + r*(z[k]+r*y[k]) + t*(B+t*A)
			}
			return a, nil
		},
	}
}

// LL8 — ADI integration fragment, simplified to one sweep:
// du = u1[k+1] - u1[k]; u2new[k] = u2[k] + a*du; u3new[k] = u3[k] + b*du.
func LL8() *Kernel {
	return &Kernel{
		Name: "LL8",
		Note: "single ADI sweep: two outputs from a shared central difference",
		Spec: &ir.LoopSpec{
			Name: "LL8-adi",
			Body: []ir.BodyOp{
				ir.BLoad("p", ir.Aff("U1", 1, 1)),
				ir.BLoad("m", ir.Aff("U1", 1, 0)),
				ir.BSub("du", "p", "m"),
				ir.BLoad("x2", ir.Aff("U2", 1, 0)),
				ir.BMul("s2", "a", "du"),
				ir.BAdd("t2", "x2", "s2"),
				ir.BStore(ir.Aff("V2", 1, 0), "t2"),
				ir.BLoad("x3", ir.Aff("U3", 1, 0)),
				ir.BMul("s3", "b", "du"),
				ir.BAdd("t3", "x3", "s3"),
				ir.BStore(ir.Aff("V3", 1, 0), "t3"),
			},
			Step: 1, TripVar: "n", LiveIn: []string{"a", "b"},
		},
		Vars: map[string]int64{"a": 2, "b": 3},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"U1": seq(79, n+1), "U2": seq(83, n), "U3": seq(89, n),
				"V2": make([]int64, n), "V3": make([]int64, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				du := in["U1"][k+1] - in["U1"][k]
				a["V2"][k] = in["U2"][k] + v["a"]*du
				a["V3"][k] = in["U3"][k] + v["b"]*du
			}
			return a, nil
		},
	}
}

// LL9 — integrate predictors: px[k] = b + c1*p1[k] + c2*p2[k] + c3*p3[k]
// + c4*p4[k] + c5*p5[k] + c6*p6[k].
func LL9() *Kernel {
	return &Kernel{
		Name: "LL9",
		Note: "six-term predictor polynomial (the original has ten terms)",
		Spec: &ir.LoopSpec{
			Name: "LL9-predict",
			Body: []ir.BodyOp{
				ir.BLoad("p1", ir.Aff("P1", 1, 0)),
				ir.BMul("m1", "c1", "p1"),
				ir.BAdd("s1", "b0", "m1"),
				ir.BLoad("p2", ir.Aff("P2", 1, 0)),
				ir.BMul("m2", "c2", "p2"),
				ir.BAdd("s2", "s1", "m2"),
				ir.BLoad("p3", ir.Aff("P3", 1, 0)),
				ir.BMul("m3", "c3", "p3"),
				ir.BAdd("s3", "s2", "m3"),
				ir.BLoad("p4", ir.Aff("P4", 1, 0)),
				ir.BMul("m4", "c4", "p4"),
				ir.BAdd("s4", "s3", "m4"),
				ir.BLoad("p5", ir.Aff("P5", 1, 0)),
				ir.BMul("m5", "c5", "p5"),
				ir.BAdd("s5", "s4", "m5"),
				ir.BLoad("p6", ir.Aff("P6", 1, 0)),
				ir.BMul("m6", "c6", "p6"),
				ir.BAdd("s6", "s5", "m6"),
				ir.BStore(ir.Aff("PX", 1, 0), "s6"),
			},
			Step: 1, TripVar: "n",
			LiveIn: []string{"b0", "c1", "c2", "c3", "c4", "c5", "c6"},
		},
		Vars: map[string]int64{"b0": 1, "c1": 1, "c2": 2, "c3": 1, "c4": 3, "c5": 1, "c6": 2},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"P1": seq(97, n), "P2": seq(101, n), "P3": seq(103, n),
				"P4": seq(107, n), "P5": seq(109, n), "P6": seq(113, n),
				"PX": make([]int64, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				a["PX"][k] = v["b0"] + v["c1"]*in["P1"][k] + v["c2"]*in["P2"][k] +
					v["c3"]*in["P3"][k] + v["c4"]*in["P4"][k] +
					v["c5"]*in["P5"][k] + v["c6"]*in["P6"][k]
			}
			return a, nil
		},
	}
}

// LL10 — difference predictors: a cascade of first differences through
// four history arrays (the original uses ten):
// ar = cx[k]; for j: br = ar - pxj[k]; pxj[k] = ar; ar = br.
func LL10() *Kernel {
	return &Kernel{
		Name: "LL10",
		Note: "four difference stages (the original has ten)",
		Spec: &ir.LoopSpec{
			Name: "LL10-diff",
			Body: []ir.BodyOp{
				ir.BLoad("a0", ir.Aff("CX", 1, 0)),
				ir.BLoad("h1", ir.Aff("PX1", 1, 0)),
				ir.BSub("a1", "a0", "h1"),
				ir.BStore(ir.Aff("PX1", 1, 0), "a0"),
				ir.BLoad("h2", ir.Aff("PX2", 1, 0)),
				ir.BSub("a2", "a1", "h2"),
				ir.BStore(ir.Aff("PX2", 1, 0), "a1"),
				ir.BLoad("h3", ir.Aff("PX3", 1, 0)),
				ir.BSub("a3", "a2", "h3"),
				ir.BStore(ir.Aff("PX3", 1, 0), "a2"),
				ir.BLoad("h4", ir.Aff("PX4", 1, 0)),
				ir.BSub("a4", "a3", "h4"),
				ir.BStore(ir.Aff("PX4", 1, 0), "a3"),
				ir.BStore(ir.Aff("DX", 1, 0), "a4"),
			},
			Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{
				"CX": seq(127, n), "PX1": seq(131, n), "PX2": seq(137, n),
				"PX3": seq(139, n), "PX4": seq(149, n), "DX": make([]int64, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				ar := in["CX"][k]
				for _, px := range []string{"PX1", "PX2", "PX3", "PX4"} {
					br := ar - a[px][k]
					a[px][k] = ar
					ar = br
				}
				a["DX"][k] = ar
			}
			return a, nil
		},
	}
}

// LL11 — first sum (prefix sum): x[k] = x[k-1] + y[k].
func LL11() *Kernel {
	return &Kernel{
		Name: "LL11",
		Spec: &ir.LoopSpec{
			Name: "LL11-psum",
			Body: []ir.BodyOp{
				ir.BLoad("a", ir.Aff("X", 1, -1)),
				ir.BLoad("b", ir.Aff("Y", 1, 0)),
				ir.BAdd("c", "a", "b"),
				ir.BStore(ir.Aff("X", 1, 0), "c"),
			},
			Start: 1, Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{"X": seq(151, n+2), "Y": seq(157, n+2)}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			// Start=1: the loop covers k = 1..n-1.
			for k := 1; k < n; k++ {
				a["X"][k] = a["X"][k-1] + a["Y"][k]
			}
			return a, nil
		},
	}
}

// LL12 — first difference: x[k] = y[k+1] - y[k].
func LL12() *Kernel {
	return &Kernel{
		Name: "LL12",
		Spec: &ir.LoopSpec{
			Name: "LL12-fdiff",
			Body: []ir.BodyOp{
				ir.BLoad("a", ir.Aff("Y", 1, 1)),
				ir.BLoad("b", ir.Aff("Y", 1, 0)),
				ir.BSub("c", "a", "b"),
				ir.BStore(ir.Aff("X", 1, 0), "c"),
			},
			Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			return map[string][]int64{"Y": seq(163, n+1), "X": make([]int64, n)}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				a["X"][k] = in["Y"][k+1] - in["Y"][k]
			}
			return a, nil
		},
	}
}

// LL13 — 2-D particle in cell, reduced to its scatter-accumulate core:
// i = ix[k]; p[i] = p[i] + 1; y[k] = e[k]*p[i'] with indirect reads and
// an indirect store that serializes iterations under conservative
// dependence analysis — exactly what caps the paper's LL13 speedup.
func LL13() *Kernel {
	return &Kernel{
		Name: "LL13",
		Note: "particle scatter-accumulate with indirect subscripts (conservatively serialized)",
		Spec: &ir.LoopSpec{
			Name: "LL13-pic2d",
			Body: []ir.BodyOp{
				ir.BLoad("i1", ir.Aff("IX", 1, 0)),
				ir.BLoad("p1", ir.Ind("P", "i1", 0)),
				ir.BAddI("p2", "p1", 1),
				ir.BStore(ir.Ind("P", "i1", 0), "p2"),
				ir.BLoad("e", ir.Aff("E", 1, 0)),
				ir.BMul("yv", "e", "p2"),
				ir.BStore(ir.Aff("Y", 1, 0), "yv"),
			},
			Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			ix := seq(167, n)
			for i := range ix {
				ix[i] = ix[i] % 8 // particles hash into 8 cells
			}
			return map[string][]int64{
				"IX": ix, "P": seq(173, 8), "E": seq(179, n), "Y": make([]int64, n),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				i := a["IX"][k]
				a["P"][i]++
				a["Y"][k] = a["E"][k] * a["P"][i]
			}
			return a, nil
		},
	}
}

// LL14 — 1-D particle in cell, reduced to its gather/push core:
// i = ix[k]; v = vx[k] + e[i]; vx[k] = v; grd[i] = grd[i] + v.
func LL14() *Kernel {
	return &Kernel{
		Name: "LL14",
		Note: "particle gather/push with one indirect accumulate",
		Spec: &ir.LoopSpec{
			Name: "LL14-pic1d",
			Body: []ir.BodyOp{
				ir.BLoad("i1", ir.Aff("IX", 1, 0)),
				ir.BLoad("vx", ir.Aff("VX", 1, 0)),
				ir.BLoad("e", ir.Ind("E", "i1", 0)),
				ir.BAdd("v", "vx", "e"),
				ir.BStore(ir.Aff("VX", 1, 0), "v"),
				ir.BLoad("g", ir.Ind("GRD", "i1", 0)),
				ir.BAdd("g2", "g", "v"),
				ir.BStore(ir.Ind("GRD", "i1", 0), "g2"),
			},
			Step: 1, TripVar: "n",
		},
		Vars: map[string]int64{},
		Arrays: func(n int) map[string][]int64 {
			ix := seq(181, n)
			for i := range ix {
				ix[i] = ix[i] % 8
			}
			return map[string][]int64{
				"IX": ix, "VX": seq(191, n), "E": seq(193, 8), "GRD": seq(197, 8),
			}
		},
		Native: func(n int, v map[string]int64, in map[string][]int64) (map[string][]int64, map[string]int64) {
			a := cloneArrays(in)
			for k := 0; k < n; k++ {
				i := a["IX"][k]
				vv := a["VX"][k] + a["E"][i]
				a["VX"][k] = vv
				a["GRD"][i] += vv
			}
			return a, nil
		},
	}
}
