package livermore

import (
	"fmt"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
)

// TestNativeAgreement executes every kernel's unwound IR in the
// simulator (unscheduled, unoptimized) and demands bit-identical arrays
// and live-out scalars against the native Go implementation, for both a
// full run and an early exit. This validates the hand translation of
// each Livermore kernel.
func TestNativeAgreement(t *testing.T) {
	const U = 10
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			uw, err := pipeline.Unwind(k.Spec, U)
			if err != nil {
				t.Fatal(err)
			}
			g := uw.BuildGraph()
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, iters := range []int{3, U} {
				trip := k.Spec.Start + int64(iters)
				vars := map[string]int64{}
				for v, val := range k.Vars {
					vars[v] = val
				}
				vars[k.Spec.TripVar] = trip
				arrays := k.Arrays(U + 4)
				res, err := sim.Run(g, uw.InitState(vars, arrays), 100000)
				if err != nil {
					t.Fatalf("iters=%d: sim: %v", iters, err)
				}
				wantArrays, wantScalars := k.Native(int(trip), k.Vars, arrays)
				for name, want := range wantArrays {
					got := res.State.ReadArray(uw.Alloc.Array(name), len(want))
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("iters=%d: %s[%d] = %d, want %d", iters, name, i, got[i], want[i])
						}
					}
				}
				for v, want := range wantScalars {
					if got := res.State.Reg(uw.LiveOut[v]); got != want {
						t.Fatalf("iters=%d: %s = %d, want %d", iters, v, got, want)
					}
				}
			}
		})
	}
}

// TestSpecsValidate checks basic authoring invariants on all kernels.
func TestSpecsValidate(t *testing.T) {
	seen := map[string]bool{}
	for i, k := range All() {
		if err := k.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if want := fmt.Sprintf("LL%d", i+1); k.Name != want {
			t.Errorf("kernel %d named %s, want %s", i, k.Name, want)
		}
		if seen[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
		if ByName(k.Name) == nil {
			t.Errorf("ByName(%s) = nil", k.Name)
		}
	}
	if ByName("LL99") != nil {
		t.Error("ByName should return nil for unknown kernels")
	}
}
