// Package lru implements the minimal thread-safe LRU map shared by the
// scheduling caches (batch results, POST phase-1 memo).
package lru

import (
	"container/list"
	"sync"
)

type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is a fixed-capacity LRU map safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[K]*list.Element
}

// New returns a cache holding up to capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get returns the value under key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores value under key (overwriting any existing entry), evicting
// the least recently used entry when over capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	c.evict()
}

// GetOrPut returns the existing value under key if present (marking it
// most recently used), otherwise inserts val and returns it. Used by
// compute-on-miss callers that want the first stored value to win when
// two goroutines computed the same key concurrently.
func (c *Cache[K, V]) GetOrPut(key K, val V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	c.evict()
	return val
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// evict drops least-recently-used entries down to capacity; callers
// hold the lock.
func (c *Cache[K, V]) evict() {
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*entry[K, V]).key)
	}
}
