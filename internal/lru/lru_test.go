package lru

import "testing"

func TestGetPutEvict(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Put("a", 10) // overwrite
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("overwrite lost: %d", v)
	}
}

func TestGetOrPutFirstWins(t *testing.T) {
	c := New[string, int](4)
	if got := c.GetOrPut("k", 1); got != 1 {
		t.Fatalf("first GetOrPut = %d", got)
	}
	if got := c.GetOrPut("k", 2); got != 1 {
		t.Errorf("second GetOrPut = %d, want first value 1", got)
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	if _, ok := c.Get(1); !ok {
		t.Error("capacity-0 cache unusable")
	}
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}
