// Package faults is a small injectable failure-point registry: named
// sites in production code call Check/CheckCtx/Mutate, which are no-ops
// until a test or chaos harness enables a Plan — a seeded deterministic
// schedule of fault rules (error on the Nth hit, every-Nth, per-hit
// probability, latency injection, panics, payload corruption).
//
// Cost when disabled: one atomic pointer load per site hit — no
// allocation, no lock — so sites can sit on paths that care about
// performance. The scheduler's inner loops carry no sites at all; only
// the batch engine's compute path and the disk store's open/read/write
// paths are instrumented.
//
// Enabling a plan is process-wide. Tests that enable one must Disable
// it before finishing (t.Cleanup) and must not run in parallel with
// tests that expect a fault-free process.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one instrumented failure point.
type Site string

// The instrumented sites. A Rule naming any other site is legal (the
// registry is open) but will never fire until code calls hooks with
// that name.
const (
	// DiskOpen guards store.OpenDisk's directory creation.
	DiskOpen Site = "store.disk.open"
	// DiskRead guards the disk tier's entry reads.
	DiskRead Site = "store.disk.read"
	// DiskWrite guards the disk tier's entry writes; Corrupt rules here
	// produce torn entries that the read-side verification must reject.
	DiskWrite Site = "store.disk.write"
	// BatchCompute guards the batch worker's compute path, inside the
	// panic-recovery perimeter — Panic rules here exercise quarantine.
	BatchCompute Site = "batch.compute"
)

// Rule is one injected failure. A rule fires on a hit when ANY enabled
// trigger selects it (and Limit is not exhausted); effects then apply
// in order: Delay, Panic, Corrupt/Err.
type Rule struct {
	Site Site

	// Nth fires on exactly the Nth hit at the site (1-based). 0 disables.
	Nth int
	// Every fires on every Every-th hit at the site. 0 disables.
	Every int
	// Prob fires with this probability per hit, drawn from the plan's
	// seeded generator. 0 disables.
	Prob float64
	// Limit caps the rule's total fires; 0 means unlimited.
	Limit int

	// Err is returned by Check/CheckCtx/Mutate when the rule fires.
	Err error
	// Panic, when non-empty, makes the hook panic instead of returning —
	// the injected value identifies itself as a fault.
	Panic string
	// Corrupt, at data sites (Mutate), mutilates the payload instead of
	// failing the operation: the write "succeeds" torn.
	Corrupt bool
	// Delay sleeps before the effect (pure latency when no other effect
	// is set). CheckCtx waits ctx-aware and returns ctx.Err() early.
	Delay time.Duration
}

type ruleState struct {
	Rule
	fires int
}

// Plan is one seeded, deterministic fault schedule. Trigger decisions
// (hit counting, probability draws) derive from the seed; under
// concurrent hits the per-hit ordering follows the goroutine
// interleaving, so strict replay needs single-threaded traffic or
// Nth/Every triggers.
type Plan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	bySite map[Site][]*ruleState
	hits   map[Site]uint64
	fires  map[Site]uint64
}

// NewPlan builds a plan from the rules, with all probabilistic triggers
// drawn from a generator seeded by seed.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{
		rng:    rand.New(rand.NewSource(seed)),
		bySite: make(map[Site][]*ruleState),
		hits:   make(map[Site]uint64),
		fires:  make(map[Site]uint64),
	}
	for _, r := range rules {
		p.bySite[r.Site] = append(p.bySite[r.Site], &ruleState{Rule: r})
	}
	return p
}

// Hits returns how many times the site has been reached.
func (p *Plan) Hits(site Site) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[site]
}

// Fires returns how many injections actually triggered at the site.
func (p *Plan) Fires(site Site) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires[site]
}

// TotalFires returns the number of injections across all sites.
func (p *Plan) TotalFires() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, f := range p.fires {
		n += f
	}
	return n
}

// active is the process-wide enabled plan; nil means every hook is a
// no-op after a single atomic load.
var active atomic.Pointer[Plan]

// Enable installs the plan process-wide. Passing nil disables.
func Enable(p *Plan) {
	if p == nil {
		active.Store(nil)
		return
	}
	active.Store(p)
}

// Disable removes the active plan; all hooks return to no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Check consults the active plan at site: nil when disabled or no rule
// fires, the rule's error otherwise. Panic rules panic here.
func Check(site Site) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	_, err := p.apply(context.Background(), site, nil)
	return err
}

// CheckCtx is Check with ctx-aware latency injection: a Delay rule
// waits on a timer or ctx.Done(), whichever comes first, returning
// ctx.Err() when cancellation wins — so injected stalls cooperate with
// per-job timeouts instead of parking workers past them.
func CheckCtx(ctx context.Context, site Site) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	_, err := p.apply(ctx, site, nil)
	return err
}

// Mutate is the data-site hook: it returns the payload to actually use
// (possibly mutilated by a Corrupt rule) or an error. When disabled it
// returns data unchanged.
func Mutate(site Site, data []byte) ([]byte, error) {
	p := active.Load()
	if p == nil {
		return data, nil
	}
	return p.apply(context.Background(), site, data)
}

// apply counts the hit, selects at most one firing rule, and applies
// its effects.
func (p *Plan) apply(ctx context.Context, site Site, data []byte) ([]byte, error) {
	p.mu.Lock()
	p.hits[site]++
	n := p.hits[site]
	var fired *Rule
	for _, rs := range p.bySite[site] {
		if rs.Limit > 0 && rs.fires >= rs.Limit {
			continue
		}
		hit := (rs.Nth > 0 && n == uint64(rs.Nth)) ||
			(rs.Every > 0 && n%uint64(rs.Every) == 0) ||
			(rs.Prob > 0 && p.rng.Float64() < rs.Prob)
		if hit {
			rs.fires++
			p.fires[site]++
			fired = &rs.Rule
			break
		}
	}
	p.mu.Unlock()
	if fired == nil {
		return data, nil
	}
	if fired.Delay > 0 {
		t := time.NewTimer(fired.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return data, ctx.Err()
		}
	}
	if fired.Panic != "" {
		panic(fmt.Sprintf("faults: injected panic at %s: %s", site, fired.Panic))
	}
	if fired.Corrupt && data != nil {
		return mutilate(data), fired.Err
	}
	return data, fired.Err
}

// mutilate simulates a torn write: the payload's first half survives,
// followed by garbage — never valid JSON, so read-side verification
// must reject it.
func mutilate(data []byte) []byte {
	out := append([]byte(nil), data[:len(data)/2]...)
	return append(out, "\x00torn-write"...)
}
