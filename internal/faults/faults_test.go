package faults_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

const site = faults.Site("test.site")

var errInjected = errors.New("injected")

func TestDisabledHooksAreNoOps(t *testing.T) {
	faults.Disable()
	if faults.Enabled() {
		t.Fatal("Enabled() true with no plan")
	}
	if err := faults.Check(site); err != nil {
		t.Fatalf("disabled Check returned %v", err)
	}
	data := []byte("payload")
	got, err := faults.Mutate(site, data)
	if err != nil || &got[0] != &data[0] {
		t.Fatalf("disabled Mutate did not pass the payload through unchanged: %v %v", got, err)
	}
}

func TestNthAndLimitTriggers(t *testing.T) {
	p := faults.NewPlan(1,
		faults.Rule{Site: site, Nth: 3, Err: errInjected},
	)
	faults.Enable(p)
	t.Cleanup(faults.Disable)
	for i := 1; i <= 5; i++ {
		err := faults.Check(site)
		if (i == 3) != (err != nil) {
			t.Errorf("hit %d: err = %v, want fire exactly on the 3rd", i, err)
		}
	}
	if p.Hits(site) != 5 || p.Fires(site) != 1 {
		t.Errorf("hits=%d fires=%d, want 5/1", p.Hits(site), p.Fires(site))
	}
}

func TestEveryWithLimit(t *testing.T) {
	p := faults.NewPlan(1,
		faults.Rule{Site: site, Every: 2, Limit: 2, Err: errInjected},
	)
	faults.Enable(p)
	t.Cleanup(faults.Disable)
	var fired []int
	for i := 1; i <= 8; i++ {
		if faults.Check(site) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Errorf("fired on hits %v, want [2 4] (every 2nd, capped at 2)", fired)
	}
}

// TestProbIsSeededDeterministic runs the same probabilistic plan twice
// with one seed: the fire pattern must be identical — the point of
// seeded plans is replayable chaos.
func TestProbIsSeededDeterministic(t *testing.T) {
	pattern := func() []bool {
		p := faults.NewPlan(42, faults.Rule{Site: site, Prob: 0.3, Err: errInjected})
		faults.Enable(p)
		defer faults.Disable()
		var fires []bool
		for i := 0; i < 64; i++ {
			fires = append(fires, faults.Check(site) != nil)
		}
		return fires
	}
	a, b := pattern(), pattern()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: run A fired=%v, run B fired=%v — not deterministic", i, a[i], b[i])
		}
		some = some || a[i]
	}
	if !some {
		t.Error("p=0.3 over 64 hits never fired")
	}
}

func TestCorruptMutatesPayload(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: site, Nth: 1, Corrupt: true})
	faults.Enable(p)
	t.Cleanup(faults.Disable)
	data := []byte(`{"schema":1,"key":"k","metrics":{}}`)
	got, err := faults.Mutate(site, data)
	if err != nil {
		t.Fatalf("corrupt rule returned an error: %v", err)
	}
	if string(got) == string(data) {
		t.Error("corrupt rule left the payload intact")
	}
	// The next write is untouched.
	got, _ = faults.Mutate(site, data)
	if string(got) != string(data) {
		t.Error("one-shot corrupt rule kept firing")
	}
}

func TestPanicRuleIdentifiesItself(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: site, Nth: 1, Panic: "poisoned cell"})
	faults.Enable(p)
	t.Cleanup(faults.Disable)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic rule did not panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "poisoned cell") || !strings.Contains(s, string(site)) {
			t.Errorf("panic value %v does not identify the fault", v)
		}
	}()
	faults.Check(site)
}

func TestCheckCtxDelayObservesCancellation(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: site, Nth: 1, Delay: time.Hour})
	faults.Enable(p)
	t.Cleanup(faults.Disable)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := faults.CheckCtx(ctx, site)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("stalled CheckCtx returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("CheckCtx blocked %v past its context", elapsed)
	}
}
