// Package testutil holds helpers shared by the repository's test
// suites. It must only be imported from _test files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not returned to the baseline shortly
// after it finishes — the shared guard the batch, store, and harness
// suites use to prove cancelled, timed-out, panicking, or fault-injected
// work leaves nothing running behind it.
//
// The cleanup polls because the runtime needs a moment to retire
// goroutines that have already been waited on. On failure it dumps all
// stacks, so the leaked goroutine is identifiable from the test log.
func LeakCheck(t testing.TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		n := runtime.NumGoroutine()
		for n > baseline && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > baseline {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("%d goroutines outlive the test (baseline %d):\n%s", n, baseline, buf)
		}
	})
}
