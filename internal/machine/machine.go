// Package machine models the VLIW resource constraints the schedulers
// must respect: how many operations and how many conditional jumps fit in
// one instruction.
//
// The paper evaluates machines with 2, 4 and 8 universal functional
// units. Every operation in an instruction tree occupies one unit
// (results are computed on all paths under IBM VLIW semantics, so even
// path-conditional operations consume a unit). Conditional jumps occupy
// branch slots instead; with the default single branch slot per
// instruction the machine can retire at most one loop iteration per
// cycle, which is the throughput ceiling section 1 of the paper ascribes
// to unconstrained pipelining techniques.
package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Unlimited marks a resource with no limit.
const Unlimited = -1

// Machine is a VLIW resource model. The zero value is unusable; use New
// or Infinite.
type Machine struct {
	// OpSlots is the number of universal functional units per
	// instruction, or Unlimited.
	OpSlots int
	// BranchSlots is the number of conditional jumps allowed per
	// instruction, or Unlimited.
	BranchSlots int
}

// New returns a machine with fus universal functional units and a single
// branch slot per instruction.
func New(fus int) Machine {
	if fus <= 0 {
		panic("machine.New: non-positive functional unit count")
	}
	return Machine{OpSlots: fus, BranchSlots: 1}
}

// Infinite returns a machine with unlimited functional units and a single
// branch slot per instruction. This is the "unconstrained" configuration
// POST schedules against before applying resource constraints.
func Infinite() Machine {
	return Machine{OpSlots: Unlimited, BranchSlots: 1}
}

// WithBranchSlots returns a copy of m with the given branch slot count
// (Unlimited for a full multiway-branching tree machine).
func (m Machine) WithBranchSlots(n int) Machine {
	m.BranchSlots = n
	return m
}

// FitsOps reports whether n operations fit in one instruction.
func (m Machine) FitsOps(n int) bool {
	return m.OpSlots == Unlimited || n <= m.OpSlots
}

// FitsBranches reports whether n conditional jumps fit in one instruction.
func (m Machine) FitsBranches(n int) bool {
	return m.BranchSlots == Unlimited || n <= m.BranchSlots
}

// InfiniteOps reports whether the machine has unlimited functional units.
func (m Machine) InfiniteOps() bool { return m.OpSlots == Unlimited }

// ParseFUs parses a comma-separated list of functional-unit counts
// ("2,4,8"), the format the CLI -fus flags accept. Every count must be
// a positive integer.
func ParseFUs(s string) ([]int, error) {
	var fus []int
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || f < 1 {
			return nil, fmt.Errorf("bad FU count %q", part)
		}
		fus = append(fus, f)
	}
	return fus, nil
}

// Fingerprint returns a canonical key for the machine configuration,
// suitable for composing scheduling-result cache keys. strconv-built
// (it runs in the per-cell cache-key path) but byte-identical to the
// fmt encoding existing caches were keyed by.
func (m Machine) Fingerprint() string {
	return "m|ops=" + strconv.Itoa(m.OpSlots) + "|br=" + strconv.Itoa(m.BranchSlots)
}

// String describes the machine.
func (m Machine) String() string {
	ops := "inf"
	if m.OpSlots != Unlimited {
		ops = fmt.Sprint(m.OpSlots)
	}
	brs := "inf"
	if m.BranchSlots != Unlimited {
		brs = fmt.Sprint(m.BranchSlots)
	}
	return fmt.Sprintf("machine(fus=%s, branches=%s)", ops, brs)
}
