package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	m := New(4)
	if m.OpSlots != 4 || m.BranchSlots != 1 {
		t.Fatalf("New(4) = %+v", m)
	}
	if !m.FitsOps(4) || m.FitsOps(5) {
		t.Error("FitsOps wrong")
	}
	if !m.FitsBranches(1) || m.FitsBranches(2) {
		t.Error("FitsBranches wrong")
	}
	if m.InfiniteOps() {
		t.Error("finite machine reports infinite")
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0)
}

func TestInfinite(t *testing.T) {
	m := Infinite()
	if !m.InfiniteOps() {
		t.Fatal("not infinite")
	}
	f := func(n uint16) bool { return m.FitsOps(int(n)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !m.FitsBranches(1) || m.FitsBranches(2) {
		t.Error("infinite machine still has one branch slot")
	}
}

func TestWithBranchSlots(t *testing.T) {
	m := New(2).WithBranchSlots(3)
	if !m.FitsBranches(3) || m.FitsBranches(4) {
		t.Error("WithBranchSlots wrong")
	}
	u := New(2).WithBranchSlots(Unlimited)
	if !u.FitsBranches(1000) {
		t.Error("unlimited branch slots wrong")
	}
}

func TestString(t *testing.T) {
	if s := New(8).String(); !strings.Contains(s, "fus=8") || !strings.Contains(s, "branches=1") {
		t.Errorf("String = %q", s)
	}
	if s := Infinite().String(); !strings.Contains(s, "fus=inf") {
		t.Errorf("String = %q", s)
	}
}
