// Package core implements the paper's primary contribution: GRiP —
// Global Resource-constrained Percolation scheduling (sections 3.2–3.3).
//
// GRiP schedules each node of the program graph in a top-down traversal,
// filling its resources by migrating the highest-priority operations from
// the subgraph it dominates (the Moveable-ops set). Unlike the
// Unifiable-ops technique it approximates, GRiP lets operations move
// partway and stay in intermediate nodes — compaction of the whole
// dominated subgraph happens implicitly — at the cost of possible
// resource barriers, which the scheduler counts so the paper's "barriers
// are rare in practice" claim can be checked empirically.
//
// When used for Perfect Pipelining, the Gapless-move test (section 3.3)
// plus the three scheduling rules guarantee that no permanent
// inter-iteration gaps form, which makes the pipeline converge.
package core

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/ps"
)

// Options control a GRiP scheduling session.
type Options struct {
	// GapPrevention enables the section 3.3 Gapless-move test and
	// suspension rules. Required for Perfect Pipelining convergence;
	// harmless (slightly restrictive) elsewhere.
	GapPrevention bool

	// EmptyPrelude inserts this many empty instructions before the
	// program entry, the paper's mitigation that makes temporary
	// resource barriers impossible (section 3.2). Zero disables it, as
	// the paper recommends in practice.
	EmptyPrelude int

	// Renaming allows the renaming variant of move-op when a plain move
	// is blocked by an output or move-past-read conflict. The SSA-named
	// unwound loops never need it; general programs may.
	Renaming bool

	// MaxSteps bounds total transformation steps as a safety valve.
	MaxSteps int

	// TraceNode, when set, receives each node as its scheduling starts
	// together with the current Moveable-ops set in ranked order (used
	// to print Figure 11-style traces).
	TraceNode func(n *graph.Node, moveable []*ir.Op)

	// CrossCheck runs the retained reference implementation of the
	// Moveable-ops scan (a full rescan of the ranked list) next to the
	// incremental candidate structure and fails the schedule on the
	// first divergence — picks, the rule-3 suspension bound, and the
	// structure's internal invariants are all compared per pick. A
	// testing hook: it turns every pick into an O(n) recheck.
	CrossCheck bool
}

// DefaultMaxSteps bounds transformation work for typical loop sizes.
const DefaultMaxSteps = 20_000_000

// Stats reports what happened during scheduling.
type Stats struct {
	NodesScheduled   int
	Moves            int // successful upward steps (all kinds)
	ArrivedAtTarget  int // migrations that reached the scheduled node
	PartialMoves     int // migrations that stopped early but made progress
	ResourceBarriers int // moves blocked by a full intermediate node
	BarrierOps       int // distinct ops that ever hit a resource barrier
	Suspensions      int // gap-prevention suspensions (rule 1)
	Unsuspensions    int // rule 2 wake-ups
	GaplessRejects   int // moves rejected by the Gapless-move test
	Renames          int
}

// The scheduler's per-op state lives in bitsets and slices addressed by
// the dense op index (ir.Op.Index, assigned by deps.Build), so the
// Figure 10 while-loop's per-candidate checks are O(1) loads with zero
// steady-state allocation — the paper's efficiency claim depends on the
// Moveable-ops bookkeeping being trivially cheap.
type scheduler struct {
	goctx context.Context // cancellation/deadline signal; checked at checkpoints
	ctx   *ps.Ctx
	pri   *deps.Priority
	opts  Options

	pool   []*ir.Op   // all schedulable ops, highest priority first; static after newScheduler
	byIter [][]*ir.Op // ops per iteration, at index op.Iter+1 (NoIter first)

	// The incremental candidate structure (see candidates.go): class
	// selectors over rank space plus the per-op flags that gate
	// membership, maintained at every eligibility transition so a pick
	// is a selector lookup instead of a rescan of pool.
	rankOf   []int32     // op index -> rank in pool, -1 when absent
	opSel    bitset.Tree // eligible non-branch candidates, by rank
	brSel    bitset.Tree // eligible branch candidates, by rank
	pruned   bitset.Set  // permanently ineligible: unmoveable or at/above the frontier
	triedGen []*ir.Op    // ops tried in the current generation, restored on bumpGen

	// maxSuspPos is the rule-3 bound — the largest home position over
	// the suspended ops — maintained on suspension and reset on
	// unsuspension instead of rescanned per pick (valid while suspList
	// is non-empty; see suspendOp for why this is exact).
	maxSuspPos float64

	// ruleCurOp/ruleCurBr resume the pick scan past candidates already
	// skipped by rule 3 in the current suspension epoch. Sound because
	// while suspensions exist nothing can re-qualify a skipped
	// candidate: the graph cannot mutate (rule 2 clears all suspensions
	// on the first successful move, so positions are frozen), the
	// generation cannot advance, the frontier is fixed, and the rule-3
	// bound only grows. Reset whenever the generation bumps.
	ruleCurOp int
	ruleCurBr int

	// refRanked, under Options.CrossCheck, is the retained reference
	// scan's own compacting copy of the ranked list (chooseOpReference).
	refRanked []*ir.Op

	// prevHook is the graph's op-home hook displaced by this run's
	// candidate maintenance, restored when Schedule returns.
	prevHook func(*ir.Op)

	unmoveable bitset.Set
	suspended  bitset.Set
	suspList   []*ir.Op // the suspended ops, in suspension order
	stats      Stats
	steps      int
	barrierSet bitset.Set
	barrierOps int

	// tried[i] holds the generation op i was last tried in; a fresh
	// generation invalidates every mark at once (no per-node map).
	tried []int

	// gen is the retry generation: it advances on events that can
	// unblock previously tried operations (an arrival at the scheduled
	// node, a rule-2 unsuspension, a move out of a full node, any
	// branch move). A tried op leaves the candidate selectors until the
	// generation advances (bumpGen restores it), which keeps the Figure
	// 10 while-loop from re-probing the whole Moveable set after every
	// unrelated move.
	gen int

	// Gapless-move machinery (section 3.3), all stamped by the graph
	// mutation counter so one committed move invalidates everything at
	// once: per-iteration max-Pos frontiers (condition 3 in O(1)
	// amortized), memoized gapless verdicts by op index (from is always
	// the op's home node), and memoized canFill probe results by
	// (x, leaving) pair.
	// fillMemo rows are allocated lazily per x (most ops are never the
	// filler candidate of a canFill probe); a row spans the dense index
	// space. Slice-backed rather than map-backed: the condition-4
	// recursion hits this memo hard enough that map hashing showed up in
	// the table1 profile. Rows are carved from memoChunk (bump-pointer,
	// geometric refill) so a commit-heavy schedule pays a handful of
	// allocations for them, not one per probed op.
	frontiers []iterFrontier
	gapMemo   []memoEntry
	fillMemo  [][]memoEntry
	memoChunk []memoEntry
}

// allocMemoRow carves a zeroed n-entry fillMemo row from the memo
// chunk arena.
func (s *scheduler) allocMemoRow(n int) []memoEntry {
	if len(s.memoChunk) < n {
		c := 8 * n
		if c < 4096 {
			c = 4096
		}
		s.memoChunk = make([]memoEntry, c)
	}
	row := s.memoChunk[:n:n]
	s.memoChunk = s.memoChunk[n:]
	return row
}

// Schedule runs GRiP over pctx.G. ops must contain every schedulable
// operation (branches included); pri ranks them per section 3.4.
//
// ctx bounds the computation: the step loop checks it at cheap
// checkpoints (per scheduled node and per chosen operation) and returns
// ctx.Err() — wrapped so errors.Is sees context.Canceled or
// context.DeadlineExceeded — abandoning the partial schedule. This is
// what lets per-job timeouts in the batch engine stop the work instead
// of abandoning the goroutine.
func Schedule(ctx context.Context, pctx *ps.Ctx, ops []*ir.Op, pri *deps.Priority, opts Options) (Stats, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	s := newScheduler(ctx, pctx, ops, pri, opts)
	// newScheduler registered the candidate structure's op-home hook on
	// the graph; restore the previous one on return (graphs outlive a
	// scheduling run).
	defer pctx.G.SetOpHomeHook(s.prevHook)
	if opts.CrossCheck {
		// Extend the cross-check into ps: run the retained reference
		// dependence scans next to every summary-filtered legality test
		// for the duration of this schedule.
		prev := pctx.CrossCheck
		pctx.CrossCheck = true
		defer func() { pctx.CrossCheck = prev }()
	}

	for i := 0; i < opts.EmptyPrelude; i++ {
		pctx.G.InsertBefore(pctx.G.Entry)
	}

	g := pctx.G
	for n := g.Entry; n != nil; {
		if n.Drain {
			break // drains hang off the main chain and are never scheduled
		}
		if err := ctx.Err(); err != nil {
			return s.stats, fmt.Errorf("core: schedule interrupted: %w", err)
		}
		if err := s.scheduleNode(n); err != nil {
			return s.stats, err
		}
		s.stats.NodesScheduled++
		// Suspensions are positional; restart them for the next node.
		s.clearSuspensions()
		n = n.NonDrainSucc()
	}

	// Remove any empty rows left on the main chain (unfilled prelude
	// slots, drained tails). An empty instruction is a wasted cycle.
	for _, n := range g.MainChain() {
		if g.Has(n) && !n.Drain {
			g.SpliceOutEmpty(n)
		}
	}

	s.stats.Moves = pctx.Moves + pctx.Hoists + pctx.CJMoves
	s.stats.Renames = pctx.Renames
	s.stats.BarrierOps = s.barrierOps
	return s.stats, nil
}

// newScheduler sizes every index-addressed structure and ranks the
// schedulable operations.
func newScheduler(ctx context.Context, pctx *ps.Ctx, ops []*ir.Op, pri *deps.Priority, opts Options) *scheduler {
	n := ensureIndices(ops)
	s := &scheduler{
		goctx:      ctx,
		ctx:        pctx,
		pri:        pri,
		opts:       opts,
		unmoveable: bitset.New(n),
		suspended:  bitset.New(n),
		barrierSet: bitset.New(n),
		tried:      make([]int, n),
		suspList:   make([]*ir.Op, 0, n),
	}
	s.pool = make([]*ir.Op, 0, len(ops))
	maxIter := ir.NoIter
	for _, op := range ops {
		if !op.Frozen {
			s.pool = append(s.pool, op)
			if op.Iter > maxIter {
				maxIter = op.Iter
			}
		}
	}
	s.byIter = make([][]*ir.Op, maxIter+2)
	for _, op := range s.pool {
		s.byIter[op.Iter+1] = append(s.byIter[op.Iter+1], op)
	}
	s.frontiers = make([]iterFrontier, maxIter+2)
	s.gapMemo = make([]memoEntry, n)
	s.fillMemo = make([][]memoEntry, n)
	pri.Rank(s.pool)
	s.initCandidates(n)
	if opts.CrossCheck {
		s.refRanked = append([]*ir.Op(nil), s.pool...)
	}
	// The structure hears about every op whose home changes — re-homing
	// via branch-move node splits, transient unplacement during moves,
	// renaming compensations — through the graph's op-home hook.
	s.prevHook = pctx.G.SetOpHomeHook(s.maybeAdd)
	return s
}

// ensureIndices returns the size of the dense index space the ops live
// in. The normal path is a no-op scan: deps.Build already assigned
// every op a distinct index. Callers that hand-build op lists without a
// DDG get positional indices assigned here so the bitsets stay sound.
func ensureIndices(ops []*ir.Op) int {
	max := -1
	valid := true
	for _, op := range ops {
		if op.Index < 0 {
			valid = false
			break
		}
		if op.Index > max {
			max = op.Index
		}
	}
	if valid && max >= 0 {
		seen := bitset.New(max + 1)
		for _, op := range ops {
			if seen.Has(op.Index) {
				valid = false
				break
			}
			seen.Add(op.Index)
		}
	}
	if valid {
		return max + 1
	}
	for i, op := range ops {
		op.Index = i
	}
	return len(ops)
}

// scheduleNode is the procedure of Figure 10 (and Figure 12 when gap
// prevention is on): repeatedly choose the best moveable op and migrate
// it toward n until resources run out or nothing can move.
func (s *scheduler) scheduleNode(n *graph.Node) error {
	// A fresh generation invalidates every tried mark from the previous
	// node at once (the map-based version allocated a new map here).
	s.bumpGen()
	if s.opts.TraceNode != nil {
		s.opts.TraceNode(n, s.MoveableSet(n))
	}
	for {
		if s.steps > s.opts.MaxSteps {
			return fmt.Errorf("core: exceeded %d steps (non-termination guard)", s.opts.MaxSteps)
		}
		// One checkpoint per chosen operation: each round below performs
		// a full migration (many ps steps), so this stays off the inner
		// per-step path while keeping cancellation latency to one
		// migration's worth of work.
		if err := s.goctx.Err(); err != nil {
			return fmt.Errorf("core: schedule interrupted: %w", err)
		}
		opRoom := s.ctx.M.FitsOps(n.OpCount() + 1)
		brRoom := s.ctx.M.FitsBranches(n.BranchCount() + 1)
		if !opRoom && !brRoom {
			return nil
		}
		op := s.chooseOp(n, opRoom, brRoom)
		if s.refRanked != nil {
			if err := s.crossCheckPick(n, opRoom, brRoom, op); err != nil {
				return err
			}
		}
		if op == nil {
			return nil
		}
		s.markTried(op)
		s.migrate(n, op)
	}
}

// chooseOpReference is the retained reference implementation of the
// Moveable-ops pick: a full rescan of the ranked list with every gate
// checked per candidate, compacting permanently-dead entries in place
// exactly as the pre-candidate-structure scheduler did. It runs only
// under Options.CrossCheck (against its own refRanked copy) so the
// randomized equivalence tests can assert the incremental structure
// returns the identical pick sequence.
func (s *scheduler) chooseOpReference(n *graph.Node, opRoom, brRoom bool) *ir.Op {
	g := s.ctx.G
	limit := n.Pos()
	lowestSusp, haveSusp := s.lowestSuspendedPosRescan()
	ranked := s.refRanked
	w := 0
	for r := 0; r < len(ranked); r++ {
		op := ranked[r]
		if s.unmoveable.Has(op.Index) {
			continue // prune: unmoveable is never cleared
		}
		home := g.NodeOf(op)
		if home == nil || home.Drain {
			ranked[w] = op
			w++
			continue
		}
		pos := home.Pos()
		if pos <= limit {
			continue // prune: at or above the scheduling frontier
		}
		ranked[w] = op
		w++
		if op.IsBranch() {
			if !brRoom {
				continue
			}
		} else if !opRoom {
			continue
		}
		if s.tried[op.Index] == s.gen {
			continue
		}
		if s.suspended.Has(op.Index) {
			continue
		}
		if haveSusp && pos <= lowestSusp {
			continue // rule 3: only ops below the lowest suspended op move
		}
		w += copy(ranked[w:], ranked[r+1:])
		s.refRanked = ranked[:w]
		return op
	}
	s.refRanked = ranked[:w]
	return nil
}

// lowestSuspendedPosRescan recomputes the rule-3 bound from scratch —
// the reference for the incrementally maintained maxSuspPos.
func (s *scheduler) lowestSuspendedPosRescan() (float64, bool) {
	if len(s.suspList) == 0 {
		return 0, false
	}
	g := s.ctx.G
	low := 0.0
	have := false
	for _, op := range s.suspList {
		if home := g.NodeOf(op); home != nil {
			if p := home.Pos(); !have || p > low {
				low = p
				have = true
			}
		}
	}
	return low, have
}

// crossCheckPick asserts, under Options.CrossCheck, that the candidate
// structure and the reference scan agree on the pick, that the
// incremental rule-3 bound matches a rescan, and that the structure's
// invariants hold.
func (s *scheduler) crossCheckPick(n *graph.Node, opRoom, brRoom bool, got *ir.Op) error {
	want := s.chooseOpReference(n, opRoom, brRoom)
	if got != want {
		return fmt.Errorf("core: candidate structure diverged at n%d (opRoom=%v brRoom=%v): picked %v, reference %v",
			n.ID, opRoom, brRoom, got, want)
	}
	if len(s.suspList) > 0 {
		low, have := s.lowestSuspendedPosRescan()
		if !have || low != s.maxSuspPos {
			return fmt.Errorf("core: incremental rule-3 bound %v, rescan %v (have=%v)", s.maxSuspPos, low, have)
		}
	}
	return s.checkCandidates()
}

func (s *scheduler) clearSuspensions() {
	for _, op := range s.suspList {
		s.suspended.Remove(op.Index)
		s.maybeAdd(op)
	}
	s.suspList = s.suspList[:0]
	s.maxSuspPos = 0
	s.bumpGen()
}

// migrate implements Figure 12's migrate: move op upward one edge at a
// time until it reaches n or is blocked. Node-leaving moves are guarded
// by the Gapless-move test when gap prevention is on; a rejected move
// suspends the op (rule 1). After any successful move while suspensions
// exist, migration stops early so the scheduler re-ranks with the
// unsuspended operations (rule 2).
func (s *scheduler) migrate(n *graph.Node, op *ir.Op) {
	g := s.ctx.G
	progressed := false
	for g.NodeOf(op) != n {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return
		}
		v := g.Where(op)
		cur := v.Node()

		wasFull := !s.ctx.M.FitsOps(cur.OpCount() + 1)

		var blk ps.Block
		hoisting := !op.IsBranch() && v != cur.Root
		if !hoisting && s.opts.GapPrevention && op.Iter != ir.NoIter {
			if !s.gaplessMove(cur, op) {
				s.stats.GaplessRejects++
				s.suspendOp(op)
				return
			}
		}
		switch {
		case hoisting:
			blk = s.ctx.TryHoist(op, true)
		case op.IsBranch():
			blk = s.ctx.TryMoveCJUp(op, true)
		default:
			if s.opts.Renaming {
				blk = s.ctx.TryMoveOpUpRenamed(op)
			} else {
				blk = s.ctx.TryMoveOpUp(op, true, nil)
			}
		}

		if blk.Kind != ps.BlockNone {
			s.recordBlock(n, cur, op, blk)
			if progressed {
				s.stats.PartialMoves++
			}
			return
		}
		progressed = true
		if wasFull || op.IsBranch() {
			// Leaving a full node can unblock resource-blocked ops;
			// branch moves restructure the chain. Either way, retry.
			s.bumpGen()
		}
		if len(s.suspList) > 0 {
			// Rule 2: a successful move may have made a suspended op's
			// gapless test satisfiable; wake them and re-rank.
			s.stats.Unsuspensions += len(s.suspList)
			s.clearSuspensions()
			s.bumpGen()
			s.stats.PartialMoves++
			return
		}
	}
	s.stats.ArrivedAtTarget++
	s.bumpGen()
}

func (s *scheduler) recordBlock(target, cur *graph.Node, op *ir.Op, blk ps.Block) {
	switch blk.Kind {
	case ps.BlockResource:
		// Blocked by a full node that is not the scheduling target:
		// the paper's resource barrier.
		pred := s.ctx.G.SinglePred(cur)
		if pred != nil && pred != target {
			s.stats.ResourceBarriers++
			if !s.barrierSet.Has(op.Index) {
				s.barrierSet.Add(op.Index)
				s.barrierOps++
			}
		}
	case ps.BlockDep:
		// The op is unmoveable if it is pinned by something that will
		// never move again: a frozen clone, an op already marked
		// unmoveable, or an op resting in the scheduled region.
		// (bitset.Has is false for ops outside the index space, exactly
		// as the old pointer-keyed map was for ops never inserted.)
		by := blk.By
		if by == nil {
			s.markUnmoveable(op)
			return
		}
		if by.Frozen || s.unmoveable.Has(by.Index) {
			s.markUnmoveable(op)
			return
		}
		if home := s.ctx.G.NodeOf(by); home != nil {
			if home.Pos() <= target.Pos() {
				s.markUnmoveable(op)
			}
		}
	case ps.BlockStructure:
		// Entry reached or shape limit: nothing more to do for now.
	}
}

// MoveableSet returns the current Moveable-ops set of n in ranked order:
// every non-frozen op below n not yet marked unmoveable. Exposed for
// tracing and tests.
func (s *scheduler) MoveableSet(n *graph.Node) []*ir.Op {
	g := s.ctx.G
	limit := n.Pos()
	var out []*ir.Op
	for _, op := range s.pool {
		if op.Frozen || s.unmoveable.Has(op.Index) {
			continue
		}
		home := g.NodeOf(op)
		if home == nil || home.Drain {
			continue
		}
		if home.Pos() > limit {
			out = append(out, op)
		}
	}
	return out
}
