// Package core implements the paper's primary contribution: GRiP —
// Global Resource-constrained Percolation scheduling (sections 3.2–3.3).
//
// GRiP schedules each node of the program graph in a top-down traversal,
// filling its resources by migrating the highest-priority operations from
// the subgraph it dominates (the Moveable-ops set). Unlike the
// Unifiable-ops technique it approximates, GRiP lets operations move
// partway and stay in intermediate nodes — compaction of the whole
// dominated subgraph happens implicitly — at the cost of possible
// resource barriers, which the scheduler counts so the paper's "barriers
// are rare in practice" claim can be checked empirically.
//
// When used for Perfect Pipelining, the Gapless-move test (section 3.3)
// plus the three scheduling rules guarantee that no permanent
// inter-iteration gaps form, which makes the pipeline converge.
package core

import (
	"context"
	"fmt"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/ps"
)

// Options control a GRiP scheduling session.
type Options struct {
	// GapPrevention enables the section 3.3 Gapless-move test and
	// suspension rules. Required for Perfect Pipelining convergence;
	// harmless (slightly restrictive) elsewhere.
	GapPrevention bool

	// EmptyPrelude inserts this many empty instructions before the
	// program entry, the paper's mitigation that makes temporary
	// resource barriers impossible (section 3.2). Zero disables it, as
	// the paper recommends in practice.
	EmptyPrelude int

	// Renaming allows the renaming variant of move-op when a plain move
	// is blocked by an output or move-past-read conflict. The SSA-named
	// unwound loops never need it; general programs may.
	Renaming bool

	// MaxSteps bounds total transformation steps as a safety valve.
	MaxSteps int

	// TraceNode, when set, receives each node as its scheduling starts
	// together with the current Moveable-ops set in ranked order (used
	// to print Figure 11-style traces).
	TraceNode func(n *graph.Node, moveable []*ir.Op)
}

// DefaultMaxSteps bounds transformation work for typical loop sizes.
const DefaultMaxSteps = 20_000_000

// Stats reports what happened during scheduling.
type Stats struct {
	NodesScheduled   int
	Moves            int // successful upward steps (all kinds)
	ArrivedAtTarget  int // migrations that reached the scheduled node
	PartialMoves     int // migrations that stopped early but made progress
	ResourceBarriers int // moves blocked by a full intermediate node
	BarrierOps       int // distinct ops that ever hit a resource barrier
	Suspensions      int // gap-prevention suspensions (rule 1)
	Unsuspensions    int // rule 2 wake-ups
	GaplessRejects   int // moves rejected by the Gapless-move test
	Renames          int
}

type scheduler struct {
	goctx context.Context // cancellation/deadline signal; checked at checkpoints
	ctx   *ps.Ctx
	pri   *deps.Priority
	opts  Options

	ranked     []*ir.Op // all schedulable ops, highest priority first
	byIter     map[int][]*ir.Op
	unmoveable map[*ir.Op]bool
	suspended  map[*ir.Op]bool
	stats      Stats
	steps      int
	barrierSet map[*ir.Op]bool

	// gen is the retry generation: it advances on events that can
	// unblock previously tried operations (an arrival at the scheduled
	// node, a rule-2 unsuspension, a move out of a full node, any
	// branch move). chooseOp skips operations already tried in the
	// current generation, which keeps the Figure 10 while-loop from
	// re-probing the whole Moveable set after every unrelated move.
	gen int
}

// Schedule runs GRiP over pctx.G. ops must contain every schedulable
// operation (branches included); pri ranks them per section 3.4.
//
// ctx bounds the computation: the step loop checks it at cheap
// checkpoints (per scheduled node and per chosen operation) and returns
// ctx.Err() — wrapped so errors.Is sees context.Canceled or
// context.DeadlineExceeded — abandoning the partial schedule. This is
// what lets per-job timeouts in the batch engine stop the work instead
// of abandoning the goroutine.
func Schedule(ctx context.Context, pctx *ps.Ctx, ops []*ir.Op, pri *deps.Priority, opts Options) (Stats, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	s := &scheduler{
		goctx:      ctx,
		ctx:        pctx,
		pri:        pri,
		opts:       opts,
		unmoveable: make(map[*ir.Op]bool),
		suspended:  make(map[*ir.Op]bool),
		barrierSet: make(map[*ir.Op]bool),
	}
	s.ranked = make([]*ir.Op, 0, len(ops))
	s.byIter = make(map[int][]*ir.Op)
	for _, op := range ops {
		if !op.Frozen {
			s.ranked = append(s.ranked, op)
			s.byIter[op.Iter] = append(s.byIter[op.Iter], op)
		}
	}
	pri.Rank(s.ranked)

	for i := 0; i < opts.EmptyPrelude; i++ {
		pctx.G.InsertBefore(pctx.G.Entry)
	}

	g := pctx.G
	for n := g.Entry; n != nil; {
		if n.Drain {
			break // drains hang off the main chain and are never scheduled
		}
		if err := ctx.Err(); err != nil {
			return s.stats, fmt.Errorf("core: schedule interrupted: %w", err)
		}
		if err := s.scheduleNode(n); err != nil {
			return s.stats, err
		}
		s.stats.NodesScheduled++
		// Suspensions are positional; restart them for the next node.
		s.clearSuspensions()
		n = nextMain(n)
	}

	// Remove any empty rows left on the main chain (unfilled prelude
	// slots, drained tails). An empty instruction is a wasted cycle.
	for _, n := range g.MainChain() {
		if g.Has(n) && !n.Drain {
			g.SpliceOutEmpty(n)
		}
	}

	s.stats.Moves = pctx.Moves + pctx.Hoists + pctx.CJMoves
	s.stats.Renames = pctx.Renames
	s.stats.BarrierOps = len(s.barrierSet)
	return s.stats, nil
}

func nextMain(n *graph.Node) *graph.Node {
	var next *graph.Node
	for _, s := range n.Successors() {
		if s.Drain {
			continue
		}
		if next != nil && next != s {
			return nil
		}
		next = s
	}
	return next
}

// scheduleNode is the procedure of Figure 10 (and Figure 12 when gap
// prevention is on): repeatedly choose the best moveable op and migrate
// it toward n until resources run out or nothing can move.
func (s *scheduler) scheduleNode(n *graph.Node) error {
	tried := map[*ir.Op]int{}
	if s.opts.TraceNode != nil {
		s.opts.TraceNode(n, s.MoveableSet(n))
	}
	for {
		if s.steps > s.opts.MaxSteps {
			return fmt.Errorf("core: exceeded %d steps (non-termination guard)", s.opts.MaxSteps)
		}
		// One checkpoint per chosen operation: each round below performs
		// a full migration (many ps steps), so this stays off the inner
		// per-step path while keeping cancellation latency to one
		// migration's worth of work.
		if err := s.goctx.Err(); err != nil {
			return fmt.Errorf("core: schedule interrupted: %w", err)
		}
		opRoom := s.ctx.M.FitsOps(n.OpCount() + 1)
		brRoom := s.ctx.M.FitsBranches(n.BranchCount() + 1)
		if !opRoom && !brRoom {
			return nil
		}
		op := s.chooseOp(n, tried, opRoom, brRoom)
		if op == nil {
			return nil
		}
		tried[op] = s.gen
		s.migrate(n, op)
	}
}

// chooseOp returns the highest-priority op still eligible to move toward
// n: below n, not frozen, not unmoveable, not suspended, below the
// lowest suspended op (rule 3), and not already tried since the graph
// last changed.
func (s *scheduler) chooseOp(n *graph.Node, tried map[*ir.Op]int, opRoom, brRoom bool) *ir.Op {
	g := s.ctx.G
	limit := n.Pos()
	lowestSusp, haveSusp := s.lowestSuspendedPos()
	for _, op := range s.ranked {
		if op.Frozen || s.unmoveable[op] {
			continue
		}
		if op.IsBranch() && !brRoom {
			continue
		}
		if !op.IsBranch() && !opRoom {
			continue
		}
		if v, ok := tried[op]; ok && v == s.gen {
			continue
		}
		home := g.NodeOf(op)
		if home == nil || home.Drain {
			continue
		}
		pos := home.Pos()
		if pos <= limit {
			continue // already at or above the node being scheduled
		}
		if s.suspended[op] {
			continue
		}
		if haveSusp && pos <= lowestSusp {
			continue // rule 3: only ops below the lowest suspended op move
		}
		return op
	}
	return nil
}

func (s *scheduler) lowestSuspendedPos() (float64, bool) {
	if len(s.suspended) == 0 {
		return 0, false
	}
	g := s.ctx.G
	low := 0.0
	have := false
	for op := range s.suspended {
		if home := g.NodeOf(op); home != nil {
			if p := home.Pos(); !have || p > low {
				low = p
				have = true
			}
		}
	}
	return low, have
}

func (s *scheduler) clearSuspensions() {
	for op := range s.suspended {
		delete(s.suspended, op)
	}
	s.gen++
}

// migrate implements Figure 12's migrate: move op upward one edge at a
// time until it reaches n or is blocked. Node-leaving moves are guarded
// by the Gapless-move test when gap prevention is on; a rejected move
// suspends the op (rule 1). After any successful move while suspensions
// exist, migration stops early so the scheduler re-ranks with the
// unsuspended operations (rule 2).
func (s *scheduler) migrate(n *graph.Node, op *ir.Op) {
	g := s.ctx.G
	progressed := false
	for g.NodeOf(op) != n {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return
		}
		v := g.Where(op)
		cur := v.Node()

		wasFull := !s.ctx.M.FitsOps(cur.OpCount() + 1)

		var blk ps.Block
		hoisting := !op.IsBranch() && v != cur.Root
		if !hoisting && s.opts.GapPrevention && op.Iter != ir.NoIter {
			if !s.gaplessMove(cur, op) {
				s.stats.GaplessRejects++
				s.suspended[op] = true
				s.stats.Suspensions++
				return
			}
		}
		switch {
		case hoisting:
			blk = s.ctx.TryHoist(op, true)
		case op.IsBranch():
			blk = s.ctx.TryMoveCJUp(op, true)
		default:
			if s.opts.Renaming {
				blk = s.ctx.TryMoveOpUpRenamed(op)
			} else {
				blk = s.ctx.TryMoveOpUp(op, true, nil)
			}
		}

		if blk.Kind != ps.BlockNone {
			s.recordBlock(n, cur, op, blk)
			if progressed {
				s.stats.PartialMoves++
			}
			return
		}
		progressed = true
		if wasFull || op.IsBranch() {
			// Leaving a full node can unblock resource-blocked ops;
			// branch moves restructure the chain. Either way, retry.
			s.gen++
		}
		if len(s.suspended) > 0 {
			// Rule 2: a successful move may have made a suspended op's
			// gapless test satisfiable; wake them and re-rank.
			s.stats.Unsuspensions += len(s.suspended)
			s.clearSuspensions()
			s.gen++
			s.stats.PartialMoves++
			return
		}
	}
	s.stats.ArrivedAtTarget++
	s.gen++
}

func (s *scheduler) recordBlock(target, cur *graph.Node, op *ir.Op, blk ps.Block) {
	switch blk.Kind {
	case ps.BlockResource:
		// Blocked by a full node that is not the scheduling target:
		// the paper's resource barrier.
		pred := s.ctx.G.SinglePred(cur)
		if pred != nil && pred != target {
			s.stats.ResourceBarriers++
			s.barrierSet[op] = true
		}
	case ps.BlockDep:
		// The op is unmoveable if it is pinned by something that will
		// never move again: a frozen clone, an op already marked
		// unmoveable, or an op resting in the scheduled region.
		by := blk.By
		if by == nil {
			s.unmoveable[op] = true
			return
		}
		if by.Frozen || s.unmoveable[by] {
			s.unmoveable[op] = true
			return
		}
		if home := s.ctx.G.NodeOf(by); home != nil {
			if home.Pos() <= target.Pos() {
				s.unmoveable[op] = true
			}
		}
	case ps.BlockStructure:
		// Entry reached or shape limit: nothing more to do for now.
	}
}

// MoveableSet returns the current Moveable-ops set of n in ranked order:
// every non-frozen op below n not yet marked unmoveable. Exposed for
// tracing and tests.
func (s *scheduler) MoveableSet(n *graph.Node) []*ir.Op {
	g := s.ctx.G
	limit := n.Pos()
	var out []*ir.Op
	for _, op := range s.ranked {
		if op.Frozen || s.unmoveable[op] {
			continue
		}
		home := g.NodeOf(op)
		if home == nil || home.Drain {
			continue
		}
		if home.Pos() > limit {
			out = append(out, op)
		}
	}
	return out
}
