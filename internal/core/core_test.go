package core

import (
	"context"
	"testing"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/ps"
	"repro/internal/sim"
)

// buildStraightLine makes a chain of n const ops into distinct registers
// (fully parallel) and returns everything a scheduler needs.
func buildStraightLine(n int, fus int) (*ps.Ctx, []*ir.Op, *deps.Priority) {
	al := ir.NewAlloc()
	g := graph.New(al)
	var ops []*ir.Op
	var tail *graph.Node
	for i := 0; i < n; i++ {
		op := &ir.Op{ID: al.OpID(), Origin: i, Iter: 0, Kind: ir.Const, Dst: al.Reg("r"), Imm: int64(i)}
		tail = graph.AppendOp(g, tail, op)
		ops = append(ops, op)
	}
	ddg := deps.Build(ops)
	return ps.NewCtx(g, machine.New(fus), nil), ops, deps.NewPriority(ddg)
}

func TestScheduleFillsRows(t *testing.T) {
	ctx, ops, pri := buildStraightLine(12, 4)
	stats, err := Schedule(context.Background(), ctx, ops, pri, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.G.Validate(); err != nil {
		t.Fatal(err)
	}
	chain := ctx.G.MainChain()
	// Twelve independent ops on 4 units pack into exactly 3 rows.
	if len(chain) != 3 {
		t.Fatalf("rows = %d, want 3\n%s", len(chain), ctx.G.String())
	}
	for _, n := range chain {
		if n.OpCount() != 4 {
			t.Fatalf("row n%d has %d ops, want 4", n.ID, n.OpCount())
		}
	}
	if stats.ResourceBarriers != 0 {
		t.Errorf("straight-line packing hit %d barriers", stats.ResourceBarriers)
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	// A chain a->b->c cannot compact at all.
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2, r3 := al.Reg("a"), al.Reg("b"), al.Reg("c")
	a := &ir.Op{ID: al.OpID(), Origin: 0, Iter: 0, Kind: ir.Const, Dst: r1, Imm: 1}
	bop := &ir.Op{ID: al.OpID(), Origin: 1, Iter: 0, Kind: ir.Add, Dst: r2, Src: [2]ir.Reg{r1}, Imm: 1, BImm: true}
	c := &ir.Op{ID: al.OpID(), Origin: 2, Iter: 0, Kind: ir.Add, Dst: r3, Src: [2]ir.Reg{r2}, Imm: 1, BImm: true}
	n1 := graph.AppendOp(g, nil, a)
	n2 := graph.AppendOp(g, n1, bop)
	graph.AppendOp(g, n2, c)
	ops := []*ir.Op{a, bop, c}
	ctx := ps.NewCtx(g, machine.New(4), nil)
	if _, err := Schedule(context.Background(), ctx, ops, deps.NewPriority(deps.Build(ops)), Options{}); err != nil {
		t.Fatal(err)
	}
	if got := len(g.MainChain()); got != 3 {
		t.Fatalf("dependence chain compacted to %d rows", got)
	}

	// Semantics must hold.
	res, err := sim.Run(g, sim.NewState(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Reg(r3) != 3 {
		t.Fatalf("r3 = %d, want 3", res.State.Reg(r3))
	}
}

func TestEmptyPreludeOption(t *testing.T) {
	ctx, ops, pri := buildStraightLine(8, 8)
	_, err := Schedule(context.Background(), ctx, ops, pri, Options{EmptyPrelude: 4})
	if err != nil {
		t.Fatal(err)
	}
	// All 8 ops fit in the first prelude slot; the remaining empty
	// prelude rows must have been spliced away.
	chain := ctx.G.MainChain()
	if len(chain) != 1 || chain[0].OpCount() != 8 {
		t.Fatalf("unexpected chain after prelude scheduling:\n%s", ctx.G.String())
	}
}

func TestResourceBarrierCounting(t *testing.T) {
	// A resource barrier (section 3.2 definition): an op is prevented
	// from moving into a full node B even though it would be moveable
	// onward from B into a node with room. Build a chain a,b,c,d on a
	// 2-wide machine where d outranks c (smaller origin): d migrates
	// through first and fills the intermediate rows; c then blocks at a
	// full intermediate node while the target still has room.
	al := ir.NewAlloc()
	g := graph.New(al)
	mk := func(origin int) *ir.Op {
		return &ir.Op{ID: al.OpID(), Origin: origin, Iter: 0, Kind: ir.Const, Dst: al.Reg("r"), Imm: 1}
	}
	a := mk(0)
	dep := func(origin int) *ir.Op {
		return &ir.Op{ID: al.OpID(), Origin: origin, Iter: 0, Kind: ir.Add,
			Dst: al.Reg("r"), Src: [2]ir.Reg{a.Dst}, Imm: 1, BImm: true}
	}
	b1, b2 := dep(1), dep(2) // pinned below a by a true dependence
	c := mk(3)               // independent, lowest priority
	n1 := graph.AppendOp(g, nil, a)
	n2 := graph.AppendOp(g, n1, b1)
	n3 := graph.AppendOp(g, n2, b2)
	graph.AppendOp(g, n3, c)
	ops := []*ir.Op{a, b1, b2, c}
	ctx := ps.NewCtx(g, machine.New(2), nil)
	stats, err := Schedule(context.Background(), ctx, ops, deps.NewPriority(deps.Build(ops)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// b1 and b2 end up filling the node directly below the target; c is
	// then resource-blocked at that full intermediate node even though
	// the target still has room — the definition of a barrier.
	if stats.ResourceBarriers == 0 {
		t.Errorf("expected resource barrier events, got %+v", stats)
	}
	chain := g.MainChain()
	if len(chain) != 3 {
		t.Fatalf("unexpected packing:\n%s", g.String())
	}
}

func TestTraceNodeCallback(t *testing.T) {
	ctx, ops, pri := buildStraightLine(6, 2)
	var nodes int
	var firstSet int
	_, err := Schedule(context.Background(), ctx, ops, pri, Options{
		TraceNode: func(n *graph.Node, moveable []*ir.Op) {
			nodes++
			if nodes == 1 {
				firstSet = len(moveable)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nodes == 0 {
		t.Fatal("trace callback never fired")
	}
	// Moveable set of the first node: everything below it (5 ops).
	if firstSet != 5 {
		t.Fatalf("first Moveable set = %d ops, want 5", firstSet)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	ctx, ops, pri := buildStraightLine(20, 4)
	if _, err := Schedule(context.Background(), ctx, ops, pri, Options{MaxSteps: 1}); err == nil {
		t.Fatal("expected step-guard error")
	}
}
