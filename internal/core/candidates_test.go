package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/ps"
)

// buildRandomChain builds a main chain of nNodes nodes, each holding one
// to three operations with roughly one branch op in five, and returns a
// scheduler over it with the reference scan retained (CrossCheck).
func buildRandomChain(rng *rand.Rand, nNodes int) (*scheduler, []*graph.Node, []*ir.Op) {
	al := ir.NewAlloc()
	g := graph.New(al)
	var ops []*ir.Op
	var tail *graph.Node
	origin := 0
	mk := func() *ir.Op {
		op := &ir.Op{ID: al.OpID(), Origin: origin, Iter: 0, Kind: ir.Const,
			Dst: al.Reg(fmt.Sprintf("r%d", origin)), Imm: int64(origin)}
		origin++
		ops = append(ops, op)
		return op
	}
	for j := 0; j < nNodes; j++ {
		tail = graph.AppendOp(g, tail, mk())
		for k := rng.Intn(3); k > 0; k-- {
			g.AddOp(mk(), tail.Root)
		}
	}
	// Grow a loop-exit-style branch on roughly every third node: the
	// conditional jump falls through to the chain successor, so the
	// branch-class selector sees real candidates (branches never move in
	// this driver — migration moves them only via the CJ machinery).
	chain := g.MainChain()
	for j, n := range chain {
		if rng.Intn(3) != 0 {
			continue
		}
		var next *graph.Node
		if j+1 < len(chain) {
			next = chain[j+1]
		}
		cj := &ir.Op{ID: al.OpID(), Origin: origin, Iter: 0, Kind: ir.CJ,
			Src: [2]ir.Reg{al.Reg(fmt.Sprintf("c%d", origin))}, Imm: 10, BImm: true, Rel: ir.Lt}
		origin++
		ops = append(ops, cj)
		leaf := n.Leaves()[0]
		g.RetargetLeaf(leaf, nil)
		g.InsertBranchAtLeaf(leaf, cj, nil, next)
	}
	ddg := deps.Build(ops)
	pctx := ps.NewCtx(g, machine.New(4), nil)
	pctx.D = ddg
	s := newScheduler(context.Background(), pctx, ops, deps.NewPriority(ddg),
		Options{MaxSteps: DefaultMaxSteps, CrossCheck: true})
	return s, g.MainChain(), ops
}

// TestCandidatesRandomMutations drives thousands of random mutation
// sequences — picks under random room gates, upward op moves, freezes,
// suspensions and unsuspensions, unmoveable marks, tried-generation
// bumps, and frontier advances — against schedulers with the reference
// scan retained, asserting after every pick that the incremental
// candidate structure returns the identical op, that the incremental
// rule-3 bound matches a rescan, and that the structure invariants
// (checkCandidates) and the graph's own cached-state invariants
// (graph.Validate) hold.
//
// The mutation grammar mirrors the scheduler's real event structure:
// operations only move upward (toward smaller positions), the frontier
// only advances, and the graph does not mutate while suspensions are
// live — rule 2 guarantees exactly that, and both the incremental
// rule-3 bound and the rule-3 resume cursors rely on it.
func TestCandidatesRandomMutations(t *testing.T) {
	sequences := 400
	steps := 250
	if testing.Short() {
		sequences = 60
	}
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(seq)))
		s, chain, ops := buildRandomChain(rng, 4+rng.Intn(12))
		g := s.ctx.G
		s.bumpGen() // scheduleNode opens every node with a fresh generation
		fi := 0
		pick := func() {
			n := chain[fi]
			opRoom, brRoom := rng.Intn(2) == 0, rng.Intn(2) == 0
			if !opRoom && !brRoom {
				opRoom = true
			}
			got := s.chooseOp(n, opRoom, brRoom)
			if err := s.crossCheckPick(n, opRoom, brRoom, got); err != nil {
				if got != nil {
					inRef := false
					for _, o := range s.refRanked {
						if o == got {
							inRef = true
						}
					}
					home := g.NodeOf(got)
					t.Logf("got: idx=%d frozen=%v inRef=%v pruned=%v susp=%v tried=%v home=%v limit=%v susps=%d",
						got.Index, got.Frozen, inRef, s.pruned.Has(got.Index), s.suspended.Has(got.Index),
						s.tried[got.Index] == s.gen, home, n.Pos(), len(s.suspList))
					if home != nil {
						t.Logf("got home pos=%v drain=%v", home.Pos(), home.Drain)
					}
				}
				t.Fatalf("seq %d: %v", seq, err)
			}
			if got != nil && rng.Intn(4) > 0 {
				s.markTried(got)
			}
		}
		for step := 0; step < steps; step++ {
			op := ops[rng.Intn(len(ops))]
			suspActive := len(s.suspList) > 0
			action := rng.Intn(10)
			if err := s.checkCandidates(); err != nil {
				t.Fatalf("seq %d step %d (before action %d): %v", seq, step, action, err)
			}
			switch action {
			case 0, 1, 2, 3:
				pick()
			case 4: // upward move: the only direction migration takes
				if suspActive || op.IsBranch() {
					pick()
					break
				}
				home := g.NodeOf(op)
				if home == nil || home.OpCount() <= 1 {
					break
				}
				hi := 0
				for hi < len(chain) && chain[hi] != home {
					hi++
				}
				if hi == 0 || hi >= len(chain) {
					break
				}
				g.MoveOp(op, chain[rng.Intn(hi)].Root)
			case 5:
				if suspActive || op.Frozen || op.IsBranch() {
					break
				}
				if home := g.NodeOf(op); home != nil && home.OpCount() > 1 {
					g.FreezeOp(op)
				}
			case 6:
				if !s.suspended.Has(op.Index) && g.NodeOf(op) != nil {
					s.suspendOp(op)
				}
			case 7:
				if suspActive {
					s.clearSuspensions()
				} else {
					s.bumpGen()
				}
			case 8:
				s.markUnmoveable(op)
			case 9: // frontier advance (between-node: suspensions cleared first)
				if fi+1 < len(chain) {
					if suspActive {
						s.clearSuspensions()
					}
					fi++
					s.bumpGen()
				}
			}
		}
		if err := s.checkCandidates(); err != nil {
			t.Fatalf("seq %d: final: %v", seq, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seq %d: final: %v", seq, err)
		}
	}
}

// TestScheduleCrossCheck runs full schedules — the real event stream of
// migrations, node splits, suspensions, and renaming — with the
// reference scan cross-checking every pick.
func TestScheduleCrossCheck(t *testing.T) {
	for _, fus := range []int{2, 4} {
		ctx, ops, pri := buildStraightLine(48, fus)
		if _, err := Schedule(context.Background(), ctx, ops, pri,
			Options{CrossCheck: true}); err != nil {
			t.Fatalf("fus=%d: %v", fus, err)
		}
		if err := ctx.G.Validate(); err != nil {
			t.Fatalf("fus=%d: %v", fus, err)
		}
	}
	// Gap prevention on an interleaved-iteration chain drives the
	// suspension machinery (rules 1–3) through the cross-checked path.
	pctx, s, _ := buildIterChain(32, 8, 2)
	pctx.G.SetOpHomeHook(s.prevHook) // discard the helper's scheduler
	ops := make([]*ir.Op, 0, len(s.pool))
	ops = append(ops, s.pool...)
	if _, err := Schedule(context.Background(), pctx, ops, s.pri,
		Options{GapPrevention: true, CrossCheck: true}); err != nil {
		t.Fatal(err)
	}
	if err := pctx.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkChooseOp measures the incremental pick with its per-pick
// maintenance (markTried removal, generation bump restore) over a large
// Moveable set — the operation the old implementation performed as a
// full ranked rescan.
func BenchmarkChooseOp(b *testing.B) {
	bench := func(b *testing.B, suspend bool) {
		pctx, ops, pri := buildStraightLine(2048, 8)
		s := newScheduler(context.Background(), pctx, ops, pri, Options{MaxSteps: DefaultMaxSteps})
		entry := pctx.G.Entry
		s.bumpGen()
		if suspend {
			s.suspendOp(ops[64])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := s.chooseOp(entry, true, true)
			if op == nil {
				s.bumpGen()
				continue
			}
			s.markTried(op)
		}
	}
	// steady: every pick returns the first selector member.
	b.Run("steady", func(b *testing.B) { bench(b, false) })
	// suspended: rule 3 gates the picks; the resume cursors amortize the
	// skip over the suspension epoch.
	b.Run("suspended", func(b *testing.B) { bench(b, true) })
}
