package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/ps"
)

// BenchmarkMigrationStep measures GRiP scheduling of a real unwound
// kernel — the Figure 10 loop's end-to-end cost including the
// Moveable-ops scans, gapless tests, and ps moves. The per-run graph
// clone is excluded from the timer, so ns/op is pure scheduling.
func BenchmarkMigrationStep(b *testing.B) {
	spec := livermore.ByName("LL1").Spec
	const unwind = 48
	base, err := pipeline.Unwind(spec, unwind)
	if err != nil {
		b.Fatal(err)
	}
	base.BuildGraph()
	deps.Build(base.Ops)

	b.ReportAllocs()
	b.ResetTimer()
	var moves int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		uw := base.Clone() // fresh graph per run, off-timer
		ddg := deps.Build(uw.Ops)
		pctx := ps.NewCtx(uw.G, machine.New(4), uw.ExitLive)
		pctx.D = ddg
		b.StartTimer()
		stats, err := core.Schedule(context.Background(), pctx, uw.Ops, deps.NewPriority(ddg), core.Options{GapPrevention: true})
		if err != nil {
			b.Fatal(err)
		}
		moves = stats.Moves
	}
	b.ReportMetric(float64(moves), "moves/schedule")
}
