package core

import (
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/ps"
)

// maxGaplessDepth bounds the condition-4 recursion. The paper notes the
// search "is likely to be very localized"; the bound is a safety valve,
// and exceeding it conservatively reports "might gap" (suspension).
const maxGaplessDepth = 64

// memoEntry is one generation-stamped cache slot for a probe verdict.
// The stamp is the graph mutation counter (graph.Version): probes never
// mutate the graph, so every verdict computed at one version stays
// exact until the next committed transformation bumps it. See DESIGN.md
// for the invalidation contract. Packed ver<<2 | verdict into one word
// — a struct with a separate int8 verdict pads to 16 bytes, doubling
// the footprint of the full-width fillMemo rows. The zero value means
// "unknown"; stored entries always carry a nonzero verdict.
type memoEntry uint64

func makeMemoEntry(ver uint64, holds bool) memoEntry {
	e := memoEntry(ver<<2) | 2 // verdict 2 = fails
	if holds {
		e = memoEntry(ver<<2) | 1 // verdict 1 = holds
	}
	return e
}

func (e memoEntry) ver() uint64 { return uint64(e) >> 2 }
func (e memoEntry) holds() bool { return uint64(e)&3 == 1 }

// gaplessMove is the section 3.3 Gapless-move(From, To, Op) test: it
// reports whether moving op up out of node from can be done without
// creating a permanent gap in op's iteration. Conditions, in the paper's
// order:
//
//  1. op is the only operation scheduled at from — the node is deleted
//     by the move, so no row can gap;
//  2. another operation from op's iteration stays at from;
//  3. op is the last operation of its iteration at or below from;
//  4. some successor S of from holds an operation X of the same
//     iteration that would be moveable from S into from once op has
//     left, and Gapless-move(S, from, X) holds recursively — the
//     temporary gap op leaves is certain to be fillable.
func (s *scheduler) gaplessMove(from *graph.Node, op *ir.Op) bool {
	ok, _ := s.gapless(from, op, 0)
	return ok
}

// gapless returns the Gapless-move verdict for op leaving its home node
// from, plus whether the verdict is exact. A false obtained only
// because the recursion budget ran out is inexact: a shallower entry
// point could still prove the move gapless, so such verdicts are never
// memoized. True verdicts and budget-untouched false verdicts are
// depth-independent and cache under the current graph version, which
// stops the recursive search from re-proving the same (node, op)
// subproblem — from is always op's home, so the op index alone keys it.
func (s *scheduler) gapless(from *graph.Node, op *ir.Op, depth int) (bool, bool) {
	if depth > maxGaplessDepth {
		return false, false
	}
	g := s.ctx.G
	idx := op.Index
	memoable := idx >= 0 && idx < len(s.gapMemo) && g.NodeOf(op) == from
	if memoable {
		if e := s.gapMemo[idx]; e != 0 && e.ver() == g.Version() {
			return e.holds(), true
		}
	}
	ok, exact := s.gaplessEval(from, op, depth)
	if memoable && (exact || ok) {
		s.gapMemo[idx] = makeMemoEntry(g.Version(), ok)
	}
	return ok, exact || ok
}

func (s *scheduler) gaplessEval(from *graph.Node, op *ir.Op, depth int) (bool, bool) {
	// Condition 1.
	if from.OpCount()+from.BranchCount() == 1 {
		return true, true
	}
	// Condition 2.
	if from.IterCount(op.Iter) >= 2 {
		return true, true
	}
	// Condition 3.
	if s.isLastOfIter(from, op) {
		return true, true
	}
	// Condition 4.
	found, exact := false, true
	from.VisitSuccessors(func(succ *graph.Node) bool {
		if succ.Drain {
			return true
		}
		ok, ex := s.findFiller(succ, op, depth)
		if ok {
			found = true
			return false
		}
		if !ex {
			exact = false
		}
		return true
	})
	return found, exact || found
}

// findFiller looks in succ for an op X of op's iteration that can fill
// the gap op would leave behind. Instead of walking succ's instruction
// tree it scans the per-iteration op list behind an O(1) IterCount gate
// — the gapless search is localized, and an iteration holds only a
// body's worth of operations. Returns (found, exact) like gapless.
func (s *scheduler) findFiller(succ *graph.Node, op *ir.Op, depth int) (bool, bool) {
	if succ.IterCount(op.Iter) == 0 {
		return false, true
	}
	g := s.ctx.G
	exact := true
	for _, x := range s.byIter[op.Iter+1] {
		if x == op || x.Frozen || g.NodeOf(x) != succ {
			continue
		}
		if !s.canFill(x, op) {
			continue
		}
		ok, ex := s.gapless(succ, x, depth+1)
		if ok {
			return true, true
		}
		if !ex {
			exact = false
		}
	}
	return false, exact
}

// canFill reports whether x could move one node up, assuming `leaving`
// has already vacated the target. Verdicts are memoized per (x,
// leaving) pair under the current graph version: one migration step
// probes the same pairs many times through the condition-4 recursion.
func (s *scheduler) canFill(x, leaving *ir.Op) bool {
	g := s.ctx.G
	memoable := uint(x.Index) < uint(len(s.fillMemo)) &&
		uint(leaving.Index) < uint(len(s.fillMemo))
	var row []memoEntry
	if memoable {
		if row = s.fillMemo[x.Index]; row == nil {
			row = s.allocMemoRow(len(s.fillMemo))
			s.fillMemo[x.Index] = row
		}
		if e := row[leaving.Index]; e != 0 && e.ver() == g.Version() {
			return e.holds()
		}
	}
	ok := s.canFillEval(x, leaving)
	if memoable {
		row[leaving.Index] = makeMemoEntry(g.Version(), ok)
	}
	return ok
}

// canFillEval is the uncached probe. An x buried under a branch inside
// its node is treated as fillable when it can hoist (it will surface
// and then move); this slight optimism is documented in DESIGN.md.
func (s *scheduler) canFillEval(x, leaving *ir.Op) bool {
	if x.IsBranch() {
		return s.ctx.TryMoveCJUp(x, false).Kind == ps.BlockNone
	}
	v := s.ctx.G.Where(x)
	if v != v.Node().Root {
		return s.ctx.TryHoist(x, false).Kind == ps.BlockNone
	}
	return s.ctx.TryMoveOpUp(x, false, leaving).Kind == ps.BlockNone
}

// iterFrontier caches, per iteration, the two highest node positions
// holding schedulable ops of that iteration (with the op attaining the
// maximum), stamped by graph version. Recomputed at most once per
// iteration per graph mutation; every further isLastOfIter probe in the
// condition-4 recursion is O(1).
type iterFrontier struct {
	ver  uint64
	n    int     // schedulable ops of the iteration in non-drain nodes
	op1  *ir.Op  // an op attaining max1
	max1 float64 // highest home position
	max2 float64 // highest home position over ops other than op1
}

func (s *scheduler) frontier(iter int) *iterFrontier {
	f := &s.frontiers[iter+1]
	g := s.ctx.G
	if f.ver == g.Version() {
		return f
	}
	*f = iterFrontier{ver: g.Version()}
	for _, op := range s.byIter[iter+1] {
		if op.Frozen {
			continue
		}
		home := g.NodeOf(op)
		if home == nil || home.Drain {
			continue
		}
		p := home.Pos()
		f.n++
		switch {
		case f.op1 == nil:
			f.op1, f.max1 = op, p
		case p > f.max1:
			f.max2 = f.max1
			f.op1, f.max1 = op, p
		case f.n == 2 || p > f.max2:
			f.max2 = p
		}
	}
	return f
}

// isLastOfIter reports whether no schedulable operation of op's
// iteration exists strictly below from. Main-chain nodes are totally
// ordered by their position keys, so the cached per-iteration max-Pos
// frontier answers this in O(1) amortized instead of O(body) per probe.
func (s *scheduler) isLastOfIter(from *graph.Node, op *ir.Op) bool {
	f := s.frontier(op.Iter)
	if f.n == 0 || (f.n == 1 && f.op1 == op) {
		return true
	}
	m := f.max1
	if f.op1 == op {
		m = f.max2
	}
	return m <= from.Pos()
}
