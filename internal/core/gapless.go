package core

import (
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/ps"
)

// maxGaplessDepth bounds the condition-4 recursion. The paper notes the
// search "is likely to be very localized"; the bound is a safety valve,
// and exceeding it conservatively reports "might gap" (suspension).
const maxGaplessDepth = 64

// gaplessMove is the section 3.3 Gapless-move(From, To, Op) test: it
// reports whether moving op up out of node from can be done without
// creating a permanent gap in op's iteration. Conditions, in the paper's
// order:
//
//  1. op is the only operation scheduled at from — the node is deleted
//     by the move, so no row can gap;
//  2. another operation from op's iteration stays at from;
//  3. op is the last operation of its iteration at or below from;
//  4. some successor S of from holds an operation X of the same
//     iteration that would be moveable from S into from once op has
//     left, and Gapless-move(S, from, X) holds recursively — the
//     temporary gap op leaves is certain to be fillable.
func (s *scheduler) gaplessMove(from *graph.Node, op *ir.Op) bool {
	return s.gapless(from, op, 0)
}

func (s *scheduler) gapless(from *graph.Node, op *ir.Op, depth int) bool {
	if depth > maxGaplessDepth {
		return false
	}
	// Condition 1.
	if from.OpCount()+from.BranchCount() == 1 {
		return true
	}
	// Condition 2.
	if from.IterCount(op.Iter) >= 2 {
		return true
	}
	// Condition 3.
	if s.isLastOfIter(from, op) {
		return true
	}
	// Condition 4.
	for _, succ := range from.Successors() {
		if succ.Drain {
			continue
		}
		if x := s.findFiller(from, succ, op, depth); x != nil {
			return true
		}
	}
	return false
}

// findFiller looks in succ for an op X of op's iteration that can fill
// the gap op would leave at from.
func (s *scheduler) findFiller(from, succ *graph.Node, op *ir.Op, depth int) *ir.Op {
	var found *ir.Op
	succ.Walk(func(v *graph.Vertex) {
		if found != nil {
			return
		}
		consider := func(x *ir.Op) {
			if found != nil || x.Frozen || x == op || x.Iter != op.Iter {
				return
			}
			if !s.canFill(x, op) {
				return
			}
			if s.gapless(succ, x, depth+1) {
				found = x
			}
		}
		for _, x := range v.Ops {
			consider(x)
		}
		if v.CJ != nil {
			consider(v.CJ)
		}
	})
	return found
}

// canFill reports whether x could move one node up, assuming `leaving`
// has already vacated the target. An x buried under a branch inside its
// node is treated as fillable when it can hoist (it will surface and
// then move); this slight optimism is documented in DESIGN.md.
func (s *scheduler) canFill(x, leaving *ir.Op) bool {
	if x.IsBranch() {
		return s.ctx.TryMoveCJUp(x, false).Kind == ps.BlockNone
	}
	v := s.ctx.G.Where(x)
	if v != v.Node().Root {
		return s.ctx.TryHoist(x, false).Kind == ps.BlockNone
	}
	return s.ctx.TryMoveOpUp(x, false, leaving).Kind == ps.BlockNone
}

// isLastOfIter reports whether no schedulable operation of op's
// iteration exists strictly below from. Main-chain nodes are totally
// ordered by their position keys, so the per-iteration op lists make
// this an O(body) check instead of a graph scan.
func (s *scheduler) isLastOfIter(from *graph.Node, op *ir.Op) bool {
	limit := from.Pos()
	for _, op2 := range s.byIter[op.Iter+1] {
		if op2 == op || op2.Frozen {
			continue
		}
		home := s.ctx.G.NodeOf(op2)
		if home == nil || home.Drain {
			continue
		}
		if home.Pos() > limit {
			return false
		}
	}
	return true
}
