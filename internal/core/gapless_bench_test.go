package core

import (
	"context"
	"testing"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/ps"
)

// buildIterChain builds a chain of nodes each holding two constant ops
// from interleaved iterations: node j holds one op of iteration j%iters
// and one of iteration (j+1)%iters. Every node is two-wide, so
// condition 1 never fires and the Gapless-move test has to run the
// per-iteration count, frontier, and condition-4 filler machinery.
func buildIterChain(nNodes, iters, fus int) (*ps.Ctx, *scheduler, []*ir.Op) {
	al := ir.NewAlloc()
	g := graph.New(al)
	var ops []*ir.Op
	var tail *graph.Node
	mk := func(origin, iter int) *ir.Op {
		op := &ir.Op{ID: al.OpID(), Origin: origin, Iter: iter, Kind: ir.Const, Dst: al.Reg("r"), Imm: int64(origin)}
		ops = append(ops, op)
		return op
	}
	for j := 0; j < nNodes; j++ {
		a := mk(2*j, j%iters)
		b := mk(2*j+1, (j+1)%iters)
		tail = graph.AppendOp(g, tail, a)
		g.AddOp(b, tail.Root)
	}
	ddg := deps.Build(ops)
	pctx := ps.NewCtx(g, machine.New(fus), nil)
	pctx.D = ddg
	s := newScheduler(context.Background(), pctx, ops, deps.NewPriority(ddg), Options{GapPrevention: true, MaxSteps: DefaultMaxSteps})
	return pctx, s, ops
}

// BenchmarkGaplessMove measures one full Gapless-move verdict on a
// mid-chain operation with a cold cache: each round bumps the graph
// mutation counter (a same-vertex MoveOp, the cheapest committed
// mutation), so the frontier and both memo layers recompute — the
// steady-state cost the migration loop pays after every committed move.
func BenchmarkGaplessMove(b *testing.B) {
	pctx, s, ops := buildIterChain(48, 8, 4)
	g := pctx.G
	// The second op of the next-to-last node: its iteration recurs once
	// more in the following node, so the verdict needs the full chain —
	// conditions 1–3 fail, condition 4 finds the filler one node down
	// and proves it last-of-iteration there.
	op := ops[2*46+1]
	from := g.NodeOf(op)
	home := g.Where(op)
	if !s.gaplessMove(from, op) {
		b.Fatal("benchmark scenario: probe should succeed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MoveOp(op, home) // invalidate the generation stamps
		if !s.gaplessMove(from, op) {
			b.Fatal("probe failed")
		}
	}
}

// BenchmarkCondFourSearch measures the deep condition-4 recursion: a
// chain where every node holds exactly one op of iteration 0 plus one
// of another iteration, so proving the head op's move gapless requires
// descending the whole filler chain. The graph is left unmutated, so
// after the first probe the generation-stamped memo answers in O(1) —
// this benchmark pins the memoized steady state the recursive search
// relies on within one migration step.
func BenchmarkCondFourSearch(b *testing.B) {
	al := ir.NewAlloc()
	g := graph.New(al)
	var ops []*ir.Op
	var tail *graph.Node
	const depth = 24
	for j := 0; j < depth; j++ {
		x := &ir.Op{ID: al.OpID(), Origin: 2 * j, Iter: 0, Kind: ir.Const, Dst: al.Reg("x"), Imm: int64(j)}
		y := &ir.Op{ID: al.OpID(), Origin: 2*j + 1, Iter: 1, Kind: ir.Const, Dst: al.Reg("y"), Imm: int64(j)}
		tail = graph.AppendOp(g, tail, x)
		g.AddOp(y, tail.Root)
		ops = append(ops, x, y)
	}
	ddg := deps.Build(ops)
	pctx := ps.NewCtx(g, machine.New(4), nil)
	pctx.D = ddg
	s := newScheduler(context.Background(), pctx, ops, deps.NewPriority(ddg), Options{GapPrevention: true, MaxSteps: DefaultMaxSteps})

	head := ops[0]
	from := g.NodeOf(head)
	if !s.gaplessMove(from, head) {
		b.Fatal("benchmark scenario: chain should prove gapless")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.gaplessMove(from, head) {
			b.Fatal("probe failed")
		}
	}
}
