package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/ir"
)

// The incremental Moveable-ops candidate structure.
//
// Ranks are assigned once by deps.Priority and never change, so the
// structure is two hierarchical bitsets (bitset.Tree) over rank space —
// one for plain operations, one for branches, so the opRoom/brRoom
// gates of Figure 10 select a sub-structure instead of filtering every
// candidate. An op's rank is a member of its class selector exactly
// when every per-op eligibility flag holds:
//
//	in selector  ⟺  !pruned && !suspended && tried != gen
//
// with one lazy exception: an op whose home is nil or a drain node is
// dropped from the selector when the pick path encounters it, and the
// graph's op-home hook (Graph.SetOpHomeHook) re-adds it the moment any
// mutation changes its home — so the invariant weakens to "eligible and
// placed in a live node ⟹ in selector", which is what the pick needs.
//
// Every eligibility transition updates the selectors at the event site
// in O(log64 n):
//
//   - pick: markTried removes the op and records it for restore;
//   - retry-generation bump: bumpGen re-adds everything tried in the
//     closing generation (each pick adds at most one entry, so the
//     restore is O(1) amortized per pick);
//   - suspension (rule 1): suspendOp removes the op and folds its home
//     position into the incrementally maintained rule-3 bound;
//   - unsuspension (rule 2 / node advance): clearSuspensions re-adds;
//   - unmoveable marks and frontier crossings are monotone (an op at or
//     above the scheduling frontier can never become eligible again, see
//     chooseOp), so they remove the op and set its pruned bit, which
//     keeps every later restore path from resurrecting it.
//
// Positional gates (the frontier limit and rule 3) are deliberately NOT
// part of the structure: node positions of live candidates only ever
// decrease (ops move up; move-cj gives the continue-side node the
// dissolved node's position), so they are checked against the op's
// current home at pick time, where a failed frontier check prunes
// permanently. The pick itself is then a NextAtLeast walk that in the
// common case inspects exactly one candidate. Soundness arguments in
// DESIGN.md §6.

// initCandidates sizes and fills the selectors from the freshly ranked
// pool: every pool op starts eligible.
func (s *scheduler) initCandidates(idxSpace int) {
	s.rankOf = make([]int32, idxSpace)
	for i := range s.rankOf {
		s.rankOf[i] = -1
	}
	s.opSel = bitset.NewTree(len(s.pool))
	s.brSel = bitset.NewTree(len(s.pool))
	s.pruned = bitset.New(idxSpace)
	s.triedGen = make([]*ir.Op, 0, len(s.pool))
	for r, op := range s.pool {
		s.rankOf[op.Index] = int32(r)
		if op.IsBranch() {
			s.brSel.Add(r)
		} else {
			s.opSel.Add(r)
		}
	}
}

// chooseOp returns the highest-priority op still eligible to move toward
// n: below n, not unmoveable, not suspended, below the lowest suspended
// op (rule 3), and not already tried since the graph last changed. It
// replaces the per-pick rescan of the whole ranked list: candidates come
// off the class selectors in rank order, so the scan only ever touches
// ops whose eligibility flags all hold, and in the steady state returns
// the very first one. Allocation-free.
func (s *scheduler) chooseOp(n *graph.Node, opRoom, brRoom bool) *ir.Op {
	g := s.ctx.G
	limit := n.Pos()
	haveSusp := len(s.suspList) > 0
	lowestSusp := s.maxSuspPos
	rOp, rBr := -1, -1
	if opRoom {
		rOp = s.opSel.NextAtLeast(s.ruleCurOp)
	}
	if brRoom {
		rBr = s.brSel.NextAtLeast(s.ruleCurBr)
	}
	for rOp >= 0 || rBr >= 0 {
		r, sel := rOp, &s.opSel
		if rOp < 0 || (rBr >= 0 && rBr < rOp) {
			r, sel = rBr, &s.brSel
		}
		op := s.pool[r]
		home := g.NodeOf(op)
		switch {
		case home == nil || home.Drain:
			// Not currently pickable and no flag transition will say
			// when it becomes so; drop it — the graph's op-home hook
			// restores it on the next placement change.
			sel.Remove(r)
		case home.Pos() <= limit:
			// Prune: at or above the scheduling frontier. Operations
			// only ever move up while the frontier only moves down, so
			// this op can never become eligible again.
			sel.Remove(r)
			s.pruned.Add(op.Index)
		case haveSusp && home.Pos() <= lowestSusp:
			// Rule 3: only ops below the lowest suspended op move.
			// Positional and temporary — the op stays eligible, but
			// within this suspension epoch it can never re-qualify, so
			// later picks resume past it (see ruleCurOp/ruleCurBr).
			if sel == &s.opSel {
				s.ruleCurOp = r + 1
			} else {
				s.ruleCurBr = r + 1
			}
		default:
			return op
		}
		if sel == &s.opSel {
			rOp = s.opSel.NextAtLeast(r + 1)
		} else {
			rBr = s.brSel.NextAtLeast(r + 1)
		}
	}
	return nil
}

// maybeAdd restores op's selector membership when every eligibility
// flag holds. Safe to call unconditionally: ops outside the candidate
// pool (frozen drain clones, renaming compensations, ops of a different
// allocator) are identity-checked out, and bitset adds are idempotent.
func (s *scheduler) maybeAdd(op *ir.Op) {
	idx := op.Index
	if idx < 0 || idx >= len(s.rankOf) {
		return
	}
	r := s.rankOf[idx]
	if r < 0 || s.pool[r] != op {
		return
	}
	if s.pruned.Has(idx) || s.suspended.Has(idx) || s.tried[idx] == s.gen {
		return
	}
	if op.IsBranch() {
		s.brSel.Add(int(r))
	} else {
		s.opSel.Add(int(r))
	}
}

// selRemove drops op from its class selector (no-op when absent).
func (s *scheduler) selRemove(op *ir.Op) {
	idx := op.Index
	if idx < 0 || idx >= len(s.rankOf) {
		return
	}
	r := s.rankOf[idx]
	if r < 0 || s.pool[r] != op {
		return
	}
	if op.IsBranch() {
		s.brSel.Remove(int(r))
	} else {
		s.opSel.Remove(int(r))
	}
}

// markTried records that op was handed to migrate in the current retry
// generation: it leaves the selectors now and returns on the next
// generation bump.
func (s *scheduler) markTried(op *ir.Op) {
	s.tried[op.Index] = s.gen
	s.selRemove(op)
	s.triedGen = append(s.triedGen, op)
}

// bumpGen starts a new retry generation, which invalidates every tried
// mark at once: the ops tried in the closing generation rejoin the
// selectors (unless some other flag keeps them out).
func (s *scheduler) bumpGen() {
	s.gen++
	for _, op := range s.triedGen {
		s.maybeAdd(op)
	}
	s.triedGen = s.triedGen[:0]
	s.ruleCurOp, s.ruleCurBr = 0, 0
}

// suspendOp applies rule 1 to op: it leaves the candidate set until the
// next unsuspension, and its home position folds into the incrementally
// maintained rule-3 bound. Maintaining the max here is exact because the
// graph cannot change while suspensions exist: every successful move
// immediately wakes all suspended ops (rule 2, see migrate), so between
// a suspension and the next unsuspension no committed mutation can move
// a suspended op's home.
func (s *scheduler) suspendOp(op *ir.Op) {
	s.suspended.Add(op.Index)
	s.suspList = append(s.suspList, op)
	s.selRemove(op) // already out via markTried when reached from migrate
	s.stats.Suspensions++
	if home := s.ctx.G.NodeOf(op); home != nil {
		if p := home.Pos(); len(s.suspList) == 1 || p > s.maxSuspPos {
			s.maxSuspPos = p
		}
	}
	if len(s.suspList) == 1 {
		// A fresh suspension epoch: the resume cursors are already 0
		// (every epoch end bumps the generation), but make the epoch
		// boundary explicit rather than rely on it.
		s.ruleCurOp, s.ruleCurBr = 0, 0
	}
}

// markUnmoveable takes op out of the candidate set permanently: the
// pruned bit keeps every restore path (generation bumps, unsuspension,
// op-home events) from resurrecting it.
func (s *scheduler) markUnmoveable(op *ir.Op) {
	s.unmoveable.Add(op.Index)
	s.pruned.Add(op.Index)
	s.selRemove(op)
}

// checkCandidates cross-checks the selector invariants against a full
// recomputation (the candidate-structure analogue of graph.Validate's
// cached-count recounts): membership implies every eligibility flag,
// and an eligible op placed in a live node must be a member. Test and
// CrossCheck use only.
func (s *scheduler) checkCandidates() error {
	g := s.ctx.G
	for r, op := range s.pool {
		idx := op.Index
		inSel := s.opSel.Has(r)
		class := "op"
		if op.IsBranch() {
			inSel = s.brSel.Has(r)
			class = "branch"
		}
		if s.opSel.Has(r) && s.brSel.Has(r) {
			return fmt.Errorf("core: rank %d (%s) in both selectors", r, class)
		}
		eligible := !s.pruned.Has(idx) && !s.suspended.Has(idx) && s.tried[idx] != s.gen
		if inSel && !eligible {
			return fmt.Errorf("core: rank %d (%s %v) in %s selector but ineligible (pruned=%v suspended=%v tried=%v)",
				r, class, op, class, s.pruned.Has(idx), s.suspended.Has(idx), s.tried[idx] == s.gen)
		}
		home := g.NodeOf(op)
		if eligible && home != nil && !home.Drain && !inSel {
			return fmt.Errorf("core: rank %d (%s %v) eligible and placed at n%d but missing from %s selector",
				r, class, op, home.ID, class)
		}
		if s.unmoveable.Has(idx) && !s.pruned.Has(idx) {
			return fmt.Errorf("core: rank %d (%s %v) unmoveable but not pruned", r, class, op)
		}
	}
	return nil
}
