package core

import (
	"context"
	"testing"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/ps"
)

// TestMigrationStepAllocs pins the tentpole guarantee: a steady-state
// GRiP migration step — choosing the next op against the bitset state
// and moving it one edge — allocates nothing. The test warms one
// up-and-back move cycle so vertex op slices reach their steady
// capacity, then measures.
func TestMigrationStepAllocs(t *testing.T) {
	al := ir.NewAlloc()
	g := graph.New(al)
	// Target node holds a resident op (so it never empties), source node
	// holds the migrating op plus a resident (so it is never spliced).
	resident1 := &ir.Op{ID: al.OpID(), Origin: 0, Iter: 0, Kind: ir.Const, Dst: al.Reg("a"), Imm: 1}
	mover := &ir.Op{ID: al.OpID(), Origin: 1, Iter: 0, Kind: ir.Const, Dst: al.Reg("b"), Imm: 2}
	resident2 := &ir.Op{ID: al.OpID(), Origin: 2, Iter: 0, Kind: ir.Const, Dst: al.Reg("c"), Imm: 3}
	n1 := graph.AppendOp(g, nil, resident1)
	n2 := graph.AppendOp(g, n1, mover)
	g.AddOp(resident2, n2.Root)

	ops := []*ir.Op{resident1, mover, resident2}
	ddg := deps.Build(ops)
	pctx := ps.NewCtx(g, machine.New(4), nil)
	pctx.D = ddg
	s := newScheduler(context.Background(), pctx, ops, deps.NewPriority(ddg), Options{MaxSteps: DefaultMaxSteps})

	home := n2.Root
	step := func() {
		s.bumpGen()
		op := s.chooseOp(n1, true, true)
		if op != mover {
			t.Fatalf("chooseOp picked %v, want the mover", op)
		}
		s.markTried(op)
		s.migrate(n1, op)
		if g.NodeOf(mover) != n1 {
			t.Fatal("mover did not arrive")
		}
		g.MoveOp(mover, home) // reset for the next round
	}
	for i := 0; i < 16; i++ {
		step() // warm slice capacities
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("migration step allocates %v bytes/run, want 0", allocs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGaplessProbeAllocs pins the tentpole guarantee of the walk-free
// gapless search: a steady-state Gapless-move probe — per-iteration
// count gates, the max-Pos frontier, condition-4 filler scan with
// canFill dependence probes, and both memo layers — performs zero heap
// allocations. Each round bumps the graph version with a same-vertex
// MoveOp so the full evaluation (not just the memo hit) is measured.
func TestGaplessProbeAllocs(t *testing.T) {
	pctx, s, ops := buildIterChain(48, 8, 4)
	g := pctx.G
	op := ops[2*46+1]
	from := g.NodeOf(op)
	home := g.Where(op)
	if !s.gaplessMove(from, op) {
		t.Fatal("scenario: probe should succeed via condition 4")
	}
	probe := func() {
		g.MoveOp(op, home) // new generation: memos and frontiers recompute
		if !s.gaplessMove(from, op) {
			t.Fatal("probe failed")
		}
	}
	for i := 0; i < 16; i++ {
		probe() // warm memo map and slice capacities
	}
	if allocs := testing.AllocsPerRun(200, probe); allocs != 0 {
		t.Fatalf("gapless probe allocates %v/run, want 0", allocs)
	}
	// Memo-hit steady state (no invalidation) must also be free.
	if allocs := testing.AllocsPerRun(200, func() { s.gaplessMove(from, op) }); allocs != 0 {
		t.Fatalf("memoized gapless probe allocates %v/run, want 0", allocs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGraphAccessorAllocs guards the O(1) accessors the gapless path
// reads per probe: per-iteration and schedulable counts, compact
// successor/predecessor queries, and the leaf visits.
func TestGraphAccessorAllocs(t *testing.T) {
	pctx, _, ops := buildIterChain(8, 4, 4)
	g := pctx.G
	n := g.NodeOf(ops[4])
	var sink int
	allocs := testing.AllocsPerRun(500, func() {
		sink = n.IterCount(2) + n.SchedCount()
		n.VisitSuccessors(func(s *graph.Node) bool { sink++; return true })
		if s := n.NonDrainSucc(); s != nil {
			sink++
		}
		if p := g.SinglePred(n); p != nil {
			sink++
		}
		if f := n.FallThrough(); f != nil {
			sink++
		}
		n.VisitLeaves(func(v *graph.Vertex) bool { sink++; return true })
	})
	if allocs != 0 {
		t.Fatalf("graph accessors allocate %v/run, want 0 (sink %d)", allocs, sink)
	}
}

// TestChooseOpScanAllocs: the candidate-structure pick with suspension
// and tried state in play is allocation-free — including the
// maintenance a pick performs (markTried removal, generation-bump
// restore, suspension bookkeeping).
func TestChooseOpScanAllocs(t *testing.T) {
	pctx, ops, pri := buildStraightLine(64, 2)
	s := newScheduler(context.Background(), pctx, ops, pri, Options{MaxSteps: DefaultMaxSteps})
	entry := pctx.G.Entry
	s.bumpGen()
	s.suspendOp(ops[40])
	s.markUnmoveable(ops[50])
	var sink *ir.Op
	allocs := testing.AllocsPerRun(500, func() {
		sink = s.chooseOp(entry, true, true)
		s.markTried(sink)
		s.bumpGen()
	})
	if allocs != 0 {
		t.Fatalf("chooseOp pick path allocates %v bytes/run, want 0", allocs)
	}
	if sink == nil {
		t.Fatal("chooseOp found nothing")
	}
}
