package deps

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// liveFixture: n1 -> branch(cj) ? n2(reads r2; writes r9) -> n3(reads r9)
//
//	: exit
func liveFixture(t *testing.T) (*graph.Graph, *ir.Alloc, []*graph.Node, []ir.Reg) {
	t.Helper()
	al := ir.NewAlloc()
	g := graph.New(al)
	r1, r2, r9 := al.Reg("r1"), al.Reg("r2"), al.Reg("r9")

	n1 := graph.AppendOp(g, nil, &ir.Op{ID: al.OpID(), Kind: ir.Const, Dst: r1, Imm: 1})
	cj := &ir.Op{ID: al.OpID(), Kind: ir.CJ, Src: [2]ir.Reg{r1}, Imm: 10, BImm: true, Rel: ir.Lt}
	nbr := graph.AppendBranch(g, n1, cj, nil)
	n2 := graph.AppendOp(g, nbr, &ir.Op{ID: al.OpID(), Kind: ir.Add, Dst: r9, Src: [2]ir.Reg{r2}, Imm: 1, BImm: true})
	n3 := graph.AppendOp(g, n2, &ir.Op{ID: al.OpID(), Kind: ir.Mul, Dst: al.Reg("r4"), Src: [2]ir.Reg{r9, r9}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, al, []*graph.Node{n1, nbr, n2, n3}, []ir.Reg{r1, r2, r9}
}

func TestLiveAtEntry(t *testing.T) {
	g, _, ns, rs := liveFixture(t)
	r1, r2, r9 := rs[0], rs[1], rs[2]

	// r2 is read in n2: live at every entry from n1 down to n2.
	for _, n := range ns[:3] {
		if !LiveAtEntry(g, n, r2, nil) {
			t.Errorf("r2 should be live at n%d", n.ID)
		}
	}
	// r9 is written at n2's root before n3 reads it: dead at n1/n2
	// entry, live at n3.
	if LiveAtEntry(g, ns[0], r9, nil) {
		t.Error("r9 live at n1 despite kill at n2")
	}
	if !LiveAtEntry(g, ns[3], r9, nil) {
		t.Error("r9 dead at its reader")
	}
	// r1 is read by the branch.
	if !LiveAtEntry(g, ns[1], r1, nil) {
		t.Error("branch source not live")
	}
	// Exit-live registers are live along the exit path.
	exit := map[ir.Reg]bool{r2: true}
	if !LiveAtEntry(g, ns[3], r2, exit) {
		t.Error("exit-live register dead before program exit")
	}
	if LiveAtEntry(g, ns[3], r1, map[ir.Reg]bool{}) {
		t.Error("r1 has no reader below n3")
	}
}

func TestLiveOnSubtreeAndDefines(t *testing.T) {
	g, _, ns, rs := liveFixture(t)
	r2, r9 := rs[1], rs[2]
	nbr := ns[1]
	root := nbr.Root
	// The false side exits the program: with r2 exit-live it is live on
	// that subtree; r9 is not.
	exit := map[ir.Reg]bool{r2: true}
	if !LiveOnSubtree(g, root.False, r2, exit) {
		t.Error("r2 should be live on the exit subtree")
	}
	if LiveOnSubtree(g, root.False, r9, exit) {
		t.Error("r9 should be dead on the exit subtree")
	}
	// The true side reaches n2/n3: r2 live, r9 killed at n2 before use.
	if !LiveOnSubtree(g, root.True, r2, nil) {
		t.Error("r2 should be live via the continue subtree")
	}
	if LiveOnSubtree(g, root.True, r9, nil) {
		t.Error("r9 is killed at n2's root before any read")
	}

	if SubtreeDefines(root.True, r9) || SubtreeDefines(root.False, r2) {
		t.Error("SubtreeDefines must only see defs inside the subtree")
	}
}
