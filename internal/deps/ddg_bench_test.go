package deps_test

import (
	"fmt"
	"testing"

	"repro/internal/deps"
	"repro/internal/livermore"
	"repro/internal/pipeline"
)

// BenchmarkDDGBuild measures the one-pass dependence-matrix build on a
// real unwound kernel (LL5's memory recurrence makes it the
// dependence-densest of the paper's loops).
func BenchmarkDDGBuild(b *testing.B) {
	for _, u := range []int{24, 96} {
		uw, err := pipeline.Unwind(livermore.ByName("LL5").Spec, u)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("unwind=%d", u), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				deps.Build(uw.Ops)
			}
			b.ReportMetric(float64(len(uw.Ops)), "ops")
		})
	}
}
