package deps

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// randomProgram generates n ops spanning every dependence-relevant
// shape: defs and uses over a small register pool (forcing true, anti,
// and output overlaps), direct and indirect loads/stores over a couple
// of arrays, and immediate-operand variants.
func randomProgram(rng *rand.Rand, n int) []*ir.Op {
	reg := func() ir.Reg { return ir.Reg(1 + rng.Intn(8)) }
	mem := func() ir.MemRef {
		m := ir.MemRef{Array: ir.Array(1 + rng.Intn(2)), Index: int64(rng.Intn(4))}
		if rng.Intn(4) == 0 {
			m.IndexReg = reg()
		}
		return m
	}
	ops := make([]*ir.Op, n)
	for i := range ops {
		op := &ir.Op{ID: i + 1, Origin: i, Iter: 0}
		switch rng.Intn(6) {
		case 0:
			op.Kind = ir.Const
			op.Dst = reg()
			op.Imm = int64(rng.Intn(100))
		case 1:
			op.Kind = ir.Copy
			op.Dst, op.Src[0] = reg(), reg()
		case 2:
			op.Kind = ir.Add
			op.Dst, op.Src[0] = reg(), reg()
			if rng.Intn(2) == 0 {
				op.BImm, op.Imm = true, 7
			} else {
				op.Src[1] = reg()
			}
		case 3:
			op.Kind = ir.Load
			op.Dst, op.Mem = reg(), mem()
		case 4:
			op.Kind = ir.Store
			op.Src[0], op.Mem = reg(), mem()
		case 5:
			op.Kind = ir.CJ
			op.Src[0] = reg()
			if rng.Intn(2) == 0 {
				op.BImm, op.Imm = true, 3
			} else {
				op.Src[1] = reg()
			}
		}
		ops[i] = op
	}
	return ops
}

// TestMatrixMatchesPairwise is the bit-matrix/naive-pairwise
// equivalence property: for every ordered pair of a random program
// (both directions, diagonal included), the DDG's matrix answer must
// equal the live pairwise test.
func TestMatrixMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ops := randomProgram(rng, 3+rng.Intn(60))
		d := Build(ops)
		for _, a := range ops {
			for _, b := range ops {
				if got, want := d.Serializes(a, b), Serializes(a, b); got != want {
					t.Fatalf("trial %d: Serializes(%v, %v) matrix=%v pairwise=%v", trial, a, b, got, want)
				}
				if got, want := d.Blocks(a, b), Blocks(a, b); got != want {
					t.Fatalf("trial %d: Blocks(%v, %v) matrix=%v pairwise=%v", trial, a, b, got, want)
				}
			}
		}
	}
}

// TestCSRMatchesNaiveEdges cross-checks the CSR adjacency against the
// O(n²) double loop the build replaced.
func TestCSRMatchesNaiveEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ops := randomProgram(rng, 3+rng.Intn(40))
		d := Build(ops)
		for i, a := range ops {
			var wantSucc []*ir.Op
			for _, b := range ops[i+1:] {
				if Serializes(a, b) {
					wantSucc = append(wantSucc, b)
				}
			}
			gotSucc := d.Succs(a)
			if len(gotSucc) != len(wantSucc) {
				t.Fatalf("trial %d op %d: %d succs, want %d", trial, i, len(gotSucc), len(wantSucc))
			}
			for k := range wantSucc {
				if gotSucc[k] != wantSucc[k] {
					t.Fatalf("trial %d op %d: succ %d differs", trial, i, k)
				}
			}
			if d.Dependents(a) != len(wantSucc) {
				t.Fatalf("trial %d op %d: dependents %d, want %d", trial, i, d.Dependents(a), len(wantSucc))
			}
		}
		// Chain lengths against a direct backward recomputation.
		want := make([]int, len(ops))
		for i := len(ops) - 1; i >= 0; i-- {
			best := 0
			for _, s := range d.Succs(ops[i]) {
				if c := want[s.Index]; c > best {
					best = c
				}
			}
			want[i] = best + 1
			if d.ChainLen(ops[i]) != want[i] {
				t.Fatalf("trial %d op %d: chain %d, want %d", trial, i, d.ChainLen(ops[i]), want[i])
			}
		}
	}
}

// TestMatrixFallbackAfterRewrite: once an op's operands are rewritten
// and reported, queries involving it must track the live registers, not
// the build-time snapshot.
func TestMatrixFallbackAfterRewrite(t *testing.T) {
	// a defines r1; b reads r1 (true dep). Rewriting b to read r2
	// dissolves the dependence.
	a := &ir.Op{ID: 1, Origin: 0, Kind: ir.Const, Dst: 1, Imm: 5}
	b := &ir.Op{ID: 2, Origin: 1, Kind: ir.Add, Dst: 3, Src: [2]ir.Reg{1}, Imm: 1, BImm: true}
	d := Build([]*ir.Op{a, b})
	if !d.Serializes(a, b) {
		t.Fatal("build-time dependence missing")
	}
	b.ReplaceUse(1, 2)
	if !d.Serializes(a, b) {
		t.Fatal("unreported rewrite must not change matrix answers")
	}
	d.MarkRewritten(b)
	if d.Serializes(a, b) {
		t.Fatal("dirty op must fall back to the live pairwise test")
	}
	if d.Serializes(a, b) != Serializes(a, b) || d.Blocks(a, b) != Blocks(a, b) {
		t.Fatal("fallback disagrees with pairwise")
	}
}

// TestMatrixIgnoresForeignOps: ops outside the analyzed program (frozen
// clones, another program's ops reusing the same index range) must
// resolve through the pairwise fallback, never through the matrix.
func TestMatrixIgnoresForeignOps(t *testing.T) {
	a := &ir.Op{ID: 1, Origin: 0, Kind: ir.Const, Dst: 1, Imm: 5}
	b := &ir.Op{ID: 2, Origin: 1, Kind: ir.Add, Dst: 2, Src: [2]ir.Reg{1}, Imm: 1, BImm: true}
	d := Build([]*ir.Op{a, b})

	clone := a.Clone(99, true)
	if clone.Index != ir.NoIndex {
		t.Fatalf("frozen clone Index = %d, want NoIndex", clone.Index)
	}
	if d.Serializes(clone, b) != Serializes(clone, b) {
		t.Fatal("clone query disagrees with pairwise")
	}

	// An op from a different program whose Index collides with a's.
	foreign := &ir.Op{ID: 7, Index: 0, Kind: ir.Const, Dst: 9, Imm: 1}
	if d.Serializes(foreign, b) != Serializes(foreign, b) {
		t.Fatal("foreign op must not alias the matrix row of a")
	}
	if d.ChainLen(foreign) != 0 || d.Dependents(foreign) != 0 || d.Succs(foreign) != nil {
		t.Fatal("foreign op leaked into priority data")
	}
}

// TestMatrixQueryAllocs pins the hot-path guarantee: matrix queries and
// priority lookups allocate nothing, on both the matrix and the
// fallback path.
func TestMatrixQueryAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := randomProgram(rng, 64)
	d := Build(ops)
	d.MarkRewritten(ops[5])
	var sink bool
	allocs := testing.AllocsPerRun(1000, func() {
		sink = d.Serializes(ops[1], ops[2]) || sink
		sink = d.Blocks(ops[2], ops[3]) || sink
		sink = d.Serializes(ops[5], ops[6]) || sink // dirty: pairwise fallback
		sink = d.ChainLen(ops[4]) > 0 || sink
		sink = len(d.Succs(ops[7])) > 0 || sink
	})
	if allocs != 0 {
		t.Fatalf("dependence queries allocate %v bytes/run, want 0", allocs)
	}
	_ = sink
}
