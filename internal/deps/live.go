package deps

import (
	"repro/internal/graph"
	"repro/internal/ir"
)

// LiveAtEntry reports whether register r may be read before being
// overwritten on some execution path starting at node n (inclusive).
// exitLive lists registers observable at program exit.
//
// Reads inside an instruction happen at instruction entry (parallel
// fetch), so any use of r anywhere in a node's tree makes r live at that
// node's entry. A definition kills r only when it commits on every path
// through the node, i.e. when the defining operation sits at the root
// vertex. Both tests are O(1) reads of the node's def/use summary — the
// chain walk over successors remains, but no node's tree is ever
// re-walked op by op.
func LiveAtEntry(g *graph.Graph, n *graph.Node, r ir.Reg, exitLive map[ir.Reg]bool) bool {
	if r == ir.NoReg {
		return false
	}
	// Epoch marks instead of a per-call seen map, and VisitLeaves
	// instead of the allocating Leaves slice: this query runs inside the
	// schedulers' hoist-legality probes, which must not allocate.
	return liveAtEntry(g, n, r, exitLive, g.BeginVisit())
}

func liveAtEntry(g *graph.Graph, m *graph.Node, r ir.Reg, exitLive map[ir.Reg]bool, epoch uint64) bool {
	if m == nil {
		return exitLive[r]
	}
	if m.Visited(epoch) {
		return false
	}
	if m.Root.SubtreeReads(r) {
		return true
	}
	if m.Root.DefinesHere(r) {
		// Root-vertex commit: kills r on every path through m.
		return false
	}
	live := false
	m.VisitLeaves(func(l *graph.Vertex) bool {
		if liveAtEntry(g, l.Succ, r, exitLive, epoch) {
			live = true
			return false
		}
		return true
	})
	return live
}

// LiveAtEntryReference is the retained op-by-op implementation of
// LiveAtEntry: it recomputes each node's used/killed facts by walking the
// instruction tree instead of reading the maintained summary. Kept as
// the cross-check oracle (ps runs it next to the summary version under
// CrossCheck) and as the executable definition of the liveness rule.
func LiveAtEntryReference(g *graph.Graph, n *graph.Node, r ir.Reg, exitLive map[ir.Reg]bool) bool {
	if r == ir.NoReg {
		return false
	}
	return liveAtEntryReference(g, n, r, exitLive, g.BeginVisit())
}

func liveAtEntryReference(g *graph.Graph, m *graph.Node, r ir.Reg, exitLive map[ir.Reg]bool, epoch uint64) bool {
	if m == nil {
		return exitLive[r]
	}
	if m.Visited(epoch) {
		return false
	}
	used := false
	killed := false
	m.Walk(func(v *graph.Vertex) {
		for _, op := range v.Ops {
			if op.ReadsReg(r) {
				used = true
			}
			if op.Def() == r && v == m.Root {
				killed = true
			}
		}
		if v.CJ != nil && v.CJ.ReadsReg(r) {
			used = true
		}
	})
	if used {
		return true
	}
	if killed {
		return false
	}
	live := false
	m.VisitLeaves(func(l *graph.Vertex) bool {
		if liveAtEntryReference(g, l.Succ, r, exitLive, epoch) {
			live = true
			return false
		}
		return true
	})
	return live
}

// LiveOnSubtree reports whether register r is observable when control
// flows through the instruction subtree rooted at v: either some
// downstream node (reached from a leaf under v) may read r before
// killing it, or the program exits under v with r in exitLive. Uses
// *inside* the node fetch at entry and are unaffected by commits, so
// only downstream liveness matters. This is the write-live test for
// speculative hoisting past a branch.
func LiveOnSubtree(g *graph.Graph, v *graph.Vertex, r ir.Reg, exitLive map[ir.Reg]bool) bool {
	if r == ir.NoReg {
		return false
	}
	return liveOnSubtree(g, v, r, exitLive, LiveAtEntry)
}

// LiveOnSubtreeReference is LiveOnSubtree over the reference (walking)
// per-node liveness; the cross-check oracle for the write-live test.
func LiveOnSubtreeReference(g *graph.Graph, v *graph.Vertex, r ir.Reg, exitLive map[ir.Reg]bool) bool {
	if r == ir.NoReg {
		return false
	}
	return liveOnSubtree(g, v, r, exitLive, LiveAtEntryReference)
}

func liveOnSubtree(g *graph.Graph, w *graph.Vertex, r ir.Reg, exitLive map[ir.Reg]bool,
	atEntry func(*graph.Graph, *graph.Node, ir.Reg, map[ir.Reg]bool) bool) bool {
	if w.IsLeaf() {
		if w.Succ == nil {
			return exitLive[r]
		}
		return atEntry(g, w.Succ, r, exitLive)
	}
	return liveOnSubtree(g, w.True, r, exitLive, atEntry) ||
		liveOnSubtree(g, w.False, r, exitLive, atEntry)
}

// SubtreeDefines reports whether any operation in the subtree rooted at v
// (branches excluded — they define nothing) writes register r. Answered
// from the subtree's maintained def summary.
func SubtreeDefines(v *graph.Vertex, r ir.Reg) bool {
	return v.SubtreeDefines(r)
}
