package deps

import (
	"repro/internal/graph"
	"repro/internal/ir"
)

// LiveAtEntry reports whether register r may be read before being
// overwritten on some execution path starting at node n (inclusive).
// exitLive lists registers observable at program exit.
//
// Reads inside an instruction happen at instruction entry (parallel
// fetch), so any use of r anywhere in a node's tree makes r live at that
// node's entry. A definition kills r only when it commits on every path
// through the node, i.e. when the defining operation sits at the root
// vertex.
func LiveAtEntry(g *graph.Graph, n *graph.Node, r ir.Reg, exitLive map[ir.Reg]bool) bool {
	if r == ir.NoReg {
		return false
	}
	seen := map[*graph.Node]bool{}
	var visit func(m *graph.Node) bool
	visit = func(m *graph.Node) bool {
		if m == nil {
			return exitLive[r]
		}
		if seen[m] {
			return false
		}
		seen[m] = true
		used := false
		killed := false
		m.Walk(func(v *graph.Vertex) {
			for _, op := range v.Ops {
				if op.ReadsReg(r) {
					used = true
				}
				if op.Def() == r && v == m.Root {
					killed = true
				}
			}
			if v.CJ != nil && v.CJ.ReadsReg(r) {
				used = true
			}
		})
		if used {
			return true
		}
		if killed {
			return false
		}
		for _, l := range m.Leaves() {
			if visit(l.Succ) {
				return true
			}
		}
		return false
	}
	return visit(n)
}

// LiveOnSubtree reports whether register r is observable when control
// flows through the instruction subtree rooted at v: either some
// downstream node (reached from a leaf under v) may read r before
// killing it, or the program exits under v with r in exitLive. Uses
// *inside* the node fetch at entry and are unaffected by commits, so
// only downstream liveness matters. This is the write-live test for
// speculative hoisting past a branch.
func LiveOnSubtree(g *graph.Graph, v *graph.Vertex, r ir.Reg, exitLive map[ir.Reg]bool) bool {
	if r == ir.NoReg {
		return false
	}
	live := false
	var walk func(w *graph.Vertex)
	walk = func(w *graph.Vertex) {
		if live {
			return
		}
		if w.IsLeaf() {
			if w.Succ == nil {
				if exitLive[r] {
					live = true
				}
			} else if LiveAtEntry(g, w.Succ, r, exitLive) {
				live = true
			}
			return
		}
		walk(w.True)
		walk(w.False)
	}
	walk(v)
	return live
}

// SubtreeDefines reports whether any operation in the subtree rooted at v
// (branches excluded — they define nothing) writes register r.
func SubtreeDefines(v *graph.Vertex, r ir.Reg) bool {
	if r == ir.NoReg {
		return false
	}
	found := false
	var walk func(w *graph.Vertex)
	walk = func(w *graph.Vertex) {
		if found {
			return
		}
		for _, op := range w.Ops {
			if op.Def() == r {
				found = true
				return
			}
		}
		if !w.IsLeaf() {
			walk(w.True)
			walk(w.False)
		}
	}
	walk(v)
	return found
}
