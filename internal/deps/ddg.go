package deps

import (
	"math/bits"
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
)

// DDG is the data-dependence graph of an operation sequence (usually the
// unwound loop, in original sequential order). Edges run from producers
// to the later operations that must not be reordered above them.
//
// Build assigns every op its dense Index (ops[i].Index = i) and
// precomputes the full directed Serializes and Blocks relations as
// packed bit-matrices (O(n²/64) words), so the scheduler hot loops
// answer pairwise dependence questions with one load instead of
// re-deriving them from the operand encodings. The matrices are
// read-only after Build and safe to share across goroutines; the only
// mutable word is the dirty set, which belongs to the single scheduling
// session that owns the graph (see MarkRewritten).
type DDG struct {
	Ops []*ir.Op
	n   int

	// ser and blk hold the build-time Serializes/Blocks answers for
	// every ordered pair (by dense index).
	ser bitset.Matrix
	blk bitset.Matrix

	// dirty marks ops whose operands were rewritten (copy propagation,
	// renaming) after the matrices were built; queries involving a dirty
	// op fall back to the live pairwise test so answers never go stale.
	dirty bitset.Set

	// CSR adjacency over the i<j edges of ser, in (i asc, j asc) /
	// (j asc, i asc) order — the same lists, in the same order, the
	// map-based pairwise build used to produce.
	succAll, predAll []*ir.Op
	succOff, predOff []int32

	chain      []int32
	dependents []int32
}

// Build constructs the DDG for ops, which must be in original sequential
// order, assigning ops[i].Index = i. Only serializing dependences
// (register true deps and memory conflicts) form edges: the unwinder
// emits SSA-renamed code, so anti/output register dependences cannot
// occur, and they are exactly the dependences renaming would remove
// anyway.
//
// The build is one pass over per-register def/use tables plus a scan of
// the memory-op pairs — O(n + edges + mem²) — instead of the all-pairs
// O(n²) dependence tests it replaces; the result is bit-identical.
func Build(ops []*ir.Op) *DDG {
	n := len(ops)
	d := &DDG{
		Ops:   ops,
		n:     n,
		ser:   bitset.NewMatrix(n),
		blk:   bitset.NewMatrix(n),
		dirty: bitset.New(n),
	}
	maxReg := ir.NoReg
	var useBuf [3]ir.Reg
	for i, op := range ops {
		op.Index = i
		// Fill the op's cached Def/Uses view: from here on the operand
		// fields only change through ReplaceUse/SetDst (the graph's
		// rewrite entry points), which keep the cache exact, so every
		// downstream legality probe reads cached fields instead of
		// re-running the kind switch.
		op.CacheOperands()
		if r := op.Def(); r > maxReg {
			maxReg = r
		}
		for _, r := range op.Uses(useBuf[:0]) {
			if r > maxReg {
				maxReg = r
			}
		}
	}

	// Per-register def and reader index lists (SSA programs have one def
	// per register; the tables stay exact for non-SSA inputs too).
	defs := make([][]int32, maxReg+1)
	readers := make([][]int32, maxReg+1)
	var memIdx []int32
	for i, op := range ops {
		if r := op.Def(); r != ir.NoReg {
			defs[r] = append(defs[r], int32(i))
		}
		for _, r := range op.Uses(useBuf[:0]) {
			if r != ir.NoReg {
				readers[r] = append(readers[r], int32(i))
			}
		}
		if !op.Mem.IsZero() {
			memIdx = append(memIdx, int32(i))
		}
	}

	// Register true dependences: def i feeds reader j (any direction —
	// the matrices answer arbitrary ordered pairs, not just program
	// order). A true dep (i,j) serializes, and blocks both ways (the
	// reverse direction is the anti dependence).
	for r := ir.Reg(1); r <= maxReg; r++ {
		for _, i := range defs[r] {
			for _, j := range readers[r] {
				d.ser.Set(int(i), int(j))
				d.blk.Set(int(i), int(j))
				d.blk.Set(int(j), int(i))
			}
		}
		// Output dependences: two defs of the same register block in
		// both directions (including the i==j diagonal, matching the
		// pairwise OutputDep(a,a) answer).
		for _, i := range defs[r] {
			for _, j := range defs[r] {
				d.blk.Set(int(i), int(j))
			}
		}
	}

	// Memory conflicts (symmetric): both serialize and block.
	for _, i := range memIdx {
		for _, j := range memIdx {
			if j < i {
				continue
			}
			if MemDep(ops[i], ops[j]) {
				d.ser.Set(int(i), int(j))
				d.ser.Set(int(j), int(i))
				d.blk.Set(int(i), int(j))
				d.blk.Set(int(j), int(i))
			}
		}
	}

	d.buildCSR()

	// Longest dependence chain rooted at each op, computed backwards
	// over the sequential order (the DDG is a DAG because edges always
	// point later in the sequence).
	d.chain = make([]int32, n)
	d.dependents = make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		best := int32(0)
		succs := d.succAll[d.succOff[i]:d.succOff[i+1]]
		for _, s := range succs {
			if c := d.chain[s.Index]; c > best {
				best = c
			}
		}
		d.chain[i] = best + 1
		d.dependents[i] = int32(len(succs))
	}
	return d
}

// forEachSucc calls f(j) for every j > i with ser(i, j) set, in
// ascending j order — the program-order edges of row i.
func (d *DDG) forEachSucc(i int, f func(j int)) {
	for w, word := range d.ser.Row(i) {
		// Mask off j <= i within this word.
		lo := w * 64
		if lo+63 <= i {
			continue
		}
		if i >= lo {
			word &= ^uint64(0) << (uint(i-lo) + 1)
		}
		for word != 0 {
			f(lo + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// buildCSR extracts the program-order (i<j) edges of the Serializes
// matrix into compressed adjacency, successors in ascending j per i and
// predecessors in ascending i per j.
func (d *DDG) buildCSR() {
	n := d.n
	d.succOff = make([]int32, n+1)
	d.predOff = make([]int32, n+1)
	edges := 0
	for i := 0; i < n; i++ {
		d.forEachSucc(i, func(j int) {
			d.succOff[i+1]++
			d.predOff[j+1]++
			edges++
		})
	}
	for i := 0; i < n; i++ {
		d.succOff[i+1] += d.succOff[i]
		d.predOff[i+1] += d.predOff[i]
	}
	d.succAll = make([]*ir.Op, edges)
	d.predAll = make([]*ir.Op, edges)
	succCur := make([]int32, n)
	predCur := make([]int32, n)
	copy(succCur, d.succOff[:n])
	copy(predCur, d.predOff[:n])
	for i := 0; i < n; i++ {
		d.forEachSucc(i, func(j int) {
			d.succAll[succCur[i]] = d.Ops[j]
			succCur[i]++
			d.predAll[predCur[j]] = d.Ops[i]
			predCur[j]++
		})
	}
}

// indexed reports whether op is addressable in the matrices: a valid
// dense index that still identifies this very op (frozen clones and ops
// from other programs fail the identity check) and no operand rewrite
// since Build.
func (d *DDG) indexed(op *ir.Op) (int, bool) {
	i := op.Index
	if uint(i) >= uint(d.n) || d.Ops[i] != op {
		return 0, false
	}
	return i, true
}

// Serializes answers the package-level Serializes test for (a, b): one
// matrix load when both ops are indexed and unrewritten, the live
// pairwise test otherwise. Zero allocations either way.
func (d *DDG) Serializes(a, b *ir.Op) bool {
	if i, ok := d.indexed(a); ok && !d.dirty.Has(i) {
		if j, ok := d.indexed(b); ok && !d.dirty.Has(j) {
			return d.ser.Has(i, j)
		}
	}
	return Serializes(a, b)
}

// Blocks answers the package-level Blocks test for (a, b) from the
// matrix, with the same staleness fallback as Serializes.
func (d *DDG) Blocks(a, b *ir.Op) bool {
	if i, ok := d.indexed(a); ok && !d.dirty.Has(i) {
		if j, ok := d.indexed(b); ok && !d.dirty.Has(j) {
			return d.blk.Has(i, j)
		}
	}
	return Blocks(a, b)
}

// MarkRewritten records that op's operands changed after Build (copy
// propagation or renaming): matrix queries involving op fall back to
// the live pairwise tests from now on. Priority data (chain lengths,
// dependent counts) deliberately stays at its build-time snapshot,
// exactly as the map-based implementation behaved.
func (d *DDG) MarkRewritten(op *ir.Op) {
	if i, ok := d.indexed(op); ok {
		d.dirty.Add(i)
	}
}

// ChainLen returns the length (in operations, including op itself) of
// the longest dependence chain rooted at op, or 0 for ops outside the
// analyzed program.
func (d *DDG) ChainLen(op *ir.Op) int {
	if i, ok := d.indexed(op); ok {
		return int(d.chain[i])
	}
	return 0
}

// Dependents returns the number of direct dependents of op.
func (d *DDG) Dependents(op *ir.Op) int {
	if i, ok := d.indexed(op); ok {
		return int(d.dependents[i])
	}
	return 0
}

// Succs returns the dependence successors of op in program order.
func (d *DDG) Succs(op *ir.Op) []*ir.Op {
	if i, ok := d.indexed(op); ok {
		return d.succAll[d.succOff[i]:d.succOff[i+1]]
	}
	return nil
}

// Preds returns the dependence predecessors of op in program order.
func (d *DDG) Preds(op *ir.Op) []*ir.Op {
	if i, ok := d.indexed(op); ok {
		return d.predAll[d.predOff[i]:d.predOff[i+1]]
	}
	return nil
}

// Priority is the section 3.4 operation ordering: operation A precedes
// operation B if A's iteration is earlier (the Perfect Pipelining
// stipulation), then if the longest dependence chain rooted at A is
// longer, then if A has more dependents, then by original program order
// as a deterministic tiebreak.
type Priority struct {
	d *DDG
}

// NewPriority returns the ranking over the DDG's operations.
func NewPriority(d *DDG) *Priority { return &Priority{d: d} }

// DDG returns the dependence graph the priority ranks over, so
// schedulers handed a Priority can also query the dependence matrices.
func (p *Priority) DDG() *DDG { return p.d }

// Before reports whether a has strictly higher priority than b. The
// ID tiebreak makes it a strict total order, so Rank is a function of
// the op set alone, independent of input order.
func (p *Priority) Before(a, b *ir.Op) bool {
	if a.Iter != b.Iter {
		// NoIter (= -1) pre-loop code naturally ranks highest.
		return a.Iter < b.Iter
	}
	ca, cb := p.d.ChainLen(a), p.d.ChainLen(b)
	if ca != cb {
		return ca > cb
	}
	da, db := p.d.Dependents(a), p.d.Dependents(b)
	if da != db {
		return da > db
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.ID < b.ID
}

// Rank sorts ops by descending priority (highest first), stably and
// deterministically. Ranks are static for a schedule's lifetime: the
// core scheduler freezes this order into its candidate selectors
// (rank-indexed bitsets, DESIGN.md §6), so priority must never depend
// on graph placement — only on the dependence structure, which the
// scheduler's semantics-preserving moves keep fixed.
func (p *Priority) Rank(ops []*ir.Op) {
	sort.SliceStable(ops, func(i, j int) bool { return p.Before(ops[i], ops[j]) })
}
