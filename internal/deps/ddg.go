package deps

import (
	"sort"

	"repro/internal/ir"
)

// DDG is the data-dependence graph of an operation sequence (usually the
// unwound loop, in original sequential order). Edges run from producers
// to the later operations that must not be reordered above them.
type DDG struct {
	Ops  []*ir.Op
	succ map[*ir.Op][]*ir.Op
	pred map[*ir.Op][]*ir.Op

	chain      map[*ir.Op]int
	dependents map[*ir.Op]int
}

// Build constructs the DDG for ops, which must be in original sequential
// order. Only serializing dependences (register true deps and memory
// conflicts) form edges: the unwinder emits SSA-renamed code, so
// anti/output register dependences cannot occur, and they are exactly the
// dependences renaming would remove anyway.
func Build(ops []*ir.Op) *DDG {
	d := &DDG{
		Ops:        ops,
		succ:       make(map[*ir.Op][]*ir.Op, len(ops)),
		pred:       make(map[*ir.Op][]*ir.Op, len(ops)),
		chain:      make(map[*ir.Op]int, len(ops)),
		dependents: make(map[*ir.Op]int, len(ops)),
	}
	for i, a := range ops {
		for _, b := range ops[i+1:] {
			if Serializes(a, b) {
				d.succ[a] = append(d.succ[a], b)
				d.pred[b] = append(d.pred[b], a)
			}
		}
	}
	// Longest dependence chain rooted at each op, in ops, computed
	// backwards over the sequential order (the DDG is a DAG because
	// edges always point later in the sequence).
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		best := 0
		for _, s := range d.succ[op] {
			if c := d.chain[s]; c > best {
				best = c
			}
		}
		d.chain[op] = best + 1
		d.dependents[op] = len(d.succ[op])
	}
	return d
}

// ChainLen returns the length (in operations, including op itself) of
// the longest dependence chain rooted at op.
func (d *DDG) ChainLen(op *ir.Op) int { return d.chain[op] }

// Dependents returns the number of direct dependents of op.
func (d *DDG) Dependents(op *ir.Op) int { return d.dependents[op] }

// Succs returns the dependence successors of op.
func (d *DDG) Succs(op *ir.Op) []*ir.Op { return d.succ[op] }

// Preds returns the dependence predecessors of op.
func (d *DDG) Preds(op *ir.Op) []*ir.Op { return d.pred[op] }

// Priority is the section 3.4 operation ordering: operation A precedes
// operation B if A's iteration is earlier (the Perfect Pipelining
// stipulation), then if the longest dependence chain rooted at A is
// longer, then if A has more dependents, then by original program order
// as a deterministic tiebreak.
type Priority struct {
	d *DDG
}

// NewPriority returns the ranking over the DDG's operations.
func NewPriority(d *DDG) *Priority { return &Priority{d: d} }

// Before reports whether a has strictly higher priority than b.
func (p *Priority) Before(a, b *ir.Op) bool {
	if a.Iter != b.Iter {
		// NoIter (= -1) pre-loop code naturally ranks highest.
		return a.Iter < b.Iter
	}
	ca, cb := p.d.chain[a], p.d.chain[b]
	if ca != cb {
		return ca > cb
	}
	da, db := p.d.dependents[a], p.d.dependents[b]
	if da != db {
		return da > db
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.ID < b.ID
}

// Rank sorts ops by descending priority (highest first), stably and
// deterministically.
func (p *Priority) Rank(ops []*ir.Op) {
	sort.SliceStable(ops, func(i, j int) bool { return p.Before(ops[i], ops[j]) })
}
