package deps

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

func TestPairwiseDeps(t *testing.T) {
	a := &ir.Op{Kind: ir.Add, Dst: 1, Src: [2]ir.Reg{2, 3}}
	b := &ir.Op{Kind: ir.Mul, Dst: 4, Src: [2]ir.Reg{1, 3}}
	if !TrueDep(a, b) || TrueDep(b, a) {
		t.Error("TrueDep wrong")
	}
	if !AntiDep(b, a) { // a writes r1 which b reads -> reversed pair
		t.Error("AntiDep wrong")
	}
	c := &ir.Op{Kind: ir.Sub, Dst: 1, Src: [2]ir.Reg{5, 6}}
	if !OutputDep(a, c) {
		t.Error("OutputDep wrong")
	}
	if !Blocks(a, b) || !Serializes(a, b) {
		t.Error("Blocks/Serializes wrong")
	}
	if Serializes(b, c) { // anti only: removable by renaming
		t.Error("anti dep must not serialize")
	}
	if !Blocks(b, c) {
		t.Error("anti dep must block un-renamed motion")
	}
}

func TestMemDeps(t *testing.T) {
	st := &ir.Op{Kind: ir.Store, Src: [2]ir.Reg{1}, Mem: ir.MemRef{Array: 1, Index: 5}}
	ld := &ir.Op{Kind: ir.Load, Dst: 2, Mem: ir.MemRef{Array: 1, Index: 5}}
	ld2 := &ir.Op{Kind: ir.Load, Dst: 3, Mem: ir.MemRef{Array: 1, Index: 6}}
	ldInd := &ir.Op{Kind: ir.Load, Dst: 4, Mem: ir.MemRef{Array: 1, IndexReg: 9}}
	if !MemDep(st, ld) {
		t.Error("store/load same cell must conflict")
	}
	if MemDep(st, ld2) {
		t.Error("different cells must not conflict")
	}
	if MemDep(ld, ld2) || MemDep(ld, ldInd) {
		t.Error("load/load pairs never conflict")
	}
	if !MemDep(st, ldInd) {
		t.Error("indirect ref must conservatively conflict")
	}
}

func TestDDGChainsAndPriority(t *testing.T) {
	// a -> b -> c and independent d.
	a := &ir.Op{ID: 1, Origin: 0, Iter: 0, Kind: ir.Const, Dst: 1, Imm: 1}
	b := &ir.Op{ID: 2, Origin: 1, Iter: 0, Kind: ir.Add, Dst: 2, Src: [2]ir.Reg{1}, Imm: 1, BImm: true}
	c := &ir.Op{ID: 3, Origin: 2, Iter: 0, Kind: ir.Add, Dst: 3, Src: [2]ir.Reg{2}, Imm: 1, BImm: true}
	d := &ir.Op{ID: 4, Origin: 3, Iter: 0, Kind: ir.Const, Dst: 4, Imm: 7}
	g := Build([]*ir.Op{a, b, c, d})
	if g.ChainLen(a) != 3 || g.ChainLen(b) != 2 || g.ChainLen(c) != 1 || g.ChainLen(d) != 1 {
		t.Fatalf("chains: a=%d b=%d c=%d d=%d", g.ChainLen(a), g.ChainLen(b), g.ChainLen(c), g.ChainLen(d))
	}
	p := NewPriority(g)
	if !p.Before(a, b) || !p.Before(b, c) || !p.Before(a, d) {
		t.Error("chain-length priority wrong")
	}
	// c and d tie on chain length and dependents; original order breaks it.
	if !p.Before(c, d) || p.Before(d, c) {
		t.Error("tiebreak wrong")
	}
	// Iteration dominates everything.
	e := &ir.Op{ID: 5, Origin: 0, Iter: 1, Kind: ir.Const, Dst: 5, Imm: 1}
	g2 := Build([]*ir.Op{a, b, c, d, e})
	p2 := NewPriority(g2)
	if !p2.Before(d, e) {
		t.Error("iteration stipulation violated")
	}
	ops := []*ir.Op{e, d, c, b, a}
	p2.Rank(ops)
	if ops[0] != a || ops[len(ops)-1] != e {
		t.Errorf("Rank order wrong: %v", ops)
	}
}

// TestRankTotalOrderDeterminism: Before is a strict total order (the ID
// tiebreak), so Rank yields one canonical order regardless of input
// permutation. The core scheduler's candidate selectors freeze this
// order into rank-indexed bitsets for a schedule's lifetime; a
// placement-dependent or input-order-dependent priority would silently
// change pick sequences.
func TestRankTotalOrderDeterminism(t *testing.T) {
	var ops []*ir.Op
	var prev ir.Reg
	for i := 0; i < 40; i++ {
		op := &ir.Op{ID: i + 1, Origin: i % 7, Iter: i % 3, Kind: ir.Const, Dst: ir.Reg(i + 1), Imm: int64(i)}
		if i%4 == 0 && prev != 0 {
			op.Kind, op.Src, op.Imm, op.BImm = ir.Add, [2]ir.Reg{prev}, 1, true
		}
		prev = op.Dst
		ops = append(ops, op)
	}
	p := NewPriority(Build(ops))
	want := append([]*ir.Op(nil), ops...)
	p.Rank(want)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		got := append([]*ir.Op(nil), ops...)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		p.Rank(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank %d is op %d, want op %d", trial, i, got[i].ID, want[i].ID)
			}
		}
	}
	for i := 0; i+1 < len(want); i++ {
		if p.Before(want[i+1], want[i]) {
			t.Fatalf("ranks %d/%d not antisymmetric", i, i+1)
		}
	}
}

func dotSpec() *ir.LoopSpec {
	return &ir.LoopSpec{
		Name: "dot",
		Body: []ir.BodyOp{
			ir.BLoad("t1", ir.Aff("Z", 1, 0)),
			ir.BLoad("t2", ir.Aff("X", 1, 0)),
			ir.BMul("t3", "t1", "t2"),
			ir.BAdd("q", "q", "t3"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func TestAnalyzeAccumulatorRecurrence(t *testing.T) {
	info := Analyze(dotSpec())
	if info.NumOps != 6 {
		t.Fatalf("NumOps = %d, want 6", info.NumOps)
	}
	// q = q + t3 is a 1-op cycle at distance 1: RecMII 1 (the counter
	// increment forms the same bound).
	if math.Abs(info.RecMII-1) > 1e-6 {
		t.Fatalf("RecMII = %v, want 1", info.RecMII)
	}
	// load -> mul -> add is the critical intra-iteration chain.
	if info.CritPath != 3 {
		t.Fatalf("CritPath = %d, want 3", info.CritPath)
	}
}

func TestAnalyzeMemoryRecurrence(t *testing.T) {
	// LL5-style: x[k] = z[k]*(y[k] - x[k-1]); raw memory recurrence
	// load x[k-1] <- store x[k] at distance 1 gives a 4-op cycle:
	// load, sub, mul, store / distance 1 -> RecMII 4.
	s := &ir.LoopSpec{
		Name: "tridiag",
		Body: []ir.BodyOp{
			ir.BLoad("a", ir.Aff("X", 1, -1)),
			ir.BLoad("b", ir.Aff("Y", 1, 0)),
			ir.BSub("c", "b", "a"),
			ir.BLoad("z", ir.Aff("Z", 1, 0)),
			ir.BMul("d", "z", "c"),
			ir.BStore(ir.Aff("X", 1, 0), "d"),
		},
		Step: 1, TripVar: "n",
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	info := Analyze(s)
	if math.Abs(info.RecMII-4) > 1e-6 {
		t.Fatalf("RecMII = %v, want 4", info.RecMII)
	}
}

func TestAnalyzeVectorizable(t *testing.T) {
	s := &ir.LoopSpec{
		Name: "saxpy",
		Body: []ir.BodyOp{
			ir.BLoad("t1", ir.Aff("Y", 1, 0)),
			ir.BMul("t2", "t1", "r"),
			ir.BStore(ir.Aff("X", 1, 0), "t2"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"r"},
	}
	info := Analyze(s)
	// Only the counter's own increment cycle remains: RecMII 1.
	if math.Abs(info.RecMII-1) > 1e-6 {
		t.Fatalf("RecMII = %v, want 1", info.RecMII)
	}
}

func TestMemDistances(t *testing.T) {
	spec := &ir.LoopSpec{Step: 1}
	// store X[k] vs load X[k-1]: distance 1.
	d := memDistances(spec, ir.Aff("X", 1, 0), ir.Aff("X", 1, -1))
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("distances = %v, want [1]", d)
	}
	// store X[k] vs load X[k+1]: never (negative distance).
	if d := memDistances(spec, ir.Aff("X", 1, 0), ir.Aff("X", 1, 1)); len(d) != 0 {
		t.Fatalf("distances = %v, want none", d)
	}
	// scalar cell: all distances, conservatively {0,1}.
	if d := memDistances(spec, ir.Aff("X", 0, 3), ir.Aff("X", 0, 3)); len(d) != 2 {
		t.Fatalf("distances = %v, want [0 1]", d)
	}
	// indirect: conservative.
	if d := memDistances(spec, ir.Ind("X", "i", 0), ir.Aff("X", 1, 0)); len(d) != 2 {
		t.Fatalf("distances = %v, want [0 1]", d)
	}
}

func TestResMIIBounds(t *testing.T) {
	if got := ResMII(9, 4); math.Abs(got-2.25) > 1e-9 {
		t.Fatalf("ResMII(9,4) = %v", got)
	}
	if got := ResMII(3, 8); got != 1 { // branch slot floor
		t.Fatalf("ResMII(3,8) = %v, want 1", got)
	}
	if got := ResMII(9, -1); got != 1 {
		t.Fatalf("ResMII unlimited = %v, want 1", got)
	}
	if got := ModuloResMII(9, 4); got != 3 {
		t.Fatalf("ModuloResMII(9,4) = %d, want 3", got)
	}
	info := Analyze(dotSpec())
	if b := info.RateBound(6, 2); math.Abs(b-3) > 1e-9 {
		t.Fatalf("RateBound = %v, want 3", b)
	}
}
