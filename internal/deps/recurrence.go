package deps

import (
	"math"

	"repro/internal/ir"
)

// BodyDep is a dependence between loop-body operations: the operation at
// index To in iteration t+Dist depends on the operation at index From in
// iteration t. Indices address the extended body: the declared body
// operations followed by the two synthesized control operations (counter
// increment, then the loop-back conditional jump).
type BodyDep struct {
	From, To int
	Dist     int
}

// LoopInfo summarizes the dependence structure of a loop body.
type LoopInfo struct {
	// NumOps counts extended-body operations (body + 2 control ops);
	// this is the sequential cycle cost per iteration.
	NumOps int
	// Edges are the body dependences, distances >= 0.
	Edges []BodyDep
	// RecMII is the recurrence-constrained minimum initiation interval
	// in cycles per iteration: the maximum over dependence cycles of
	// (operations in cycle)/(sum of distances). Zero when the loop has
	// no recurrence.
	RecMII float64
	// CritPath is the longest intra-iteration dependence chain.
	CritPath int
}

// ExtendedBody returns the body operations plus the two synthesized
// control operations in their sequential order.
func ExtendedBody(spec *ir.LoopSpec) []ir.BodyOp {
	ext := make([]ir.BodyOp, 0, len(spec.Body)+2)
	ext = append(ext, spec.Body...)
	ext = append(ext, ir.BodyOp{Kind: ir.Add, Dst: ir.CounterVar, A: ir.CounterVar, Imm: spec.Step, UseImm: true})
	ext = append(ext, ir.BodyOp{Kind: ir.CJ, A: ir.CounterVar, B: spec.TripVar})
	return ext
}

// Analyze computes the loop-level dependence structure of spec.
func Analyze(spec *ir.LoopSpec) *LoopInfo {
	ext := ExtendedBody(spec)
	n := len(ext)
	info := &LoopInfo{NumOps: n}

	// Register dependences. lastDef maps a variable to the extended-body
	// index of its most recent definition during a forward scan; a use
	// before any definition reads the previous iteration's final value
	// when the variable is written later in the body (carried), and is
	// a loop invariant otherwise.
	finalDef := map[string]int{}
	for i, op := range ext {
		if op.Dst != "" {
			finalDef[op.Dst] = i
		}
	}
	addEdge := func(from, to, dist int) {
		info.Edges = append(info.Edges, BodyDep{From: from, To: to, Dist: dist})
	}
	lastDef := map[string]int{}
	useVar := func(i int, v string) {
		if v == "" {
			return
		}
		if def, ok := lastDef[v]; ok {
			addEdge(def, i, 0)
			return
		}
		if def, ok := finalDef[v]; ok {
			addEdge(def, i, 1)
		}
	}
	for i, op := range ext {
		useVar(i, op.A)
		if !op.UseImm {
			useVar(i, op.B)
		}
		if op.Mem.IndexVar != "" {
			useVar(i, op.Mem.IndexVar)
		}
		if op.Dst != "" {
			lastDef[op.Dst] = i
		}
	}

	// Memory dependences.
	for i, a := range ext {
		for j, b := range ext {
			if a.Mem.Array == "" || b.Mem.Array == "" || a.Mem.Array != b.Mem.Array {
				continue
			}
			if a.Kind != ir.Store && b.Kind != ir.Store {
				continue
			}
			for _, d := range memDistances(spec, a.Mem, b.Mem) {
				if d > 0 || (d == 0 && i < j) {
					addEdge(i, j, d)
				}
			}
		}
	}

	info.CritPath = critPath(n, info.Edges)
	info.RecMII = maxCycleRatio(n, info.Edges)
	return info
}

// memDistances returns the iteration distances d >= 0 at which reference
// a in iteration t can touch the same cell as reference b in iteration
// t+d. Analyzable affine pairs give at most one distance; everything
// else is handled conservatively with distances {0, 1}, which serializes
// the references (this is what bounds the particle-in-cell kernels).
func memDistances(spec *ir.LoopSpec, a, b ir.BodyRef) []int {
	if a.IndexVar == "" && b.IndexVar == "" && a.KCoef == b.KCoef {
		c := a.KCoef
		if c == 0 {
			if a.Off == b.Off {
				return []int{0, 1}
			}
			return nil
		}
		num := a.Off - b.Off
		den := c * spec.Step
		if den != 0 && num%den == 0 {
			d := num / den
			if d >= 0 {
				return []int{int(d)}
			}
		}
		return nil
	}
	return []int{0, 1}
}

// critPath returns the longest chain of distance-0 edges, in operations.
func critPath(n int, edges []BodyDep) int {
	depth := make([]int, n)
	for i := 0; i < n; i++ {
		depth[i] = 1
	}
	// Distance-0 edges always point forward in body order, so one
	// forward pass suffices.
	for i := 0; i < n; i++ {
		for _, e := range edges {
			if e.Dist == 0 && e.To > e.From && depth[e.From]+1 > depth[e.To] {
				depth[e.To] = depth[e.From] + 1
			}
		}
	}
	best := 0
	for _, d := range depth {
		if d > best {
			best = d
		}
	}
	return best
}

// maxCycleRatio computes max over dependence cycles of (#ops)/(sum of
// distances) by binary search on the ratio r: a cycle with positive
// total weight under w(e) = 1 - r*dist(e) exists iff the true ratio
// exceeds r. Bellman-Ford detects positive cycles.
func maxCycleRatio(n int, edges []BodyDep) float64 {
	if n == 0 {
		return 0
	}
	hasPositiveCycle := func(r float64) bool {
		dist := make([]float64, n) // start at 0 everywhere: superset of all sources
		for iter := 0; iter < n; iter++ {
			changed := false
			for _, e := range edges {
				w := 1 - r*float64(e.Dist)
				if dist[e.From]+w > dist[e.To]+1e-12 {
					dist[e.To] = dist[e.From] + w
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		// Still relaxing after n rounds: positive cycle.
		for _, e := range edges {
			w := 1 - r*float64(e.Dist)
			if dist[e.From]+w > dist[e.To]+1e-12 {
				return true
			}
		}
		return false
	}
	lo, hi := 0.0, float64(n)
	if !hasPositiveCycle(lo + 1e-9) {
		return 0
	}
	for i := 0; i < 60 && hi-lo > 1e-9; i++ {
		mid := (lo + hi) / 2
		if hasPositiveCycle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ResMII returns the steady-state resource bound in cycles per
// iteration for a kernel whose pattern may span several iterations:
// ops/fus, but never below 1 (one conditional jump retires per cycle
// with a single branch slot). fus <= 0 means unlimited.
func ResMII(opsPerIter, fus int) float64 {
	if fus <= 0 {
		return 1
	}
	r := float64(opsPerIter) / float64(fus)
	return math.Max(r, 1)
}

// ModuloResMII is the classic single-iteration resource bound used by
// modulo scheduling: ceil(ops/fus), at least 1.
func ModuloResMII(opsPerIter, fus int) int {
	if fus <= 0 {
		return 1
	}
	ii := (opsPerIter + fus - 1) / fus
	if ii < 1 {
		ii = 1
	}
	return ii
}

// RateBound returns the minimum achievable cycles per iteration for the
// loop on a machine with the given functional units: the larger of the
// recurrence and resource bounds.
func (info *LoopInfo) RateBound(opsPerIter, fus int) float64 {
	return math.Max(info.RecMII, ResMII(opsPerIter, fus))
}
