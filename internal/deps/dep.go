// Package deps implements dependence analysis: pairwise dependence
// tests, the data-dependence graph of an unwound loop, the section 3.4
// scheduling priorities, loop-carried dependence analysis (recurrence
// bounds), and register liveness queries on program graphs.
package deps

import (
	"repro/internal/ir"
)

// TrueDep reports whether b consumes a register value a produces.
func TrueDep(a, b *ir.Op) bool {
	d := a.Def()
	return d != ir.NoReg && b.ReadsReg(d)
}

// AntiDep reports whether b writes a register a reads.
func AntiDep(a, b *ir.Op) bool {
	d := b.Def()
	return d != ir.NoReg && a.ReadsReg(d)
}

// OutputDep reports whether a and b write the same register.
func OutputDep(a, b *ir.Op) bool {
	return a.Def() != ir.NoReg && a.Def() == b.Def()
}

// MemDep reports whether a and b touch possibly-aliasing memory with at
// least one store. Load/load pairs never conflict.
func MemDep(a, b *ir.Op) bool {
	if a.Mem.IsZero() || b.Mem.IsZero() {
		return false
	}
	if !a.IsStore() && !b.IsStore() {
		return false
	}
	return a.Mem.MayAlias(b.Mem)
}

// Blocks reports whether op b (later in program order) may not be
// reordered above op a (earlier): any register true/anti/output
// dependence or memory conflict. Percolation Scheduling can remove
// register anti/output conflicts by renaming, but reordering without
// renaming requires the full test.
func Blocks(a, b *ir.Op) bool {
	return TrueDep(a, b) || AntiDep(a, b) || OutputDep(a, b) || MemDep(a, b)
}

// Serializes reports the dependences that survive renaming: register
// true dependences and memory conflicts. These are the "strict data
// dependencies" that bound how far GRiP may move an operation.
func Serializes(a, b *ir.Op) bool {
	return TrueDep(a, b) || MemDep(a, b)
}
