package bitset

import "testing"

func TestSetWordBoundaries(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	s.Remove(64)
	if s.Has(64) || !s.Has(63) || !s.Has(127) {
		t.Fatal("Remove disturbed neighbours")
	}
	// Out-of-range queries are never members; out-of-range Remove is a
	// no-op; out-of-range Add panics.
	if s.Has(-1) || s.Has(130) {
		t.Fatal("out-of-range membership")
	}
	s.Remove(-1)
	s.Remove(999)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	s.Add(130)
}

func TestMatrixWordBoundaries(t *testing.T) {
	m := NewMatrix(70)
	pairs := [][2]int{{0, 0}, {0, 63}, {0, 64}, {63, 64}, {69, 0}, {69, 69}}
	for _, p := range pairs {
		if m.Has(p[0], p[1]) {
			t.Fatalf("fresh matrix has (%d,%d)", p[0], p[1])
		}
		m.Set(p[0], p[1])
		if !m.Has(p[0], p[1]) {
			t.Fatalf("Set(%d,%d) not visible", p[0], p[1])
		}
	}
	// Direction matters.
	if m.Has(64, 0) || m.Has(63, 0) {
		t.Fatal("matrix is not directed")
	}
	if m.Has(-1, 0) || m.Has(0, 70) {
		t.Fatal("out-of-range membership")
	}
	// Row exposes the packed words of one row only.
	row := m.Row(0)
	if len(row) != 2 || row[0]&1 == 0 || row[1]&1 == 0 {
		t.Fatalf("row 0 words wrong: %x", row)
	}
}
