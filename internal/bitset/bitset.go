// Package bitset provides the dense bit-set and bit-matrix primitives
// the scheduler hot loops are built on: membership sets over the dense
// operation index space (ir.Op.Index) and precomputed pairwise relations
// (deps.DDG's Serializes/Blocks matrices). All queries are O(1) loads
// with no allocation; construction is one slice allocation.
package bitset

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New for a sized one.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set able to hold members 0..n-1.
func New(n int) Set {
	if n < 0 {
		n = 0
	}
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Has reports whether i is a member. Out-of-range i is never a member.
func (s Set) Has(i int) bool {
	if uint(i) >= uint(s.n) {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts i. Out-of-range i panics (callers own the index space).
func (s Set) Add(i int) {
	if uint(i) >= uint(s.n) {
		panic("bitset: Add out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes i if present.
func (s Set) Remove(i int) {
	if uint(i) >= uint(s.n) {
		return
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Matrix is a packed n×n boolean relation: O(n²/64) words, one load per
// query. Rows and columns are dense indices (ir.Op.Index).
type Matrix struct {
	words  []uint64
	stride int // words per row
	n      int
}

// NewMatrix returns an all-false n×n relation.
func NewMatrix(n int) Matrix {
	if n < 0 {
		n = 0
	}
	stride := (n + 63) / 64
	return Matrix{words: make([]uint64, n*stride), stride: stride, n: n}
}

// Has reports whether (i,j) is in the relation. Out-of-range pairs are
// never in it.
func (m Matrix) Has(i, j int) bool {
	if uint(i) >= uint(m.n) || uint(j) >= uint(m.n) {
		return false
	}
	return m.words[i*m.stride+j>>6]&(1<<(uint(j)&63)) != 0
}

// Set inserts (i,j). Out-of-range pairs panic.
func (m Matrix) Set(i, j int) {
	if uint(i) >= uint(m.n) || uint(j) >= uint(m.n) {
		panic("bitset: Matrix.Set out of range")
	}
	m.words[i*m.stride+j>>6] |= 1 << (uint(j) & 63)
}

// Row returns the packed words of row i, for word-parallel scans over
// the relation. The slice aliases the matrix.
func (m Matrix) Row(i int) []uint64 {
	return m.words[i*m.stride : (i+1)*m.stride]
}
