package bitset

import (
	"math/rand"
	"testing"
)

// TestTreeAgainstReference drives random Add/Remove/NextAtLeast
// sequences against a plain boolean-slice model across sizes that cover
// one, two, and three summary levels (including the exact 64-boundary
// capacities).
func TestTreeAgainstReference(t *testing.T) {
	sizes := []int{1, 7, 63, 64, 65, 1000, 4096, 4097, 70000}
	rng := rand.New(rand.NewSource(42))
	for _, n := range sizes {
		tree := NewTree(n)
		ref := make([]bool, n)
		next := func(i int) int {
			if i < 0 {
				i = 0
			}
			for ; i < n; i++ {
				if ref[i] {
					return i
				}
			}
			return -1
		}
		for step := 0; step < 4000; step++ {
			i := rng.Intn(n)
			switch rng.Intn(4) {
			case 0, 1:
				tree.Add(i)
				ref[i] = true
			case 2:
				tree.Remove(i)
				ref[i] = false
			case 3:
				if got, want := tree.NextAtLeast(i), next(i); got != want {
					t.Fatalf("n=%d step=%d: NextAtLeast(%d)=%d, want %d", n, step, i, got, want)
				}
			}
			if got, want := tree.Has(i), ref[i]; got != want {
				t.Fatalf("n=%d step=%d: Has(%d)=%v, want %v", n, step, i, got, want)
			}
		}
		if got, want := tree.First(), next(0); got != want {
			t.Fatalf("n=%d: First()=%d, want %d", n, got, want)
		}
		any := next(0) >= 0
		if tree.Empty() == any {
			t.Fatalf("n=%d: Empty()=%v with members=%v", n, tree.Empty(), any)
		}
	}
}

func TestTreeEdges(t *testing.T) {
	tr := NewTree(130)
	if tr.First() != -1 || !tr.Empty() {
		t.Fatal("fresh tree not empty")
	}
	tr.Add(129)
	if tr.First() != 129 || tr.NextAtLeast(129) != 129 || tr.NextAtLeast(130) != -1 {
		t.Fatal("single high member not found")
	}
	tr.Add(129) // idempotent
	tr.Remove(129)
	if !tr.Empty() || tr.NextAtLeast(0) != -1 {
		t.Fatal("remove did not empty the tree")
	}
	tr.Remove(129)  // idempotent
	tr.Remove(-1)   // out of range: no-op
	tr.Remove(1000) // out of range: no-op
	if tr.Has(-1) || tr.Has(1000) {
		t.Fatal("out-of-range membership")
	}
	if tr.NextAtLeast(-5) != -1 {
		t.Fatal("negative NextAtLeast on empty tree")
	}
	if tr.Cap() != 130 {
		t.Fatalf("Cap()=%d, want 130", tr.Cap())
	}
	zero := NewTree(0)
	if zero.First() != -1 || !zero.Empty() || zero.Has(0) {
		t.Fatal("zero-capacity tree misbehaves")
	}
}

// TestTreeOpAllocs pins the selector contract the chooseOp pick path
// depends on: steady-state Add/Remove/NextAtLeast perform zero heap
// allocations.
func TestTreeOpAllocs(t *testing.T) {
	tr := NewTree(70000)
	for i := 0; i < 70000; i += 97 {
		tr.Add(i)
	}
	var sink int
	allocs := testing.AllocsPerRun(500, func() {
		tr.Remove(97 * 13)
		tr.Add(97 * 13)
		sink = tr.NextAtLeast(97*13 + 1)
	})
	if allocs != 0 {
		t.Fatalf("tree ops allocate %v/run, want 0 (sink %d)", allocs, sink)
	}
}
