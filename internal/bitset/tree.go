package bitset

import "math/bits"

// Tree is a hierarchical bit set over [0, n) built for ordered
// iteration: Add and Remove touch at most one word per level, and
// NextAtLeast finds the smallest member >= i in O(levels) word
// operations, where levels = ceil(log64 n). It is the selector behind
// core's incremental Moveable-ops candidate structure: members are rank
// positions, and a pick is NextAtLeast(0) instead of a linear rescan.
//
// Level 0 holds the member bits; each higher level summarizes the level
// below with one bit per word ("this word is non-empty"), so a search
// that exhausts a word climbs to the summary, finds the next non-empty
// word, and descends back down. All methods are allocation-free.
type Tree struct {
	n      int
	levels [][]uint64
}

// NewTree returns an empty tree able to hold members 0..n-1.
func NewTree(n int) Tree {
	if n < 0 {
		n = 0
	}
	t := Tree{n: n}
	words := (n + 63) / 64
	for {
		if words == 0 {
			words = 1
		}
		t.levels = append(t.levels, make([]uint64, words))
		if words == 1 {
			return t
		}
		words = (words + 63) / 64
	}
}

// Cap returns the size of the member space the tree was built for.
func (t *Tree) Cap() int { return t.n }

// Has reports whether i is a member. Out-of-range i is never a member.
func (t *Tree) Has(i int) bool {
	if uint(i) >= uint(t.n) {
		return false
	}
	return t.levels[0][i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts i; inserting a present member is a no-op. Out-of-range i
// panics (callers own the index space).
func (t *Tree) Add(i int) {
	if uint(i) >= uint(t.n) {
		panic("bitset: Tree.Add out of range")
	}
	for l := 0; l < len(t.levels); l++ {
		w := i >> 6
		mask := uint64(1) << (uint(i) & 63)
		if t.levels[l][w]&mask != 0 {
			return // already set, so every summary above is set too
		}
		t.levels[l][w] |= mask
		i = w
	}
}

// Remove deletes i if present, clearing summary bits for words that
// become empty.
func (t *Tree) Remove(i int) {
	if uint(i) >= uint(t.n) {
		return
	}
	for l := 0; l < len(t.levels); l++ {
		w := i >> 6
		t.levels[l][w] &^= 1 << (uint(i) & 63)
		if t.levels[l][w] != 0 {
			return // word still populated: summaries stay set
		}
		i = w
	}
}

// First returns the smallest member, or -1 when the tree is empty.
func (t *Tree) First() int { return t.NextAtLeast(0) }

// Empty reports whether the tree has no members.
func (t *Tree) Empty() bool {
	top := t.levels[len(t.levels)-1]
	return top[0] == 0
}

// NextAtLeast returns the smallest member >= i, or -1 when there is
// none. Negative i is treated as 0.
func (t *Tree) NextAtLeast(i int) int {
	if i < 0 {
		i = 0
	}
	pos := i
	for l := 0; l < len(t.levels); {
		w := pos >> 6
		if w < len(t.levels[l]) {
			if word := t.levels[l][w] &^ (1<<(uint(pos)&63) - 1); word != 0 {
				pos = w<<6 | bits.TrailingZeros64(word)
				// Descend: pos indexes a non-empty word per level below.
				for ; l > 0; l-- {
					pos = pos<<6 | bits.TrailingZeros64(t.levels[l-1][pos])
				}
				return pos
			}
		}
		// Word exhausted: the next candidate is the following word,
		// which is bit w+1 of the summary level above.
		pos = w + 1
		l++
	}
	return -1
}
