package bitset

// Grow is a bit set over an index space that expands during a run — the
// graph's register def/use summaries use it, and register renaming
// allocates fresh registers mid-schedule. The zero value is an empty
// set; Add grows the backing storage on demand, Has answers false for
// any index beyond it, so readers never observe a partially grown set.
//
// Unlike Set, Grow methods use pointer receivers: the words slice is
// reallocated by growth, and sharing a Grow by value would alias stale
// storage.
type Grow struct {
	words []uint64
}

// Has reports whether i is a member. Negative or beyond-capacity
// indices are never members.
func (s *Grow) Has(i int) bool {
	w := uint(i) >> 6 // negative i wraps far past any real capacity
	if w >= uint(len(s.words)) {
		return false
	}
	return s.words[w]&(1<<(uint(i)&63)) != 0
}

// Add inserts i, growing the set as needed. Negative i panics.
func (s *Grow) Add(i int) {
	if i < 0 {
		panic("bitset: Grow.Add of negative index")
	}
	w := i >> 6
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// Remove deletes i if present.
func (s *Grow) Remove(i int) {
	if i < 0 {
		return
	}
	w := i >> 6
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) & 63)
	}
}

// Reset clears every bit, keeping the storage for reuse.
func (s *Grow) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom makes s an exact copy of t, growing s as needed. Storage is
// reused when it suffices, so steady-state copies do not allocate.
func (s *Grow) CopyFrom(t *Grow) {
	if len(t.words) > len(s.words) {
		grown := make([]uint64, len(t.words))
		s.words = grown
	}
	n := copy(s.words, t.words)
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Or unions t into s, growing s as needed.
func (s *Grow) Or(t *Grow) {
	if len(t.words) > len(s.words) {
		grown := make([]uint64, len(t.words))
		copy(grown, s.words)
		s.words = grown
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Empty reports whether the set has no members.
func (s *Grow) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t hold exactly the same members
// (capacities may differ).
func (s *Grow) Equal(t *Grow) bool {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range b {
		if a[i] != w {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Words returns the number of backing words (capacity bookkeeping for
// arena-sized clones).
func (s *Grow) Words() int { return len(s.words) }

// SetWords points s at the given backing storage and copies t's content
// into it. The slice must hold at least t.Words() words. Graph cloning
// uses it to carve every cloned summary out of one arena allocation.
func (s *Grow) SetWords(backing []uint64, t *Grow) {
	copy(backing, t.words)
	s.words = backing[:len(t.words):len(t.words)]
}

// SetBacking points the (empty) set at pre-zeroed backing storage, so
// inserts within its index range never allocate. Any previous content
// is discarded.
func (s *Grow) SetBacking(backing []uint64) {
	s.words = backing
}
