package ir

import "testing"

func fpLoop() *LoopSpec {
	return &LoopSpec{
		Name: "fp",
		Body: []BodyOp{
			BLoad("t", Aff("A", 1, 0)),
			BAdd("q", "q", "t"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func TestFingerprintDeterministicAndContentBased(t *testing.T) {
	a, b := fpLoop(), fpLoop()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical specs fingerprint differently")
	}
	for _, mutate := range []func(*LoopSpec){
		func(s *LoopSpec) { s.Name = "other" },
		func(s *LoopSpec) { s.Start = 5 },
		func(s *LoopSpec) { s.Step = 2 },
		func(s *LoopSpec) { s.TripVar = "m" },
		func(s *LoopSpec) { s.LiveIn = nil },
		func(s *LoopSpec) { s.LiveOut = nil },
		func(s *LoopSpec) { s.Body[1] = BSub("q", "q", "t") },
		func(s *LoopSpec) { s.Body[0].Mem.Off = 3 },
		func(s *LoopSpec) { s.Body = s.Body[:1] },
	} {
		m := fpLoop()
		mutate(m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Errorf("mutation did not change the fingerprint: %+v", m)
		}
	}
}

// TestFingerprintDelimiterInjection checks that identifiers containing
// the join delimiters cannot forge another spec's preimage.
func TestFingerprintDelimiterInjection(t *testing.T) {
	a := fpLoop()
	a.LiveIn = []string{"a,b"}
	b := fpLoop()
	b.LiveIn = []string{"a", "b"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error(`LiveIn ["a,b"] collides with ["a","b"]`)
	}
	c := fpLoop()
	c.Name = `x"|start=9`
	d := fpLoop()
	d.Name = "x"
	d.Start = 9
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("name containing delimiters forged the counter fields")
	}
}
