package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

func fpLoop() *LoopSpec {
	return &LoopSpec{
		Name: "fp",
		Body: []BodyOp{
			BLoad("t", Aff("A", 1, 0)),
			BAdd("q", "q", "t"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func TestFingerprintDeterministicAndContentBased(t *testing.T) {
	a, b := fpLoop(), fpLoop()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical specs fingerprint differently")
	}
	for _, mutate := range []func(*LoopSpec){
		func(s *LoopSpec) { s.Name = "other" },
		func(s *LoopSpec) { s.Start = 5 },
		func(s *LoopSpec) { s.Step = 2 },
		func(s *LoopSpec) { s.TripVar = "m" },
		func(s *LoopSpec) { s.LiveIn = nil },
		func(s *LoopSpec) { s.LiveOut = nil },
		func(s *LoopSpec) { s.Body[1] = BSub("q", "q", "t") },
		func(s *LoopSpec) { s.Body[0].Mem.Off = 3 },
		func(s *LoopSpec) { s.Body = s.Body[:1] },
	} {
		m := fpLoop()
		mutate(m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Errorf("mutation did not change the fingerprint: %+v", m)
		}
	}
}

// fingerprintReference is the original fmt.Fprintf-based encoding the
// strconv implementation replaced. Fingerprints key disk caches across
// runs, so the encodings must stay byte-identical.
func fingerprintReference(s *LoopSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop|%q|start=%d|step=%d|trip=%q", s.Name, s.Start, s.Step, s.TripVar)
	b.WriteString("|in=")
	for _, v := range s.LiveIn {
		fmt.Fprintf(&b, "%q,", v)
	}
	b.WriteString("|out=")
	for _, v := range s.LiveOut {
		fmt.Fprintf(&b, "%q,", v)
	}
	for _, op := range s.Body {
		fmt.Fprintf(&b, "|%d;%q;%q;%q;%d;%t;%q;%d;%d;%q",
			op.Kind, op.Dst, op.A, op.B, op.Imm, op.UseImm,
			op.Mem.Array, op.Mem.KCoef, op.Mem.Off, op.Mem.IndexVar)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// TestFingerprintEncodingStable pins the strconv-built fingerprint to
// the fmt-built encoding it replaced, including specs exercising every
// field, negative integers, quoting-sensitive identifiers, and an
// immediate-form body op.
func TestFingerprintEncodingStable(t *testing.T) {
	specs := []*LoopSpec{
		fpLoop(),
		{Name: "empty"},
		{
			Name:    `q"uo\te` + "\n|;,",
			Start:   -3,
			Step:    -1,
			TripVar: "n",
			LiveIn:  []string{"a", `b"b`},
			LiveOut: []string{"非ascii"},
			Body: []BodyOp{
				BAddI("x", "x", -42),
				BStore(Aff("A", -2, -7), "x"),
				BLoad("y", BodyRef{Array: "B", KCoef: 1, IndexVar: "x"}),
			},
		},
	}
	for _, s := range specs {
		if got, want := s.Fingerprint(), fingerprintReference(s); got != want {
			t.Errorf("spec %q: fingerprint %s, reference encoding %s", s.Name, got, want)
		}
	}
}

// TestFingerprintDelimiterInjection checks that identifiers containing
// the join delimiters cannot forge another spec's preimage.
func TestFingerprintDelimiterInjection(t *testing.T) {
	a := fpLoop()
	a.LiveIn = []string{"a,b"}
	b := fpLoop()
	b.LiveIn = []string{"a", "b"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error(`LiveIn ["a,b"] collides with ["a","b"]`)
	}
	c := fpLoop()
	c.Name = `x"|start=9`
	d := fpLoop()
	d.Name = "x"
	d.Start = 9
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("name containing delimiters forged the counter fields")
	}
}
