package ir

import (
	"fmt"
	"strings"
)

// BodyRef is a memory address used by a loop-body operation before
// unwinding: the affine element Array[KCoef*k + Off] of the loop counter
// k, or — when IndexVar is set — the indirect element
// Array[value(IndexVar) + Off].
type BodyRef struct {
	Array    string
	KCoef    int64
	Off      int64
	IndexVar string
}

// Aff builds an affine reference Array[KCoef*k+Off].
func Aff(array string, kcoef, off int64) BodyRef {
	return BodyRef{Array: array, KCoef: kcoef, Off: off}
}

// Ind builds an indirect reference Array[value(indexVar)+off].
func Ind(array, indexVar string, off int64) BodyRef {
	return BodyRef{Array: array, IndexVar: indexVar, Off: off}
}

// BodyOp is one operation of a loop body, written over named variables.
// The unwinder renames variables to fresh registers per iteration
// (SSA-style), which removes all register anti- and output dependencies
// across iterations exactly as the paper's renaming would.
type BodyOp struct {
	Kind   Opcode
	Dst    string
	A, B   string
	Imm    int64
	UseImm bool
	Mem    BodyRef
}

// Constructors for the common body-op shapes. They keep the kernel
// definitions in internal/livermore close to the Fortran source.

// BAdd returns dst = a + b.
func BAdd(dst, a, b string) BodyOp { return BodyOp{Kind: Add, Dst: dst, A: a, B: b} }

// BSub returns dst = a - b.
func BSub(dst, a, b string) BodyOp { return BodyOp{Kind: Sub, Dst: dst, A: a, B: b} }

// BMul returns dst = a * b.
func BMul(dst, a, b string) BodyOp { return BodyOp{Kind: Mul, Dst: dst, A: a, B: b} }

// BDiv returns dst = a / b (0 when b is 0).
func BDiv(dst, a, b string) BodyOp { return BodyOp{Kind: Div, Dst: dst, A: a, B: b} }

// BAddI returns dst = a + imm.
func BAddI(dst, a string, imm int64) BodyOp {
	return BodyOp{Kind: Add, Dst: dst, A: a, Imm: imm, UseImm: true}
}

// BMulI returns dst = a * imm.
func BMulI(dst, a string, imm int64) BodyOp {
	return BodyOp{Kind: Mul, Dst: dst, A: a, Imm: imm, UseImm: true}
}

// BCopy returns dst = a.
func BCopy(dst, a string) BodyOp { return BodyOp{Kind: Copy, Dst: dst, A: a} }

// BLoad returns dst = load mem.
func BLoad(dst string, mem BodyRef) BodyOp { return BodyOp{Kind: Load, Dst: dst, Mem: mem} }

// BStore returns store mem = a.
func BStore(mem BodyRef, a string) BodyOp { return BodyOp{Kind: Store, A: a, Mem: mem} }

// LoopSpec describes an innermost loop before unwinding: the body in
// original sequential order (one operation per VLIW instruction, matching
// the paper's "sequential VLIW program graph wherein each node contains a
// single intermediate language statement"), the counter, and the
// live-in/live-out interface.
//
// The unwinder appends the loop control to each iteration: the counter
// increment k = k + Step and the conditional jump that continues while
// k < value(TripVar). These two control operations count toward the
// sequential cost exactly like body operations.
type LoopSpec struct {
	Name string
	Body []BodyOp

	// Counter: k starts at Start and advances by Step each iteration.
	Start int64
	Step  int64

	// TripVar names the live-in variable holding the loop bound.
	TripVar string

	// LiveIn lists variables (loop-invariant scalars and initial values
	// of carried accumulators) that must be defined before the loop.
	// TripVar is implicitly live-in.
	LiveIn []string

	// LiveOut lists scalar variables whose final value is observable
	// after the loop (accumulators such as the inner product q of LL3).
	// Values stored to memory are always observable.
	LiveOut []string
}

// CounterVar is the reserved name of the loop counter.
const CounterVar = "k"

// SeqOpsPerIter returns the sequential cost of one iteration: body
// operations plus the two loop-control operations.
func (s *LoopSpec) SeqOpsPerIter() int { return len(s.Body) + 2 }

// Validate checks the spec for authoring mistakes: uses of variables that
// are neither live-in, the counter, nor defined earlier in the body, and
// redefinition of live-in coefficients that are also read later (which
// would make the carried-value semantics ambiguous).
func (s *LoopSpec) Validate() error {
	if len(s.Body) == 0 {
		return fmt.Errorf("loop %s: empty body", s.Name)
	}
	if s.Step == 0 {
		return fmt.Errorf("loop %s: zero step", s.Name)
	}
	if s.TripVar == "" {
		return fmt.Errorf("loop %s: missing TripVar", s.Name)
	}
	defined := map[string]bool{CounterVar: true, s.TripVar: true}
	for _, v := range s.LiveIn {
		defined[v] = true
	}
	use := func(i int, v string) error {
		if v == "" {
			return nil
		}
		if !defined[v] {
			return fmt.Errorf("loop %s: body op %d uses undefined variable %q", s.Name, i, v)
		}
		return nil
	}
	for i, op := range s.Body {
		if err := use(i, op.A); err != nil {
			return err
		}
		if !op.UseImm {
			if err := use(i, op.B); err != nil {
				return err
			}
		}
		if op.Mem.IndexVar != "" {
			if err := use(i, op.Mem.IndexVar); err != nil {
				return err
			}
		}
		if op.Dst != "" {
			if op.Dst == CounterVar {
				return fmt.Errorf("loop %s: body op %d writes the loop counter", s.Name, i)
			}
			defined[op.Dst] = true
		}
	}
	for _, v := range s.LiveOut {
		if !defined[v] {
			return fmt.Errorf("loop %s: live-out %q never defined", s.Name, v)
		}
	}
	return nil
}

// CarriedVars returns the variables whose value flows from one iteration
// to the next: every variable that is read in the body (or live-out)
// before being redefined in the same iteration, excluding pure
// loop-invariants. The counter is always carried.
func (s *LoopSpec) CarriedVars() []string {
	redef := map[string]bool{}
	for _, op := range s.Body {
		if op.Dst != "" {
			redef[op.Dst] = true
		}
	}
	seen := map[string]bool{}
	var carried []string
	add := func(v string) {
		if v != "" && redef[v] && !seen[v] {
			seen[v] = true
			carried = append(carried, v)
		}
	}
	// A variable is carried if some use can observe the previous
	// iteration's definition: it is read before its (re)definition in
	// the body, or it is live-out.
	defd := map[string]bool{}
	for _, op := range s.Body {
		if op.A != "" && !defd[op.A] {
			add(op.A)
		}
		if !op.UseImm && op.B != "" && !defd[op.B] {
			add(op.B)
		}
		if op.Mem.IndexVar != "" && !defd[op.Mem.IndexVar] {
			add(op.Mem.IndexVar)
		}
		if op.Dst != "" {
			defd[op.Dst] = true
		}
	}
	for _, v := range s.LiveOut {
		add(v)
	}
	return carried
}

// Clone returns an independent deep copy of the spec: mutating the
// copy's body or interface slices never affects the original. Specs are
// treated as read-only throughout the scheduling stack, so Clone exists
// for the few writers — the fuzz minimizer shrinks candidate copies
// while the failing original stays intact for reporting.
func (s *LoopSpec) Clone() *LoopSpec {
	c := *s
	c.Body = append([]BodyOp(nil), s.Body...)
	c.LiveIn = append([]string(nil), s.LiveIn...)
	c.LiveOut = append([]string(nil), s.LiveOut...)
	return &c
}

// String renders the spec for debugging.
func (s *LoopSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s (k=%d step %d while k<%s):\n", s.Name, s.Start, s.Step, s.TripVar)
	for i, op := range s.Body {
		fmt.Fprintf(&b, "  %2d: %s\n", i, bodyOpString(op))
	}
	return b.String()
}

func bodyOpString(op BodyOp) string {
	memStr := func(m BodyRef) string {
		switch {
		case m.IndexVar != "":
			if m.Off != 0 {
				return fmt.Sprintf("%s[%s%+d]", m.Array, m.IndexVar, m.Off)
			}
			return fmt.Sprintf("%s[%s]", m.Array, m.IndexVar)
		case m.KCoef == 0:
			return fmt.Sprintf("%s[%d]", m.Array, m.Off)
		case m.KCoef == 1 && m.Off == 0:
			return fmt.Sprintf("%s[k]", m.Array)
		case m.KCoef == 1:
			return fmt.Sprintf("%s[k%+d]", m.Array, m.Off)
		default:
			return fmt.Sprintf("%s[%d*k%+d]", m.Array, m.KCoef, m.Off)
		}
	}
	switch op.Kind {
	case Load:
		return fmt.Sprintf("%s = load %s", op.Dst, memStr(op.Mem))
	case Store:
		return fmt.Sprintf("store %s = %s", memStr(op.Mem), op.A)
	case Copy:
		return fmt.Sprintf("%s = %s", op.Dst, op.A)
	case Const:
		return fmt.Sprintf("%s = %d", op.Dst, op.Imm)
	default:
		if op.UseImm {
			return fmt.Sprintf("%s = %s %s, %d", op.Dst, op.Kind, op.A, op.Imm)
		}
		return fmt.Sprintf("%s = %s %s, %s", op.Dst, op.Kind, op.A, op.B)
	}
}
