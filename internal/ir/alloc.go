package ir

import "fmt"

// Alloc hands out registers, arrays, and operation instance IDs, and
// remembers human-readable names for debugging and printing.
type Alloc struct {
	nextReg   Reg
	nextArray Array
	nextOp    int
	regNames  map[Reg]string
	arrNames  map[Array]string
	arrByName map[string]Array
}

// NewAlloc returns an empty allocator.
func NewAlloc() *Alloc {
	return &Alloc{
		nextReg:   1,
		nextArray: 1,
		nextOp:    1,
		regNames:  make(map[Reg]string),
		arrNames:  make(map[Array]string),
		arrByName: make(map[string]Array),
	}
}

// Reg allocates a fresh register with the given debug name.
func (a *Alloc) Reg(name string) Reg {
	r := a.nextReg
	a.nextReg++
	if name != "" {
		a.regNames[r] = name
	}
	return r
}

// Array returns the array with the given name, allocating it on first use.
func (a *Alloc) Array(name string) Array {
	if id, ok := a.arrByName[name]; ok {
		return id
	}
	id := a.nextArray
	a.nextArray++
	a.arrNames[id] = name
	a.arrByName[name] = id
	return id
}

// OpID allocates a fresh operation instance ID.
func (a *Alloc) OpID() int {
	id := a.nextOp
	a.nextOp++
	return id
}

// RegName returns the debug name of r, or "r<n>".
func (a *Alloc) RegName(r Reg) string {
	if n, ok := a.regNames[r]; ok {
		return n
	}
	return fmt.Sprintf("r%d", r)
}

// ArrayName returns the debug name of arr, or "A<n>".
func (a *Alloc) ArrayName(arr Array) string {
	if n, ok := a.arrNames[arr]; ok {
		return n
	}
	return fmt.Sprintf("A%d", arr)
}

// NumRegs reports how many registers have been allocated.
func (a *Alloc) NumRegs() int { return int(a.nextReg) - 1 }

// NumOps reports how many op IDs have been allocated.
func (a *Alloc) NumOps() int { return a.nextOp - 1 }
