package ir

import (
	"strings"
	"testing"
)

// sampleLoop is an LL3-style inner product: q = q + z[k]*x[k].
func sampleLoop() *LoopSpec {
	return &LoopSpec{
		Name: "dot",
		Body: []BodyOp{
			BLoad("t1", Aff("Z", 1, 0)),
			BLoad("t2", Aff("X", 1, 0)),
			BMul("t3", "t1", "t2"),
			BAdd("q", "q", "t3"),
		},
		Start:   0,
		Step:    1,
		TripVar: "n",
		LiveIn:  []string{"q"},
		LiveOut: []string{"q"},
	}
}

func TestLoopSpecValidateOK(t *testing.T) {
	if err := sampleLoop().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLoopSpecValidateCatchesUndefined(t *testing.T) {
	s := sampleLoop()
	s.Body = append(s.Body, BAdd("w", "nope", "q"))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Validate should flag undefined var, got %v", err)
	}
}

func TestLoopSpecValidateCatchesCounterWrite(t *testing.T) {
	s := sampleLoop()
	s.Body = append(s.Body, BAddI(CounterVar, "q", 1))
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should forbid writing the counter")
	}
}

func TestLoopSpecValidateCatchesBadLiveOut(t *testing.T) {
	s := sampleLoop()
	s.LiveOut = append(s.LiveOut, "ghost")
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should flag undefined live-out")
	}
}

func TestLoopSpecValidateEmptyBody(t *testing.T) {
	s := &LoopSpec{Name: "e", TripVar: "n", Step: 1}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should flag empty body")
	}
}

func TestCarriedVars(t *testing.T) {
	s := sampleLoop()
	carried := s.CarriedVars()
	if len(carried) != 1 || carried[0] != "q" {
		t.Fatalf("CarriedVars = %v, want [q]", carried)
	}

	// A purely vectorizable body carries nothing.
	v := &LoopSpec{
		Name: "vec",
		Body: []BodyOp{
			BLoad("t1", Aff("Y", 1, 0)),
			BMul("t2", "t1", "r"),
			BStore(Aff("X", 1, 0), "t2"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"r"},
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := v.CarriedVars(); len(c) != 0 {
		t.Fatalf("CarriedVars = %v, want none", c)
	}
}

func TestCarriedVarsLiveOutOnly(t *testing.T) {
	// t is redefined every iteration and never read before definition,
	// but being live-out makes its final value observable; it is not
	// carried (each iteration's value is independent). Only variables
	// read before redefinition are carried.
	s := &LoopSpec{
		Name: "lo",
		Body: []BodyOp{
			BLoad("t", Aff("Y", 1, 0)),
			BStore(Aff("X", 1, 0), "t"),
		},
		Step: 1, TripVar: "n", LiveOut: []string{"t"},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := s.CarriedVars()
	if len(c) != 1 || c[0] != "t" {
		// Live-out values must be carried so the epilogue can name them.
		t.Fatalf("CarriedVars = %v, want [t]", c)
	}
}

func TestSeqOpsPerIter(t *testing.T) {
	if got := sampleLoop().SeqOpsPerIter(); got != 6 {
		t.Fatalf("SeqOpsPerIter = %d, want 6 (4 body + increment + branch)", got)
	}
}

func TestLoopSpecString(t *testing.T) {
	s := sampleLoop().String()
	for _, want := range []string{"dot", "load Z[k]", "mul", "q = add q, t3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
