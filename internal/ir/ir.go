// Package ir defines the intermediate representation consumed by the
// schedulers: virtual registers, memory references, operations, and loop
// body specifications.
//
// The representation mirrors the "conventional operations" of the paper's
// VLIW computation model (Nicolau & Novack 1992, section 2): three-address
// arithmetic, loads and stores, copies, and multi-way conditional jumps.
// All operations complete in a single cycle, as the paper assumes.
package ir

import "fmt"

// Reg names a virtual register. Register 0 is "no register". The register
// file is unbounded: the paper assumes a free register is always available
// for renaming, and our unwinder produces SSA-style per-iteration names.
type Reg int32

// NoReg is the absent register.
const NoReg Reg = 0

// Array names a memory array. Array 0 is "no array". Arrays are disjoint:
// references to different arrays never alias, exactly like distinct
// Fortran COMMON arrays in the Livermore kernels.
type Array int32

// NoArray is the absent array.
const NoArray Array = 0

// Opcode enumerates operation kinds.
type Opcode uint8

// Operation kinds. CJ is the conditional jump that forms the internal
// vertices of IBM VLIW instruction trees.
const (
	Nop Opcode = iota
	Const
	Copy
	Add
	Sub
	Mul
	Div
	Load
	Store
	CJ
)

var opcodeNames = [...]string{
	Nop:   "nop",
	Const: "const",
	Copy:  "copy",
	Add:   "add",
	Sub:   "sub",
	Mul:   "mul",
	Div:   "div",
	Load:  "load",
	Store: "store",
	CJ:    "cj",
}

// String returns the mnemonic for the opcode.
func (k Opcode) String() string {
	if int(k) < len(opcodeNames) {
		return opcodeNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Relation is the comparison used by a conditional jump.
type Relation uint8

// Comparison relations for CJ operations.
const (
	Lt Relation = iota
	Le
	Eq
	Ne
	Gt
	Ge
)

var relNames = [...]string{Lt: "<", Le: "<=", Eq: "==", Ne: "!=", Gt: ">", Ge: ">="}

// String returns the comparison symbol.
func (r Relation) String() string {
	if int(r) < len(relNames) {
		return relNames[r]
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Eval reports whether the relation holds between a and b.
func (r Relation) Eval(a, b int64) bool {
	switch r {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// MemRef is a memory address used by a Load or Store.
//
// If IndexReg is NoReg the address is the concrete element Array[Index];
// this is the form the unwinder produces for affine references once the
// iteration number is known. If IndexReg is set, the address is
// Array[value(IndexReg)+Index] and is only known at run time (the
// particle-in-cell kernels LL13/LL14 use such indirect references).
type MemRef struct {
	Array    Array
	Index    int64
	IndexReg Reg
}

// IsZero reports whether the reference is absent.
func (m MemRef) IsZero() bool { return m.Array == NoArray }

// Indirect reports whether the address depends on a register value.
func (m MemRef) Indirect() bool { return m.IndexReg != NoReg }

// MayAlias reports whether two references can address the same memory
// cell. Distinct arrays never alias. Two direct references alias exactly
// when their indices are equal. Any reference involving an indirect index
// conservatively aliases every reference to the same array; this is the
// standard conservative treatment for subscripts a compiler cannot
// analyze, and it is what serializes the particle-in-cell kernels.
func (m MemRef) MayAlias(o MemRef) bool {
	if m.Array == NoArray || o.Array == NoArray || m.Array != o.Array {
		return false
	}
	if m.Indirect() || o.Indirect() {
		return true
	}
	return m.Index == o.Index
}

// String formats the reference.
func (m MemRef) String() string {
	if m.IsZero() {
		return "-"
	}
	if m.Indirect() {
		if m.Index != 0 {
			return fmt.Sprintf("A%d[r%d%+d]", m.Array, m.IndexReg, m.Index)
		}
		return fmt.Sprintf("A%d[r%d]", m.Array, m.IndexReg)
	}
	return fmt.Sprintf("A%d[%d]", m.Array, m.Index)
}
