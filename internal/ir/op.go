package ir

import (
	"fmt"
	"strings"
)

// NoIter marks operations that do not belong to a loop iteration
// (pre-loop code, epilogue copies, straight-line programs).
const NoIter = -1

// NoIndex marks operations outside the dense index space: frozen drain
// clones and epilogue copies, which dependence matrices and scheduler
// bitsets never address.
const NoIndex = -1

// Op is a single operation instance. Instances are identified by ID;
// clones created by node splitting share the same Origin so pattern
// detection and the Gapless-move test can recognize "the same operation
// from the same iteration" across copies.
//
// Operand conventions by Kind:
//
//	Const: Dst = Imm
//	Copy:  Dst = Src[0]
//	Add..Div: Dst = Src[0] op Src[1]   (or op Imm when BImm is set)
//	Load:  Dst = memory[Mem]
//	Store: memory[Mem] = Src[0]
//	CJ:    branch on Src[0] Rel Src[1] (or Rel Imm when BImm is set)
type Op struct {
	ID     int
	Origin int // position of the operation in the original body; stable across clones
	Iter   int // iteration the op belongs to, or NoIter

	// Index is the op's position in the dense index space of its
	// analyzed program: deps.Build assigns Index = i over its op slice,
	// and every index-addressed structure (dependence bit-matrices,
	// scheduler bitsets, priority tables) is keyed by it. Stable under
	// graph.Clone (the clone answers the same dependence queries as the
	// original); NoIndex on frozen clones, which are new operations
	// outside any analyzed program. A zero Index is only meaningful for
	// ops that went through deps.Build — index-addressed lookups verify
	// identity before trusting it.
	Index int

	Kind Opcode
	Dst  Reg
	Src  [2]Reg
	Imm  int64
	BImm bool // second operand is Imm rather than Src[1]
	Mem  MemRef
	Rel  Relation

	// Frozen operations never move: drain-side clones produced by
	// move-cj node splitting and live-out epilogue copies. They are
	// still executed by the simulator.
	Frozen bool

	// Cached operand view (see CacheOperands): cDef is the Def()
	// result and cUses[:cNU-1] the Uses() result, valid while cNU > 0.
	// deps.Build fills the cache once analysis starts; until then Def
	// and Uses derive from the operand fields on every call, so
	// builders (the unwinder, the pre-graph Optimize pass, test and
	// fuzz constructors) may assign fields freely. After the cache is
	// filled, operand mutation must go through ReplaceUse/SetDst —
	// the same routing rule the graph's def/use summaries already
	// impose — which re-derive it. Clone's struct copy keeps the cache
	// valid (identical fields ⇒ identical derivation).
	cDef  Reg
	cUses [3]Reg
	cNU   int8

	// loc is the op's current placement, owned and interpreted solely
	// by package graph (held as any to avoid an import cycle). Keeping
	// it on the op turns the scheduler's hottest query — "which vertex
	// holds this op" — into a read of a cache line the caller already
	// touched, instead of a random probe into a side table. Graph
	// mutators keep it in sync with their location table; no other
	// package may touch it.
	loc any
}

// Placement returns the opaque placement slot maintained by package
// graph. Use Graph.Where for the public placement query.
func (o *Op) Placement() any { return o.loc }

// SetPlacement stores the opaque placement slot. Package graph only.
func (o *Op) SetPlacement(p any) { o.loc = p }

// IsBranch reports whether the op is a conditional jump.
func (o *Op) IsBranch() bool { return o.Kind == CJ }

// IsStore reports whether the op writes memory. Stores are never
// speculated: they may not be hoisted above a conditional jump.
func (o *Op) IsStore() bool { return o.Kind == Store }

// IsLoad reports whether the op reads memory.
func (o *Op) IsLoad() bool { return o.Kind == Load }

// IsCopy reports whether the op is a register copy.
func (o *Op) IsCopy() bool { return o.Kind == Copy }

// Def returns the register the op writes, or NoReg. One load from the
// operand cache when it is filled (deps.Build fills it; the legality
// scans probe Def constantly).
func (o *Op) Def() Reg {
	if o.cNU > 0 {
		return o.cDef
	}
	return o.deriveDef()
}

func (o *Op) deriveDef() Reg {
	switch o.Kind {
	case Store, CJ, Nop:
		return NoReg
	}
	return o.Dst
}

// Uses appends the registers the op reads to dst and returns it.
// Operands are fetched in parallel at instruction entry, so the order is
// irrelevant; Uses exists to avoid allocating in hot dependence tests.
// Served from the operand cache when it is filled.
func (o *Op) Uses(dst []Reg) []Reg {
	if n := o.cNU; n > 0 {
		return append(dst, o.cUses[:n-1]...)
	}
	return o.deriveUses(dst)
}

// UsesView returns the registers the op reads without copying when the
// operand cache is filled: the returned slice aliases the cache and
// MUST be treated as read-only — callers that rewrite operands in
// place (the committed-path resolver's copy propagation) must detach
// into their own buffer first. Falls back to deriving into scratch for
// an uncached op.
func (o *Op) UsesView(scratch []Reg) []Reg {
	if n := o.cNU; n > 0 {
		return o.cUses[:n-1]
	}
	return o.deriveUses(scratch)
}

func (o *Op) deriveUses(dst []Reg) []Reg {
	switch o.Kind {
	case Nop, Const:
	case Copy:
		dst = append(dst, o.Src[0])
	case Add, Sub, Mul, Div:
		dst = append(dst, o.Src[0])
		if !o.BImm {
			dst = append(dst, o.Src[1])
		}
	case Load:
		if o.Mem.IndexReg != NoReg {
			dst = append(dst, o.Mem.IndexReg)
		}
	case Store:
		dst = append(dst, o.Src[0])
		if o.Mem.IndexReg != NoReg {
			dst = append(dst, o.Mem.IndexReg)
		}
	case CJ:
		dst = append(dst, o.Src[0])
		if !o.BImm {
			dst = append(dst, o.Src[1])
		}
	}
	return dst
}

// CacheOperands fills the op's cached Def/Uses view from the current
// operand fields. deps.Build calls it for every analyzed op; from then
// on the hot legality probes read two fields instead of re-running the
// kind switch. Idempotent; safe to call at any time.
func (o *Op) CacheOperands() {
	o.cDef = o.deriveDef()
	us := o.deriveUses(o.cUses[:0])
	o.cNU = int8(len(us) + 1)
}

// ReadsReg reports whether the op reads register r.
func (o *Op) ReadsReg(r Reg) bool {
	if r == NoReg {
		return false
	}
	if n := o.cNU; n > 0 {
		for _, u := range o.cUses[:n-1] {
			if u == r {
				return true
			}
		}
		return false
	}
	var buf [3]Reg
	for _, u := range o.deriveUses(buf[:0]) {
		if u == r {
			return true
		}
	}
	return false
}

// ReplaceUse substitutes register to for every read of from, keeping
// the cached operand view exact. Used by copy propagation ("change the
// use of B into a use of X", paper section 2).
func (o *Op) ReplaceUse(from, to Reg) {
	if from == NoReg {
		return
	}
	switch o.Kind {
	case Copy:
		if o.Src[0] == from {
			o.Src[0] = to
		}
	case Add, Sub, Mul, Div, CJ:
		if o.Src[0] == from {
			o.Src[0] = to
		}
		if !o.BImm && o.Src[1] == from {
			o.Src[1] = to
		}
	case Load:
		if o.Mem.IndexReg == from {
			o.Mem.IndexReg = to
		}
	case Store:
		if o.Src[0] == from {
			o.Src[0] = to
		}
		if o.Mem.IndexReg == from {
			o.Mem.IndexReg = to
		}
	}
	if o.cNU > 0 {
		o.CacheOperands()
	}
}

// SetDst rewrites the op's destination register, keeping the cached
// operand view exact. The renaming transformation's mutation; a placed
// op's Dst must never be assigned directly (graph.RetargetDef routes
// through here).
func (o *Op) SetDst(r Reg) {
	o.Dst = r
	if o.cNU > 0 {
		o.cDef = o.deriveDef()
	}
}

// Clone returns a copy of the op with a new instance ID and the Frozen
// flag set as given. Origin and Iter are preserved; the clone is a new
// operation outside the dense index space (Index = NoIndex), so
// index-addressed dependence data never aliases it with its origin.
func (o *Op) Clone(id int, frozen bool) *Op {
	c := *o
	c.ID = id
	c.Index = NoIndex
	c.Frozen = frozen || o.Frozen
	c.loc = nil // the clone starts unplaced
	return &c
}

// String renders the op in a compact three-address form.
func (o *Op) String() string {
	var b strings.Builder
	switch o.Kind {
	case Nop:
		b.WriteString("nop")
	case Const:
		fmt.Fprintf(&b, "r%d = %d", o.Dst, o.Imm)
	case Copy:
		fmt.Fprintf(&b, "r%d = r%d", o.Dst, o.Src[0])
	case Add, Sub, Mul, Div:
		if o.BImm {
			fmt.Fprintf(&b, "r%d = %s r%d, %d", o.Dst, o.Kind, o.Src[0], o.Imm)
		} else {
			fmt.Fprintf(&b, "r%d = %s r%d, r%d", o.Dst, o.Kind, o.Src[0], o.Src[1])
		}
	case Load:
		fmt.Fprintf(&b, "r%d = load %s", o.Dst, o.Mem)
	case Store:
		fmt.Fprintf(&b, "store %s = r%d", o.Mem, o.Src[0])
	case CJ:
		if o.BImm {
			fmt.Fprintf(&b, "cj r%d %s %d", o.Src[0], o.Rel, o.Imm)
		} else {
			fmt.Fprintf(&b, "cj r%d %s r%d", o.Src[0], o.Rel, o.Src[1])
		}
	default:
		fmt.Fprintf(&b, "%s?", o.Kind)
	}
	if o.Iter != NoIter {
		fmt.Fprintf(&b, " {i%d#%d}", o.Iter, o.Origin)
	}
	if o.Frozen {
		b.WriteString(" [frozen]")
	}
	return b.String()
}

// Eval computes the value the op produces given an operand reader.
// get(r) must return the value of register r at instruction entry and
// mem(ref) the memory value at instruction entry. Branches and stores
// have no register result; Eval returns 0 for them. Division by zero
// yields 0 (the simulator's documented convention, which makes
// speculative division safe).
func (o *Op) Eval(get func(Reg) int64, mem func(MemRef) int64) int64 {
	b := func() int64 {
		if o.BImm {
			return o.Imm
		}
		return get(o.Src[1])
	}
	switch o.Kind {
	case Const:
		return o.Imm
	case Copy:
		return get(o.Src[0])
	case Add:
		return get(o.Src[0]) + b()
	case Sub:
		return get(o.Src[0]) - b()
	case Mul:
		return get(o.Src[0]) * b()
	case Div:
		d := b()
		if d == 0 {
			return 0
		}
		return get(o.Src[0]) / d
	case Load:
		return mem(o.Mem)
	}
	return 0
}

// CondHolds evaluates a CJ op's condition with the given register reader.
func (o *Op) CondHolds(get func(Reg) int64) bool {
	b := o.Imm
	if !o.BImm {
		b = get(o.Src[1])
	}
	return o.Rel.Eval(get(o.Src[0]), b)
}
