package ir

import (
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{
		Nop: "nop", Const: "const", Copy: "copy", Add: "add", Sub: "sub",
		Mul: "mul", Div: "div", Load: "load", Store: "store", CJ: "cj",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Opcode(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestRelationEval(t *testing.T) {
	cases := []struct {
		r    Relation
		a, b int64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Eq, 5, 5, true}, {Eq, 5, 6, false},
		{Ne, 5, 6, true}, {Ne, 5, 5, false},
		{Gt, 3, 2, true}, {Gt, 2, 3, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.r.Eval(c.a, c.b); got != c.want {
			t.Errorf("(%d %s %d) = %v, want %v", c.a, c.r, c.b, got, c.want)
		}
	}
}

func TestRelationEvalComplementary(t *testing.T) {
	// Lt/Ge and Le/Gt and Eq/Ne are complementary on all inputs.
	f := func(a, b int64) bool {
		return Lt.Eval(a, b) != Ge.Eval(a, b) &&
			Le.Eval(a, b) != Gt.Eval(a, b) &&
			Eq.Eval(a, b) != Ne.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemRefAlias(t *testing.T) {
	a, b := Array(1), Array(2)
	r1 := Reg(7)
	cases := []struct {
		x, y MemRef
		want bool
	}{
		{MemRef{Array: a, Index: 3}, MemRef{Array: a, Index: 3}, true},
		{MemRef{Array: a, Index: 3}, MemRef{Array: a, Index: 4}, false},
		{MemRef{Array: a, Index: 3}, MemRef{Array: b, Index: 3}, false},
		{MemRef{Array: a, IndexReg: r1}, MemRef{Array: a, Index: 9}, true},
		{MemRef{Array: a, IndexReg: r1}, MemRef{Array: b, IndexReg: r1}, false},
		{MemRef{}, MemRef{Array: a, Index: 1}, false},
	}
	for _, c := range cases {
		if got := c.x.MayAlias(c.y); got != c.want {
			t.Errorf("MayAlias(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
		if got := c.y.MayAlias(c.x); got != c.want {
			t.Errorf("MayAlias not symmetric for (%v, %v)", c.x, c.y)
		}
	}
}

func TestOpUsesAndDef(t *testing.T) {
	add := &Op{Kind: Add, Dst: 1, Src: [2]Reg{2, 3}}
	if add.Def() != 1 {
		t.Errorf("add.Def() = %d, want 1", add.Def())
	}
	uses := add.Uses(nil)
	if len(uses) != 2 || uses[0] != 2 || uses[1] != 3 {
		t.Errorf("add.Uses() = %v, want [2 3]", uses)
	}

	addi := &Op{Kind: Add, Dst: 1, Src: [2]Reg{2, 99}, Imm: 5, BImm: true}
	if u := addi.Uses(nil); len(u) != 1 || u[0] != 2 {
		t.Errorf("addi.Uses() = %v, want [2]", u)
	}

	st := &Op{Kind: Store, Src: [2]Reg{4}, Mem: MemRef{Array: 1, IndexReg: 5}}
	if st.Def() != NoReg {
		t.Errorf("store defines %d, want none", st.Def())
	}
	if u := st.Uses(nil); len(u) != 2 || u[0] != 4 || u[1] != 5 {
		t.Errorf("store.Uses() = %v, want [4 5]", u)
	}

	cj := &Op{Kind: CJ, Src: [2]Reg{6, 7}, Rel: Lt}
	if cj.Def() != NoReg {
		t.Errorf("cj defines %d, want none", cj.Def())
	}
	if !cj.ReadsReg(6) || !cj.ReadsReg(7) || cj.ReadsReg(8) {
		t.Error("cj.ReadsReg wrong")
	}
}

func TestReplaceUse(t *testing.T) {
	op := &Op{Kind: Mul, Dst: 1, Src: [2]Reg{2, 2}}
	op.ReplaceUse(2, 9)
	if op.Src[0] != 9 || op.Src[1] != 9 {
		t.Errorf("ReplaceUse failed: %v", op.Src)
	}
	ld := &Op{Kind: Load, Dst: 1, Mem: MemRef{Array: 1, IndexReg: 3}}
	ld.ReplaceUse(3, 4)
	if ld.Mem.IndexReg != 4 {
		t.Errorf("ReplaceUse on load index failed: %v", ld.Mem)
	}
	// Dst is never a use.
	op2 := &Op{Kind: Add, Dst: 5, Src: [2]Reg{1, 2}}
	op2.ReplaceUse(5, 9)
	if op2.Dst != 5 {
		t.Error("ReplaceUse must not rewrite the destination")
	}
}

func TestOpEval(t *testing.T) {
	regs := map[Reg]int64{1: 10, 2: 3}
	get := func(r Reg) int64 { return regs[r] }
	mem := func(m MemRef) int64 { return 100 + m.Index }
	cases := []struct {
		op   Op
		want int64
	}{
		{Op{Kind: Const, Imm: 42}, 42},
		{Op{Kind: Copy, Src: [2]Reg{1}}, 10},
		{Op{Kind: Add, Src: [2]Reg{1, 2}}, 13},
		{Op{Kind: Sub, Src: [2]Reg{1, 2}}, 7},
		{Op{Kind: Mul, Src: [2]Reg{1, 2}}, 30},
		{Op{Kind: Div, Src: [2]Reg{1, 2}}, 3},
		{Op{Kind: Div, Src: [2]Reg{1}, Imm: 0, BImm: true}, 0}, // div by zero yields 0
		{Op{Kind: Add, Src: [2]Reg{1}, Imm: -4, BImm: true}, 6},
		{Op{Kind: Load, Mem: MemRef{Array: 1, Index: 7}}, 107},
	}
	for _, c := range cases {
		if got := c.op.Eval(get, mem); got != c.want {
			t.Errorf("%v.Eval() = %d, want %d", c.op.String(), got, c.want)
		}
	}
	cj := Op{Kind: CJ, Src: [2]Reg{2}, Imm: 5, BImm: true, Rel: Lt}
	if !cj.CondHolds(get) {
		t.Error("cj 3 < 5 should hold")
	}
}

func TestClonePreservesIdentity(t *testing.T) {
	op := &Op{ID: 5, Origin: 3, Iter: 2, Kind: Add, Dst: 1, Src: [2]Reg{2, 3}}
	c := op.Clone(99, true)
	if c.ID != 99 || !c.Frozen {
		t.Errorf("clone id/frozen wrong: %+v", c)
	}
	if c.Origin != 3 || c.Iter != 2 || c.Kind != Add {
		t.Errorf("clone lost identity: %+v", c)
	}
	c.Src[0] = 42
	if op.Src[0] != 2 {
		t.Error("clone shares storage with original")
	}
}

func TestAlloc(t *testing.T) {
	a := NewAlloc()
	r1 := a.Reg("x")
	r2 := a.Reg("y")
	if r1 == r2 || r1 == NoReg || r2 == NoReg {
		t.Fatalf("bad registers %d %d", r1, r2)
	}
	if a.RegName(r1) != "x" {
		t.Errorf("RegName = %q", a.RegName(r1))
	}
	ar1 := a.Array("X")
	ar2 := a.Array("X")
	if ar1 != ar2 {
		t.Error("Array not idempotent per name")
	}
	if a.Array("Y") == ar1 {
		t.Error("distinct arrays collide")
	}
	if a.OpID() == a.OpID() {
		t.Error("OpID not unique")
	}
	if a.NumRegs() != 2 {
		t.Errorf("NumRegs = %d, want 2", a.NumRegs())
	}
}
