package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Fingerprint returns a canonical content hash of the loop spec. Two
// specs with identical scheduling-relevant content (body, counter,
// live-in/live-out interface) fingerprint identically regardless of
// pointer identity, so the fingerprint can key result caches across
// runs. The Name participates: kernels are identified by name in
// reports, and two same-bodied loops under different names are
// different table rows.
func (s *LoopSpec) Fingerprint() string {
	var b strings.Builder
	// Every identifier is %q-quoted so the encoding is unambiguous:
	// names are arbitrary tokens, and bare delimiters would let e.g.
	// LiveIn ["a,b"] collide with ["a", "b"].
	fmt.Fprintf(&b, "loop|%q|start=%d|step=%d|trip=%q", s.Name, s.Start, s.Step, s.TripVar)
	b.WriteString("|in=")
	for _, v := range s.LiveIn {
		fmt.Fprintf(&b, "%q,", v)
	}
	b.WriteString("|out=")
	for _, v := range s.LiveOut {
		fmt.Fprintf(&b, "%q,", v)
	}
	for _, op := range s.Body {
		fmt.Fprintf(&b, "|%d;%q;%q;%q;%d;%t;%q;%d;%d;%q",
			op.Kind, op.Dst, op.A, op.B, op.Imm, op.UseImm,
			op.Mem.Array, op.Mem.KCoef, op.Mem.Off, op.Mem.IndexVar)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// Clone returns an independent copy of the allocator: subsequent
// allocations on the clone and the original diverge without affecting
// each other. Used when deep-copying a program graph so that each copy
// keeps allocating deterministically from the same point.
func (a *Alloc) Clone() *Alloc {
	c := &Alloc{
		nextReg:   a.nextReg,
		nextArray: a.nextArray,
		nextOp:    a.nextOp,
		regNames:  make(map[Reg]string, len(a.regNames)),
		arrNames:  make(map[Array]string, len(a.arrNames)),
		arrByName: make(map[string]Array, len(a.arrByName)),
	}
	for k, v := range a.regNames {
		c.regNames[k] = v
	}
	for k, v := range a.arrNames {
		c.arrNames[k] = v
	}
	for k, v := range a.arrByName {
		c.arrByName[k] = v
	}
	return c
}
