package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// Fingerprint returns a canonical content hash of the loop spec. Two
// specs with identical scheduling-relevant content (body, counter,
// live-in/live-out interface) fingerprint identically regardless of
// pointer identity, so the fingerprint can key result caches across
// runs. The Name participates: kernels are identified by name in
// reports, and two same-bodied loops under different names are
// different table rows.
func (s *LoopSpec) Fingerprint() string {
	// Every identifier is quoted (strconv.AppendQuote, the exact %q
	// encoding) so the result is unambiguous: names are arbitrary
	// tokens, and bare delimiters would let e.g. LiveIn ["a,b"] collide
	// with ["a", "b"]. Built with strconv appends instead of Fprintf —
	// this runs once per kernel per table cell and the verb parsing was
	// visible in the cold-table profile — byte-identical to the
	// Fprintf encoding it replaces (TestFingerprintEncodingStable),
	// which existing disk caches are keyed by.
	b := make([]byte, 0, 256)
	b = append(b, "loop|"...)
	b = strconv.AppendQuote(b, s.Name)
	b = append(b, "|start="...)
	b = strconv.AppendInt(b, s.Start, 10)
	b = append(b, "|step="...)
	b = strconv.AppendInt(b, s.Step, 10)
	b = append(b, "|trip="...)
	b = strconv.AppendQuote(b, s.TripVar)
	b = append(b, "|in="...)
	for _, v := range s.LiveIn {
		b = strconv.AppendQuote(b, v)
		b = append(b, ',')
	}
	b = append(b, "|out="...)
	for _, v := range s.LiveOut {
		b = strconv.AppendQuote(b, v)
		b = append(b, ',')
	}
	for _, op := range s.Body {
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(op.Kind), 10)
		b = append(b, ';')
		b = strconv.AppendQuote(b, op.Dst)
		b = append(b, ';')
		b = strconv.AppendQuote(b, op.A)
		b = append(b, ';')
		b = strconv.AppendQuote(b, op.B)
		b = append(b, ';')
		b = strconv.AppendInt(b, op.Imm, 10)
		b = append(b, ';')
		b = strconv.AppendBool(b, op.UseImm)
		b = append(b, ';')
		b = strconv.AppendQuote(b, op.Mem.Array)
		b = append(b, ';')
		b = strconv.AppendInt(b, op.Mem.KCoef, 10)
		b = append(b, ';')
		b = strconv.AppendInt(b, op.Mem.Off, 10)
		b = append(b, ';')
		b = strconv.AppendQuote(b, op.Mem.IndexVar)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Clone returns an independent copy of the allocator: subsequent
// allocations on the clone and the original diverge without affecting
// each other. Used when deep-copying a program graph so that each copy
// keeps allocating deterministically from the same point.
func (a *Alloc) Clone() *Alloc {
	c := &Alloc{
		nextReg:   a.nextReg,
		nextArray: a.nextArray,
		nextOp:    a.nextOp,
		regNames:  make(map[Reg]string, len(a.regNames)),
		arrNames:  make(map[Array]string, len(a.arrNames)),
		arrByName: make(map[string]Array, len(a.arrByName)),
	}
	for k, v := range a.regNames {
		c.regNames[k] = v
	}
	for k, v := range a.arrNames {
		c.arrNames[k] = v
	}
	for k, v := range a.arrByName {
		c.arrByName[k] = v
	}
	return c
}
