// Package grip is the public facade of the GRiP reproduction: Global
// Resource-constrained Percolation scheduling with Perfect Pipelining
// (Nicolau & Novack, ICPP 1992), plus the baselines the paper compares
// against (POST, Unifiable-ops, modulo scheduling, list scheduling).
//
// Quick start:
//
//	loop := &grip.Loop{
//	    Name: "dot",
//	    Body: []grip.BodyOp{
//	        grip.Load("t1", grip.Aff("Z", 1, 0)),
//	        grip.Load("t2", grip.Aff("X", 1, 0)),
//	        grip.Mul("t3", "t1", "t2"),
//	        grip.Add("q", "q", "t3"),
//	    },
//	    Step: 1, TripVar: "n",
//	    LiveIn: []string{"q"}, LiveOut: []string{"q"},
//	}
//	res, err := grip.PerfectPipeline(loop, grip.Machine(4))
//	fmt.Println(res.Speedup, res.Kernel)
package grip

import (
	"context"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
	"repro/internal/sched"
	"repro/internal/sched/batch"
)

// Loop describes an innermost counted loop; see ir.LoopSpec.
type Loop = ir.LoopSpec

// BodyOp is one loop-body operation over named variables.
type BodyOp = ir.BodyOp

// MemRef addresses an array element affinely in the loop counter or
// indirectly through a variable.
type MemRef = ir.BodyRef

// Result reports a pipelining run: convergence, the steady-state kernel,
// cycles per iteration, and the speedup over sequential issue.
type Result = pipeline.Result

// Kernel is the repeating pattern Perfect Pipelining turns into the new
// loop body.
type Kernel = pipeline.Kernel

// Config tunes a run; DefaultConfig(Machine(n)) reproduces the paper's
// setup.
type Config = pipeline.Config

// MachineModel is the VLIW resource model.
type MachineModel = machine.Machine

// Body-op constructors, re-exported for building loops.
var (
	Add   = ir.BAdd
	Sub   = ir.BSub
	Mul   = ir.BMul
	Div   = ir.BDiv
	AddI  = ir.BAddI
	MulI  = ir.BMulI
	Copy  = ir.BCopy
	Load  = ir.BLoad
	Store = ir.BStore
	Aff   = ir.Aff
	Ind   = ir.Ind
)

// Machine returns a VLIW with n universal functional units and one
// branch slot per instruction — the paper's machine model.
func Machine(n int) MachineModel { return machine.New(n) }

// InfiniteMachine returns the unconstrained configuration.
func InfiniteMachine() MachineModel { return machine.Infinite() }

// DefaultConfig is the paper-faithful configuration for machine m.
func DefaultConfig(m MachineModel) Config { return pipeline.DefaultConfig(m) }

// PerfectPipeline pipelines the loop with GRiP on a machine with the
// given model, unwinding until the steady-state pattern converges.
func PerfectPipeline(loop *Loop, m MachineModel) (*Result, error) {
	return pipeline.PerfectPipeline(context.Background(), loop, pipeline.DefaultConfig(m))
}

// PerfectPipelineConfig is PerfectPipeline with full control. The
// context cancels the run mid-schedule (the step loops observe it), so
// callers can bound pathological configurations with a deadline.
func PerfectPipelineConfig(ctx context.Context, loop *Loop, cfg Config) (*Result, error) {
	return pipeline.PerfectPipeline(ctx, loop, cfg)
}

// SimplePipeline unwinds the loop n times and compacts the block without
// re-forming a steady state (the paper's Figure 6 comparison).
func SimplePipeline(loop *Loop, m MachineModel, n int) (*Result, error) {
	return pipeline.SimplePipeline(context.Background(), loop, pipeline.DefaultConfig(m), n)
}

// Post pipelines with the POST baseline: infinite-resource GRiP followed
// by a resource-constraining post-pass.
func Post(loop *Loop, m MachineModel) (*Result, error) {
	return post.Pipeline(context.Background(), loop, pipeline.DefaultConfig(m))
}

// Modulo runs the iterative modulo-scheduling baseline and returns its
// initiation interval and speedup.
func Modulo(loop *Loop, m MachineModel) (*modulo.Result, error) {
	return modulo.Schedule(context.Background(), loop, m)
}

// ListSchedule compacts a single iteration with no pipelining.
func ListSchedule(loop *Loop, m MachineModel) *listsched.Result {
	return listsched.Schedule(loop, m)
}

// SchedResult is the result every registered scheduling backend
// reports: normalized metrics plus an optional raw attachment
// (requested via SchedRequest.Want, accessed via Raw/CloneRaw).
type SchedResult = sched.Result

// SchedMetrics is the normalized, serializable metrics tier of a
// scheduling result (speedup, cycles/iteration, convergence, kernel
// shape, barrier count) — the part persistent caches keep for every
// fingerprint.
type SchedMetrics = sched.Metrics

// SchedWant hints what a request needs beyond the metrics; it never
// joins cache keys.
type SchedWant = sched.Want

// Re-exported Want values.
const (
	WantMetrics = sched.WantMetrics
	WantRaw     = sched.WantRaw
)

// SchedBackend is the uniform interface scheduling techniques implement.
type SchedBackend = sched.Scheduler

// SchedRequest is a first-class scheduling request: the (loop, machine,
// configuration) triple that identifies an experiment and keys result
// caches.
type SchedRequest = sched.Request

// SchedConfig is a per-request override of a technique's paper-default
// configuration; the zero value is the paper default, and its
// fingerprint joins batch cache keys, so sweeps over unwind factors or
// gap-prevention settings cache correctly per configuration.
type SchedConfig = sched.Config

// BatchJob is one scheduling request for the batch engine.
type BatchJob = batch.Job

// BatchOutcome is the per-job result of a batch run, in job order.
type BatchOutcome = batch.Outcome

// BatchOptions tune a batch run: worker parallelism, per-job timeout,
// and an optional shared result cache with single-flight dedup.
type BatchOptions = batch.Options

// BatchCache is the thread-safe tiered result store keyed by
// (technique, loop fingerprint, machine fingerprint, config
// fingerprint): an in-memory metrics tier plus a capped raw tier,
// optionally backed by a persistent on-disk tier (AttachDisk),
// deduplicating identical in-flight computations.
type BatchCache = batch.Cache

// Schedulers lists the registered scheduling techniques ("grip",
// "list", "modulo", "post", ...). Any name it returns is valid for
// Scheduler, Schedule, and BatchJob.Technique.
func Schedulers() []string { return sched.Names() }

// Scheduler returns the backend registered under name.
func Scheduler(name string) (SchedBackend, bool) { return sched.Lookup(name) }

// Schedule runs the named technique for the loop on machine m under the
// paper-default configuration and returns the normalized result.
// Cancelling ctx (or attaching a deadline) stops the computation.
func Schedule(ctx context.Context, name string, loop *Loop, m MachineModel) (*SchedResult, error) {
	return sched.Schedule(ctx, name, SchedRequest{Spec: loop, Machine: m})
}

// ScheduleRequest runs the named technique for a full request,
// configuration included.
func ScheduleRequest(ctx context.Context, name string, req SchedRequest) (*SchedResult, error) {
	return sched.Schedule(ctx, name, req)
}

// Batch executes scheduling jobs concurrently through the registry:
// a worker pool with context cancellation, per-job timeouts that
// actually stop the scheduling work, and an optional LRU result cache
// with single-flight dedup. Outcomes are returned in job order and are
// bit-identical to a sequential run — every technique is a pure
// function of (loop, machine, configuration).
func Batch(ctx context.Context, jobs []BatchJob, opts BatchOptions) ([]BatchOutcome, error) {
	return batch.Run(ctx, jobs, opts)
}

// NewBatchCache returns an LRU result cache to share across Batch runs.
func NewBatchCache(capacity int) *BatchCache { return batch.NewCache(capacity) }

// Validate proves a pipelined result semantically equivalent to the
// original loop on the given inputs, including early-exit trip counts
// that execute the drain code.
func Validate(res *Result, vars map[string]int64, arrays map[string][]int64, trips []int64) error {
	return pipeline.ValidateSemantics(res, vars, arrays, trips)
}
