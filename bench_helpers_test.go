package grip

import (
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func simRun(res *pipeline.Result, init *sim.State) (*sim.Result, error) {
	return sim.Run(res.Unwound.G, init, 1_000_000)
}
