package grip

import (
	"context"
	"strings"
	"testing"
)

func dotLoop() *Loop {
	return &Loop{
		Name: "dot",
		Body: []BodyOp{
			Load("t1", Aff("Z", 1, 0)),
			Load("t2", Aff("X", 1, 0)),
			Mul("t3", "t1", "t2"),
			Add("q", "q", "t3"),
		},
		Step: 1, TripVar: "n",
		LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	res, err := PerfectPipeline(dotLoop(), Machine(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Kernel == nil {
		t.Fatal("pipeline did not converge")
	}
	if res.Speedup < 3.5 {
		t.Fatalf("speedup %.2f", res.Speedup)
	}
	z := make([]int64, res.U+4)
	x := make([]int64, res.U+4)
	for i := range z {
		z[i], x[i] = int64(i+1), int64(2*i+1)
	}
	err = Validate(res, map[string]int64{"q": 3},
		map[string][]int64{"Z": z, "X": x}, []int64{1, int64(res.U)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	loop := dotLoop()
	m := Machine(4)
	p, err := Post(loop, m)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Modulo(loop, m)
	if err != nil {
		t.Fatal(err)
	}
	ls := ListSchedule(loop, m)
	g, err := PerfectPipeline(loop, m)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: pipelining beats compaction; integrated
	// resource constraints beat both local and post-pass approaches.
	if !(g.Speedup >= p.Speedup-0.01) {
		t.Errorf("GRiP %.2f < POST %.2f", g.Speedup, p.Speedup)
	}
	if !(g.Speedup >= mod.Speedup-0.01) {
		t.Errorf("GRiP %.2f < modulo %.2f", g.Speedup, mod.Speedup)
	}
	if !(mod.Speedup >= ls.Speedup-0.01) {
		t.Errorf("modulo %.2f < list %.2f", mod.Speedup, ls.Speedup)
	}
}

func TestPublicSimplePipeline(t *testing.T) {
	res, err := SimplePipeline(dotLoop(), Machine(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1 {
		t.Fatalf("simple pipelining speedup %.2f", res.Speedup)
	}
}

// TestPublicRegistryAndBatch drives the registry-facing facade: every
// listed technique schedules by name, the results match the dedicated
// entry points, and a batch run with a shared cache dedupes reruns.
func TestPublicRegistryAndBatch(t *testing.T) {
	names := Schedulers()
	if len(names) < 4 {
		t.Fatalf("Schedulers() = %v", names)
	}
	m := Machine(4)
	for _, name := range names {
		if _, ok := Scheduler(name); !ok {
			t.Fatalf("Scheduler(%q) not found", name)
		}
		res, err := Schedule(context.Background(), name, dotLoop(), m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Speedup <= 0 || res.Technique != name {
			t.Errorf("%s: bad result %+v", name, res)
		}
	}
	direct, err := PerfectPipeline(dotLoop(), m)
	if err != nil {
		t.Fatal(err)
	}
	byName, err := Schedule(context.Background(), "grip", dotLoop(), m)
	if err != nil {
		t.Fatal(err)
	}
	if byName.Speedup != direct.Speedup || byName.CyclesPerIter != direct.CyclesPerIter {
		t.Errorf("registry grip %.3f/%.3f != direct %.3f/%.3f",
			byName.Speedup, byName.CyclesPerIter, direct.Speedup, direct.CyclesPerIter)
	}

	cache := NewBatchCache(16)
	jobs := []BatchJob{
		{Technique: "grip", Spec: dotLoop(), Machine: Machine(2)},
		{Technique: "post", Spec: dotLoop(), Machine: Machine(2)},
	}
	outs, err := Batch(context.Background(), jobs, BatchOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	outs, err = Batch(context.Background(), jobs, BatchOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.CacheHit {
			t.Errorf("%s rerun missed the shared cache", o.Job.Technique)
		}
	}
}

func TestPublicConfigKnobs(t *testing.T) {
	cfg := DefaultConfig(Machine(2))
	cfg.Optimize = false
	cfg.Unwind = 12
	res, err := PerfectPipelineConfig(context.Background(), dotLoop(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 12 {
		t.Fatalf("unwind override ignored: U=%d", res.U)
	}
	if res.Unwound.Removed() != 0 {
		t.Fatal("optimization ran although disabled")
	}
	if !strings.Contains(InfiniteMachine().String(), "inf") {
		t.Fatal("infinite machine misreported")
	}
}
