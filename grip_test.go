package grip

import (
	"strings"
	"testing"
)

func dotLoop() *Loop {
	return &Loop{
		Name: "dot",
		Body: []BodyOp{
			Load("t1", Aff("Z", 1, 0)),
			Load("t2", Aff("X", 1, 0)),
			Mul("t3", "t1", "t2"),
			Add("q", "q", "t3"),
		},
		Step: 1, TripVar: "n",
		LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	res, err := PerfectPipeline(dotLoop(), Machine(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Kernel == nil {
		t.Fatal("pipeline did not converge")
	}
	if res.Speedup < 3.5 {
		t.Fatalf("speedup %.2f", res.Speedup)
	}
	z := make([]int64, res.U+4)
	x := make([]int64, res.U+4)
	for i := range z {
		z[i], x[i] = int64(i+1), int64(2*i+1)
	}
	err = Validate(res, map[string]int64{"q": 3},
		map[string][]int64{"Z": z, "X": x}, []int64{1, int64(res.U)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	loop := dotLoop()
	m := Machine(4)
	p, err := Post(loop, m)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Modulo(loop, m)
	if err != nil {
		t.Fatal(err)
	}
	ls := ListSchedule(loop, m)
	g, err := PerfectPipeline(loop, m)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: pipelining beats compaction; integrated
	// resource constraints beat both local and post-pass approaches.
	if !(g.Speedup >= p.Speedup-0.01) {
		t.Errorf("GRiP %.2f < POST %.2f", g.Speedup, p.Speedup)
	}
	if !(g.Speedup >= mod.Speedup-0.01) {
		t.Errorf("GRiP %.2f < modulo %.2f", g.Speedup, mod.Speedup)
	}
	if !(mod.Speedup >= ls.Speedup-0.01) {
		t.Errorf("modulo %.2f < list %.2f", mod.Speedup, ls.Speedup)
	}
}

func TestPublicSimplePipeline(t *testing.T) {
	res, err := SimplePipeline(dotLoop(), Machine(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1 {
		t.Fatalf("simple pipelining speedup %.2f", res.Speedup)
	}
}

func TestPublicConfigKnobs(t *testing.T) {
	cfg := DefaultConfig(Machine(2))
	cfg.Optimize = false
	cfg.Unwind = 12
	res, err := PerfectPipelineConfig(dotLoop(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 12 {
		t.Fatalf("unwind override ignored: U=%d", res.U)
	}
	if res.Unwound.Removed() != 0 {
		t.Fatal("optimization ran although disabled")
	}
	if !strings.Contains(InfiniteMachine().String(), "inf") {
		t.Fatal("infinite machine misreported")
	}
}
