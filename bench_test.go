// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices called out in DESIGN.md. Each
// benchmark reports the paper's metric (speedup, cycles per iteration,
// convergence) through b.ReportMetric, so `go test -bench=.` reproduces
// the evaluation numbers alongside the scheduler's own cost.
package grip

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/harness"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
	"repro/internal/ps"
	"repro/internal/unifiable"
)

// BenchmarkTable1 regenerates every cell of Table 1: loops LL1–LL14 at
// 2, 4 and 8 functional units, GRiP and POST. The "speedup" metric is
// the cell value; ns/op is the cost of producing it (unwinding,
// scheduling, pattern detection).
func BenchmarkTable1(b *testing.B) {
	for _, k := range livermore.All() {
		for _, fus := range []int{2, 4, 8} {
			cfg := pipeline.DefaultConfig(machine.New(fus))
			b.Run(fmt.Sprintf("%s/%dFU/GRiP", k.Name, fus), func(b *testing.B) {
				var last *pipeline.Result
				for i := 0; i < b.N; i++ {
					var err error
					last, err = pipeline.PerfectPipeline(context.Background(), k.Spec, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(last.Speedup, "speedup")
				b.ReportMetric(boolMetric(last.Converged), "converged")
			})
			b.Run(fmt.Sprintf("%s/%dFU/POST", k.Name, fus), func(b *testing.B) {
				var last *pipeline.Result
				for i := 0; i < b.N; i++ {
					var err error
					last, err = post.Pipeline(context.Background(), k.Spec, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(last.Speedup, "speedup")
			})
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkFigure6 regenerates the simple-vs-perfect pipelining
// comparison on the paper's running example loop.
func BenchmarkFigure6(b *testing.B) {
	spec := harness.PaperExampleLoop()
	cfg := pipeline.DefaultConfig(machine.New(3))
	cfg.Optimize = false
	b.Run("simple", func(b *testing.B) {
		var last *pipeline.Result
		for i := 0; i < b.N; i++ {
			var err error
			last, err = pipeline.SimplePipeline(context.Background(), spec, cfg, 4)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(last.Speedup, "speedup")
	})
	b.Run("perfect", func(b *testing.B) {
		var last *pipeline.Result
		for i := 0; i < b.N; i++ {
			var err error
			last, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(last.Speedup, "speedup")
	})
}

// BenchmarkFigure9_13 regenerates the gap experiment: without gap
// prevention the schedule diverges (converged=0), with it the pipeline
// reaches the Figure 13 kernel (converged=1).
func BenchmarkFigure9_13(b *testing.B) {
	spec := harness.PaperExampleLoop()
	for _, gap := range []bool{false, true} {
		name := "Fig9-noPrevention"
		if gap {
			name = "Fig13-gapless"
		}
		b.Run(name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig(machine.Infinite())
			cfg.Optimize = false
			cfg.GapPrevention = gap
			cfg.Unwind = 16
			var last *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(boolMetric(last.Converged), "converged")
			b.ReportMetric(last.CyclesPerIter, "cycles/iter")
		})
	}
}

// BenchmarkFigure8_11 regenerates the candidate-set traces of Figures 8
// and 11 (Unifiable-ops vs Moveable-ops on the same program).
func BenchmarkFigure8_11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := harness.Figure8And11(io.Discard, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntroExample regenerates the section 1 motivating example:
// GRiP's fractional rate versus modulo scheduling's integral II on the
// 5-operation loop at 4 units.
func BenchmarkIntroExample(b *testing.B) {
	spec := harness.IntroExampleLoop()
	m := machine.New(4)
	var g, mo float64
	for i := 0; i < b.N; i++ {
		res, err := pipeline.PerfectPipeline(context.Background(), spec, pipeline.DefaultConfig(m))
		if err != nil {
			b.Fatal(err)
		}
		mres, err := modulo.Schedule(context.Background(), spec, m)
		if err != nil {
			b.Fatal(err)
		}
		g, mo = res.Speedup, mres.Speedup
	}
	b.ReportMetric(g, "grip-speedup")
	b.ReportMetric(mo, "modulo-speedup")
}

// BenchmarkSchedulerCost benchmarks the paper's efficiency claim
// (section 3.1/3.2): Moveable-ops sets are trivially maintainable while
// Unifiable-ops sets must be recomputed against the dominated region, so
// GRiP schedules the same program markedly faster.
func BenchmarkSchedulerCost(b *testing.B) {
	spec := livermore.ByName("LL1").Spec
	const unwind = 16
	m := machine.New(4)
	b.Run("GRiP-moveable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uw, err := pipeline.Unwind(spec, unwind)
			if err != nil {
				b.Fatal(err)
			}
			g := uw.BuildGraph()
			ddg := deps.Build(uw.Ops)
			ctx := ps.NewCtx(g, m, uw.ExitLive)
			if _, err := core.Schedule(context.Background(), ctx, uw.Ops, deps.NewPriority(ddg), core.Options{GapPrevention: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Unifiable-ops", func(b *testing.B) {
		var work int
		for i := 0; i < b.N; i++ {
			uw, err := pipeline.Unwind(spec, unwind)
			if err != nil {
				b.Fatal(err)
			}
			g := uw.BuildGraph()
			ddg := deps.Build(uw.Ops)
			ctx := ps.NewCtx(g, m, uw.ExitLive)
			st, err := unifiable.Schedule(ctx, uw.Ops, deps.NewPriority(ddg), unifiable.Options{})
			if err != nil {
				b.Fatal(err)
			}
			work = st.SetWork
		}
		b.ReportMetric(float64(work), "set-probes")
	})
}

// BenchmarkAblationGapPrevention measures what the Gapless-move
// machinery costs and buys on a real kernel.
func BenchmarkAblationGapPrevention(b *testing.B) {
	spec := livermore.ByName("LL1").Spec
	for _, gap := range []bool{true, false} {
		b.Run(fmt.Sprintf("gapless=%v", gap), func(b *testing.B) {
			cfg := pipeline.DefaultConfig(machine.New(4))
			cfg.GapPrevention = gap
			cfg.Unwind = 24
			var last *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(boolMetric(last.Converged), "converged")
			b.ReportMetric(last.CyclesPerIter, "cycles/iter")
		})
	}
}

// BenchmarkAblationRedundancyRemoval quantifies section 4's redundant
// operation removal on the memory-recurrence kernel LL5.
func BenchmarkAblationRedundancyRemoval(b *testing.B) {
	spec := livermore.ByName("LL5").Spec
	for _, opt := range []bool{true, false} {
		b.Run(fmt.Sprintf("optimize=%v", opt), func(b *testing.B) {
			cfg := pipeline.DefaultConfig(machine.New(8))
			cfg.Optimize = opt
			var last *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Speedup, "speedup")
		})
	}
}

// BenchmarkAblationEmptyPrelude evaluates the paper's "empty
// instructions at the beginning" mitigation for temporary resource
// barriers (section 3.2), reporting barrier counts with and without it.
func BenchmarkAblationEmptyPrelude(b *testing.B) {
	spec := livermore.ByName("LL8").Spec
	for _, prelude := range []int{0, 8} {
		b.Run(fmt.Sprintf("prelude=%d", prelude), func(b *testing.B) {
			cfg := pipeline.DefaultConfig(machine.New(4))
			cfg.EmptyPrelude = prelude
			cfg.Unwind = 24
			var last *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Stats.ResourceBarriers), "barriers")
			b.ReportMetric(last.Speedup, "speedup")
		})
	}
}

// BenchmarkAblationBranchSlots shows the one-iteration-per-cycle
// throughput ceiling imposed by a single branch slot (section 1) by
// widening it on a tiny loop where the ceiling binds.
func BenchmarkAblationBranchSlots(b *testing.B) {
	spec := livermore.ByName("LL12").Spec
	for _, slots := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("branch=%d", slots), func(b *testing.B) {
			cfg := pipeline.DefaultConfig(machine.New(8).WithBranchSlots(slots))
			var last *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Speedup, "speedup")
			b.ReportMetric(last.CyclesPerIter, "cycles/iter")
		})
	}
}

// BenchmarkSimulator measures raw simulation throughput (cycles of VLIW
// execution per second) on a scheduled pipeline.
func BenchmarkSimulator(b *testing.B) {
	k := livermore.ByName("LL1")
	res, err := pipeline.PerfectPipeline(context.Background(), k.Spec, pipeline.DefaultConfig(machine.New(4)))
	if err != nil {
		b.Fatal(err)
	}
	vars := map[string]int64{"q": 5, "r": 3, "t": 2, "n": int64(res.U)}
	arrays := k.Arrays(res.U + 16)
	init := res.Unwound.InitState(vars, arrays)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simRun(res, init); err != nil {
			b.Fatal(err)
		}
	}
}
