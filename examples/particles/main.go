// Particles: scheduling under unanalyzable memory. The particle-in-cell
// kernels (LL13/LL14) index their grids through values loaded at run
// time; conservative dependence analysis must serialize those accesses,
// so no scheduler — however wide the machine — can exceed the recurrence
// rate. GRiP still fills whatever parallelism remains, and the simulator
// proves the aggressive schedule preserves the scatter/gather semantics.
package main

import (
	"fmt"
	"log"

	grip "repro"
)

func pic() *grip.Loop {
	// i = ix[k]; p[i]++ ; y[k] = e[k]*p[i]
	return &grip.Loop{
		Name: "pic",
		Body: []grip.BodyOp{
			grip.Load("i1", grip.Aff("IX", 1, 0)),
			grip.Load("p1", grip.Ind("P", "i1", 0)),
			grip.AddI("p2", "p1", 1),
			grip.Store(grip.Ind("P", "i1", 0), "p2"),
			grip.Load("e", grip.Aff("E", 1, 0)),
			grip.Mul("yv", "e", "p2"),
			grip.Store(grip.Aff("Y", 1, 0), "yv"),
		},
		Step: 1, TripVar: "n",
	}
}

func main() {
	for _, fus := range []int{2, 8, 32} {
		res, err := grip.PerfectPipeline(pic(), grip.Machine(fus))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d FUs: %.2f cycles/iter, speedup %.2f (converged=%v)\n",
			fus, res.CyclesPerIter, res.Speedup, res.Converged)
	}

	// Particles that collide in the same cell make the indirect chain
	// real: validate the schedule on a colliding workload.
	res, err := grip.PerfectPipeline(pic(), grip.Machine(8))
	if err != nil {
		log.Fatal(err)
	}
	n := res.U + 2
	ix := make([]int64, n)
	e := make([]int64, n)
	for k := range ix {
		ix[k] = int64(k % 3) // heavy collisions
		e[k] = int64(k + 1)
	}
	err = grip.Validate(res, nil, map[string][]int64{
		"IX": ix, "P": {10, 20, 30}, "E": e, "Y": make([]int64, n),
	}, []int64{2, int64(res.U / 2), int64(res.U)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("validated: indirect scatter/gather survives aggressive scheduling")
	fmt.Println("(the speedup plateau is the serialized grid update, as in the paper's LL13)")
}
