// Recurrence: how loop-carried dependences bound pipelining, and how the
// paper's redundant-operation removal (store→load forwarding) relaxes
// the bound. The tri-diagonal elimination x[k] = z[k]*(y[k] - x[k-1])
// carries its output into the next iteration through memory: without
// forwarding the recurrence is load→sub→mul→store (4 cycles/iteration);
// with forwarding the reload disappears and only sub→mul remains
// (2 cycles/iteration) — which is why the paper's LL5 speedups saturate
// at 4+ functional units.
package main

import (
	"context"
	"fmt"
	"log"

	grip "repro"
)

func tridiag() *grip.Loop {
	return &grip.Loop{
		Name: "tridiag",
		Body: []grip.BodyOp{
			grip.Load("a", grip.Aff("X", 1, -1)),
			grip.Load("b", grip.Aff("Y", 1, 0)),
			grip.Sub("c", "b", "a"),
			grip.Load("d", grip.Aff("Z", 1, 0)),
			grip.Mul("e", "d", "c"),
			grip.Store(grip.Aff("X", 1, 0), "e"),
		},
		Start: 1, Step: 1, TripVar: "n",
	}
}

func main() {
	for _, fus := range []int{2, 4, 8} {
		m := grip.Machine(fus)

		cfg := grip.DefaultConfig(m)
		cfg.Optimize = false
		raw, err := grip.PerfectPipelineConfig(context.Background(), tridiag(), cfg)
		if err != nil {
			log.Fatal(err)
		}

		opt, err := grip.PerfectPipeline(tridiag(), m)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%d FUs: raw %.2f cycles/iter (speedup %.2f)  |  with forwarding %.2f cycles/iter (speedup %.2f)\n",
			fus, raw.CyclesPerIter, raw.Speedup, opt.CyclesPerIter, opt.Speedup)
	}
	fmt.Println("\nThe raw pipeline is stuck at the 4-op memory recurrence;")
	fmt.Println("forwarding shortens the cycle to sub->mul and doubles the rate.")
}
