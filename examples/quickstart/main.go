// Quickstart: pipeline an inner-product loop with GRiP on a 4-unit VLIW,
// inspect the steady-state kernel, and prove the schedule equivalent to
// the original loop by simulation.
package main

import (
	"fmt"
	"log"

	grip "repro"
)

func main() {
	// q += z[k] * x[k]  (Livermore kernel 3)
	loop := &grip.Loop{
		Name: "dot",
		Body: []grip.BodyOp{
			grip.Load("t1", grip.Aff("Z", 1, 0)),
			grip.Load("t2", grip.Aff("X", 1, 0)),
			grip.Mul("t3", "t1", "t2"),
			grip.Add("q", "q", "t3"),
		},
		Step: 1, TripVar: "n",
		LiveIn: []string{"q"}, LiveOut: []string{"q"},
	}

	res, err := grip.PerfectPipeline(loop, grip.Machine(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v\n", res.Converged)
	fmt.Printf("kernel:    %v\n", res.Kernel)
	fmt.Printf("rate:      %.3f cycles/iteration (sequential: %d)\n",
		res.CyclesPerIter, loop.SeqOpsPerIter())
	fmt.Printf("speedup:   %.2f\n", res.Speedup)

	// Prove the scheduled code computes the same result, including an
	// early exit that runs the pipeline's drain code.
	z := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	x := []int64{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}
	err = grip.Validate(res,
		map[string]int64{"q": 100},
		map[string][]int64{"Z": z, "X": x},
		[]int64{3, 7, int64(res.U)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("validated: scheduled pipeline ≡ original loop")
}
