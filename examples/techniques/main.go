// Techniques: compare every scheduling technique in this repository on
// one vectorizable loop across machine widths — plain list scheduling
// (no pipelining), modulo scheduling (integral initiation interval),
// POST (resource constraints as a post-pass), and GRiP (resource
// constraints integrated into global scheduling). This reproduces the
// paper's core argument end to end.
package main

import (
	"context"
	"fmt"
	"log"

	grip "repro"
)

func hydro() *grip.Loop {
	// LL1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
	return &grip.Loop{
		Name: "hydro",
		Body: []grip.BodyOp{
			grip.Load("z10", grip.Aff("Z", 1, 10)),
			grip.Load("z11", grip.Aff("Z", 1, 11)),
			grip.Mul("a", "r", "z10"),
			grip.Mul("b", "t", "z11"),
			grip.Add("c", "a", "b"),
			grip.Load("y", grip.Aff("Y", 1, 0)),
			grip.Mul("d", "y", "c"),
			grip.Add("e", "q", "d"),
			grip.Store(grip.Aff("X", 1, 0), "e"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
	}
}

func main() {
	// Every technique is a registry backend; the batch engine runs the
	// whole matrix concurrently and returns outcomes in job order.
	techniques := []string{"list", "modulo", "post", "grip"}
	widths := []int{1, 2, 4, 8, 16}
	spec := hydro() // read-only to the schedulers, safe to share across jobs
	var jobs []grip.BatchJob
	for _, fus := range widths {
		for _, tech := range techniques {
			jobs = append(jobs, grip.BatchJob{
				Technique: tech, Spec: spec, Machine: grip.Machine(fus),
			})
		}
	}
	outcomes, err := grip.Batch(context.Background(), jobs, grip.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-5s %12s %12s %12s %12s\n", "FUs", "list", "modulo", "POST", "GRiP")
	for i, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		if i%len(techniques) == 0 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("%-5d", o.Job.Machine.OpSlots)
		}
		fmt.Printf(" %12.2f", o.Result.Speedup)
	}
	fmt.Println()
	fmt.Println("\nlist   = compaction of one iteration, no overlap")
	fmt.Println("modulo = overlap with a single integral initiation interval")
	fmt.Println("POST   = unconstrained pipeline + resource post-pass")
	fmt.Println("GRiP   = resource constraints inside global scheduling (this paper)")

	// Configurations are first-class: a per-job SchedConfig joins the
	// cache key, so a sweep over unwind factors runs through the same
	// engine and cache without the cells colliding.
	cache := grip.NewBatchCache(32)
	fmt.Println("\nGRiP @4FU unwind-factor sweep (distinct cache entries per config):")
	for _, unwind := range []int{12, 24, 48} {
		sweep := []grip.BatchJob{{
			Technique: "grip", Spec: spec, Machine: grip.Machine(4),
			Config: grip.SchedConfig{Unwind: unwind},
		}}
		outs, err := grip.Batch(context.Background(), sweep, grip.BatchOptions{Cache: cache})
		if err != nil {
			log.Fatal(err)
		}
		o := outs[0]
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		fmt.Printf("  unwind=%-3d speedup %.2f converged=%-5v cacheHit=%v\n",
			unwind, o.Result.Speedup, o.Result.Converged, o.CacheHit)
	}
}
