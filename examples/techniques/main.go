// Techniques: compare every scheduling technique in this repository on
// one vectorizable loop across machine widths — plain list scheduling
// (no pipelining), modulo scheduling (integral initiation interval),
// POST (resource constraints as a post-pass), and GRiP (resource
// constraints integrated into global scheduling). This reproduces the
// paper's core argument end to end.
package main

import (
	"fmt"
	"log"

	grip "repro"
)

func hydro() *grip.Loop {
	// LL1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
	return &grip.Loop{
		Name: "hydro",
		Body: []grip.BodyOp{
			grip.Load("z10", grip.Aff("Z", 1, 10)),
			grip.Load("z11", grip.Aff("Z", 1, 11)),
			grip.Mul("a", "r", "z10"),
			grip.Mul("b", "t", "z11"),
			grip.Add("c", "a", "b"),
			grip.Load("y", grip.Aff("Y", 1, 0)),
			grip.Mul("d", "y", "c"),
			grip.Add("e", "q", "d"),
			grip.Store(grip.Aff("X", 1, 0), "e"),
		},
		Step: 1, TripVar: "n", LiveIn: []string{"q", "r", "t"},
	}
}

func main() {
	fmt.Printf("%-5s %12s %12s %12s %12s\n", "FUs", "list", "modulo", "POST", "GRiP")
	for _, fus := range []int{1, 2, 4, 8, 16} {
		m := grip.Machine(fus)
		loop := hydro()

		ls := grip.ListSchedule(loop, m)
		mod, err := grip.Modulo(loop, m)
		if err != nil {
			log.Fatal(err)
		}
		p, err := grip.Post(loop, m)
		if err != nil {
			log.Fatal(err)
		}
		g, err := grip.PerfectPipeline(loop, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %12.2f %12.2f %12.2f %12.2f\n",
			fus, ls.Speedup, mod.Speedup, p.Speedup, g.Speedup)
	}
	fmt.Println("\nlist   = compaction of one iteration, no overlap")
	fmt.Println("modulo = overlap with a single integral initiation interval")
	fmt.Println("POST   = unconstrained pipeline + resource post-pass")
	fmt.Println("GRiP   = resource constraints inside global scheduling (this paper)")
}
