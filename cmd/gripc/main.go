// Command gripc schedules a loop described in the textir format and
// reports the pipelined kernel, its rate, and the speedup, optionally
// printing the full schedule.
//
// Usage:
//
//	go run ./cmd/gripc -fus 4 [-scheduler grip|post|modulo|list] [-print] < loop.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/pipeline"
	"repro/internal/post"
	"repro/internal/textir"
)

func main() {
	fus := flag.Int("fus", 4, "functional units")
	sched := flag.String("scheduler", "grip", "grip | post | modulo | list")
	printRows := flag.Bool("print", false, "print the scheduled rows")
	noOpt := flag.Bool("no-opt", false, "disable redundant-operation removal")
	flag.Parse()

	spec, err := textir.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := machine.New(*fus)
	fmt.Printf("loop %s: %d ops/iteration sequential, %s\n",
		spec.Name, spec.SeqOpsPerIter(), m)

	switch *sched {
	case "modulo":
		res, err := modulo.Schedule(spec, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("modulo: II=%d makespan=%d speedup=%.2f\n", res.II, res.Makespan, res.Speedup)
		return
	case "list":
		res := listsched.Schedule(spec, m)
		fmt.Printf("list: %d cycles/iteration, speedup=%.2f\n", res.Cycles, res.Speedup)
		return
	}

	cfg := pipeline.DefaultConfig(m)
	cfg.Optimize = !*noOpt
	var res *pipeline.Result
	switch *sched {
	case "grip":
		res, err = pipeline.PerfectPipeline(spec, cfg)
	case "post":
		res, err = post.Pipeline(spec, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: converged=%v kernel=%v\n", *sched, res.Converged, res.Kernel)
	fmt.Printf("rate: %.3f cycles/iteration, speedup %.2f (unwound %d iterations, %d removed ops)\n",
		res.CyclesPerIter, res.Speedup, res.U, res.Unwound.Removed())
	if *printRows {
		name := func(origin int) string {
			if origin == len(spec.Body) {
				return "+"
			}
			if origin == len(spec.Body)+1 {
				return "cj"
			}
			return fmt.Sprintf("o%d.", origin)
		}
		fmt.Print(harness.FigureRows(res.Unwound.G, name, 0))
	}
}
