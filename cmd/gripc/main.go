// Command gripc schedules a loop described in the textir format with
// any registered technique and reports the pipelined kernel, its rate,
// and the speedup, optionally printing the full schedule. Several
// machine widths can be compared in one run; -parallel schedules them
// concurrently through the batch engine.
//
// Usage:
//
//	go run ./cmd/gripc -fus 4 [-technique grip|post|modulo|list] [-print] < loop.txt
//	go run ./cmd/gripc -fus 2,4,8 -technique grip -parallel 4 < loop.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/post"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/textir"
)

func main() {
	fusFlag := flag.String("fus", "4", "functional units (comma-separated list compares widths)")
	technique := flag.String("technique", "grip",
		fmt.Sprintf("scheduling technique (registered: %s)", strings.Join(sched.Names(), ", ")))
	schedAlias := flag.String("scheduler", "", "alias for -technique (kept for compatibility)")
	printRows := flag.Bool("print", false, "print the scheduled rows (grip and post only)")
	noOpt := flag.Bool("no-opt", false, "disable redundant-operation removal (grip and post only)")
	unwind := flag.Int("unwind", 0, "fix the unwind factor (0 = automatic ladder); joins the cache key")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count when comparing several widths (batch path only; -print/-no-opt runs are sequential)")
	cacheDir := flag.String("cache-dir", "",
		"persistent result-cache directory shared with cmd/table1; widths already scheduled\n"+
			"by any process are served from disk (batch path only)")
	flag.Parse()

	if *cacheDir != "" {
		if _, err := harness.EnableDiskCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	tech := *technique
	if *schedAlias != "" {
		techniqueSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "technique" {
				techniqueSet = true
			}
		})
		if techniqueSet && *schedAlias != *technique {
			fmt.Fprintf(os.Stderr, "-technique %q and -scheduler %q conflict; pass one\n", *technique, *schedAlias)
			os.Exit(2)
		}
		tech = *schedAlias
	}
	if _, ok := sched.Lookup(tech); !ok {
		fmt.Fprintf(os.Stderr, "unknown technique %q (registered: %s)\n", tech, strings.Join(sched.Names(), ", "))
		os.Exit(2)
	}

	fus, err := machine.ParseFUs(*fusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec, err := textir.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("loop %s: %d ops/iteration sequential\n", spec.Name, spec.SeqOpsPerIter())

	// The detailed path supports -print and -no-opt, which need
	// technique-specific configuration and the raw schedule; it runs
	// each requested width in turn so the flags are never silently
	// ignored.
	if *printRows || *noOpt {
		for _, f := range fus {
			if err := detailed(spec, tech, f, *unwind, *printRows, *noOpt); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	cfg := sched.Config{Unwind: *unwind}
	var jobs []batch.Job
	for _, f := range fus {
		jobs = append(jobs, batch.Job{Technique: tech, Spec: spec, Machine: machine.New(f), Config: cfg})
	}
	// The shared cache carries the tiered store: in-memory always, plus
	// the -cache-dir disk tier so widths scheduled by earlier processes
	// (this command or cmd/table1) cost a file read.
	outcomes, err := batch.Run(context.Background(), jobs,
		batch.Options{Parallelism: *parallel, Cache: harness.SharedCache()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "%dFU: %v\n", o.Job.Machine.OpSlots, o.Err)
			os.Exit(1)
		}
		r := o.Result
		kernel := ""
		if r.KernelIterSpan > 0 {
			kernel = fmt.Sprintf(" kernel=%d rows/%d iters", r.KernelRows, r.KernelIterSpan)
		}
		fmt.Printf("%2dFU %s: %.3f cycles/iteration, speedup %.2f, converged=%v%s\n",
			o.Job.Machine.OpSlots, r.Technique, r.CyclesPerIter, r.Speedup, r.Converged, kernel)
	}
}

// detailed reproduces the original single-run report with the full
// schedule and optimization toggle.
func detailed(spec *ir.LoopSpec, tech string, fus, unwind int, printRows, noOpt bool) error {
	m := machine.New(fus)
	cfg := pipeline.DefaultConfig(m)
	cfg.Optimize = !noOpt
	cfg.Unwind = unwind
	var res *pipeline.Result
	var err error
	switch tech {
	case "grip":
		res, err = pipeline.PerfectPipeline(context.Background(), spec, cfg)
	case "post":
		res, err = post.Pipeline(context.Background(), spec, cfg)
	default:
		return fmt.Errorf("-print/-no-opt support only grip and post (got %q)", tech)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s @%dFU: converged=%v kernel=%v\n", tech, fus, res.Converged, res.Kernel)
	fmt.Printf("rate: %.3f cycles/iteration, speedup %.2f (unwound %d iterations, %d removed ops)\n",
		res.CyclesPerIter, res.Speedup, res.U, res.Unwound.Removed())
	if printRows {
		name := func(origin int) string {
			if origin == len(spec.Body) {
				return "+"
			}
			if origin == len(spec.Body)+1 {
				return "cj"
			}
			return fmt.Sprintf("o%d.", origin)
		}
		fmt.Print(harness.FigureRows(res.Unwound.G, name, 0))
	}
	return nil
}
