// Command figures regenerates the paper's figures: the tree-instruction
// model and core transformations (Figures 1–3), iteration overlap and
// the simple-vs-perfect pipelining comparison (Figures 5–6), the
// Unifiable-ops and GRiP scheduling traces with their candidate sets
// (Figures 8 and 11), the gap divergence without prevention (Figure 9),
// the converged gapless schedule (Figure 13), and the section 1
// motivating example versus modulo scheduling.
//
// Usage:
//
//	go run ./cmd/figures            # all figures
//	go run ./cmd/figures -fig 9     # one figure (1, 2, 3, 5, 6, 8, 9, 11, 13, intro)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "which figure to print")
	fus := flag.Int("fus", 3, "functional units for the trace figures")
	cacheDir := flag.String("cache-dir", "",
		"persistent result-cache directory shared with cmd/table1 (serves the figures that run through the batch engine)")
	flag.Parse()

	if *cacheDir != "" {
		if _, err := harness.EnableDiskCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	w := os.Stdout
	run := func(names []string, title string, f func() error) {
		match := *fig == "all"
		for _, n := range names {
			if *fig == n {
				match = true
			}
		}
		if !match {
			return
		}
		fmt.Fprintf(w, "==== %s ====\n", title)
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	run([]string{"1", "2", "3"}, "Figures 1-3 (model & core transformations)",
		func() error { return harness.Figure123(w) })
	run([]string{"5", "6"}, "Figures 5-6 (simple vs perfect pipelining)",
		func() error { return harness.Figure56(w, *fus) })
	run([]string{"8", "11"}, "Figures 8 & 11 (Unifiable-ops vs Moveable-ops traces)",
		func() error { return harness.Figure8And11(w, *fus) })
	run([]string{"9"}, "Figure 9 (gaps without prevention)",
		func() error { _, err := harness.Figure9(w); return err })
	run([]string{"13"}, "Figure 13 (gapless convergence)",
		func() error { _, err := harness.Figure13(w); return err })
	run([]string{"intro"}, "Section 1 example (GRiP vs modulo)",
		func() error { _, _, err := harness.IntroExample(w); return err })
}
