// Command benchdiff compares two bench reports written by
// `table1 -bench-out` (BENCH_table1.json snapshots) and flags per-cell
// wall-time regressions, so the bench trajectory can gate CI: it exits
// nonzero when any matched cell slowed down by more than -threshold, or
// when a cell's speedup value drifted (the cells are deterministic, so
// a drift is a correctness change, not noise).
//
// Cells are matched by (loop, fus, technique). Cache-hit cells and
// cells faster than -min-ms in the old report are skipped for the
// wall-time check — they measure the cache, not the scheduler. Cells
// present in only one report are listed but never fatal: new kernels
// and new techniques are growth, not regressions.
//
// With -gobench the two arguments are `go test -bench` output files
// instead: benchmarks are matched by name (the -cpus suffix stripped),
// ns/op compared against -threshold, and allocs/op compared exactly —
// an allocation-count increase is an algorithmic regression (the
// zero-alloc guards are the first line of defence; this gates the
// trajectory), while ns/op gets the same generous noise threshold the
// wall-time cells use.
//
// Usage:
//
//	go run ./cmd/benchdiff [-threshold 1.5] [-min-ms 5] [-no-speedups] old.json new.json
//	go run ./cmd/benchdiff -gobench [-threshold 4] old.txt new.txt
//	go run ./cmd/benchdiff -selfcheck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/sched/batch"
)

func main() {
	threshold := flag.Float64("threshold", 1.5,
		"flag a cell whose new wall time exceeds old*threshold")
	minMS := flag.Float64("min-ms", 5,
		"ignore the wall-time check for cells under this many ms in the old report")
	noSpeedups := flag.Bool("no-speedups", false,
		"skip the speedup-drift check (wall times only)")
	gobench := flag.Bool("gobench", false,
		"compare two `go test -bench` output files (ns/op + allocs/op) instead of bench reports")
	selfcheck := flag.Bool("selfcheck", false,
		"run the comparison logic against built-in fixtures and exit (CI bit-rot guard)")
	flag.Parse()

	if *selfcheck {
		os.Exit(runSelfcheck(os.Stdout))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json  (or -gobench old.txt new.txt, or -selfcheck)")
		os.Exit(2)
	}
	if *gobench {
		os.Exit(runGobenchDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold))
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	report := compare(oldRep, newRep, *threshold, *minMS, !*noSpeedups)
	report.print(os.Stdout, flag.Arg(0), flag.Arg(1))
	if len(report.Regressions) > 0 {
		os.Exit(1)
	}
}

func load(path string) (*batch.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep batch.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// cellKey identifies a cell across reports. Config is the job's
// configuration fingerprint (empty = paper default), so sweep cells of
// the same (loop, fus, technique) never collide across factors.
type cellKey struct {
	Loop      string
	FUs       int
	Technique string
	Config    string
}

func (k cellKey) String() string {
	s := fmt.Sprintf("%s @%dFU %s", k.Loop, k.FUs, k.Technique)
	if k.Config != "" {
		s += " [" + k.Config + "]"
	}
	return s
}

// diffReport is the outcome of one comparison.
type diffReport struct {
	Compared    int
	Skipped     int // cache hits and sub-min-ms cells
	Regressions []string
	OnlyOld     []string
	OnlyNew     []string
}

// compare matches cells by key and collects regressions. When a key
// occurs several times in one report (a sweep rerunning a cell), the
// non-cache-hit occurrence wins; later duplicates are ignored.
func compare(oldRep, newRep *batch.BenchReport, threshold, minMS float64, checkSpeedups bool) *diffReport {
	index := func(rep *batch.BenchReport) map[cellKey]batch.BenchCell {
		m := make(map[cellKey]batch.BenchCell, len(rep.Cells))
		for _, c := range rep.Cells {
			k := cellKey{c.Loop, c.FUs, c.Technique, c.Config}
			if prev, ok := m[k]; ok && !prev.CacheHit {
				continue
			}
			m[k] = c
		}
		return m
	}
	oldCells, newCells := index(oldRep), index(newRep)

	rep := &diffReport{}
	var keys []cellKey
	for k := range oldCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		oc := oldCells[k]
		nc, ok := newCells[k]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, k.String())
			continue
		}
		rep.Compared++
		if checkSpeedups && oc.Error == "" && nc.Error == "" {
			if diff := oc.Speedup - nc.Speedup; diff > 1e-6 || diff < -1e-6 {
				rep.Regressions = append(rep.Regressions,
					fmt.Sprintf("%s: speedup drifted %.3f -> %.3f", k, oc.Speedup, nc.Speedup))
			}
		}
		if nc.Error != "" && oc.Error == "" {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: newly failing: %s", k, nc.Error))
			continue
		}
		if oc.CacheHit || nc.CacheHit || oc.WallMS < minMS {
			rep.Skipped++
			continue
		}
		if nc.WallMS > oc.WallMS*threshold {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: wall %.1fms -> %.1fms (%.2fx > %.2fx threshold)",
					k, oc.WallMS, nc.WallMS, nc.WallMS/oc.WallMS, threshold))
		}
	}
	for k := range newCells {
		if _, ok := oldCells[k]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, k.String())
		}
	}
	sort.Strings(rep.OnlyNew)
	return rep
}

func (r *diffReport) print(w *os.File, oldPath, newPath string) {
	fmt.Fprintf(w, "benchdiff %s -> %s: %d cells compared", oldPath, newPath, r.Compared)
	if r.Skipped > 0 {
		fmt.Fprintf(w, ", %d skipped (cache hits / below min-ms)", r.Skipped)
	}
	fmt.Fprintln(w)
	for _, s := range r.OnlyOld {
		fmt.Fprintf(w, "  missing in new report: %s\n", s)
	}
	for _, s := range r.OnlyNew {
		fmt.Fprintf(w, "  new cell: %s\n", s)
	}
	if len(r.Regressions) == 0 {
		fmt.Fprintln(w, "  no regressions")
		return
	}
	for _, s := range r.Regressions {
		fmt.Fprintf(w, "  REGRESSION %s\n", s)
	}
}

// runSelfcheck exercises the comparison logic on synthetic reports so a
// CI step can prove the tool still detects (and still ignores) what it
// should, without needing two real bench files.
func runSelfcheck(w *os.File) int {
	base := &batch.BenchReport{Cells: []batch.BenchCell{
		{Loop: "LL1", FUs: 2, Technique: "grip", Speedup: 1.833, WallMS: 120},
		{Loop: "LL1", FUs: 2, Technique: "post", Speedup: 1.833, WallMS: 80},
		{Loop: "LL2", FUs: 4, Technique: "grip", Speedup: 2.5, WallMS: 2},
		{Loop: "LL3", FUs: 8, Technique: "grip", Speedup: 7.9, WallMS: 50, CacheHit: true},
		// A sweep pair: same (loop, fus, technique), distinct configs —
		// the config must key the cells apart.
		{Loop: "LL1", FUs: 2, Technique: "grip", Config: "cfg|u=24", Speedup: 1.9, WallMS: 60},
	}}
	same := &batch.BenchReport{Cells: []batch.BenchCell{
		{Loop: "LL1", FUs: 2, Technique: "grip", Speedup: 1.833, WallMS: 130},
		{Loop: "LL1", FUs: 2, Technique: "post", Speedup: 1.833, WallMS: 75},
		{Loop: "LL2", FUs: 4, Technique: "grip", Speedup: 2.5, WallMS: 200}, // under min-ms in base: skipped
		{Loop: "LL3", FUs: 8, Technique: "grip", Speedup: 7.9, WallMS: 50, CacheHit: true},
		{Loop: "LL4", FUs: 2, Technique: "modulo", Speedup: 1.0, WallMS: 1}, // new cell: not a regression
		{Loop: "LL1", FUs: 2, Technique: "grip", Config: "cfg|u=24", Speedup: 1.9, WallMS: 65},
	}}
	bad := &batch.BenchReport{Cells: []batch.BenchCell{
		{Loop: "LL1", FUs: 2, Technique: "grip", Speedup: 1.833, WallMS: 400}, // 3.3x: wall regression
		{Loop: "LL1", FUs: 2, Technique: "post", Speedup: 1.900, WallMS: 80},  // speedup drift
		{Loop: "LL2", FUs: 4, Technique: "grip", Speedup: 2.5, WallMS: 3},
		{Loop: "LL3", FUs: 8, Technique: "grip", Speedup: 7.9, WallMS: 50, CacheHit: true},
	}}

	clean := compare(base, same, 1.5, 5, true)
	if len(clean.Regressions) != 0 {
		fmt.Fprintf(w, "selfcheck FAILED: clean diff reported regressions: %v\n", clean.Regressions)
		return 1
	}
	if clean.Compared != 5 {
		fmt.Fprintf(w, "selfcheck FAILED: compared %d cells, want 5 (config cells must not collide)\n", clean.Compared)
		return 1
	}
	dirty := compare(base, bad, 1.5, 5, true)
	if len(dirty.Regressions) != 2 {
		fmt.Fprintf(w, "selfcheck FAILED: want 2 regressions (wall + speedup), got %v\n", dirty.Regressions)
		return 1
	}
	if code := gobenchSelfcheck(w); code != 0 {
		return code
	}
	fmt.Fprintf(w, "selfcheck ok: %d cells compared clean, %d regressions detected in dirty fixture\n",
		clean.Compared, len(dirty.Regressions))
	return 0
}

// gobenchSelfcheck proves the -gobench parser and comparison still
// detect (and still ignore) what they should.
func gobenchSelfcheck(w *os.File) int {
	const oldTxt = `goos: linux
BenchmarkGaplessMove-8      7000000	       150.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCondFourSearch-8 300000000	         3.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkMigrationStep-8        100	   9000000 ns/op	  500000 B/op	    2000 allocs/op
PASS
`
	const sameTxt = `BenchmarkGaplessMove-16     7000000	       170.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCondFourSearch-16 300000000	         4.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkMigrationStep-16       100	  10000000 ns/op	  500000 B/op	    2000 allocs/op
BenchmarkNewThing-16           1000	      1000 ns/op	       0 B/op	       0 allocs/op
`
	const badTxt = `BenchmarkGaplessMove-8       100000	     40000.0 ns/op	     160 B/op	       3 allocs/op
BenchmarkCondFourSearch-8 300000000	         3.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkMigrationStep-8        100	   9500000 ns/op	  500000 B/op	    2000 allocs/op
`
	parse := func(s string) map[string]gobenchResult {
		m, err := parseGobenchFrom(strings.NewReader(s))
		if err != nil {
			panic(err)
		}
		return m
	}
	clean := compareGobench(parse(oldTxt), parse(sameTxt), 4)
	if len(clean.Regressions) != 0 || clean.Compared != 3 || len(clean.OnlyNew) != 1 {
		fmt.Fprintf(w, "selfcheck FAILED: clean gobench diff: compared %d, regressions %v, new %v\n",
			clean.Compared, clean.Regressions, clean.OnlyNew)
		return 1
	}
	dirty := compareGobench(parse(oldTxt), parse(badTxt), 4)
	if len(dirty.Regressions) != 2 { // ns/op blowup + allocs/op growth on the same benchmark
		fmt.Fprintf(w, "selfcheck FAILED: dirty gobench diff: want 2 regressions, got %v\n", dirty.Regressions)
		return 1
	}
	return 0
}
