package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gobenchResult is one parsed `go test -bench` line.
type gobenchResult struct {
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// parseGobench reads `go test -bench -benchmem` output, keyed by
// benchmark name with the GOMAXPROCS suffix stripped (Benchmark​X-8 and
// BenchmarkX-16 are the same benchmark on different runners). When a
// name repeats (-count runs), the fastest ns/op wins — the usual
// min-of-runs noise reduction.
func parseGobench(path string) (map[string]gobenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseGobenchFrom(f)
}

func parseGobenchFrom(f io.Reader) (map[string]gobenchResult, error) {
	out := map[string]gobenchResult{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		r := gobenchResult{}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
				ok = true
			case "allocs/op":
				r.AllocsPerOp = val
				r.HasAllocs = true
			}
		}
		if !ok {
			continue
		}
		if prev, dup := out[name]; dup && prev.NsPerOp <= r.NsPerOp {
			continue
		}
		out[name] = r
	}
	return out, sc.Err()
}

// compareGobench matches benchmarks by name and collects regressions:
// ns/op beyond old*threshold, or any allocs/op increase (allocation
// counts are deterministic, so an increase is a code change, not
// noise). Benchmarks present in only one file are listed, never fatal.
func compareGobench(oldB, newB map[string]gobenchResult, threshold float64) *diffReport {
	rep := &diffReport{}
	var names []string
	for name := range oldB {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oc := oldB[name]
		nc, ok := newB[name]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, name)
			continue
		}
		rep.Compared++
		if nc.NsPerOp > oc.NsPerOp*threshold {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: %.1fns/op -> %.1fns/op (%.2fx > %.2fx threshold)",
					name, oc.NsPerOp, nc.NsPerOp, nc.NsPerOp/oc.NsPerOp, threshold))
		}
		if oc.HasAllocs && nc.HasAllocs && nc.AllocsPerOp > oc.AllocsPerOp {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: allocs/op grew %.0f -> %.0f", name, oc.AllocsPerOp, nc.AllocsPerOp))
		}
	}
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	sort.Strings(rep.OnlyNew)
	return rep
}

func runGobenchDiff(w *os.File, oldPath, newPath string, threshold float64) int {
	oldB, err := parseGobench(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newB, err := parseGobench(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(oldB) == 0 {
		fmt.Fprintf(os.Stderr, "%s: no benchmark lines found\n", oldPath)
		return 2
	}
	if len(newB) == 0 {
		// An empty new report means the benchmarks did not run (build
		// breakage, panic) — that must fail the gate, not skip it.
		fmt.Fprintf(os.Stderr, "%s: no benchmark lines found\n", newPath)
		return 2
	}
	rep := compareGobench(oldB, newB, threshold)
	rep.print(w, oldPath, newPath)
	if len(rep.Regressions) > 0 {
		return 1
	}
	return 0
}
