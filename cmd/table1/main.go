// Command table1 regenerates Table 1 of the paper: observed speedups of
// GRiP and POST on Livermore Loops 1–14 at 2, 4 and 8 functional units,
// with arithmetic-mean and weighted-harmonic-mean summary rows.
//
// Usage:
//
//	go run ./cmd/table1 [-fus 2,4,8] [-loops LL1,LL3] [-csv] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/livermore"
)

func main() {
	fusFlag := flag.String("fus", "2,4,8", "comma-separated functional unit counts")
	loopsFlag := flag.String("loops", "", "comma-separated kernel names (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of the paper layout")
	validate := flag.Bool("validate", false, "also prove scheduled code semantically equivalent")
	flag.Parse()

	var fus []int
	for _, s := range strings.Split(*fusFlag, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || f < 1 {
			fmt.Fprintf(os.Stderr, "bad FU count %q\n", s)
			os.Exit(2)
		}
		fus = append(fus, f)
	}

	kernels := livermore.All()
	if *loopsFlag != "" {
		kernels = nil
		for _, name := range strings.Split(*loopsFlag, ",") {
			k := livermore.ByName(strings.TrimSpace(name))
			if k == nil {
				fmt.Fprintf(os.Stderr, "unknown kernel %q\n", name)
				os.Exit(2)
			}
			kernels = append(kernels, k)
		}
	}

	tbl, err := harness.RunTable1(kernels, fus)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Println("Table 1: Observed Speed-up (GRiP vs POST)")
		fmt.Print(tbl.Format())
	}

	if *validate {
		for _, k := range kernels {
			for _, f := range fus {
				if err := harness.ValidateCell(k, f); err != nil {
					fmt.Fprintf(os.Stderr, "VALIDATION FAILED %s @%dFU: %v\n", k.Name, f, err)
					os.Exit(1)
				}
				fmt.Printf("validated %s @%dFU: scheduled code ≡ original loop\n", k.Name, f)
			}
		}
	}
}
