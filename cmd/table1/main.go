// Command table1 regenerates Table 1 of the paper: observed speedups of
// GRiP and POST on Livermore Loops 1–14 at 2, 4 and 8 functional units,
// with arithmetic-mean and weighted-harmonic-mean summary rows. Cells
// run through the sched/batch engine; -parallel controls the worker
// pool and -technique selects any registered backends — every
// selection, not just the paper's grip/post pair, renders through the
// same table layout.
//
// -config overrides the techniques' paper-default configuration for
// every cell, and -sweep-unwind runs the whole matrix once per unwind
// factor: each configuration is a distinct cache key, so sweep cells
// cache independently while paper-default cells stay bit-identical to
// BENCH_table1.json.
//
// Usage:
//
//	go run ./cmd/table1 [-fus 2,4,8] [-loops LL1,LL3] [-csv] [-validate]
//	                    [-parallel N] [-technique grip,post]
//	                    [-config unwind=24,gap=false] [-sweep-unwind 0,12,24,48]
//	                    [-timeout 5m] [-bench-out BENCH_table1.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sched/batch"
)

func main() {
	os.Exit(run())
}

// run holds main's body so the pprof defers fire on every exit path
// (os.Exit in main would skip them).
func run() int {
	fusFlag := flag.String("fus", "2,4,8", "comma-separated functional unit counts")
	loopsFlag := flag.String("loops", "", "comma-separated kernel names (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of the paper layout")
	validate := flag.Bool("validate", false, "also prove scheduled code semantically equivalent")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "batch worker count")
	technique := flag.String("technique", "grip,post",
		fmt.Sprintf("comma-separated techniques to run (registered: %s)", strings.Join(sched.Names(), ",")))
	configFlag := flag.String("config", "",
		"scheduler configuration overrides for every cell, comma-separated key=value pairs\n"+
			"(unwind=N, maxunwind=N, optimize=BOOL, gap=BOOL, prelude=N, renaming=BOOL, periods=N)")
	sweepFlag := flag.String("sweep-unwind", "",
		"comma-separated unwind factors; runs the matrix once per factor through the shared\n"+
			"per-config cache (0 = the automatic ladder, i.e. the paper default)")
	timeout := flag.Duration("timeout", 0, "per-cell timeout (0 = none)")
	benchOut := flag.String("bench-out", "", "write a JSON bench report (per-cell wall time + speedups) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}()
	}

	fus, err := machine.ParseFUs(*fusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	kernels := livermore.All()
	if *loopsFlag != "" {
		kernels = nil
		for _, name := range strings.Split(*loopsFlag, ",") {
			k := livermore.ByName(strings.TrimSpace(name))
			if k == nil {
				fmt.Fprintf(os.Stderr, "unknown kernel %q\n", name)
				return 2
			}
			kernels = append(kernels, k)
		}
	}

	var techniques []string
	hasGrip, hasPost := false, false
	for _, t := range strings.Split(*technique, ",") {
		t = strings.TrimSpace(t)
		if _, ok := sched.Lookup(t); !ok {
			fmt.Fprintf(os.Stderr, "unknown technique %q (registered: %s)\n", t, strings.Join(sched.Names(), ","))
			return 2
		}
		hasGrip = hasGrip || t == "grip"
		hasPost = hasPost || t == "post"
		techniques = append(techniques, t)
	}
	if *validate && !hasGrip {
		fmt.Fprintln(os.Stderr, "-validate proves GRiP schedules semantically equivalent; include grip in -technique")
		return 2
	}

	cfg, err := parseConfig(*configFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// The run's configurations: the base config alone, or one per sweep
	// factor. Validation covers the same set, so -validate certifies
	// exactly the schedules the run displayed.
	runConfigs := []sched.Config{cfg}
	if *sweepFlag != "" {
		factors, err := parseFactors(*sweepFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runConfigs = nil
		for _, u := range factors {
			c := cfg
			c.Unwind = u
			runConfigs = append(runConfigs, c)
		}
	}

	opts := batch.Options{
		Parallelism: *parallel,
		Timeout:     *timeout,
		Cache:       harness.SharedCache(),
	}

	start := time.Now()
	var outcomes []batch.Outcome
	var runErr error
	if *sweepFlag != "" {
		outcomes, runErr = runSweep(kernels, fus, techniques, runConfigs, opts, *csv)
	} else {
		var tbl *harness.Table
		tbl, outcomes, runErr = harness.RunTable(context.Background(), kernels, fus, techniques, cfg, opts)
		if runErr == nil {
			switch {
			case *csv:
				fmt.Print(tbl.CSV())
			case len(techniques) == 2 && hasGrip && hasPost && cfg == (sched.Config{}):
				fmt.Println("Table 1: Observed Speed-up (GRiP vs POST)")
				fmt.Print(tbl.Format())
			default:
				fmt.Printf("Observed Speed-up (%s)\n", strings.Join(techniques, " vs "))
				fmt.Print(tbl.Format())
			}
		}
	}
	elapsed := time.Since(start)

	// The bench report is written even when cells failed: per-cell
	// errors land in the cells' Error fields, which is exactly what a
	// perf-trajectory comparison wants to see.
	if *benchOut != "" {
		if err := writeBench(*benchOut, outcomes, *parallel, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells, %.1fs wall)\n", *benchOut, len(outcomes), elapsed.Seconds())
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		return 1
	}

	if *validate {
		for _, c := range runConfigs {
			suffix := ""
			if c != (sched.Config{}) {
				suffix = " [" + c.Fingerprint() + "]"
			}
			for _, k := range kernels {
				for _, f := range fus {
					if err := harness.ValidateCell(k, f, c); err != nil {
						fmt.Fprintf(os.Stderr, "VALIDATION FAILED %s @%dFU%s: %v\n", k.Name, f, suffix, err)
						return 1
					}
					fmt.Printf("validated %s @%dFU%s: scheduled code ≡ original loop\n", k.Name, f, suffix)
				}
			}
		}
	}
	return 0
}

// parseFactors parses the -sweep-unwind flag's factor list.
func parseFactors(s string) ([]int, error) {
	var factors []int
	for _, part := range strings.Split(s, ",") {
		u, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || u < 0 {
			return nil, fmt.Errorf("bad -sweep-unwind factor %q", part)
		}
		factors = append(factors, u)
	}
	return factors, nil
}

// parseConfig turns the -config flag's key=value list into a per-job
// scheduler configuration (zero value = paper defaults).
func parseConfig(s string) (sched.Config, error) {
	var cfg sched.Config
	if s == "" {
		return cfg, nil
	}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return cfg, fmt.Errorf("bad -config entry %q (want key=value)", pair)
		}
		var err error
		switch strings.ToLower(key) {
		case "unwind":
			cfg.Unwind, err = strconv.Atoi(val)
		case "maxunwind":
			cfg.MaxUnwind, err = strconv.Atoi(val)
		case "prelude":
			cfg.EmptyPrelude, err = strconv.Atoi(val)
		case "periods":
			cfg.Periods, err = strconv.Atoi(val)
		case "optimize":
			var b bool
			b, err = strconv.ParseBool(val)
			cfg.NoOptimize = !b
		case "gap":
			var b bool
			b, err = strconv.ParseBool(val)
			cfg.NoGapPrevention = !b
		case "renaming":
			cfg.Renaming, err = strconv.ParseBool(val)
		default:
			return cfg, fmt.Errorf("unknown -config key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad -config value %q for %q: %v", val, key, err)
		}
	}
	return cfg, nil
}

// runSweep runs the technique matrix once per configuration (one per
// unwind factor). Every factor is a distinct configuration fingerprint,
// so the shared cache holds the sweep's cells side by side; rerunning a
// factor is free.
func runSweep(kernels []*livermore.Kernel, fus []int, techniques []string, configs []sched.Config, opts batch.Options, csv bool) ([]batch.Outcome, error) {
	if csv {
		fmt.Println("unwind,loop,fus,technique,speedup,converged,cache_hit,wall_ms")
	}
	var all []batch.Outcome
	for _, cfg := range configs {
		u := cfg.Unwind
		tbl, outs, err := harness.RunTable(context.Background(), kernels, fus, techniques, cfg, opts)
		all = append(all, outs...)
		if err != nil {
			return all, fmt.Errorf("unwind=%d: %w", u, err)
		}
		if csv {
			for _, o := range outs {
				r := o.Result
				fmt.Printf("%d,%s,%d,%s,%.3f,%v,%v,%.3f\n",
					u, o.Job.DisplayName(), o.Job.Machine.OpSlots, o.Job.Technique,
					r.Speedup, r.Converged, o.CacheHit, float64(o.Wall.Microseconds())/1000)
			}
			continue
		}
		label := fmt.Sprintf("unwind=%d", u)
		if u == 0 {
			label += " (auto)"
		}
		fmt.Printf("%-16s", label)
		for fi, f := range fus {
			if fi > 0 {
				fmt.Print(" |")
			}
			for ti, tech := range techniques {
				fmt.Printf(" %s@%d %5.2f", tech, f, tbl.MeanRow[fi].Stats[ti].Speedup)
			}
		}
		fmt.Println()
	}
	if opts.Cache != nil {
		hits, misses := opts.Cache.Stats()
		fmt.Fprintf(os.Stderr, "sweep cache: %d hits, %d misses across %d outcomes\n", hits, misses, len(all))
	}
	return all, nil
}

// writeBench renders the batch outcomes as the JSON bench report.
func writeBench(path string, outcomes []batch.Outcome, parallelism int, elapsed time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rep := batch.NewBenchReport(outcomes, batch.EffectiveParallelism(parallelism, len(outcomes)), elapsed)
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
