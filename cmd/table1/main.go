// Command table1 regenerates Table 1 of the paper: observed speedups of
// GRiP and POST on Livermore Loops 1–14 at 2, 4 and 8 functional units,
// with arithmetic-mean and weighted-harmonic-mean summary rows. Cells
// run through the sched/batch engine; -parallel controls the worker
// pool and -technique selects any registered backends — every
// selection, not just the paper's grip/post pair, renders through the
// same table layout.
//
// -config overrides the techniques' paper-default configuration for
// every cell; -sweep-unwind runs the whole matrix once per unwind
// factor and -sweep-gap once per gap-prevention setting (the ROADMAP's
// on/off ablation). Each configuration is a distinct cache key, so
// sweep cells cache independently while paper-default cells stay
// bit-identical to BENCH_table1.json.
//
// -cache-dir attaches a persistent metrics tier: every computed cell
// is written through to disk, and a later process serves it from there
// — a warm rerun schedules nothing. -cache-clear wipes that tier
// before running (refusing directories not shaped like a store); cache
// statistics — hits, misses, quarantined panics, disk footprint and
// health (write/read errors, retries, degraded operations, breaker
// state) — print to stderr at exit.
//
// -chaos runs the matrix under a seeded fault schedule (injected
// backend panics, compute errors, torn and failing disk writes,
// failing reads, random cancellations) and verifies the engine's
// fault-tolerance contract: surviving cells are exact, failures are
// isolated and recompute clean afterwards, and the disk tier's circuit
// breaker trips and recovers. With -bench-out it writes the surviving
// cells only, for benchdiff against the fault-free baseline.
//
// Usage:
//
//	go run ./cmd/table1 [-fus 2,4,8] [-loops LL1,LL3] [-csv] [-validate]
//	                    [-parallel N] [-technique grip,post]
//	                    [-config unwind=24,gap=false] [-sweep-unwind 0,12,24,48]
//	                    [-sweep-gap] [-cache-dir .gripcache] [-cache-clear]
//	                    [-timeout 5m] [-bench-out BENCH_table1.json]
//	                    [-chaos] [-chaos-seed 42]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sched/batch"
	"repro/internal/sched/store"
)

func main() {
	os.Exit(run())
}

// run holds main's body so the pprof defers fire on every exit path
// (os.Exit in main would skip them).
func run() int {
	fusFlag := flag.String("fus", "2,4,8", "comma-separated functional unit counts")
	loopsFlag := flag.String("loops", "", "comma-separated kernel names (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of the paper layout")
	validate := flag.Bool("validate", false, "also prove scheduled code semantically equivalent")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "batch worker count")
	technique := flag.String("technique", "grip,post",
		fmt.Sprintf("comma-separated techniques to run (registered: %s)", strings.Join(sched.Names(), ",")))
	configFlag := flag.String("config", "",
		"scheduler configuration overrides for every cell, comma-separated key=value pairs\n"+
			"(unwind=N, maxunwind=N, optimize=BOOL, gap=BOOL, prelude=N, renaming=BOOL, periods=N)")
	sweepFlag := flag.String("sweep-unwind", "",
		"comma-separated unwind factors; runs the matrix once per factor through the shared\n"+
			"per-config cache (0 = the automatic ladder, i.e. the paper default)")
	sweepGap := flag.Bool("sweep-gap", false,
		"gap-prevention ablation: run the matrix with the section 3.3 machinery on and off\n"+
			"(composes with -sweep-unwind; each variant is a distinct cache key)")
	cacheDir := flag.String("cache-dir", "",
		"persistent result-cache directory; cells computed by any process are served\n"+
			"from disk by later runs against the same directory")
	cacheClear := flag.Bool("cache-clear", false, "wipe the disk cache tier before running (requires -cache-dir)")
	timeout := flag.Duration("timeout", 0, "per-cell timeout (0 = none)")
	chaos := flag.Bool("chaos", false,
		"run the matrix under the seeded chaos fault schedule (injected panics, compute\n"+
			"errors, torn/failing disk writes, failing reads, random cancellations); surviving\n"+
			"cells must stay bit-identical, failures are rerun clean afterwards")
	chaosSeed := flag.Int64("chaos-seed", 42, "seed for the chaos fault schedule (with -chaos)")
	benchOut := flag.String("bench-out", "", "write a JSON bench report (per-cell wall time + speedups) to this file\n(with -chaos: surviving cells only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}()
	}

	fus, err := machine.ParseFUs(*fusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	kernels := livermore.All()
	if *loopsFlag != "" {
		kernels = nil
		for _, name := range strings.Split(*loopsFlag, ",") {
			k := livermore.ByName(strings.TrimSpace(name))
			if k == nil {
				fmt.Fprintf(os.Stderr, "unknown kernel %q\n", name)
				return 2
			}
			kernels = append(kernels, k)
		}
	}

	var techniques []string
	hasGrip, hasPost := false, false
	for _, t := range strings.Split(*technique, ",") {
		t = strings.TrimSpace(t)
		if _, ok := sched.Lookup(t); !ok {
			fmt.Fprintf(os.Stderr, "unknown technique %q (registered: %s)\n", t, strings.Join(sched.Names(), ","))
			return 2
		}
		hasGrip = hasGrip || t == "grip"
		hasPost = hasPost || t == "post"
		techniques = append(techniques, t)
	}
	if *validate && !hasGrip {
		fmt.Fprintln(os.Stderr, "-validate proves GRiP schedules semantically equivalent; include grip in -technique")
		return 2
	}

	cfg, err := parseConfig(*configFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *cacheClear && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-cache-clear requires -cache-dir")
		return 2
	}
	if *chaos {
		if *sweepFlag != "" || *sweepGap || *validate {
			fmt.Fprintln(os.Stderr, "-chaos does not compose with -sweep-unwind/-sweep-gap/-validate")
			return 2
		}
		if *cacheClear {
			d, err := store.OpenDisk(*cacheDir)
			if err == nil {
				err = d.Clear()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		return runChaos(kernels, fus, techniques, *chaosSeed, *parallel, *timeout, *cacheDir, *benchOut)
	}
	var disk *store.Disk
	if *cacheDir != "" {
		disk, err = harness.EnableDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if *cacheClear {
			if err := disk.Clear(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
	}

	// The run's configurations: the base config alone, or its expansion
	// by the sweep flags (which compose: -sweep-unwind × -sweep-gap).
	// Validation covers the same set, so -validate certifies exactly
	// the schedules the run displayed.
	variants := []sweepVariant{{cfg: cfg}}
	if *sweepFlag != "" {
		factors, err := parseFactors(*sweepFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		var expanded []sweepVariant
		for _, u := range factors {
			c := cfg
			c.Unwind = u
			label := fmt.Sprintf("unwind=%d", u)
			if u == 0 {
				label += " (auto)"
			}
			expanded = append(expanded, sweepVariant{label: label, cfg: c})
		}
		variants = expanded
	}
	if *sweepGap {
		var expanded []sweepVariant
		for _, v := range variants {
			on, off := v.cfg, v.cfg
			on.NoGapPrevention = false
			off.NoGapPrevention = true
			expanded = append(expanded,
				sweepVariant{label: joinLabel(v.label, "gap=on"), cfg: on},
				sweepVariant{label: joinLabel(v.label, "gap=off"), cfg: off})
		}
		variants = expanded
	}
	// Sweep output is selected by the flags, not the variant count: a
	// single-factor -sweep-unwind still renders as a sweep row.
	sweeping := *sweepFlag != "" || *sweepGap

	opts := batch.Options{
		Parallelism: *parallel,
		Timeout:     *timeout,
		Cache:       harness.SharedCache(),
	}

	start := time.Now()
	var outcomes []batch.Outcome
	var runErr error
	if sweeping {
		outcomes, runErr = runSweep(kernels, fus, techniques, variants, opts, *csv)
	} else {
		var tbl *harness.Table
		tbl, outcomes, runErr = harness.RunTable(context.Background(), kernels, fus, techniques, cfg, opts)
		if runErr == nil {
			switch {
			case *csv:
				fmt.Print(tbl.CSV())
			case len(techniques) == 2 && hasGrip && hasPost && cfg == (sched.Config{}):
				fmt.Println("Table 1: Observed Speed-up (GRiP vs POST)")
				fmt.Print(tbl.Format())
			default:
				fmt.Printf("Observed Speed-up (%s)\n", strings.Join(techniques, " vs "))
				fmt.Print(tbl.Format())
			}
		}
	}
	elapsed := time.Since(start)

	// The bench report is written even when cells failed: per-cell
	// errors land in the cells' Error fields, which is exactly what a
	// perf-trajectory comparison wants to see.
	if *benchOut != "" {
		if err := writeBench(*benchOut, outcomes, *parallel, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells, %.1fs wall)\n", *benchOut, len(outcomes), elapsed.Seconds())
	}
	printCacheStats(opts.Cache.Stats(), disk != nil)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		return 1
	}

	if *validate {
		for _, v := range variants {
			c := v.cfg
			suffix := ""
			if c != (sched.Config{}) {
				suffix = " [" + c.Fingerprint() + "]"
			}
			for _, k := range kernels {
				for _, f := range fus {
					if err := harness.ValidateCell(k, f, c); err != nil {
						fmt.Fprintf(os.Stderr, "VALIDATION FAILED %s @%dFU%s: %v\n", k.Name, f, suffix, err)
						return 1
					}
					fmt.Printf("validated %s @%dFU%s: scheduled code ≡ original loop\n", k.Name, f, suffix)
				}
			}
		}
	}
	return 0
}

// printCacheStats reports the tiered cache's traffic at exit: where
// hits came from, how much was computed, and — when a disk tier is
// attached — what the persistent tier now holds and how healthy it is.
func printCacheStats(st batch.CacheStats, diskAttached bool) {
	fmt.Fprintf(os.Stderr, "cache: %d memory hits, %d disk hits, %d misses",
		st.MemoryHits, st.DiskHits, st.Misses)
	if st.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, ", %d quarantined panics", st.Quarantined)
	}
	if diskAttached {
		fmt.Fprintf(os.Stderr, "; disk tier: %d entries, %d bytes", st.Disk.Entries, st.Disk.Bytes)
		if st.Disk.Rejected > 0 {
			fmt.Fprintf(os.Stderr, ", %d rejected (corrupt/stale, recomputed)", st.Disk.Rejected)
		}
		if st.Disk.WriteErrors > 0 {
			fmt.Fprintf(os.Stderr, ", %d write errors", st.Disk.WriteErrors)
		}
		if st.Disk.ReadErrors > 0 {
			fmt.Fprintf(os.Stderr, ", %d read errors", st.Disk.ReadErrors)
		}
		if st.Disk.Retries > 0 {
			fmt.Fprintf(os.Stderr, ", %d retries", st.Disk.Retries)
		}
		if st.Disk.Degraded > 0 {
			fmt.Fprintf(os.Stderr, ", %d degraded ops", st.Disk.Degraded)
		}
		if st.Disk.BreakerTrips > 0 || st.Disk.Breaker != "closed" {
			fmt.Fprintf(os.Stderr, ", breaker %s (%d trips)", st.Disk.Breaker, st.Disk.BreakerTrips)
		}
	}
	fmt.Fprintln(os.Stderr)
}

// runChaos is the -chaos mode: the matrix under the standard seeded
// fault schedule, reported in terms of the fault-tolerance contract —
// survivors exact, failures isolated and recomputable, breaker tripped
// and recovered. The bench report (when requested) holds survivors
// only, so benchdiff compares them against the fault-free baseline
// without treating the injected failures as regressions.
func runChaos(kernels []*livermore.Kernel, fus []int, techniques []string, seed int64, parallel int, timeout time.Duration, cacheDir, benchOut string) int {
	opts := harness.DefaultChaos(seed)
	opts.Parallelism = parallel
	opts.Timeout = timeout
	opts.DiskDir = cacheDir

	start := time.Now()
	rep, err := harness.ChaosTable(context.Background(), kernels, fus, techniques, opts)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	survivors := rep.Survivors()
	fmt.Printf("chaos seed %d: %d cells, %d survived, %d failed (%d quarantined panics, %d cancelled); %d cells cancelled in the storm pass\n",
		seed, rep.Stats.Jobs, rep.Stats.Succeeded, rep.Stats.Failed,
		rep.Stats.Quarantined, rep.Stats.Cancelled, batch.Summarize(rep.CancelOutcomes).Cancelled)
	fmt.Printf("chaos fires: compute=%d disk-write=%d disk-read=%d disk-open=%d\n",
		rep.Plan.Fires(faults.BatchCompute), rep.Plan.Fires(faults.DiskWrite),
		rep.Plan.Fires(faults.DiskRead), rep.Plan.Fires(faults.DiskOpen))

	recovered := 0
	for _, o := range rep.Recovered {
		if o.Err == nil {
			recovered++
		}
	}
	fmt.Printf("chaos recovery: %d/%d failed cells recomputed clean with faults disabled\n", recovered, len(rep.Recovered))
	printCacheStats(rep.Cache, rep.Disk != nil)

	if benchOut != "" {
		if err := writeBench(benchOut, survivors, parallel, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d surviving cells, %.1fs wall)\n", benchOut, len(survivors), elapsed.Seconds())
	}

	// The contract, enforced: every failure recovers, and an attached
	// disk tier ends with its breaker closed.
	if recovered != len(rep.Recovered) {
		fmt.Fprintln(os.Stderr, "chaos: some failed cells did not recover")
		return 1
	}
	if rep.Disk != nil && rep.Cache.Disk.Breaker != "closed" {
		fmt.Fprintf(os.Stderr, "chaos: disk breaker ended %s, want closed\n", rep.Cache.Disk.Breaker)
		return 1
	}
	return 0
}

// joinLabel composes sweep-dimension labels ("unwind=24 gap=off").
func joinLabel(a, b string) string {
	if a == "" {
		return b
	}
	return a + " " + b
}

// parseFactors parses the -sweep-unwind flag's factor list.
func parseFactors(s string) ([]int, error) {
	var factors []int
	for _, part := range strings.Split(s, ",") {
		u, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || u < 0 {
			return nil, fmt.Errorf("bad -sweep-unwind factor %q", part)
		}
		factors = append(factors, u)
	}
	return factors, nil
}

// parseConfig turns the -config flag's key=value list into a per-job
// scheduler configuration (zero value = paper defaults).
func parseConfig(s string) (sched.Config, error) {
	var cfg sched.Config
	if s == "" {
		return cfg, nil
	}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return cfg, fmt.Errorf("bad -config entry %q (want key=value)", pair)
		}
		var err error
		switch strings.ToLower(key) {
		case "unwind":
			cfg.Unwind, err = strconv.Atoi(val)
		case "maxunwind":
			cfg.MaxUnwind, err = strconv.Atoi(val)
		case "prelude":
			cfg.EmptyPrelude, err = strconv.Atoi(val)
		case "periods":
			cfg.Periods, err = strconv.Atoi(val)
		case "optimize":
			var b bool
			b, err = strconv.ParseBool(val)
			cfg.NoOptimize = !b
		case "gap":
			var b bool
			b, err = strconv.ParseBool(val)
			cfg.NoGapPrevention = !b
		case "renaming":
			cfg.Renaming, err = strconv.ParseBool(val)
		case "crosscheck":
			// Verification only: runs the retained reference scans next
			// to every summary-filtered fast path and panics on
			// divergence. Cannot change any cell.
			cfg.CrossCheck, err = strconv.ParseBool(val)
		default:
			return cfg, fmt.Errorf("unknown -config key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad -config value %q for %q: %v", val, key, err)
		}
	}
	return cfg, nil
}

// sweepVariant is one configuration of a sweep, with its display
// label.
type sweepVariant struct {
	label string
	cfg   sched.Config
}

// runSweep runs the technique matrix once per variant (unwind factors,
// gap-prevention on/off, or their cross product). Every variant is a
// distinct configuration fingerprint, so the shared cache holds the
// sweep's cells side by side; rerunning a variant is free.
func runSweep(kernels []*livermore.Kernel, fus []int, techniques []string, variants []sweepVariant, opts batch.Options, csv bool) ([]batch.Outcome, error) {
	if csv {
		fmt.Println("config,loop,fus,technique,speedup,converged,cache_hit,wall_ms")
	}
	var all []batch.Outcome
	for _, v := range variants {
		tbl, outs, err := harness.RunTable(context.Background(), kernels, fus, techniques, v.cfg, opts)
		all = append(all, outs...)
		if err != nil {
			return all, fmt.Errorf("%s: %w", v.label, err)
		}
		if csv {
			for _, o := range outs {
				r := o.Result
				fmt.Printf("%s,%s,%d,%s,%.3f,%v,%v,%.3f\n",
					strings.ReplaceAll(v.label, " ", ";"), o.Job.DisplayName(), o.Job.Machine.OpSlots, o.Job.Technique,
					r.Speedup, r.Converged, o.CacheHit, float64(o.Wall.Microseconds())/1000)
			}
			continue
		}
		fmt.Printf("%-24s", v.label)
		for fi, f := range fus {
			if fi > 0 {
				fmt.Print(" |")
			}
			for ti, tech := range techniques {
				fmt.Printf(" %s@%d %5.2f", tech, f, tbl.MeanRow[fi].Stats[ti].Speedup)
			}
		}
		fmt.Println()
	}
	return all, nil
}

// writeBench renders the batch outcomes as the JSON bench report.
func writeBench(path string, outcomes []batch.Outcome, parallelism int, elapsed time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rep := batch.NewBenchReport(outcomes, batch.EffectiveParallelism(parallelism, len(outcomes)), elapsed)
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
