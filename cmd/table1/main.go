// Command table1 regenerates Table 1 of the paper: observed speedups of
// GRiP and POST on Livermore Loops 1–14 at 2, 4 and 8 functional units,
// with arithmetic-mean and weighted-harmonic-mean summary rows. Cells
// run through the sched/batch engine; -parallel controls the worker
// pool and -technique selects any registered backends (the default pair
// prints the paper's layout, other selections print a generic matrix).
//
// Usage:
//
//	go run ./cmd/table1 [-fus 2,4,8] [-loops LL1,LL3] [-csv] [-validate]
//	                    [-parallel N] [-technique grip,post]
//	                    [-timeout 5m] [-bench-out BENCH_table1.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/livermore"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sched/batch"
)

func main() {
	fusFlag := flag.String("fus", "2,4,8", "comma-separated functional unit counts")
	loopsFlag := flag.String("loops", "", "comma-separated kernel names (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of the paper layout")
	validate := flag.Bool("validate", false, "also prove scheduled code semantically equivalent")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "batch worker count")
	technique := flag.String("technique", "grip,post",
		fmt.Sprintf("comma-separated techniques to run (registered: %s)", strings.Join(sched.Names(), ",")))
	timeout := flag.Duration("timeout", 0, "per-cell timeout (0 = none)")
	benchOut := flag.String("bench-out", "", "write a JSON bench report (per-cell wall time + speedups) to this file")
	flag.Parse()

	fus, err := machine.ParseFUs(*fusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kernels := livermore.All()
	if *loopsFlag != "" {
		kernels = nil
		for _, name := range strings.Split(*loopsFlag, ",") {
			k := livermore.ByName(strings.TrimSpace(name))
			if k == nil {
				fmt.Fprintf(os.Stderr, "unknown kernel %q\n", name)
				os.Exit(2)
			}
			kernels = append(kernels, k)
		}
	}

	var techniques []string
	hasGrip, hasPost := false, false
	for _, t := range strings.Split(*technique, ",") {
		t = strings.TrimSpace(t)
		if _, ok := sched.Lookup(t); !ok {
			fmt.Fprintf(os.Stderr, "unknown technique %q (registered: %s)\n", t, strings.Join(sched.Names(), ","))
			os.Exit(2)
		}
		hasGrip = hasGrip || t == "grip"
		hasPost = hasPost || t == "post"
		techniques = append(techniques, t)
	}
	if *validate && !hasGrip {
		fmt.Fprintln(os.Stderr, "-validate proves GRiP schedules semantically equivalent; include grip in -technique")
		os.Exit(2)
	}

	opts := batch.Options{
		Parallelism: *parallel,
		Timeout:     *timeout,
		Cache:       harness.SharedCache(),
	}

	start := time.Now()
	var outcomes []batch.Outcome
	var runErr error
	// The grip+post pair (in either order) is the paper's Table 1 and
	// gets its layout; any other selection prints the generic matrix.
	if len(techniques) == 2 && hasGrip && hasPost {
		var tbl *harness.Table
		tbl, outcomes, runErr = harness.RunTable1Ctx(context.Background(), kernels, fus, opts)
		if runErr == nil {
			if *csv {
				fmt.Print(tbl.CSV())
			} else {
				fmt.Println("Table 1: Observed Speed-up (GRiP vs POST)")
				fmt.Print(tbl.Format())
			}
		}
	} else {
		outcomes, runErr = runMatrix(kernels, fus, techniques, opts, *csv)
	}
	elapsed := time.Since(start)

	// The bench report is written even when cells failed: per-cell
	// errors land in the cells' Error fields, which is exactly what a
	// perf-trajectory comparison wants to see.
	if *benchOut != "" {
		if err := writeBench(*benchOut, outcomes, *parallel, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells, %.1fs wall)\n", *benchOut, len(outcomes), elapsed.Seconds())
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}

	if *validate {
		for _, k := range kernels {
			for _, f := range fus {
				if err := harness.ValidateCell(k, f); err != nil {
					fmt.Fprintf(os.Stderr, "VALIDATION FAILED %s @%dFU: %v\n", k.Name, f, err)
					os.Exit(1)
				}
				fmt.Printf("validated %s @%dFU: scheduled code ≡ original loop\n", k.Name, f)
			}
		}
	}
}

// writeBench renders the batch outcomes as the JSON bench report.
func writeBench(path string, outcomes []batch.Outcome, parallelism int, elapsed time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rep := batch.NewBenchReport(outcomes, batch.EffectiveParallelism(parallelism, len(outcomes)), elapsed)
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runMatrix runs an arbitrary technique selection through the batch
// engine and prints a generic speedup matrix (loops × FU counts, one
// column group per technique).
func runMatrix(kernels []*livermore.Kernel, fus []int, techniques []string, opts batch.Options, csv bool) ([]batch.Outcome, error) {
	var jobs []batch.Job
	for _, k := range kernels {
		for _, f := range fus {
			for _, tech := range techniques {
				jobs = append(jobs, batch.Job{
					Technique: tech, Spec: k.Spec, Machine: machine.New(f), Label: k.Name,
				})
			}
		}
	}
	outcomes, err := batch.Run(context.Background(), jobs, opts)
	if err != nil {
		return outcomes, err
	}
	for _, o := range outcomes {
		if o.Err != nil {
			return outcomes, fmt.Errorf("%s %s @%dFU: %w", o.Job.Technique, o.Job.DisplayName(), o.Job.Machine.OpSlots, o.Err)
		}
	}
	if csv {
		fmt.Println("loop,fus,technique,speedup,cycles_per_iter,converged")
		for _, o := range outcomes {
			r := o.Result
			fmt.Printf("%s,%d,%s,%.3f,%.3f,%v\n",
				o.Job.DisplayName(), o.Job.Machine.OpSlots, o.Job.Technique,
				r.Speedup, r.CyclesPerIter, r.Converged)
		}
		return outcomes, nil
	}
	// Headers and row labels read the outcomes' own job descriptions,
	// so the layout stays correct under any job-construction order as
	// long as cells of one loop are contiguous.
	perRow := len(fus) * len(techniques)
	fmt.Printf("%-6s", "Loop")
	for _, o := range outcomes[:perRow] {
		fmt.Printf(" %9s", fmt.Sprintf("%s@%d", o.Job.Technique, o.Job.Machine.OpSlots))
	}
	fmt.Println()
	for i, o := range outcomes {
		if i%perRow == 0 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("%-6s", o.Job.DisplayName())
		}
		fmt.Printf(" %9.2f", o.Result.Speedup)
	}
	fmt.Println()
	return outcomes, nil
}
