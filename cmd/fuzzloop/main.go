// Command fuzzloop runs the differential fuzzer: seeded random loops
// through every registered scheduling backend at several machine
// widths, each result judged by the strongest available oracle — the
// pipelining techniques execute in the simulator against the original
// loop, the single-iteration baselines are held to their analytic
// bounds, and every backend runs with its internal cross-checks armed
// (see internal/harness/difffuzz.go).
//
// The run is deterministic: seed i of a sweep is always the same loop,
// the same workload, and the same verdict, so any failure printed here
// reproduces with -seeds 1 -seed-base i.
//
// -minimize shrinks each failing loop to a small reproducer (re-running
// the oracle on every candidate) and -corpus writes the reproducers as
// textir files — the checked-in regression corpus under testdata/corpus
// is exactly such output, replayed by the harness tests. -artifacts
// additionally writes pre/post-minimization loops and full error text
// for CI upload.
//
// -chaos composes the fuzz sweep with the internal/faults plan:
// injected backend panics and compute errors fire while the sweep runs,
// and the run passes only if every failure is attributable to the
// injection — scheduling bugs stay visible under fire.
//
// Usage:
//
//	go run ./cmd/fuzzloop [-seeds 200] [-seed-base 0] [-budget 60s]
//	                      [-machines 2,4,8] [-technique grip,post,...]
//	                      [-parallel N] [-timeout 30s] [-maxunwind 24]
//	                      [-minimize] [-corpus testdata/corpus]
//	                      [-artifacts DIR] [-chaos] [-chaos-seed 1]
//
// Exit status 0 means every judged loop passed (explained chaos faults
// aside); 1 means unexplained failures; 2 means a setup or
// infrastructure error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/sched"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seeds     = flag.Int("seeds", 200, "number of seeded loops to generate and judge")
		seedBase  = flag.Int64("seed-base", 0, "first seed (seed i is seed-base+i)")
		budget    = flag.Duration("budget", 0, "wall-clock budget; 0 = run all seeds")
		machines  = flag.String("machines", "2,4,8", "comma-separated FU counts")
		technique = flag.String("technique", "", "comma-separated backends (default: all registered)")
		parallel  = flag.Int("parallel", 0, "batch workers per loop (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", harness.DefaultFuzzTimeout, "per-job scheduling timeout")
		maxUnwind = flag.Int("maxunwind", harness.FuzzMaxUnwind, "cap on the automatic unwind ladder")
		minimize  = flag.Bool("minimize", false, "shrink failing loops to minimal reproducers")
		minProbes = flag.Int("min-probes", 200, "oracle probe budget per minimization")
		corpus    = flag.String("corpus", "", "write minimized reproducers into this corpus directory")
		artifacts = flag.String("artifacts", "", "write pre/post-minimization loops and error text here")
		chaos     = flag.Bool("chaos", false, "inject backend panics and compute errors during the sweep")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed of the chaos fault plan")
	)
	flag.Parse()

	fus, err := parseInts(*machines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzloop: -machines: %v\n", err)
		return 2
	}
	var techniques []string
	if *technique != "" {
		for _, t := range strings.Split(*technique, ",") {
			t = strings.TrimSpace(t)
			if _, ok := sched.Lookup(t); !ok {
				fmt.Fprintf(os.Stderr, "fuzzloop: unknown technique %q (have %v)\n", t, sched.Names())
				return 2
			}
			techniques = append(techniques, t)
		}
	}

	opts := harness.SweepOptions{
		FuzzOptions: harness.FuzzOptions{
			Machines:    fus,
			Techniques:  techniques,
			Config:      sched.Config{MaxUnwind: *maxUnwind},
			Parallelism: *parallel,
			Timeout:     *timeout,
		},
		SeedBase:  *seedBase,
		Seeds:     *seeds,
		Budget:    *budget,
		Minimize:  *minimize,
		MinProbes: *minProbes,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *chaos {
		// Panics and compute errors only: injected delays would turn
		// into timeout findings, and disk faults need a cache the fuzz
		// path deliberately runs without.
		plan := faults.NewPlan(*chaosSeed,
			faults.Rule{Site: faults.BatchCompute, Every: 7, Panic: "fuzz chaos schedule"},
			faults.Rule{Site: faults.BatchCompute, Every: 11, Err: harness.ErrInjected},
		)
		faults.Enable(plan)
		defer faults.Disable()
		opts.Explain = harness.ExplainInjected
	}

	rep, err := harness.FuzzSweep(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzloop: %v\n", err)
		return 2
	}

	for i := range rep.Failures {
		f := &rep.Failures[i]
		if *corpus != "" {
			path, err := harness.WriteCorpusEntry(*corpus, f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzzloop: corpus write: %v\n", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "fuzzloop: wrote %s\n", path)
		}
		if *artifacts != "" {
			if err := harness.WriteArtifacts(*artifacts, f); err != nil {
				fmt.Fprintf(os.Stderr, "fuzzloop: artifact write: %v\n", err)
				return 2
			}
		}
	}

	fmt.Printf("fuzzloop: %d seeds, %d checks, %d explained fault(s), %d failing loop(s) in %v\n",
		rep.Seeds, rep.Checks, rep.Explained, len(rep.Failures), rep.Elapsed.Round(time.Millisecond))
	for _, f := range rep.Failures {
		for _, ff := range f.Failures {
			fmt.Printf("  seed %d (%s): %s\n", f.Seed, f.Spec.Name, ff)
		}
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad FU count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
